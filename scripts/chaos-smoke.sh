#!/usr/bin/env bash
# Chaos-harness smoke test: drive the full explore -> shrink -> replay
# loop through the backersim CLI and assert the exit-code contract.
# Exploration of the stale-read litmus MUST find violations (exit 1),
# the shrunk artifact MUST replay to the same verdict, and a bare plan
# file MUST replay byte-for-byte. Run from the repository root.
set -u

CCM=testdata/stale_read.ccm
BIN=$(mktemp -d)/backersim
ART=$(mktemp -d)

go build -o "$BIN" ./cmd/backersim || exit 1

echo "== explore (expect exit 1: violations found)"
"$BIN" -explore -ccm "$CCM" -p 2 | tee "$ART/explore.txt"
code=${PIPESTATUS[0]}
if [ "$code" -ne 1 ]; then
    echo "chaos-smoke: explore exit $code, want 1" >&2
    exit 1
fi
if ! grep -q "^skip-reconcile 1 2$" "$ART/explore.txt"; then
    echo "chaos-smoke: exploration did not report the skip-reconcile violation" >&2
    exit 1
fi

echo "== shrink (expect exit 1 + artifact bundle)"
"$BIN" -shrink -ccm "$CCM" -p 2 -artifact-dir "$ART/repro"
code=$?
if [ "$code" -ne 1 ]; then
    echo "chaos-smoke: shrink exit $code, want 1" >&2
    exit 1
fi
for f in plan.chaos schedule.sched trace.trace computation.dot report.txt; do
    if [ ! -s "$ART/repro/$f" ]; then
        echo "chaos-smoke: artifact file $f missing or empty" >&2
        exit 1
    fi
done

echo "== replay artifact (expect exit 1, matching trace)"
"$BIN" -replay "$ART/repro" | tee "$ART/replay.txt"
code=${PIPESTATUS[0]}
if [ "$code" -ne 1 ]; then
    echo "chaos-smoke: artifact replay exit $code, want 1" >&2
    exit 1
fi
if ! grep -q "replay matches recorded trace: true" "$ART/replay.txt"; then
    echo "chaos-smoke: artifact replay diverged from the recorded trace" >&2
    exit 1
fi
if ! grep -q "verdict: VIOLATED" "$ART/replay.txt"; then
    echo "chaos-smoke: artifact replay verdict changed" >&2
    exit 1
fi

echo "== replay seed plan file (expect exit 1)"
"$BIN" -replay testdata/stale_read.chaos -ccm "$CCM" -p 2
code=$?
if [ "$code" -ne 1 ]; then
    echo "chaos-smoke: plan replay exit $code, want 1" >&2
    exit 1
fi

echo "chaos-smoke: OK"

#!/usr/bin/env bash
# Report-contract smoke test: run the CLIs with -report on checked-in
# testdata and validate the JSON run reports against the schema at
# testdata/report.schema.json. A field rename or type change in the
# report format fails here instead of silently breaking downstream
# report consumers. Run from the repository root.
set -u

BIN=$(mktemp -d)
OUT=$(mktemp -d)

go build -o "$BIN/ccmc" ./cmd/ccmc || exit 1
go build -o "$BIN/backersim" ./cmd/backersim || exit 1
go build -o "$BIN/verify" ./cmd/verify || exit 1
go build -o "$BIN/reportcheck" ./scripts/reportcheck || exit 1

echo "== ccmc -report (expect exit 0: Figure 2 verdicts are definitive)"
"$BIN/ccmc" -report "$OUT/ccmc.json" testdata/figure2.ccm
code=$?
if [ "$code" -ne 0 ]; then
    echo "report-check: ccmc exit $code, want 0" >&2
    exit 1
fi

echo "== ccmc -report on the litmus corpus (expect exit 0: all models decide)"
"$BIN/ccmc" -report "$OUT/ccmc-litmus.json" testdata/litmus/sb.ccm > /dev/null
code=$?
if [ "$code" -ne 0 ]; then
    echo "report-check: ccmc litmus exit $code, want 0" >&2
    exit 1
fi

echo "== verify -pair -report on the litmus corpus (expect exit 0)"
"$BIN/verify" -pair -report "$OUT/verify-pair.json" testdata/litmus/sb.ccm > /dev/null
code=$?
if [ "$code" -ne 0 ]; then
    echo "report-check: verify -pair exit $code, want 0" >&2
    exit 1
fi

echo "== backersim -explore -report (expect exit 1: violations found)"
"$BIN/backersim" -explore -ccm testdata/stale_read.ccm -p 2 -report "$OUT/backersim.json" > /dev/null
code=$?
if [ "$code" -ne 1 ]; then
    echo "report-check: backersim explore exit $code, want 1" >&2
    exit 1
fi

echo "== verify -stream -report (expect exit 1: corr_violation is VIOLATED)"
"$BIN/verify" -stream -report "$OUT/verify-stream.json" testdata/corr_violation.trace > /dev/null
code=$?
if [ "$code" -ne 1 ]; then
    echo "report-check: verify -stream exit $code, want 1" >&2
    exit 1
fi

echo "== validate reports against testdata/report.schema.json"
"$BIN/reportcheck" -schema testdata/report.schema.json \
    "$OUT/ccmc.json" "$OUT/ccmc-litmus.json" "$OUT/verify-pair.json" \
    "$OUT/backersim.json" "$OUT/verify-stream.json" || exit 1

# The reports must also reflect what actually ran: ccmc records one
# engine run per model decision, backersim counts the explored plans.
if ! grep -q '"tool": "ccmc"' "$OUT/ccmc.json"; then
    echo "report-check: ccmc report missing tool stamp" >&2
    exit 1
fi
if ! grep -q '"plans_done": 8' "$OUT/backersim.json"; then
    echo "report-check: backersim report lost the plan count" >&2
    exit 1
fi
# The streaming run must tick the stream counters: one stream done,
# events ingested, and at least one online violation on this trace.
if ! grep -q '"streams_done": 1' "$OUT/verify-stream.json"; then
    echo "report-check: verify -stream report lost the stream count" >&2
    exit 1
fi
if grep -q '"stream_violations": 0' "$OUT/verify-stream.json"; then
    echo "report-check: verify -stream report shows no online violations" >&2
    exit 1
fi
if grep -q '"trace_events_ingested": 0' "$OUT/verify-stream.json"; then
    echo "report-check: verify -stream report shows no ingested events" >&2
    exit 1
fi

# The per-model decision counters must cover the hardware/language
# models in both pair-deciding frontends: one decision per registered
# model on a full survey.
for f in "$OUT/ccmc-litmus.json" "$OUT/verify-pair.json"; do
    for m in SC LC TSO RA CAUSAL; do
        if ! grep -q "\"$m\": 1" "$f"; then
            echo "report-check: $f decisions missing model $m" >&2
            exit 1
        fi
    done
done

echo "report-check: OK"

#!/usr/bin/env bash
# Fleet smoke: boot three race-built ccmd replicas, drive fleetctl at
# them over the repository corpus, and require the distributed answer
# to be byte-identical to the single-box ccmc CLI — fault-free AND with
# one replica SIGKILLed mid-run. A final all-dead phase requires a
# clean graceful degradation: exit 3 with typed INCONCLUSIVE(fleet)
# verdicts and the exact shard coverage on stderr.
#
# The ccmc reference output is normalized by stripping the SC
# engine-stats parenthetical ("  (search: N states, ...)"): the stats
# are per-box by nature, so fleetctl intentionally omits them.
#
# Knobs: FLEET_REPEAT (default 40) repetitions of the corpus in the
# kill phase. Run from the repository root.
set -u

REPEAT="${FLEET_REPEAT:-40}"
BINDIR=$(mktemp -d)
LOG=$(mktemp -d)

go build -race -o "$BINDIR/ccmd" ./cmd/ccmd || exit 1
go build -o "$BINDIR/fleetctl" ./cmd/fleetctl || exit 1
go build -o "$BINDIR/ccmc" ./cmd/ccmc || exit 1

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null
        wait "$pid" 2>/dev/null
    done
}
trap cleanup EXIT

# Boot three replicas on free ports; -cache-mb 0 keeps every check a
# real decision so the kill phase has in-flight work to disrupt.
URLS=()
for i in 1 2 3; do
    "$BINDIR/ccmd" -addr 127.0.0.1:0 -cache-mb 0 -max-timeout 30s \
        >"$LOG/ccmd$i.out" 2>"$LOG/ccmd$i.err" &
    PIDS+=($!)
    disown $! # keep SIGKILL reaping out of the job-control chatter
done
for i in 1 2 3; do
    BASE=""
    for _ in $(seq 1 100); do
        BASE=$(sed -n 's|.*serving on \(http://[^ ]*\).*|\1|p' "$LOG/ccmd$i.out" | head -1)
        [ -n "$BASE" ] && break
        if ! kill -0 "${PIDS[$((i-1))]}" 2>/dev/null; then
            echo "fleet-smoke: replica $i died during boot" >&2
            cat "$LOG/ccmd$i.err" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$BASE" ]; then
        echo "fleet-smoke: replica $i never announced its address" >&2
        exit 1
    fi
    URLS+=("$BASE")
done
REPLICAS="${URLS[0]},${URLS[1]},${URLS[2]}"
echo "fleet: $REPLICAS"

FILES=(testdata/*.ccm)

# The single-box reference, with the per-box SC stats stripped.
for f in "${FILES[@]}"; do
    ref="$LOG/ref-$(basename "$f").txt"
    "$BINDIR/ccmc" -explain "$f" | sed 's/  (search: .*)$//' >"$ref"
    code=${PIPESTATUS[0]}
    if [ "$code" -ne 0 ]; then
        echo "fleet-smoke: ccmc reference failed on $f (exit $code)" >&2
        exit 1
    fi
done

echo "== phase 1: fault-free conformance (3 replicas, 4 shards, -explain)"
for f in "${FILES[@]}"; do
    "$BINDIR/fleetctl" -replicas "$REPLICAS" -shards 4 -explain "$f" \
        >"$LOG/fleet-$(basename "$f").txt" 2>"$LOG/fleet-$(basename "$f").err"
    code=$?
    if [ "$code" -ne 0 ]; then
        echo "fleet-smoke: fleetctl exit $code on $f; stderr:" >&2
        cat "$LOG/fleet-$(basename "$f").err" >&2
        exit 1
    fi
    if ! diff -u "$LOG/ref-$(basename "$f").txt" "$LOG/fleet-$(basename "$f").txt"; then
        echo "fleet-smoke: $f fleet output diverged from single-box ccmc" >&2
        exit 1
    fi
    if grep -q degraded "$LOG/fleet-$(basename "$f").err"; then
        echo "fleet-smoke: fault-free run reported degradation on $f" >&2
        exit 1
    fi
done

echo "== phase 2: SIGKILL one replica mid-run, verdicts must not change"
# Expected output: the corpus repeated REPEAT times, each file under
# its == header (no -explain here; the reference is the verdict table).
for f in "${FILES[@]}"; do
    "$BINDIR/ccmc" "$f" | sed 's/  (search: .*)$//' >"$LOG/plain-$(basename "$f").txt"
done
: >"$LOG/expected-kill.txt"
ARGS=()
for _ in $(seq 1 "$REPEAT"); do
    for f in "${FILES[@]}"; do
        echo "== $f" >>"$LOG/expected-kill.txt"
        cat "$LOG/plain-$(basename "$f").txt" >>"$LOG/expected-kill.txt"
        ARGS+=("$f")
    done
done

"$BINDIR/fleetctl" -replicas "$REPLICAS" -shards 4 -max-attempts 6 \
    "${ARGS[@]}" >"$LOG/kill-run.txt" 2>"$LOG/kill-run.err" &
FLEET_PID=$!

# Wait until the run has produced output (it is genuinely mid-flight),
# then SIGKILL replica 3.
for _ in $(seq 1 200); do
    [ -s "$LOG/kill-run.txt" ] && break
    sleep 0.05
done
if ! kill -0 "$FLEET_PID" 2>/dev/null; then
    echo "fleet-smoke: workload finished before the kill could land; raise FLEET_REPEAT" >&2
    exit 1
fi
kill -KILL "${PIDS[2]}" 2>/dev/null
echo "killed replica 3 (${URLS[2]}) mid-run"

wait "$FLEET_PID"
FLEET_CODE=$?
if [ "$FLEET_CODE" -ne 0 ]; then
    echo "fleet-smoke: fleetctl exit $FLEET_CODE after replica kill, want 0; stderr:" >&2
    tail -20 "$LOG/kill-run.err" >&2
    exit 1
fi
if ! diff -q "$LOG/expected-kill.txt" "$LOG/kill-run.txt" >/dev/null; then
    echo "fleet-smoke: verdicts changed after a replica kill" >&2
    diff -u "$LOG/expected-kill.txt" "$LOG/kill-run.txt" | head -40 >&2
    exit 1
fi

echo "== phase 3: all replicas dead, graceful degradation"
for pid in "${PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
done
PIDS=()
"$BINDIR/fleetctl" -replicas "$REPLICAS" -shards 2 -max-attempts 2 \
    testdata/dekker.ccm >"$LOG/degrade.txt" 2>"$LOG/degrade.err"
DEGRADE_CODE=$?
if [ "$DEGRADE_CODE" -ne 3 ]; then
    echo "fleet-smoke: all-dead fleet exit $DEGRADE_CODE, want 3" >&2
    exit 1
fi
if ! grep -q 'INCONCLUSIVE(fleet)' "$LOG/degrade.txt"; then
    echo "fleet-smoke: degraded verdicts are not the typed INCONCLUSIVE(fleet)" >&2
    cat "$LOG/degrade.txt" >&2
    exit 1
fi
if ! grep -q 'covered 0/' "$LOG/degrade.err"; then
    echo "fleet-smoke: degrade report lacks the exact shard coverage" >&2
    cat "$LOG/degrade.err" >&2
    exit 1
fi

echo "fleet-smoke: PASS"

// Command reportcheck validates a -report JSON file against the
// checked-in report schema (testdata/report.schema.json). It exists so
// scripts/report-check.sh and CI can assert the report contract on
// real CLI output without a JSON-schema dependency.
//
// Usage:
//
//	reportcheck -schema testdata/report.schema.json report.json...
//
// Exit codes: 0 when every report validates, 1 on any violation, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reportcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaPath := fs.String("schema", "testdata/report.schema.json", "schema file to validate against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: reportcheck [-schema FILE] report.json...")
		return 2
	}
	schema, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(stderr, "reportcheck:", err)
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		report, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "reportcheck:", err)
			code = 1
			continue
		}
		if err := obs.ValidateReport(report, schema); err != nil {
			fmt.Fprintf(stderr, "reportcheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "reportcheck: %s: OK\n", path)
	}
	return code
}

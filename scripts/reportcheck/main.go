// Command reportcheck validates a -report JSON file against the
// checked-in report schema (testdata/report.schema.json). It exists so
// scripts/report-check.sh and CI can assert the report contract on
// real CLI output without a JSON-schema dependency.
//
// Usage:
//
//	reportcheck -schema testdata/report.schema.json report.json...
//
// Exit codes: 0 when every report validates, 1 on any violation, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	schemaPath := flag.String("schema", "testdata/report.schema.json", "schema file to validate against")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: reportcheck [-schema FILE] report.json...")
		os.Exit(2)
	}
	schema, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportcheck:", err)
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		report, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reportcheck:", err)
			code = 1
			continue
		}
		if err := obs.ValidateReport(report, schema); err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("reportcheck: %s: OK\n", path)
	}
	os.Exit(code)
}

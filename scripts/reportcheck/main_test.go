package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

const schemaFlag = "../../testdata/report.schema.json"

// writeValidReport produces a real report through the same collector
// the CLIs use, so the fixture tracks the actual report format.
func writeValidReport(t *testing.T, path string) {
	t.Helper()
	rc := obs.NewReportCollector("testtool", []string{"-demo"})
	obs.Emit(rc, obs.Event{Kind: obs.RunStart, Run: "SC", Total: 1})
	obs.Emit(rc, obs.Event{Kind: obs.RunEnd, Run: "SC", Str: "IN"})
	if err := rc.Finish(0).WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidReportPasses(t *testing.T) {
	report := t.TempDir() + "/report.json"
	writeValidReport(t, report)
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", schemaFlag, report}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("stdout missing OK confirmation: %s", out.String())
	}
}

func TestRunSchemaViolationFails(t *testing.T) {
	cases := map[string]string{
		"empty object":  `{}`,
		"wrong type":    `{"tool": 42}`,
		"not JSON":      `not json at all`,
		"null document": `null`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			report := t.TempDir() + "/bad.json"
			if err := os.WriteFile(report, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			var out, errb bytes.Buffer
			if code := run([]string{"-schema", schemaFlag, report}, &out, &errb); code != 1 {
				t.Errorf("exit code = %d, want 1; stderr: %s", code, errb.String())
			}
			if errb.Len() == 0 {
				t.Error("violation not reported on stderr")
			}
		})
	}
}

// TestRunMixedReports: one bad report taints the batch (exit 1) but
// every good report is still validated and confirmed.
func TestRunMixedReports(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	bad := dir + "/bad.json"
	writeValidReport(t, good)
	if err := os.WriteFile(bad, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", schemaFlag, good, bad}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "good.json: OK") {
		t.Errorf("good report not confirmed: %s", out.String())
	}
	if !strings.Contains(errb.String(), "bad.json") {
		t.Errorf("bad report not named: %s", errb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,        // no reports
		{"-bogus"}, // unknown flag
		{"-schema", "/nonexistent/schema.json", "r.json"}, // unreadable schema
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestRunMissingReportFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", schemaFlag, "/nonexistent/report.json"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

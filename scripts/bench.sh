#!/usr/bin/env bash
# Run the search-engine benchmark suite and record the results in
# benchmarks/latest.txt for regression tracking.
#
# BENCH_PATTERN selects benchmarks (default: the BenchmarkSearch*
# engine-vs-seed suite); BENCH_TIME sets -benchtime (default: a fixed
# iteration count so runs are quick and comparable).
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkSearch}"
TIME="${BENCH_TIME:-50x}"

mkdir -p benchmarks
go test ./internal/search -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" | tee benchmarks/latest.txt

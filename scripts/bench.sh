#!/usr/bin/env bash
# Run the benchmark suites and record the results in
# benchmarks/latest.txt for regression tracking.
#
# Three suites run: the search-engine micro-suite (BenchmarkSearch* in
# internal/search) at a fixed iteration count so runs are quick and
# comparable, the model-decider suite (BenchmarkDecide* in
# internal/memmodel — TSO, RA, CAUSAL over the litmus corpus), and the
# lattice-sweep suite (BenchmarkLatticeSweep in internal/expt), whose
# single iteration is a multi-second exhaustive sweep and therefore
# gets a small iteration count of its own.
#
# BENCH_PATTERN / BENCH_TIME override the engine suite's selection and
# -benchtime; BENCH_DECIDE_PATTERN / BENCH_DECIDE_TIME do the same for
# the decider suite, and BENCH_SWEEP_PATTERN / BENCH_SWEEP_TIME for
# the sweep suite. BENCH_SWEEP_TIME=0 skips the sweep suite entirely
# (it costs several CPU-seconds per iteration).
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkSearch}"
TIME="${BENCH_TIME:-50x}"
DECIDE_PATTERN="${BENCH_DECIDE_PATTERN:-BenchmarkDecide}"
DECIDE_TIME="${BENCH_DECIDE_TIME:-50x}"
SWEEP_PATTERN="${BENCH_SWEEP_PATTERN:-BenchmarkLatticeSweep}"
SWEEP_TIME="${BENCH_SWEEP_TIME:-2x}"

mkdir -p benchmarks
{
  go test ./internal/search -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME"
  go test ./internal/memmodel -run '^$' -bench "$DECIDE_PATTERN" -benchmem -benchtime "$DECIDE_TIME"
  if [ "$SWEEP_TIME" != "0" ]; then
    go test ./internal/expt -run '^$' -bench "$SWEEP_PATTERN" -benchmem -benchtime "$SWEEP_TIME"
  fi
} | tee benchmarks/latest.txt

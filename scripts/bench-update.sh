#!/usr/bin/env bash
# Promote the most recent benchmark runs to the regression baselines:
# the engine micro-benchmarks (benchmarks/latest.txt, from
# scripts/bench.sh) and the service-level soak trajectory
# (benchmarks/BENCH_serve.json, from scripts/soak-smoke.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

promoted=0
if [ -f benchmarks/latest.txt ]; then
  cp benchmarks/latest.txt benchmarks/baseline.txt
  echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
  promoted=1
fi
if [ -f benchmarks/BENCH_serve.json ]; then
  cp benchmarks/BENCH_serve.json benchmarks/serve-baseline.json
  echo "promoted benchmarks/BENCH_serve.json -> benchmarks/serve-baseline.json"
  promoted=1
fi
if [ "$promoted" -eq 0 ]; then
  echo "nothing to promote; run scripts/bench.sh and/or scripts/soak-smoke.sh first" >&2
  exit 1
fi

#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and
# fail if any benchmark's ns/op regressed by more than
# BENCH_MAX_REGRESSION_PCT percent (default 5) or its allocs/op by
# more than BENCH_MAX_ALLOC_REGRESSION_PCT percent (default: same as
# the ns/op threshold). A machine-readable summary of the comparison
# is written to benchmarks/BENCH_search.json (every latest benchmark,
# base/latest/delta per metric, and the regression list).
#
# Also compares the service-level soak trajectory
# (benchmarks/BENCH_serve.json from cmd/soak) against
# benchmarks/serve-baseline.json when both exist — per-endpoint p99,
# threshold SERVE_MAX_P99_REGRESSION_PCT (default 50) — and skips
# gracefully when either is missing.
#
# Self-contained (awk only): no benchstat dependency. Compare runs on
# the same goos/goarch/CPU as the baseline to avoid false regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="benchmarks/baseline.txt"
LATEST="benchmarks/latest.txt"
JSON_OUT="${BENCH_JSON_OUT:-benchmarks/BENCH_search.json}"
THRESHOLD="${BENCH_MAX_REGRESSION_PCT:-5}"
ALLOC_THRESHOLD="${BENCH_MAX_ALLOC_REGRESSION_PCT:-$THRESHOLD}"

SERVE_LATEST="${SERVE_BENCH_JSON:-benchmarks/BENCH_serve.json}"
SERVE_BASELINE="benchmarks/serve-baseline.json"
SERVE_THRESHOLD="${SERVE_MAX_P99_REGRESSION_PCT:-50}"

# Service-level trajectory: compare the soak harness's per-endpoint
# p99 against a promoted baseline. Latency under load is far noisier
# than ns/op microbenchmarks, so the default threshold is generous.
# Either file missing is a graceful skip — the soak gate itself
# (scripts/soak-smoke.sh) still enforces absolute health.
if [ ! -f "$SERVE_LATEST" ]; then
  echo "no $SERVE_LATEST; skipping serve trajectory compare"
elif [ ! -f "$SERVE_BASELINE" ]; then
  echo "no serve baseline ($SERVE_BASELINE); skipping serve trajectory compare"
  echo "  (promote one with: cp $SERVE_LATEST $SERVE_BASELINE)"
else
  if awk -v thr="$SERVE_THRESHOLD" '
    # Pull "endpoints": { "name": { ... "p99_ms": X ... } } pairs out
    # of the indented soak JSON: a two-space-indented quoted key opens
    # an endpoint object, and the next p99_ms belongs to it.
    /^    "[a-z]+": {/ {
      gsub(/[":{ ]/, "", $1); ep = $1
    }
    /"p99_ms":/ && ep != "" {
      v = $2; gsub(/,/, "", v)
      if (FILENAME == ARGV[1]) base[ep] = v; else latest[ep] = v
      ep = ""
    }
    END {
      fail = 0
      for (e in latest) {
        if (!(e in base) || base[e] + 0 == 0) continue
        delta = (latest[e] - base[e]) / base[e] * 100
        printf("serve %-12s p99 %10.3fms -> %10.3fms  %+7.1f%%\n", e, base[e], latest[e], delta)
        if (delta > thr) {
          printf("REGRESSION serve p99 > %s%%: %s\n", thr, e) > "/dev/stderr"
          fail = 1
        }
      }
      exit fail
    }
  ' "$SERVE_BASELINE" "$SERVE_LATEST"; then
    :
  else
    echo "serve trajectory regressed; see above" >&2
    exit 1
  fi
fi

if [ ! -f "$BASELINE" ] || ! grep -q '^Benchmark' "$BASELINE"; then
  echo "baseline missing or empty; skipping compare"
  exit 0
fi
if [ ! -f "$LATEST" ]; then
  echo "benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
  exit 1
fi

# Cross-CPU deltas are meaningless; on different hardware the compare
# is advisory only (printed, JSON emitted, but never failing). Set
# BENCH_COMPARE_FORCE=1 to gate anyway.
base_cpu=$(grep -m1 '^cpu:' "$BASELINE" || true)
latest_cpu=$(grep -m1 '^cpu:' "$LATEST" || true)
ADVISORY=0
if [ "${BENCH_COMPARE_FORCE:-0}" != "1" ] && [ "$base_cpu" != "$latest_cpu" ]; then
  echo "note: baseline CPU (${base_cpu#cpu: }) != latest CPU (${latest_cpu#cpu: }); compare is advisory"
  ADVISORY=1
fi

awk -v thr="$THRESHOLD" -v athr="$ALLOC_THRESHOLD" -v json="$JSON_OUT" -v advisory="$ADVISORY" '
  # Benchmark output lines look like:
  #   BenchmarkName/sub-8   20   12345 ns/op   678 B/op   9 allocs/op
  # Record the value preceding each unit field, keyed by name.
  /^Benchmark/ {
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") {
        if (FILENAME == ARGV[1]) base_ns[$1] = $(i - 1)
        else latest_ns[$1] = $(i - 1)
      } else if ($i == "allocs/op") {
        if (FILENAME == ARGV[1]) base_al[$1] = $(i - 1)
        else latest_al[$1] = $(i - 1)
      }
    }
    # Remember latest-file encounter order for stable JSON output.
    if (FILENAME != ARGV[1] && !($1 in seen)) {
      seen[$1] = 1
      order[++n] = $1
    }
  }

  # metric emits one JSON object for a metric pair and returns its
  # delta via the global `delta` (-1e9 when no baseline exists).
  function metric(b, l, has_base) {
    if (has_base && b + 0 != 0) {
      delta = (l - b) / b * 100
      return sprintf("{\"base\": %s, \"latest\": %s, \"delta_pct\": %.2f}", b, l, delta)
    }
    delta = -1e9
    return sprintf("{\"base\": null, \"latest\": %s, \"delta_pct\": null}", l)
  }

  END {
    fail = 0
    printf("{\n  \"thresholds_pct\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", thr, athr) > json
    printf("  \"benchmarks\": [") > json
    nreg = 0
    for (k = 1; k <= n; k++) {
      name = order[k]
      ns = metric(base_ns[name], latest_ns[name], name in base_ns)
      dns = delta
      al = metric(base_al[name], latest_al[name], name in base_al)
      dal = delta
      printf("%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", \
             k > 1 ? "," : "", name, ns, al) > json

      if (name in base_ns && base_ns[name] + 0 != 0) {
        printf("%-60s %12.0f -> %12.0f ns/op      %+7.1f%%\n", name, base_ns[name], latest_ns[name], dns)
        if (dns > thr) {
          printf("REGRESSION ns/op > %s%%: %s\n", thr, name) > "/dev/stderr"
          regs[++nreg] = name " ns/op"
          fail = 1
        }
      }
      if (name in base_al && base_al[name] + 0 != 0) {
        printf("%-60s %12.0f -> %12.0f allocs/op  %+7.1f%%\n", name, base_al[name], latest_al[name], dal)
        if (dal > athr) {
          printf("REGRESSION allocs/op > %s%%: %s\n", athr, name) > "/dev/stderr"
          regs[++nreg] = name " allocs/op"
          fail = 1
        }
      }
    }
    printf("\n  ],\n  \"regressions\": [") > json
    for (k = 1; k <= nreg; k++)
      printf("%s\"%s\"", k > 1 ? ", " : "", regs[k]) > json
    printf("],\n  \"ok\": %s\n}\n", fail ? "false" : "true") > json
    if (advisory + 0) exit 0
    exit fail
  }
' "$BASELINE" "$LATEST"

#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and
# fail if any benchmark's ns/op regressed by more than
# BENCH_MAX_REGRESSION_PCT percent (default 5) or its allocs/op by
# more than BENCH_MAX_ALLOC_REGRESSION_PCT percent (default: same as
# the ns/op threshold). A machine-readable summary of the comparison
# is written to benchmarks/BENCH_search.json (every latest benchmark,
# base/latest/delta per metric, and the regression list).
#
# Self-contained (awk only): no benchstat dependency. Compare runs on
# the same goos/goarch/CPU as the baseline to avoid false regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="benchmarks/baseline.txt"
LATEST="benchmarks/latest.txt"
JSON_OUT="${BENCH_JSON_OUT:-benchmarks/BENCH_search.json}"
THRESHOLD="${BENCH_MAX_REGRESSION_PCT:-5}"
ALLOC_THRESHOLD="${BENCH_MAX_ALLOC_REGRESSION_PCT:-$THRESHOLD}"

if [ ! -f "$BASELINE" ] || ! grep -q '^Benchmark' "$BASELINE"; then
  echo "baseline missing or empty; skipping compare"
  exit 0
fi
if [ ! -f "$LATEST" ]; then
  echo "benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
  exit 1
fi

# Cross-CPU deltas are meaningless; on different hardware the compare
# is advisory only (printed, JSON emitted, but never failing). Set
# BENCH_COMPARE_FORCE=1 to gate anyway.
base_cpu=$(grep -m1 '^cpu:' "$BASELINE" || true)
latest_cpu=$(grep -m1 '^cpu:' "$LATEST" || true)
ADVISORY=0
if [ "${BENCH_COMPARE_FORCE:-0}" != "1" ] && [ "$base_cpu" != "$latest_cpu" ]; then
  echo "note: baseline CPU (${base_cpu#cpu: }) != latest CPU (${latest_cpu#cpu: }); compare is advisory"
  ADVISORY=1
fi

awk -v thr="$THRESHOLD" -v athr="$ALLOC_THRESHOLD" -v json="$JSON_OUT" -v advisory="$ADVISORY" '
  # Benchmark output lines look like:
  #   BenchmarkName/sub-8   20   12345 ns/op   678 B/op   9 allocs/op
  # Record the value preceding each unit field, keyed by name.
  /^Benchmark/ {
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") {
        if (FILENAME == ARGV[1]) base_ns[$1] = $(i - 1)
        else latest_ns[$1] = $(i - 1)
      } else if ($i == "allocs/op") {
        if (FILENAME == ARGV[1]) base_al[$1] = $(i - 1)
        else latest_al[$1] = $(i - 1)
      }
    }
    # Remember latest-file encounter order for stable JSON output.
    if (FILENAME != ARGV[1] && !($1 in seen)) {
      seen[$1] = 1
      order[++n] = $1
    }
  }

  # metric emits one JSON object for a metric pair and returns its
  # delta via the global `delta` (-1e9 when no baseline exists).
  function metric(b, l, has_base) {
    if (has_base && b + 0 != 0) {
      delta = (l - b) / b * 100
      return sprintf("{\"base\": %s, \"latest\": %s, \"delta_pct\": %.2f}", b, l, delta)
    }
    delta = -1e9
    return sprintf("{\"base\": null, \"latest\": %s, \"delta_pct\": null}", l)
  }

  END {
    fail = 0
    printf("{\n  \"thresholds_pct\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", thr, athr) > json
    printf("  \"benchmarks\": [") > json
    nreg = 0
    for (k = 1; k <= n; k++) {
      name = order[k]
      ns = metric(base_ns[name], latest_ns[name], name in base_ns)
      dns = delta
      al = metric(base_al[name], latest_al[name], name in base_al)
      dal = delta
      printf("%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", \
             k > 1 ? "," : "", name, ns, al) > json

      if (name in base_ns && base_ns[name] + 0 != 0) {
        printf("%-60s %12.0f -> %12.0f ns/op      %+7.1f%%\n", name, base_ns[name], latest_ns[name], dns)
        if (dns > thr) {
          printf("REGRESSION ns/op > %s%%: %s\n", thr, name) > "/dev/stderr"
          regs[++nreg] = name " ns/op"
          fail = 1
        }
      }
      if (name in base_al && base_al[name] + 0 != 0) {
        printf("%-60s %12.0f -> %12.0f allocs/op  %+7.1f%%\n", name, base_al[name], latest_al[name], dal)
        if (dal > athr) {
          printf("REGRESSION allocs/op > %s%%: %s\n", athr, name) > "/dev/stderr"
          regs[++nreg] = name " allocs/op"
          fail = 1
        }
      }
    }
    printf("\n  ],\n  \"regressions\": [") > json
    for (k = 1; k <= nreg; k++)
      printf("%s\"%s\"", k > 1 ? ", " : "", regs[k]) > json
    printf("],\n  \"ok\": %s\n}\n", fail ? "false" : "true") > json
    if (advisory + 0) exit 0
    exit fail
  }
' "$BASELINE" "$LATEST"

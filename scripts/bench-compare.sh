#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and
# fail if any benchmark's ns/op regressed by more than
# BENCH_MAX_REGRESSION_PCT percent (default 5).
#
# Self-contained (awk only): no benchstat dependency. Compare runs on
# the same goos/goarch/CPU as the baseline to avoid false regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="benchmarks/baseline.txt"
LATEST="benchmarks/latest.txt"
THRESHOLD="${BENCH_MAX_REGRESSION_PCT:-5}"

if [ ! -f "$BASELINE" ] || ! grep -q '^Benchmark' "$BASELINE"; then
  echo "baseline missing or empty; skipping compare"
  exit 0
fi
if [ ! -f "$LATEST" ]; then
  echo "benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
  exit 1
fi

awk -v thr="$THRESHOLD" '
  # Benchmark output lines look like:
  #   BenchmarkName/sub-8   20   12345 ns/op   678 B/op   9 allocs/op
  # Record the value preceding each "ns/op" field, keyed by name.
  /^Benchmark/ {
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") {
        if (FILENAME == ARGV[1]) base[$1] = $(i - 1)
        else latest[$1] = $(i - 1)
        break
      }
    }
  }
  END {
    fail = 0
    for (name in latest) {
      if (!(name in base) || base[name] + 0 == 0) continue
      delta = (latest[name] - base[name]) / base[name] * 100
      printf("%-60s %12.0f -> %12.0f ns/op  %+7.1f%%\n", name, base[name], latest[name], delta)
      if (delta > thr) {
        printf("REGRESSION > %s%%: %s\n", thr, name) > "/dev/stderr"
        fail = 1
      }
    }
    exit fail
  }
' "$BASELINE" "$LATEST"

#!/usr/bin/env bash
# Examples smoke test: build and run every examples/* program and
# assert each exits 0. The examples are executable documentation; a
# library change that breaks one should fail CI, not a reader's first
# five minutes with the repo. Run from the repository root.
set -u

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

fail=0
for dir in examples/*/; do
    name=$(basename "$dir")
    echo "== $name"
    if ! go build -o "$BIN/$name" "./$dir"; then
        echo "examples-smoke: $name failed to build" >&2
        fail=1
        continue
    fi
    if ! "$BIN/$name" >"$BIN/$name.out" 2>&1; then
        echo "examples-smoke: $name exited nonzero; output:" >&2
        tail -20 "$BIN/$name.out" >&2
        fail=1
        continue
    fi
    if [ ! -s "$BIN/$name.out" ]; then
        echo "examples-smoke: $name produced no output" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "examples-smoke: FAILED" >&2
    exit 1
fi
echo "examples-smoke: all examples built and ran"

#!/usr/bin/env bash
# Soak smoke: boot the ccmd daemon on a free port, drive it with the
# soak load generator in gate mode for a short sustained burst, and
# require a clean bill of health — zero daemon panics, zero missing
# request IDs, bounded error rate, and no goroutine growth after the
# load drains. Writes the service-level trajectory to
# benchmarks/BENCH_serve.json (kept as a CI artifact).
#
# Knobs: SOAK_DURATION (default 30s), SOAK_CLIENTS (default 8),
# SOAK_RACE=1 builds the daemon with -race (slower, sharper).
# Run from the repository root.
set -u

DURATION="${SOAK_DURATION:-30s}"
CLIENTS="${SOAK_CLIENTS:-8}"
OUT="${SOAK_OUT:-benchmarks/BENCH_serve.json}"
BINDIR=$(mktemp -d)
LOG=$(mktemp -d)

RACE=()
if [ "${SOAK_RACE:-0}" = "1" ]; then
    RACE=(-race)
fi

go build "${RACE[@]}" -o "$BINDIR/ccmd" ./cmd/ccmd || exit 1
go build -o "$BINDIR/soak" ./cmd/soak || exit 1

echo "== boot ccmd (port 0)"
"$BINDIR/ccmd" -addr 127.0.0.1:0 -max-timeout 10s -timeout 5s \
    -access-log "$LOG/access.log" >"$LOG/ccmd.out" 2>"$LOG/ccmd.err" &
CCMD_PID=$!
trap 'kill "$CCMD_PID" 2>/dev/null; wait "$CCMD_PID" 2>/dev/null' EXIT

BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's|.*serving on \(http://[^ ]*\).*|\1|p' "$LOG/ccmd.out" | head -1)
    [ -n "$BASE" ] && break
    if ! kill -0 "$CCMD_PID" 2>/dev/null; then
        echo "soak-smoke: daemon died during boot" >&2
        cat "$LOG/ccmd.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$BASE" ]; then
    echo "soak-smoke: daemon never announced its address" >&2
    exit 1
fi
echo "daemon at $BASE"

echo "== soak ($CLIENTS clients, $DURATION, gate mode)"
"$BINDIR/soak" -target "$BASE" -c "$CLIENTS" -duration "$DURATION" \
    -out "$OUT" \
    -max-error-rate 0 -max-panics 0 -max-goroutine-growth 16
SOAK_CODE=$?

echo "== drain (SIGTERM)"
kill -TERM "$CCMD_PID"
DRAIN_OK=1
for _ in $(seq 1 100); do
    if ! kill -0 "$CCMD_PID" 2>/dev/null; then
        DRAIN_OK=0
        break
    fi
    sleep 0.1
done
trap - EXIT
wait "$CCMD_PID" 2>/dev/null
CCMD_CODE=$?

if [ "$SOAK_CODE" -ne 0 ]; then
    echo "soak-smoke: soak gate failed (exit $SOAK_CODE)" >&2
    exit 1
fi
if [ "$DRAIN_OK" -ne 0 ]; then
    echo "soak-smoke: daemon did not exit within 10s of SIGTERM" >&2
    exit 1
fi
if [ "$CCMD_CODE" -ne 0 ]; then
    echo "soak-smoke: daemon exit $CCMD_CODE, want 0; stderr:" >&2
    cat "$LOG/ccmd.err" >&2
    exit 1
fi
if ! grep -q "drained" "$LOG/ccmd.out"; then
    echo "soak-smoke: daemon never confirmed the drain" >&2
    exit 1
fi
if [ ! -s "$LOG/access.log" ]; then
    echo "soak-smoke: access log is empty" >&2
    exit 1
fi

echo "== trajectory ($OUT)"
grep -E '"(p99_ms|rps|ok)"' "$OUT" || true
echo "soak-smoke: PASS"

package ccm_test

import (
	"fmt"

	ccm "repro"
)

// The basic flow: build a computation, attach an observer function,
// ask a model.
func Example() {
	c := ccm.NewComputation(1)
	w := c.AddNode(ccm.W(0))
	r := c.AddNode(ccm.R(0))
	c.MustAddEdge(w, r)

	phi := ccm.NewObserver(c)
	phi.Set(0, r, w)

	fmt.Println(ccm.SC.Contains(c, phi))
	fmt.Println(ccm.LC.Contains(c, phi))
	// Output:
	// true
	// true
}

// Dekker's outcome separates sequential consistency from location
// consistency: with two locations, LC lets both branches miss each
// other's writes.
func ExampleModel_dekker() {
	c := ccm.NewComputation(2)
	w1 := c.AddNode(ccm.W(0))
	r1 := c.AddNode(ccm.R(1))
	w2 := c.AddNode(ccm.W(1))
	r2 := c.AddNode(ccm.R(0))
	c.MustAddEdge(w1, r1)
	c.MustAddEdge(w2, r2)

	phi := ccm.NewObserver(c) // both reads observe ⊥ at the other location
	phi.Set(0, r1, w1)
	phi.Set(1, r2, w2)

	fmt.Println("SC:", ccm.SC.Contains(c, phi))
	fmt.Println("LC:", ccm.LC.Contains(c, phi))
	// Output:
	// SC: false
	// LC: true
}

// Post-mortem verification: decide whether observed values are
// explainable, without knowing the observer function.
func ExampleVerifySC() {
	c := ccm.NewComputation(1)
	w := c.AddNode(ccm.W(0))
	r := c.AddNode(ccm.R(0))
	c.MustAddEdge(w, r)

	tr := ccm.NewTrace(c)
	tr.WriteVal[w] = 42
	tr.ReadVal[r] = 42
	_, ok := ccm.VerifySC(tr)
	fmt.Println("read 42:", ok)

	tr.ReadVal[r] = ccm.Undefined // stale read past the write
	_, ok = ccm.VerifySC(tr)
	fmt.Println("read ⊥: ", ok)
	// Output:
	// read 42: true
	// read ⊥:  false
}

// Custom Q-dag consistency models plug in as predicates (Definition 20).
func ExampleQDag() {
	// Require all three triple members to touch the location: a very
	// weak model.
	weak := ccm.QDag(ccm.Predicate{
		Name: "TTT",
		Holds: func(c *ccm.Computation, l ccm.Loc, u, v, w ccm.Node) bool {
			return u != ccm.Bottom &&
				c.Op(u).Touches(l) && c.Op(v).Touches(l) && c.Op(w).Touches(l)
		},
	})
	c := ccm.NewComputation(1)
	fmt.Println(weak.Name(), weak.Contains(c, ccm.NewObserver(c)))
	// Output:
	// TTT true
}

// The greedy online algorithm is total for constructible models: it
// can answer node by node without ever getting stuck.
func ExampleNewUniversalMemory() {
	c := ccm.NewComputation(1)
	w := c.AddNode(ccm.W(0))
	r := c.AddNode(ccm.R(0))
	c.MustAddEdge(w, r)

	order, _ := c.Dag().TopoSort()
	phi, err := ccm.RunMemory(ccm.NewUniversalMemory(ccm.LC), c, order)
	fmt.Println(err, ccm.LC.Contains(c, phi))
	// Output:
	// <nil> true
}

// Benchmark harness: one benchmark per figure/experiment of the paper,
// per the index in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks double as regeneration scripts: custom metrics carry
// the experiment's result (e.g. pairs checked, violations found,
// speedup), and each benchmark fails if the paper's claim does not
// hold, so `-bench` doubles as a slow correctness sweep.
package ccm

import (
	"math/rand"
	"testing"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/cilk"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/enum"
	"repro/internal/expt"
	"repro/internal/memmodel"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/paperfig"
	"repro/internal/proccentric"
	"repro/internal/sched"
	"repro/internal/trace"
)

// E1 — Figure 1: the full lattice machine-checked over the exhaustive
// 3-node universe (every inclusion; strictness where witnesses fit).
func BenchmarkFig1Lattice3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := expt.RunLattice(3, 1)
		if !rep.AllOK() {
			b.Fatalf("lattice mismatch:\n%s", rep)
		}
		b.ReportMetric(float64(rep.Pairs), "pairs")
	}
}

// E1 — Figure 1 at 4 nodes: all strictness and incomparability edges,
// including LC ⊊ NN (Figure 4 witness) and NW vs WN incomparability
// (Figure 2/3 witnesses).
func BenchmarkFig1Lattice4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := expt.RunLattice(4, 1)
		if !rep.AllOK() {
			b.Fatalf("lattice mismatch:\n%s", rep)
		}
		b.ReportMetric(float64(rep.Pairs), "pairs")
	}
}

// E2 — Figure 2: the witness pair is in WW and NW but not WN or NN.
func BenchmarkFig2Witness(b *testing.B) {
	fx := paperfig.Figure2()
	for i := 0; i < b.N; i++ {
		if !memmodel.WW.Contains(fx.Comp, fx.Obs) || !memmodel.NW.Contains(fx.Comp, fx.Obs) ||
			memmodel.WN.Contains(fx.Comp, fx.Obs) || memmodel.NN.Contains(fx.Comp, fx.Obs) {
			b.Fatal("Figure 2 memberships wrong")
		}
	}
}

// E3 — Figure 3: the mirror witness is in WW and WN but not NW or NN.
func BenchmarkFig3Witness(b *testing.B) {
	fx := paperfig.Figure3()
	for i := 0; i < b.N; i++ {
		if !memmodel.WW.Contains(fx.Comp, fx.Obs) || !memmodel.WN.Contains(fx.Comp, fx.Obs) ||
			memmodel.NW.Contains(fx.Comp, fx.Obs) || memmodel.NN.Contains(fx.Comp, fx.Obs) {
			b.Fatal("Figure 3 memberships wrong")
		}
	}
}

// E4 — Figure 4: NN is not constructible. The prefix pair is in NN but
// fails to extend across non-writing final nodes.
func BenchmarkFig4NonConstructibility(b *testing.B) {
	fx := paperfig.Figure4()
	ops := computation.AllOps(1)
	for i := 0; i < b.N; i++ {
		if !memmodel.NN.Contains(fx.Prefix, fx.PrefixObs) {
			b.Fatal("prefix must be in NN")
		}
		if _, ok := memmodel.ConstructibleAtAug(memmodel.NN, fx.Prefix, fx.PrefixObs, ops); ok {
			b.Fatal("NN must fail the augmentation criterion")
		}
	}
}

// E5 — Theorem 19: SC and LC are complete, monotonic and constructible
// over the exhaustive universe.
func BenchmarkTheorem19Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []memmodel.Model{memmodel.SC, memmodel.LC} {
			rep := expt.RunProperties(m, 3, 1)
			if !rep.Complete || !rep.Monotonic || !rep.ConstructibleAug {
				b.Fatalf("Theorem 19 failed:\n%s", rep)
			}
			b.ReportMetric(float64(rep.Pairs), "pairs")
		}
	}
}

// E6 — Theorem 21: NN is stronger than every Q-dag consistency model,
// checked over the exhaustive 3-node universe for the four named
// predicates.
func BenchmarkTheorem21NNStrongest(b *testing.B) {
	models := []memmodel.Model{memmodel.NW, memmodel.WN, memmodel.WW}
	for i := 0; i < b.N; i++ {
		checked := 0
		enum.EachPair(3, 1, func(c *computation.Computation, o *observer.Observer) bool {
			if !memmodel.NN.Contains(c, o) {
				return true
			}
			checked++
			for _, m := range models {
				if !m.Contains(c, o) {
					b.Fatalf("NN pair outside %s: %v / %v", m.Name(), c, o)
				}
			}
			return true
		})
		b.ReportMetric(float64(checked), "NN-pairs")
	}
}

// E7 — Theorem 23: the constructible version of NN equals LC on the
// interior of the 4-node universe (with LC ⊆ NN* ⊆ survivors, interior
// equality is a proof for those sizes).
func BenchmarkTheorem23NNStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := expt.RunStar(memmodel.NN, 4, 1)
		if rep.FirstMismatch != "" {
			b.Fatalf("NN* ≠ LC: %s", rep.FirstMismatch)
		}
		total := 0
		for _, k := range rep.StarPairs {
			total += k
		}
		b.ReportMetric(float64(total), "survivors")
	}
}

// E8 — BACKER maintains LC: simulated executions of random computations
// under work stealing, post-mortem verified. The metric counts verified
// executions per iteration; any violation fails the benchmark.
func BenchmarkBackerLC(b *testing.B) {
	rng := rand.New(rand.NewSource(2024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := randomMemComputation(rng, 40, 2)
		res, err := backer.RunWorkStealing(c, 4, rng, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !checker.VerifyLC(res.Trace).OK {
			b.Fatalf("BACKER violated LC on %v", c)
		}
	}
	b.ReportMetric(1, "lc-verified/op")
}

// E9 — speedup shape of [BFJ+96]: T_P on a spawn tree for P = 1..32,
// reported as a speedup metric per sub-benchmark. The shape assertion
// (T_P within the Graham window [max(T1/P, T∞), T1/P + T∞ + slack])
// fails the bench if violated.
func BenchmarkBackerSpeedup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := dag.SpawnTree(8)
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		l := computation.Loc(rng.Intn(2))
		if rng.Intn(4) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, 2)
	t1 := float64(sched.Work(c, nil))
	tinf := float64(sched.Span(c, nil))

	for _, P := range []int{1, 2, 4, 8, 16, 32} {
		P := P
		b.Run(benchName("P", P), func(b *testing.B) {
			var totalSpeedup float64
			for i := 0; i < b.N; i++ {
				s, err := sched.WorkStealing(c, P, nil, rng)
				if err != nil {
					b.Fatal(err)
				}
				res, err := backer.Run(s, nil)
				if err != nil {
					b.Fatal(err)
				}
				if !checker.VerifyLC(res.Trace).OK {
					b.Fatal("sweep execution violated LC")
				}
				tp := float64(s.Makespan)
				if tp < tinf || tp*float64(P) < t1 {
					b.Fatalf("makespan %v below lower bounds", tp)
				}
				if tp > t1/float64(P)+tinf+float64(c.NumNodes()) {
					b.Fatalf("makespan %v above the Graham window", tp)
				}
				totalSpeedup += t1 / tp
			}
			b.ReportMetric(totalSpeedup/float64(b.N), "speedup")
		})
	}
}

// E10 — post-mortem verification throughput: SC and LC checking of
// traces produced by last-writer executions.
func BenchmarkPostmortem(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var traces []*trace.Trace
	for len(traces) < 32 {
		c := randomMemComputation(rng, 20, 2)
		order, err := c.Dag().TopoSort()
		if err != nil {
			continue
		}
		traces = append(traces, trace.FromObserver(c, observer.FromLastWriter(c, order)))
	}
	b.Run("LC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !checker.VerifyLC(traces[i%len(traces)]).OK {
				b.Fatal("last-writer trace must verify")
			}
		}
	})
	b.Run("SC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !checker.VerifySC(traces[i%len(traces)]).OK {
				b.Fatal("last-writer trace must verify")
			}
		}
	})
}

// Ablation — the polynomial LC decision procedure (SerializeLoc) versus
// direct Q-dag membership checking on identical pairs, to quantify the
// decision-procedure costs behind the experiments.
func BenchmarkDecisionProcedures(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	type pair struct {
		c *computation.Computation
		o *observer.Observer
	}
	var pairs []pair
	for len(pairs) < 16 {
		c := randomMemComputation(rng, 24, 2)
		order, err := c.Dag().TopoSort()
		if err != nil {
			continue
		}
		pairs = append(pairs, pair{c, observer.FromLastWriter(c, order)})
	}
	b.Run("LC-poly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if !memmodel.LC.Contains(p.c, p.o) {
				b.Fatal("last-writer pair must be LC")
			}
		}
	})
	b.Run("SC-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if !memmodel.SC.Contains(p.c, p.o) {
				b.Fatal("last-writer pair must be SC")
			}
		}
	})
	b.Run("NN-triples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if !memmodel.NN.Contains(p.c, p.o) {
				b.Fatal("last-writer pair must be NN")
			}
		}
	})
}

// E11 — online memories: throughput of the Serial (SC) and online
// BACKER (LC) algorithms, with model membership asserted per run.
func BenchmarkOnlineMemories(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	c := randomMemComputation(rng, 30, 2)
	order, err := c.Dag().TopoSort()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		mem := memory.NewSerial()
		for i := 0; i < b.N; i++ {
			o, err := memory.Run(mem, c, order)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && !memmodel.SC.Contains(c, o) {
				b.Fatal("serial memory left SC")
			}
		}
	})
	b.Run("backer-online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mem := memory.NewBacker(4, rng)
			o, err := memory.Run(mem, c, order)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && !memmodel.LC.Contains(c, o) {
				b.Fatal("online BACKER left LC")
			}
		}
	})
	b.Run("universal-LC", func(b *testing.B) {
		small := randomMemComputation(rng, 8, 1)
		smallOrder, err := small.Dag().TopoSort()
		if err != nil {
			b.Fatal(err)
		}
		mem := memory.NewUniversal(memmodel.LC)
		for i := 0; i < b.N; i++ {
			if _, err := memory.Run(mem, small, smallOrder); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E12 — litmus suite: classify every litmus outcome under SC (by both
// the checker and Lamport simulation) and LC; any disagreement with the
// textbook classification fails the bench.
func BenchmarkLitmus(b *testing.B) {
	suite := proccentric.All()
	for i := 0; i < b.N; i++ {
		for _, l := range suite {
			tr, err := l.Program.Trace(l.Outcome)
			if err != nil {
				b.Fatal(err)
			}
			if checker.VerifySC(tr).OK != l.AllowSC ||
				checker.VerifyLC(tr).OK != l.AllowLC ||
				l.Program.LamportAllows(l.Outcome) != l.AllowSC {
				b.Fatalf("%s misclassified", l.Name)
			}
		}
	}
	b.ReportMetric(float64(len(suite)), "litmus-tests")
}

// E12b — end-to-end Cilk program execution: fib on the BACKER machine,
// correctness and LC asserted per run.
func BenchmarkCilkFib(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	p, out := cilkFib(10)
	want := trace.Value(55)
	c := p.Computation()
	for _, P := range []int{1, 4, 16} {
		P := P
		b.Run(benchName("P", P), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := cilk.Execute(p, P, rng, nil)
				if err != nil {
					b.Fatal(err)
				}
				var got trace.Value
				for u := 0; u < c.NumNodes(); u++ {
					if c.Op(dag.Node(u)).IsWriteTo(out) {
						got = res.WriteVal[dag.Node(u)]
					}
				}
				if got != want {
					b.Fatalf("fib(10) = %v", got)
				}
				if !checker.VerifyLC(res.Backer.Trace).OK {
					b.Fatal("fib trace not LC")
				}
			}
		})
	}
}

func cilkFib(n int) (*cilk.Program, computation.Loc) {
	var out computation.Loc
	var build func(t *cilk.Thread, res computation.Loc, k int)
	build = func(t *cilk.Thread, res computation.Loc, k int) {
		if k < 2 {
			t.Write(res, cilk.Const(trace.Value(k)))
			return
		}
		l1, l2 := t.AllocLoc(), t.AllocLoc()
		t.Spawn(func(c *cilk.Thread) { build(c, l1, k-1) })
		t.Spawn(func(c *cilk.Thread) { build(c, l2, k-2) })
		t.Sync()
		r1, r2 := t.Read(l1), t.Read(l2)
		t.Write(res, func(env *cilk.Env) trace.Value {
			return env.Value(r1) + env.Value(r2)
		})
	}
	p := cilk.New(0, func(t *cilk.Thread) {
		out = t.AllocLoc()
		build(t, out, n)
	})
	return p, out
}

// Section 7 census including the extension models (GSLC, Amnesiac):
// membership counts over the 3-node universe, with the extended lattice
// relations asserted.
func BenchmarkExtendedCensus(b *testing.B) {
	models := []memmodel.Model{
		memmodel.SC, memmodel.LC, memmodel.NN, memmodel.NW,
		memmodel.GSLC, memmodel.WN, memmodel.WW, memmodel.Amnesiac,
	}
	for i := 0; i < b.N; i++ {
		counts := make([]int, len(models))
		enum.EachPair(3, 1, func(c *computation.Computation, o *observer.Observer) bool {
			for j, m := range models {
				if m.Contains(c, o) {
					counts[j]++
				}
			}
			// Extended lattice spot checks per pair.
			if memmodel.NW.Contains(c, o) && !memmodel.GSLC.Contains(c, o) {
				b.Fatal("NW ⊆ GSLC violated")
			}
			if memmodel.GSLC.Contains(c, o) && !memmodel.WW.Contains(c, o) {
				b.Fatal("GSLC ⊆ WW violated")
			}
			if memmodel.Amnesiac.Contains(c, o) && !memmodel.WN.Contains(c, o) {
				b.Fatal("Amnesiac ⊆ WN violated")
			}
			return true
		})
		b.ReportMetric(float64(counts[4]), "gslc-pairs")
	}
}

// Scaling of the polynomial LC decision procedure: membership on
// last-writer pairs over spawn trees of growing size. The per-op time
// should grow polynomially (roughly cubically), not exponentially.
func BenchmarkLCScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	for _, levels := range []int{5, 7, 9} {
		g := dag.SpawnTree(levels)
		all := computation.AllOps(2)
		ops := make([]computation.Op, g.NumNodes())
		for i := range ops {
			ops[i] = all[rng.Intn(len(all))]
		}
		c := computation.MustFrom(g, ops, 2)
		order, err := c.Dag().TopoSort()
		if err != nil {
			b.Fatal(err)
		}
		o := observer.FromLastWriter(c, order)
		b.Run(benchName("nodes", c.NumNodes()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !memmodel.LC.Contains(c, o) {
					b.Fatal("last-writer pair must be LC")
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + "=" + digits
}

func randomMemComputation(rng *rand.Rand, n, locs int) *computation.Computation {
	g := dag.Random(rng, n, 0.25)
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		switch rng.Intn(4) {
		case 0:
			ops[i] = computation.W(l)
		case 1:
			ops[i] = computation.N
		default:
			ops[i] = computation.R(l)
		}
	}
	return computation.MustFrom(g, ops, locs)
}

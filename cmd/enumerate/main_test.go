package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/obs"
)

func TestRunCensus(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "3"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if want := expt.MembershipCensusParallel(3, 1, 0); out.String() != want {
		t.Errorf("census differs from the library's:\n%q\n%q", out.String(), want)
	}
	for _, model := range []string{"SC", "LC", "WW"} {
		if !strings.Contains(out.String(), model) {
			t.Errorf("census table missing model %s:\n%s", model, out.String())
		}
	}
}

// TestRunCensusWorkersAgree: the parallel sweep must produce the same
// table regardless of shard count.
func TestRunCensusWorkersAgree(t *testing.T) {
	var seq, par bytes.Buffer
	var errb bytes.Buffer
	if code := run([]string{"-n", "3", "-workers", "1"}, &seq, &errb); code != 0 {
		t.Fatalf("sequential run failed: %d; %s", code, errb.String())
	}
	if code := run([]string{"-n", "3", "-workers", "4"}, &par, &errb); code != 0 {
		t.Fatalf("parallel run failed: %d; %s", code, errb.String())
	}
	if seq.String() != par.String() {
		t.Errorf("census depends on worker count:\n%q\n%q", seq.String(), par.String())
	}
}

func TestRunPerSize(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "3", "-persize"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header plus one row per size 0..3.
	if len(lines) != 5 {
		t.Fatalf("per-size table has %d lines, want 5:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "size") {
		t.Errorf("missing header: %q", lines[0])
	}
	// Size 1 with one location: one computation (a single write; a
	// lone read cannot be observed) per kind — spot-check the row shape.
	for _, line := range lines[1:] {
		if fields := strings.Fields(line); len(fields) != 4 {
			t.Errorf("malformed row %q", line)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{{"-bogus"}, {"positional"}} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRunReport: the census run participates in the observability
// contract — -report emits a schema-valid report naming the tool.
func TestRunReport(t *testing.T) {
	reportFile := t.TempDir() + "/report.json"
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "2", "-report", reportFile}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	report, err := os.ReadFile(reportFile)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := os.ReadFile("../../testdata/report.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(report, schema); err != nil {
		t.Errorf("report violates the schema: %v", err)
	}
	if !strings.Contains(string(report), "enumerate") {
		t.Errorf("report does not name the tool: %s", report)
	}
}

// TestRunReduceMatches: -reduce must print the exact same tables as the
// unreduced sweeps (orbit weighting preserves every total).
func TestRunReduceMatches(t *testing.T) {
	for _, tc := range [][]string{
		{"-n", "3"},
		{"-n", "3", "-persize"},
		{"-n", "3", "-locs", "2", "-persize"},
	} {
		var full, red, errb bytes.Buffer
		if code := run(tc, &full, &errb); code != 0 {
			t.Fatalf("%v: exit code = %d; stderr: %s", tc, code, errb.String())
		}
		if code := run(append(append([]string{}, tc...), "-reduce"), &red, &errb); code != 0 {
			t.Fatalf("%v -reduce: exit code = %d; stderr: %s", tc, code, errb.String())
		}
		if full.String() != red.String() {
			t.Errorf("%v: -reduce output differs:\n%s\nvs\n%s", tc, red.String(), full.String())
		}
	}
}

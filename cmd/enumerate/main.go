// Command enumerate prints statistics about the exhaustive universes
// the experiments quantify over: how many computations and observer
// functions exist up to a size bound, and how the pair counts split
// across the memory models.
//
// Usage:
//
//	enumerate [-n MAXNODES] [-locs L] [-persize]
package main

import (
	"flag"
	"fmt"

	"repro/internal/computation"
	"repro/internal/enum"
	"repro/internal/expt"
	"repro/internal/observer"
)

func main() {
	maxNodes := flag.Int("n", 4, "maximum computation size (nodes)")
	locs := flag.Int("locs", 1, "number of memory locations")
	perSize := flag.Bool("persize", false, "break counts down by computation size")
	flag.Parse()

	if *perSize {
		fmt.Printf("%-6s %-14s %-14s %-12s\n", "size", "computations", "pairs", "max Φ/comp")
		for n := 0; n <= *maxNodes; n++ {
			comps, pairs, maxObs := 0, 0, 0
			enum.EachComputation(n, *locs, func(c *computation.Computation) bool {
				comps++
				k := observer.Count(c, 0)
				pairs += k
				if k > maxObs {
					maxObs = k
				}
				return true
			})
			fmt.Printf("%-6d %-14d %-14d %-12d\n", n, comps, pairs, maxObs)
		}
		return
	}
	fmt.Print(expt.MembershipCensus(*maxNodes, *locs))
}

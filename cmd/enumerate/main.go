// Command enumerate prints statistics about the exhaustive universes
// the experiments quantify over: how many computations and observer
// functions exist up to a size bound, and how the pair counts split
// across the memory models.
//
// Usage:
//
//	enumerate [-n MAXNODES] [-locs L] [-persize] [-workers W] [-reduce]
//
// -reduce enumerates canonical representatives only and weights each
// count by its orbit (isomorphism-class) size; every printed number is
// identical to the unreduced sweep, but far fewer computations are
// materialized.
//
// Exit codes: 0 on success, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/computation"
	"repro/internal/enum"
	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/observer"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("enumerate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxNodes := fs.Int("n", 4, "maximum computation size (nodes)")
	locs := fs.Int("locs", 1, "number of memory locations")
	perSize := fs.Bool("persize", false, "break counts down by computation size")
	workers := fs.Int("workers", 0, "parallel sweep workers for the census (0 = GOMAXPROCS)")
	reduce := fs.Bool("reduce", false, "count canonical representatives only, orbit-weighted (identical totals)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "enumerate: unexpected arguments %v\n", fs.Args())
		return 2
	}
	sess, err := obsFlags.Start("enumerate", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "enumerate:", err)
		return 2
	}
	code := runCounts(*maxNodes, *locs, *perSize, *workers, *reduce, sess.Rec, stdout)
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "enumerate:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func runCounts(maxNodes, locs int, perSize bool, workers int, reduce bool, rec obs.Recorder, stdout io.Writer) int {
	if perSize {
		r := obs.WithRun(rec, "persize")
		var live *obs.Counters
		if rec != nil {
			live = &obs.Counters{}
			obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: maxNodes + 1, Live: live})
		}
		fmt.Fprintf(stdout, "%-6s %-14s %-14s %-12s\n", "size", "computations", "pairs", "max Φ/comp")
		for n := 0; n <= maxNodes; n++ {
			comps, pairs, maxObs := 0, 0, 0
			// count folds one computation (of weight orbit, 1 when
			// unreduced) into the per-size totals; observer counts are
			// isomorphism-invariant, so maxObs needs no weighting.
			count := func(c *computation.Computation, orbit int) bool {
				comps += orbit
				k := observer.Count(c, 0)
				pairs += k * orbit
				if k > maxObs {
					maxObs = k
				}
				if live != nil {
					live.States.Add(1)
				}
				return true
			}
			if reduce {
				enum.EachComputationReduced(n, locs, func(c *computation.Computation, orbit int64) bool {
					return count(c, int(orbit))
				})
			} else {
				enum.EachComputation(n, locs, func(c *computation.Computation) bool {
					return count(c, 1)
				})
			}
			fmt.Fprintf(stdout, "%-6d %-14d %-14d %-12d\n", n, comps, pairs, maxObs)
			if live != nil {
				live.Done.Add(1)
			}
		}
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: "OK"})
		return 0
	}
	r := obs.WithRun(rec, "census")
	obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
	if reduce {
		fmt.Fprint(stdout, expt.MembershipCensusReducedParallel(maxNodes, locs, workers))
	} else {
		fmt.Fprint(stdout, expt.MembershipCensusParallel(maxNodes, locs, workers))
	}
	obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: "OK"})
	return 0
}

// Command ccmd is the decision stack as a daemon: an HTTP/JSON
// verification service exposing the model-membership checkers, the
// post-mortem trace verifier, and the enumeration census.
//
//	ccmd -addr localhost:8080
//
//	POST /v1/check      (computation, observer) pair -> per-model verdicts
//	POST /v1/batch      many (pair, model, frontier shard) items -> per-item verdicts
//	POST /v1/verify     executed trace -> LC/SC explainability + witnesses
//	POST /v1/trace      NDJSON event stream -> incremental online verification
//	POST /v1/enumerate  universe bounds -> membership census
//	GET  /healthz       liveness ("ok" / 503 "draining")
//	GET  /statsz        queue, cache, and per-endpoint gauges as JSON
//
// /v1/batch is the fleet transport: cmd/fleetctl shards the SC root
// frontier across many ccmd replicas and merges the shard verdicts
// back into the single-box answer (see internal/fleet).
//
// Request bodies are JSON wrapping the same text formats the CLIs
// read, and verdicts come back in the same spelling the CLIs print —
// the service is a conformant remote front end for ccmc and verify,
// not a reimplementation.
//
// The daemon admission-controls NP-hard searches (bounded queue, 503 +
// Retry-After on overload), serves repeated queries from a
// content-addressed verdict cache, and on SIGTERM/SIGINT drains
// in-flight decisions before exiting — past -drain-timeout they are
// cancelled through the engine and reported INCONCLUSIVE(cancelled).
//
// Every exchange runs inside the middleware armor of internal/mw:
// request IDs (X-Request-Id, generated or propagated, echoed in error
// bodies and the -access-log), panic recovery (a panicking decision is
// a 500 and a panics_recovered tick on /statsz, never a crash), an
// exchange deadline clamped onto the governance limits, and transport
// read/write/idle timeouts against stalled clients (-read-header-timeout
// et al.). The streaming endpoint /v1/trace is exempt from both the
// exchange deadline and the blanket transport read timeout — its
// long-lived connections are governed per-stream by -stream-max-age
// and -stream-idle instead, so -read-timeout can stay aggressive
// without cutting healthy streams.
//
// Exit codes: 0 clean shutdown, 1 runtime error, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it serves until ctx is cancelled
// (the signal path in main), then drains and exits.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	slots := fs.Int("slots", 0, "concurrent decision slots (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the slots (0 = 2x slots)")
	cacheMB := fs.Int64("cache-mb", 64, "verdict cache budget in MiB (0 disables storage)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request wall-clock budget")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "ceiling on per-request deadlines")
	maxStates := fs.Int64("max-states", 0, "ceiling on per-decision state budgets (0 = none)")
	maxMemoMB := fs.Int64("max-memo-mb", 0, "ceiling on per-search memo tables, MiB (0 = none)")
	maxWorkers := fs.Int("max-workers", 0, "ceiling on per-request engine width (0 = none)")
	maxEnumNodes := fs.Int("max-enum-nodes", 4, "ceiling on /v1/enumerate universe bounds")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace for in-flight work on shutdown before hard cancel")
	requestTimeout := fs.Duration("request-timeout", 0, "whole-exchange deadline per request (0 derives from the governance limits; negative disables)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "drop connections that stall before finishing their request headers (slow-loris guard; 0 disables)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "ceiling on reading a whole request, headers and body (0 disables)")
	writeTimeout := fs.Duration("write-timeout", 0, "ceiling on writing a response (0 disables; must exceed -max-timeout or long decisions are cut off mid-reply)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connections idle longer than this are closed (0 disables)")
	streamMaxAge := fs.Duration("stream-max-age", 10*time.Minute, "absolute lifetime cap on one /v1/trace stream")
	streamIdle := fs.Duration("stream-idle", time.Minute, "rolling deadline for the next /v1/trace event; a stalled stream finishes INCONCLUSIVE(deadline)")
	streamHeartbeat := fs.Duration("stream-heartbeat", 5*time.Second, "cadence of gauge heartbeat records on /v1/trace responses")
	streamBuffer := fs.Int("stream-buffer", 1024, "per-stream event ring capacity (rounded up to a power of two); overflow sheds and degrades to INCONCLUSIVE(overrun)")
	streamMaxEvents := fs.Int64("stream-max-events", 0, "cap on node events per /v1/trace stream; past it the overflow policy sheds (0 = unlimited)")
	accessLog := fs.String("access-log", "", "structured access-log destination: a file path (appended), or - for stderr (empty disables)")
	trustedProxies := fs.String("trusted-proxies", "", "comma-separated CIDRs/IPs whose X-Forwarded-For headers are honored for client-IP logging")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ccmd: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *cacheMB < 0 || *slots < 0 || *queue < 0 {
		fmt.Fprintln(stderr, "ccmd: -cache-mb, -slots, and -queue must be non-negative")
		return 2
	}
	proxies, err := mw.ParseProxyList(*trustedProxies)
	if err != nil {
		fmt.Fprintf(stderr, "ccmd: -trusted-proxies: %v\n", err)
		return 2
	}
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "ccmd: -access-log: %v\n", err)
			return 1
		}
		defer f.Close()
		accessW = f
	}

	session, err := obsFlags.Start("ccmd", args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "ccmd: %v\n", err)
		return 2
	}
	code := serveLoop(ctx, serveConfig{
		addr:              *addr,
		drainTimeout:      *drainTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		readTimeout:       *readTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
		server: serve.Config{
			Slots:      *slots,
			Queue:      *queue,
			CacheBytes: *cacheMB << 20,
			Limits: serve.Limits{
				DefaultTimeout: *timeout,
				MaxTimeout:     *maxTimeout,
				MaxStates:      *maxStates,
				MaxMemoMB:      *maxMemoMB,
				MaxWorkers:     *maxWorkers,
				MaxEnumNodes:   *maxEnumNodes,
			},
			Recorder:       session.Rec,
			AccessLog:      accessW,
			TrustedProxies: proxies,
			RequestTimeout: *requestTimeout,
			Stream: serve.StreamConfig{
				MaxAge:      *streamMaxAge,
				IdleTimeout: *streamIdle,
				Heartbeat:   *streamHeartbeat,
				Buffer:      *streamBuffer,
				MaxEvents:   *streamMaxEvents,
			},
		},
	}, stdout, stderr)
	if err := session.Close(code); err != nil {
		fmt.Fprintf(stderr, "ccmd: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

type serveConfig struct {
	addr              string
	drainTimeout      time.Duration
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	server            serve.Config
}

func serveLoop(ctx context.Context, cfg serveConfig, stdout, stderr io.Writer) int {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "ccmd: %v\n", err)
		return 1
	}
	srv := serve.New(cfg.server)
	// The transport-level armor: a server with no read deadlines holds a
	// goroutine and a connection hostage for every client that stalls
	// mid-headers (slow loris) or walks away mid-body.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	fmt.Fprintf(stdout, "ccmd: serving on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ccmd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: admission closes first (new work sees 503 draining while
	// the listener still answers, so health checks flip before the
	// socket goes away), in-flight decisions finish — or are cancelled
	// at the grace deadline — and only then does the listener close.
	fmt.Fprintf(stdout, "ccmd: draining (grace %v)\n", cfg.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "ccmd: drain incomplete: %v\n", err)
	}
	// Past a hard cancel the decisions abort promptly, but their
	// handlers still need a moment to flush the INCONCLUSIVE(cancelled)
	// responses — give the listener teardown its own short grace.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := httpSrv.Shutdown(hctx); err != nil {
		fmt.Fprintf(stderr, "ccmd: %v\n", err)
		httpSrv.Close()
		code = 1
	}
	fmt.Fprintln(stdout, "ccmd: drained")
	return code
}

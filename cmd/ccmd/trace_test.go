package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/trace"
)

// govTrace mirrors internal/serve's test helper: randomized checker
// instances from the engine governance tests. Seed 11 is pinned as
// undecided after minutes of work — the slow request the drain test
// leans on.
func govTrace(seed int64, layers, width int, p float64, locs, vals, wprob int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(rng, layers, width, p)
	n := g.NumNodes()
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		if rng.Intn(wprob) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, locs)
	tr := trace.New(c)
	for u := 0; u < n; u++ {
		switch c.Op(dag.Node(u)).Kind {
		case computation.Write:
			tr.WriteVal[u] = trace.Value(rng.Intn(vals) + 1)
		case computation.Read:
			tr.ReadVal[u] = trace.Value(rng.Intn(vals) + 1)
		}
	}
	return tr
}

// renderTraceText writes tr in the verify text format.
func renderTraceText(tr *trace.Trace) string {
	c := tr.Comp
	var b strings.Builder
	b.WriteString("locs")
	for l := 0; l < c.NumLocs(); l++ {
		fmt.Fprintf(&b, " l%d", l)
	}
	b.WriteByte('\n')
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		switch op.Kind {
		case computation.Write:
			fmt.Fprintf(&b, "node n%d W(l%d) = %d\n", u, op.Loc, tr.WriteVal[u])
		case computation.Read:
			fmt.Fprintf(&b, "node n%d R(l%d) = %d\n", u, op.Loc, tr.ReadVal[u])
		}
	}
	for u := 0; u < c.NumNodes(); u++ {
		for _, v := range c.Dag().Succs(dag.Node(u)) {
			fmt.Fprintf(&b, "edge n%d n%d\n", u, v)
		}
	}
	return b.String()
}

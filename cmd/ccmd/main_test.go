package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// syncBuffer lets the test read the daemon's output while run is
// still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRE = regexp.MustCompile(`serving on http://(\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL
// and a channel carrying run's exit code after cancel fires.
func startDaemon(t *testing.T, args []string, out, errb *syncBuffer) (base string, cancel func(), done chan int) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, errb)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], stop, done
		}
		select {
		case code := <-done:
			stop()
			t.Fatalf("daemon exited early with %d; stderr: %s", code, errb.String())
		default:
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("daemon never announced its address; stdout: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunServesChecksAndDrains is the daemon's lifecycle contract:
// it announces its address, answers decision queries (with the
// verdict cache visible on repeats), and a signal — modeled by the
// context cancel main wires to SIGTERM/SIGINT — drains it to a clean
// exit 0 without leaking goroutines.
func TestRunServesChecksAndDrains(t *testing.T) {
	baseG := runtime.NumGoroutine()
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, nil, &out, &errb)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	pair, err := os.ReadFile("../../testdata/dekker.ccm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
	var sources []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d = %d: %s", i, resp.StatusCode, data)
		}
		if i == 0 && !strings.Contains(string(data), `"text":"IN"`) {
			t.Errorf("dekker check carries no IN verdict: %s", data)
		}
		sources = append(sources, resp.Header.Get("X-Ccmd-Cache"))
	}
	if sources[0] != "miss" || sources[1] != "hit" {
		t.Errorf("cache sources = %v, want [miss hit]", sources)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after cancel")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("stdout missing drain confirmation:\n%s", out.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseG+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d, baseline %d", runtime.NumGoroutine(), baseG)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunWritesReport: the daemon participates in the shared
// observability contract — a -report run must produce a file that
// validates against the pinned report schema.
func TestRunWritesReport(t *testing.T) {
	reportFile := t.TempDir() + "/report.json"
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, []string{"-report", reportFile}, &out, &errb)

	pair, err := os.ReadFile("../../testdata/figure2.ccm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
	resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	report, err := os.ReadFile(reportFile)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := os.ReadFile("../../testdata/report.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(report, schema); err != nil {
		t.Errorf("daemon report violates the schema: %v", err)
	}
	if !strings.Contains(string(report), `"tool": "ccmd"`) && !strings.Contains(string(report), `"tool":"ccmd"`) {
		t.Errorf("report does not name the tool: %s", report)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"positional"},
		{"-cache-mb", "-1"},
		{"-pprof", "999.999.999.999:0"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

// TestRunListenError: a dead listen address is a runtime error (exit
// 1), reported on stderr, not a hang.
func TestRunListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", ln.Addr().String()}, &out, &errb); code != 1 {
		t.Fatalf("run on a bound port = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "address already in use") {
		t.Errorf("stderr does not explain the failure: %s", errb.String())
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// syncBuffer lets the test read the daemon's output while run is
// still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRE = regexp.MustCompile(`serving on http://(\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL
// and a channel carrying run's exit code after cancel fires.
func startDaemon(t *testing.T, args []string, out, errb *syncBuffer) (base string, cancel func(), done chan int) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, errb)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], stop, done
		}
		select {
		case code := <-done:
			stop()
			t.Fatalf("daemon exited early with %d; stderr: %s", code, errb.String())
		default:
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("daemon never announced its address; stdout: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunServesChecksAndDrains is the daemon's lifecycle contract:
// it announces its address, answers decision queries (with the
// verdict cache visible on repeats), and a signal — modeled by the
// context cancel main wires to SIGTERM/SIGINT — drains it to a clean
// exit 0 without leaking goroutines.
func TestRunServesChecksAndDrains(t *testing.T) {
	baseG := runtime.NumGoroutine()
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, nil, &out, &errb)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	pair, err := os.ReadFile("../../testdata/dekker.ccm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
	var sources []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d = %d: %s", i, resp.StatusCode, data)
		}
		if i == 0 && !strings.Contains(string(data), `"text":"IN"`) {
			t.Errorf("dekker check carries no IN verdict: %s", data)
		}
		sources = append(sources, resp.Header.Get("X-Ccmd-Cache"))
	}
	if sources[0] != "miss" || sources[1] != "hit" {
		t.Errorf("cache sources = %v, want [miss hit]", sources)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after cancel")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("stdout missing drain confirmation:\n%s", out.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseG+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d, baseline %d", runtime.NumGoroutine(), baseG)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunWritesReport: the daemon participates in the shared
// observability contract — a -report run must produce a file that
// validates against the pinned report schema.
func TestRunWritesReport(t *testing.T) {
	reportFile := t.TempDir() + "/report.json"
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, []string{"-report", reportFile}, &out, &errb)

	pair, err := os.ReadFile("../../testdata/figure2.ccm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
	resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, errb.String())
	}
	report, err := os.ReadFile(reportFile)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := os.ReadFile("../../testdata/report.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(report, schema); err != nil {
		t.Errorf("daemon report violates the schema: %v", err)
	}
	if !strings.Contains(string(report), `"tool": "ccmd"`) && !strings.Contains(string(report), `"tool":"ccmd"`) {
		t.Errorf("report does not name the tool: %s", report)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"positional"},
		{"-cache-mb", "-1"},
		{"-pprof", "999.999.999.999:0"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

// TestRunListenError: a dead listen address is a runtime error (exit
// 1), reported on stderr, not a hang.
func TestRunListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", ln.Addr().String()}, &out, &errb); code != 1 {
		t.Fatalf("run on a bound port = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "address already in use") {
		t.Errorf("stderr does not explain the failure: %s", errb.String())
	}
}

// TestSlowLorisDropped: a connection that sends half a request line
// and then stalls must be cut off by -read-header-timeout instead of
// holding a server goroutine forever — and the daemon keeps serving
// honest clients throughout.
func TestSlowLorisDropped(t *testing.T) {
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, []string{"-read-header-timeout", "250ms"}, &out, &errb)
	defer func() { cancel(); <-done }()

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: loris\r\nX-Stall")); err != nil {
		t.Fatal(err)
	}
	// Never finish the headers. The server must answer 408 and hang up
	// within the header deadline — not after our 5s read deadline.
	start := time.Now()
	conn.SetReadDeadline(start.Add(5 * time.Second))
	data, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection still open 5s after stalling mid-headers")
	}
	if err != nil {
		t.Fatalf("reading the hang-up: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("server took %v to drop the stalled connection", elapsed)
	}
	// The exact parting status varies by Go version (408 or 400); what
	// matters is that it is an error, not a served request.
	if len(data) > 0 && !strings.Contains(string(data), "HTTP/1.1 4") {
		t.Errorf("parting response %q is not a client-error hang-up", data)
	}

	// The daemon is unharmed.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after loris = %d, want 200", resp.StatusCode)
	}
}

// TestDrainFlipsHealthzWhileWorkCompletes: the signal path must flip
// /healthz to 503 "draining" immediately — so load balancers stop
// routing — while already-admitted work runs to completion and the
// daemon still exits 0.
func TestDrainFlipsHealthzWhileWorkCompletes(t *testing.T) {
	var out, errb syncBuffer
	base, cancel, done := startDaemon(t, []string{
		"-slots", "1", "-timeout", "10s", "-drain-timeout", "30s",
	}, &out, &errb)

	// Occupy the only decision slot with a verification that needs a
	// couple of seconds: the pinned governance instance (seed 11) under
	// a wall-clock budget it cannot beat.
	tr := govTrace(11, 30, 8, 0.08, 2, 3, 3)
	body, _ := json.Marshal(serve.VerifyRequest{
		Trace:   renderTraceText(tr),
		Options: serve.Options{TimeoutMS: 3000},
	})
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()

	// Wait until the slot is actually held, then send the "signal".
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Statsz
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Admission.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow verify never occupied the decision slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()

	// healthz flips to "draining" promptly, while the listener is up.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("listener died before drain completed: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(data), "draining") {
				t.Errorf("healthz 503 body %q, want draining", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 after the signal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The queued decision completes (INCONCLUSIVE at its own budget is
	// fine — the exchange must finish as a 200, not be severed).
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Errorf("in-flight verify finished with %d, want 200", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight verify never completed during drain")
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after drain")
	}
}

// Command lattice regenerates Figure 1 of the paper — enlarged by the
// hardware/language models: it machine-checks every claimed relation
// among SC, LC, NN, NW, WN, WW, TSO, RA and CAUSAL over the exhaustive
// universe of small computations, re-decides the committed strictness
// witnesses under testdata/litmus (the separations whose smallest
// members exceed the sweep bound live only there), and runs the
// constructible-version fixpoint experiments of Section 6.
//
// Usage:
//
//	lattice [-n MAXNODES] [-locs L] [-reduce] [-census] [-witnesses DIR] [-star NN|WN|NW] [-props MODEL] [-findtrap MODEL]
//
// Examples:
//
//	lattice -n 4              # full Figure 1 check (default)
//	lattice -n 5 -reduce      # same check, canonical representatives only
//	lattice -n 4 -star NN     # Theorem 23: NN* = LC on the interior
//	lattice -n 4 -star WN     # Section 7 open problem probe
//	lattice -n 3 -props NN    # completeness/monotonicity/constructibility
//
// -reduce decides one representative per isomorphism class and weights
// it by its orbit size: counts, verdicts, and witnesses are identical
// to the unreduced sweep, but sizes like -n 5 become tractable. It
// applies to the default check, -census, and -props (the -star and
// -findtrap iterations mutate computations and have no reduced form).
//
// -workers shards the sweep for the default lattice check and -census.
// The -star/-props/-findtrap experiments run the serial fixpoint code;
// setting -workers alongside them is a usage error rather than a
// silent no-op.
//
// Exit codes follow the suite convention: 0 when every checked claim
// holds, 1 when a check fails (a Figure 1 edge mismatches, a star
// fixpoint diverges from its target, a property is violated, or
// -findtrap finds a non-constructibility witness), 2 on usage errors.
// The sweeps are exhaustive, so there is no inconclusive (3) outcome.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/expt"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lattice", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxNodes := fs.Int("n", 4, "maximum computation size (nodes)")
	locs := fs.Int("locs", 1, "number of memory locations")
	census := fs.Bool("census", false, "print per-model membership counts")
	star := fs.String("star", "", "run the constructible-version fixpoint for this base model")
	props := fs.String("props", "", "check completeness/monotonicity/constructibility for this model")
	findtrap := fs.String("findtrap", "", "search for the smallest non-constructibility witness of this model")
	workers := fs.Int("workers", 0, "parallel sweep workers for the lattice check and -census (0 = GOMAXPROCS)")
	witnesses := fs.String("witnesses", "testdata/litmus", "directory of committed strictness-witness fixtures re-checked by the lattice check (empty = skip)")
	reduce := fs.Bool("reduce", false, "sweep canonical representatives only (orbit-weighted); identical output, one isomorphism-class member decided per class")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "lattice: unexpected arguments %v\n", fs.Args())
		return 2
	}
	// The serial experiments cannot honor -workers; reject it loudly
	// instead of ignoring it (the historical behavior).
	if *star != "" || *props != "" || *findtrap != "" {
		workersSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				workersSet = true
			}
		})
		if workersSet {
			fmt.Fprintln(stderr, "lattice: -workers applies only to the default lattice check and -census")
			return 2
		}
	}
	// The star fixpoint and trap search mutate computations as they
	// iterate, which a representative-only sweep cannot express; only
	// the pure membership sweeps have reduced counterparts.
	if *reduce && (*star != "" || *findtrap != "") {
		fmt.Fprintln(stderr, "lattice: -reduce applies only to the default lattice check, -census, and -props")
		return 2
	}

	sess, err := obsFlags.Start("lattice", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "lattice:", err)
		return 2
	}
	code := runChecked(*maxNodes, *locs, *census, *star, *props, *findtrap, *workers, *reduce, *witnesses, sess.Rec, stdout, stderr)
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "lattice:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// runChecked dispatches to the selected experiment and maps its report
// onto the exit-code convention. rec observes the run: the default
// lattice check streams per-edge phases and sweep gauges; the other
// branches bracket their (serial) experiment in a RunStart/RunEnd pair.
func runChecked(maxNodes, locs int, census bool, star, props, findtrap string, workers int, reduce bool, witnesses string, rec obs.Recorder, stdout, stderr io.Writer) int {
	// bracket wraps a serial experiment so -report/-trace sessions see
	// one run per invocation even off the parallel sweep path.
	bracket := func(name string, fn func() (string, bool)) int {
		r := obs.WithRun(rec, name)
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
		out, ok := fn()
		verdict := "OK"
		code := 0
		if !ok {
			verdict, code = "FAILED", 1
		}
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: verdict})
		fmt.Fprint(stdout, out)
		return code
	}

	switch {
	case findtrap != "":
		m, ok := expt.ModelByName(findtrap)
		if !ok {
			fmt.Fprintf(stderr, "lattice: unknown model %q\n", findtrap)
			return 2
		}
		return bracket("findtrap "+m.Name(), func() (string, bool) {
			trap, found := expt.FindTrap(m, maxNodes, locs)
			if !found {
				return fmt.Sprintf("%s has no non-constructibility witness up to %d nodes, %d location(s)\n",
					m.Name(), maxNodes, locs), true
			}
			return fmt.Sprintf("smallest %s trap (the Section 3 adversary wins here):\n  %v\n  %v\n  stuck on augmentation by %s\n",
				m.Name(), trap.Pair.C, trap.Pair.O, trap.Op), false
		})
	case star != "":
		m, ok := expt.ModelByName(star)
		if !ok {
			fmt.Fprintf(stderr, "lattice: unknown model %q\n", star)
			return 2
		}
		return bracket("star "+m.Name(), func() (string, bool) {
			rep := expt.RunStar(m, maxNodes, locs)
			return rep.String(), rep.OK()
		})
	case props != "":
		m, ok := expt.ModelByName(props)
		if !ok {
			fmt.Fprintf(stderr, "lattice: unknown model %q\n", props)
			return 2
		}
		return bracket("props "+m.Name(), func() (string, bool) {
			var rep expt.PropertyReport
			if reduce {
				rep = expt.RunPropertiesReduced(m, maxNodes, locs)
			} else {
				rep = expt.RunProperties(m, maxNodes, locs)
			}
			return rep.String(), rep.OK()
		})
	case census:
		return bracket("census", func() (string, bool) {
			if reduce {
				return expt.MembershipCensusReducedParallel(maxNodes, locs, workers), true
			}
			return expt.MembershipCensusParallel(maxNodes, locs, workers), true
		})
	case reduce:
		rep := expt.RunLatticeReduced(maxNodes, locs, workers, rec)
		fmt.Fprint(stdout, rep)
		code := 0
		if !rep.AllOK() {
			code = 1
		}
		return checkWitnesses(witnesses, code, stdout, stderr)
	default:
		rep := expt.RunLatticeObs(maxNodes, locs, workers, rec)
		fmt.Fprint(stdout, rep)
		code := 0
		if !rep.AllOK() {
			code = 1
		}
		return checkWitnesses(witnesses, code, stdout, stderr)
	}
}

// checkWitnesses re-decides the committed strictness witnesses after a
// lattice sweep: the sweep proves the inclusions exhaustively up to
// -n, the fixtures carry the separations — including the ones whose
// smallest members exceed the sweep bound. code is the sweep's exit
// code; the combined run fails (1) if either half fails, and an
// unreadable fixture directory is a usage/environment error (2).
func checkWitnesses(dir string, code int, stdout, stderr io.Writer) int {
	if dir == "" {
		return code
	}
	rep, err := expt.CheckWitnesses(dir)
	if err != nil {
		fmt.Fprintln(stderr, "lattice:", err)
		return 2
	}
	fmt.Fprint(stdout, rep)
	if !rep.AllOK() && code == 0 {
		code = 1
	}
	return code
}

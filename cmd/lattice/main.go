// Command lattice regenerates Figure 1 of the paper: it machine-checks
// every claimed relation among SC, LC, NN, NW, WN and WW over the
// exhaustive universe of small computations, and runs the
// constructible-version fixpoint experiments of Section 6.
//
// Usage:
//
//	lattice [-n MAXNODES] [-locs L] [-census] [-star NN|WN|NW] [-props MODEL]
//
// Examples:
//
//	lattice -n 4              # full Figure 1 check (default)
//	lattice -n 4 -star NN     # Theorem 23: NN* = LC on the interior
//	lattice -n 4 -star WN     # Section 7 open problem probe
//	lattice -n 3 -props NN    # completeness/monotonicity/constructibility
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expt"
)

func main() {
	maxNodes := flag.Int("n", 4, "maximum computation size (nodes)")
	locs := flag.Int("locs", 1, "number of memory locations")
	census := flag.Bool("census", false, "print per-model membership counts")
	star := flag.String("star", "", "run the constructible-version fixpoint for this base model")
	props := flag.String("props", "", "check completeness/monotonicity/constructibility for this model")
	findtrap := flag.String("findtrap", "", "search for the smallest non-constructibility witness of this model")
	workers := flag.Int("workers", 0, "parallel sweep workers for the lattice check (0 = GOMAXPROCS)")
	flag.Parse()

	switch {
	case *findtrap != "":
		m, ok := expt.ModelByName(*findtrap)
		if !ok {
			fmt.Fprintf(os.Stderr, "lattice: unknown model %q\n", *findtrap)
			os.Exit(2)
		}
		trap, found := expt.FindTrap(m, *maxNodes, *locs)
		if !found {
			fmt.Printf("%s has no non-constructibility witness up to %d nodes, %d location(s)\n",
				m.Name(), *maxNodes, *locs)
			return
		}
		fmt.Printf("smallest %s trap (the Section 3 adversary wins here):\n", m.Name())
		fmt.Printf("  %v\n  %v\n  stuck on augmentation by %s\n", trap.Pair.C, trap.Pair.O, trap.Op)
	case *star != "":
		m, ok := expt.ModelByName(*star)
		if !ok {
			fmt.Fprintf(os.Stderr, "lattice: unknown model %q\n", *star)
			os.Exit(2)
		}
		rep := expt.RunStar(m, *maxNodes, *locs)
		fmt.Print(rep)
	case *props != "":
		m, ok := expt.ModelByName(*props)
		if !ok {
			fmt.Fprintf(os.Stderr, "lattice: unknown model %q\n", *props)
			os.Exit(2)
		}
		fmt.Print(expt.RunProperties(m, *maxNodes, *locs))
	case *census:
		fmt.Print(expt.MembershipCensus(*maxNodes, *locs))
	default:
		rep := expt.RunLatticeParallel(*maxNodes, *locs, *workers)
		fmt.Print(rep)
		if !rep.AllOK() {
			os.Exit(1)
		}
	}
}

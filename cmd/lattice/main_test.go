package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLattice runs the CLI and returns (exit code, stdout, stderr).
// The witness fixtures live relative to the repo root, so the helper
// points the flag there; explicit -witnesses args in a test override
// it (the last setting of a flag wins).
func runLattice(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"-witnesses", "../../testdata/litmus"}, args...), &out, &errb)
	return code, out.String(), errb.String()
}

func TestDefaultLatticeCheck(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out)
	}
	for _, want := range []string{"Figure 1 lattice", "SC", "LC", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWitnessChecks: the default lattice check re-decides the
// committed strictness witnesses and folds them into the exit code —
// a tampered fixture fails the run, a missing directory is an
// environment error, and an empty -witnesses skips the table.
func TestWitnessChecks(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3")
	if code != 0 || !strings.Contains(out, "strictness witnesses") {
		t.Fatalf("default check: exit %d, witness table missing:\n%s", code, out)
	}
	for _, want := range []string{"TSO ∖ CAUSAL", "RA ∖ CAUSAL", "sb.ccm", "iriw.ccm"} {
		if !strings.Contains(out, want) {
			t.Errorf("witness table missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runLattice(t, "-n", "3", "-witnesses", "")
	if code != 0 || strings.Contains(out, "strictness witnesses") {
		t.Fatalf("-witnesses \"\": exit %d, table skipped=%v", code, !strings.Contains(out, "strictness witnesses"))
	}

	if code, _, errb := runLattice(t, "-n", "3", "-witnesses", filepath.Join(t.TempDir(), "nope")); code != 2 || errb == "" {
		t.Fatalf("missing witness dir: exit %d (want 2), stderr %q", code, errb)
	}

	// Tamper with one fixture: sb.ccm claims TSO ∖ SC, so an SC-member
	// pair in its place must fail the claim and the run.
	dir := t.TempDir()
	src, err := filepath.Glob("../../testdata/litmus/*.ccm")
	if err != nil || len(src) == 0 {
		t.Fatal("no fixtures to copy")
	}
	for _, f := range src {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(f)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	scIn, err := os.ReadFile(filepath.Join(dir, "mp_sync.ccm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sb.ccm"), scIn, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runLattice(t, "-n", "3", "-witnesses", dir)
	if code != 1 || !strings.Contains(out, "MISMATCH") {
		t.Fatalf("tampered fixture: exit %d (want 1), output:\n%s", code, out)
	}
}

func TestCensus(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3", "-census", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out)
	}
	for _, m := range []string{"SC", "LC", "NN", "NW", "WN", "WW"} {
		if !strings.Contains(out, m) {
			t.Fatalf("census missing model %s:\n%s", m, out)
		}
	}
}

func TestStarPassAndFail(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3", "-star", "NN")
	if code != 0 {
		t.Fatalf("passing star: exit code = %d, want 0; output:\n%s", code, out)
	}
	// WN* ≠ LC already at size 2, so the 3-node sweep must fail — and
	// the failure must surface in the exit code, not just the text.
	code, out, _ = runLattice(t, "-n", "3", "-star", "WN")
	if code != 1 {
		t.Fatalf("failing star: exit code = %d, want 1; output:\n%s", code, out)
	}
}

func TestPropsPassAndFail(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3", "-props", "SC")
	if code != 0 {
		t.Fatalf("passing props: exit code = %d, want 0; output:\n%s", code, out)
	}
	// NN fails the augmentation criterion at 4 nodes (Figure 4).
	code, out, _ = runLattice(t, "-n", "4", "-props", "NN")
	if code != 1 {
		t.Fatalf("failing props: exit code = %d, want 1; output:\n%s", code, out)
	}
}

func TestFindTrapExitCodes(t *testing.T) {
	code, out, _ := runLattice(t, "-n", "3", "-findtrap", "NN")
	if code != 0 || !strings.Contains(out, "no non-constructibility witness") {
		t.Fatalf("trap-free universe: exit code = %d, want 0; output:\n%s", code, out)
	}
	code, out, _ = runLattice(t, "-n", "4", "-findtrap", "NN")
	if code != 1 || !strings.Contains(out, "smallest NN trap") {
		t.Fatalf("trap found: exit code = %d, want 1; output:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-no-such-flag"}},
		{"positional arg", []string{"extra"}},
		{"unknown star model", []string{"-star", "XX"}},
		{"unknown props model", []string{"-props", "XX"}},
		{"unknown findtrap model", []string{"-findtrap", "XX"}},
		{"workers with star", []string{"-workers", "2", "-star", "NN"}},
		{"workers with props", []string{"-workers", "2", "-props", "SC", "-n", "3"}},
		{"workers with findtrap", []string{"-workers", "2", "-findtrap", "NN", "-n", "3"}},
	} {
		if code, out, _ := runLattice(t, tc.args...); code != 2 {
			t.Errorf("%s: exit code = %d, want 2; output:\n%s", tc.name, code, out)
		}
	}
}

// -workers is honored (not rejected) on the branches that shard.
func TestWorkersAllowedOnShardedBranches(t *testing.T) {
	if code, out, _ := runLattice(t, "-n", "3", "-workers", "2"); code != 0 {
		t.Fatalf("lattice -workers: exit code = %d, want 0; output:\n%s", code, out)
	}
}

func TestReportFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	code, _, _ := runLattice(t, "-n", "3", "-star", "WN", "-report", path)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool     string `json:"tool"`
		ExitCode int    `json:"exit_code"`
		Runs     []struct {
			Name    string `json:"name"`
			Outcome string `json:"outcome"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if rep.Tool != "lattice" || rep.ExitCode != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Name != "star WN" || rep.Runs[0].Outcome != "FAILED" {
		t.Fatalf("report runs: %+v", rep.Runs)
	}
}

func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, _ := runLattice(t, "-n", "3", "-trace", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty for a 7-edge lattice check")
	}
}

// TestReduceMatchesUnreduced: the -reduce sweeps must render the exact
// same bytes as their unreduced counterparts on every branch that
// supports the flag.
func TestReduceMatchesUnreduced(t *testing.T) {
	for _, tc := range [][]string{
		{"-n", "3"},
		{"-n", "3", "-workers", "2"},
		{"-n", "3", "-census"},
		{"-n", "3", "-props", "SC"},
	} {
		fullCode, full, _ := runLattice(t, tc...)
		redCode, red, _ := runLattice(t, append(append([]string{}, tc...), "-reduce")...)
		if fullCode != redCode {
			t.Fatalf("%v: exit code %d with -reduce, %d without", tc, redCode, fullCode)
		}
		if full != red {
			t.Fatalf("%v: -reduce output differs:\n%s\nvs\n%s", tc, red, full)
		}
	}
}

func TestReduceRejectedOnMutatingBranches(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "3", "-reduce", "-star", "NN"},
		{"-n", "3", "-reduce", "-findtrap", "NN"},
	} {
		if code, out, _ := runLattice(t, args...); code != 2 {
			t.Errorf("%v: exit code = %d, want 2; output:\n%s", args, code, out)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// soakTarget boots an in-process daemon handler and a corpus dir with
// one pair and one trace, returning the base URL and the corpus path.
func soakTarget(t *testing.T) (base, corpusDir string) {
	t.Helper()
	s := serve.New(serve.Config{
		CacheBytes: 1 << 20,
		Limits:     serve.Limits{DefaultTimeout: 5 * time.Second, MaxEnumNodes: 2},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	dir := t.TempDir()
	pair, err := os.ReadFile("../../testdata/figure2.ccm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile("../../testdata/mp_stale.trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.ccm"), pair, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.trace"), tr, 0o644); err != nil {
		t.Fatal(err)
	}
	return ts.URL, dir
}

// TestSoakRunWritesReport: a short soak completes with exit 0, writes
// the JSON trajectory, and the numbers hang together — requests were
// made, percentiles are ordered, every response carried a request ID,
// and the repeated corpus hit the verdict cache.
func TestSoakRunWritesReport(t *testing.T) {
	base, corpus := soakTarget(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-target", base, "-c", "4", "-duration", "500ms", "-settle", "50ms",
		"-testdata", corpus, "-out", out,
		"-max-error-rate", "0", "-max-panics", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Totals.Requests == 0 {
		t.Fatal("soak made no requests")
	}
	if rep.MissingRequestID != 0 {
		t.Errorf("%d responses without a request id", rep.MissingRequestID)
	}
	if !rep.OK || len(rep.Violations) != 0 {
		t.Errorf("report not ok: %v", rep.Violations)
	}
	for name, er := range rep.Endpoints {
		if er.Requests == 0 {
			t.Errorf("endpoint %s got no traffic", name)
		}
		if er.P50MS > er.P95MS || er.P95MS > er.P99MS || er.P99MS > er.MaxMS {
			t.Errorf("%s percentiles not monotone: %+v", name, er)
		}
	}
	if rep.CacheHitRatio == 0 {
		t.Errorf("tiny corpus soak never hit the cache: %+v", rep.Cache)
	}
	if rep.Runtime["pre"].Goroutines <= 0 || rep.Runtime["post"].Goroutines <= 0 {
		t.Errorf("watermarks not sampled: %+v", rep.Runtime)
	}
}

// TestSoakThresholdViolation: an absurd p99 gate fails the run with
// exit 1 and names the violation in the report and on stderr.
func TestSoakThresholdViolation(t *testing.T) {
	base, corpus := soakTarget(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-target", base, "-c", "2", "-duration", "300ms", "-settle", "10ms",
		"-testdata", corpus, "-max-p99", "1ns",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "VIOLATION") || !strings.Contains(stderr.String(), "p99") {
		t.Errorf("stderr does not name the violation: %s", stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || len(rep.Violations) == 0 {
		t.Errorf("report.ok = %v with violations %v", rep.OK, rep.Violations)
	}
}

func TestSoakUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no target
		{"-target", "x", "-c", "0"}, // bad concurrency
		{"-target", "x", "-mix", "teapot=1"},
		{"-target", "x", "-mix", "check=0,verify=0,enumerate=0"},
		{"-target", "x", "-testdata", "/nonexistent"},
		{"-target", "http://127.0.0.1:1", "-duration", "10ms"}, // dead target
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, stderr.String())
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("check=6, verify=3,enumerate=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["check"] != 6 || mix["verify"] != 3 || mix["enumerate"] != 1 {
		t.Errorf("mix = %v", mix)
	}
	if _, err := parseMix("check=-1"); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := parseMix("check"); err == nil {
		t.Error("missing weight accepted")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}}
	for _, tc := range cases {
		if got := percentile(s, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestRetryAfterDelay(t *testing.T) {
	now := func() time.Time { return time.Unix(1_700_000_000, 0).UTC() }
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 100 * time.Millisecond},        // shed without a hint: minimal pause
		{"2", 2 * time.Second},              // integer seconds
		{"9999", 5 * time.Second},           // clamped to the worker ceiling
		{"garbage", 100 * time.Millisecond}, // malformed: minimal pause
		{now().Add(3 * time.Second).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 3 * time.Second},
		{now().Add(-time.Hour).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 0}, // past date: no wait
	}
	for _, c := range cases {
		if got := retryAfterDelay(c.in, now); got != c.want {
			t.Errorf("retryAfterDelay(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

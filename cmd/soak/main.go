// Command soak drives sustained mixed traffic at a live ccmd daemon
// and reports the service-level trajectory: per-endpoint latency
// percentiles, shed and error counts, cache effectiveness, and the
// daemon's goroutine/RSS watermarks sampled before, during, and after
// the load.
//
//	soak -target http://localhost:8080 -c 32 -duration 60s \
//	     -mix check=6,verify=3,enumerate=1 -out benchmarks/BENCH_serve.json
//
// The request corpus is the repository's own testdata: every *.ccm
// file becomes a /v1/check body, every *.trace file a /v1/verify body,
// and /v1/enumerate cycles small universe bounds (the server clamps
// them anyway).
//
// With threshold flags set (-max-p99, -max-error-rate,
// -max-goroutine-growth, -max-panics) the run doubles as a release
// gate: violations are listed in the JSON and the exit code is 1. A
// load-shed 503 is not an error — it is the admission controller doing
// its job — but a missing X-Request-Id anywhere is always a violation
// in gate mode.
//
// Exit codes: 0 pass, 1 threshold violation, 2 usage or setup error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// endpointReport is the per-endpoint block of the output document.
type endpointReport struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Shed     int64   `json:"shed"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	RPS      float64 `json:"rps"`
}

// watermark is one runtime sample of the target process.
type watermark struct {
	Goroutines int   `json:"goroutines"`
	HeapBytes  int64 `json:"heap_alloc_bytes"`
	RSSBytes   int64 `json:"rss_bytes"`
}

// report is the soak result document, written to -out as
// benchmarks/BENCH_serve.json — the service-level perf trajectory.
type report struct {
	Target           string                    `json:"target"`
	GeneratedUnix    int64                     `json:"generated_unix"`
	DurationS        float64                   `json:"duration_s"`
	Concurrency      int                       `json:"concurrency"`
	Mix              map[string]int            `json:"mix"`
	Endpoints        map[string]endpointReport `json:"endpoints"`
	Totals           endpointReport            `json:"totals"`
	MissingRequestID int64                     `json:"missing_request_id"`
	PanicsRecovered  int64                     `json:"panics_recovered"`
	Cache            serve.CacheStats          `json:"cache"`
	CacheHitRatio    float64                   `json:"cache_hit_ratio"`
	Runtime          map[string]watermark      `json:"runtime"` // pre / peak / post
	Violations       []string                  `json:"violations"`
	OK               bool                      `json:"ok"`
}

// endpointAgg accumulates one endpoint's samples across workers.
type endpointAgg struct {
	mu        sync.Mutex
	latencyMS []float64
	errors    int64
	shed      int64
	missingID int64
}

func (a *endpointAgg) record(lat time.Duration, status int, hasID bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.latencyMS = append(a.latencyMS, float64(lat)/float64(time.Millisecond))
	switch {
	case status == http.StatusServiceUnavailable:
		a.shed++
	case status < 200 || status > 299:
		a.errors++
	}
	if !hasID {
		a.missingID++
	}
}

// percentile returns the p-th percentile of sorted samples (nearest
// rank). Zero samples yield 0.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func (a *endpointAgg) summarize(elapsed time.Duration) endpointReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	sorted := append([]float64(nil), a.latencyMS...)
	sort.Float64s(sorted)
	r := endpointReport{
		Requests: int64(len(sorted)),
		Errors:   a.errors,
		Shed:     a.shed,
		P50MS:    percentile(sorted, 50),
		P95MS:    percentile(sorted, 95),
		P99MS:    percentile(sorted, 99),
	}
	if n := len(sorted); n > 0 {
		r.MaxMS = sorted[n-1]
	}
	if s := elapsed.Seconds(); s > 0 {
		r.RPS = float64(r.Requests) / s
	}
	return r
}

// parseMix reads "check=6,verify=3,enumerate=1" into weights.
func parseMix(s string) (map[string]int, error) {
	mix := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		w, err := strconv.Atoi(val)
		if !ok || err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix entry %q (want endpoint=weight)", part)
		}
		switch name {
		case "check", "verify", "enumerate":
			mix[name] = w
		default:
			return nil, fmt.Errorf("unknown endpoint %q in mix", name)
		}
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return mix, nil
}

// corpus holds the prebuilt request bodies per endpoint.
type corpus struct {
	bodies map[string][][]byte
}

// loadCorpus builds request bodies from the testdata directory:
// *.ccm files feed /v1/check, *.trace files feed /v1/verify, and
// /v1/enumerate gets a fixed cycle of small bounds.
func loadCorpus(dir string, mix map[string]int) (*corpus, error) {
	c := &corpus{bodies: make(map[string][][]byte)}
	add := func(endpoint string, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		c.bodies[endpoint] = append(c.bodies[endpoint], b)
		return nil
	}
	if mix["check"] > 0 {
		files, err := filepath.Glob(filepath.Join(dir, "*.ccm"))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			pair, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			if err := add("check", serve.CheckRequest{Pair: string(pair)}); err != nil {
				return nil, err
			}
		}
		if len(c.bodies["check"]) == 0 {
			return nil, fmt.Errorf("mix includes check but %s has no *.ccm files", dir)
		}
	}
	if mix["verify"] > 0 {
		files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			tr, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			if err := add("verify", serve.VerifyRequest{Trace: string(tr)}); err != nil {
				return nil, err
			}
		}
		if len(c.bodies["verify"]) == 0 {
			return nil, fmt.Errorf("mix includes verify but %s has no *.trace files", dir)
		}
	}
	if mix["enumerate"] > 0 {
		for n := 1; n <= 3; n++ {
			if err := add("enumerate", serve.EnumerateRequest{MaxNodes: n}); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// picker selects endpoints by mix weight and bodies uniformly.
type picker struct {
	rng       *rand.Rand
	endpoints []string // weight-expanded
	c         *corpus
}

func newPicker(seed int64, mix map[string]int, c *corpus) *picker {
	p := &picker{rng: rand.New(rand.NewSource(seed)), c: c}
	for _, name := range []string{"check", "verify", "enumerate"} {
		for i := 0; i < mix[name]; i++ {
			p.endpoints = append(p.endpoints, name)
		}
	}
	return p
}

func (p *picker) next() (endpoint string, body []byte) {
	endpoint = p.endpoints[p.rng.Intn(len(p.endpoints))]
	bodies := p.c.bodies[endpoint]
	return endpoint, bodies[p.rng.Intn(len(bodies))]
}

// retryAfterDelay decodes a 503's Retry-After hint — integer seconds
// or an HTTP date — clamped to [0, 5s] so a confused server cannot
// stall a load worker for the whole run. Absent or malformed hints
// yield a minimal 100ms pause: the shed itself says "back off".
func retryAfterDelay(h string, now func() time.Time) time.Duration {
	d := 100 * time.Millisecond
	if h != "" {
		if secs, err := strconv.Atoi(h); err == nil {
			d = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(h); err == nil {
			d = t.Sub(now())
		}
	}
	if d < 0 {
		d = 0
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// statsz fetches the target's gauge document.
func statsz(client *http.Client, target string) (serve.Statsz, error) {
	var st serve.Statsz
	resp, err := client.Get(target + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, fmt.Errorf("statsz: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func toWatermark(st serve.Statsz) watermark {
	return watermark{
		Goroutines: st.Runtime.Goroutines,
		HeapBytes:  st.Runtime.HeapAllocBytes,
		RSSBytes:   st.Runtime.RSSBytes,
	}
}

// run is the testable entry point.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "", "base URL of the ccmd daemon (required)")
	concurrency := fs.Int("c", 32, "concurrent client workers")
	duration := fs.Duration("duration", 60*time.Second, "how long to sustain the load")
	mixFlag := fs.String("mix", "check=6,verify=3,enumerate=1", "endpoint weights, name=weight pairs")
	testdata := fs.String("testdata", "testdata", "directory of *.ccm and *.trace corpus files")
	out := fs.String("out", "", "write the JSON report here (empty: stdout only)")
	settle := fs.Duration("settle", 2*time.Second, "wait after the load stops before the post-drain watermark")
	maxP99 := fs.Duration("max-p99", 0, "gate: fail if any endpoint's p99 exceeds this (0 disables)")
	maxErrRate := fs.Float64("max-error-rate", -1, "gate: fail if errors/requests exceeds this fraction (negative disables; shed 503s are not errors)")
	maxGoroutineGrowth := fs.Int("max-goroutine-growth", -1, "gate: fail if post-drain goroutines exceed pre-load by more than this (negative disables)")
	maxPanics := fs.Int64("max-panics", -1, "gate: fail if the daemon recovered more panics than this (negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target == "" || fs.NArg() != 0 || *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "soak: need -target URL, -c >= 1, -duration > 0, and no positional arguments")
		fs.Usage()
		return 2
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(stderr, "soak: %v\n", err)
		return 2
	}
	corp, err := loadCorpus(*testdata, mix)
	if err != nil {
		fmt.Fprintf(stderr, "soak: %v\n", err)
		return 2
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	pre, err := statsz(client, *target)
	if err != nil {
		fmt.Fprintf(stderr, "soak: target not answering: %v\n", err)
		return 2
	}

	// The load: workers hammer the mix until the deadline; a sampler
	// tracks the in-flight watermarks.
	aggs := map[string]*endpointAgg{"check": {}, "verify": {}, "enumerate": {}}
	loadCtx, cancelLoad := context.WithTimeout(ctx, *duration)
	defer cancelLoad()
	peak := toWatermark(pre)
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-loadCtx.Done():
				return
			case <-tick.C:
				if st, err := statsz(client, *target); err == nil {
					w := toWatermark(st)
					if w.Goroutines > peak.Goroutines {
						peak.Goroutines = w.Goroutines
					}
					if w.HeapBytes > peak.HeapBytes {
						peak.HeapBytes = w.HeapBytes
					}
					if w.RSSBytes > peak.RSSBytes {
						peak.RSSBytes = w.RSSBytes
					}
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pick := newPicker(seed, mix, corp)
			for loadCtx.Err() == nil {
				endpoint, body := pick.next()
				t0 := time.Now()
				req, err := http.NewRequestWithContext(loadCtx, http.MethodPost, *target+"/v1/"+endpoint, bytes.NewReader(body))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if loadCtx.Err() == nil {
						aggs[endpoint].record(time.Since(t0), 0, true)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				aggs[endpoint].record(time.Since(t0), resp.StatusCode, resp.Header.Get("X-Request-Id") != "")
				if resp.StatusCode == http.StatusServiceUnavailable {
					// Honor the shed hint: hammering through a 503 just
					// measures the admission queue's rejection path. The
					// wait still respects the load deadline.
					if d := retryAfterDelay(resp.Header.Get("Retry-After"), time.Now); d > 0 {
						select {
						case <-time.After(d):
						case <-loadCtx.Done():
						}
					}
				}
			}
		}(int64(i) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-samplerDone
	cancelLoad()

	// Post-drain watermark: let in-flight work and idle connections
	// settle, then sample once more. Interrupted runs skip the wait.
	select {
	case <-time.After(*settle):
	case <-ctx.Done():
	}
	post, err := statsz(client, *target)
	if err != nil {
		fmt.Fprintf(stderr, "soak: post-drain statsz: %v\n", err)
		return 2
	}

	rep := report{
		Target:        *target,
		GeneratedUnix: time.Now().Unix(),
		DurationS:     elapsed.Seconds(),
		Concurrency:   *concurrency,
		Mix:           mix,
		Endpoints:     make(map[string]endpointReport),
		Cache:         post.Cache,
		Runtime: map[string]watermark{
			"pre":  toWatermark(pre),
			"peak": peak,
			"post": toWatermark(post),
		},
		PanicsRecovered: post.PanicsRecovered - pre.PanicsRecovered,
		Violations:      []string{},
	}
	var all endpointAgg
	for name, agg := range aggs {
		if mix[name] == 0 {
			continue
		}
		rep.Endpoints[name] = agg.summarize(elapsed)
		agg.mu.Lock()
		all.latencyMS = append(all.latencyMS, agg.latencyMS...)
		all.errors += agg.errors
		all.shed += agg.shed
		all.missingID += agg.missingID
		agg.mu.Unlock()
	}
	rep.Totals = all.summarize(elapsed)
	rep.MissingRequestID = all.missingID
	if denom := rep.Cache.Hits + rep.Cache.Misses; denom > 0 {
		rep.CacheHitRatio = float64(rep.Cache.Hits) / float64(denom)
	}

	// Gate evaluation.
	gating := *maxP99 > 0 || *maxErrRate >= 0 || *maxGoroutineGrowth >= 0 || *maxPanics >= 0
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if *maxP99 > 0 {
		limit := float64(*maxP99) / float64(time.Millisecond)
		for name, er := range rep.Endpoints {
			if er.P99MS > limit {
				violate("%s p99 %.1fms exceeds %.1fms", name, er.P99MS, limit)
			}
		}
	}
	if *maxErrRate >= 0 && rep.Totals.Requests > 0 {
		rate := float64(rep.Totals.Errors) / float64(rep.Totals.Requests)
		if rate > *maxErrRate {
			violate("error rate %.4f exceeds %.4f (%d/%d)", rate, *maxErrRate, rep.Totals.Errors, rep.Totals.Requests)
		}
	}
	if *maxGoroutineGrowth >= 0 {
		if growth := rep.Runtime["post"].Goroutines - rep.Runtime["pre"].Goroutines; growth > *maxGoroutineGrowth {
			violate("goroutines grew by %d (pre %d, post %d), limit %d",
				growth, rep.Runtime["pre"].Goroutines, rep.Runtime["post"].Goroutines, *maxGoroutineGrowth)
		}
	}
	if *maxPanics >= 0 && rep.PanicsRecovered > *maxPanics {
		violate("daemon recovered %d panics, limit %d", rep.PanicsRecovered, *maxPanics)
	}
	if gating && rep.MissingRequestID > 0 {
		violate("%d responses carried no X-Request-Id", rep.MissingRequestID)
	}
	if gating && rep.Totals.Requests == 0 {
		violate("load generated no completed requests")
	}
	rep.OK = len(rep.Violations) == 0

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "soak: %v\n", err)
		return 2
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(stderr, "soak: %v\n", err)
			return 2
		}
	}
	stdout.Write(doc)
	for _, v := range rep.Violations {
		fmt.Fprintf(stderr, "soak: VIOLATION: %s\n", v)
	}
	if !rep.OK {
		return 1
	}
	return 0
}

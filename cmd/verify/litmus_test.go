package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// The verify leg of the litmus conformance suite: -pair must reproduce
// the golden verdicts.txt line for every fixture, byte for byte, the
// same way ccmc, POST /v1/check, and fleetctl do in their packages.
// All four suites read one golden file, so the frontends cannot drift
// from each other without a test failing somewhere.
func TestLitmusPairConformance(t *testing.T) {
	files, err := filepath.Glob("../../testdata/litmus/*.ccm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no litmus corpus: %v (%v)", files, err)
	}
	sort.Strings(files)

	data, err := os.ReadFile("../../testdata/litmus/verdicts.txt")
	if err != nil {
		t.Fatalf("no litmus golden: %v", err)
	}
	golden := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		golden[name] = line
	}

	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".ccm")
		want, ok := golden[name]
		if !ok {
			t.Errorf("fixture %s has no golden line", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-pair", file}, &out, &errb); code != 0 {
				t.Fatalf("verify -pair exit %d; stderr: %s", code, errb.String())
			}
			verdicts := make(map[string]string)
			for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
				model, rest, ok := strings.Cut(line, ": ")
				if !ok {
					t.Fatalf("unparseable verdict line %q", line)
				}
				verdict, _, _ := strings.Cut(rest, "  ")
				verdicts[model] = verdict
			}
			var b strings.Builder
			b.WriteString(name)
			for _, m := range memmodel.ModelNames() {
				v, ok := verdicts[m]
				if !ok {
					t.Fatalf("no verdict for model %s in output:\n%s", m, out.String())
				}
				fmt.Fprintf(&b, " %s=%s", m, v)
			}
			if got := b.String(); got != want {
				t.Errorf("verify -pair:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestPairModeErrors: the pair-mode flag plumbing rejects the
// combinations its usage forbids and surfaces unknown models as the
// self-describing memmodel error.
func TestPairModeErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-pair", "-demo"}, &out, &errb); code != 2 {
		t.Errorf("-pair -demo: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-model", "TSO", "../../testdata/figure2.trace"}, &out, &errb); code != 2 {
		t.Errorf("-model without -pair: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-pair", "-model", "PSO", "../../testdata/litmus/sb.ccm"}, &out, &errb); code != 2 {
		t.Errorf("-pair unknown model: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "known models") || !strings.Contains(errb.String(), "CAUSAL") {
		t.Errorf("unknown-model error not self-describing: %q", errb.String())
	}
}

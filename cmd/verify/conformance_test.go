package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// CLI-vs-service conformance for the post-mortem checker: every trace
// in the testdata corpus (plus the built-in demo) runs through the
// verify CLI and through /v1/verify, and the verdict texts, witness
// observers, and the relaxed-execution diagnosis must agree byte for
// byte.

// parseVerify reads verify -witness output back into check results.
func parseVerify(out string) (lcText, scText, lcWitness, scWitness string, relaxed, unexplainable bool) {
	cur := ""
	for _, line := range strings.Split(out, "\n") {
		detail := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "LC: "):
			lcText = verdictOf(line)
			cur = "LC"
		case strings.HasPrefix(line, "SC: "):
			scText = verdictOf(line)
			cur = "SC"
		case strings.HasPrefix(detail, "witness: "):
			w := strings.TrimPrefix(detail, "witness: ")
			if cur == "LC" {
				lcWitness = w
			} else {
				scWitness = w
			}
		case strings.Contains(line, "a relaxed (coherent but not sequentially consistent) execution"):
			relaxed = true
		case strings.HasPrefix(line, "UNEXPLAINABLE"):
			unexplainable = true
		}
	}
	return
}

// verdictOf extracts the verdict text from "LC: <text>  (search states: N)".
func verdictOf(line string) string {
	text := line[len("LC: "):]
	if i := strings.Index(text, "  (search states:"); i >= 0 {
		text = text[:i]
	}
	return text
}

func postVerify(t *testing.T, url, traceText string) serve.VerifyResponse {
	t.Helper()
	body, _ := json.Marshal(serve.VerifyRequest{Trace: traceText})
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service status %d: %s", resp.StatusCode, data)
	}
	var vr serve.VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	return vr
}

func TestConformanceVerifyCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.trace")
	if err != nil || len(files) == 0 {
		t.Fatalf("no trace corpus: %v (%v)", files, err)
	}
	s := serve.New(serve.Config{CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type instance struct {
		name string
		args []string
		text string
	}
	cases := []instance{{name: "demo", args: []string{"-witness", "-demo"}, text: demoTrace}}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, instance{
			name: filepath.Base(file),
			args: []string{"-witness", file},
			text: string(data),
		})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tc.args, &out, &errb)
			if code != 0 && code != 1 {
				t.Fatalf("verify exit %d; stderr: %s", code, errb.String())
			}
			lcText, scText, lcWitness, scWitness, relaxed, unexplainable := parseVerify(out.String())

			vr := postVerify(t, ts.URL, tc.text)
			if unexplainable {
				if vr.Explainable || vr.LC != nil || vr.SC != nil {
					t.Fatalf("CLI says unexplainable, service says %+v", vr)
				}
				return
			}
			if !vr.Explainable || vr.LC == nil || vr.SC == nil {
				t.Fatalf("CLI ran checks, service skipped them: %+v\nCLI:\n%s", vr, out.String())
			}
			if vr.LC.Text != lcText {
				t.Errorf("LC verdict: service %q, CLI %q", vr.LC.Text, lcText)
			}
			if vr.SC.Text != scText {
				t.Errorf("SC verdict: service %q, CLI %q", vr.SC.Text, scText)
			}
			if vr.LC.Witness != lcWitness {
				t.Errorf("LC witness: service %q, CLI %q", vr.LC.Witness, lcWitness)
			}
			if vr.SC.Witness != scWitness {
				t.Errorf("SC witness: service %q, CLI %q", vr.SC.Witness, scWitness)
			}
			if vr.Relaxed != relaxed {
				t.Errorf("relaxed diagnosis: service %v, CLI %v", vr.Relaxed, relaxed)
			}
			// Exit-code agreement: definitive violations are 1, clean 0.
			wantCode := 0
			if (vr.LC != nil && vr.LC.Verdict.Out()) || (vr.SC != nil && vr.SC.Verdict.Out()) {
				wantCode = 1
			}
			if code != wantCode {
				t.Errorf("CLI exit %d, service verdicts imply %d", code, wantCode)
			}
		})
	}
}

// TestConformanceVerifyUnexplainable: a read of a value nobody wrote
// short-circuits both front ends before any search runs.
func TestConformanceVerifyUnexplainable(t *testing.T) {
	const bad = `locs x
node W W(x) = 1
node R R(x) = 7
edge W R
`
	dir := t.TempDir()
	file := dir + "/bad.trace"
	if err := os.WriteFile(file, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{file}, &out, &errb); code != 1 {
		t.Fatalf("unexplainable trace: exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "UNEXPLAINABLE") {
		t.Fatalf("CLI output missing UNEXPLAINABLE:\n%s", out.String())
	}

	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	vr := postVerify(t, ts.URL, bad)
	if vr.Explainable || vr.LC != nil || vr.SC != nil || vr.Relaxed {
		t.Fatalf("service response %+v, want unexplainable with checks skipped", vr)
	}
}

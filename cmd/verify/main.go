// Command verify performs post-mortem analysis on an executed trace
// read from a file: it decides whether the observed values are
// explainable under sequential consistency and location consistency,
// and prints witness serializations when they are.
//
// Usage:
//
//	verify [-max-states N] [-timeout D] [-max-memo-mb N] [-witness] FILE
//	verify -demo
//
// File format — the computation format plus values:
//
//	locs data flag
//	node Wd W(data) = 1
//	node Wf W(flag) = 1
//	node Rf R(flag) = 1
//	node Rd R(data) = ?     # ? or ⊥ means "read uninitialized memory"
//	edge Wd Wf
//	edge Rf Rd
//
// Verdicts are three-valued: explainable, VIOLATED, or
// INCONCLUSIVE(reason) when a governor (-timeout, -max-states) stopped
// the search first; -max-memo-mb is exact and never inconclusive. Exit
// codes: 0 when every check is explainable, 1 when any check is
// definitively violated, 2 on usage errors, 3 when the outcome is
// inconclusive.
//
// A pair mode mirrors the ccmc CLI and the ccmd daemon's POST
// /v1/check: given a committed (computation, observer) pair in the
// .ccm format instead of a trace, decide membership under every
// registered model (or one, with -model) through the same
// memmodel.DecideByName front door the other frontends use:
//
//	verify -pair testdata/litmus/sb.ccm
//	verify -pair -model TSO testdata/litmus/sb.ccm
//
// Pair-mode exit codes match ccmc: 0 when the survey completes (or the
// single -model answers IN), 1 when a single -model answers OUT, 3
// when any verdict is inconclusive.
//
// Two streaming modes mirror the ccmd daemon's POST /v1/trace:
//
//	verify -stream FILE   feed the trace event-by-event through the
//	                      incremental online checker (internal/stream),
//	                      reporting stable violations the moment they
//	                      become observable; the final LC/SC verdicts
//	                      and the exit code are identical to the
//	                      post-mortem run on the same trace.
//	verify -events FILE   print the trace as its NDJSON event stream
//	                      (the /v1/trace wire format) and exit — the
//	                      payload generator for streaming clients and
//	                      the CI smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/stream"
	"repro/internal/trace"
)

const demoTrace = `locs data flag
node Wd W(data) = 1
node Wf W(flag) = 1
node Rf R(flag) = 1
node Rd R(data) = ?
edge Wd Wf
edge Rf Rd
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Int64("budget", 1000000, "alias of -max-states (kept for compatibility; applies to every search)")
	maxStates := fs.Int64("max-states", 0, "per-search state cap (0 = use -budget); exhaustion yields INCONCLUSIVE(budget)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit for the checks (0 = none); expiry yields INCONCLUSIVE(deadline)")
	maxMemoMB := fs.Int64("max-memo-mb", 0, "cap on search memoization memory in MiB (0 = unlimited); exact, never inconclusive")
	witness := fs.Bool("witness", false, "print witness observer functions")
	demo := fs.Bool("demo", false, "verify the built-in message-passing demo trace")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel root-splitting workers for the searches")
	streamMode := fs.Bool("stream", false, "verify incrementally through the online checker, reporting stable violations mid-stream")
	emitEvents := fs.Bool("events", false, "print the trace as its NDJSON event stream (the /v1/trace wire format) and exit")
	pairMode := fs.Bool("pair", false, "FILE is a committed (computation, observer) pair in the .ccm format; decide model membership instead of verifying a trace")
	model := fs.String("model", "", "with -pair, decide only this model (default: all registered models)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sess, err := obsFlags.Start("verify", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		return 2
	}
	code := runChecks(fs, sess.Rec, *budget, *maxStates, *timeout, *maxMemoMB, *witness, *demo, *workers, *streamMode, *emitEvents, *pairMode, *model, stdout, stderr)
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func runChecks(fs *flag.FlagSet, rec obs.Recorder, budget, maxStates int64, timeout time.Duration,
	maxMemoMB int64, witness, demo bool, workers int, streamMode, emitEvents, pairMode bool, model string, stdout, stderr io.Writer) int {

	if pairMode {
		if demo || streamMode || emitEvents {
			fmt.Fprintln(stderr, "verify: -pair cannot be combined with -demo, -stream, or -events")
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: verify -pair [-model M] FILE")
			return 2
		}
		return pairChecks(rec, fs.Arg(0), model, budget, maxStates, timeout, maxMemoMB, workers, stdout, stderr)
	}
	if model != "" {
		fmt.Fprintln(stderr, "verify: -model applies only to -pair")
		return 2
	}

	var nt *trace.NamedTrace
	var err error
	if demo {
		nt, err = trace.ParseTraceString(demoTrace)
		fmt.Fprint(stdout, "verifying the built-in message-passing trace:\n\n"+demoTrace+"\n")
	} else {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: verify [-max-states N] [-timeout D] [-witness] FILE | verify -demo")
			return 2
		}
		var f *os.File
		f, err = os.Open(fs.Arg(0))
		if err == nil {
			defer f.Close()
			nt, err = trace.ParseTrace(f)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		return 1
	}
	tr := nt.Trace

	if emitEvents {
		evs, err := stream.EventsFromTrace(nt)
		if err == nil {
			err = stream.WriteNDJSON(stdout, evs)
		}
		if err != nil {
			fmt.Fprintln(stderr, "verify:", err)
			return 1
		}
		return 0
	}

	if !tr.Explainable() {
		fmt.Fprintln(stdout, "UNEXPLAINABLE: some read returns a value no eligible write stored")
		return 1
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := checker.SearchOptions{Workers: workers, MaxMemoBytes: maxMemoMB << 20}
	opts.Budget = budget
	if maxStates > 0 {
		opts.Budget = maxStates
	}

	if streamMode {
		return streamChecks(ctx, rec, nt, opts, witness, stdout, stderr)
	}

	violated, inconclusive := false, false

	// Both checks run on the engine; label each check's run events.
	lcOpts := opts
	lcOpts.Recorder = obs.WithRun(rec, "LC")
	lc, lcVerdict, lcStats := checker.VerifyLCCtx(ctx, tr, lcOpts)
	fmt.Fprintf(stdout, "LC: %s  (search states: %d)\n", checker.VerdictText(lcVerdict), lcStats.States)
	violated = violated || lcVerdict.Out()
	inconclusive = inconclusive || lcVerdict.Inconclusive()
	if lcVerdict.In() && witness {
		fmt.Fprintf(stdout, "    witness: %v\n", lc.Observer)
	}

	scOpts := opts
	scOpts.Recorder = obs.WithRun(rec, "SC")
	scRes, scVerdict, scStats := checker.VerifySCCtx(ctx, tr, scOpts)
	fmt.Fprintf(stdout, "SC: %s  (search states: %d)\n", checker.VerdictText(scVerdict), scStats.States)
	violated = violated || scVerdict.Out()
	inconclusive = inconclusive || scVerdict.Inconclusive()
	switch {
	case scVerdict.In() && witness:
		fmt.Fprintf(stdout, "    witness: %v\n", scRes.Observer)
	case scVerdict.Inconclusive():
		fmt.Fprintf(stdout, "    stopped by the %s governor; raise -timeout/-max-states and retry\n", scVerdict.Reason)
	}

	if lcVerdict.In() && scVerdict.Out() {
		fmt.Fprintln(stdout, "\n=> a relaxed (coherent but not sequentially consistent) execution")
	}
	if lcVerdict.Out() {
		fmt.Fprintln(stdout, "\n=> not even location consistent: per-location write serialization is violated")
	}
	switch {
	case violated:
		return 1
	case inconclusive:
		return 3
	}
	return 0
}

// pairChecks decides a committed (computation, observer) pair under
// the registered models — the same memmodel.DecideByName path behind
// ccmc, POST /v1/check, and fleetctl, so verify's verdicts cannot
// drift from theirs (the litmus conformance suite pins all four to one
// golden file).
func pairChecks(rec obs.Recorder, file, model string, budget, maxStates int64, timeout time.Duration,
	maxMemoMB int64, workers int, stdout, stderr io.Writer) int {

	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		return 1
	}
	defer f.Close()
	named, ofn, err := observer.ParsePair(f)
	if err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		return 1
	}

	models := memmodel.ModelNames()
	if model != "" {
		models = []string{strings.ToUpper(model)} // match ccmc: `-model tso` works
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := memmodel.SearchOptions{Workers: workers, MaxMemoBytes: maxMemoMB << 20, Recorder: rec}
	opts.Budget = budget
	if maxStates > 0 {
		opts.Budget = maxStates
	}

	anyOut, anyInconclusive := false, false
	for _, name := range models {
		d, err := memmodel.DecideByName(ctx, name, named.Comp, ofn, opts)
		if err != nil {
			fmt.Fprintln(stderr, "verify:", err)
			return 2
		}
		anyOut = anyOut || d.Verdict.Out()
		anyInconclusive = anyInconclusive || d.Verdict.Inconclusive()
		fmt.Fprintf(stdout, "%s: %s  (search states: %d)\n", name, d.Verdict, d.Stats.States)
	}
	switch {
	case anyInconclusive:
		fmt.Fprintln(stderr, "verify: inconclusive: raise -timeout/-max-states and retry")
		return 3
	case anyOut && model != "":
		return 1
	}
	return 0
}

// streamChecks replays the parsed trace through the incremental online
// checker — the same engine behind ccmd's POST /v1/trace — printing
// each stable violation the moment it becomes observable, then the
// same LC/SC verdict lines (and exit code) the post-mortem path
// prints. Online-proved violations short-circuit their post-mortem
// search, so those lines report 0 search states.
func streamChecks(ctx context.Context, rec obs.Recorder, nt *trace.NamedTrace,
	opts checker.SearchOptions, witness bool, stdout, stderr io.Writer) int {

	evs, err := stream.EventsFromTrace(nt)
	if err != nil {
		fmt.Fprintln(stderr, "verify:", err)
		return 1
	}
	chk := stream.New(stream.Options{CheckEvery: 1})
	srec := obs.WithRun(rec, "stream")
	obs.Emit(srec, obs.Event{Kind: obs.RunStart, Total: len(evs)})
	for _, ev := range evs {
		v, err := chk.Ingest(ev)
		if err != nil {
			fmt.Fprintln(stderr, "verify:", err)
			return 1
		}
		if v != nil {
			models := strings.Join(v.Models, ",")
			fmt.Fprintf(stdout, "stream: event %d: stable %s violation at %s excludes %s\n",
				v.Event, v.Kind, v.Node, models)
			obs.Emit(srec, obs.Event{Kind: obs.StreamViolation, Str: models + " " + v.Kind, N: v.Event})
		}
	}
	fopts := opts
	fopts.Recorder = obs.WithRun(rec, "stream-final")
	fin := chk.Finish(ctx, fopts)

	st := chk.Stats()
	summary := fmt.Sprintf("LC=%s SC=%s", checker.VerdictText(fin.LC), checker.VerdictText(fin.SC))
	obs.Emit(srec, obs.Event{Kind: obs.StreamDone, N: st.Events, Total: int(st.Shed), Str: summary})
	obs.Emit(srec, obs.Event{Kind: obs.RunEnd, Str: summary})

	fmt.Fprintf(stdout, "LC: %s  (search states: %d)\n", checker.VerdictText(fin.LC), fin.LCStats.States)
	if fin.LC.In() && witness {
		fmt.Fprintf(stdout, "    witness: %v\n", fin.LCResult.Observer)
	}
	fmt.Fprintf(stdout, "SC: %s  (search states: %d)\n", checker.VerdictText(fin.SC), fin.SCStats.States)
	switch {
	case fin.SC.In() && witness:
		fmt.Fprintf(stdout, "    witness: %v\n", fin.SCResult.Observer)
	case fin.SC.Inconclusive():
		fmt.Fprintf(stdout, "    stopped by the %s governor; raise -timeout/-max-states and retry\n", fin.SC.Reason)
	}

	if fin.LC.In() && fin.SC.Out() {
		fmt.Fprintln(stdout, "\n=> a relaxed (coherent but not sequentially consistent) execution")
	}
	if fin.LC.Out() {
		fmt.Fprintln(stdout, "\n=> not even location consistent: per-location write serialization is violated")
	}
	switch {
	case fin.LC.Out() || fin.SC.Out():
		return 1
	case fin.LC.Inconclusive() || fin.SC.Inconclusive():
		return 3
	}
	return 0
}

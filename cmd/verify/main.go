// Command verify performs post-mortem analysis on an executed trace
// read from a file: it decides whether the observed values are
// explainable under sequential consistency and location consistency,
// and prints witness serializations when they are.
//
// Usage:
//
//	verify [-budget N] [-witness] FILE
//	verify -demo
//
// File format — the computation format plus values:
//
//	locs data flag
//	node Wd W(data) = 1
//	node Wf W(flag) = 1
//	node Rf R(flag) = 1
//	node Rd R(data) = ?     # ? or ⊥ means "read uninitialized memory"
//	edge Wd Wf
//	edge Rf Rd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/checker"
	"repro/internal/trace"
)

const demoTrace = `locs data flag
node Wd W(data) = 1
node Wf W(flag) = 1
node Rf R(flag) = 1
node Rd R(data) = ?
edge Wd Wf
edge Rf Rd
`

func main() {
	budget := flag.Int("budget", 1000000, "SC search-state budget (0 = unlimited)")
	witness := flag.Bool("witness", false, "print witness observer functions")
	demo := flag.Bool("demo", false, "verify the built-in message-passing demo trace")
	flag.Parse()

	var nt *trace.NamedTrace
	var err error
	if *demo {
		nt, err = trace.ParseTraceString(demoTrace)
		fmt.Print("verifying the built-in message-passing trace:\n\n" + demoTrace + "\n")
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: verify [-budget N] [-witness] FILE | verify -demo")
			os.Exit(2)
		}
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			nt, err = trace.ParseTrace(f)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	tr := nt.Trace

	if !tr.Explainable() {
		fmt.Println("UNEXPLAINABLE: some read returns a value no eligible write stored")
		os.Exit(1)
	}

	lc := checker.VerifyLC(tr)
	fmt.Printf("LC: %s\n", verdict(lc.OK))
	if lc.OK && *witness {
		fmt.Printf("    witness: %v\n", lc.Observer)
	}

	scRes, exhaustive := checker.VerifySCBudget(tr, *budget)
	switch {
	case scRes.OK:
		fmt.Printf("SC: %s\n", verdict(true))
		if *witness {
			fmt.Printf("    witness: %v\n", scRes.Observer)
		}
	case exhaustive:
		fmt.Printf("SC: %s\n", verdict(false))
	default:
		fmt.Println("SC: UNDECIDED (search budget exhausted; raise -budget)")
	}

	if lc.OK && (!scRes.OK && exhaustive) {
		fmt.Println("\n=> a relaxed (coherent but not sequentially consistent) execution")
	}
	if !lc.OK {
		fmt.Println("\n=> not even location consistent: per-location write serialization is violated")
	}
}

func verdict(ok bool) string {
	if ok {
		return "explainable"
	}
	return strings.ToUpper("violated")
}

// Command verify performs post-mortem analysis on an executed trace
// read from a file: it decides whether the observed values are
// explainable under sequential consistency and location consistency,
// and prints witness serializations when they are.
//
// Usage:
//
//	verify [-budget N] [-witness] FILE
//	verify -demo
//
// File format — the computation format plus values:
//
//	locs data flag
//	node Wd W(data) = 1
//	node Wf W(flag) = 1
//	node Rf R(flag) = 1
//	node Rd R(data) = ?     # ? or ⊥ means "read uninitialized memory"
//	edge Wd Wf
//	edge Rf Rd
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/checker"
	"repro/internal/trace"
)

const demoTrace = `locs data flag
node Wd W(data) = 1
node Wf W(flag) = 1
node Rf R(flag) = 1
node Rd R(data) = ?
edge Wd Wf
edge Rf Rd
`

func main() {
	budget := flag.Int("budget", 1000000, "SC search-state budget (0 = unlimited)")
	witness := flag.Bool("witness", false, "print witness observer functions")
	demo := flag.Bool("demo", false, "verify the built-in message-passing demo trace")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel root-splitting workers for the searches")
	flag.Parse()

	var nt *trace.NamedTrace
	var err error
	if *demo {
		nt, err = trace.ParseTraceString(demoTrace)
		fmt.Print("verifying the built-in message-passing trace:\n\n" + demoTrace + "\n")
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: verify [-budget N] [-witness] FILE | verify -demo")
			os.Exit(2)
		}
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			nt, err = trace.ParseTrace(f)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	tr := nt.Trace

	if !tr.Explainable() {
		fmt.Println("UNEXPLAINABLE: some read returns a value no eligible write stored")
		os.Exit(1)
	}

	opts := checker.SearchOptions{Workers: *workers}
	lc, _, lcStats := checker.VerifyLCOpts(tr, opts)
	fmt.Printf("LC: %s  (search states: %d)\n", verdict(lc.OK), lcStats.States)
	if lc.OK && *witness {
		fmt.Printf("    witness: %v\n", lc.Observer)
	}

	opts.Budget = int64(*budget)
	scRes, exhaustive, scStats := checker.VerifySCOpts(tr, opts)
	switch {
	case scRes.OK:
		fmt.Printf("SC: %s  (search states: %d)\n", verdict(true), scStats.States)
		if *witness {
			fmt.Printf("    witness: %v\n", scRes.Observer)
		}
	case exhaustive:
		fmt.Printf("SC: %s  (search states: %d)\n", verdict(false), scStats.States)
	default:
		fmt.Printf("SC: UNDECIDED (%d search states; budget exhausted, raise -budget)\n", scStats.States)
	}

	if lc.OK && (!scRes.OK && exhaustive) {
		fmt.Println("\n=> a relaxed (coherent but not sequentially consistent) execution")
	}
	if !lc.OK {
		fmt.Println("\n=> not even location consistent: per-location write serialization is violated")
	}
}

func verdict(ok bool) string {
	if ok {
		return "explainable"
	}
	return strings.ToUpper("violated")
}

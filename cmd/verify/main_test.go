package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/stream"
	"repro/internal/trace"
)

func TestRunDemo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-demo"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (the demo trace is LC but not SC); output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "LC: explainable") || !strings.Contains(out.String(), "SC: VIOLATED") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunBudgetInconclusive(t *testing.T) {
	path := writeHardTrace(t)
	var out, errb bytes.Buffer
	code := run([]string{"-max-states", "2000", path}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INCONCLUSIVE(budget)") {
		t.Fatalf("output missing budget verdict:\n%s", out.String())
	}
}

// TestRunTimeoutInconclusive is the acceptance criterion: a deadline
// landing mid-search on a hard trace must yield INCONCLUSIVE(deadline)
// with exit code 3, within ~2x the deadline, with no goroutine leak.
func TestRunTimeoutInconclusive(t *testing.T) {
	path := writeHardTrace(t)
	base := runtime.NumGoroutine()
	var out, errb bytes.Buffer
	start := time.Now()
	code := run([]string{"-timeout", "250ms", "-max-states", "0", "-budget", "0", path}, &out, &errb)
	elapsed := time.Since(start)

	if code != 3 {
		t.Fatalf("exit code = %d, want 3; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INCONCLUSIVE(deadline)") {
		t.Fatalf("output missing deadline verdict:\n%s", out.String())
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline run took %v against a 250ms deadline", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunStreamConformance is the CLI half of the tentpole's
// acceptance criterion: for every corpus trace, `verify -stream` must
// reach the same LC/SC verdict spellings and the same exit code as the
// post-mortem run. (Search-state counts may differ: online-proved
// violations short-circuit their search.)
func TestRunStreamConformance(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.trace"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (found %d)", err, len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			var offOut, offErr, strOut, strErr bytes.Buffer
			offCode := run([]string{path}, &offOut, &offErr)
			strCode := run([]string{"-stream", path}, &strOut, &strErr)
			if offCode != strCode {
				t.Fatalf("exit codes diverge: offline %d, stream %d\noffline:\n%s\nstream:\n%s",
					offCode, strCode, offOut.String(), strOut.String())
			}
			offLC, offSC := verdictLines(t, offOut.String())
			strLC, strSC := verdictLines(t, strOut.String())
			if offLC != strLC || offSC != strSC {
				t.Fatalf("verdicts diverge:\noffline LC=%q SC=%q\nstream  LC=%q SC=%q",
					offLC, offSC, strLC, strSC)
			}
		})
	}
}

// verdictLines extracts the verdict spellings from the "LC: …" and
// "SC: …" output lines, stripping the search-state parenthetical.
func verdictLines(t *testing.T, out string) (lc, sc string) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		text, rest := "", ""
		if s, ok := strings.CutPrefix(line, "LC: "); ok {
			text, rest = "LC", s
		} else if s, ok := strings.CutPrefix(line, "SC: "); ok {
			text, rest = "SC", s
		} else {
			continue
		}
		verdict, _, _ := strings.Cut(rest, "  (")
		if text == "LC" {
			lc = verdict
		} else {
			sc = verdict
		}
	}
	if lc == "" || sc == "" {
		t.Fatalf("output missing verdict lines:\n%s", out)
	}
	return lc, sc
}

// TestRunStreamViolationAnnounced pins the online property the stream
// mode exists for: on a violating trace, the stable violation is
// reported before the final verdict lines.
func TestRunStreamViolationAnnounced(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "corr_violation.trace")
	var out, errb bytes.Buffer
	code := run([]string{"-stream", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	s := out.String()
	vi := strings.Index(s, "stream: event ")
	li := strings.Index(s, "LC: ")
	if vi < 0 {
		t.Fatalf("no mid-stream violation line:\n%s", s)
	}
	if li >= 0 && vi > li {
		t.Fatalf("violation reported after the final verdict:\n%s", s)
	}
}

// TestRunEvents checks the NDJSON emitter round-trips: every line
// parses as a stream event, the stream is end-terminated, and feeding
// it back through the online checker reproduces the trace shape.
func TestRunEvents(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "mp_stale.trace")
	var out, errb bytes.Buffer
	if code := run([]string{"-events", path}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("suspiciously short event stream:\n%s", out.String())
	}
	chk := stream.New(stream.Options{})
	for i, line := range lines {
		ev, err := stream.ParseEvent([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if _, err := chk.Ingest(ev); err != nil {
			t.Fatalf("line %d: ingest: %v", i+1, err)
		}
	}
	if !chk.Ended() {
		t.Fatalf("event stream not end-terminated:\n%s", out.String())
	}
}

// writeHardTrace renders the pinned hard checker instance (the same
// generator and seed as the engine governance tests: >1e8 search
// states, minutes of work uncapped) to a temp file in verify's format.
func writeHardTrace(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := dag.RandomLayered(rng, 30, 8, 0.08)
	n := g.NumNodes()
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(2))
		if rng.Intn(3) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, 2)
	tr := trace.New(c)
	for u := 0; u < n; u++ {
		switch c.Op(dag.Node(u)).Kind {
		case computation.Write:
			tr.WriteVal[u] = trace.Value(rng.Intn(3) + 1)
		case computation.Read:
			tr.ReadVal[u] = trace.Value(rng.Intn(3) + 1)
		}
	}
	named := &computation.Named{
		Comp:    c,
		NodeID:  make(map[string]dag.Node, n),
		LocName: []string{"x", "y"},
		LocID:   map[string]computation.Loc{"x": 0, "y": 1},
	}
	for u := 0; u < n; u++ {
		name := fmt.Sprintf("n%d", u)
		named.NodeName = append(named.NodeName, name)
		named.NodeID[name] = dag.Node(u)
	}
	path := filepath.Join(t.TempDir(), "hard.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&trace.NamedTrace{Named: named, Trace: tr}).Format(f); err != nil {
		t.Fatal(err)
	}
	return path
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const litmus = "../../testdata/stale_read.ccm"

// litmusArgs runs the chaos modes over the stale-read litmus, whose
// single crossing edge (B -> C under list scheduling on P=2) makes
// every fault kind a violation.
func litmusArgs(extra ...string) []string {
	return append([]string{"-ccm", litmus, "-p", "2"}, extra...)
}

func TestExploreFindsViolations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(litmusArgs("-explore"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s\nstdout:\n%s", code, errb.String(), out.String())
	}
	for _, want := range []string{"skip-reconcile 1 2", "skip-flush 2", "delay-reconcile 1 2", "corrupt-read 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exploration output missing violation %q:\n%s", want, out.String())
		}
	}
}

func TestExploreCleanComputationExitsZero(t *testing.T) {
	// figure2 under P=1 has no crossing edges, so the only fault sites
	// are corrupt-read and crash-cache; crash-cache on a single cache
	// that is never bypassed cannot break LC, but corrupted reads can —
	// restricting the run to a single processor with a write-only
	// computation is the clean case. Use a fresh ccm with only writes.
	dir := t.TempDir()
	path := filepath.Join(dir, "writes.ccm")
	ccm := "locs x\nnode A W(x)\nnode B W(x)\nedge A B\n"
	if err := os.WriteFile(path, []byte(ccm), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-explore", "-ccm", path, "-p", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s\nstdout:\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "summary: 0 violations, 0 inconclusive") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestExploreTimeoutInconclusive(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(litmusArgs("-explore", "-timeout", "1ns"), &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "deadline governor") {
		t.Fatalf("output missing governor notice:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-depth", "3"},
		{"-badflag"},
		{"stray-positional"},
		{"-explore", "-sweep"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestMissingCcmFileExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-explore", "-ccm", "no/such/file.ccm"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

// TestExploreDeterminism is the acceptance criterion for replayability:
// two explorations under the same flags are byte-identical, and a plan
// extracted from the output replays via -replay to the same verdict and
// witness trace, byte for byte.
func TestExploreDeterminism(t *testing.T) {
	var out1, out2, errb bytes.Buffer
	if code := run(litmusArgs("-explore"), &out1, &errb); code != 1 {
		t.Fatalf("first exploration exit = %d; stderr: %s", code, errb.String())
	}
	if code := run(litmusArgs("-explore"), &out2, &errb); code != 1 {
		t.Fatalf("second exploration exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Fatalf("explorations differ:\n--- first\n%s\n--- second\n%s", out1.String(), out2.String())
	}

	// Extract each violation's (plan, verdict, trace) block and replay
	// the plan through -replay; the block must reproduce byte-for-byte.
	blocks := extractOutcomes(t, out1.String())
	if len(blocks) == 0 {
		t.Fatal("no violation blocks found in exploration output")
	}
	for _, block := range blocks {
		planLines := planOf(t, block)
		dir := t.TempDir()
		path := filepath.Join(dir, "plan.chaos")
		if err := os.WriteFile(path, []byte(planLines), 0o644); err != nil {
			t.Fatal(err)
		}
		var rout, rerr bytes.Buffer
		code := run(litmusArgs("-replay", path), &rout, &rerr)
		if code != 1 {
			t.Fatalf("replay of %q exit = %d, want 1; stderr: %s", planLines, code, rerr.String())
		}
		if rout.String() != block {
			t.Errorf("replay of %q diverged:\n--- explored\n%s\n--- replayed\n%s", planLines, block, rout.String())
		}
	}
}

// extractOutcomes splits exploration output into its printOutcome
// blocks ("plan:\n...\nverdict: ...\ntrace: ...\n").
func extractOutcomes(t *testing.T, out string) []string {
	t.Helper()
	var blocks []string
	lines := strings.SplitAfter(out, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimRight(lines[i], "\n") != "plan:" {
			continue
		}
		var b strings.Builder
		for ; i < len(lines); i++ {
			b.WriteString(lines[i])
			if strings.HasPrefix(lines[i], "trace: ") {
				break
			}
		}
		blocks = append(blocks, b.String())
	}
	return blocks
}

// planOf returns the plan lines of a printOutcome block.
func planOf(t *testing.T, block string) string {
	t.Helper()
	body := strings.TrimPrefix(block, "plan:\n")
	i := strings.Index(body, "verdict: ")
	if i < 0 {
		t.Fatalf("malformed block:\n%s", block)
	}
	return body[:i]
}

// TestShrinkReplayRoundTrip drives the full pipeline: shrink the first
// litmus violation into an artifact directory, then replay the
// directory and demand the same verdict and a matching trace.
func TestShrinkReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var sout, serr bytes.Buffer
	code := run(litmusArgs("-shrink", "-artifact-dir", dir), &sout, &serr)
	if code != 1 {
		t.Fatalf("shrink exit = %d, want 1; stderr:\n%s\nstdout:\n%s", code, serr.String(), sout.String())
	}
	if !strings.Contains(sout.String(), "artifact written to "+dir) {
		t.Fatalf("shrink did not report the artifact:\n%s", sout.String())
	}
	for _, f := range []string{"plan.chaos", "schedule.sched", "trace.trace", "computation.dot", "report.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact missing %s: %v", f, err)
		}
	}

	var rout, rerr bytes.Buffer
	code = run([]string{"-replay", dir}, &rout, &rerr)
	if code != 1 {
		t.Fatalf("artifact replay exit = %d, want 1; stderr:\n%s\nstdout:\n%s", code, rerr.String(), rout.String())
	}
	if !strings.Contains(rout.String(), "replay matches recorded trace: true") {
		t.Fatalf("replay did not match the recorded trace:\n%s", rout.String())
	}
	if !strings.Contains(rout.String(), "verdict: VIOLATED") {
		t.Fatalf("replay verdict changed:\n%s", rout.String())
	}
}

func TestTrialsHealthyRunExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-trials", "10", "-nodes", "10", "-p", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "location consistent: 10/10") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

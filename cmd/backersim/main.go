// Command backersim runs the BACKER coherence algorithm of Cilk on a
// simulated multiprocessor and verifies, post mortem, that every
// execution is location consistent — the claim of [Luc97] that Section 7
// of the paper builds on. It also regenerates the speedup-shape
// experiment of [BFJ+96a/b]: T_P against the work/span bound
// T_1/P + O(T_∞).
//
// Usage:
//
//	backersim [-trials N] [-nodes N] [-locs L] [-p P] [-seed S]
//	          [-faults PROB] [-sweep] [-shape spawn|grid|layered]
//
// Examples:
//
//	backersim                     # 200 random executions, LC-verified
//	backersim -faults 0.5         # inject protocol faults; count catches
//	backersim -sweep -shape spawn # speedup curve over processor counts
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	trials := flag.Int("trials", 200, "number of random executions")
	nodes := flag.Int("nodes", 24, "computation size for random trials")
	locs := flag.Int("locs", 2, "number of memory locations")
	procs := flag.Int("p", 4, "processor count for random trials")
	seed := flag.Int64("seed", 1, "random seed")
	faults := flag.Float64("faults", 0, "probability of skipping each reconcile/flush")
	sweep := flag.Bool("sweep", false, "run the speedup sweep instead of LC verification")
	shape := flag.String("shape", "spawn", "dag shape for -sweep: spawn, grid, or layered")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	if *sweep {
		runSweep(rng, *shape)
		return
	}
	runVerification(rng, *trials, *nodes, *locs, *procs, *faults)
}

func runVerification(rng *rand.Rand, trials, nodes, locs, procs int, faultProb float64) {
	lcOK, scOK, scUnknown, caught := 0, 0, 0, 0
	var f *backer.Faults
	if faultProb > 0 {
		f = &backer.Faults{SkipReconcile: faultProb, SkipFlush: faultProb, Rng: rng}
	}
	for i := 0; i < trials; i++ {
		c := randomMemComputation(rng, nodes, locs)
		res, err := backer.RunWorkStealing(c, procs, rng, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "backersim:", err)
			os.Exit(1)
		}
		if checker.VerifyLC(res.Trace).OK {
			lcOK++
		} else {
			caught++
		}
		if checker.OrderExplains(res.Trace, res.Schedule.Order) {
			scOK++
		} else if r, exhaustive := checker.VerifySCBudget(res.Trace, 500000); r.OK {
			scOK++
		} else if !exhaustive {
			scUnknown++
		}
	}
	fmt.Printf("BACKER on %d-node computations, %d locations, P=%d, %d trials\n", nodes, locs, procs, trials)
	if faultProb > 0 {
		fmt.Printf("fault injection: %.0f%% of reconciles/flushes skipped\n", faultProb*100)
	}
	fmt.Printf("  location consistent: %d/%d\n", lcOK, trials)
	fmt.Printf("  sequentially consistent: %d/%d (%d undecided within budget)\n", scOK, trials, scUnknown)
	if faultProb > 0 {
		fmt.Printf("  LC violations caught by the checker: %d\n", caught)
	} else if lcOK != trials {
		fmt.Println("ERROR: healthy BACKER must always be location consistent")
		os.Exit(1)
	}
}

func runSweep(rng *rand.Rand, shape string) {
	c := shapeComputation(rng, shape)
	t1 := sched.Work(c, nil)
	tinf := sched.Span(c, nil)
	fmt.Printf("speedup sweep on %s dag: %d nodes, T1=%d, T∞=%d, parallelism=%.1f\n",
		shape, c.NumNodes(), t1, tinf, float64(t1)/float64(tinf))
	fmt.Printf("%-4s %-10s %-10s %-10s %-8s %-8s %-8s\n",
		"P", "T_P", "T1/P+T∞", "speedup", "steals", "flushes", "fetches")
	var invP, tp []float64
	for _, P := range []int{1, 2, 4, 8, 16, 32} {
		const reps = 5
		var makespans, steals, flushes, fetches []float64
		for r := 0; r < reps; r++ {
			s, err := sched.WorkStealing(c, P, nil, rng)
			if err != nil {
				fmt.Fprintln(os.Stderr, "backersim:", err)
				os.Exit(1)
			}
			res, err := backer.Run(s, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "backersim:", err)
				os.Exit(1)
			}
			if !checker.VerifyLC(res.Trace).OK {
				fmt.Println("ERROR: sweep execution violated LC")
				os.Exit(1)
			}
			makespans = append(makespans, float64(s.Makespan))
			steals = append(steals, float64(s.Steals))
			flushes = append(flushes, float64(res.Stats.Flushes))
			fetches = append(fetches, float64(res.Stats.Fetches))
		}
		m := stats.Summarize(makespans)
		bound := float64(t1)/float64(P) + float64(tinf)
		fmt.Printf("%-4d %-10.1f %-10.1f %-10.2f %-8.1f %-8.1f %-8.1f\n",
			P, m.Mean, bound, float64(t1)/m.Mean,
			stats.Summarize(steals).Mean,
			stats.Summarize(flushes).Mean,
			stats.Summarize(fetches).Mean)
		invP = append(invP, 1/float64(P))
		tp = append(tp, m.Mean)
	}
	slope, intercept, r2 := stats.LinearFit(invP, tp)
	fmt.Printf("fit T_P ≈ %.1f/P + %.1f (R²=%.3f); compare T1=%d, T∞=%d\n",
		slope, intercept, r2, t1, tinf)
}

func shapeComputation(rng *rand.Rand, shape string) *computation.Computation {
	var g *dag.Dag
	switch shape {
	case "spawn":
		g = dag.SpawnTree(9)
	case "grid":
		g = dag.Grid(24, 24)
	case "layered":
		g = dag.RandomLayered(rng, 40, 14, 0.25)
	default:
		fmt.Fprintf(os.Stderr, "backersim: unknown shape %q\n", shape)
		os.Exit(2)
	}
	return labelRandom(rng, g, 2)
}

func labelRandom(rng *rand.Rand, g *dag.Dag, locs int) *computation.Computation {
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		switch rng.Intn(4) {
		case 0:
			ops[i] = computation.W(l)
		case 1:
			ops[i] = computation.N
		default:
			ops[i] = computation.R(l)
		}
	}
	return computation.MustFrom(g, ops, locs)
}

func randomMemComputation(rng *rand.Rand, n, locs int) *computation.Computation {
	return labelRandom(rng, dag.Random(rng, n, 0.25), locs)
}

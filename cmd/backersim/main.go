// Command backersim runs the BACKER coherence algorithm of Cilk on a
// simulated multiprocessor and verifies, post mortem, that every
// execution is location consistent — the claim of [Luc97] that Section 7
// of the paper builds on. It also regenerates the speedup-shape
// experiment of [BFJ+96a/b], and hosts the deterministic chaos harness:
// systematic fault-plan exploration, counterexample shrinking, and
// byte-replayable repros.
//
// Usage:
//
//	backersim [-trials N] [-nodes N] [-locs L] [-p P] [-seed S] [-faults PROB]
//	backersim -sweep [-shape spawn|grid|layered]
//	backersim -explore [-ccm FILE] [-depth 1|2] [-timeout D] [-max-states N]
//	backersim -shrink  [-ccm FILE] [-artifact-dir DIR] ...
//	backersim -replay PATH [-ccm FILE] ...
//
// Examples:
//
//	backersim                                  # 200 random executions, LC-verified
//	backersim -faults 0.5 -seed 7              # probabilistic faults; count catches
//	backersim -explore -ccm testdata/stale_read.ccm -p 2
//	backersim -shrink -ccm testdata/stale_read.ccm -p 2 -artifact-dir /tmp/repro
//	backersim -replay /tmp/repro               # replay the shrunk artifact
//	backersim -replay plan.chaos -ccm testdata/stale_read.ccm -p 2
//
// The chaos modes derive their schedule deterministically (greedy list
// scheduling of the -ccm computation, or of a seeded random computation
// when -ccm is absent), so a plan printed by -explore replays
// byte-for-byte with -replay under the same flags; -shrink writes a
// fully self-contained artifact directory (plan + schedule + trace +
// DOT + lattice classification) that -replay accepts directly.
//
// Verdicts are three-valued. Exit codes follow ccmc/verify: 0 when no
// definitive LC violation was found, 1 when one was (for the chaos
// modes, finding a violation is a definitive answer), 2 on usage
// errors, 3 when a governor (-timeout, -max-states) left the outcome
// inconclusive.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/backer"
	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	trials, nodes, locs, procs int
	seed                       int64
	faults                     float64
	shape                      string
	ccm                        string
	depth                      int
	artifactDir                string
	timeout                    time.Duration
	maxStates                  int64
	workers                    int
	classifyTries              int
	rec                        obs.Recorder
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("backersim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{}
	fs.IntVar(&cfg.trials, "trials", 200, "number of random executions")
	fs.IntVar(&cfg.nodes, "nodes", 24, "computation size for random/generated computations")
	fs.IntVar(&cfg.locs, "locs", 2, "number of memory locations")
	fs.IntVar(&cfg.procs, "p", 4, "processor count")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed")
	fs.Float64Var(&cfg.faults, "faults", 0, "probability of skipping each reconcile/flush (trial mode)")
	sweep := fs.Bool("sweep", false, "run the speedup sweep instead of LC verification")
	fs.StringVar(&cfg.shape, "shape", "spawn", "dag shape for -sweep: spawn, grid, or layered")
	explore := fs.Bool("explore", false, "systematically explore fault plans and report LC violations")
	shrink := fs.Bool("shrink", false, "explore, then shrink the first violation to a minimal repro")
	replay := fs.String("replay", "", "replay a fault plan file (or artifact directory) and report the verdict")
	fs.StringVar(&cfg.ccm, "ccm", "", "computation file for the chaos modes (default: seeded random computation)")
	fs.IntVar(&cfg.depth, "depth", 1, "max fault events per explored plan (1 or 2)")
	fs.StringVar(&cfg.artifactDir, "artifact-dir", "", "with -shrink: write the repro artifact bundle here")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock limit (0 = none); expiry yields INCONCLUSIVE(deadline)")
	fs.Int64Var(&cfg.maxStates, "max-states", 0, "per-search state cap (0 = unlimited); exhaustion yields INCONCLUSIVE(budget)")
	fs.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "parallel root-splitting workers for the searches")
	fs.IntVar(&cfg.classifyTries, "classify-tries", 200000, "observer-enumeration cap for lattice classification (0 = unlimited)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "backersim: unexpected arguments; see -h")
		return 2
	}
	if cfg.depth < 1 || cfg.depth > 2 {
		fmt.Fprintln(stderr, "backersim: -depth must be 1 or 2")
		return 2
	}
	modes := 0
	for _, on := range []bool{*sweep, *explore, *shrink, *replay != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "backersim: -sweep, -explore, -shrink and -replay are mutually exclusive")
		return 2
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	sess, err := obsFlags.Start("backersim", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 2
	}
	cfg.rec = sess.Rec

	var code int
	switch {
	case *explore:
		code = runExplore(ctx, cfg, stdout, stderr)
	case *shrink:
		code = runShrink(ctx, cfg, stdout, stderr)
	case *replay != "":
		code = runReplay(ctx, cfg, *replay, stdout, stderr)
	case *sweep:
		code = runSweep(rand.New(rand.NewSource(cfg.seed)), cfg.shape, stdout, stderr)
	default:
		code = runVerification(cfg, stdout, stderr)
	}
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// searchOptions builds the governed engine options shared by every
// chaos-mode verification.
func (c config) searchOptions() checker.SearchOptions {
	return checker.SearchOptions{Workers: c.workers, Budget: c.maxStates}
}

// chaosSchedule derives the deterministic (computation, schedule) pair
// the chaos modes operate on: the -ccm file, or a seeded random
// computation, list-scheduled on -p processors.
func chaosSchedule(cfg config) (*sched.Schedule, error) {
	var c *computation.Computation
	if cfg.ccm != "" {
		f, err := os.Open(cfg.ccm)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		named, err := computation.Parse(f)
		if err != nil {
			return nil, err
		}
		c = named.Comp
	} else {
		rng := rand.New(rand.NewSource(cfg.seed))
		c = randomMemComputation(rng, cfg.nodes, cfg.locs)
	}
	return sched.ListSchedule(c, cfg.procs, nil)
}

// printOutcome renders a (plan, verdict, trace) block. The format is
// shared by -explore, -shrink and -replay so that replays are
// byte-comparable against exploration output.
func printOutcome(w io.Writer, p *chaos.Plan, verdict checker.Verdict, tr *trace.Trace) {
	fmt.Fprintf(w, "plan:\n%s", p)
	fmt.Fprintf(w, "verdict: %s\n", renderVerdict(verdict))
	fmt.Fprintf(w, "trace: %v\n", tr)
}

func renderVerdict(v checker.Verdict) string {
	switch {
	case v.In():
		return "explainable"
	case v.Out():
		return "VIOLATED"
	default:
		return v.String() // INCONCLUSIVE(reason)
	}
}

func runExplore(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	s, err := chaosSchedule(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	rep, err := chaos.Explore(ctx, s, chaos.Options{Depth: cfg.depth, Search: cfg.searchOptions(),
		Recorder: obs.WithRun(cfg.rec, "explore")})
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "explored %d/%d plans over %d fault sites (depth %d, %d nodes, P=%d)\n",
		rep.Explored, rep.Planned, rep.Sites, cfg.depth, s.Comp.NumNodes(), s.P)
	for i, v := range rep.Violations {
		fmt.Fprintf(stdout, "\nviolation %d:\n", i+1)
		printOutcome(stdout, v.Plan, v.Verdict, v.Result.Trace)
	}
	fmt.Fprintf(stdout, "\nsummary: %d violations, %d inconclusive\n", len(rep.Violations), len(rep.Inconclusive))
	if rep.Stop != search.StopNone {
		fmt.Fprintf(stdout, "sweep stopped early by the %s governor; raise -timeout/-max-states and retry\n", rep.Stop)
	}
	switch {
	case len(rep.Violations) > 0:
		return 1
	case len(rep.Inconclusive) > 0 || rep.Stop != search.StopNone:
		return 3
	}
	return 0
}

func runShrink(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	s, err := chaosSchedule(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	opts := chaos.Options{Depth: cfg.depth, StopAtFirst: true, Search: cfg.searchOptions(),
		Recorder: obs.WithRun(cfg.rec, "explore")}
	rep, err := chaos.Explore(ctx, s, opts)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	if len(rep.Violations) == 0 {
		fmt.Fprintf(stdout, "no violation found in %d plans\n", rep.Explored)
		if len(rep.Inconclusive) > 0 || rep.Stop != search.StopNone {
			return 3
		}
		return 0
	}
	found := rep.Violations[0]
	repro, err := chaos.ShrinkRec(ctx, s, found.Plan, cfg.searchOptions(), obs.WithRun(cfg.rec, "shrink"))
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 3 // a governed stop mid-shrink is inconclusive, not a verdict
	}
	fmt.Fprintf(stdout, "shrunk %d-event plan on %d nodes to %d events on %d nodes (%d oracle runs)\n",
		found.Plan.Len(), s.Comp.NumNodes(), repro.Plan.Len(), repro.Sched.Comp.NumNodes(), repro.OracleRuns)
	_, verdict, _ := checker.VerifyLCCtx(ctx, repro.Result.Trace, cfg.searchOptions())
	printOutcome(stdout, repro.Plan, verdict, repro.Result.Trace)
	class := chaos.Classify(ctx, repro.Result.Trace, cfg.searchOptions(), cfg.classifyTries)
	fmt.Fprintln(stdout, "model lattice classification:")
	for _, mv := range class {
		fmt.Fprintf(stdout, "  %-3s %s\n", mv.Model+":", mv.Verdict)
	}
	if cfg.artifactDir != "" {
		if err := chaos.WriteArtifact(cfg.artifactDir, repro, class); err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "artifact written to %s\n", cfg.artifactDir)
	}
	return 1
}

func runReplay(ctx context.Context, cfg config, path string, stdout, stderr io.Writer) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	var (
		s    *sched.Schedule
		plan *chaos.Plan
		art  *chaos.Artifact
	)
	if info.IsDir() {
		art, err = chaos.LoadArtifact(path)
		if err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
		s, plan = art.Sched, art.Plan
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			fmt.Fprintln(stderr, "backersim:", ferr)
			return 1
		}
		plan, err = chaos.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
		s, err = chaosSchedule(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
	}
	res, _, err := chaos.Run(s, plan)
	if err != nil {
		fmt.Fprintln(stderr, "backersim:", err)
		return 1
	}
	lcOpts := cfg.searchOptions()
	lcOpts.Recorder = obs.WithRun(cfg.rec, "replay-lc")
	_, verdict, _ := checker.VerifyLCCtx(ctx, res.Trace, lcOpts)
	printOutcome(stdout, plan, verdict, res.Trace)
	if art != nil {
		match := res.Trace.String() == art.Trace.String()
		fmt.Fprintf(stdout, "replay matches recorded trace: %v\n", match)
		if !match {
			fmt.Fprintln(stderr, "backersim: replay diverged from the recorded artifact trace")
			return 1
		}
	}
	switch {
	case verdict.Out():
		return 1
	case verdict.Inconclusive():
		return 3
	}
	return 0
}

func runVerification(cfg config, stdout, stderr io.Writer) int {
	rng := rand.New(rand.NewSource(cfg.seed))
	lcOK, scOK, scUnknown, caught := 0, 0, 0, 0
	var f *backer.Faults
	if cfg.faults > 0 {
		f = &backer.Faults{SkipReconcile: cfg.faults, SkipFlush: cfg.faults, Rng: rng}
	}
	r := obs.WithRun(cfg.rec, "trials")
	var live *obs.Counters
	if cfg.rec != nil {
		live = &obs.Counters{}
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: cfg.trials, Live: live})
		defer func() {
			obs.Emit(r, obs.Event{Kind: obs.RunEnd,
				Str: fmt.Sprintf("%d/%d LC, %d violations caught", lcOK, cfg.trials, caught)})
		}()
	}
	for i := 0; i < cfg.trials; i++ {
		c := randomMemComputation(rng, cfg.nodes, cfg.locs)
		s, err := sched.WorkStealing(c, cfg.procs, nil, rng)
		if err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
		res, err := backer.RunRec(s, f, r)
		if err != nil {
			fmt.Fprintln(stderr, "backersim:", err)
			return 1
		}
		if checker.VerifyLC(res.Trace).OK {
			lcOK++
		} else {
			caught++
		}
		if checker.OrderExplains(res.Trace, res.Schedule.Order) {
			scOK++
		} else if r, exhaustive := checker.VerifySCBudget(res.Trace, 500000); r.OK {
			scOK++
		} else if !exhaustive {
			scUnknown++
		}
		if live != nil {
			live.Done.Add(1)
		}
	}
	fmt.Fprintf(stdout, "BACKER on %d-node computations, %d locations, P=%d, %d trials\n", cfg.nodes, cfg.locs, cfg.procs, cfg.trials)
	if cfg.faults > 0 {
		fmt.Fprintf(stdout, "fault injection: %.0f%% of reconciles/flushes skipped\n", cfg.faults*100)
	}
	fmt.Fprintf(stdout, "  location consistent: %d/%d\n", lcOK, cfg.trials)
	fmt.Fprintf(stdout, "  sequentially consistent: %d/%d (%d undecided within budget)\n", scOK, cfg.trials, scUnknown)
	if cfg.faults > 0 {
		fmt.Fprintf(stdout, "  LC violations caught by the checker: %d\n", caught)
	} else if lcOK != cfg.trials {
		fmt.Fprintln(stdout, "ERROR: healthy BACKER must always be location consistent")
		return 1
	}
	return 0
}

func runSweep(rng *rand.Rand, shape string, stdout, stderr io.Writer) int {
	c, ok := shapeComputation(rng, shape)
	if !ok {
		fmt.Fprintf(stderr, "backersim: unknown shape %q\n", shape)
		return 2
	}
	t1 := sched.Work(c, nil)
	tinf := sched.Span(c, nil)
	fmt.Fprintf(stdout, "speedup sweep on %s dag: %d nodes, T1=%d, T∞=%d, parallelism=%.1f\n",
		shape, c.NumNodes(), t1, tinf, float64(t1)/float64(tinf))
	fmt.Fprintf(stdout, "%-4s %-10s %-10s %-10s %-8s %-8s %-8s\n",
		"P", "T_P", "T1/P+T∞", "speedup", "steals", "flushes", "fetches")
	var invP, tp []float64
	for _, P := range []int{1, 2, 4, 8, 16, 32} {
		const reps = 5
		var makespans, steals, flushes, fetches []float64
		for r := 0; r < reps; r++ {
			s, err := sched.WorkStealing(c, P, nil, rng)
			if err != nil {
				fmt.Fprintln(stderr, "backersim:", err)
				return 1
			}
			res, err := backer.Run(s, nil)
			if err != nil {
				fmt.Fprintln(stderr, "backersim:", err)
				return 1
			}
			if !checker.VerifyLC(res.Trace).OK {
				fmt.Fprintln(stdout, "ERROR: sweep execution violated LC")
				return 1
			}
			makespans = append(makespans, float64(s.Makespan))
			steals = append(steals, float64(s.Steals))
			flushes = append(flushes, float64(res.Stats.Flushes))
			fetches = append(fetches, float64(res.Stats.Fetches))
		}
		m := stats.Summarize(makespans)
		bound := float64(t1)/float64(P) + float64(tinf)
		fmt.Fprintf(stdout, "%-4d %-10.1f %-10.1f %-10.2f %-8.1f %-8.1f %-8.1f\n",
			P, m.Mean, bound, float64(t1)/m.Mean,
			stats.Summarize(steals).Mean,
			stats.Summarize(flushes).Mean,
			stats.Summarize(fetches).Mean)
		invP = append(invP, 1/float64(P))
		tp = append(tp, m.Mean)
	}
	slope, intercept, r2 := stats.LinearFit(invP, tp)
	fmt.Fprintf(stdout, "fit T_P ≈ %.1f/P + %.1f (R²=%.3f); compare T1=%d, T∞=%d\n",
		slope, intercept, r2, t1, tinf)
	return 0
}

func shapeComputation(rng *rand.Rand, shape string) (*computation.Computation, bool) {
	var g *dag.Dag
	switch shape {
	case "spawn":
		g = dag.SpawnTree(9)
	case "grid":
		g = dag.Grid(24, 24)
	case "layered":
		g = dag.RandomLayered(rng, 40, 14, 0.25)
	default:
		return nil, false
	}
	return labelRandom(rng, g, 2), true
}

func labelRandom(rng *rand.Rand, g *dag.Dag, locs int) *computation.Computation {
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		switch rng.Intn(4) {
		case 0:
			ops[i] = computation.W(l)
		case 1:
			ops[i] = computation.N
		default:
			ops[i] = computation.R(l)
		}
	}
	return computation.MustFrom(g, ops, locs)
}

func randomMemComputation(rng *rand.Rand, n, locs int) *computation.Computation {
	return labelRandom(rng, dag.Random(rng, n, 0.25), locs)
}

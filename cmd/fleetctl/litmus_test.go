package main

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"
)

// TestRunLitmusCorpus extends the single-box byte-identity pin to the
// litmus corpus: fleet-dispatched verdicts for every litmus fixture —
// TSO, RA, and CAUSAL included — must render exactly as ccmc would,
// with and without -explain.
func TestRunLitmusCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/litmus/*.ccm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no litmus corpus: %v (%v)", files, err)
	}
	sort.Strings(files)
	replicas := startReplicas(t, 2)
	for _, explain := range []bool{false, true} {
		for _, path := range files {
			args := []string{"-replicas", replicas, "-shards", "4"}
			if explain {
				args = append(args, "-explain")
			}
			args = append(args, path)
			var stdout, stderr bytes.Buffer
			code := run(args, &stdout, &stderr)
			if code != 0 && code != 1 {
				t.Fatalf("%s explain=%v: exit %d, stderr: %s", path, explain, code, stderr.String())
			}
			if want := ccmcExpected(t, path, explain); stdout.String() != want {
				t.Errorf("%s explain=%v:\n got:\n%s\nwant:\n%s", path, explain, stdout.String(), want)
			}
		}
	}
}

// Command fleetctl is the fleet front door of the model checker: it
// reads (computation, observer function) pairs — the same text format
// ccmc checks on one box — and decides them against a fleet of ccmd
// replicas, sharding the SC search's root frontier across the fleet
// and merging the shard verdicts into exactly the single-box answer.
//
// Usage:
//
//	fleetctl -replicas URL[,URL...] [-models LIST] [-shards N] [-explain]
//	         [-max-attempts N] [-hedge-after D] [-timeout D] FILE...
//
// The dispatch layer is failure-first (see internal/fleet): failed
// shard batches retry with capped backoff honoring 503 Retry-After,
// stragglers are hedged to a second replica, per-replica circuit
// breakers keep dead replicas out of the rotation, and shards lost to
// replica death are reissued to survivors. When retries are exhausted
// the verdict degrades to a typed INCONCLUSIVE(fleet) and the exact
// shard coverage is reported on stderr.
//
// Exit codes: 0 on definitive verdicts (1 when -models selects a
// single model and it is OUT), 2 on usage errors, 3 when any verdict
// is inconclusive — including fleet degradation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	replicas := fs.String("replicas", "", "comma-separated ccmd base URLs (required)")
	models := fs.String("models", "", "comma-separated models to check (default: all)")
	shards := fs.Int("shards", 0, "SC frontier shards per pair (0 = one per replica)")
	explain := fs.Bool("explain", false, "print violation/witness details")
	maxAttempts := fs.Int("max-attempts", 0, "dispatch attempts per shard before it is lost (0 = 4)")
	hedgeAfter := fs.Duration("hedge-after", 0, "re-dispatch a straggling shard batch after this long (0 = no hedging)")
	timeout := fs.Duration("timeout", 0, "per-decision wall-clock budget forwarded to the replicas (0 = replica default)")
	maxStates := fs.Int64("max-states", 0, "per-decision state budget forwarded to the replicas (0 = replica default)")
	maxMemoMB := fs.Int64("max-memo-mb", 0, "per-search memo cap in MiB forwarded to the replicas (0 = replica default)")
	workers := fs.Int("workers", 0, "engine workers per replica shard (0 = replica default)")
	requestTimeout := fs.Duration("request-timeout", 0, "HTTP timeout per dispatch attempt (0 = 60s)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *replicas == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: fleetctl -replicas URL[,URL...] [-models LIST] [-shards N] [-explain] FILE...")
		return 2
	}
	sess, err := obsFlags.Start("fleetctl", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "fleetctl:", err)
		return 2
	}
	code := runChecks(fs.Args(), sess.Rec, *replicas, *models, *shards, *explain,
		*maxAttempts, *hedgeAfter, *timeout, *maxStates, *maxMemoMB, *workers, *requestTimeout, stdout, stderr)
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "fleetctl:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func runChecks(files []string, rec obs.Recorder, replicas, modelList string, shards int, explain bool,
	maxAttempts int, hedgeAfter, timeout time.Duration, maxStates, maxMemoMB int64, workers int,
	requestTimeout time.Duration, stdout, stderr io.Writer) int {

	var modelNames []string
	if modelList != "" {
		for _, m := range strings.Split(modelList, ",") {
			if m = strings.TrimSpace(m); m != "" {
				modelNames = append(modelNames, m)
			}
		}
	}

	co, err := fleet.New(fleet.Config{
		Replicas:    splitReplicas(replicas),
		Shards:      shards,
		MaxAttempts: maxAttempts,
		HedgeAfter:  hedgeAfter,
		Options: serve.Options{
			TimeoutMS: int64(timeout / time.Millisecond),
			MaxStates: maxStates,
			MaxMemoMB: maxMemoMB,
			Workers:   workers,
		},
		RequestTimeout: requestTimeout,
		Recorder:       rec,
	})
	if err != nil {
		fmt.Fprintln(stderr, "fleetctl:", err)
		return 2
	}

	anyOut, anyInconclusive := false, false
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "fleetctl:", err)
			return 1
		}
		pair := string(data)
		if len(files) > 1 {
			fmt.Fprintf(stdout, "== %s\n", path)
		}
		rep, err := co.Check(context.Background(), pair, modelNames)
		if err != nil {
			fmt.Fprintln(stderr, "fleetctl:", err)
			return 1
		}
		out, inconclusive := printReport(rep, pair, explain, stdout, stderr)
		anyOut = anyOut || out
		anyInconclusive = anyInconclusive || inconclusive
	}
	switch {
	case anyInconclusive:
		fmt.Fprintln(stderr, "fleetctl: inconclusive: raise budgets, add replicas, or retry")
		return 3
	case anyOut && len(modelNames) == 1:
		return 1
	}
	return 0
}

// printReport renders one pair's merged outcomes in the ccmc verdict
// format (minus the SC engine-stats parenthetical, which is per-box by
// nature), and the degrade report — exact shard coverage per degraded
// model — on stderr.
func printReport(rep *fleet.Report, pair string, explain bool, stdout, stderr io.Writer) (anyOut, anyInconclusive bool) {
	for _, o := range rep.Outcomes {
		anyOut = anyOut || o.Verdict.Out()
		anyInconclusive = anyInconclusive || o.Verdict.Inconclusive()
		fmt.Fprintf(stdout, "%-6s %s\n", o.Model, o.Verdict)
		if o.ShardsDone < o.ShardsTotal {
			fmt.Fprintf(stderr, "fleetctl: degraded: %s covered %d/%d shards (%d lost to replica failures)\n",
				o.Model, o.ShardsDone, o.ShardsTotal, o.ShardsTotal-o.ShardsDone)
		}
		if !explain {
			continue
		}
		switch o.Model {
		case "SC":
			if o.Verdict.In() {
				fmt.Fprintf(stdout, "     witness sort: %s\n", o.Witness)
				if !o.WitnessCanonical {
					fmt.Fprintln(stderr, "fleetctl: degraded: SC witness found above a lost shard; a lower-root witness may exist")
				}
			}
		case "TSO":
			if o.Verdict.In() {
				fmt.Fprintf(stdout, "     witness memory order: %s\n", o.Witness)
			}
		case "RA", "CAUSAL":
			// Polynomial yes/no deciders; no witness artifact to print.
		case "LC":
			if o.Verdict.In() {
				for l, s := range o.LocWitnesses {
					fmt.Fprintf(stdout, "     witness sort for location %d: %s\n", l, s)
				}
			} else if o.Verdict.Out() {
				// The LC explanation is a polynomial local computation;
				// no reason to burden the fleet with it.
				if named, ofn, err := observer.ParsePairString(pair); err == nil {
					if e := memmodel.ExplainLC(named.Comp, ofn); e != nil {
						fmt.Fprintf(stdout, "     %s\n", e)
					}
				}
			}
		default:
			if o.Violation != "" {
				// The wire form is "loc: u ≺ v ≺ w"; re-render it in the
				// ccmc explain spelling.
				if loc, triple, ok := strings.Cut(o.Violation, ": "); ok {
					fmt.Fprintf(stdout, "     violating triple at location %s: %s\n", loc, triple)
				}
			}
		}
	}
	return anyOut, anyInconclusive
}

// splitReplicas parses the -replicas list, trimming blanks.
func splitReplicas(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, strings.TrimRight(r, "/"))
		}
	}
	return out
}

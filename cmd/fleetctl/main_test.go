package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/serve"
)

var corpus = []string{
	"dekker.ccm",
	"figure2.ccm",
	"figure3.ccm",
	"figure4_prefix.ccm",
	"stale_read.ccm",
}

func startReplicas(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return strings.Join(urls, ",")
}

// ccmcExpected renders the pair's verdicts exactly as ccmc would —
// shared decision path, ccmc's format strings — minus the SC
// engine-stats parenthetical (per-box by nature, so fleetctl omits it).
func ccmcExpected(t *testing.T, path string, explain bool) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	named, ofn, err := observer.ParsePair(f)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, name := range memmodel.ModelNames() {
		d, err := memmodel.DecideByName(context.Background(), name, named.Comp, ofn, memmodel.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%-6s %s\n", name, d.Verdict)
		if !explain {
			continue
		}
		switch name {
		case "SC":
			if d.Verdict.In() {
				fmt.Fprintf(&b, "     witness sort: %s\n", named.RenderOrder(d.Order))
			}
		case "TSO":
			if d.Verdict.In() {
				fmt.Fprintf(&b, "     witness memory order: %s\n", named.RenderOrder(d.Order))
			}
		case "RA", "CAUSAL":
		case "LC":
			if d.Verdict.In() {
				for l, s := range d.LocOrders {
					fmt.Fprintf(&b, "     witness sort for location %d: %s\n", l, named.RenderOrder(s))
				}
			} else if d.Verdict.Out() {
				if e := memmodel.ExplainLC(named.Comp, ofn); e != nil {
					fmt.Fprintf(&b, "     %s\n", e)
				}
			}
		default:
			if v := d.Violation; v != nil {
				fmt.Fprintf(&b, "     violating triple at location %d: %s ≺ %s ≺ %s\n",
					v.Loc, named.RenderNode(v.U), named.RenderNode(v.V), named.RenderNode(v.W))
			}
		}
	}
	return b.String()
}

// TestRunMatchesSingleBoxOutput is the CLI-level conformance pin: over
// the whole corpus, with and without -explain, fleetctl's stdout is
// byte-identical to the ccmc rendering of the same decisions.
func TestRunMatchesSingleBoxOutput(t *testing.T) {
	replicas := startReplicas(t, 3)
	for _, name := range corpus {
		path := "../../testdata/" + name
		for _, explain := range []bool{false, true} {
			args := []string{"-replicas", replicas, "-shards", "4"}
			if explain {
				args = append(args, "-explain")
			}
			var stdout, stderr bytes.Buffer
			code := run(append(args, path), &stdout, &stderr)
			if code != 0 {
				t.Fatalf("%s explain=%v: exit %d, stderr: %s", name, explain, code, stderr.String())
			}
			if want := ccmcExpected(t, path, explain); stdout.String() != want {
				t.Errorf("%s explain=%v: output drifted from single-box.\n got:\n%s\nwant:\n%s",
					name, explain, stdout.String(), want)
			}
			if s := stderr.String(); strings.Contains(s, "degraded") {
				t.Errorf("%s: fault-free run reported degradation: %s", name, s)
			}
		}
	}
}

// TestRunMultiFileHeaders: more than one FILE gets per-file == headers.
func TestRunMultiFileHeaders(t *testing.T) {
	replicas := startReplicas(t, 2)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-replicas", replicas,
		"../../testdata/figure2.ccm", "../../testdata/figure3.ccm"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, h := range []string{"== ../../testdata/figure2.ccm\n", "== ../../testdata/figure3.ccm\n"} {
		if !strings.Contains(stdout.String(), h) {
			t.Errorf("missing header %q in output:\n%s", h, stdout.String())
		}
	}
}

// TestRunDegradesToExitThree: with every replica dead, fleetctl exits 3
// and reports the exact shard coverage of the typed INCONCLUSIVE(fleet)
// verdicts.
func TestRunDegradesToExitThree(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	url := ts.URL
	ts.Close() // every dial now fails

	var stdout, stderr bytes.Buffer
	code := run([]string{"-replicas", url, "-shards", "2", "-max-attempts", "2",
		"../../testdata/dekker.ccm"}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "INCONCLUSIVE(fleet)") {
		t.Errorf("stdout lacks the typed fleet verdict:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "covered 0/") {
		t.Errorf("stderr lacks the exact shard coverage:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "fleetctl: inconclusive") {
		t.Errorf("stderr lacks the inconclusive summary:\n%s", stderr.String())
	}
}

// TestRunUsage: flag and argument errors are exit 2; unreadable files
// are exit 1.
func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../../testdata/dekker.ccm"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -replicas: exit %d, want 2", code)
	}
	if code := run([]string{"-replicas", "http://127.0.0.1:1"}, &stdout, &stderr); code != 2 {
		t.Errorf("no files: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-replicas", "http://127.0.0.1:1", "no-such-file.ccm"}, &stdout, &stderr); code != 1 {
		t.Errorf("unreadable file: exit %d, want 1", code)
	}
}

// TestRunSingleModelOut: -models with one OUT model is exit 1, the
// ccmc convention.
func TestRunSingleModelOut(t *testing.T) {
	replicas := startReplicas(t, 1)
	// Find a corpus pair that is OUT of some model.
	for _, name := range corpus {
		path := "../../testdata/" + name
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		named, ofn, err := observer.ParsePair(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range memmodel.ModelNames() {
			d, err := memmodel.DecideByName(context.Background(), m, named.Comp, ofn, memmodel.SearchOptions{})
			if err != nil || !d.Verdict.Out() {
				continue
			}
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-replicas", replicas, "-models", m, path}, &stdout, &stderr); code != 1 {
				t.Errorf("%s -models %s: exit %d, want 1", name, m, code)
			}
			return
		}
	}
	t.Skip("no OUT pair in the corpus")
}

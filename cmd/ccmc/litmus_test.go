package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/serve"
)

// The litmus conformance suite: every fixture in testdata/litmus has a
// golden verdict line in verdicts.txt covering all registered models,
// and three frontends — the ccmc CLI, POST /v1/check, and
// POST /v1/batch — must reproduce it byte for byte. The corpus is the
// executable form of DESIGN.md §16's lattice claims (sb is TSO=IN,
// iriw is RA=IN TSO=OUT, and so on), so a mismatch here means either a
// decision procedure regressed or a frontend corrupted an answer.

// litmusGolden loads verdicts.txt into fixture-name → verdict line.
func litmusGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/litmus/verdicts.txt")
	if err != nil {
		t.Fatalf("no litmus golden: %v", err)
	}
	golden := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		golden[name] = line
	}
	return golden
}

// verdictLine renders one golden-format line from model → verdict.
func verdictLine(t *testing.T, name string, verdicts map[string]string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(name)
	for _, m := range memmodel.ModelNames() {
		v, ok := verdicts[m]
		if !ok {
			t.Fatalf("%s: no verdict for model %s", name, m)
		}
		fmt.Fprintf(&b, " %s=%s", m, v)
	}
	return b.String()
}

func TestLitmusCorpusConformance(t *testing.T) {
	files, err := filepath.Glob("../../testdata/litmus/*.ccm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no litmus corpus: %v (%v)", files, err)
	}
	sort.Strings(files)
	golden := litmusGolden(t)
	if len(golden) != len(files) {
		t.Fatalf("golden has %d entries, corpus has %d fixtures", len(golden), len(files))
	}

	s := serve.New(serve.Config{CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".ccm")
		want, ok := golden[name]
		if !ok {
			t.Errorf("fixture %s has no golden line", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			// CLI verdicts.
			var out, errb bytes.Buffer
			if code := run([]string{file}, &out, &errb); code != 0 && code != 1 {
				t.Fatalf("ccmc exit %d; stderr: %s", code, errb.String())
			}
			cliVerdicts := make(map[string]string)
			for m, r := range parseCCMC(t, out.String()) {
				cliVerdicts[m] = r.verdict
			}
			if got := verdictLine(t, name, cliVerdicts); got != want {
				t.Errorf("CLI:\n got %s\nwant %s", got, want)
			}

			pair, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}

			// Service /v1/check verdicts for the same bytes.
			body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
			var svc serve.CheckResponse
			postJSON(t, ts.URL+"/v1/check", body, &svc)
			svcVerdicts := make(map[string]string)
			for _, mr := range svc.Results {
				svcVerdicts[mr.Model] = mr.Verdict.String()
			}
			if got := verdictLine(t, name, svcVerdicts); got != want {
				t.Errorf("/v1/check:\n got %s\nwant %s", got, want)
			}

			// Service /v1/batch, one item per model.
			var items []serve.BatchItem
			for _, m := range memmodel.ModelNames() {
				items = append(items, serve.BatchItem{ID: m, Pair: string(pair), Model: m})
			}
			body, _ = json.Marshal(serve.BatchRequest{Items: items})
			var br serve.BatchResponse
			postJSON(t, ts.URL+"/v1/batch", body, &br)
			batchVerdicts := make(map[string]string)
			for _, r := range br.Results {
				batchVerdicts[r.Model] = r.Verdict.String()
			}
			if got := verdictLine(t, name, batchVerdicts); got != want {
				t.Errorf("/v1/batch:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// postJSON posts body and decodes the 200 response into out.
func postJSON(t *testing.T, url string, body []byte, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
}

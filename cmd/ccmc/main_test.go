package main

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRunDemo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-demo"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"SC     OUT", "LC     OUT", "NW     IN"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../testdata/figure2.ccm"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
}

func TestRunUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunModelOut(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-model", "SC", "-demo"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1 (Figure 2 is not SC); output:\n%s", code, out.String())
	}
}

// TestRunTimeoutInconclusive is the acceptance criterion for the
// governed CLI: an expired -timeout must yield INCONCLUSIVE(deadline)
// with exit code 3, promptly, without leaking goroutines.
func TestRunTimeoutInconclusive(t *testing.T) {
	base := runtime.NumGoroutine()
	var out, errb bytes.Buffer
	start := time.Now()
	code := run([]string{"-demo", "-timeout", "1ns"}, &out, &errb)
	elapsed := time.Since(start)

	if code != 3 {
		t.Fatalf("exit code = %d, want 3; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INCONCLUSIVE(deadline)") {
		t.Fatalf("output missing deadline verdict:\n%s", out.String())
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline run took %v, want prompt return", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunBudgetFlagAccepted(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-demo", "-max-states", "100000", "-max-memo-mb", "16"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
}

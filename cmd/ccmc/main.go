// Command ccmc is the computation-centric model checker: it reads a
// (computation, observer function) pair from a file and reports which
// memory models of the paper contain it.
//
// Usage:
//
//	ccmc [-model NAME] [-explain] FILE
//	ccmc -demo
//
// The file format is the text format of internal/computation plus
// `observe NODE LOC WRITER` lines:
//
//	locs x
//	node A W(x)
//	node B R(x)
//	edge A B
//	observe B x A
//
// With -demo, ccmc checks the paper's Figure 2 pair instead of a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/expt"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
	"repro/internal/viz"
)

func main() {
	model := flag.String("model", "", "check only this model (SC, LC, NN, NW, WN, WW)")
	explain := flag.Bool("explain", false, "print violation/witness details")
	demo := flag.Bool("demo", false, "check the built-in Figure 2 pair instead of a file")
	dot := flag.Bool("dot", false, "emit the pair as Graphviz DOT instead of checking")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel root-splitting workers for the SC search")
	flag.Parse()

	var (
		comp  *computation.Computation
		obs   *observer.Observer
		named *computation.Named
	)
	if *demo {
		fx := paperfig.Figure2()
		comp, obs = fx.Comp, fx.Obs
		fmt.Println("checking the built-in Figure 2 pair:")
		fmt.Printf("  %v\n  %v\n", comp, obs)
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ccmc [-model NAME] [-explain] FILE | ccmc -demo")
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		named2, obs2, err := observer.ParsePair(f)
		if err != nil {
			fatal(err)
		}
		named, comp, obs = named2, named2.Comp, obs2
	}

	if *dot {
		opts := viz.Options{Observer: obs, Title: "computation + observer"}
		if named != nil {
			opts.NodeNames = named.NodeName
		}
		if err := viz.WriteDOT(os.Stdout, comp, opts); err != nil {
			fatal(err)
		}
		return
	}

	models := expt.Models()
	if *model != "" {
		m, ok := expt.ModelByName(*model)
		if !ok {
			fatal(fmt.Errorf("unknown model %q", *model))
		}
		models = []memmodel.Model{m}
	}

	opts := memmodel.SearchOptions{Workers: *workers}
	anyOut := false
	for _, m := range models {
		var (
			in      bool
			scOrder []dag.Node
			scStats memmodel.SearchStats
		)
		if m.Name() == "SC" {
			scOrder, in, scStats = memmodel.SCWitnessOpts(comp, obs, opts)
		} else {
			in = m.Contains(comp, obs)
		}
		verdict := "OUT"
		if in {
			verdict = "IN"
		} else {
			anyOut = true
		}
		if m.Name() == "SC" {
			fmt.Printf("%-4s %s  (search: %d states, %d memo hits, %d pruned, %d workers)\n",
				m.Name(), verdict, scStats.States, scStats.MemoHits, scStats.Pruned, scStats.Workers)
		} else {
			fmt.Printf("%-4s %s\n", m.Name(), verdict)
		}
		if !*explain {
			continue
		}
		switch m.Name() {
		case "SC":
			if in {
				fmt.Printf("     witness sort: %s\n", renderOrder(named, scOrder))
			}
		case "LC":
			if sorts, ok := memmodel.LCWitness(comp, obs); ok {
				for l, s := range sorts {
					fmt.Printf("     witness sort for location %d: %s\n", l, renderOrder(named, s))
				}
			} else if e := memmodel.ExplainLC(comp, obs); e != nil {
				fmt.Printf("     %s\n", e)
			}
		case "NN", "NW", "WN", "WW":
			if in {
				break
			}
			pred := map[string]memmodel.Predicate{
				"NN": memmodel.PredNN, "NW": memmodel.PredNW,
				"WN": memmodel.PredWN, "WW": memmodel.PredWW,
			}[m.Name()]
			if v := memmodel.ExplainQDag(pred, comp, obs); v != nil {
				fmt.Printf("     violating triple at location %d: %s ≺ %s ≺ %s\n",
					v.Loc, renderNode(named, v.U), renderNode(named, v.V), renderNode(named, v.W))
			}
		}
	}
	if anyOut && *model != "" {
		os.Exit(1)
	}
}

func renderNode(named *computation.Named, u dag.Node) string {
	if u == observer.Bottom {
		return "⊥"
	}
	if named != nil {
		return named.NodeName[u]
	}
	return fmt.Sprintf("%d", u)
}

func renderOrder(named *computation.Named, order []dag.Node) string {
	s := ""
	for i, u := range order {
		if i > 0 {
			s += " "
		}
		s += renderNode(named, u)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccmc:", err)
	os.Exit(1)
}

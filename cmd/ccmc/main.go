// Command ccmc is the computation-centric model checker: it reads a
// (computation, observer function) pair from a file and reports which
// memory models of the paper contain it.
//
// Usage:
//
//	ccmc [-model NAME] [-explain] [-timeout D] [-max-states N] [-max-memo-mb N] FILE
//	ccmc -demo
//
// The file format is the text format of internal/computation plus
// `observe NODE LOC WRITER` lines:
//
//	locs x
//	node A W(x)
//	node B R(x)
//	edge A B
//	observe B x A
//
// With -demo, ccmc checks the paper's Figure 2 pair instead of a file.
//
// Every verdict is three-valued: IN, OUT, or INCONCLUSIVE(reason) when
// a resource governor (-timeout, -max-states, -max-memo-mb is exact
// and never inconclusive) stopped a decision first. Exit codes: 0 on
// definitive verdicts (1 when -model selects a single model and it is
// OUT), 2 on usage errors, 3 when any verdict is inconclusive.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/computation"
	"repro/internal/expt"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/paperfig"
	"repro/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "", "check only this model (SC, LC, NN, NW, WN, WW, TSO, RA, CAUSAL; case-insensitive)")
	explain := fs.Bool("explain", false, "print violation/witness details")
	demo := fs.Bool("demo", false, "check the built-in Figure 2 pair instead of a file")
	dot := fs.Bool("dot", false, "emit the pair as Graphviz DOT instead of checking")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel root-splitting workers for the SC search")
	timeout := fs.Duration("timeout", 0, "wall-clock limit for the decisions (0 = none); expiry yields INCONCLUSIVE(deadline)")
	maxStates := fs.Int64("max-states", 0, "cap on SC search states (0 = unlimited); exhaustion yields INCONCLUSIVE(budget)")
	maxMemoMB := fs.Int64("max-memo-mb", 0, "cap on SC search memoization memory in MiB (0 = unlimited); exact, never inconclusive")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sess, err := obsFlags.Start("ccmc", args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "ccmc:", err)
		return 2
	}
	code := runChecks(fs, sess.Rec, *model, *explain, *demo, *dot, *workers, *timeout, *maxStates, *maxMemoMB, stdout, stderr)
	if err := sess.Close(code); err != nil {
		fmt.Fprintln(stderr, "ccmc:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func runChecks(fs *flag.FlagSet, rec obs.Recorder, model string, explain, demo, dot bool,
	workers int, timeout time.Duration, maxStates, maxMemoMB int64, stdout, stderr io.Writer) int {

	var (
		comp  *computation.Computation
		ofn   *observer.Observer
		named *computation.Named
	)
	if demo {
		fx := paperfig.Figure2()
		comp, ofn = fx.Comp, fx.Obs
		fmt.Fprintln(stdout, "checking the built-in Figure 2 pair:")
		fmt.Fprintf(stdout, "  %v\n  %v\n", comp, ofn)
	} else {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: ccmc [-model NAME] [-explain] [-timeout D] [-max-states N] [-max-memo-mb N] FILE | ccmc -demo")
			return 2
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "ccmc:", err)
			return 1
		}
		defer f.Close()
		named2, obs2, err := observer.ParsePair(f)
		if err != nil {
			fmt.Fprintln(stderr, "ccmc:", err)
			return 1
		}
		named, comp, ofn = named2, named2.Comp, obs2
	}

	if dot {
		opts := viz.Options{Observer: ofn, Title: "computation + observer"}
		if named != nil {
			opts.NodeNames = named.NodeName
		}
		if err := viz.WriteDOT(stdout, comp, opts); err != nil {
			fmt.Fprintln(stderr, "ccmc:", err)
			return 1
		}
		return 0
	}

	models := memmodel.ModelNames()
	if model != "" {
		model = strings.ToUpper(model) // README shows `-model tso`; names are canonical uppercase
		if _, ok := expt.ModelByName(model); !ok {
			fmt.Fprintf(stderr, "ccmc: unknown model %q\n", model)
			return 1
		}
		models = []string{model}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := memmodel.SearchOptions{
		Workers:      workers,
		Budget:       maxStates,
		MaxMemoBytes: maxMemoMB << 20,
		Recorder:     rec,
	}

	anyOut, anyInconclusive := false, false
	for _, name := range models {
		// The decision itself is shared with the serving layer
		// (memmodel.DecideByName), so CLI and service verdicts and
		// witnesses come from one code path.
		d, err := memmodel.DecideByName(ctx, name, comp, ofn, opts)
		if err != nil {
			fmt.Fprintln(stderr, "ccmc:", err)
			return 1
		}
		verdict := d.Verdict
		anyOut = anyOut || verdict.Out()
		anyInconclusive = anyInconclusive || verdict.Inconclusive()
		if name == "SC" || name == "TSO" {
			fmt.Fprintf(stdout, "%-6s %s  (search: %d states, %d memo hits, %d pruned, %d workers)\n",
				name, verdict, d.Stats.States, d.Stats.MemoHits, d.Stats.Pruned, d.Stats.Workers)
		} else {
			fmt.Fprintf(stdout, "%-6s %s\n", name, verdict)
		}
		if !explain {
			continue
		}
		switch name {
		case "SC":
			if verdict.In() {
				fmt.Fprintf(stdout, "     witness sort: %s\n", named.RenderOrder(d.Order))
			}
		case "TSO":
			if verdict.In() {
				fmt.Fprintf(stdout, "     witness memory order: %s\n", named.RenderOrder(d.Order))
			}
		case "RA", "CAUSAL":
			// Polynomial yes/no deciders; no witness artifact to print.
		case "LC":
			if verdict.In() {
				for l, s := range d.LocOrders {
					fmt.Fprintf(stdout, "     witness sort for location %d: %s\n", l, named.RenderOrder(s))
				}
			} else if verdict.Out() {
				if e := memmodel.ExplainLC(comp, ofn); e != nil {
					fmt.Fprintf(stdout, "     %s\n", e)
				}
			}
		default:
			if v := d.Violation; v != nil {
				fmt.Fprintf(stdout, "     violating triple at location %d: %s ≺ %s ≺ %s\n",
					v.Loc, named.RenderNode(v.U), named.RenderNode(v.V), named.RenderNode(v.W))
			}
		}
	}
	switch {
	case anyInconclusive:
		fmt.Fprintln(stderr, "ccmc: inconclusive: raise -timeout/-max-states and retry")
		return 3
	case anyOut && model != "":
		return 1
	}
	return 0
}

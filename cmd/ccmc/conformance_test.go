package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/serve"
)

// The end-to-end conformance suite: every (computation, observer)
// pair in the testdata corpus is decided twice — through the ccmc CLI
// and through the ccmd service's /v1/check — and the verdict spellings
// and witness strings must be byte-identical. The CLI and the service
// share one decision path (memmodel.DecideByName) and one render path,
// so a divergence here means the service layer corrupted an answer.

// cliResult is what parseCCMC extracts from one model's CLI output.
type cliResult struct {
	verdict      string
	witness      string
	locWitnesses []string
	violation    string
}

// parseCCMC reads ccmc -explain output back into per-model results.
func parseCCMC(t *testing.T, out string) map[string]*cliResult {
	t.Helper()
	results := make(map[string]*cliResult)
	known := make(map[string]bool)
	for _, m := range memmodel.ModelNames() {
		known[m] = true
	}
	var cur *cliResult
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, " ") {
			f := strings.Fields(line)
			if len(f) >= 2 && known[f[0]] {
				cur = &cliResult{verdict: f[1]}
				results[f[0]] = cur
			}
			continue
		}
		if cur == nil {
			continue
		}
		detail := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(detail, "witness sort for location "):
			_, w, ok := strings.Cut(detail, ": ")
			if !ok {
				t.Fatalf("malformed witness line %q", line)
			}
			cur.locWitnesses = append(cur.locWitnesses, w)
		case strings.HasPrefix(detail, "witness sort: "):
			cur.witness = strings.TrimPrefix(detail, "witness sort: ")
		case strings.HasPrefix(detail, "witness memory order: "):
			cur.witness = strings.TrimPrefix(detail, "witness memory order: ")
		case strings.HasPrefix(detail, "violating triple at location "):
			cur.violation = strings.TrimPrefix(detail, "violating triple at location ")
		}
	}
	return results
}

func TestConformanceCheckCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.ccm")
	if err != nil || len(files) == 0 {
		t.Fatalf("no conformance corpus: %v (%v)", files, err)
	}
	s := serve.New(serve.Config{CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			// CLI answer.
			var out, errb bytes.Buffer
			if code := run([]string{"-explain", file}, &out, &errb); code != 0 {
				t.Fatalf("ccmc exit %d; stderr: %s", code, errb.String())
			}
			cli := parseCCMC(t, out.String())
			if want := len(memmodel.ModelNames()); len(cli) != want {
				t.Fatalf("CLI reported %d models, want %d:\n%s", len(cli), want, out.String())
			}

			// Service answer for the same bytes.
			pair, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
			resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("service status %d: %s", resp.StatusCode, data)
			}
			var svc serve.CheckResponse
			if err := json.Unmarshal(data, &svc); err != nil {
				t.Fatal(err)
			}
			if want := len(memmodel.ModelNames()); len(svc.Results) != want {
				t.Fatalf("service reported %d models, want %d", len(svc.Results), want)
			}

			// Byte-identical verdicts and witnesses, model by model.
			for _, mr := range svc.Results {
				c := cli[mr.Model]
				if c == nil {
					t.Errorf("CLI missing model %s", mr.Model)
					continue
				}
				if got := mr.Verdict.String(); got != c.verdict {
					t.Errorf("%s verdict: service %q, CLI %q", mr.Model, got, c.verdict)
				}
				if mr.Witness != c.witness {
					t.Errorf("%s witness: service %q, CLI %q", mr.Model, mr.Witness, c.witness)
				}
				if strings.Join(mr.LocWitnesses, "|") != strings.Join(c.locWitnesses, "|") {
					t.Errorf("%s location witnesses: service %v, CLI %v", mr.Model, mr.LocWitnesses, c.locWitnesses)
				}
				if mr.Violation != c.violation {
					t.Errorf("%s violation: service %q, CLI %q", mr.Model, mr.Violation, c.violation)
				}
			}
		})
	}
}

// TestConformanceRepeatServedFromCache closes the loop on the verdict
// cache: the same corpus query twice must hit, with the hit visible on
// both the response header and the /statsz counters, and the cached
// bytes identical to the computed ones.
func TestConformanceRepeatServedFromCache(t *testing.T) {
	s := serve.New(serve.Config{CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pair, err := os.ReadFile("../../testdata/figure2.ccm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.CheckRequest{Pair: string(pair)})
	var bodies [2][]byte
	var sources [2]string
	for i := range bodies {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		sources[i] = resp.Header.Get("X-Ccmd-Cache")
	}
	if sources != [2]string{"miss", "hit"} {
		t.Fatalf("cache sources = %v, want [miss hit]", sources)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("cached response differs from the computed one")
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits != 1 {
		t.Fatalf("statsz cache hits = %d, want 1", st.Cache.Hits)
	}
}

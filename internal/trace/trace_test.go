package trace

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

func chainWRW() *computation.Computation {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	d := c.AddNode(computation.W(0))
	c.MustAddEdge(a, b)
	c.MustAddEdge(b, d)
	return c
}

func TestNewAndValidate(t *testing.T) {
	c := chainWRW()
	tr := New(c)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.WriteVal[0] = Undefined
	if err := tr.Validate(); err == nil {
		t.Fatal("write of Undefined accepted")
	}
	bad := &Trace{Comp: c, WriteVal: make([]Value, 1), ReadVal: make([]Value, 3)}
	if err := bad.Validate(); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestUniqueWrites(t *testing.T) {
	c := chainWRW()
	tr := New(c).UniqueWrites()
	if tr.WriteVal[0] == tr.WriteVal[2] {
		t.Fatal("write values not unique")
	}
	if tr.WriteVal[0] == 0 || tr.WriteVal[2] == 0 {
		t.Fatal("write values must not collide with the zero default")
	}
}

func TestFromObserver(t *testing.T) {
	c := chainWRW()
	o := observer.New(c)
	o.Set(0, 1, 0)
	tr := FromObserver(c, o)
	if tr.ReadVal[1] != tr.WriteVal[0] {
		t.Fatal("read value must equal observed write's value")
	}
	o2 := observer.New(c) // read observes ⊥
	tr2 := FromObserver(c, o2)
	if tr2.ReadVal[1] != Undefined {
		t.Fatal("⊥ observation must read Undefined")
	}
}

func TestCandidates(t *testing.T) {
	c := chainWRW()
	o := observer.New(c)
	o.Set(0, 1, 0)
	tr := FromObserver(c, o)
	cands := tr.Candidates(1)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", cands)
	}
	// A later write with the same value is excluded by precedence.
	tr.WriteVal[2] = tr.WriteVal[0]
	cands = tr.Candidates(1)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v: write 2 follows the read", cands)
	}
	// Undefined read admits ⊥.
	tr.ReadVal[1] = Undefined
	cands = tr.Candidates(1)
	if len(cands) != 1 || cands[0] != observer.Bottom {
		t.Fatalf("candidates = %v, want [⊥]", cands)
	}
}

func TestCandidatesPanicsOnNonRead(t *testing.T) {
	c := chainWRW()
	tr := New(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Candidates(0)
}

func TestExplainable(t *testing.T) {
	c := chainWRW()
	tr := New(c).UniqueWrites()
	tr.ReadVal[1] = 999 // no write stores 999
	if tr.Explainable() {
		t.Fatal("unexplainable trace passed")
	}
	tr.ReadVal[1] = tr.WriteVal[0]
	if !tr.Explainable() {
		t.Fatal("explainable trace failed")
	}
}

func TestAmbiguousValuesWidenCandidates(t *testing.T) {
	// Two parallel writes storing the same value: a following read has
	// both as candidates.
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	w2 := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r)
	c.MustAddEdge(w2, r)
	tr := New(c)
	tr.WriteVal[w1] = 7
	tr.WriteVal[w2] = 7
	tr.ReadVal[r] = 7
	if got := tr.Candidates(r); len(got) != 2 {
		t.Fatalf("candidates = %v, want both writes", got)
	}
}

func TestString(t *testing.T) {
	c := chainWRW()
	tr := New(c).UniqueWrites()
	tr.ReadVal[1] = Undefined
	s := tr.String()
	if !strings.Contains(s, "⊥") || !strings.Contains(s, "W(0)=1") {
		t.Fatalf("String = %q", s)
	}
	cn := computation.New(1)
	cn.AddNode(computation.N)
	if !strings.Contains(New(cn).String(), "0:N") {
		t.Fatal("noop rendering wrong")
	}
	_ = dag.None
}

package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseTrace drives the trace parser with arbitrary input. The
// contract of the input boundary: any byte sequence either parses into
// a trace that validates, or returns an error — never a panic. Parsed
// traces must survive a format/re-parse roundtrip.
func FuzzParseTrace(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.trace"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("locs x\nnode A W(x) = 1\nnode B R(x) = 1\nedge A B\n")
	f.Add("locs x\nnode A R(x) = ?\n")     // undefined read
	f.Add("locs x\nnode A N = 3\n")        // value on a no-op (invalid)
	f.Add("locs x\nnode A W(x) = zzz\n")   // non-numeric value
	f.Add("locs x\nnode A W(x) = 1 = 2\n") // double assignment
	f.Fuzz(func(t *testing.T, input string) {
		nt, err := ParseTraceString(input)
		if err != nil {
			return
		}
		if verr := nt.Trace.Validate(); verr != nil {
			t.Fatalf("parsed trace fails validation: %v", verr)
		}
		var b strings.Builder
		if ferr := nt.Format(&b); ferr != nil {
			t.Fatalf("format failed: %v", ferr)
		}
		again, rerr := ParseTraceString(b.String())
		if rerr != nil {
			t.Fatalf("roundtrip re-parse failed: %v\nformatted:\n%s", rerr, b.String())
		}
		if again.Trace.Comp.NumNodes() != nt.Trace.Comp.NumNodes() {
			t.Fatalf("roundtrip changed node count")
		}
		for u, v := range nt.Trace.ReadVal {
			if again.Trace.ReadVal[u] != v {
				t.Fatalf("roundtrip changed read value of node %d: %d -> %d", u, v, again.Trace.ReadVal[u])
			}
		}
		for u, v := range nt.Trace.WriteVal {
			if again.Trace.WriteVal[u] != v {
				t.Fatalf("roundtrip changed write value of node %d: %d -> %d", u, v, again.Trace.WriteVal[u])
			}
		}
	})
}

package trace

import (
	"strings"
	"testing"
)

const mpTrace = `# message passing, stale data
locs data flag
node Wd W(data) = 1
node Wf W(flag) = 1
node Rf R(flag) = 1
node Rd R(data) = ?
edge Wd Wf
edge Rf Rd
`

func TestParseTrace(t *testing.T) {
	nt, err := ParseTraceString(mpTrace)
	if err != nil {
		t.Fatal(err)
	}
	tr := nt.Trace
	if tr.Comp.NumNodes() != 4 || tr.Comp.NumLocs() != 2 {
		t.Fatalf("shape: %v", tr.Comp)
	}
	if tr.WriteVal[0] != 1 || tr.WriteVal[1] != 1 {
		t.Fatal("write values wrong")
	}
	if tr.ReadVal[2] != 1 || tr.ReadVal[3] != Undefined {
		t.Fatal("read values wrong")
	}
}

func TestParseTraceBottomSpelling(t *testing.T) {
	nt, err := ParseTraceString("locs x\nnode R R(x) = ⊥\n")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Trace.ReadVal[0] != Undefined {
		t.Fatal("⊥ not parsed")
	}
}

func TestParseTraceNodeWithoutValue(t *testing.T) {
	nt, err := ParseTraceString("locs x\nnode A W(x)\nnode B N\n")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Trace.WriteVal[0] != 0 {
		t.Fatal("default write value wrong")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"locs x\nnode A W(x) = abc",     // bad value
		"locs x\nnode A N = 3",          // value on a no-op
		"locs x\nnode A W(x) = 1 extra", // malformed
		"locs x\nnode A W(x) =",         // malformed
		"bogus",                         // computation error
	}
	for _, src := range cases {
		if _, err := ParseTraceString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	nt, err := ParseTraceString(mpTrace)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := nt.Format(&b); err != nil {
		t.Fatal(err)
	}
	nt2, err := ParseTraceString(b.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b.String())
	}
	if !nt.Trace.Comp.Equal(nt2.Trace.Comp) {
		t.Fatal("round trip changed computation")
	}
	for u := range nt.Trace.ReadVal {
		if nt.Trace.ReadVal[u] != nt2.Trace.ReadVal[u] || nt.Trace.WriteVal[u] != nt2.Trace.WriteVal[u] {
			t.Fatal("round trip changed values")
		}
	}
}

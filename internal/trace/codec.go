package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
)

// This file implements a text format for executed traces, extending the
// computation format with values, so post-mortem verification can be
// driven from files (cmd/verify):
//
//	locs x y
//	node A W(x) = 1
//	node B R(y) = ?        # read returned Undefined
//	node C R(x) = 1
//	edge A B
//	edge B C
//
// Writes carry the stored value after "="; reads carry the returned
// value, with "?" (or "⊥") for Undefined. No-ops carry no value.

// NamedTrace couples a trace with the symbol tables of its text form.
type NamedTrace struct {
	Named *computation.Named
	Trace *Trace
}

// ParseTrace reads the trace text format. Like computation.Parse, it
// is an input boundary: malformed files return errors, and a recover
// fence converts any panic a hostile file provokes into one.
func ParseTrace(r io.Reader) (nt *NamedTrace, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			nt, err = nil, fmt.Errorf("trace: invalid input: %v", rec)
		}
	}()
	var compLines []string
	type valued struct {
		node string
		val  string
		line int
	}
	var values []valued

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "node ") {
			compLines = append(compLines, line)
			continue
		}
		// node NAME OP [= VALUE]
		fields := strings.Fields(line)
		eq := -1
		for i, f := range fields {
			if f == "=" {
				eq = i
				break
			}
		}
		if eq == -1 {
			compLines = append(compLines, line)
			continue
		}
		if eq != 3 || len(fields) != 5 {
			return nil, fmt.Errorf("line %d: want `node NAME OP = VALUE`", lineNo)
		}
		compLines = append(compLines, strings.Join(fields[:3], " "))
		values = append(values, valued{node: fields[1], val: fields[4], line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	named, perr := computation.Parse(strings.NewReader(strings.Join(compLines, "\n")))
	if perr != nil {
		return nil, perr
	}
	tr := New(named.Comp)
	for _, v := range values {
		u, ok := named.NodeID[v.node]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown node %q", v.line, v.node)
		}
		op := named.Comp.Op(u)
		var val Value
		if v.val == "?" || v.val == "⊥" {
			val = Undefined
		} else {
			n, err := strconv.ParseInt(v.val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value %q", v.line, v.val)
			}
			// The Undefined (⊥) sentinel is an in-band reservation of
			// math.MinInt64. A literal value equal to it would silently
			// change the read's candidate semantics (a numeric read would
			// become "observed no write"), so the boundary rejects it
			// instead; ⊥ is spelled "?" in this format.
			if Value(n) == Undefined {
				return nil, fmt.Errorf("line %d: value %d is reserved for the Undefined sentinel (spell ⊥ as \"?\")", v.line, n)
			}
			val = Value(n)
		}
		switch op.Kind {
		case computation.Write:
			tr.WriteVal[u] = val
		case computation.Read:
			tr.ReadVal[u] = val
		default:
			return nil, fmt.Errorf("line %d: no-op node %q cannot carry a value", v.line, v.node)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &NamedTrace{Named: named, Trace: tr}, nil
}

// ParseTraceString is ParseTrace over a string.
func ParseTraceString(s string) (*NamedTrace, error) {
	return ParseTrace(strings.NewReader(s))
}

// Format writes the trace in the format accepted by ParseTrace.
func (nt *NamedTrace) Format(w io.Writer) error {
	named, tr := nt.Named, nt.Trace
	c := named.Comp
	if len(named.LocName) > 0 {
		if _, err := fmt.Fprintf(w, "locs %s\n", strings.Join(named.LocName, " ")); err != nil {
			return err
		}
	}
	for u, name := range named.NodeName {
		op := c.Op(dag.Node(u))
		var opStr string
		if op.Kind == computation.Noop {
			opStr = "N"
		} else {
			opStr = fmt.Sprintf("%s(%s)", op.Kind, named.LocName[op.Loc])
		}
		switch op.Kind {
		case computation.Write:
			if _, err := fmt.Fprintf(w, "node %s %s = %d\n", name, opStr, tr.WriteVal[u]); err != nil {
				return err
			}
		case computation.Read:
			val := "?"
			if tr.ReadVal[u] != Undefined {
				val = strconv.FormatInt(int64(tr.ReadVal[u]), 10)
			}
			if _, err := fmt.Fprintf(w, "node %s %s = %s\n", name, opStr, val); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "node %s %s\n", name, opStr); err != nil {
				return err
			}
		}
	}
	for _, e := range c.Dag().Edges() {
		if _, err := fmt.Fprintf(w, "edge %s %s\n", named.NodeName[e[0]], named.NodeName[e[1]]); err != nil {
			return err
		}
	}
	return nil
}

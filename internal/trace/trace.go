// Package trace represents executions of computations with concrete
// memory values, the raw material of post-mortem analysis (Section 1 of
// the paper, citing [GK94]): after a system has finished executing, its
// behavior is a computation plus the values each read received, and
// verification asks whether some observer function in a given memory
// model explains those values.
//
// The paper abstracts values away through the observer function; this
// package is the bridge back: a Trace fixes the value each write stores
// and the value each read returns, and induces, for every read, the set
// of writes that could have been observed.
package trace

import (
	"fmt"
	"math"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Value is a concrete memory value.
type Value int64

// Undefined is the value returned by a read that observed no write
// (Φ(l, u) = ⊥). Writes must not store it.
const Undefined Value = math.MinInt64

// Trace is an executed computation: the value stored by each write and
// the value returned by each read. Entries for nodes of other kinds are
// ignored.
type Trace struct {
	Comp     *computation.Computation
	WriteVal []Value // indexed by node id; meaningful for writes
	ReadVal  []Value // indexed by node id; meaningful for reads

	// idx caches the value→writers index (see Index); nil until built.
	idx *Index
}

// New returns a trace skeleton for c with all values zero.
func New(c *computation.Computation) *Trace {
	return &Trace{
		Comp:     c,
		WriteVal: make([]Value, c.NumNodes()),
		ReadVal:  make([]Value, c.NumNodes()),
	}
}

// Validate checks shape and that no write stores Undefined.
func (t *Trace) Validate() error {
	n := t.Comp.NumNodes()
	if len(t.WriteVal) != n || len(t.ReadVal) != n {
		return fmt.Errorf("trace: value slices sized %d/%d for %d nodes", len(t.WriteVal), len(t.ReadVal), n)
	}
	for u := 0; u < n; u++ {
		if t.Comp.Op(dag.Node(u)).Kind == computation.Write && t.WriteVal[u] == Undefined {
			return fmt.Errorf("trace: write node %d stores Undefined", u)
		}
	}
	return nil
}

// UniqueWrites assigns every write a distinct value (its node id plus
// one, so zero never collides). Distinct write values make post-mortem
// verification exact: each read's candidate set is determined by value
// equality alone.
func (t *Trace) UniqueWrites() *Trace {
	for u := 0; u < t.Comp.NumNodes(); u++ {
		if t.Comp.Op(dag.Node(u)).Kind == computation.Write {
			t.WriteVal[u] = Value(u) + 1
		}
	}
	t.InvalidateIndex()
	return t
}

// FromObserver derives the trace an execution with observer function o
// would produce: each read returns the value stored by the write it
// observes, or Undefined for ⊥. Write values must be set beforehand
// (e.g. via UniqueWrites on the returned trace's skeleton); this
// convenience constructor assigns unique write values first.
func FromObserver(c *computation.Computation, o *observer.Observer) *Trace {
	t := New(c).UniqueWrites()
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		w := o.Get(op.Loc, dag.Node(u))
		if w == observer.Bottom {
			t.ReadVal[u] = Undefined
		} else {
			t.ReadVal[u] = t.WriteVal[w]
		}
	}
	return t
}

// Candidates returns, for the read node u, the observer values
// compatible with the trace: every write to u's location whose stored
// value equals the read value and that does not strictly follow u,
// plus ⊥ when the read value is Undefined. Panics if u is not a read.
// The lookup goes through the trace's value→writers index (built once,
// cached), so a whole trace's candidate sets cost one node scan total
// instead of one per read.
func (t *Trace) Candidates(u dag.Node) []dag.Node {
	op := t.Comp.Op(u)
	if op.Kind != computation.Read {
		panic(fmt.Sprintf("trace: node %d is not a read", u))
	}
	cl := t.Comp.Closure()
	var out []dag.Node
	if t.ReadVal[u] == Undefined {
		out = append(out, observer.Bottom)
	}
	for _, w := range t.Index().Writers(op.Loc, t.ReadVal[u]) {
		if !cl.Precedes(u, w) {
			out = append(out, w)
		}
	}
	return out
}

// Explainable reports whether every read has at least one candidate —
// a necessary condition for any model to explain the trace.
func (t *Trace) Explainable() bool {
	for u := 0; u < t.Comp.NumNodes(); u++ {
		if t.Comp.Op(dag.Node(u)).Kind != computation.Read {
			continue
		}
		if len(t.Candidates(dag.Node(u))) == 0 {
			return false
		}
	}
	return true
}

// String renders the trace compactly.
func (t *Trace) String() string {
	s := "trace("
	for u := 0; u < t.Comp.NumNodes(); u++ {
		op := t.Comp.Op(dag.Node(u))
		switch op.Kind {
		case computation.Write:
			s += fmt.Sprintf(" %d:%s=%d", u, op, t.WriteVal[u])
		case computation.Read:
			if t.ReadVal[u] == Undefined {
				s += fmt.Sprintf(" %d:%s=⊥", u, op)
			} else {
				s += fmt.Sprintf(" %d:%s=%d", u, op, t.ReadVal[u])
			}
		default:
			s += fmt.Sprintf(" %d:N", u)
		}
	}
	return s + " )"
}

package trace

import (
	"repro/internal/computation"
	"repro/internal/dag"
)

// Index is the value→writers map of a trace, built in one pass: for
// every location, the writes grouped by stored value in increasing
// node order. Candidates and Explainable used to rediscover this by
// scanning every node per read (O(n) per call, O(n²) across a trace's
// reads); the post-mortem constraint builder and the streaming checker
// now share one Index per trace instead.
type Index struct {
	// byLoc[l] maps a stored value to the nodes writing it to l, in
	// increasing node order (the order the full-scan Candidates
	// produced, so candidate sets are byte-identical).
	byLoc []map[Value][]dag.Node
	// n is the node count at build time; Trace.Index rebuilds when the
	// computation has grown since (the streaming checker's trace does).
	n int
}

// NewIndex builds the value→writers index of t in one pass over the
// nodes. The index is a snapshot: callers that mutate WriteVal or the
// computation afterwards must rebuild it (the Trace.Index accessor
// handles the common case).
func NewIndex(t *Trace) *Index {
	c := t.Comp
	idx := &Index{byLoc: make([]map[Value][]dag.Node, c.NumLocs()), n: c.NumNodes()}
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Write {
			continue
		}
		m := idx.byLoc[op.Loc]
		if m == nil {
			m = make(map[Value][]dag.Node)
			idx.byLoc[op.Loc] = m
		}
		v := t.WriteVal[u]
		m[v] = append(m[v], dag.Node(u))
	}
	return idx
}

// Writers returns the writes of value v to location l, in increasing
// node order. The slice is shared with the index; callers must not
// mutate it.
func (idx *Index) Writers(l computation.Loc, v Value) []dag.Node {
	if int(l) >= len(idx.byLoc) || idx.byLoc[l] == nil {
		return nil
	}
	return idx.byLoc[l][v]
}

// Index returns the trace's value→writers index, building it on first
// use and caching it. A grown computation (more nodes than at build
// time) rebuilds automatically; callers that overwrite WriteVal in
// place after the index was built must call InvalidateIndex (the
// package's own mutators do).
func (t *Trace) Index() *Index {
	if t.idx == nil || t.idx.n != t.Comp.NumNodes() {
		t.idx = NewIndex(t)
	}
	return t.idx
}

// InvalidateIndex drops the cached value→writers index so the next
// Index call rebuilds it against the current values.
func (t *Trace) InvalidateIndex() { t.idx = nil }

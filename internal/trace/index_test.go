package trace

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
)

// candidatesScan is the pre-index implementation: a full node scan per
// read. Kept as the oracle the indexed path must match exactly.
func candidatesScan(t *Trace, u dag.Node) []dag.Node {
	op := t.Comp.Op(u)
	cl := t.Comp.Closure()
	var out []dag.Node
	if t.ReadVal[u] == Undefined {
		out = append(out, -1) // observer.Bottom
	}
	for _, w := range t.Comp.Writers(op.Loc) {
		if t.WriteVal[w] == t.ReadVal[u] && !cl.Precedes(u, w) {
			out = append(out, w)
		}
	}
	return out
}

// TestIndexedCandidatesMatchScan pins the satellite contract: the
// value→writers index yields candidate sets identical (members and
// order) to the full-scan implementation, over the corpus and over
// random traces.
func TestIndexedCandidatesMatchScan(t *testing.T) {
	check := func(t *testing.T, tr *Trace) {
		t.Helper()
		for u := 0; u < tr.Comp.NumNodes(); u++ {
			if tr.Comp.Op(dag.Node(u)).Kind != computation.Read {
				continue
			}
			got := tr.Candidates(dag.Node(u))
			want := candidatesScan(tr, dag.Node(u))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d: indexed candidates %v != scan %v", u, got, want)
			}
		}
	}

	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.trace"))
	if len(paths) == 0 {
		t.Fatal("no corpus traces found")
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			nt, err := ParseTraceString(string(b))
			if err != nil {
				t.Fatal(err)
			}
			check(t, nt.Trace)
		})
	}

	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 50; trial++ {
			c := computation.New(2)
			n := 3 + rng.Intn(7)
			for u := 0; u < n; u++ {
				switch rng.Intn(3) {
				case 0:
					c.AddNode(computation.W(computation.Loc(rng.Intn(2))))
				case 1:
					c.AddNode(computation.R(computation.Loc(rng.Intn(2))))
				default:
					c.AddNode(computation.N)
				}
			}
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if rng.Intn(3) == 0 {
						c.MustAddEdge(dag.Node(u), dag.Node(v))
					}
				}
			}
			tr := New(c)
			for u := 0; u < n; u++ {
				switch c.Op(dag.Node(u)).Kind {
				case computation.Write:
					tr.WriteVal[u] = Value(rng.Intn(3) + 1) // collisions on purpose
				case computation.Read:
					if rng.Intn(4) == 0 {
						tr.ReadVal[u] = Undefined
					} else {
						tr.ReadVal[u] = Value(rng.Intn(4))
					}
				}
			}
			check(t, tr)
		}
	})
}

// TestIndexRebuildsOnGrowth: a trace whose computation grows (the
// streaming checker's does, one node per event) must not serve stale
// candidate sets from an index built against the shorter prefix.
func TestIndexRebuildsOnGrowth(t *testing.T) {
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	tr := &Trace{Comp: c, WriteVal: make([]Value, 8), ReadVal: make([]Value, 8)}
	tr.WriteVal[w1] = 5
	tr.ReadVal[r] = 5
	if got := tr.Candidates(r); len(got) != 1 || got[0] != w1 {
		t.Fatalf("candidates before growth: %v", got)
	}
	w2 := c.AddNode(computation.W(0))
	tr.WriteVal[w2] = 5
	if got := tr.Candidates(r); len(got) != 2 || got[0] != w1 || got[1] != w2 {
		t.Fatalf("candidates after growth: %v (stale index?)", got)
	}
}

// TestInvalidateIndex covers explicit in-place value rewrites.
func TestInvalidateIndex(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	tr := New(c)
	tr.WriteVal[w] = 1
	tr.ReadVal[r] = 2
	if got := tr.Candidates(r); len(got) != 0 {
		t.Fatalf("unexpected candidates: %v", got)
	}
	tr.WriteVal[w] = 2
	tr.InvalidateIndex()
	if got := tr.Candidates(r); len(got) != 1 || got[0] != w {
		t.Fatalf("candidates after invalidate: %v", got)
	}
}

// TestParseRejectsUndefinedSentinel is the regression test for the
// in-band-sentinel bug: a literal math.MinInt64 used to be accepted
// and silently conflated with the ⊥ sentinel, flipping a numeric
// read's semantics to "observed no write" (and a write's to an
// after-the-fact Validate failure with a misleading message).
func TestParseRejectsUndefinedSentinel(t *testing.T) {
	sentinel := fmt.Sprintf("%d", math.MinInt64)
	for _, tc := range []struct {
		name, input string
	}{
		{"read", "locs x\nnode A W(x) = 1\nnode B R(x) = " + sentinel + "\nedge A B\n"},
		{"write", "locs x\nnode A W(x) = " + sentinel + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTraceString(tc.input)
			if err == nil {
				t.Fatalf("sentinel value %s accepted", sentinel)
			}
			if !strings.Contains(err.Error(), "reserved for the Undefined sentinel") {
				t.Fatalf("error does not name the sentinel: %v", err)
			}
		})
	}
	// Near-misses must still parse: the neighbouring value and the
	// explicit ⊥ spellings.
	ok := "locs x\nnode A W(x) = -9223372036854775807\nnode B R(x) = ?\nnode C R(x) = ⊥\n"
	if _, err := ParseTraceString(ok); err != nil {
		t.Fatalf("near-sentinel value rejected: %v", err)
	}
}

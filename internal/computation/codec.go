package computation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dag"
)

// This file implements a small line-oriented text format for
// computations (and, via the observer package, observer functions), so
// the cmd/ tools can exchange the paper's objects as files:
//
//	# Figure 2 of the paper
//	locs x
//	node A W(x)
//	node B W(x)
//	node C R(x)
//	node D R(x)
//	edge A B
//	edge B C
//	edge C D
//
// Node and location names are arbitrary identifiers; ops are N, R(loc),
// or W(loc). Nodes are numbered in order of declaration; locations in
// order of appearance on the locs line.

// Named is a Computation together with the symbol tables used by the
// text format.
type Named struct {
	Comp     *Computation
	NodeName []string // node id -> name
	NodeID   map[string]dag.Node
	LocName  []string // loc id -> name
	LocID    map[string]Loc
}

// NewNamed returns an empty named computation with the given location
// names (which fix NumLocs).
func NewNamed(locNames ...string) *Named {
	n := &Named{
		Comp:    New(len(locNames)),
		NodeID:  make(map[string]dag.Node),
		LocID:   make(map[string]Loc),
		LocName: append([]string(nil), locNames...),
	}
	for i, name := range locNames {
		if _, dup := n.LocID[name]; dup {
			panic(fmt.Sprintf("computation: duplicate location name %q", name))
		}
		n.LocID[name] = Loc(i)
	}
	return n
}

// AddNode appends a named node.
func (n *Named) AddNode(name string, op Op) dag.Node {
	if _, dup := n.NodeID[name]; dup {
		panic(fmt.Sprintf("computation: duplicate node name %q", name))
	}
	u := n.Comp.AddNode(op)
	n.NodeName = append(n.NodeName, name)
	n.NodeID[name] = u
	return u
}

// AddEdge inserts an edge between named nodes.
func (n *Named) AddEdge(from, to string) error {
	u, ok := n.NodeID[from]
	if !ok {
		return fmt.Errorf("computation: unknown node %q", from)
	}
	v, ok := n.NodeID[to]
	if !ok {
		return fmt.Errorf("computation: unknown node %q", to)
	}
	return n.Comp.AddEdge(u, v)
}

// parseOp parses "N", "R(name)" or "W(name)" against the location table.
func (n *Named) parseOp(s string) (Op, error) {
	if s == "N" {
		return N, nil
	}
	if len(s) < 4 || s[len(s)-1] != ')' || s[1] != '(' {
		return Op{}, fmt.Errorf("computation: malformed op %q", s)
	}
	locName := s[2 : len(s)-1]
	l, ok := n.LocID[locName]
	if !ok {
		return Op{}, fmt.Errorf("computation: unknown location %q", locName)
	}
	switch s[0] {
	case 'R':
		return R(l), nil
	case 'W':
		return W(l), nil
	default:
		return Op{}, fmt.Errorf("computation: unknown op kind %q", s[0])
	}
}

// Parse reads the text format from r. Malformed input of any shape
// returns an error, never a panic: Parse is an input boundary (files,
// stdin, fuzzers), so the panicking constructors used by programmatic
// builders are guarded here — explicitly for the known cases, and by a
// recover fence for anything a hostile file finds that we didn't.
func Parse(r io.Reader) (named *Named, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			named, err = nil, fmt.Errorf("computation: invalid input: %v", rec)
		}
	}()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "locs":
			if named != nil {
				return nil, fmt.Errorf("line %d: duplicate locs directive", lineNo)
			}
			seen := make(map[string]bool, len(fields)-1)
			for _, name := range fields[1:] {
				if seen[name] {
					return nil, fmt.Errorf("line %d: duplicate location name %q", lineNo, name)
				}
				seen[name] = true
			}
			named = NewNamed(fields[1:]...)
		case "node":
			if named == nil {
				named = NewNamed()
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want `node NAME OP`", lineNo)
			}
			if _, dup := named.NodeID[fields[1]]; dup {
				return nil, fmt.Errorf("line %d: duplicate node %q", lineNo, fields[1])
			}
			op, err := named.parseOp(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			named.AddNode(fields[1], op)
		case "edge":
			if named == nil || len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want `edge FROM TO`", lineNo)
			}
			if err := named.AddEdge(fields[1], fields[2]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if named == nil {
		named = NewNamed()
	}
	if err := named.Comp.Validate(); err != nil {
		return nil, err
	}
	return named, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Named, error) {
	return Parse(strings.NewReader(s))
}

// Format writes the computation in the text format accepted by Parse.
func (n *Named) Format(w io.Writer) error {
	if len(n.LocName) > 0 {
		if _, err := fmt.Fprintf(w, "locs %s\n", strings.Join(n.LocName, " ")); err != nil {
			return err
		}
	}
	for u, name := range n.NodeName {
		op := n.Comp.Op(dag.Node(u))
		var opStr string
		if op.Kind == Noop {
			opStr = "N"
		} else {
			opStr = fmt.Sprintf("%s(%s)", op.Kind, n.LocName[op.Loc])
		}
		if _, err := fmt.Fprintf(w, "node %s %s\n", name, opStr); err != nil {
			return err
		}
	}
	edges := n.Comp.Dag().Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "edge %s %s\n", n.NodeName[e[0]], n.NodeName[e[1]]); err != nil {
			return err
		}
	}
	return nil
}

// FormatString renders the computation via Format.
func (n *Named) FormatString() string {
	var b strings.Builder
	if err := n.Format(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

package computation

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseComputation drives the text-format parser with arbitrary
// input. Parse is an input boundary, so the contract is: any byte
// sequence either parses into a computation that validates, or returns
// an error — never a panic. Parsed computations must survive a
// format/re-parse roundtrip.
func FuzzParseComputation(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ccm"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("locs x\nnode A W(x)\nnode B R(x)\nedge A B\n")
	f.Add("locs x x\n")               // duplicate location (historical crasher)
	f.Add("node A W(x)\n")            // op before any locs
	f.Add("edge A B\n")               // edge before nodes
	f.Add("locs x\nnode A R()\n")     // malformed op
	f.Add("# comment\n\nlocs x\n")    // blanks and comments
	f.Add("locs x\nnode A N\nnode A N\n") // duplicate node
	f.Fuzz(func(t *testing.T, input string) {
		named, err := ParseString(input)
		if err != nil {
			return
		}
		if verr := named.Comp.Validate(); verr != nil {
			t.Fatalf("parsed computation fails validation: %v", verr)
		}
		out := named.FormatString()
		again, rerr := ParseString(out)
		if rerr != nil {
			t.Fatalf("roundtrip re-parse failed: %v\nformatted:\n%s", rerr, out)
		}
		if again.Comp.NumNodes() != named.Comp.NumNodes() {
			t.Fatalf("roundtrip changed node count: %d -> %d", named.Comp.NumNodes(), again.Comp.NumNodes())
		}
		if again.Comp.NumLocs() != named.Comp.NumLocs() {
			t.Fatalf("roundtrip changed location count: %d -> %d", named.Comp.NumLocs(), again.Comp.NumLocs())
		}
		if len(again.Comp.Dag().Edges()) != len(named.Comp.Dag().Edges()) {
			t.Fatalf("roundtrip changed edge count")
		}
	})
}

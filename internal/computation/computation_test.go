package computation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// diamondWRRW builds the diamond computation 0:W(0) -> {1:R(0), 2:R(0)} -> 3:W(0).
func diamondWRRW() *Computation {
	c := New(1)
	a := c.AddNode(W(0))
	b := c.AddNode(R(0))
	d := c.AddNode(R(0))
	e := c.AddNode(W(0))
	c.MustAddEdge(a, b)
	c.MustAddEdge(a, d)
	c.MustAddEdge(b, e)
	c.MustAddEdge(d, e)
	return c
}

func TestOpConstructorsAndString(t *testing.T) {
	if N.String() != "N" || R(2).String() != "R(2)" || W(0).String() != "W(0)" {
		t.Fatalf("op strings: %s %s %s", N, R(2), W(0))
	}
	if !W(1).IsWriteTo(1) || W(1).IsWriteTo(0) || W(1).IsReadOf(1) {
		t.Fatal("IsWriteTo wrong")
	}
	if !R(1).IsReadOf(1) || R(1).Touches(0) || !R(1).Touches(1) {
		t.Fatal("IsReadOf/Touches wrong")
	}
	if N.Touches(0) {
		t.Fatal("noop touches a location")
	}
}

func TestAllOps(t *testing.T) {
	ops := AllOps(2)
	want := []Op{N, R(0), W(0), R(1), W(1)}
	if len(ops) != len(want) {
		t.Fatalf("AllOps(2) = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("AllOps(2) = %v, want %v", ops, want)
		}
	}
	if len(AllOps(0)) != 1 {
		t.Fatal("AllOps(0) should be just {N}")
	}
}

func TestEmptyComputation(t *testing.T) {
	c := New(3)
	if !c.Empty() || c.NumNodes() != 0 || c.NumLocs() != 3 {
		t.Fatal("empty computation wrong")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeEdgeOp(t *testing.T) {
	c := diamondWRRW()
	if c.NumNodes() != 4 {
		t.Fatalf("nodes = %d", c.NumNodes())
	}
	if c.Op(0) != W(0) || c.Op(1) != R(0) || c.Op(3) != W(0) {
		t.Fatal("ops wrong")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeLocationRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).AddNode(W(1))
}

func TestNoopLocNormalized(t *testing.T) {
	c := New(2)
	u := c.AddNode(Op{Kind: Noop, Loc: 7}) // out-of-range loc on a noop is fine
	if c.Op(u).Loc != 0 {
		t.Fatalf("noop loc = %d, want 0", c.Op(u).Loc)
	}
}

func TestFromValidation(t *testing.T) {
	g := dag.Chain(2)
	if _, err := From(g, []Op{W(0)}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := From(dag.Chain(2), []Op{W(0), R(5)}, 1); err == nil {
		t.Fatal("out-of-range location accepted")
	}
	cyc := dag.New(2)
	cyc.MustAddEdge(0, 1)
	cyc.MustAddEdge(1, 0)
	if _, err := From(cyc, []Op{N, N}, 1); err == nil {
		t.Fatal("cyclic dag accepted")
	}
	if _, err := From(dag.Chain(2), []Op{W(0), R(0)}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestClosureCacheInvalidation(t *testing.T) {
	c := New(1)
	a := c.AddNode(W(0))
	b := c.AddNode(R(0))
	cl := c.Closure()
	if cl.Precedes(a, b) {
		t.Fatal("no edge yet")
	}
	c.MustAddEdge(a, b)
	if !c.Closure().Precedes(a, b) {
		t.Fatal("closure cache not invalidated by AddEdge")
	}
	u := c.AddNode(N)
	if c.Closure().NumNodes() != 3 {
		t.Fatal("closure cache not invalidated by AddNode")
	}
	_ = u
}

func TestCloneEqualIndependent(t *testing.T) {
	c := diamondWRRW()
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d.AddNode(N)
	if c.Equal(d) || c.NumNodes() != 4 {
		t.Fatal("clone shares state")
	}
	e := diamondWRRW()
	e.ops[1] = W(0)
	if c.Equal(e) {
		t.Fatal("different labels compare equal")
	}
}

func TestWritersReaders(t *testing.T) {
	c := diamondWRRW()
	ws := c.Writers(0)
	if len(ws) != 2 || ws[0] != 0 || ws[1] != 3 {
		t.Fatalf("Writers = %v", ws)
	}
	rs := c.Readers(0)
	if len(rs) != 2 || rs[0] != 1 || rs[1] != 2 {
		t.Fatalf("Readers = %v", rs)
	}
}

func TestPrefix(t *testing.T) {
	c := diamondWRRW()
	set := bitset.New(4)
	set.Add(0)
	set.Add(1)
	p, m := c.Prefix(set)
	if p.NumNodes() != 2 || p.Op(0) != W(0) || p.Op(1) != R(0) {
		t.Fatalf("prefix = %v", p)
	}
	if !p.Dag().HasEdge(0, 1) {
		t.Fatal("prefix lost internal edge")
	}
	if m[0] != 0 || m[1] != 1 {
		t.Fatalf("mapping = %v", m)
	}
}

func TestPrefixNonClosedPanics(t *testing.T) {
	c := diamondWRRW()
	set := bitset.New(4)
	set.Add(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Prefix(set)
}

func TestExtend(t *testing.T) {
	c := diamondWRRW()
	ext, u := c.Extend(R(0), []dag.Node{1, 2})
	if c.NumNodes() != 4 {
		t.Fatal("Extend mutated receiver")
	}
	if ext.NumNodes() != 5 || u != 4 || ext.Op(u) != R(0) {
		t.Fatalf("extension wrong: %v", ext)
	}
	if !ext.Dag().HasEdge(1, 4) || !ext.Dag().HasEdge(2, 4) || ext.Dag().HasEdge(0, 4) {
		t.Fatal("extension edges wrong")
	}
	if !c.IsPrefixOfExtension(ext) {
		t.Fatal("receiver must be a prefix of its extension")
	}
}

func TestAugment(t *testing.T) {
	c := diamondWRRW()
	aug, f := c.Augment(N)
	if aug.NumNodes() != 5 || f != 4 {
		t.Fatalf("augmented = %v", aug)
	}
	for u := dag.Node(0); u < 4; u++ {
		if !aug.Dag().HasEdge(u, f) {
			t.Fatalf("missing edge %d->final", u)
		}
	}
	if !c.IsPrefixOfExtension(aug) {
		t.Fatal("C must be a prefix of aug_o(C)")
	}
	// Every extension of C by o is a relaxation of aug_o(C) (used in
	// the proof of Theorem 12).
	ext, _ := c.Extend(N, []dag.Node{3})
	if !ext.IsRelaxationOf(aug) {
		t.Fatal("extension must relax the augmentation")
	}
}

func TestIsPrefixOfExtensionRejects(t *testing.T) {
	c := diamondWRRW()
	// Different op in shared range.
	bad := c.Clone()
	bad.ops[2] = W(0)
	ext, _ := bad.Extend(N, nil)
	if c.IsPrefixOfExtension(ext) {
		t.Fatal("label mismatch accepted")
	}
	// Extension with a missing internal edge is not an extension of c.
	d := New(1)
	d.AddNode(W(0))
	d.AddNode(R(0))
	e := New(1)
	e.AddNode(W(0))
	e.AddNode(R(0))
	e.MustAddEdge(0, 1)
	if e.IsPrefixOfExtension(d) {
		t.Fatal("missing edge accepted")
	}
	// Extra internal edge in the extension breaks prefix-ness too.
	if d.IsPrefixOfExtension(e) {
		t.Fatal("extra edge within shared range accepted")
	}
}

func TestIsRelaxationOf(t *testing.T) {
	c := diamondWRRW()
	r := c.Clone()
	// Remove an edge by rebuilding.
	r2 := New(1)
	for u := 0; u < 4; u++ {
		r2.AddNode(c.Op(dag.Node(u)))
	}
	r2.MustAddEdge(0, 1)
	if !r2.IsRelaxationOf(c) {
		t.Fatal("edge subset rejected")
	}
	if !c.IsRelaxationOf(c) {
		t.Fatal("self relaxation rejected")
	}
	_ = r
	r2.ops[0] = R(0)
	if r2.IsRelaxationOf(c) {
		t.Fatal("label change accepted as relaxation")
	}
}

func TestEachRelaxationAndPrefix(t *testing.T) {
	c := diamondWRRW()
	nRelax := c.EachRelaxation(func(r *Computation) bool {
		if !r.IsRelaxationOf(c) {
			t.Fatalf("bad relaxation %v", r)
		}
		return true
	})
	if nRelax != 16 {
		t.Fatalf("relaxations = %d, want 16", nRelax)
	}
	nPrefix := c.EachPrefix(func(p *Computation, m []dag.Node) bool {
		if len(m) != p.NumNodes() {
			t.Fatal("mapping length mismatch")
		}
		return true
	})
	if nPrefix != 6 {
		t.Fatalf("prefixes = %d, want 6", nPrefix)
	}
}

func TestAddLoc(t *testing.T) {
	c := New(1)
	l := c.AddLoc()
	if l != 1 || c.NumLocs() != 2 {
		t.Fatalf("AddLoc = %d, NumLocs = %d", l, c.NumLocs())
	}
	// The new location is usable immediately.
	c.AddNode(W(l))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	c := New(1)
	a := c.AddNode(W(0))
	b := c.AddNode(R(0))
	c.MustAddEdge(a, b)
	want := "comp(locs=1; 0:W(0) 1:R(0); 0->1)"
	if got := c.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: Extend preserves prefix-ness and Augment dominates every
// same-op extension as a relaxation, for random computations.
func TestQuickExtendAugment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7)
		locs := 1 + rng.Intn(2)
		g := dag.Random(rng, n, 0.3)
		ops := make([]Op, n)
		all := AllOps(locs)
		for i := range ops {
			ops[i] = all[rng.Intn(len(all))]
		}
		c := MustFrom(g, ops, locs)
		op := all[rng.Intn(len(all))]

		var preds []dag.Node
		for u := 0; u < n; u++ {
			if rng.Intn(2) == 0 {
				preds = append(preds, dag.Node(u))
			}
		}
		ext, _ := c.Extend(op, preds)
		aug, _ := c.Augment(op)
		return c.IsPrefixOfExtension(ext) &&
			c.IsPrefixOfExtension(aug) &&
			ext.IsRelaxationOf(aug) &&
			ext.Validate() == nil && aug.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package computation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const fig2Text = `# Figure 2-like computation
locs x
node A W(x)
node B W(x)
node C R(x)
node D R(x)
edge A B
edge B C
edge C D
`

func TestParseBasic(t *testing.T) {
	n, err := ParseString(fig2Text)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Comp
	if c.NumNodes() != 4 || c.NumLocs() != 1 {
		t.Fatalf("parsed %d nodes %d locs", c.NumNodes(), c.NumLocs())
	}
	if c.Op(0) != W(0) || c.Op(2) != R(0) {
		t.Fatal("ops wrong")
	}
	if !c.Dag().HasEdge(0, 1) || !c.Dag().HasEdge(1, 2) || !c.Dag().HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
	if n.NodeName[0] != "A" || n.LocName[0] != "x" {
		t.Fatal("names wrong")
	}
}

func TestParseNoop(t *testing.T) {
	n, err := ParseString("node A N\nnode B N\nedge A B\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Comp.NumLocs() != 0 || n.Comp.Op(0) != N {
		t.Fatal("noop-only computation wrong")
	}
}

func TestParseMultiLoc(t *testing.T) {
	n, err := ParseString("locs x y\nnode A W(y)\nnode B R(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Comp.Op(0) != W(1) || n.Comp.Op(1) != R(0) {
		t.Fatal("multi-location ops wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node A X(x)",                            // unknown op kind, unknown loc
		"locs x\nnode A W(y)",                    // unknown location
		"locs x\nnode A W(x)\nnode A N",          // duplicate node
		"locs x\nedge A B",                       // unknown nodes
		"bogus directive",                        // unknown directive
		"locs x\nlocs y",                         // duplicate locs
		"locs x\nnode A",                         // malformed node
		"locs x\nnode A W(x)\nedge A",            // malformed edge
		"locs x\nnode A R(",                      // malformed op
		"locs x\nnode A W(x)\nedge A A",          // self loop
		"node A N\nnode B N\nedge A B\nedge B A", // cycle
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	n, err := ParseString("# just a comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Comp.Empty() {
		t.Fatal("expected empty computation")
	}
}

func TestRoundTrip(t *testing.T) {
	n, err := ParseString(fig2Text)
	if err != nil {
		t.Fatal(err)
	}
	out := n.FormatString()
	n2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if !n.Comp.Equal(n2.Comp) {
		t.Fatalf("round trip changed computation:\n%s\nvs\n%s", n.Comp, n2.Comp)
	}
	if strings.Join(n.NodeName, ",") != strings.Join(n2.NodeName, ",") {
		t.Fatal("round trip changed node names")
	}
}

// Property: random computations survive a Format/Parse round trip
// bit-for-bit (structure, labels, edges).
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locs := 1 + rng.Intn(3)
		locNames := make([]string, locs)
		for i := range locNames {
			locNames[i] = fmt.Sprintf("loc%d", i)
		}
		n := NewNamed(locNames...)
		count := rng.Intn(8)
		all := AllOps(locs)
		for i := 0; i < count; i++ {
			n.AddNode(fmt.Sprintf("n%d", i), all[rng.Intn(len(all))])
		}
		for i := 0; i < count; i++ {
			for j := i + 1; j < count; j++ {
				if rng.Intn(3) == 0 {
					if err := n.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j)); err != nil {
						return false
					}
				}
			}
		}
		out := n.FormatString()
		n2, err := ParseString(out)
		if err != nil {
			return false
		}
		return n.Comp.Equal(n2.Comp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNamedBuilders(t *testing.T) {
	n := NewNamed("x", "y")
	n.AddNode("a", W(0))
	n.AddNode("b", R(1))
	if err := n.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge("a", "zzz"); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := n.AddEdge("zzz", "b"); err == nil {
		t.Fatal("unknown source accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate node name must panic")
			}
		}()
		n.AddNode("a", N)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate loc name must panic")
			}
		}()
		NewNamed("x", "x")
	}()
}

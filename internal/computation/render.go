package computation

import (
	"fmt"
	"strings"

	"repro/internal/dag"
)

// Rendering helpers shared by the cmd tools and the serving layer, so
// witnesses and counterexamples print byte-identically everywhere a
// decision is reported.

// RenderNode returns the display form of u: its name when the symbol
// table covers it, "⊥" for dag.None (the paper's bottom / "no write
// observed"), and the numeric id otherwise. A nil receiver renders
// anonymous computations.
func (n *Named) RenderNode(u dag.Node) string {
	if u == dag.None {
		return "⊥"
	}
	if n != nil && int(u) >= 0 && int(u) < len(n.NodeName) {
		return n.NodeName[u]
	}
	return fmt.Sprintf("%d", u)
}

// RenderOrder renders a topological sort as space-separated node names.
func (n *Named) RenderOrder(order []dag.Node) string {
	var b strings.Builder
	for i, u := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n.RenderNode(u))
	}
	return b.String()
}

// Package computation implements Definition 1 of Frigo & Luchangco
// (SPAA 1998): a computation is a finite dag together with a function
// labelling each node with an abstract memory instruction.
//
// The instruction set is the read-write set of Section 2:
//
//	O = { R(l), W(l) : l ∈ L } ∪ { N }
//
// where N is a no-op (a node that does not access memory but may still
// carry memory semantics through the observer function).
//
// Locations are dense indices 0..NumLocs-1, optionally named. Node
// identity is positional: prefixes, extensions and augmentations all
// share node ids with the parent computation, which is what lets an
// observer function on a prefix be compared with its restriction
// (Section 2, "restriction of op to C′").
package computation

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// Loc identifies a memory location (an element of the set L).
type Loc int32

// OpKind distinguishes the three instruction shapes of the paper.
type OpKind uint8

const (
	// Noop is the paper's N: an instruction that does not access memory.
	Noop OpKind = iota
	// Read is R(l).
	Read
	// Write is W(l).
	Write
)

func (k OpKind) String() string {
	switch k {
	case Noop:
		return "N"
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one abstract instruction: a kind and, for reads and writes, a
// location. The location of a Noop is ignored and normalized to zero.
type Op struct {
	Kind OpKind
	Loc  Loc
}

// N is the no-op instruction.
var N = Op{Kind: Noop}

// R returns the instruction R(l).
func R(l Loc) Op { return Op{Kind: Read, Loc: l} }

// W returns the instruction W(l).
func W(l Loc) Op { return Op{Kind: Write, Loc: l} }

// IsWriteTo reports whether the instruction is W(l).
func (o Op) IsWriteTo(l Loc) bool { return o.Kind == Write && o.Loc == l }

// IsReadOf reports whether the instruction is R(l).
func (o Op) IsReadOf(l Loc) bool { return o.Kind == Read && o.Loc == l }

// Touches reports whether the instruction accesses location l.
func (o Op) Touches(l Loc) bool {
	return o.Kind != Noop && o.Loc == l
}

func (o Op) String() string {
	if o.Kind == Noop {
		return "N"
	}
	return fmt.Sprintf("%s(%d)", o.Kind, o.Loc)
}

// AllOps returns the full instruction set O for a memory with numLocs
// locations: the no-op followed by R(l), W(l) for each location.
// Constructibility quantifies over exactly this set (Theorems 10, 12).
func AllOps(numLocs int) []Op {
	ops := make([]Op, 0, 1+2*numLocs)
	ops = append(ops, N)
	for l := Loc(0); int(l) < numLocs; l++ {
		ops = append(ops, R(l), W(l))
	}
	return ops
}

// Computation is Definition 1: a pair (G, op) of a finite dag and a
// labelling of its nodes with instructions, over a memory with a fixed
// set of locations.
type Computation struct {
	g       *dag.Dag
	ops     []Op
	numLocs int

	closure *dag.Closure // lazily computed; invalidated by mutation
}

// New returns an empty computation over numLocs locations.
func New(numLocs int) *Computation {
	if numLocs < 0 {
		panic(fmt.Sprintf("computation: negative location count %d", numLocs))
	}
	return &Computation{g: dag.New(0), numLocs: numLocs}
}

// From wraps an existing dag and labelling. The ops slice is not copied.
func From(g *dag.Dag, ops []Op, numLocs int) (*Computation, error) {
	if len(ops) != g.NumNodes() {
		return nil, fmt.Errorf("computation: %d ops for %d nodes", len(ops), g.NumNodes())
	}
	c := &Computation{g: g, ops: ops, numLocs: numLocs}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustFrom is From but panics on error.
func MustFrom(g *dag.Dag, ops []Op, numLocs int) *Computation {
	c, err := From(g, ops, numLocs)
	if err != nil {
		panic(err)
	}
	return c
}

// Empty reports whether this is the empty computation ε.
func (c *Computation) Empty() bool { return c.g.NumNodes() == 0 }

// NumNodes returns |V_C|.
func (c *Computation) NumNodes() int { return c.g.NumNodes() }

// NumLocs returns |L|.
func (c *Computation) NumLocs() int { return c.numLocs }

// AddLoc extends the location set by one fresh location and returns
// it. Useful for front-ends that allocate locations as the computation
// unfolds (e.g. one result cell per spawned task).
func (c *Computation) AddLoc() Loc {
	c.numLocs++
	return Loc(c.numLocs - 1)
}

// Dag returns the underlying dag G_C. Callers must not mutate it
// directly; use the Computation's mutators so caches stay coherent.
func (c *Computation) Dag() *dag.Dag { return c.g }

// Op returns op_C(u).
func (c *Computation) Op(u dag.Node) Op { return c.ops[u] }

// Ops returns the label slice, shared with the computation.
func (c *Computation) Ops() []Op { return c.ops }

// AddNode appends a node labelled with op and returns its id.
func (c *Computation) AddNode(op Op) dag.Node {
	c.checkOp(op)
	c.closure = nil
	u := c.g.AddNode()
	c.ops = append(c.ops, normalize(op))
	return u
}

// AddEdge inserts the dependency (u, v).
func (c *Computation) AddEdge(u, v dag.Node) error {
	c.closure = nil
	return c.g.AddEdge(u, v)
}

// MustAddEdge is AddEdge but panics on error.
func (c *Computation) MustAddEdge(u, v dag.Node) {
	if err := c.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func normalize(op Op) Op {
	if op.Kind == Noop {
		op.Loc = 0
	}
	return op
}

func (c *Computation) checkOp(op Op) {
	if op.Kind != Noop && (op.Loc < 0 || int(op.Loc) >= c.numLocs) {
		panic(fmt.Sprintf("computation: location %d out of range [0,%d)", op.Loc, c.numLocs))
	}
}

// Validate checks that the dag is acyclic and every label is in O.
func (c *Computation) Validate() error {
	for u, op := range c.ops {
		if op.Kind != Noop && (op.Loc < 0 || int(op.Loc) >= c.numLocs) {
			return fmt.Errorf("computation: node %d has location %d out of range [0,%d)", u, op.Loc, c.numLocs)
		}
		if op.Kind > Write {
			return fmt.Errorf("computation: node %d has unknown op kind %d", u, op.Kind)
		}
	}
	return c.g.Validate()
}

// Closure returns the precedence relation of the computation, computed
// once and cached until the next mutation. Panics on cyclic graphs.
func (c *Computation) Closure() *dag.Closure {
	if c.closure == nil {
		c.closure = dag.MustClosure(c.g)
	}
	return c.closure
}

// Clone returns a deep copy.
func (c *Computation) Clone() *Computation {
	return &Computation{
		g:       c.g.Clone(),
		ops:     append([]Op(nil), c.ops...),
		numLocs: c.numLocs,
	}
}

// Equal reports structural equality: same location count, same dag, and
// same labelling.
func (c *Computation) Equal(o *Computation) bool {
	if c.numLocs != o.numLocs || len(c.ops) != len(o.ops) {
		return false
	}
	for u := range c.ops {
		if c.ops[u] != o.ops[u] {
			return false
		}
	}
	return c.g.Equal(o.g)
}

// Writers returns the nodes labelled W(l), in increasing order.
func (c *Computation) Writers(l Loc) []dag.Node {
	var out []dag.Node
	for u, op := range c.ops {
		if op.IsWriteTo(l) {
			out = append(out, dag.Node(u))
		}
	}
	return out
}

// Readers returns the nodes labelled R(l), in increasing order.
func (c *Computation) Readers(l Loc) []dag.Node {
	var out []dag.Node
	for u, op := range c.ops {
		if op.IsReadOf(l) {
			out = append(out, dag.Node(u))
		}
	}
	return out
}

// Prefix returns the subcomputation induced by the downward-closed node
// set, together with the map from new ids to original ids. It panics if
// set is not downward closed (a prefix in the paper's sense keeps all
// edges into retained nodes, which forces downward closure).
func (c *Computation) Prefix(set *bitset.Set) (*Computation, []dag.Node) {
	if !c.g.IsDownwardClosed(set) {
		panic("computation: Prefix on a non-downward-closed node set")
	}
	sub, newToOld := c.g.InducedSubgraph(set)
	ops := make([]Op, len(newToOld))
	for nu, ou := range newToOld {
		ops[nu] = c.ops[ou]
	}
	return &Computation{g: sub, ops: ops, numLocs: c.numLocs}, newToOld
}

// Extend returns a new computation that extends c by one node labelled
// op, with edges from each node of preds to the new node. The receiver
// is unchanged; node ids of c are preserved, so c is a prefix of the
// result (Section 2, "extension of C′ by o").
func (c *Computation) Extend(op Op, preds []dag.Node) (*Computation, dag.Node) {
	out := c.Clone()
	u := out.AddNode(op)
	for _, p := range preds {
		out.MustAddEdge(p, u)
	}
	return out, u
}

// Augment returns aug_o(C) of Definition 11: c extended by one final
// node labelled op that succeeds every existing node. The new node's id
// is returned alongside.
func (c *Computation) Augment(op Op) (*Computation, dag.Node) {
	out := c.Clone()
	out.checkOp(op)
	out.closure = nil
	f := out.g.AddFinalNode()
	out.ops = append(out.ops, normalize(op))
	return out, f
}

// IsPrefixOfExtension reports whether c equals the restriction of o to
// the first c.NumNodes() node ids and o has no edge from a node ≥
// c.NumNodes() into the shared range. Under the package convention that
// extensions append nodes, this is exactly "c is a prefix of o".
func (c *Computation) IsPrefixOfExtension(o *Computation) bool {
	n := c.NumNodes()
	if o.NumNodes() < n || c.numLocs != o.numLocs {
		return false
	}
	for u := 0; u < n; u++ {
		if c.ops[u] != o.ops[u] {
			return false
		}
	}
	for _, e := range o.g.Edges() {
		u, v := e[0], e[1]
		if int(v) < n {
			// Edge into the shared range must exist in c, and its source
			// must be in range (guaranteed if it exists in c).
			if int(u) >= n || !c.g.HasEdge(u, v) {
				return false
			}
		}
	}
	for _, e := range c.g.Edges() {
		if !o.g.HasEdge(e[0], e[1]) {
			return false
		}
	}
	return true
}

// IsRelaxationOf reports whether c is a relaxation of o: identical
// nodes and labels, and c's edges a subset of o's (Definition 5 domain).
func (c *Computation) IsRelaxationOf(o *Computation) bool {
	if c.numLocs != o.numLocs || len(c.ops) != len(o.ops) {
		return false
	}
	for u := range c.ops {
		if c.ops[u] != o.ops[u] {
			return false
		}
	}
	return c.g.IsRelaxationOf(o.g)
}

// EachRelaxation enumerates every relaxation of c (2^|E| of them),
// passing each to fn as a fresh computation. Stops early if fn returns
// false; returns the count visited.
func (c *Computation) EachRelaxation(fn func(r *Computation) bool) int {
	return c.g.EachRelaxation(func(rg *dag.Dag) bool {
		r := &Computation{g: rg, ops: c.ops, numLocs: c.numLocs}
		return fn(r)
	})
}

// EachPrefix enumerates every prefix of c, passing the prefix and its
// new-to-old node map to fn. Stops early if fn returns false; returns
// the count visited.
func (c *Computation) EachPrefix(fn func(p *Computation, newToOld []dag.Node) bool) int {
	return c.g.EachPrefixSet(func(set *bitset.Set) bool {
		p, m := c.Prefix(set)
		return fn(p, m)
	})
}

// String renders the computation compactly, e.g.
// "comp(locs=1; 0:W(0) 1:R(0); 0->1)".
func (c *Computation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comp(locs=%d;", c.numLocs)
	for u, op := range c.ops {
		fmt.Fprintf(&b, " %d:%s", u, op)
	}
	b.WriteByte(';')
	for _, e := range c.g.Edges() {
		fmt.Fprintf(&b, " %d->%d", e[0], e[1])
	}
	b.WriteByte(')')
	return b.String()
}

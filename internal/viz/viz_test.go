package viz

import (
	"strings"
	"testing"

	"repro/internal/paperfig"
	"repro/internal/sched"
)

func TestDOTBasic(t *testing.T) {
	fx := paperfig.Figure2()
	out := DOT(fx.Comp, Options{Title: "Figure 2"})
	for _, want := range []string{"digraph", "Figure 2", "W(0)", "R(0)", "1 -> 2", "2 -> 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestDOTObserverEdges(t *testing.T) {
	fx := paperfig.Figure2()
	out := DOT(fx.Comp, Options{Observer: fx.Obs})
	// C (node 2) observes A (node 0): a dashed edge 2 -> 0.
	if !strings.Contains(out, "2 -> 0 [style=dashed") {
		t.Fatalf("missing observer edge:\n%s", out)
	}
	// Self-observations of writes must not appear.
	if strings.Contains(out, "0 -> 0") {
		t.Fatal("self-observation rendered")
	}
}

func TestDOTScheduleColors(t *testing.T) {
	fx := paperfig.Dekker()
	s, err := sched.ListSchedule(fx.Comp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := DOT(fx.Comp, Options{Schedule: s})
	if !strings.Contains(out, "fillcolor") || !strings.Contains(out, "@") {
		t.Fatalf("schedule annotations missing:\n%s", out)
	}
}

func TestDOTNodeNames(t *testing.T) {
	fx := paperfig.Figure3()
	out := DOT(fx.Comp, Options{NodeNames: []string{"X", "A", "B", "C"}})
	if !strings.Contains(out, "X\\n") || !strings.Contains(out, "B\\n") {
		t.Fatalf("custom names missing:\n%s", out)
	}
}

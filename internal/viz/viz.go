// Package viz renders computations, observer functions and schedules
// as Graphviz DOT, for inspection of the paper's objects:
//
//	dot -Tsvg out.dot > out.svg
//
// Nodes are labelled with their instruction; observer values appear as
// dashed "observes" edges; schedules color nodes by processor.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/sched"
)

// Options controls rendering.
type Options struct {
	// Observer, when non-nil, adds dashed edges u -> Φ(l, u) labelled
	// with the location (self-observations and ⊥ omitted).
	Observer *observer.Observer
	// Schedule, when non-nil, colors nodes by processor and annotates
	// start times.
	Schedule *sched.Schedule
	// NodeNames overrides the default numeric labels.
	NodeNames []string
	// Title sets the graph label.
	Title string
}

// palette cycles through fill colors per processor.
var palette = []string{
	"#e8f0fe", "#fde8e8", "#e8fdf0", "#fdf6e8",
	"#f0e8fd", "#e8fdfd", "#fde8f6", "#f6fde8",
}

// WriteDOT renders the computation to w.
func WriteDOT(w io.Writer, c *computation.Computation, opts Options) error {
	var b strings.Builder
	b.WriteString("digraph computation {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", opts.Title)
	}
	name := func(u dag.Node) string {
		if opts.NodeNames != nil && int(u) < len(opts.NodeNames) {
			return opts.NodeNames[u]
		}
		return fmt.Sprintf("n%d", u)
	}
	for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
		label := name(u) + `\n` + c.Op(u).String()
		extra := ""
		if opts.Schedule != nil {
			p := opts.Schedule.Proc[u]
			label += fmt.Sprintf(`\np%d @%d`, p, opts.Schedule.Start[u])
			extra = fmt.Sprintf(", style=filled, fillcolor=%q", palette[p%len(palette)])
		}
		fmt.Fprintf(&b, "  %d [label=\"%s\"%s];\n", u, label, extra)
	}
	for _, e := range c.Dag().Edges() {
		fmt.Fprintf(&b, "  %d -> %d;\n", e[0], e[1])
	}
	if opts.Observer != nil {
		for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
			for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
				v := opts.Observer.Get(l, u)
				if v == observer.Bottom || v == u {
					continue
				}
				fmt.Fprintf(&b, "  %d -> %d [style=dashed, color=gray40, label=\"Φ(%d)\", fontsize=9];\n", u, v, l)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DOT renders to a string.
func DOT(c *computation.Computation, opts Options) string {
	var b strings.Builder
	if err := WriteDOT(&b, c, opts); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// SC is sequential consistency (Definition 17): (C, Φ) ∈ SC iff there
// is a single topological sort T ∈ TS(C) whose last-writer function
// agrees with Φ at every location:
//
//	SC = { (C, Φ) : ∃T ∈ TS(C) ∀l ∀u  Φ(l, u) = W_T(l, u) }
//
// Because the definition quantifies over topological sorts of the
// computation rather than interleavings of per-processor instruction
// streams, it generalizes Lamport's processor-centric definition
// (Section 4 of the paper).
var SC Model = scModel{}

type scModel struct{ opts SearchOptions }

func (scModel) Name() string { return "SC" }

func (m scModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	_, ok, _ := SCWitnessOpts(c, o, m.opts)
	return ok
}

// SCOpts returns the SC decider with explicit engine options (worker
// count for parallel root splitting, search-state budget). With a
// budget set, Contains can report false on exhaustion without the
// instance being decided; use SCWitnessOpts to distinguish.
func SCOpts(opts SearchOptions) Model { return scModel{opts: opts} }

// SCWitness returns a topological sort T with Φ = W_T, if one exists.
func SCWitness(c *computation.Computation, o *observer.Observer) ([]dag.Node, bool) {
	order, ok, _ := SCWitnessOpts(c, o, SearchOptions{})
	return order, ok
}

// SCWitnessOpts is SCWitness with engine options, also reporting
// search statistics (state counts, memo hits, prunes).
func SCWitnessOpts(c *computation.Computation, o *observer.Observer, opts SearchOptions) ([]dag.Node, bool, SearchStats) {
	if o.Validate(c) != nil {
		return nil, false, SearchStats{}
	}
	res := searchLastWriterOpts(c, o, allLocs(c), opts)
	return res.Order, res.Found, res.Stats
}

func allLocs(c *computation.Computation) []computation.Loc {
	locs := make([]computation.Loc, c.NumLocs())
	for l := range locs {
		locs[l] = computation.Loc(l)
	}
	return locs
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// SC is sequential consistency (Definition 17): (C, Φ) ∈ SC iff there
// is a single topological sort T ∈ TS(C) whose last-writer function
// agrees with Φ at every location:
//
//	SC = { (C, Φ) : ∃T ∈ TS(C) ∀l ∀u  Φ(l, u) = W_T(l, u) }
//
// Because the definition quantifies over topological sorts of the
// computation rather than interleavings of per-processor instruction
// streams, it generalizes Lamport's processor-centric definition
// (Section 4 of the paper).
var SC Model = scModel{}

type scModel struct{}

func (scModel) Name() string { return "SC" }

func (scModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	_, ok := SCWitness(c, o)
	return ok
}

// SCWitness returns a topological sort T with Φ = W_T, if one exists.
func SCWitness(c *computation.Computation, o *observer.Observer) ([]dag.Node, bool) {
	if o.Validate(c) != nil {
		return nil, false
	}
	return searchLastWriter(c, o, allLocs(c))
}

func allLocs(c *computation.Computation) []computation.Loc {
	locs := make([]computation.Loc, c.NumLocs())
	for l := range locs {
		locs[l] = computation.Loc(l)
	}
	return locs
}

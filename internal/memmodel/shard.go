package memmodel

import (
	"context"

	"repro/internal/computation"
	"repro/internal/observer"
	"repro/internal/search"
)

// Fleet sharding front door: the SC decision is the only NP-hard
// question in the model lattice, so it is the only one worth splitting
// across machines. The shard coordinate is the admissible root
// frontier of the compiled last-writer search — the same split the
// in-process parallel engine fans workers over — and the merge rule
// (lowest witness root wins) is the same rule that makes Workers > 1
// deterministic, so a fleet of shard runs reproduces the single-box
// verdict and witness byte for byte.

// SCShardPlan sizes the shard coordinate space for the SC membership
// question (c, o): the number of admissible roots a coordinator may
// partition into [lo, hi) ranges for SCDecideShard. When the question
// resolves statically without any search (an invalid observer, static
// infeasibility, the empty computation), it returns 0 and the finished
// engine result so planners can short-circuit instead of dispatching
// shards of nothing.
func SCShardPlan(c *computation.Computation, o *observer.Observer) (int, *search.Result) {
	if o.Validate(c) != nil {
		return 0, &search.Result{Exhausted: true, WitnessRoot: -1}
	}
	return search.Frontier(lastWriterSpec(c, o, allLocs(c)))
}

// SCDecideShard is SCDecide restricted to the frontier shard [lo, hi)
// (hi == 0 means "through the end"; 0,0 is the full, unsharded run).
// It returns the raw engine result rather than a folded Decision
// because the fleet merge needs the pieces a Decision drops: fold with
// Result.Verdict() for the three-valued view, read WitnessRoot for the
// lowest-root merge, and Stats.Roots for the whole frontier size the
// shard was cut from.
func SCDecideShard(ctx context.Context, c *computation.Computation, o *observer.Observer, lo, hi int, opts SearchOptions) search.Result {
	if o.Validate(c) != nil {
		return search.Result{Exhausted: true, WitnessRoot: -1}
	}
	opts.RootLo, opts.RootHi = lo, hi
	return searchLastWriterCtx(ctx, c, o, allLocs(c), opts)
}

package memmodel

import (
	"repro/internal/bitset"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// This file computes the happens-before relation the causal and
// release/acquire deciders share: the transitive closure of the
// computation's precedence edges together with the observation
// ("reads-from") edges Φ induces,
//
//	hb = ( E(C) ∪ { (Φ(l,u), u) : Φ(l,u) ∉ {⊥, u} } )⁺
//
// In the computation-centric setting every node carries a full view
// (Φ(l, u) is defined for every location, not just the ones u reads),
// so observation edges arise from every non-⊥, non-self entry of Φ:
// "u's view of l includes w" is causal knowledge of w exactly like a
// read of it. The relation may be cyclic — an observer can claim a
// view that feeds back into the past — and a cyclic hb is immediate
// non-membership for any hb-based model, so the builder reports it
// instead of panicking the way dag.Closure would.

// hbRel is the happens-before reachability relation: desc[u] is the
// set of nodes v ≠ u with u ≺_hb v.
type hbRel struct {
	n    int
	desc []*bitset.Set
}

// prec reports u ≺_hb v (strict).
func (h *hbRel) prec(u, v dag.Node) bool {
	return u != v && h.desc[u].Contains(int(v))
}

// ancestors collects the strict hb-ancestors of u.
func (h *hbRel) ancestors(u dag.Node) []dag.Node {
	var anc []dag.Node
	for x := 0; x < h.n; x++ {
		if dag.Node(x) != u && h.desc[x].Contains(int(u)) {
			anc = append(anc, dag.Node(x))
		}
	}
	return anc
}

// buildHB computes hb for (c, o). ok is false when the relation is
// cyclic (the pair is then outside every hb-based model). The observer
// must already be validated.
func buildHB(c *computation.Computation, o *observer.Observer) (*hbRel, bool) {
	n := c.NumNodes()
	// Adjacency: the dag's edges plus one edge per observation of a
	// foreign write. Dedup is unnecessary — DFS tolerates multi-edges.
	adj := make([][]dag.Node, n)
	for u := 0; u < n; u++ {
		adj[u] = append(adj[u], c.Dag().Succs(dag.Node(u))...)
	}
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		for u := 0; u < n; u++ {
			w := o.Get(l, dag.Node(u))
			if w != observer.Bottom && w != dag.Node(u) {
				adj[w] = append(adj[w], dag.Node(u))
			}
		}
	}
	h := &hbRel{n: n, desc: make([]*bitset.Set, n)}
	stack := make([]dag.Node, 0, n)
	for u := 0; u < n; u++ {
		seen := bitset.New(n)
		stack = stack[:0]
		stack = append(stack, adj[u]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen.Contains(int(v)) {
				continue
			}
			seen.Add(int(v))
			stack = append(stack, adj[v]...)
		}
		if seen.Contains(u) {
			return nil, false // u ≺_hb u: cyclic
		}
		h.desc[u] = seen
	}
	return h, true
}

package memmodel

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/observer"
)

// chainWR builds 0:W(0) -> 1:R(0).
func chainWR() (*computation.Computation, *observer.Observer) {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	o := observer.New(c)
	o.Set(0, b, a)
	return c, o
}

func TestTrivialAcceptsValidRejectsInvalid(t *testing.T) {
	c, o := chainWR()
	if !Trivial.Contains(c, o) {
		t.Fatal("Trivial must accept a valid pair")
	}
	bad := observer.New(c)
	bad.Set(0, 0, observer.Bottom) // write not observing itself
	if Trivial.Contains(c, bad) {
		t.Fatal("Trivial must reject an invalid observer")
	}
}

func TestIntersectionUnion(t *testing.T) {
	c, o := chainWR()
	never := Func("NEVER", func(*computation.Computation, *observer.Observer) bool { return false })

	inter := Intersection("X", Trivial, never)
	if inter.Contains(c, o) {
		t.Fatal("intersection with empty model must be empty")
	}
	if inter.Name() != "X" {
		t.Fatal("name lost")
	}
	if Intersection("E").Contains(c, o) {
		t.Fatal("empty intersection must reject (no operands)")
	}

	uni := Union("U", never, Trivial)
	if !uni.Contains(c, o) {
		t.Fatal("union with Trivial must accept valid pairs")
	}
	if Union("E").Contains(c, o) {
		t.Fatal("empty union must reject")
	}
}

func TestFuncWrapsValidity(t *testing.T) {
	c, _ := chainWR()
	always := Func("ALWAYS", func(*computation.Computation, *observer.Observer) bool { return true })
	bad := observer.New(c)
	bad.Set(0, 1, 1) // read observing itself: invalid
	if always.Contains(c, bad) {
		t.Fatal("Func must reject invalid observers before calling the predicate")
	}
}

func TestStronger(t *testing.T) {
	c, o := chainWR()
	universe := []Pair{{C: c, O: o}}
	never := Func("NEVER", func(*computation.Computation, *observer.Observer) bool { return false })
	if !Stronger(never, Trivial, universe) {
		t.Fatal("empty model is stronger than Trivial")
	}
	if !Stronger(SC, LC, universe) {
		t.Fatal("SC stronger than LC on this universe")
	}
	if Stronger(Trivial, never, universe) {
		t.Fatal("Trivial is not stronger than the empty model")
	}
}

package memmodel

import (
	"context"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Predicate is the parameter Q of Definition 20. Holds is evaluated on
// triples u ≺ v ≺ w; u may be observer.Bottom (the paper extends ⊥ ≺ x
// to every node x), while v and w are always real nodes.
type Predicate struct {
	Name  string
	Holds func(c *computation.Computation, l computation.Loc, u, v, w dag.Node) bool
}

// The four named predicates of Section 5. The first letter constrains
// u, the second constrains v; "W" requires a write to l, "N" means "do
// not care". Strengthening Q weakens the model, so NN (no conditions)
// gives the strongest dag-consistent model (Theorem 21) and WW (both
// writes) the weakest of the four.
var (
	// PredNN imposes no side conditions: NN(l, u, v, w) = true.
	PredNN = Predicate{
		Name: "NN",
		Holds: func(*computation.Computation, computation.Loc, dag.Node, dag.Node, dag.Node) bool {
			return true
		},
	}

	// PredNW requires the middle node to write: op(v) = W(l).
	PredNW = Predicate{
		Name: "NW",
		Holds: func(c *computation.Computation, l computation.Loc, _, v, _ dag.Node) bool {
			return c.Op(v).IsWriteTo(l)
		},
	}

	// PredWN requires the first node to write: op(u) = W(l). The ⊥ node
	// is not a write, so triples with u = ⊥ are exempt.
	PredWN = Predicate{
		Name: "WN",
		Holds: func(c *computation.Computation, l computation.Loc, u, _, _ dag.Node) bool {
			return u != observer.Bottom && c.Op(u).IsWriteTo(l)
		},
	}

	// PredWW requires both: WW = WN ∧ NW. This is the original dag
	// consistency of [BFJ+96b].
	PredWW = Predicate{
		Name: "WW",
		Holds: func(c *computation.Computation, l computation.Loc, u, v, _ dag.Node) bool {
			return u != observer.Bottom && c.Op(u).IsWriteTo(l) && c.Op(v).IsWriteTo(l)
		},
	}
)

// QDag returns the Q-dag consistency model of Definition 20 for the
// given predicate: the set of pairs (C, Φ) with Φ an observer function
// for C such that
//
//	∀l ∀u, v, w ∈ V ∪ {⊥}:  u ≺ v ≺ w ∧ Q(l, u, v, w) ∧
//	    Φ(l, u) = Φ(l, w)  ⇒  Φ(l, v) = Φ(l, u).
//
// Intuitively: a node sandwiched between two nodes that observe the
// same write (under the side condition Q) must observe that write too.
func QDag(p Predicate) Model { return qdagModel{pred: p} }

// The four models of Figure 1. NN is the strongest dag-consistent model
// and is not constructible (Figure 4); its constructible version is LC
// (Theorem 23). WN is the dag consistency of [BFJ+96a], WW that of
// [BFJ+96b].
var (
	NN = QDag(PredNN)
	NW = QDag(PredNW)
	WN = QDag(PredWN)
	WW = QDag(PredWW)
)

type qdagModel struct {
	pred Predicate
}

func (m qdagModel) Name() string { return m.pred.Name }

func (m qdagModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	return m.findViolation(c, o) == nil
}

// Violation records a failed instance of Condition 20.1, for error
// reporting in the cmd tools.
type Violation struct {
	Loc     computation.Loc
	U, V, W dag.Node // u ≺ v ≺ w, u may be Bottom
}

// ExplainQDag returns a witness triple violating Condition 20.1 for the
// given predicate, or nil if (c, o) is in the model. The observer must
// be valid for c.
func ExplainQDag(p Predicate, c *computation.Computation, o *observer.Observer) *Violation {
	return qdagModel{pred: p}.findViolation(c, o)
}

func (m qdagModel) findViolation(c *computation.Computation, o *observer.Observer) *Violation {
	v, _ := m.findViolationCtx(context.Background(), c, o)
	return v
}

// findViolationCtx is findViolation under a context, polled once per
// (location, node) outer iteration. A non-nil error means the scan was
// stopped before covering every triple.
func (m qdagModel) findViolationCtx(ctx context.Context, c *computation.Computation, o *observer.Observer) (*Violation, error) {
	cl := c.Closure()
	n := c.NumNodes()
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		for v := dag.Node(0); int(v) < n; v++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			phiV := o.Get(l, v)
			// Candidate u values: ⊥ and every strict ancestor of v.
			for _, u := range candidateUs(cl, v) {
				phiU := o.Get(l, u)
				if phiU == phiV {
					continue // condition cannot fail with Φ(l,v) = Φ(l,u)
				}
				// Any strict descendant w of v with Φ(l,w) = Φ(l,u) and
				// Q(l,u,v,w) is a violation.
				var bad *Violation
				cl.Descendants(v).ForEach(func(wi int) bool {
					w := dag.Node(wi)
					if o.Get(l, w) == phiU && m.pred.Holds(c, l, u, v, w) {
						bad = &Violation{Loc: l, U: u, V: v, W: w}
						return false
					}
					return true
				})
				if bad != nil {
					return bad, nil
				}
			}
		}
	}
	return nil, nil
}

func candidateUs(cl *dag.Closure, v dag.Node) []dag.Node {
	out := []dag.Node{observer.Bottom}
	cl.Ancestors(v).ForEach(func(ui int) bool {
		out = append(out, dag.Node(ui))
		return true
	})
	return out
}

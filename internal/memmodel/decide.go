package memmodel

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/search"
)

// This file is the governed front door to the deciders: every model
// membership question gets a context-aware variant returning a typed
// three-valued Verdict instead of a bare bool, so callers can tell "not
// in the model" apart from "the search was stopped by a deadline,
// budget, or cancellation before it could decide". The legacy
// bool-returning APIs remain and delegate with context.Background().

// Verdict is the three-valued decision outcome (In / Out /
// Inconclusive with a machine-readable StopReason).
type Verdict = search.Verdict

// StopReason says why a decision came back inconclusive.
type StopReason = search.StopReason

// SCDecide decides (c, o) ∈ SC under ctx: cancellation or deadline
// expiry stops the search promptly and yields an inconclusive verdict,
// as does exhausting opts.Budget. A definitive In verdict comes with a
// witnessing sort. An observer that fails validation is definitively
// Out (it is not an observer function for c at all).
func SCDecide(ctx context.Context, c *computation.Computation, o *observer.Observer, opts SearchOptions) ([]dag.Node, Verdict, SearchStats) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut(), SearchStats{}
	}
	res := searchLastWriterCtx(ctx, c, o, allLocs(c), opts)
	return res.Order, res.Verdict(), res.Stats
}

// LCDecide decides (c, o) ∈ LC under ctx. The per-location reduction is
// polynomial (SerializeLoc), so ctx is polled between locations; a
// cancelled run reports which governor fired. A definitive In verdict
// comes with one witnessing sort per location.
func LCDecide(ctx context.Context, c *computation.Computation, o *observer.Observer) ([][]dag.Node, Verdict) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut()
	}
	sorts := make([][]dag.Node, c.NumLocs())
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		if err := ctx.Err(); err != nil {
			return nil, search.VerdictInconclusive(search.ContextStopReason(err))
		}
		loc := l
		order, ok := SerializeLoc(c, loc, func(u dag.Node) (dag.Node, bool) {
			return o.Get(loc, u), true
		})
		if !ok {
			return nil, search.VerdictOut()
		}
		sorts[l] = order
	}
	return sorts, search.VerdictIn()
}

// QDagDecide decides (c, o) ∈ QDag(p) under ctx. The scan is polynomial
// per location/node pair, so ctx is polled once per outer node
// iteration. A definitive Out verdict comes with the witnessing
// violation triple.
func QDagDecide(ctx context.Context, p Predicate, c *computation.Computation, o *observer.Observer) (*Violation, Verdict) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut()
	}
	v, err := qdagModel{pred: p}.findViolationCtx(ctx, c, o)
	switch {
	case err != nil:
		return nil, search.VerdictInconclusive(search.ContextStopReason(err))
	case v != nil:
		return v, search.VerdictOut()
	default:
		return nil, search.VerdictIn()
	}
}

// ModelNames lists the decidable models: the Figure 1 lattice
// strongest first — the order the ccmc CLI reports and the serving
// layer defaults to — followed by the hardware/language models (TSO,
// RA, CAUSAL) appended after the paper's six so existing report
// positions and pattern bits stay stable.
func ModelNames() []string {
	return []string{"SC", "LC", "NN", "NW", "WN", "WW", "TSO", "RA", "CAUSAL"}
}

// PredicateByName resolves a quantified-dag model name to its
// Condition 20.1 predicate.
func PredicateByName(name string) (Predicate, bool) {
	switch name {
	case "NN":
		return PredNN, true
	case "NW":
		return PredNW, true
	case "WN":
		return PredWN, true
	case "WW":
		return PredWW, true
	}
	return Predicate{}, false
}

// Decision is the structured outcome of one model-membership question:
// the three-valued verdict plus whatever explanation the decider can
// produce (a witness sort for SC, per-location sorts for LC, a
// violating triple for the quantified-dag models) and the engine stats
// when a search ran. The ccmc CLI and the serving layer both render
// from this one shape, so their verdicts and witnesses cannot drift.
type Decision struct {
	// Model is the name the question was asked about.
	Model string
	// Verdict is the three-valued answer.
	Verdict Verdict
	// Stats reports the engine's work (SC and TSO; zero otherwise).
	Stats SearchStats
	// Order is the witnessing sort when SC answered In, or the
	// witnessing memory order when TSO did.
	Order []dag.Node
	// LocOrders holds one witnessing sort per location when LC answered In.
	LocOrders [][]dag.Node
	// Violation is the witnessing triple when a quantified-dag model
	// answered Out.
	Violation *Violation
}

// DecideByName answers (c, o) ∈ model for one of the ModelNames under
// ctx, bracketing the decision in run events labeled with the model
// name on opts.Recorder (the SC and TSO searches emit their own engine
// events; the polynomial deciders get an explicit RunStart/RunEnd pair
// so recorded sessions still see one run per decision). An unknown
// model name is an error naming the registered models.
func DecideByName(ctx context.Context, model string, c *computation.Computation, o *observer.Observer, opts SearchOptions) (Decision, error) {
	d := Decision{Model: model}
	rec := opts.Recorder
	switch model {
	case "SC":
		scOpts := opts
		scOpts.Recorder = obs.WithRun(rec, "SC")
		d.Order, d.Verdict, d.Stats = SCDecide(ctx, c, o, scOpts)
	case "LC":
		r := obs.WithRun(rec, "LC")
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
		d.LocOrders, d.Verdict = LCDecide(ctx, c, o)
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: d.Verdict.String()})
	case "TSO":
		tsoOpts := opts
		tsoOpts.Recorder = obs.WithRun(rec, "TSO")
		d.Order, d.Verdict, d.Stats = TSODecide(ctx, c, o, tsoOpts)
	case "RA":
		r := obs.WithRun(rec, "RA")
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
		d.Verdict = RADecide(ctx, c, o)
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: d.Verdict.String()})
	case "CAUSAL":
		r := obs.WithRun(rec, "CAUSAL")
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
		d.Verdict = CausalDecide(ctx, c, o)
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: d.Verdict.String()})
	default:
		p, ok := PredicateByName(model)
		if !ok {
			return Decision{}, fmt.Errorf("memmodel: unknown model %q (known models: %s)", model, strings.Join(ModelNames(), ", "))
		}
		r := obs.WithRun(rec, model)
		obs.Emit(r, obs.Event{Kind: obs.RunStart, Total: 1})
		d.Violation, d.Verdict = QDagDecide(ctx, p, c, o)
		obs.Emit(r, obs.Event{Kind: obs.RunEnd, Str: d.Verdict.String()})
	}
	return d, nil
}

// searchLastWriterCtx is searchLastWriterOpts under a context.
func searchLastWriterCtx(ctx context.Context, c *computation.Computation, o *observer.Observer, locs []computation.Loc, opts SearchOptions) search.Result {
	return search.RunContext(ctx, lastWriterSpec(c, o, locs), opts)
}

package memmodel

import (
	"context"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// This file is the governed front door to the deciders: every model
// membership question gets a context-aware variant returning a typed
// three-valued Verdict instead of a bare bool, so callers can tell "not
// in the model" apart from "the search was stopped by a deadline,
// budget, or cancellation before it could decide". The legacy
// bool-returning APIs remain and delegate with context.Background().

// Verdict is the three-valued decision outcome (In / Out /
// Inconclusive with a machine-readable StopReason).
type Verdict = search.Verdict

// StopReason says why a decision came back inconclusive.
type StopReason = search.StopReason

// SCDecide decides (c, o) ∈ SC under ctx: cancellation or deadline
// expiry stops the search promptly and yields an inconclusive verdict,
// as does exhausting opts.Budget. A definitive In verdict comes with a
// witnessing sort. An observer that fails validation is definitively
// Out (it is not an observer function for c at all).
func SCDecide(ctx context.Context, c *computation.Computation, o *observer.Observer, opts SearchOptions) ([]dag.Node, Verdict, SearchStats) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut(), SearchStats{}
	}
	res := searchLastWriterCtx(ctx, c, o, allLocs(c), opts)
	return res.Order, res.Verdict(), res.Stats
}

// LCDecide decides (c, o) ∈ LC under ctx. The per-location reduction is
// polynomial (SerializeLoc), so ctx is polled between locations; a
// cancelled run reports which governor fired. A definitive In verdict
// comes with one witnessing sort per location.
func LCDecide(ctx context.Context, c *computation.Computation, o *observer.Observer) ([][]dag.Node, Verdict) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut()
	}
	sorts := make([][]dag.Node, c.NumLocs())
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		if err := ctx.Err(); err != nil {
			return nil, search.VerdictInconclusive(search.ContextStopReason(err))
		}
		loc := l
		order, ok := SerializeLoc(c, loc, func(u dag.Node) (dag.Node, bool) {
			return o.Get(loc, u), true
		})
		if !ok {
			return nil, search.VerdictOut()
		}
		sorts[l] = order
	}
	return sorts, search.VerdictIn()
}

// QDagDecide decides (c, o) ∈ QDag(p) under ctx. The scan is polynomial
// per location/node pair, so ctx is polled once per outer node
// iteration. A definitive Out verdict comes with the witnessing
// violation triple.
func QDagDecide(ctx context.Context, p Predicate, c *computation.Computation, o *observer.Observer) (*Violation, Verdict) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut()
	}
	v, err := qdagModel{pred: p}.findViolationCtx(ctx, c, o)
	switch {
	case err != nil:
		return nil, search.VerdictInconclusive(search.ContextStopReason(err))
	case v != nil:
		return v, search.VerdictOut()
	default:
		return nil, search.VerdictIn()
	}
}

// searchLastWriterCtx is searchLastWriterOpts under a context.
func searchLastWriterCtx(ctx context.Context, c *computation.Computation, o *observer.Observer, locs []computation.Loc, opts SearchOptions) search.Result {
	return search.RunContext(ctx, lastWriterSpec(c, o, locs), opts)
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// LC is location consistency (Definition 18), called coherence in much
// of the literature [GS95, HP96]: each location is serialized
// independently. (C, Φ) ∈ LC iff for every location l there is a
// topological sort T_l ∈ TS(C) with Φ(l, ·) = W_{T_l}(l, ·):
//
//	LC = { (C, Φ) : ∀l ∃T ∈ TS(C) ∀u  Φ(l, u) = W_T(l, u) }
//
// Section 6 proves LC is the constructible version of NN-dag
// consistency (Theorem 23); the experiments machine-check that claim.
//
// Note this is *not* the "location consistency" of Gao & Sarkar [GS95],
// which is a different (weaker) model; the paper's Section 7 discusses
// the naming collision.
var LC Model = lcModel{}

type lcModel struct{}

func (lcModel) Name() string { return "LC" }

func (lcModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	_, ok := LCWitness(c, o)
	return ok
}

// LCWitness returns one topological sort per location witnessing
// LC-membership, if (c, o) ∈ LC. Each location is decided by the
// polynomial SerializeLoc reduction with every node's last-writer value
// pinned to the observer's.
func LCWitness(c *computation.Computation, o *observer.Observer) ([][]dag.Node, bool) {
	if o.Validate(c) != nil {
		return nil, false
	}
	sorts := make([][]dag.Node, c.NumLocs())
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		loc := l
		order, ok := SerializeLoc(c, loc, func(u dag.Node) (dag.Node, bool) {
			return o.Get(loc, u), true
		})
		if !ok {
			return nil, false
		}
		sorts[l] = order
	}
	return sorts, true
}

// lcContainsBySearch is the exponential topological-sort search for LC
// membership, retained for cross-validation of SerializeLoc in tests
// and benchmarks.
func lcContainsBySearch(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		if _, ok := searchLastWriter(c, o, []computation.Loc{l}); !ok {
			return false
		}
	}
	return true
}

package memmodel

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

// Figure 4: NN is not constructible. The prefix pair is in NN, but no
// observer on the extension by a non-writing node restricts to it.
func TestFigure4NNNotConstructible(t *testing.T) {
	fx := paperfig.Figure4()
	if !NN.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("Figure 4 prefix must be in NN")
	}
	for _, op := range []computation.Op{computation.N, computation.R(0)} {
		ext, _ := fx.Extend(op)
		if CanExtend(NN, fx.Prefix, fx.PrefixObs, ext) {
			t.Fatalf("NN must not extend across a %s final node", op)
		}
	}
	// "Unless F writes to the memory location": a write escapes.
	ext, _ := fx.Extend(computation.W(0))
	if !CanExtend(NN, fx.Prefix, fx.PrefixObs, ext) {
		t.Fatal("NN must extend across a writing final node")
	}
	// The augmentation criterion of Theorem 12 also fails at this pair.
	if op, ok := ConstructibleAtAug(NN, fx.Prefix, fx.PrefixObs, computation.AllOps(1)); ok {
		t.Fatal("ConstructibleAtAug must fail for NN at the Figure 4 prefix")
	} else if op.Kind == computation.Write {
		t.Fatalf("failing op should be a non-write, got %s", op)
	}
}

// Theorem 19: SC and LC extend across every augmentation at every pair
// of a sample; here the Figure 4 shape with LC-compatible observers.
func TestSCLCConstructibleAtSamples(t *testing.T) {
	samples := []paperfig.Fixture{paperfig.Dekker()}
	// Add a last-writer pair on the Figure 4 computation.
	fx := paperfig.Figure4()
	order, err := fx.Prefix.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	samples = append(samples, paperfig.Fixture{
		Name: "Fig4-last-writer",
		Comp: fx.Prefix,
		Obs:  observer.FromLastWriter(fx.Prefix, order),
	})
	for _, s := range samples {
		ops := computation.AllOps(s.Comp.NumLocs())
		for _, m := range []Model{SC, LC} {
			if !m.Contains(s.Comp, s.Obs) {
				continue
			}
			if op, ok := ConstructibleAtAug(m, s.Comp, s.Obs, ops); !ok {
				t.Errorf("%s: %s failed to extend across aug by %s", s.Name, m.Name(), op)
			}
			if ext, ok := ConstructibleAtFull(m, s.Comp, s.Obs, ops); !ok {
				t.Errorf("%s: %s failed to extend across %v", s.Name, m.Name(), ext)
			}
		}
	}
}

func TestMonotonicAtFixtures(t *testing.T) {
	for _, fx := range []paperfig.Fixture{paperfig.Figure2(), paperfig.Figure3(), paperfig.Dekker()} {
		for _, m := range []Model{SC, LC, NN, NW, WN, WW} {
			if !MonotonicAt(m, fx.Comp, fx.Obs) {
				t.Errorf("%s not monotonic at %s", m.Name(), fx.Name)
			}
		}
	}
}

func TestHasObserver(t *testing.T) {
	fx := paperfig.Figure4()
	for _, m := range []Model{SC, LC, NN, NW, WN, WW} {
		if !HasObserver(m, fx.Prefix) {
			t.Errorf("%s has no observer for the Figure 4 computation", m.Name())
		}
	}
	never := Func("NEVER", func(*computation.Computation, *observer.Observer) bool { return false })
	if HasObserver(never, fx.Prefix) {
		t.Error("empty model reported an observer")
	}
}

func TestCanExtendRequiresOneNodeExtension(t *testing.T) {
	fx := paperfig.Figure4()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a non-extension")
		}
	}()
	CanExtend(NN, fx.Prefix, fx.PrefixObs, fx.Prefix)
}

// smallUniverse materializes all computations up to maxNodes over one
// location, locally (avoiding an import cycle with internal/enum).
func smallUniverse(maxNodes int) []*computation.Computation {
	var out []*computation.Computation
	ops := computation.AllOps(1)
	for n := 0; n <= maxNodes; n++ {
		dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
			labels := make([]computation.Op, n)
			var rec func(i int)
			rec = func(i int) {
				if i == n {
					out = append(out, computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), 1))
					return
				}
				for _, op := range ops {
					labels[i] = op
					rec(i + 1)
				}
			}
			rec(0)
			return true
		})
	}
	return out
}

// The fixpoint engine must not prune anything from a constructible
// model: LC* = LC on the whole universe.
func TestConstructibleVersionOfLCIsLC(t *testing.T) {
	universe := smallUniverse(3)
	star := ConstructibleVersion(LC, universe, computation.AllOps(1))
	if star.Name() != "LC*" {
		t.Fatalf("name = %q", star.Name())
	}
	for _, c := range universe {
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if LC.Contains(c, o) != star.Contains(c, o) {
				t.Fatalf("LC* differs from LC at %v / %v", c, o)
			}
			return true
		})
	}
}

// Theorem 23 in miniature: NN* = LC on the interior of the universe.
// The sandwich LC ⊆ NN* ⊆ survivors makes interior equality a proof of
// NN* = LC for those sizes (see constructible.go). With a 3-node
// universe there is nothing to prune (the minimal non-constructibility
// witness, Figure 4, needs 4 nodes), so this test verifies both facts:
// no pruning at n ≤ 3, pruning exactly down to LC on the interior of
// the 4-node universe.
func TestTheorem23NNStarIsLCInterior(t *testing.T) {
	small := smallUniverse(3)
	star3 := ConstructibleVersion(NN, small, computation.AllOps(1))
	for _, c := range small {
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if NN.Contains(c, o) != star3.Contains(c, o) {
				t.Fatalf("unexpected pruning at ≤3 nodes: %v / %v", c, o)
			}
			return true
		})
	}

	if testing.Short() {
		t.Skip("4-node fixpoint universe skipped in -short mode")
	}
	maxN := 4
	universe := smallUniverse(maxN)
	star := ConstructibleVersion(NN, universe, computation.AllOps(1))
	checked := 0
	for _, c := range universe {
		if c.NumNodes() >= maxN {
			continue // boundary: survivors over-approximate NN*
		}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			checked++
			inLC := LC.Contains(c, o)
			inStar := star.Contains(c, o)
			if inLC && !inStar {
				t.Fatalf("LC pair pruned from NN*: %v / %v", c, o)
			}
			if !inLC && inStar {
				t.Fatalf("NN* survivor outside LC: %v / %v", c, o)
			}
			return true
		})
	}
	if checked == 0 {
		t.Fatal("interior was empty")
	}
	// The Figure 4 prefix pair (4 nodes, so on the boundary of this
	// universe) is in NN but not in LC; the interior equality above plus
	// the sandwich proves NN* = LC for all 1-location computations with
	// at most 3 nodes.
	fx := paperfig.Figure4()
	if !NN.Contains(fx.Prefix, fx.PrefixObs) || LC.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("Figure 4 prefix must witness NN \\ LC")
	}
}

// The fixpoint engine must prune the Figure 4 pair: in a universe
// consisting of the Figure 4 prefix and its augmentations, the prefix
// pair is in NN but does not survive one round of pruning, because the
// augmentation by a no-op admits no extension.
func TestFixpointPrunesFigure4(t *testing.T) {
	fx := paperfig.Figure4()
	ops := computation.AllOps(1)
	universe := []*computation.Computation{fx.Prefix}
	for _, op := range ops {
		aug, _ := fx.Prefix.Augment(op)
		universe = append(universe, aug)
	}
	star := ConstructibleVersion(NN, universe, ops)
	if !NN.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("precondition: pair in NN")
	}
	if star.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("Figure 4 pair must be pruned from NN*")
	}
	// A last-writer pair on the same computation survives (it is in LC,
	// and LC ⊆ NN*).
	order, err := fx.Prefix.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	lw := observer.FromLastWriter(fx.Prefix, order)
	if !star.Contains(fx.Prefix, lw) {
		t.Fatal("last-writer pair must survive pruning")
	}
}

// Lemma 7: a union of constructible models is constructible — checked
// via the Theorem 12 criterion at every pair of SC ∪ Amnesiac over the
// small universe (both operands are constructible; their union must
// extend everywhere even though the operands are disjoint on most
// computations).
func TestLemma7UnionConstructible(t *testing.T) {
	u := Union("SC∪AMNESIAC", SC, Amnesiac)
	ops := computation.AllOps(1)
	for _, c := range smallUniverse(3) {
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !u.Contains(c, o) {
				return true
			}
			if op, ok := ConstructibleAtAug(u, c, o.Clone(), ops); !ok {
				t.Fatalf("union failed to extend by %s at %v / %v", op, c, o)
			}
			return true
		})
	}
	// Contrast: a union with a NON-constructible operand need not be
	// constructible; NN ∪ Amnesiac still fails at the Figure 4 pair
	// (the amnesiac alternative does not extend the crossing observer).
	fx := paperfig.Figure4()
	bad := Union("NN∪AMNESIAC", NN, Amnesiac)
	if !bad.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("union must contain the NN pair")
	}
	if _, ok := ConstructibleAtAug(bad, fx.Prefix, fx.PrefixObs, ops); ok {
		t.Fatal("union with NN must still fail at the Figure 4 pair")
	}
}

func TestPairSetAccessors(t *testing.T) {
	universe := smallUniverse(2)
	star := ConstructibleVersion(LC, universe, computation.AllOps(1))
	if star.MaxNodes() != 2 {
		t.Fatalf("MaxNodes = %d", star.MaxNodes())
	}
	if star.NumPairs(-1) <= 0 {
		t.Fatal("no pairs survived for LC")
	}
	if star.NumPairs(0) != 1 {
		t.Fatalf("empty computation pairs = %d, want 1", star.NumPairs(0))
	}
	count := 0
	star.EachPair(func(c *computation.Computation, o *observer.Observer) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("EachPair early stop visited %d", count)
	}
	// Outside-universe computations are reported absent.
	big := computation.New(1)
	for i := 0; i < 6; i++ {
		big.AddNode(computation.N)
	}
	if star.Contains(big, observer.New(big)) {
		t.Fatal("outside-universe pair reported present")
	}
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// This file adapts the decision procedure shared by SC and LC onto the
// unified engine in internal/search: given a computation C, an
// observer function Φ, and a set of locations S, is there a
// topological sort T ∈ TS(C) such that Φ(l, ·) = W_T(l, ·) for every
// l ∈ S? SC asks the question for all locations with a single sort; LC
// asks it per location with independent sorts.
//
// Each tracked location becomes an engine slot and every node's
// candidate set is the singleton {Φ(l, u)}: a node may be appended to
// the partial sort only if, for every location of interest, Φ(l, u)
// equals the last writer already placed (or u itself when u writes l).
// The engine supplies failed-state memoization (bitset-keyed, so the
// common cases stay polynomial in practice even though the problem is
// exponential in the worst case), transitive-closure pruning — which
// subsumes the static prechecks the old private searcher ran (Φ(l,u)
// observing the future, or a second write forced between Φ(l,u) and
// u) — and parallel root splitting.

// SearchOptions tunes the backtracking engine behind the SC decider
// (workers for parallel root splitting, state budget). The zero value
// picks defaults (auto workers, unlimited budget).
type SearchOptions = search.Options

// SearchStats reports the work a decider's search did.
type SearchStats = search.Stats

// searchLastWriter reports whether some T ∈ TS(c) has Φ(l,·) = W_T(l,·)
// simultaneously for every l in locs, and returns one witnessing sort.
func searchLastWriter(c *computation.Computation, o *observer.Observer, locs []computation.Loc) ([]dag.Node, bool) {
	res := searchLastWriterOpts(c, o, locs, SearchOptions{})
	return res.Order, res.Found
}

// searchLastWriterOpts is searchLastWriter with engine options and the
// full engine result (stats, budget exhaustion).
func searchLastWriterOpts(c *computation.Computation, o *observer.Observer, locs []computation.Loc, opts SearchOptions) search.Result {
	return search.Run(lastWriterSpec(c, o, locs), opts)
}

// lastWriterSpec compiles the (C, Φ, S) membership question into an
// engine Spec: each tracked location is a slot and every node's
// candidate set is the singleton {Φ(l, u)}.
func lastWriterSpec(c *computation.Computation, o *observer.Observer, locs []computation.Loc) search.Spec {
	slot := make([]int, c.NumLocs())
	for l := range slot {
		slot[l] = -1
	}
	for i, l := range locs {
		slot[l] = i
	}
	// One backing array for all the singleton candidate sets: the engine
	// retains the slices, so per-(location, node) allocations are wasted.
	n := c.NumNodes()
	vals := make([]dag.Node, len(locs)*n)
	return search.Spec{
		Dag:      c.Dag(),
		Closure:  c.Closure(),
		NumSlots: len(locs),
		WriteSlot: func(u dag.Node) int {
			if op := c.Op(u); op.Kind == computation.Write {
				return slot[op.Loc]
			}
			return -1
		},
		Allowed: func(s int, u dag.Node) ([]dag.Node, bool) {
			i := s*n + int(u)
			vals[i] = o.Get(locs[s], u)
			return vals[i : i+1 : i+1], true
		},
	}
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// This file implements the decision procedure shared by SC and LC:
// given a computation C, an observer function Φ, and a set of locations
// S, is there a topological sort T ∈ TS(C) such that Φ(l, ·) = W_T(l, ·)
// for every l ∈ S? SC asks the question for all locations with a single
// sort; LC asks it per location with independent sorts.
//
// The search is a pruned backtracking construction of T: a node u may be
// appended only if, for every location of interest, Φ(l, u) equals the
// last writer already placed (or u itself when u writes l). Failed
// search states, identified by (placed set, last-writer vector), are
// memoized, which keeps the common cases polynomial in practice even
// though the problem is exponential in the worst case.

// searchLastWriter reports whether some T ∈ TS(c) has Φ(l,·) = W_T(l,·)
// simultaneously for every l in locs, and returns one witnessing sort.
func searchLastWriter(c *computation.Computation, o *observer.Observer, locs []computation.Loc) ([]dag.Node, bool) {
	n := c.NumNodes()
	if n == 0 {
		return []dag.Node{}, true
	}
	if !lastWriterPrecheck(c, o, locs) {
		return nil, false
	}

	g := c.Dag()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(dag.Node(u))
	}
	last := make([]dag.Node, len(locs))
	for i := range last {
		last[i] = observer.Bottom
	}
	placed := make([]bool, n)
	failed := make(map[string]struct{})

	keyBuf := make([]byte, 0, n+2*len(locs))
	stateKey := func() string {
		keyBuf = keyBuf[:0]
		var acc byte
		for u := 0; u < n; u++ {
			acc = acc << 1
			if placed[u] {
				acc |= 1
			}
			if u%8 == 7 {
				keyBuf = append(keyBuf, acc)
				acc = 0
			}
		}
		keyBuf = append(keyBuf, acc)
		for _, w := range last {
			keyBuf = append(keyBuf, byte(w), byte(int32(w)>>8))
		}
		return string(keyBuf)
	}

	order := make([]dag.Node, 0, n)

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		key := stateKey()
		if _, bad := failed[key]; bad {
			return false
		}
		for u := 0; u < n; u++ {
			if placed[u] || indeg[u] != 0 {
				continue
			}
			node := dag.Node(u)
			ok := true
			for i, l := range locs {
				want := last[i]
				if c.Op(node).IsWriteTo(l) {
					want = node
				}
				if o.Get(l, node) != want {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			order = append(order, node)
			saved := make([]dag.Node, 0, 2)
			for i, l := range locs {
				if c.Op(node).IsWriteTo(l) {
					saved = append(saved, dag.Node(i), last[i])
					last[i] = node
				}
			}
			for _, v := range g.Succs(node) {
				indeg[v]--
			}
			if rec(remaining - 1) {
				return true
			}
			for _, v := range g.Succs(node) {
				indeg[v]++
			}
			for i := 0; i < len(saved); i += 2 {
				last[saved[i]] = saved[i+1]
			}
			order = order[:len(order)-1]
			placed[u] = false
		}
		failed[key] = struct{}{}
		return false
	}
	if rec(n) {
		return order, true
	}
	return nil, false
}

// lastWriterPrecheck applies cheap necessary conditions before the
// backtracking search:
//
//   - if Φ(l,u) = ⊥, no write to l may precede u in the dag (it would
//     precede u in every sort);
//   - if Φ(l,u) = w, no other write to l may lie strictly between w and
//     u in the dag (it would overwrite w in every sort);
//   - if Φ(l,u) = w then w must not strictly follow u (already part of
//     observer validity, kept for callers that skip validation).
func lastWriterPrecheck(c *computation.Computation, o *observer.Observer, locs []computation.Loc) bool {
	cl := c.Closure()
	for _, l := range locs {
		writers := c.Writers(l)
		for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
			w := o.Get(l, u)
			if cl.Precedes(u, w) {
				return false
			}
			for _, x := range writers {
				if x == w {
					continue
				}
				// x strictly between w and u (w may be ⊥: ⊥ ≺ x always).
				if cl.Precedes(w, x) && cl.PrecedesEq(x, u) {
					return false
				}
			}
		}
	}
	return true
}

package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

func randomComputation(rng *rand.Rand, maxNodes, maxLocs int) *computation.Computation {
	n := rng.Intn(maxNodes + 1)
	locs := 1 + rng.Intn(maxLocs)
	g := dag.Random(rng, n, 0.35)
	all := computation.AllOps(locs)
	ops := make([]computation.Op, n)
	for i := range ops {
		ops[i] = all[rng.Intn(len(all))]
	}
	return computation.MustFrom(g, ops, locs)
}

func TestSCAcceptsLastWriterObservers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 7, 2)
		order, err := c.Dag().TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		o := observer.FromLastWriter(c, order)
		if !SC.Contains(c, o) {
			t.Fatalf("SC rejected last-writer observer of %v", c)
		}
		w, ok := SCWitness(c, o)
		if !ok || !c.Dag().IsTopoSort(w) {
			t.Fatalf("SCWitness failed for %v", c)
		}
		// The witness must regenerate the observer exactly.
		if !observer.FromLastWriter(c, w).Equal(o) {
			t.Fatalf("witness %v does not regenerate Φ for %v", w, c)
		}
	}
}

func TestSCRejectsInvalidObserver(t *testing.T) {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	o := observer.New(c)
	o.Set(0, b, b) // read observing itself: invalid
	if SC.Contains(c, o) || LC.Contains(c, o) {
		t.Fatal("models must reject invalid observers")
	}
}

func TestSCRejectsStaleReadAfterWrite(t *testing.T) {
	// W -> R on one location, read observing ⊥: impossible in SC and LC.
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	o := observer.New(c) // Φ(0, b) = ⊥
	if SC.Contains(c, o) {
		t.Fatal("SC accepted a stale read past a preceding write")
	}
	if LC.Contains(c, o) {
		t.Fatal("LC accepted a stale read past a preceding write")
	}
	if NN.Contains(c, o) {
		t.Fatal("NN accepted ⊥ after an observed write on the path")
	}
	// Observing the write is fine everywhere.
	o.Set(0, b, a)
	for _, m := range []Model{SC, LC, NN, NW, WN, WW} {
		if !m.Contains(c, o) {
			t.Fatalf("%s rejected the canonical W->R pair", m.Name())
		}
	}
}

func TestDekkerSeparatesSCFromLC(t *testing.T) {
	fx := paperfig.Dekker()
	if err := fx.Obs.Validate(fx.Comp); err != nil {
		t.Fatal(err)
	}
	if SC.Contains(fx.Comp, fx.Obs) {
		t.Fatal("Dekker outcome must not be sequentially consistent")
	}
	if !LC.Contains(fx.Comp, fx.Obs) {
		t.Fatal("Dekker outcome must be location consistent")
	}
	sorts, ok := LCWitness(fx.Comp, fx.Obs)
	if !ok || len(sorts) != 2 {
		t.Fatal("LCWitness failed on Dekker")
	}
	for l, s := range sorts {
		if !fx.Comp.Dag().IsTopoSort(s) {
			t.Fatalf("location %d witness %v is not a topological sort", l, s)
		}
	}
}

func TestLCAllowsPerLocationSerialization(t *testing.T) {
	// Two disjoint clusters, one per location. Each read observes one of
	// two parallel writes to its location and ⊥ at the other location.
	// LC serializes locations independently, so both outcomes coexist;
	// SC would need the other cluster's writes both before (to be
	// observed) and after (to stay ⊥) — impossible.
	c := computation.New(2)
	wx1 := c.AddNode(computation.W(0))
	wx2 := c.AddNode(computation.W(0))
	rx := c.AddNode(computation.R(0))
	wy1 := c.AddNode(computation.W(1))
	wy2 := c.AddNode(computation.W(1))
	ry := c.AddNode(computation.R(1))
	c.MustAddEdge(wx1, rx)
	c.MustAddEdge(wx2, rx)
	c.MustAddEdge(wy1, ry)
	c.MustAddEdge(wy2, ry)

	o := observer.New(c)
	o.Set(0, rx, wx2) // x serialized wx1 then wx2
	o.Set(1, ry, wy1) // y serialized wy2 then wy1
	// Φ(1, rx) = Φ(0, ry) = ⊥: each reader sorts before the other
	// cluster's writes in that location's serialization.
	if err := o.Validate(c); err != nil {
		t.Fatal(err)
	}
	if !LC.Contains(c, o) {
		t.Fatal("LC must allow independent per-location serializations")
	}
	if SC.Contains(c, o) {
		t.Fatal("SC must reject the ⊥-vs-observed contradiction")
	}
}

func TestLCRejectsUnserializableLocation(t *testing.T) {
	// Figure 4 prefix: two crossing read/write pairs on one location.
	fx := paperfig.Figure4()
	if LC.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("LC must reject the crossing pattern of Figure 4")
	}
	if !NN.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("NN must accept the Figure 4 prefix")
	}
}

// Theorem 19 (pointwise direction used everywhere): every last-writer
// observer is in SC, every per-location-last-writer observer is in LC,
// and SC ⊆ LC.
func TestQuickSCSubsetOfLC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 6, 2)
		if observer.Count(c, 400) >= 400 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if SC.Contains(c, o) && !LC.Contains(c, o) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Brute-force cross-check of the pruned backtracking search: SC
// membership must agree with explicit enumeration of topological sorts.
func TestQuickSCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if observer.Count(c, 300) >= 300 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			brute := false
			c.Dag().EachTopoSort(func(order []dag.Node) bool {
				if observer.FromLastWriter(c, order).Equal(o) {
					brute = true
					return false
				}
				return true
			})
			if SC.Contains(c, o) != brute {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Brute-force cross-check for LC: per-location agreement with explicit
// sort enumeration.
func TestQuickLCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if observer.Count(c, 300) >= 300 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			brute := true
			for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
				foundSort := false
				c.Dag().EachTopoSort(func(order []dag.Node) bool {
					row := observer.LastWriterForLoc(c, order, l)
					match := true
					for u := range row {
						if o.Get(l, dag.Node(u)) != row[u] {
							match = false
							break
						}
					}
					if match {
						foundSort = true
						return false
					}
					return true
				})
				if !foundSort {
					brute = false
					break
				}
			}
			if LC.Contains(c, o) != brute {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyComputationInAllModels(t *testing.T) {
	c := computation.New(1)
	o := observer.New(c)
	for _, m := range []Model{SC, LC, NN, NW, WN, WW, Trivial} {
		if !m.Contains(c, o) {
			t.Fatalf("%s must contain the empty pair (Definition 3)", m.Name())
		}
	}
}

// Package memmodel implements the paper's primary contribution: the
// computation-centric theory of memory models (Frigo & Luchangco,
// SPAA 1998).
//
// A memory model (Definition 3) is a set of (computation, observer
// function) pairs containing the empty pair. This package provides
// decision procedures for the models the paper studies —
//
//   - SC, sequential consistency (Definition 17);
//   - LC, location consistency, a.k.a. coherence (Definition 18);
//   - Q-dag consistency (Definition 20) for the predicates NN, NW, WN,
//     WW of Section 5 and for arbitrary user predicates;
//
// as well as machine checks for the abstract properties of Sections 2–3:
// completeness, monotonicity (Definition 5), constructibility
// (Definition 6, via the single-extension criterion of Theorem 10 and
// the augmentation criterion of Theorem 12), and an engine that computes
// the constructible version Δ* (Definition 8) of a model over a bounded
// universe of computations.
package memmodel

import (
	"repro/internal/computation"
	"repro/internal/observer"
)

// Model is a computation-centric memory model: a decidable set of
// (computation, observer function) pairs. Contains must return false
// when o is not a valid observer function for c, so that every Model
// value denotes a memory model in the sense of Definition 3.
type Model interface {
	// Name returns a short identifier such as "SC" or "NN".
	Name() string
	// Contains reports whether (c, o) is in the model.
	Contains(c *computation.Computation, o *observer.Observer) bool
}

// Stronger reports whether a is stronger than b (Definition 4: a ⊆ b)
// over the given finite universe of pairs. The universe is supplied by
// the caller (typically internal/enum); the result is exact for that
// universe only.
func Stronger(a, b Model, universe []Pair) bool {
	for _, p := range universe {
		if a.Contains(p.C, p.O) && !b.Contains(p.C, p.O) {
			return false
		}
	}
	return true
}

// Pair is one element of a memory model.
type Pair struct {
	C *computation.Computation
	O *observer.Observer
}

// Intersection returns the model a ∩ b ∩ ..., which is stronger than
// each operand. The intersection of memory models is a memory model
// (the empty pair is in all of them).
func Intersection(name string, models ...Model) Model {
	return intersection{name: name, models: models}
}

type intersection struct {
	name   string
	models []Model
}

func (m intersection) Name() string { return m.name }

func (m intersection) Contains(c *computation.Computation, o *observer.Observer) bool {
	for _, sub := range m.models {
		if !sub.Contains(c, o) {
			return false
		}
	}
	return len(m.models) > 0
}

// Union returns the model a ∪ b ∪ ..., which is weaker than each
// operand. Lemma 7 shows unions preserve constructibility.
func Union(name string, models ...Model) Model {
	return union{name: name, models: models}
}

type union struct {
	name   string
	models []Model
}

func (m union) Name() string { return m.name }

func (m union) Contains(c *computation.Computation, o *observer.Observer) bool {
	for _, sub := range m.models {
		if sub.Contains(c, o) {
			return true
		}
	}
	return false
}

// Func adapts a predicate to the Model interface. The predicate may
// assume the observer is valid for the computation; Func wraps it with
// the validity check so the result is a well-formed memory model.
func Func(name string, contains func(c *computation.Computation, o *observer.Observer) bool) Model {
	return funcModel{name: name, fn: contains}
}

type funcModel struct {
	name string
	fn   func(*computation.Computation, *observer.Observer) bool
}

func (m funcModel) Name() string { return m.name }

func (m funcModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	return o.Validate(c) == nil && m.fn(c, o)
}

// Trivial is the weakest memory model: all pairs with a valid observer
// function. Every model is stronger than Trivial.
var Trivial Model = funcModel{
	name: "TRIVIAL",
	fn:   func(*computation.Computation, *observer.Observer) bool { return true },
}

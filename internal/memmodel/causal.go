package memmodel

import (
	"context"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// CAUSAL is causal memory (Ahamad, Neiger, Burns, Kohli & Hutto,
// lifted to the computation-centric setting; Cohen's coherent causal
// memory is this plus per-location agreement). Writes propagate
// respecting the happens-before relation hb = (precedence ∪
// observation)⁺, and every node may serialize its own causal past
// independently — there is no global arbitration, so two nodes may
// disagree about the order of hb-concurrent writes:
//
//	(C, Φ) ∈ CAUSAL  iff  hb is acyclic and every node u has a
//	linearization of its causal past consistent with hb in which,
//	for every location l, Φ(l, u) is the last write to l (and no
//	write to l exists in the past when Φ(l, u) = ⊥).
//
// The per-node check is polynomial: Φ(l, u) last among the past
// l-writes is "every other past l-write lands before it", and the
// required linearization exists iff hb restricted to the past plus
// those forcing edges is jointly acyclic. The joint check matters —
// per-location hidden-write tests miss cycles that only close across
// locations — and the differential fuzzer pins it to a brute-force
// enumeration of linearizations.
var CAUSAL Model = causalModel{}

type causalModel struct{}

func (causalModel) Name() string { return "CAUSAL" }

func (causalModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	v := CausalDecide(context.Background(), c, o)
	return v.In()
}

// CausalDecide decides (c, o) ∈ CAUSAL under ctx. The check is
// polynomial; ctx is polled once per node.
func CausalDecide(ctx context.Context, c *computation.Computation, o *observer.Observer) Verdict {
	if o.Validate(c) != nil {
		return search.VerdictOut()
	}
	hb, ok := buildHB(c, o)
	if !ok {
		return search.VerdictOut()
	}
	return causalCheck(ctx, c, o, hb)
}

// causalOK is the unvalidated core for the pooled pattern decider: o
// must be a valid observer and hb its (acyclic) happens-before
// relation.
func causalOK(c *computation.Computation, o *observer.Observer, hb *hbRel) bool {
	return causalCheck(context.Background(), c, o, hb).In()
}

func causalCheck(ctx context.Context, c *computation.Computation, o *observer.Observer, hb *hbRel) Verdict {
	n := c.NumNodes()
	numLocs := c.NumLocs()
	idx := make([]int, n) // node -> dense index in members, or -1
	for u := 0; u < n; u++ {
		if err := ctx.Err(); err != nil {
			return search.VerdictInconclusive(search.ContextStopReason(err))
		}
		node := dag.Node(u)
		members := append(hb.ancestors(node), node)
		for i := range idx {
			idx[i] = -1
		}
		for i, m := range members {
			idx[m] = i
		}
		k := len(members)
		adj := make([][]int, k)
		for i, x := range members {
			for j, y := range members {
				if i != j && hb.prec(x, y) {
					adj[i] = append(adj[i], j)
				}
			}
		}
		for l := computation.Loc(0); int(l) < numLocs; l++ {
			if c.Op(node).IsWriteTo(l) {
				// u's own write is last automatically: u is the
				// hb-maximum of its past.
				continue
			}
			want := o.Get(l, node)
			if want == observer.Bottom {
				for _, w := range c.Writers(l) {
					if w != node && idx[w] >= 0 {
						return search.VerdictOut() // a past write is visible
					}
				}
				continue
			}
			// want ≺_hb u by construction (observation edges are in
			// hb), so it is a member. Every other past l-write must
			// linearize before it.
			wi := idx[want]
			for _, w := range c.Writers(l) {
				if w == want || w == node {
					continue
				}
				if j := idx[w]; j >= 0 {
					adj[j] = append(adj[j], wi)
				}
			}
		}
		if findCycleInts(k, adj) != nil {
			return search.VerdictOut()
		}
	}
	return search.VerdictIn()
}

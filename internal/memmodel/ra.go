package memmodel

import (
	"context"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// RA is the C11 release/acquire fragment lifted to the
// computation-centric setting: every write is a release and every
// observation an acquire, so happens-before hb = (precedence ∪
// observation)⁺ synchronizes globally, and each location carries one
// total modification order mo_l that all nodes agree on:
//
//	(C, Φ) ∈ RA  iff  hb is acyclic and for every location l there
//	is a total order mo_l of the writes to l such that
//	  - w ≺_hb w'           ⇒  w <_mo w'          (write coherence)
//	  - w' ≺_hb u, w' ≠ Φ(l,u) ⇒  w' <_mo Φ(l,u)  (no hidden write)
//	  - u ≺_hb w', w' ≠ Φ(l,u) ⇒  Φ(l,u) <_mo w'  (no future write)
//	  - Φ(l,u) = ⊥          ⇒  no write to l precedes u in hb.
//
// These are exactly the coherence axioms (CoWW, CoWR, CoRW; CoRR
// follows because observation edges are inside hb), so mo_l exists iff
// the forced-order digraph over the writes of l is acyclic — a
// polynomial check per location, differentially fuzzed against a
// brute-force enumeration of candidate modification orders.
//
// RA ⊆ LC: RA's per-location digraph contains every edge LC's
// serialization digraph forces (hb ⊇ the precedence closure), so an
// RA-consistent pair is location-consistent. The strictness witnesses
// live in testdata/litmus and are machine-checked by cmd/lattice.
var RA Model = raModel{}

type raModel struct{}

func (raModel) Name() string { return "RA" }

func (raModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	return RADecide(context.Background(), c, o).In()
}

// RADecide decides (c, o) ∈ RA under ctx. The check is polynomial;
// ctx is polled once per location.
func RADecide(ctx context.Context, c *computation.Computation, o *observer.Observer) Verdict {
	if o.Validate(c) != nil {
		return search.VerdictOut()
	}
	hb, ok := buildHB(c, o)
	if !ok {
		return search.VerdictOut()
	}
	return raCheck(ctx, c, o, hb)
}

// raOK is the unvalidated core for the pooled pattern decider: o must
// be a valid observer and hb its (acyclic) happens-before relation.
func raOK(c *computation.Computation, o *observer.Observer, hb *hbRel) bool {
	return raCheck(context.Background(), c, o, hb).In()
}

func raCheck(ctx context.Context, c *computation.Computation, o *observer.Observer, hb *hbRel) Verdict {
	n := c.NumNodes()
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		if err := ctx.Err(); err != nil {
			return search.VerdictInconclusive(search.ContextStopReason(err))
		}
		writers := c.Writers(l)
		k := len(writers)
		idx := make(map[dag.Node]int, k)
		for i, w := range writers {
			idx[w] = i
		}
		adj := make([][]int, k)
		addEdge := func(a, b int) {
			if a != b {
				adj[a] = append(adj[a], b)
			}
		}
		for i, w := range writers {
			for j, x := range writers {
				if i != j && hb.prec(w, x) {
					addEdge(i, j)
				}
			}
			_ = w
		}
		for u := 0; u < n; u++ {
			node := dag.Node(u)
			want := o.Get(l, node)
			if want == observer.Bottom {
				for _, w := range writers {
					if hb.prec(w, node) {
						return search.VerdictOut()
					}
				}
				continue
			}
			wi := idx[want] // want is a write to l (or u itself when u writes l)
			for j, w := range writers {
				if j == wi {
					continue
				}
				if hb.prec(w, node) {
					addEdge(j, wi)
				}
				if hb.prec(node, w) {
					addEdge(wi, j)
				}
			}
		}
		if findCycleInts(k, adj) != nil {
			return search.VerdictOut()
		}
	}
	return search.VerdictIn()
}

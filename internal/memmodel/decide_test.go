package memmodel_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/paperfig"
)

// TestDecideByNameMatchesModels checks the structured decision front
// door against the Model interface on the Figure 2 pair: every name
// decides, the verdicts agree with Contains, and the explanations are
// populated exactly when the verdict calls for them.
func TestDecideByNameMatchesModels(t *testing.T) {
	fx := paperfig.Figure2()
	models := map[string]memmodel.Model{
		"SC": memmodel.SC, "LC": memmodel.LC, "NN": memmodel.NN,
		"NW": memmodel.NW, "WN": memmodel.WN, "WW": memmodel.WW,
		"TSO": memmodel.TSO, "RA": memmodel.RA, "CAUSAL": memmodel.CAUSAL,
	}
	for _, name := range memmodel.ModelNames() {
		d, err := memmodel.DecideByName(context.Background(), name, fx.Comp, fx.Obs, memmodel.SearchOptions{})
		if err != nil {
			t.Fatalf("DecideByName(%s): %v", name, err)
		}
		if d.Model != name {
			t.Errorf("%s: decision labeled %q", name, d.Model)
		}
		if !d.Verdict.Decided {
			t.Fatalf("%s: ungoverned decision came back inconclusive: %v", name, d.Verdict)
		}
		if want := models[name].Contains(fx.Comp, fx.Obs); d.Verdict.In() != want {
			t.Errorf("%s: verdict %v, Contains = %v", name, d.Verdict, want)
		}
		switch name {
		case "SC", "TSO":
			if d.Verdict.In() != (d.Order != nil) {
				t.Errorf("%s: witness order present = %v, verdict %v", name, d.Order != nil, d.Verdict)
			}
		case "LC":
			if d.Verdict.In() != (d.LocOrders != nil) {
				t.Errorf("LC: witness sorts present = %v, verdict %v", d.LocOrders != nil, d.Verdict)
			}
		case "RA", "CAUSAL":
			// Polynomial yes/no deciders: no witness artifacts either way.
			if d.Order != nil || d.Violation != nil {
				t.Errorf("%s: unexpected explanation artifacts: %v / %v", name, d.Order, d.Violation)
			}
		default:
			if d.Verdict.Out() != (d.Violation != nil) {
				t.Errorf("%s: violation present = %v, verdict %v", name, d.Violation != nil, d.Verdict)
			}
		}
	}
}

func TestDecideByNameUnknownModel(t *testing.T) {
	fx := paperfig.Figure2()
	_, err := memmodel.DecideByName(context.Background(), "PSO", fx.Comp, fx.Obs, memmodel.SearchOptions{})
	if err == nil {
		t.Fatal("unknown model name decided without error")
	}
	// The error must be self-describing: it names the offender and
	// enumerates every registered model, so CLI/HTTP callers can fix
	// their request without reading the source.
	msg := err.Error()
	if !strings.Contains(msg, `"PSO"`) {
		t.Errorf("error does not name the unknown model: %q", msg)
	}
	for _, name := range memmodel.ModelNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list registered model %s: %q", name, msg)
		}
	}
}

func TestPredicateByName(t *testing.T) {
	for _, name := range []string{"NN", "NW", "WN", "WW"} {
		if _, ok := memmodel.PredicateByName(name); !ok {
			t.Errorf("PredicateByName(%s) missing", name)
		}
	}
	if _, ok := memmodel.PredicateByName("SC"); ok {
		t.Error("PredicateByName(SC) resolved; SC is not a quantified-dag model")
	}
}

// TestDecideByNameCancelled: a pre-cancelled context must yield a typed
// inconclusive verdict from every decider, not a definitive answer.
func TestDecideByNameCancelled(t *testing.T) {
	fx := paperfig.Figure2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range memmodel.ModelNames() {
		d, err := memmodel.DecideByName(ctx, name, fx.Comp, fx.Obs, memmodel.SearchOptions{})
		if err != nil {
			t.Fatalf("DecideByName(%s): %v", name, err)
		}
		if !d.Verdict.Inconclusive() {
			t.Errorf("%s: cancelled decision was %v, want inconclusive", name, d.Verdict)
		}
	}
}

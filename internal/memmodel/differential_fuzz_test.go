package memmodel

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Differential fuzzing for the three hardware/language deciders: each
// target parses a fuzzer-mutated .ccm pair and compares the production
// decider against a brute-force oracle written straight from the
// model's definition — full permutation enumeration, an independent
// happens-before closure, no engine, no shared decider code. Seeds are
// the litmus corpus; CI runs these as fuzz smokes (see ci.yml).

// fuzzPair parses and bounds a fuzzer input. The caps keep the
// factorial oracles cheap; maxNodes is per-target (TSO pays for a
// two-event expansion, the polynomial deciders don't).
func fuzzPair(t *testing.T, data []byte, maxNodes int) (*computation.Computation, *observer.Observer) {
	t.Helper()
	named, o, err := observer.ParsePairString(string(data))
	if err != nil {
		t.Skip()
	}
	c := named.Comp
	if c.NumNodes() > maxNodes || c.NumLocs() > 3 {
		t.Skip()
	}
	return c, o
}

func seedLitmus(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "litmus", "*.ccm"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b)
		}
	}
}

func FuzzTSODifferential(f *testing.F) {
	seedLitmus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, o := fuzzPair(t, data, 4)
		got := TSO.Contains(c, o)
		want := oracleTSO(c, o)
		if got != want {
			t.Fatalf("TSO decider %v, oracle %v on\n%s/ %s", got, want, c, o)
		}
	})
}

func FuzzRADifferential(f *testing.F) {
	seedLitmus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, o := fuzzPair(t, data, 5)
		got := RA.Contains(c, o)
		want := oracleRA(c, o)
		if got != want {
			t.Fatalf("RA decider %v, oracle %v on\n%s/ %s", got, want, c, o)
		}
	})
}

func FuzzCausalDifferential(f *testing.F) {
	seedLitmus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, o := fuzzPair(t, data, 5)
		got := CAUSAL.Contains(c, o)
		want := oracleCausal(c, o)
		if got != want {
			t.Fatalf("CAUSAL decider %v, oracle %v on\n%s/ %s", got, want, c, o)
		}
	})
}

// forEachPerm enumerates every permutation of 0..k-1, calling fn until
// it returns false (found). Returns false when fn stopped the walk.
func forEachPerm(k int, fn func(perm []int) bool) bool {
	perm := make([]int, k)
	used := make([]bool, k)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return fn(perm)
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[i] = v
			if !rec(i + 1) {
				return false
			}
			used[v] = false
		}
		return true
	}
	return rec(0)
}

// oracleHB computes hb = (precedence ∪ observation)⁺ by Floyd-Warshall
// over an explicit matrix — independent of buildHB's DFS. ok is false
// when hb is cyclic.
func oracleHB(c *computation.Computation, o *observer.Observer) ([][]bool, bool) {
	n := c.NumNodes()
	hb := make([][]bool, n)
	for i := range hb {
		hb[i] = make([]bool, n)
	}
	for u := 0; u < n; u++ {
		for _, v := range c.Dag().Succs(dag.Node(u)) {
			hb[u][v] = true
		}
	}
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		for u := 0; u < n; u++ {
			if w := o.Get(l, dag.Node(u)); w != observer.Bottom && w != dag.Node(u) {
				hb[w][u] = true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hb[i][k] && hb[k][j] {
					hb[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if hb[i][i] {
			return nil, false
		}
	}
	return hb, true
}

// oracleTSO decides TSO membership by literal store-buffer simulation:
// enumerate every interleaving of the two-event expansion (issues for
// all nodes, commits for writes) and accept when one realizes Φ — the
// event-order constraints and the buffered/memory view rule are
// re-derived here from the model's prose definition, not from TSOSpec.
func oracleTSO(c *computation.Computation, o *observer.Observer) bool {
	n := c.NumNodes()
	cl := c.Closure()
	commitOf := make([]int, n)
	nEvents := n
	for u := 0; u < n; u++ {
		commitOf[u] = -1
		if c.Op(dag.Node(u)).Kind == computation.Write {
			commitOf[u] = nEvents
			nEvents++
		}
	}
	pos := make([]int, nEvents) // ≤ 8 events at the fuzz cap of 4 nodes
	ok := func(perm []int) bool {
		for i, ev := range perm {
			pos[ev] = i
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && cl.Precedes(dag.Node(u), dag.Node(v)) {
					// Issues respect program order; FIFO buffers; a noop
					// is a fence no earlier commit may cross.
					if pos[u] >= pos[v] {
						return false
					}
					if commitOf[u] >= 0 {
						if commitOf[v] >= 0 && pos[commitOf[u]] >= pos[commitOf[v]] {
							return false
						}
						if c.Op(dag.Node(v)).Kind == computation.Noop && pos[commitOf[u]] >= pos[v] {
							return false
						}
					}
				}
			}
			if commitOf[u] >= 0 && pos[u] >= pos[commitOf[u]] {
				return false
			}
		}
		for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
			for u := 0; u < n; u++ {
				node := dag.Node(u)
				if c.Op(node).IsWriteTo(l) {
					continue // a writer forwards its own write
				}
				want := o.Get(l, node)
				// The buffer at u's issue: past l-writes not yet
				// committed. Forwarding is mandatory, and the view must
				// be a C-maximal buffered write.
				buffered := false
				for _, w := range c.Writers(l) {
					if cl.Precedes(w, node) && pos[commitOf[w]] > pos[u] {
						buffered = true
						if want != observer.Bottom && w != want && cl.Precedes(want, w) {
							return false // a newer buffered write shadows want
						}
					}
				}
				if buffered {
					if want == observer.Bottom || !cl.Precedes(want, node) || pos[commitOf[want]] < pos[u] {
						return false
					}
					continue
				}
				// Memory read: the view is the last commit before issue.
				mem := observer.Bottom
				best := -1
				for _, w := range c.Writers(l) {
					if p := pos[commitOf[w]]; p < pos[u] && p > best {
						mem, best = w, p
					}
				}
				if mem != want {
					return false
				}
			}
		}
		return true
	}
	return !forEachPerm(nEvents, func(perm []int) bool { return !ok(perm) })
}

// oracleRA decides release/acquire membership by enumerating, per
// location, every candidate modification order and checking the
// coherence axioms (CoWW, CoWR, CoRW, and the ⊥ rule) directly.
func oracleRA(c *computation.Computation, o *observer.Observer) bool {
	hb, ok := oracleHB(c, o)
	if !ok {
		return false
	}
	n := c.NumNodes()
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		writers := c.Writers(l)
		idx := make(map[dag.Node]int, len(writers))
		for i, w := range writers {
			idx[w] = i
		}
		moOK := func(perm []int) bool {
			mo := make([]int, len(writers)) // writer index -> position
			for p, wi := range perm {
				mo[wi] = p
			}
			for i, w := range writers {
				for j, x := range writers {
					if i != j && hb[w][x] && mo[i] >= mo[j] {
						return false
					}
				}
			}
			for u := 0; u < n; u++ {
				node := dag.Node(u)
				want := o.Get(l, node)
				if want == observer.Bottom {
					for _, w := range writers {
						if hb[w][node] {
							return false
						}
					}
					continue
				}
				wi := idx[want]
				for j, w := range writers {
					if j == wi {
						continue
					}
					if hb[w][node] && mo[j] >= mo[wi] {
						return false // hidden write
					}
					if hb[node][w] && mo[wi] >= mo[j] {
						return false // future write
					}
				}
			}
			return true
		}
		if forEachPerm(len(writers), func(perm []int) bool { return !moOK(perm) }) {
			return false // every candidate mo violated an axiom
		}
	}
	return true
}

// oracleCausal decides causal-memory membership by enumerating, per
// node, every linearization of its causal past and checking that some
// one respects hb with each location's view last among its writes.
func oracleCausal(c *computation.Computation, o *observer.Observer) bool {
	hb, ok := oracleHB(c, o)
	if !ok {
		return false
	}
	n := c.NumNodes()
	for u := 0; u < n; u++ {
		node := dag.Node(u)
		var past []dag.Node
		for v := 0; v < n; v++ {
			if dag.Node(v) == node || hb[v][u] {
				past = append(past, dag.Node(v))
			}
		}
		linOK := func(perm []int) bool {
			for i := range perm {
				for j := i + 1; j < len(perm); j++ {
					if hb[past[perm[j]]][past[perm[i]]] {
						return false
					}
				}
			}
			for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
				if c.Op(node).IsWriteTo(l) {
					continue // own write is hb-maximal in the past
				}
				want := o.Get(l, node)
				lastW := observer.Bottom
				for _, pi := range perm {
					if c.Op(past[pi]).IsWriteTo(l) {
						lastW = past[pi]
					}
				}
				if lastW != want {
					return false
				}
			}
			return true
		}
		if forEachPerm(len(past), func(perm []int) bool { return !linOK(perm) }) {
			return false // no linearization of u's past realizes its view
		}
	}
	return true
}

package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

func modelByName(t *testing.T, name string) Model {
	t.Helper()
	switch name {
	case "SC":
		return SC
	case "LC":
		return LC
	case "NN":
		return NN
	case "NW":
		return NW
	case "WN":
		return WN
	case "WW":
		return WW
	default:
		t.Fatalf("unknown model %q", name)
		return nil
	}
}

// checkFixture machine-checks the memberships a paper figure claims.
func checkFixture(t *testing.T, fx paperfig.Fixture) {
	t.Helper()
	if err := fx.Obs.Validate(fx.Comp); err != nil {
		t.Fatalf("%s: observer invalid: %v", fx.Name, err)
	}
	for _, name := range fx.InModels {
		if !modelByName(t, name).Contains(fx.Comp, fx.Obs) {
			t.Errorf("%s: expected pair IN %s", fx.Name, name)
		}
	}
	for _, name := range fx.OutModels {
		if modelByName(t, name).Contains(fx.Comp, fx.Obs) {
			t.Errorf("%s: expected pair NOT in %s", fx.Name, name)
		}
	}
}

// Figure 2: a pair in WW and NW but not in WN or NN.
func TestFigure2Memberships(t *testing.T) {
	checkFixture(t, paperfig.Figure2())
}

// Figure 3: a pair in WW and WN but not in NW or NN.
func TestFigure3Memberships(t *testing.T) {
	checkFixture(t, paperfig.Figure3())
}

func TestExplainQDagWitness(t *testing.T) {
	fx := paperfig.Figure3()
	v := ExplainQDag(PredNN, fx.Comp, fx.Obs)
	if v == nil {
		t.Fatal("expected an NN violation on Figure 3")
	}
	// The violating triple is A ≺ B ≺ C (nodes 1, 2, 3 of the fixture).
	if v.U != 1 || v.V != 2 || v.W != 3 {
		t.Fatalf("violation = %+v, want (1, 2, 3)", v)
	}
	if ExplainQDag(PredWN, fx.Comp, fx.Obs) != nil {
		t.Fatal("Figure 3 must satisfy WN")
	}
}

func TestBottomTripleViolation(t *testing.T) {
	// Chain u:N -> v:R -> w:R with Φ(v) = A (a parallel write) and
	// Φ(w) = ⊥: the triple (⊥, v, w) violates NN because Φ(⊥) = Φ(w) = ⊥
	// but Φ(v) ≠ ⊥. This exercises the u = ⊥ case of Condition 20.1.
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	u := c.AddNode(computation.N)
	v := c.AddNode(computation.R(0))
	w := c.AddNode(computation.R(0))
	c.MustAddEdge(u, v)
	c.MustAddEdge(v, w)
	o := observer.New(c)
	o.Set(0, v, a)
	if err := o.Validate(c); err != nil {
		t.Fatal(err)
	}
	if NN.Contains(c, o) {
		t.Fatal("NN must catch the ⊥-triple violation")
	}
	viol := ExplainQDag(PredNN, c, o)
	if viol == nil || viol.U != observer.Bottom {
		t.Fatalf("expected a ⊥-rooted violation, got %+v", viol)
	}
	// WN exempts it (⊥ is not a write); NW catches only write middles.
	if !WN.Contains(c, o) {
		t.Fatal("WN must exempt the ⊥-rooted triple")
	}
	if !NW.Contains(c, o) {
		t.Fatal("NW must exempt the read-middle triple")
	}
	_ = u
	_ = w
}

// Theorem 21: NN is stronger than Q-dag consistency for every predicate
// Q — checked over random pairs for the four named predicates and for
// pseudo-random predicates.
func TestTheorem21NNStrongest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if observer.Count(c, 200) >= 200 {
			return true
		}
		// A deterministic pseudo-random predicate derived from the seed.
		randPred := Predicate{
			Name: "RAND",
			Holds: func(_ *computation.Computation, l computation.Loc, u, v, w dag.Node) bool {
				h := uint64(seed) * 2654435761
				h ^= uint64(uint32(l))<<48 ^ uint64(uint32(u))<<32 ^ uint64(uint32(v))<<16 ^ uint64(uint32(w))
				h *= 0x9e3779b97f4a7c15
				return h&1 == 0
			},
		}
		models := []Model{NW, WN, WW, QDag(randPred)}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !NN.Contains(c, o) {
				return true
			}
			for _, m := range models {
				if !m.Contains(c, o) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Strengthening Q weakens the model (remark after Definition 20):
// WW ⊇ WN ⊇ NN and WW ⊇ NW ⊇ NN on random pairs.
func TestQuickQDagMonotoneInPredicate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 1)
		if observer.Count(c, 200) >= 200 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			inNN, inNW, inWN, inWW := NN.Contains(c, o), NW.Contains(c, o), WN.Contains(c, o), WW.Contains(c, o)
			if inNN && (!inNW || !inWN || !inWW) {
				ok = false
				return false
			}
			if (inNW || inWN) && !inWW {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 22: LC ⊆ NN on random pairs.
func TestQuickTheorem22LCSubsetNN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if observer.Count(c, 200) >= 200 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if LC.Contains(c, o) && !NN.Contains(c, o) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

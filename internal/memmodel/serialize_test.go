package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// The polynomial SerializeLoc reduction must agree exactly with the
// exponential topological-sort search on the full observer universe of
// random small computations. This is the correctness anchor for the
// fast LC decision procedure.
func TestQuickSerializeAgainstSearch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 6, 2)
		if observer.Count(c, 400) >= 400 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			fast := LC.Contains(c, o)
			slow := lcContainsBySearch(c, o)
			if fast != slow {
				t.Logf("disagreement on %v / %v: fast=%v slow=%v", c, o, fast, slow)
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The witness sorts produced by SerializeLoc must actually realize the
// pinned last-writer rows.
func TestQuickSerializeWitnessRealizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 7, 2)
		if observer.Count(c, 300) >= 300 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			sorts, in := LCWitness(c, o)
			if !in {
				return true
			}
			for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
				if !c.Dag().IsTopoSort(sorts[l]) {
					ok = false
					return false
				}
				row := observer.LastWriterForLoc(c, sorts[l], l)
				for u := range row {
					if o.Get(l, dag.Node(u)) != row[u] {
						ok = false
						return false
					}
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Partially-constrained serialization: only some nodes pinned.
func TestSerializeLocPartial(t *testing.T) {
	// w1 -> r (pinned to w2, a parallel write): feasible.
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	w2 := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r)
	order, ok := SerializeLoc(c, 0, func(u dag.Node) (dag.Node, bool) {
		if u == r {
			return w2, true
		}
		return 0, false
	})
	if !ok {
		t.Fatal("feasible pin rejected")
	}
	row := observer.LastWriterForLoc(c, order, 0)
	if row[r] != w2 {
		t.Fatalf("witness row = %v", row)
	}
	// Pin r to ⊥: infeasible, w1 precedes it.
	if _, ok := SerializeLoc(c, 0, func(u dag.Node) (dag.Node, bool) {
		if u == r {
			return observer.Bottom, true
		}
		return 0, false
	}); ok {
		t.Fatal("⊥ pin past a preceding write accepted")
	}
}

func TestSerializeLocDegenerate(t *testing.T) {
	// No writes at all: only ⊥ pins are feasible.
	c := computation.New(1)
	r := c.AddNode(computation.R(0))
	if _, ok := SerializeLoc(c, 0, func(dag.Node) (dag.Node, bool) {
		return observer.Bottom, true
	}); !ok {
		t.Fatal("⊥ pin without writes rejected")
	}
	if _, ok := SerializeLoc(c, 0, func(dag.Node) (dag.Node, bool) {
		return r, true // pinned to a non-write
	}); ok {
		t.Fatal("non-write pin accepted")
	}
	// Write pinned away from itself is rejected.
	c2 := computation.New(1)
	w := c2.AddNode(computation.W(0))
	if _, ok := SerializeLoc(c2, 0, func(dag.Node) (dag.Node, bool) {
		return observer.Bottom, true
	}); ok {
		t.Fatal("write pinned to ⊥ accepted")
	}
	_ = w
	// Empty computation.
	if order, ok := SerializeLoc(computation.New(1), 0, func(dag.Node) (dag.Node, bool) {
		return 0, false
	}); !ok || len(order) != 0 {
		t.Fatal("empty computation must serialize trivially")
	}
}

// ExplainLC on the Figure 4 crossing produces the two-write cycle: each
// read forces the other branch's write first.
func TestExplainLCFigure4Cycle(t *testing.T) {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.W(0))
	r1 := c.AddNode(computation.R(0))
	r2 := c.AddNode(computation.R(0))
	c.MustAddEdge(a, r1)
	c.MustAddEdge(b, r2)
	o := observer.New(c)
	o.Set(0, r1, b)
	o.Set(0, r2, a)
	e := ExplainLC(c, o)
	if e == nil || len(e.Cycle) != 2 {
		t.Fatalf("explanation = %v, want a 2-write cycle", e)
	}
	if e.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestExplainLCDirect(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w, r)
	o := observer.New(c) // stale ⊥ read
	e := ExplainLC(c, o)
	if e == nil || e.Direct == "" {
		t.Fatalf("expected a direct contradiction, got %v", e)
	}
	// Membership means no explanation.
	o.Set(0, r, w)
	if e := ExplainLC(c, o); e != nil {
		t.Fatalf("unexpected explanation for an LC pair: %v", e)
	}
	var nilExpl *LCExplanation
	if nilExpl.String() != "in LC" {
		t.Fatal("nil explanation rendering")
	}
}

// Property: ExplainLC is a complete and sound proof system — it finds
// an explanation exactly when LC membership fails.
func TestQuickExplainLCCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 6, 2)
		if observer.Count(c, 250) >= 250 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			inLC := LC.Contains(c, o)
			expl := ExplainLC(c, o)
			if inLC != (expl == nil) {
				t.Logf("mismatch on %v / %v: inLC=%v expl=%v", c, o, inLC, expl)
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Large-scale smoke: LC membership on a few-hundred-node computation
// decided in polynomial time (this hung for the exponential search).
func TestSerializeLocScales(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := dag.SpawnTree(8) // 382 nodes
	all := computation.AllOps(2)
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		ops[i] = all[rng.Intn(len(all))]
	}
	c := computation.MustFrom(g, ops, 2)
	order, err := c.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	o := observer.FromLastWriter(c, order)
	if !LC.Contains(c, o) {
		t.Fatal("last-writer observer must be in LC")
	}
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// This file provides machine checks for the abstract properties of
// Sections 2 and 3: completeness, monotonicity (Definition 5), and the
// local constructibility criteria of Theorems 10 and 12. The properties
// are universally quantified over all computations, so the checks come
// in two flavors: pointwise (at one pair) and universe-wide (driven by
// internal/enum over every computation up to a size bound).

// HasObserver reports whether the model defines at least one observer
// function for c, by exhaustive enumeration of the observer space. A
// model is complete iff this holds for every computation; the
// small-universe experiments quantify it exhaustively.
func HasObserver(m Model, c *computation.Computation) bool {
	found := false
	observer.Enumerate(c, func(o *observer.Observer) bool {
		if m.Contains(c, o) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MonotonicAt reports whether the pair (c, o) respects Definition 5
// locally: if (c, o) ∈ m, then (r, o) ∈ m for every relaxation r of c.
// Pairs outside the model are vacuously monotonic. Note an observer
// function for c is automatically an observer function for every
// relaxation of c, because relaxing only shrinks the precedence
// relation constrained by condition 2.2.
func MonotonicAt(m Model, c *computation.Computation, o *observer.Observer) bool {
	if !m.Contains(c, o) {
		return true
	}
	ok := true
	c.EachRelaxation(func(r *computation.Computation) bool {
		if !m.Contains(r, o) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// CanExtend reports whether the observer o on c extends into m across
// the single-node extension ext of c: whether there is an observer o2
// for ext with (ext, o2) ∈ m and o2|c = o. ext must extend c by exactly
// one node (which is necessarily a sink of ext).
//
// Only the new node's entries are free: the new node adds no precedence
// among old nodes, so o's entries remain valid in ext and o2 must agree
// with them.
func CanExtend(m Model, c *computation.Computation, o *observer.Observer, ext *computation.Computation) bool {
	if ext.NumNodes() != c.NumNodes()+1 || !c.IsPrefixOfExtension(ext) {
		panic("memmodel: CanExtend requires a one-node extension")
	}
	u := dag.Node(c.NumNodes())
	cands := observer.Candidates(ext)
	numLocs := ext.NumLocs()

	// Seed o2 with o's entries and the canonical value for u.
	o2 := observer.New(ext)
	for l := computation.Loc(0); int(l) < numLocs; l++ {
		for v := dag.Node(0); v < u; v++ {
			o2.Set(l, v, o.Get(l, v))
		}
	}

	// Try every assignment of the new node's row.
	var try func(l int) bool
	try = func(l int) bool {
		if l == numLocs {
			return m.Contains(ext, o2)
		}
		for _, v := range cands[l][u] {
			o2.Set(computation.Loc(l), u, v)
			if try(l + 1) {
				return true
			}
		}
		return false
	}
	if numLocs == 0 {
		return m.Contains(ext, o2)
	}
	return try(0)
}

// ConstructibleAtAug checks the Theorem 12 criterion at one pair: for
// every instruction in ops, the observer extends into m across the
// augmented computation aug_o(c). For monotonic models, this criterion
// holding at every pair of the model is equivalent to constructibility.
// Returns the first failing instruction, if any.
func ConstructibleAtAug(m Model, c *computation.Computation, o *observer.Observer, ops []computation.Op) (computation.Op, bool) {
	for _, op := range ops {
		aug, _ := c.Augment(op)
		if !CanExtend(m, c, o, aug) {
			return op, false
		}
	}
	return computation.Op{}, true
}

// ConstructibleAtFull checks the Theorem 10 criterion at one pair: for
// every instruction in ops and every set of predecessors, the observer
// extends into m across the corresponding one-node extension of c.
// This is exact for all models (no monotonicity assumption) but costs a
// factor 2^n over ConstructibleAtAug. Returns a failing extension, if
// any.
func ConstructibleAtFull(m Model, c *computation.Computation, o *observer.Observer, ops []computation.Op) (*computation.Computation, bool) {
	n := c.NumNodes()
	if n > 20 {
		panic("memmodel: ConstructibleAtFull would enumerate more than 2^20 predecessor sets")
	}
	for _, op := range ops {
		for mask := 0; mask < 1<<uint(n); mask++ {
			var preds []dag.Node
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					preds = append(preds, dag.Node(i))
				}
			}
			ext, _ := c.Extend(op, preds)
			if !CanExtend(m, c, o, ext) {
				return ext, false
			}
		}
	}
	return nil, true
}

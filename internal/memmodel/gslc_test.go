package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

// GSLC's lattice position, checked on the paper's fixtures:
// the Figure 4 crossing is GSLC but not LC (the two "location
// consistencies" disagree); Figure 3 is GSLC but not NW; the
// write-forgetting pair is WN but not GSLC.
func TestGSLCFixtures(t *testing.T) {
	fx4 := paperfig.Figure4()
	if !GSLC.Contains(fx4.Prefix, fx4.PrefixObs) {
		t.Fatal("Figure 4 crossing must be GSLC (concurrent writes observable)")
	}
	if LC.Contains(fx4.Prefix, fx4.PrefixObs) {
		t.Fatal("... while the paper's LC rejects it")
	}

	fx3 := paperfig.Figure3()
	if !GSLC.Contains(fx3.Comp, fx3.Obs) {
		t.Fatal("Figure 3 must be GSLC")
	}
	if NW.Contains(fx3.Comp, fx3.Obs) {
		t.Fatal("Figure 3 must not be NW (separates NW ⊊ GSLC)")
	}

	// The forgetting pair: W -> R with the read observing ⊥.
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w, r)
	o := observer.New(c)
	if GSLC.Contains(c, o) {
		t.Fatal("a ⊥ read past a preceding write must violate GSLC")
	}
	if !WN.Contains(c, o) {
		t.Fatal("... while WN tolerates it (separates GSLC vs WN)")
	}
	_ = w
	_ = r
}

// Exhaustive lattice relations over the ≤4-node universe:
// NW ⊊ GSLC ⊊ WW, GSLC incomparable with WN, LC ⊊ GSLC.
func TestGSLCLatticeExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("4-node sweep skipped in -short mode")
	}
	nwOnly, gslcOnlyVsNW := 0, 0
	gslcOnly, wwOnly := 0, 0
	gslcVsWN, wnVsGSLC := 0, 0
	lcOutside := 0
	sweep(t, 4, 1, func(c *computation.Computation, o *observer.Observer) {
		inGSLC := GSLC.Contains(c, o)
		if NW.Contains(c, o) && !inGSLC {
			nwOnly++
		}
		if inGSLC && !NW.Contains(c, o) {
			gslcOnlyVsNW++
		}
		if inGSLC && !WW.Contains(c, o) {
			gslcOnly++
		}
		if WW.Contains(c, o) && !inGSLC {
			wwOnly++
		}
		if inGSLC && !WN.Contains(c, o) {
			gslcVsWN++
		}
		if WN.Contains(c, o) && !inGSLC {
			wnVsGSLC++
		}
		if LC.Contains(c, o) && !inGSLC {
			lcOutside++
		}
	})
	if nwOnly != 0 {
		t.Errorf("NW ⊆ GSLC violated %d times", nwOnly)
	}
	if gslcOnlyVsNW == 0 {
		t.Error("GSLC = NW: expected strictness witnesses")
	}
	if gslcOnly != 0 {
		t.Errorf("GSLC ⊆ WW violated %d times", gslcOnly)
	}
	if wwOnly == 0 {
		t.Error("GSLC = WW: expected strictness witnesses")
	}
	if gslcVsWN == 0 || wnVsGSLC == 0 {
		t.Errorf("GSLC vs WN should be incomparable: %d / %d", gslcVsWN, wnVsGSLC)
	}
	if lcOutside != 0 {
		t.Errorf("LC ⊆ GSLC violated %d times", lcOutside)
	}
}

func sweep(t *testing.T, maxNodes, locs int, fn func(*computation.Computation, *observer.Observer)) {
	t.Helper()
	for _, c := range smallUniverseN(maxNodes, locs) {
		observer.Enumerate(c, func(o *observer.Observer) bool {
			fn(c, o)
			return true
		})
	}
}

func smallUniverseN(maxNodes, locs int) []*computation.Computation {
	var out []*computation.Computation
	ops := computation.AllOps(locs)
	for n := 0; n <= maxNodes; n++ {
		dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
			labels := make([]computation.Op, n)
			var rec func(i int)
			rec = func(i int) {
				if i == n {
					out = append(out, computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), locs))
					return
				}
				for _, op := range ops {
					labels[i] = op
					rec(i + 1)
				}
			}
			rec(0)
			return true
		})
	}
	return out
}

// GSLC is monotonic and constructible (it is a local condition), so an
// online memory can maintain it exactly — unlike NN.
func TestGSLCMonotonicConstructible(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		c := randomComputation(rng, 5, 2)
		ops := computation.AllOps(c.NumLocs())
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !GSLC.Contains(c, o) {
				return true
			}
			if !MonotonicAt(GSLC, c, o) {
				t.Fatalf("GSLC not monotonic at %v / %v", c, o)
			}
			if op, ok := ConstructibleAtAug(GSLC, c, o.Clone(), ops); !ok {
				t.Fatalf("GSLC failed to extend by %s at %v / %v", op, c, o)
			}
			return observer.Count(c, 50) < 50 // cap the inner sweep
		})
	}
}

// Property: NN ⊆ GSLC on random pairs (skipping a write on a path is an
// NN violation too).
func TestQuickNNSubsetGSLC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if observer.Count(c, 200) >= 200 {
			return true
		}
		ok := true
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if NN.Contains(c, o) && !GSLC.Contains(c, o) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Amnesiac is the memory model in which no node ever observes another
// node's write: writes observe themselves (as condition 2.3 forces) and
// every other entry is ⊥. Each computation has exactly one amnesiac
// observer — the canonical minimal observer of observer.New.
//
// Amnesiac is a degenerate memory (reads never return written values),
// but it is theoretically sharp: it is constructible (restricting the
// amnesiac observer of any computation to a prefix yields the prefix's
// amnesiac observer), and it is stronger than WN-dag consistency —
// a WN violation needs a node w ≠ u with Φ(l, w) = u for a write u,
// which the amnesiac observer never produces.
//
// Consequence (a small result the paper leaves open in Section 7):
// Amnesiac ⊆ WN* by Theorem 9.3, and the amnesiac pair on the two-node
// computation W(l) → N is not in LC (the no-op must observe the
// preceding write under any serialization). Hence LC ⊊ WN* — the
// inclusion LC ⊆ WN* of Figure 1 is strict. The argument fails for NW*:
// the triple ⊥ ≺ v ≺ w with a write v between two ⊥-observers violates
// NW, so Amnesiac ⊄ NW, and the strictness of LC ⊆ NW* remains open.
// The tests machine-check every step of this argument.
var Amnesiac Model = amnesiacModel{}

type amnesiacModel struct{}

func (amnesiacModel) Name() string { return "AMNESIAC" }

func (amnesiacModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
			want := observer.Bottom
			if c.Op(u).IsWriteTo(l) {
				want = u
			}
			if o.Get(l, u) != want {
				return false
			}
		}
	}
	return true
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// This file implements the pooled single-pass membership decider the
// symmetry-reduced lattice sweep runs per pair: one 6-bit pattern
// holding membership of (c, o) in every Figure-1 model at once,
// computed without the per-pair allocations (candidate slices, write
// index maps, witness sorts, engine problems) the individual Contains
// calls pay. On the exhaustive sweeps this replaces 14 independent
// model decisions per pair (7 lattice edges × 2) with one fused scan.
//
// Two structural facts keep it exact rather than heuristic:
//
//   - SC ⊆ LC holds by definition, not by theorem: an SC witness sort
//     restricted to any one location witnesses that location's LC
//     serialization. A pair out of LC is therefore out of SC with no
//     search. (The converse inclusion is what the experiments check;
//     nothing here assumes it.)
//
//   - With a single location the SC and LC membership questions are
//     literally the same quantifier ("one sort realizing Φ at every
//     location" = "one sort realizing Φ at the only location"), so
//     L=1 sweeps — the big ones — never touch the exponential engine.
//     With L ≥ 2 and the pair in LC, SC falls back to the engine.
//
// The decider assumes o is a valid observer for c (observer.Enumerate
// yields only valid observers; Validate costs more than the rest of
// the scan combined). The differential tests pin the pattern bits to
// the six Contains implementations over the full n ≤ 4 universe.

// Pattern bits, in ModelNames() order. The hardware/language models
// (TSO, RA, CAUSAL) extend the original six Figure-1 bits without
// renumbering them, so persisted counts stay comparable.
const (
	PatternSC uint16 = 1 << iota
	PatternLC
	PatternNN
	PatternNW
	PatternWN
	PatternWW
	PatternTSO
	PatternRA
	PatternCAUSAL
	// PatternAll is the pattern of a pair in every Figure-1 model (the
	// paper's lattice; the extension bits are deliberately excluded so
	// Figure-1 census comparisons keep their meaning).
	PatternAll = PatternSC | PatternLC | PatternNN | PatternNW | PatternWN | PatternWW
)

// PatternModels lists the decidable models in pattern bit order,
// aligned with ModelNames.
func PatternModels() []Model { return []Model{SC, LC, NN, NW, WN, WW, TSO, RA, CAUSAL} }

// PatternDecider computes Figure-1 membership patterns for the
// observers of one computation at a time. Reset once per computation,
// then Pattern once per observer; buffers are reused across both. Not
// safe for concurrent use.
type PatternDecider struct {
	c       *computation.Computation
	cl      *dag.Closure
	n       int
	numLocs int
	writers [][]dag.Node // per location, cached from c.Writers
	// SC engine options for the L ≥ 2 fallback.
	opts SearchOptions

	// Location-consistency scratch, sized on Reset.
	widx  []int32   // node -> dense writer index at the current location
	adj   [][]int32 // write-order constraint digraph
	color []int8
}

// NewPatternDecider returns a decider with default engine options for
// the L ≥ 2 SC fallback.
func NewPatternDecider() *PatternDecider { return &PatternDecider{} }

// NewPatternDeciderOpts sets the engine options used when an SC search
// is unavoidable (L ≥ 2 pairs inside LC).
func NewPatternDeciderOpts(opts SearchOptions) *PatternDecider {
	return &PatternDecider{opts: opts}
}

// Reset points the decider at a computation.
func (pd *PatternDecider) Reset(c *computation.Computation) {
	pd.c = c
	pd.cl = c.Closure()
	pd.n = c.NumNodes()
	pd.numLocs = c.NumLocs()
	if cap(pd.writers) < pd.numLocs {
		pd.writers = make([][]dag.Node, pd.numLocs)
	}
	pd.writers = pd.writers[:pd.numLocs]
	maxW := 0
	for l := 0; l < pd.numLocs; l++ {
		pd.writers[l] = c.Writers(computation.Loc(l))
		if len(pd.writers[l]) > maxW {
			maxW = len(pd.writers[l])
		}
	}
	if cap(pd.widx) < pd.n {
		pd.widx = make([]int32, pd.n)
	}
	pd.widx = pd.widx[:pd.n]
	if cap(pd.adj) < maxW {
		pd.adj = append(pd.adj[:cap(pd.adj)], make([][]int32, maxW-cap(pd.adj))...)
	}
	pd.adj = pd.adj[:maxW]
	if cap(pd.color) < maxW {
		pd.color = make([]int8, maxW)
	}
	pd.color = pd.color[:maxW]
}

// Pattern returns the membership pattern of (c, o) for a valid
// observer o of the Reset computation.
func (pd *PatternDecider) Pattern(o *observer.Observer) uint16 {
	pattern := pd.qdagBits(o)
	sc := false
	if pd.lcOK(o) {
		pattern |= PatternLC
		if pd.numLocs <= 1 {
			sc = true // one location: SC and LC coincide
		} else if searchLastWriterOpts(pd.c, o, allLocs(pd.c), pd.opts).Found {
			sc = true
		}
	}
	if sc {
		pattern |= PatternSC
	}
	// The extension models reuse the shared happens-before relation;
	// SC ⊆ TSO spares the engine when the pair is already known in.
	if hb, ok := buildHB(pd.c, o); ok {
		if raOK(pd.c, o, hb) {
			pattern |= PatternRA
		}
		if causalOK(pd.c, o, hb) {
			pattern |= PatternCAUSAL
		}
		if sc {
			pattern |= PatternTSO
		} else if spec, feasible := TSOSpec(pd.c, o); feasible {
			if search.Run(spec, pd.opts).Found {
				pattern |= PatternTSO
			}
		}
	}
	return pattern
}

// qdagBits evaluates all four Q-dag consistency predicates in one scan
// over the violation triples u ≺ v ≺ w, Φ(l,u) = Φ(l,w) ≠ Φ(l,v):
// every such triple violates NN; it violates NW/WN/WW exactly when the
// corresponding side conditions (v resp. u writes l) hold. The scan
// stops once all four are violated.
func (pd *PatternDecider) qdagBits(o *observer.Observer) uint16 {
	const qAll = PatternNN | PatternNW | PatternWN | PatternWW
	var viol uint16
	for l := computation.Loc(0); int(l) < pd.numLocs; l++ {
		for vi := 0; vi < pd.n && viol != qAll; vi++ {
			v := dag.Node(vi)
			phiV := o.Get(l, v)
			vWrites := pd.c.Op(v).IsWriteTo(l)
			// A triple at this v can only add these bits:
			vAdds := PatternNN | PatternWN
			if vWrites {
				vAdds |= PatternNW | PatternWW
			}
			if vAdds&^viol == 0 {
				continue
			}
			// u = ⊥ first, then the strict ancestors of v. A ⊥ triple
			// can settle NN/NW but never WN/WW, so the ancestors still
			// run when a writer u could add bits.
			pd.scanW(o, l, observer.Bottom, v, phiV, false, &viol)
			if vAdds&^viol == 0 {
				continue
			}
			anc := pd.cl.Ancestors(v)
			anc.ForEach(func(ui int) bool {
				u := dag.Node(ui)
				uWrites := pd.c.Op(u).IsWriteTo(l)
				// This u can only add NN (+NW if vWrites) unless it
				// writes; skip once those are settled.
				uAdds := PatternNN
				if vWrites {
					uAdds |= PatternNW
				}
				if uWrites {
					uAdds |= PatternWN
					if vWrites {
						uAdds |= PatternWW
					}
				}
				if uAdds&^viol == 0 {
					return true
				}
				pd.scanW(o, l, u, v, phiV, uWrites, &viol)
				return viol != qAll
			})
		}
	}
	return qAll &^ viol
}

// scanW looks for a descendant w of v with Φ(l,w) = Φ(l,u) ≠ Φ(l,v)
// and accumulates the violated predicates. Reports whether the (u, v)
// pair is settled (a violating w was found).
func (pd *PatternDecider) scanW(o *observer.Observer, l computation.Loc, u, v dag.Node, phiV dag.Node, uWrites bool, viol *uint16) bool {
	phiU := o.Get(l, u)
	if phiU == phiV {
		return false
	}
	found := false
	pd.cl.Descendants(v).ForEach(func(wi int) bool {
		if o.Get(l, dag.Node(wi)) != phiU {
			return true
		}
		found = true
		return false
	})
	if !found {
		return false
	}
	*viol |= PatternNN
	vWrites := pd.c.Op(v).IsWriteTo(l)
	if vWrites {
		*viol |= PatternNW
	}
	if uWrites {
		*viol |= PatternWN
		if vWrites {
			*viol |= PatternWW
		}
	}
	return true
}

// lcOK is the feasibility core of the LC decider: for every location,
// the observer's pins admit a serialization. It mirrors SerializeLoc's
// reduction — direct contradictions, then acyclicity of the forced
// write-order digraph — without materializing the witness sort or any
// per-call maps.
func (pd *PatternDecider) lcOK(o *observer.Observer) bool {
	for l := computation.Loc(0); int(l) < pd.numLocs; l++ {
		if !pd.lcLocOK(o, l) {
			return false
		}
	}
	return true
}

func (pd *PatternDecider) lcLocOK(o *observer.Observer, l computation.Loc) bool {
	writers := pd.writers[l]
	k := len(writers)
	for i := range pd.widx {
		pd.widx[i] = -1
	}
	for i, w := range writers {
		pd.widx[w] = int32(i)
	}
	// Direct contradictions. Every node is pinned (writes to l to
	// themselves, everything else to Φ(l,u)), so a node observing ⊥
	// fails the moment any ancestor observes a write — in particular
	// when a writer precedes it — and a node may not observe a write it
	// precedes ("the future").
	for ui := 0; ui < pd.n; ui++ {
		u := dag.Node(ui)
		if pd.c.Op(u).IsWriteTo(l) {
			continue
		}
		want := o.Get(l, u)
		if want == observer.Bottom {
			bad := false
			pd.cl.Ancestors(u).ForEach(func(ai int) bool {
				if o.Get(l, dag.Node(ai)) != observer.Bottom {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return false
			}
			continue
		}
		if pd.cl.Precedes(u, want) {
			return false
		}
	}
	if k <= 1 {
		return true // at most one write: no order left to constrain
	}
	// Forced write-order digraph over the writers (see SerializeLoc's
	// derivation): closure order among writers; for a node pinned to
	// wi, writers preceding the node land before wi and writers
	// following it land after; dag order between pinned nodes orders
	// their pins.
	adj := pd.adj[:k]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	addEdge := func(a, b int32) {
		if a != b {
			adj[a] = append(adj[a], b)
		}
	}
	for i, w := range writers {
		for j, x := range writers {
			if i != j && pd.cl.Precedes(w, x) {
				addEdge(int32(i), int32(j))
			}
		}
	}
	for ui := 0; ui < pd.n; ui++ {
		u := dag.Node(ui)
		if pd.c.Op(u).IsWriteTo(l) {
			continue
		}
		want := o.Get(l, u)
		if want == observer.Bottom {
			continue
		}
		wi := pd.widx[want]
		for j, x := range writers {
			if int32(j) == wi {
				continue
			}
			if pd.cl.Precedes(x, u) {
				addEdge(int32(j), wi)
			}
			if pd.cl.Precedes(u, x) {
				addEdge(wi, int32(j))
			}
		}
		// u ≺ v with v pinned to a write: wi at-or-before Φ(l,v).
		pd.cl.Descendants(u).ForEach(func(vi int) bool {
			v := dag.Node(vi)
			if pd.c.Op(v).IsWriteTo(l) {
				return true // covered by the writer loops above
			}
			if wv := o.Get(l, v); wv != observer.Bottom {
				addEdge(wi, pd.widx[wv])
			}
			return true
		})
	}
	// Cycle check: white/gray/black DFS.
	color := pd.color[:k]
	for i := range color {
		color[i] = 0
	}
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		color[v] = 1
		for _, w := range adj[v] {
			switch color[w] {
			case 0:
				if !dfs(w) {
					return false
				}
			case 1:
				return false
			}
		}
		color[v] = 2
		return true
	}
	for i := int32(0); int(i) < k; i++ {
		if color[i] == 0 && !dfs(i) {
			return false
		}
	}
	return true
}

package memmodel

import (
	"fmt"
	"sort"

	"repro/internal/computation"
	"repro/internal/observer"
)

// This file computes the constructible version Δ* (Definition 8) of a
// model over a bounded universe of computations, as the greatest
// fixpoint of single-augmentation extendability:
//
//	prune (C, Φ) whenever some instruction o has no Φ' with
//	(aug_o(C), Φ') surviving and Φ'|_C = Φ.
//
// Theorem 12 justifies using augmentations only: the models of interest
// are monotonic, and for monotonic models extendability to aug_o(C)
// implies extendability to every extension by o.
//
// Boundary effect: pairs at the maximum universe size have no
// augmentation inside the universe and are never pruned, so the
// surviving set S over-approximates Δ* near the boundary. Since pruning
// information flows one size level per augmentation, S is exact only in
// the interior; how deep depends on the model. The experiments exploit
// the sandwich LC ⊆ NN* ⊆ S: whenever S(size ≤ s) = LC(size ≤ s), the
// equality NN* = LC is *proved* for computations of at most s nodes.

// PairSet is a finite memory model represented extensionally: for each
// computation of a universe, the set of surviving observer functions.
// It implements Model; Contains returns false for computations outside
// the universe, so use it only on universe members.
type PairSet struct {
	name    string
	maxN    int
	entries map[string]*pairEntry // key: canonical computation string
}

type pairEntry struct {
	c     *computation.Computation
	alive map[string]*observer.Observer // key: observer.Key()
}

// Name returns the set's name, e.g. "NN*".
func (s *PairSet) Name() string { return s.name }

// MaxNodes returns the universe size bound.
func (s *PairSet) MaxNodes() int { return s.maxN }

// Contains reports membership. Computations outside the universe are
// reported as absent.
func (s *PairSet) Contains(c *computation.Computation, o *observer.Observer) bool {
	e, ok := s.entries[c.String()]
	if !ok {
		return false
	}
	_, alive := e.alive[o.Key()]
	return alive
}

// NumPairs returns the number of surviving pairs, optionally restricted
// to computations with at most maxNodes nodes (pass < 0 for all).
func (s *PairSet) NumPairs(maxNodes int) int {
	total := 0
	for _, e := range s.entries {
		if maxNodes >= 0 && e.c.NumNodes() > maxNodes {
			continue
		}
		total += len(e.alive)
	}
	return total
}

// EachPair visits surviving pairs in a deterministic order (sorted by
// computation key). Stops early if fn returns false.
func (s *PairSet) EachPair(fn func(c *computation.Computation, o *observer.Observer) bool) {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.entries[k]
		okeys := make([]string, 0, len(e.alive))
		for ok := range e.alive {
			okeys = append(okeys, ok)
		}
		sort.Strings(okeys)
		for _, ok := range okeys {
			if !fn(e.c, e.alive[ok]) {
				return
			}
		}
	}
}

// ConstructibleVersion computes the greatest fixpoint described above
// for model m over the given universe of computations (which must be
// closed under augmentation below the maximum size — internal/enum
// universes are). ops is the instruction set O to quantify over,
// typically computation.AllOps(numLocs). The returned PairSet is named
// m.Name() + "*".
func ConstructibleVersion(m Model, universe []*computation.Computation, ops []computation.Op) *PairSet {
	s := &PairSet{name: m.Name() + "*", entries: make(map[string]*pairEntry, len(universe))}
	for _, c := range universe {
		if c.NumNodes() > s.maxN {
			s.maxN = c.NumNodes()
		}
		e := &pairEntry{c: c, alive: make(map[string]*observer.Observer)}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if m.Contains(c, o) {
				e.alive[o.Key()] = o.Clone()
			}
			return true
		})
		s.entries[c.String()] = e
	}

	// Precompute, for each interior computation, its augmentations'
	// entries (shared across rounds).
	type augmented struct {
		entry *pairEntry
	}
	augs := make(map[string][]augmented)
	for key, e := range s.entries {
		if e.c.NumNodes() >= s.maxN {
			continue
		}
		for _, op := range ops {
			aug, _ := e.c.Augment(op)
			ae, ok := s.entries[aug.String()]
			if !ok {
				panic(fmt.Sprintf("memmodel: universe not closed under augmentation: %s missing", aug))
			}
			augs[key] = append(augs[key], augmented{entry: ae})
		}
	}

	for {
		changed := false
		for key, e := range s.entries {
			as, interior := augs[key]
			if !interior {
				continue
			}
			var dead []string
			for okey, o := range e.alive {
				for _, a := range as {
					if !anyExtension(a.entry, o) {
						dead = append(dead, okey)
						break
					}
				}
			}
			for _, okey := range dead {
				delete(e.alive, okey)
				changed = true
			}
		}
		if !changed {
			return s
		}
	}
}

// anyExtension reports whether some surviving observer of the
// augmentation entry restricts to o.
func anyExtension(ae *pairEntry, o *observer.Observer) bool {
	for _, o2 := range ae.alive {
		if o2.Extends(o) {
			return true
		}
	}
	return false
}

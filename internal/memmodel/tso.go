package memmodel

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// TSO is total store order, the SPARC/x86 store-buffer model, lifted to
// the computation-centric setting (after Kavanagh & Brookes'
// denotational SPARC TSO). Each write issues in program order, sits in
// its issuer's store buffer, and commits to memory later; buffers drain
// in FIFO order and a node reads its own buffered writes (store
// forwarding). The membership question is encoded over a two-event
// expansion of C:
//
//	every node u has an issue event (reads and noops execute there);
//	every write additionally has a commit event, constrained after
//	its issue, after the commits of program-order-earlier writes
//	(FIFO), and before any program-order-later noop (a noop relaxes
//	nothing, so it is a full fence: mfence).
//
// (C, Φ) ∈ TSO iff some interleaving T of the events realizes Φ with
// every view sampled at its node's issue event: when the buffer — the
// C-past writes to l whose commits are still pending — is non-empty,
// the view is a C-maximal buffered write (forwarding, mandatory); when
// it is empty, the view is the last committed write to l (memory). An
// observation of a write outside the node's C-past is a read from
// memory, so that write's commit event is ordered before the observer's
// issue event in T — exactly the real-time ordering a store-buffer
// machine exhibits. Because C is a dag rather than a set of threads,
// "the buffer of u" means all uncommitted writes in u's C-past, and a
// view may be any C-maximal one when several are incomparable.
//
// SC ⊆ TSO: an SC witness commits every write immediately after its
// issue, so buffers are always empty and every view is memory. The
// strictness witnesses (SB ∈ TSO ∖ SC) live in testdata/litmus and are
// machine-checked by cmd/lattice.
var TSO Model = tsoModel{}

type tsoModel struct{ opts SearchOptions }

func (tsoModel) Name() string { return "TSO" }

func (m tsoModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	_, ok, _ := TSOWitnessOpts(c, o, m.opts)
	return ok
}

// TSOOpts returns the TSO decider with explicit engine options. With a
// budget set, Contains can report false on exhaustion without the
// instance being decided; use TSODecide to distinguish.
func TSOOpts(opts SearchOptions) Model { return tsoModel{opts: opts} }

// TSOWitness returns a memory order realizing Φ under TSO, if one
// exists: the original nodes sequenced by when they take effect —
// reads and noops at issue, writes at commit.
func TSOWitness(c *computation.Computation, o *observer.Observer) ([]dag.Node, bool) {
	order, ok, _ := TSOWitnessOpts(c, o, SearchOptions{})
	return order, ok
}

// TSOWitnessOpts is TSOWitness with engine options and statistics.
func TSOWitnessOpts(c *computation.Computation, o *observer.Observer, opts SearchOptions) ([]dag.Node, bool, SearchStats) {
	order, v, stats := TSODecide(context.Background(), c, o, opts)
	return order, v.In(), stats
}

// TSODecide decides (c, o) ∈ TSO under ctx. The search runs on the
// two-event expansion with the forwarding constraints expressed through
// the engine's placement gate; memoization and root sharding work
// unchanged (the gate is a pure function of the memo key), so the
// fleet can shard TSO like any engine-backed model. The returned order
// is the memory order over the original nodes (see TSOWitness).
func TSODecide(ctx context.Context, c *computation.Computation, o *observer.Observer, opts SearchOptions) ([]dag.Node, Verdict, SearchStats) {
	if o.Validate(c) != nil {
		return nil, search.VerdictOut(), SearchStats{}
	}
	spec, feasible := TSOSpec(c, o)
	if !feasible {
		return nil, search.VerdictOut(), SearchStats{}
	}
	res := search.RunContext(ctx, spec, opts)
	order := res.Order
	if res.Found {
		n := c.NumNodes()
		// The memory order over the original nodes: non-writes at
		// their (only) event, writes at their commit event.
		mapped := make([]dag.Node, 0, n)
		writes := tsoEventWrites(c)
		for _, ev := range res.Order {
			if int(ev) < n {
				if c.Op(ev).Kind != computation.Write {
					mapped = append(mapped, ev)
				}
			} else {
				mapped = append(mapped, writes[int(ev)-n])
			}
		}
		order = mapped
	}
	return order, res.Verdict(), res.Stats
}

// tsoEventWrites lists the write nodes in commit-event order: commit
// events are numbered n, n+1, ... over the writes in node order.
func tsoEventWrites(c *computation.Computation) []dag.Node {
	var ws []dag.Node
	for u := 0; u < c.NumNodes(); u++ {
		if c.Op(dag.Node(u)).Kind == computation.Write {
			ws = append(ws, dag.Node(u))
		}
	}
	return ws
}

// tsoGate is one view constraint at a node's issue event: the buffer
// for slot is the commit events in lwCommits still unplaced; while any
// is pending the view must be want, buffered and unshadowed
// (wantCommit is want's commit event, -1 when want is outside the
// C-past); once the buffer drains the view is memory, last[slot] —
// which tracks commit events, the slot writers.
type tsoGate struct {
	slot       int32
	wantCommit int32
	wantPast   bool // want is in the node's C-past (forwardable)
	lwCommits  []int32
}

// TSOSpec compiles the TSO membership question into an engine Spec on
// the two-event expansion of c: events 0..n-1 are the original nodes'
// issue events (reads and noops take effect there), and each write
// additionally owns a commit event ≥ n, the sole writer of its
// location slot. feasible is false when a constraint is statically
// unsatisfiable — a view causality cycle, a ⊥ view past a
// program-order write, or a view shadowed by a program-order-later
// write — and the pair is then definitively out.
func TSOSpec(c *computation.Computation, o *observer.Observer) (search.Spec, bool) {
	n := c.NumNodes()
	cl := c.Closure()
	numLocs := c.NumLocs()

	// View causality must be acyclic: every cross-past observation is
	// a real-time ordering (the observed write committed before the
	// observer sampled it), so a cycle in precedence ∪ observation has
	// no execution — and its image in the event dag below would be
	// cyclic too.
	if _, ok := buildHB(c, o); !ok {
		return search.Spec{}, false
	}

	// Commit event ids: n + rank of the write among the writes.
	commitOf := make([]int32, n)
	nEvents := n
	for u := 0; u < n; u++ {
		commitOf[u] = -1
		if c.Op(dag.Node(u)).Kind == computation.Write {
			commitOf[u] = int32(nEvents)
			nEvents++
		}
	}

	rd := dag.New(nEvents)
	for u := 0; u < n; u++ {
		node := dag.Node(u)
		// Issues respect program order in full.
		cl.Descendants(node).ForEach(func(vi int) bool {
			rd.MustAddEdge(node, dag.Node(vi))
			return true
		})
		if cu := commitOf[u]; cu >= 0 {
			// A write commits after it issues; buffers drain FIFO; a
			// program-order-later noop is a fence the commit cannot
			// cross.
			rd.MustAddEdge(node, dag.Node(cu))
			cl.Descendants(node).ForEach(func(vi int) bool {
				switch c.Op(dag.Node(vi)).Kind {
				case computation.Write:
					rd.MustAddEdge(dag.Node(cu), dag.Node(commitOf[vi]))
				case computation.Noop:
					rd.MustAddEdge(dag.Node(cu), dag.Node(vi))
				}
				return true
			})
		}
	}
	// A view of a write outside the node's C-past is a read from
	// memory: that commit precedes this issue. (Inside the C-past the
	// buffer machinery below owns the constraint.) These edges are
	// images of happens-before pairs, so the hb check above keeps rd
	// acyclic.
	for l := computation.Loc(0); int(l) < numLocs; l++ {
		for u := 0; u < n; u++ {
			node := dag.Node(u)
			w := o.Get(l, node)
			if w == observer.Bottom || w == node || cl.Precedes(w, node) {
				continue
			}
			rd.MustAddEdge(dag.Node(commitOf[w]), node)
		}
	}

	writers := make([][]dag.Node, numLocs)
	for l := 0; l < numLocs; l++ {
		writers[l] = c.Writers(computation.Loc(l))
	}

	gates := make([][]tsoGate, nEvents) // commit events carry no gates
	vals := make([]dag.Node, numLocs*nEvents)
	// byGate marks (slot, issue event) pairs whose constraint lives in
	// the gate; commit events and self-observations are never
	// constrained through Allowed either.
	byGate := make([]bool, numLocs*nEvents)
	for l := 0; l < numLocs; l++ {
		loc := computation.Loc(l)
		for u := 0; u < n; u++ {
			node := dag.Node(u)
			if c.Op(node).IsWriteTo(loc) {
				continue // self-observation, trivial
			}
			want := o.Get(loc, node)
			var lw []dag.Node
			for _, w := range writers[l] {
				if cl.Precedes(w, node) {
					lw = append(lw, w)
				}
			}
			if len(lw) == 0 {
				continue // engine-native singleton constraint on the issue event
			}
			if want == observer.Bottom {
				// A program-order-earlier write is always visible —
				// buffered or committed — so ⊥ is unobservable.
				return search.Spec{}, false
			}
			// A write program-order-later than want and in the C-past
			// shadows it permanently: while buffered it is the newer
			// buffer entry, and FIFO commits it after want, so memory
			// never ends at want either.
			for _, w := range lw {
				if w != want && cl.Precedes(want, w) {
					return search.Spec{}, false
				}
			}
			g := tsoGate{slot: int32(l), wantCommit: commitOf[want]}
			for _, w := range lw {
				g.lwCommits = append(g.lwCommits, commitOf[w])
				if w == want {
					g.wantPast = true
				}
			}
			byGate[l*nEvents+u] = true
			gates[u] = append(gates[u], g)
		}
	}

	slotOfEvent := make([]int, nEvents)
	for ev := range slotOfEvent {
		slotOfEvent[ev] = -1
	}
	for u := 0; u < n; u++ {
		if cu := commitOf[u]; cu >= 0 {
			slotOfEvent[cu] = int(c.Op(dag.Node(u)).Loc)
		}
	}

	return search.Spec{
		Dag:       rd,
		Closure:   dag.MustClosure(rd),
		NumSlots:  numLocs,
		WriteSlot: func(u dag.Node) int { return slotOfEvent[u] },
		Allowed: func(s int, u dag.Node) ([]dag.Node, bool) {
			if int(u) >= n || byGate[s*nEvents+int(u)] {
				return nil, false
			}
			node := dag.Node(u)
			if c.Op(node).IsWriteTo(computation.Loc(s)) {
				return nil, false // self-observation
			}
			i := s*nEvents + int(u)
			vals[i] = o.Get(computation.Loc(s), node)
			if vals[i] != observer.Bottom {
				// The constraint tracks commit events: the slot writer
				// is the write's commit, not its issue.
				vals[i] = dag.Node(commitOf[vals[i]])
			}
			return vals[i : i+1 : i+1], true
		},
		Gate: func(u dag.Node, last []dag.Node, placed *bitset.Set) bool {
			for _, g := range gates[u] {
				buffered := false
				for _, ce := range g.lwCommits {
					if !placed.Contains(int(ce)) {
						buffered = true
						break
					}
				}
				if buffered {
					// Forwarding is mandatory: the view is a buffered
					// write, so want must be in the buffer. Shadowing
					// was ruled out statically.
					if !g.wantPast || placed.Contains(int(g.wantCommit)) {
						return false
					}
				} else if last[g.slot] != dag.Node(g.wantCommit) {
					return false
				}
			}
			return true
		},
	}, true
}

package memmodel

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// GSLC is a computation-centric rendering of Gao and Sarkar's
// "location consistency" [GS95] — the other model of that name, whose
// collision with Definition 18 the paper discusses in Section 7.
//
// In [GS95] a read may return the value of any write in the "most
// recent" frontier of its causal past: writes that precede the read
// and are not superseded by a later write that also precedes it, plus
// writes concurrent with the read. Rendered with observer functions:
//
//	(C, Φ) ∈ GSLC iff for all l and u: there is no write x to l with
//	Φ(l, u) ≺ x ≺ u  (with the ⊥ ≺ x convention, so Φ(l, u) = ⊥
//	additionally requires that no write to l precedes u at all).
//
// GSLC is a per-node ("local") condition with no coupling along paths,
// which makes it monotonic and constructible — a fresh node can always
// observe a maximal write of its past. Its place in Figure 1's lattice,
// machine-checked by the tests and the census:
//
//	NN ⊊ NW ⊊ GSLC ⊊ WW,   GSLC incomparable with WN.
//
// In particular GSLC is strictly weaker than the paper's LC: the
// Figure 4 crossing pair is GSLC (each read observes a concurrent
// write) but not LC. The two "location consistencies" agree only on
// serializable behaviors, quantifying the Section 7 warning that the
// name means two different things.
var GSLC Model = gslcModel{}

type gslcModel struct{}

func (gslcModel) Name() string { return "GSLC" }

func (gslcModel) Contains(c *computation.Computation, o *observer.Observer) bool {
	if o.Validate(c) != nil {
		return false
	}
	cl := c.Closure()
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		writers := c.Writers(l)
		for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
			w := o.Get(l, u)
			for _, x := range writers {
				if x != w && cl.Precedes(w, x) && cl.Precedes(x, u) {
					return false
				}
			}
		}
	}
	return true
}

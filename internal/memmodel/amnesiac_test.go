package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Machine-checked proof that LC ⊊ WN*, step by step.
//
// Step 1: Amnesiac ⊆ WN — the amnesiac observer of every computation is
// WN-dag consistent (checked over random computations; the argument is
// that no node other than a write u itself ever observes u).
func TestAmnesiacSubsetOfWN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 8, 2)
		o := observer.New(c) // the amnesiac observer
		if !Amnesiac.Contains(c, o) {
			return false
		}
		return WN.Contains(c, o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Step 2: Amnesiac is constructible — it passes the full Theorem 10
// criterion (every one-node extension, every predecessor set) at random
// pairs, and is monotonic so Theorem 12 applies too.
func TestAmnesiacConstructible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		c := randomComputation(rng, 5, 2)
		o := observer.New(c)
		ops := computation.AllOps(c.NumLocs())
		if !MonotonicAt(Amnesiac, c, o) {
			t.Fatalf("Amnesiac not monotonic at %v", c)
		}
		if ext, ok := ConstructibleAtFull(Amnesiac, c, o, ops); !ok {
			t.Fatalf("Amnesiac failed to extend across %v", ext)
		}
	}
}

// Step 3: the amnesiac pair on W(0) -> N is not in LC (the no-op
// follows the write, so every serialization makes it observe the
// write), and by Steps 1-2 with Theorem 9.3 it IS in WN*.
// Conclusion: LC ⊊ WN*.
func TestLCStrictlyInsideWNStar(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	nn := c.AddNode(computation.N)
	c.MustAddEdge(w, nn)
	o := observer.New(c)
	if !Amnesiac.Contains(c, o) {
		t.Fatal("pair must be amnesiac")
	}
	if !WN.Contains(c, o) {
		t.Fatal("pair must be in WN")
	}
	if LC.Contains(c, o) {
		t.Fatal("pair must not be in LC")
	}
	// Direct fixpoint confirmation: the pair survives pruning in a
	// universe around it (its augmentations, and theirs), because the
	// amnesiac extension always exists.
	ops := computation.AllOps(1)
	universe := []*computation.Computation{c}
	frontier := []*computation.Computation{c}
	for depth := 0; depth < 2; depth++ {
		var next []*computation.Computation
		for _, f := range frontier {
			for _, op := range ops {
				aug, _ := f.Augment(op)
				universe = append(universe, aug)
				next = append(next, aug)
			}
		}
		frontier = next
	}
	star := ConstructibleVersion(WN, universe, ops)
	if !star.Contains(c, o) {
		t.Fatal("amnesiac pair must survive WN pruning")
	}
}

// The same argument does NOT go through for NW: the amnesiac observer
// violates NW as soon as a non-write follows a write (triple ⊥ ≺ W ≺ N).
func TestAmnesiacNotInNW(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	nn := c.AddNode(computation.N)
	c.MustAddEdge(w, nn)
	o := observer.New(c)
	if NW.Contains(c, o) {
		t.Fatal("amnesiac pair with N after W must violate NW")
	}
	if NN.Contains(c, o) {
		t.Fatal("... and NN")
	}
	v := ExplainQDag(PredNW, c, o)
	if v == nil || v.U != observer.Bottom || v.V != w || v.W != nn {
		t.Fatalf("violation = %+v, want (⊥, W, N)", v)
	}
}

func TestAmnesiacRejectsOtherObservers(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w, r)
	o := observer.New(c)
	o.Set(0, r, w)
	if Amnesiac.Contains(c, o) {
		t.Fatal("observing a write is not amnesiac")
	}
	bad := observer.New(c)
	bad.Set(0, w, observer.Bottom)
	if Amnesiac.Contains(c, bad) {
		t.Fatal("invalid observer accepted")
	}
	_ = dag.None
}

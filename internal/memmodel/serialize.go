package memmodel

import (
	"fmt"
	"sort"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// This file implements the polynomial-time single-location
// serialization procedure behind LC membership and post-mortem LC
// verification. The question it answers: given a computation C, a
// location l, and a requirement function fixing W_T(l, u) for some
// nodes u, is there a topological sort T realizing every requirement?
//
// The reduction: a sort T induces a total order w_1 < … < w_k of the
// writes to l, and every other node lies in the "interval" after its
// observed write (or before w_1 for ⊥). Each dag edge then forces an
// order between two observed writes:
//
//   - u ≺ v (both constrained) forces φ(u) at-or-before φ(v);
//   - x ≺ u (x a write) forces x at-or-before φ(u);
//   - u ≺ x (x a write) forces φ(u) strictly before x;
//
// and since distinct writes occupy distinct positions, "at-or-before"
// between distinct writes is strict. The requirements are realizable
// iff no direct contradiction arises (a constrained node preceded by a
// write while requiring ⊥, or preceding its own observed write) and the
// resulting digraph over the writes is acyclic. A witness sort is
// assembled by ranking nodes by interval and sorting within intervals
// by a fixed topological position, with each interval's write first.
//
// Worst-case cost is O(|V|² + k²) per location, versus the exponential
// topological-sort search (kept in search.go for SC, which needs all
// locations simultaneously serialized and is NP-hard, and for
// cross-validation in the tests).

// Requirement describes the constraint on one node's last-writer value:
// either free (not constrained) or pinned to a specific write (possibly
// ⊥). Writes to the location are implicitly pinned to themselves by
// Definition 13 and must not be pinned elsewhere.
type Requirement func(u dag.Node) (want dag.Node, constrained bool)

// SerializeLoc returns a topological sort T of c with W_T(l, u) = want
// for every constrained node, or ok = false if none exists.
func SerializeLoc(c *computation.Computation, l computation.Loc, req Requirement) ([]dag.Node, bool) {
	n := c.NumNodes()
	cl := c.Closure()
	writers := c.Writers(l)
	k := len(writers)
	widx := make(map[dag.Node]int, k) // write -> dense index
	for i, w := range writers {
		widx[w] = i
	}

	// phi[u] holds the pinned value for constrained non-write nodes;
	// unconstrained nodes are marked free. Writes are handled separately.
	type pin struct {
		value       dag.Node
		constrained bool
	}
	pins := make([]pin, n)
	for u := 0; u < n; u++ {
		node := dag.Node(u)
		if c.Op(node).IsWriteTo(l) {
			if want, con := req(node); con && want != node {
				return nil, false // a write observes itself (Definition 13.1/2.3)
			}
			continue
		}
		want, con := req(node)
		if !con {
			continue
		}
		pins[u] = pin{value: want, constrained: true}
		if want == observer.Bottom {
			// No write may precede u.
			for _, x := range writers {
				if cl.Precedes(x, node) {
					return nil, false
				}
			}
			continue
		}
		if _, isWrite := widx[want]; !isWrite {
			return nil, false // pinned to a non-write
		}
		if cl.Precedes(node, want) {
			return nil, false // would observe the future (2.2)
		}
	}

	// Build the precedence digraph over writes.
	adj := make([][]int, k)
	addEdge := func(a, b int) {
		if a != b {
			adj[a] = append(adj[a], b)
		}
	}
	for i, w := range writers {
		for j, x := range writers {
			if i != j && cl.Precedes(w, x) {
				addEdge(i, j)
			}
		}
		_ = w
	}
	for u := 0; u < n; u++ {
		if !pins[u].constrained {
			continue
		}
		node := dag.Node(u)
		if pins[u].value == observer.Bottom {
			// u precedes every write it reaches; interval 0 handles it.
			continue
		}
		wi := widx[pins[u].value]
		for j, x := range writers {
			if j == wi {
				continue
			}
			if cl.Precedes(x, node) {
				addEdge(j, wi) // x at-or-before φ(u): strict since distinct
			}
			if cl.Precedes(node, x) {
				addEdge(wi, j) // φ(u) strictly before x
			}
		}
		// Cross constraints with other pinned nodes.
		for v := 0; v < n; v++ {
			if v == u || !pins[v].constrained {
				continue
			}
			if !cl.Precedes(node, dag.Node(v)) {
				continue
			}
			// u ≺ v: φ(u) at-or-before φ(v).
			if pins[v].value == observer.Bottom {
				return nil, false // v needs ⊥ but follows a w-observing node
			}
			addEdge(wi, widx[pins[v].value])
		}
	}

	writeOrder, ok := topoOrderInts(k, adj)
	if !ok {
		return nil, false
	}
	writeRank := make([]int, k) // write index -> 1-based interval rank
	for pos, wi := range writeOrder {
		writeRank[wi] = pos + 1
	}

	// Rank every node: writes at their interval; pinned nodes at their
	// write's interval (0 for ⊥); free nodes at the maximum rank among
	// their ranked ancestors.
	topoPos := make([]int, n)
	baseOrder, err := c.Dag().TopoSort()
	if err != nil {
		return nil, false
	}
	for pos, u := range baseOrder {
		topoPos[u] = pos
	}
	rank := make([]int, n)
	const unranked = -1
	for u := range rank {
		rank[u] = unranked
	}
	for i, w := range writers {
		rank[w] = writeRank[i]
		_ = i
	}
	for u := 0; u < n; u++ {
		if pins[u].constrained {
			if pins[u].value == observer.Bottom {
				rank[u] = 0
			} else {
				rank[u] = writeRank[widx[pins[u].value]]
			}
		}
	}
	// Free nodes, in topological order so ancestors are already final.
	for _, u := range baseOrder {
		if rank[u] != unranked {
			continue
		}
		r := 0
		cl.Ancestors(u).ForEach(func(a int) bool {
			if rank[a] != unranked && rank[a] > r {
				r = rank[a]
			}
			return true
		})
		rank[u] = r
	}
	// A free node ranked by ancestors could exceed a ranked descendant;
	// detect by a final monotonicity check after the sort below.

	order := make([]dag.Node, n)
	for u := range order {
		order[u] = dag.Node(u)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		// The interval's write leads its interval.
		aw := c.Op(a).IsWriteTo(l)
		bw := c.Op(b).IsWriteTo(l)
		if aw != bw {
			return aw
		}
		return topoPos[a] < topoPos[b]
	})
	if !c.Dag().IsTopoSort(order) {
		// The constraint graph was satisfiable but the rank assignment
		// collided with the dag; by the reduction's correctness this
		// cannot happen for valid pins — it guards against free-node
		// rank overshoot, which the constraints do not bound.
		return nil, false
	}
	return order, true
}

// LCExplanation is a proof of non-membership in LC at one location:
// either a direct contradiction at a node, or a cycle of writes each of
// which is forced before the next by the observer's requirements.
type LCExplanation struct {
	Loc computation.Loc
	// Direct is a human-readable direct contradiction, if one exists
	// (e.g. a node pinned to ⊥ after a write).
	Direct string
	// Cycle lists writes w0 → w1 → … → w0, each forced strictly before
	// the next, when the constraint digraph is cyclic.
	Cycle []dag.Node
}

// ExplainLC returns a proof that (c, o) ∉ LC — the first failing
// location with either a direct contradiction or a forced write-order
// cycle — or nil if the pair is in LC. The observer must be valid.
func ExplainLC(c *computation.Computation, o *observer.Observer) *LCExplanation {
	if o.Validate(c) != nil {
		return &LCExplanation{Direct: "not an observer function"}
	}
	cl := c.Closure()
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		writers := c.Writers(l)
		widx := make(map[dag.Node]int, len(writers))
		for i, w := range writers {
			widx[w] = i
		}
		// Direct contradictions first (mirrors SerializeLoc's checks).
		direct := ""
		for u := dag.Node(0); int(u) < c.NumNodes() && direct == ""; u++ {
			if c.Op(u).IsWriteTo(l) {
				continue
			}
			w := o.Get(l, u)
			if w == observer.Bottom {
				for _, x := range writers {
					if cl.Precedes(x, u) {
						direct = fmt.Sprintf("node %d observes ⊥ at location %d but write %d precedes it", u, l, x)
						break
					}
				}
				continue
			}
			for v := dag.Node(0); int(v) < c.NumNodes(); v++ {
				if cl.Precedes(u, v) && o.Get(l, v) == observer.Bottom {
					direct = fmt.Sprintf("node %d observes write %d at location %d but its successor %d observes ⊥", u, w, l, v)
					break
				}
			}
		}
		if direct != "" {
			return &LCExplanation{Loc: l, Direct: direct}
		}
		// Build the same constraint digraph as SerializeLoc and hunt for
		// a cycle.
		adj := buildWriteConstraints(c, cl, l, writers, widx, o)
		if cycle := findCycleInts(len(writers), adj); cycle != nil {
			nodes := make([]dag.Node, len(cycle))
			for i, wi := range cycle {
				nodes[i] = writers[wi]
			}
			return &LCExplanation{Loc: l, Cycle: nodes}
		}
	}
	return nil
}

// String renders the explanation.
func (e *LCExplanation) String() string {
	if e == nil {
		return "in LC"
	}
	if e.Direct != "" {
		return e.Direct
	}
	s := fmt.Sprintf("location %d: forced write-order cycle", e.Loc)
	for _, w := range e.Cycle {
		s += fmt.Sprintf(" %d →", w)
	}
	return s + fmt.Sprintf(" %d", e.Cycle[0])
}

// buildWriteConstraints assembles the before-edges among writes implied
// by the observer's pins (see SerializeLoc's derivation).
func buildWriteConstraints(c *computation.Computation, cl *dag.Closure, l computation.Loc,
	writers []dag.Node, widx map[dag.Node]int, o *observer.Observer) [][]int {
	adj := make([][]int, len(writers))
	addEdge := func(a, b int) {
		if a != b {
			adj[a] = append(adj[a], b)
		}
	}
	for i, w := range writers {
		for j, x := range writers {
			if i != j && cl.Precedes(w, x) {
				addEdge(i, j)
			}
			_ = x
		}
		_ = w
	}
	n := c.NumNodes()
	for u := dag.Node(0); int(u) < n; u++ {
		if c.Op(u).IsWriteTo(l) {
			continue
		}
		want := o.Get(l, u)
		if want == observer.Bottom {
			continue
		}
		wi := widx[want]
		for j, x := range writers {
			if j == wi {
				continue
			}
			if cl.Precedes(x, u) {
				addEdge(j, wi)
			}
			if cl.Precedes(u, x) {
				addEdge(wi, j)
			}
		}
		for v := dag.Node(0); int(v) < n; v++ {
			if v == u || c.Op(v).IsWriteTo(l) {
				continue
			}
			wantV := o.Get(l, v)
			if wantV == observer.Bottom || !cl.Precedes(u, v) {
				continue
			}
			addEdge(wi, widx[wantV])
		}
	}
	return adj
}

// findCycleInts returns one directed cycle of the integer digraph, or
// nil when it is acyclic.
func findCycleInts(n int, adj [][]int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case gray:
				// Unwind from v back to w.
				cycle = []int{w}
				for x := v; x != w; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into forward order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// topoOrderInts topologically sorts a small integer digraph, returning
// ok = false on a cycle.
func topoOrderInts(n int, adj [][]int) ([]int, bool) {
	indeg := make([]int, n)
	for _, out := range adj {
		for _, v := range out {
			indeg[v]++
		}
	}
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

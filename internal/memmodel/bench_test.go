package memmodel

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/computation"
	"repro/internal/observer"
)

// Decision-procedure benchmarks for the hardware/language models,
// recorded by scripts/bench.sh and gated by scripts/bench-compare.sh.
// The workload is the litmus corpus: IRIW (the 6-node independent-
// reads fixture) exercises the TSO engine search and the polynomial
// hb-based checks at the largest committed size, and SB adds the
// classic store-buffering shape every weak-memory discussion starts
// from.

func loadLitmus(b *testing.B, name string) (*computation.Computation, *observer.Observer) {
	b.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", "litmus", name))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	named, o, err := observer.ParsePair(f)
	if err != nil {
		b.Fatal(err)
	}
	return named.Comp, o
}

func benchModel(b *testing.B, m Model) {
	b.Helper()
	for _, fixture := range []string{"sb.ccm", "iriw.ccm"} {
		c, o := loadLitmus(b, fixture)
		b.Run(fixture, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Contains(c, o)
			}
		})
	}
}

func BenchmarkDecideTSO(b *testing.B)    { benchModel(b, TSO) }
func BenchmarkDecideRA(b *testing.B)     { benchModel(b, RA) }
func BenchmarkDecideCausal(b *testing.B) { benchModel(b, CAUSAL) }

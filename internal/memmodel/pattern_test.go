package memmodel

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// eachComputationLocal enumerates the ordered-node universe of exactly
// n nodes (mirroring enum.EachComputation, which this package cannot
// import without a cycle).
func eachComputationLocal(n, numLocs int, fn func(c *computation.Computation)) {
	ops := computation.AllOps(numLocs)
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		labels := make([]computation.Op, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				fn(computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs))
				return
			}
			for _, op := range ops {
				labels[i] = op
				rec(i + 1)
			}
		}
		rec(0)
		return true
	})
}

// TestPatternMatchesContains differentially checks the fused decider
// against the six Contains implementations over the full universe: for
// every computation and every valid observer, the pattern bits must
// agree with the individual model deciders.
func TestPatternMatchesContains(t *testing.T) {
	models := PatternModels()
	if len(models) != len(ModelNames()) {
		t.Fatalf("PatternModels has %d models, ModelNames %d", len(models), len(ModelNames()))
	}
	for i, name := range ModelNames() {
		if models[i].Name() != name {
			t.Fatalf("pattern bit %d is %s, want %s", i, models[i].Name(), name)
		}
	}
	cases := []struct{ n, locs int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1},
		{0, 2}, {1, 2}, {2, 2}, {3, 2},
	}
	if testing.Short() {
		cases = cases[:7]
	}
	pd := NewPatternDecider()
	for _, tc := range cases {
		pairs := 0
		eachComputationLocal(tc.n, tc.locs, func(c *computation.Computation) {
			pd.Reset(c)
			observer.Enumerate(c, func(o *observer.Observer) bool {
				got := pd.Pattern(o)
				var want uint16
				for i, m := range models {
					if m.Contains(c, o) {
						want |= 1 << i
					}
				}
				if got != want {
					t.Fatalf("n=%d locs=%d %v / %v: pattern %09b, Contains say %09b",
						tc.n, tc.locs, c, o, got, want)
				}
				pairs++
				return true
			})
		})
		if pairs == 0 && tc.n > 0 {
			t.Fatalf("n=%d locs=%d: no pairs enumerated", tc.n, tc.locs)
		}
	}
}

// TestSleepSetsPreserveSC: the engine's sleep-set pruning must not
// change SC membership for any pair of the small universe.
func TestSleepSetsPreserveSC(t *testing.T) {
	noSleep := SCOpts(SearchOptions{DisableSleep: true})
	for _, tc := range []struct{ n, locs int }{{3, 1}, {3, 2}, {4, 1}} {
		eachComputationLocal(tc.n, tc.locs, func(c *computation.Computation) {
			observer.Enumerate(c, func(o *observer.Observer) bool {
				if got, want := SC.Contains(c, o), noSleep.Contains(c, o); got != want {
					t.Fatalf("n=%d locs=%d %v / %v: SC with sleep %v, without %v",
						tc.n, tc.locs, c, o, got, want)
				}
				return true
			})
		})
	}
}

// TestPatternDeciderReuse checks that one decider instance gives the
// same answers when hopping between computations of different sizes and
// location counts — the pooled buffers must not leak state.
func TestPatternDeciderReuse(t *testing.T) {
	shared := NewPatternDecider()
	sizes := []struct{ n, locs int }{{3, 2}, {2, 1}, {3, 1}, {1, 2}}
	for _, tc := range sizes {
		eachComputationLocal(tc.n, tc.locs, func(c *computation.Computation) {
			fresh := NewPatternDecider()
			shared.Reset(c)
			fresh.Reset(c)
			observer.Enumerate(c, func(o *observer.Observer) bool {
				if g, w := shared.Pattern(o), fresh.Pattern(o); g != w {
					t.Fatalf("n=%d locs=%d %v / %v: reused decider %06b, fresh %06b",
						tc.n, tc.locs, c, o, g, w)
				}
				return true
			})
		})
	}
}

package fleet

import (
	"sync"
	"time"
)

// Per-replica health tracking: a three-state circuit breaker in the
// classic closed → open → half-open cycle. Consecutive hard failures
// (connection refused, 5xx other than shed, corrupt responses) open
// the breaker; an open breaker rejects dispatch until its cooldown
// expires, then admits exactly one half-open probe — success closes
// the circuit, failure re-opens it for another cooldown. 503 shed
// responses are deliberately NOT failures: a shedding replica is
// healthy and busy, and opening on shed would amplify load spikes into
// fleet-wide outages. The clock is injectable so every transition is
// unit-testable without sleeping.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int // consecutive hard failures while closed
	threshold int // fails that open the circuit
	cooldown  time.Duration
	until     time.Time // open state expires here
	probing   bool      // the half-open probe slot is taken
	now       func() time.Time
	// onFlip observes state transitions (for BreakerFlip events);
	// called outside the lock's critical work but within the mutex to
	// keep flips ordered. May be nil.
	onFlip func(state string)
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onFlip func(string)) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, onFlip: onFlip}
}

func (b *breaker) flip(s breakerState) {
	b.state = s
	if b.onFlip != nil {
		b.onFlip(s.String())
	}
}

// allow reports whether a dispatch to this replica may proceed. An
// expired open breaker transitions to half-open and grants the single
// probe slot to the first caller.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.flip(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed exchange: the circuit closes and the
// failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != breakerClosed {
		b.flip(breakerClosed)
	}
}

// failure records a hard failure. While closed it extends the streak
// and opens the circuit at the threshold; a failed half-open probe
// re-opens immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.until = b.now().Add(b.cooldown)
			b.flip(breakerOpen)
		}
	case breakerHalfOpen:
		b.probing = false
		b.until = b.now().Add(b.cooldown)
		b.flip(breakerOpen)
	case breakerOpen:
		// A straggler from before the open; the circuit is already open.
	}
}

// shed records a 503: the replica is alive but saturated. The streak
// is untouched — shed is backpressure, not sickness — but a half-open
// probe answering 503 still proves liveness, so it closes the circuit.
func (b *breaker) shed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.fails = 0
		b.probing = false
		b.flip(breakerClosed)
	}
}

// nextAllow returns the earliest instant allow can grant a dispatch:
// the open deadline, or the zero time when the breaker already admits.
func (b *breaker) nextAllow() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		return b.until
	}
	return time.Time{}
}

// snapshot returns the current state for reports.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

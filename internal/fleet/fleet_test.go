package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/serve"
)

// ---- harness -------------------------------------------------------

var corpus = []string{
	"dekker.ccm",
	"figure2.ccm",
	"figure3.ccm",
	"figure4_prefix.ccm",
	"stale_read.ccm",
}

func readPair(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// startReplicas spins up n in-process ccmd replicas and returns their
// base URLs.
func startReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// singleBox decides the pair on one fresh replica through /v1/batch
// full-range items — the reference the fleet merge must reproduce.
func singleBox(t *testing.T, pair string, models []string) map[string]ModelOutcome {
	t.Helper()
	co, err := New(Config{Replicas: startReplicas(t, 1), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), pair, models)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]ModelOutcome, len(rep.Outcomes))
	for _, o := range rep.Outcomes {
		out[o.Model] = o
	}
	return out
}

// eventLog is a concurrent-safe recorder for assertions.
type eventLog struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (l *eventLog) Record(ev obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, ev)
}

func (l *eventLog) count(k obs.Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func (l *eventLog) has(k obs.Kind, str string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.evs {
		if ev.Kind == k && ev.Str == str {
			return true
		}
	}
	return false
}

// checkAgainstReference asserts a fleet report reproduces the
// single-box outcomes byte-for-byte (verdict spelling, witnesses,
// violations).
func checkAgainstReference(t *testing.T, name string, rep *Report, want map[string]ModelOutcome) {
	t.Helper()
	for _, got := range rep.Outcomes {
		ref, ok := want[got.Model]
		if !ok {
			t.Fatalf("%s: unexpected model %s in report", name, got.Model)
		}
		if got.Verdict.String() != ref.Verdict.String() {
			t.Errorf("%s/%s: verdict %s, single-box %s", name, got.Model, got.Verdict, ref.Verdict)
		}
		if got.Witness != ref.Witness {
			t.Errorf("%s/%s: witness %q, single-box %q", name, got.Model, got.Witness, ref.Witness)
		}
		if strings.Join(got.LocWitnesses, "|") != strings.Join(ref.LocWitnesses, "|") {
			t.Errorf("%s/%s: loc witnesses %v, single-box %v", name, got.Model, got.LocWitnesses, ref.LocWitnesses)
		}
		if got.Violation != ref.Violation {
			t.Errorf("%s/%s: violation %q, single-box %q", name, got.Model, got.Violation, ref.Violation)
		}
	}
}

// ---- conformance ---------------------------------------------------

// TestFleetMatchesSingleBox is the core determinism property: a
// fault-free fleet run over 3 replicas with sharded SC merges to
// exactly the single-box answer for every corpus pair and model.
func TestFleetMatchesSingleBox(t *testing.T) {
	replicas := startReplicas(t, 3)
	for _, name := range corpus {
		pair := readPair(t, name)
		want := singleBox(t, pair, nil)
		for _, shards := range []int{1, 2, 4} {
			co, err := New(Config{Replicas: replicas, Shards: shards, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := co.Check(context.Background(), pair, nil)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			checkAgainstReference(t, name, rep, want)
			if rep.Degraded || rep.Lost > 0 {
				t.Errorf("%s shards=%d: fault-free run degraded (%+v)", name, shards, rep)
			}
			if rep.ShardsDone != rep.ShardsTotal {
				t.Errorf("%s shards=%d: coverage %d/%d on a fault-free run", name, shards, rep.ShardsDone, rep.ShardsTotal)
			}
			for _, o := range rep.Outcomes {
				if !o.WitnessCanonical {
					t.Errorf("%s shards=%d %s: witness not canonical on a fault-free run", name, shards, o.Model)
				}
			}
		}
	}
}

// TestFleetShardCoverage checks the plan accounting: SC splits into the
// requested shard count (clamped to the frontier) and the polynomial
// models stay whole.
func TestFleetShardCoverage(t *testing.T) {
	replicas := startReplicas(t, 2)
	co, err := New(Config{Replicas: replicas, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), readPair(t, "dekker.ccm"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Model == "SC" {
			if o.ShardsTotal < 1 || o.ShardsTotal > 2 {
				t.Errorf("SC planned %d shards, want 1..2", o.ShardsTotal)
			}
		} else if o.ShardsTotal != 1 {
			t.Errorf("%s planned %d shards, want 1", o.Model, o.ShardsTotal)
		}
	}
}

// ---- retry ---------------------------------------------------------

// TestFleetRetriesDrop: a dropped exchange is retried on another
// replica and the answer is unharmed.
func TestFleetRetriesDrop(t *testing.T) {
	replicas := startReplicas(t, 2)
	pair := readPair(t, "figure2.ccm")
	want := singleBox(t, pair, nil)

	ft := NewFaultTransport(&FaultPlan{Events: []FaultEvent{{Kind: FaultDrop}}}, nil)
	log := &eventLog{}
	co, err := New(Config{
		Replicas: replicas, Shards: 1, Transport: ft, Recorder: log,
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "figure2", rep, want)
	if rep.Retries == 0 {
		t.Error("dropped exchange produced no retry")
	}
	if rep.Degraded {
		t.Errorf("one drop degraded the run: %+v", rep)
	}
	if !ft.AllFired() {
		t.Error("fault plan did not fire")
	}
	if log.count(obs.ShardRetry) == 0 {
		t.Error("no ShardRetry event emitted")
	}
}

// TestFleetRetriesCorrupt: a torn response body is a hard failure the
// coordinator rejects and retries, never a wrong answer.
func TestFleetRetriesCorrupt(t *testing.T) {
	replicas := startReplicas(t, 2)
	pair := readPair(t, "stale_read.ccm")
	want := singleBox(t, pair, nil)

	ft := NewFaultTransport(&FaultPlan{Events: []FaultEvent{{Kind: FaultCorrupt}}}, nil)
	co, err := New(Config{
		Replicas: replicas, Shards: 1, Transport: ft,
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "stale_read", rep, want)
	if rep.Retries == 0 || rep.Degraded {
		t.Errorf("corrupt response: retries=%d degraded=%v", rep.Retries, rep.Degraded)
	}
	if !ft.AllFired() {
		t.Error("corrupt fault did not fire")
	}
}

// TestFleetHonorsRetryAfter: a shed (503) backs off at least the
// replica's Retry-After hint before the retry lands.
func TestFleetHonorsRetryAfter(t *testing.T) {
	replicas := startReplicas(t, 1)
	pair := readPair(t, "figure3.ccm")

	ft := NewFaultTransport(&FaultPlan{Events: []FaultEvent{{Kind: Fault503, RetryAfter: 1}}}, nil)
	co, err := New(Config{
		Replicas: replicas, Shards: 1, Transport: ft,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.Check(context.Background(), pair, []string{"LC"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("shed degraded the run: %+v", rep)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry landed after %v, before the 1s Retry-After hint", elapsed)
	}
	// Shed is backpressure: the breaker must still be closed.
	if s := co.breakers[0].snapshot(); s != breakerClosed {
		t.Errorf("breaker %v after a shed, want closed", s)
	}
}

// ---- hedging -------------------------------------------------------

// TestFleetHedgesStraggler: a delayed primary is hedged to the second
// replica, the hedge wins, and the straggler's eventual fate never
// counts against anyone.
func TestFleetHedgesStraggler(t *testing.T) {
	replicas := startReplicas(t, 2)
	pair := readPair(t, "figure2.ccm")
	want := singleBox(t, pair, nil)

	ft := NewFaultTransport(&FaultPlan{Events: []FaultEvent{{Kind: FaultDelay, Delay: 30 * time.Second}}}, nil)
	log := &eventLog{}
	co, err := New(Config{
		Replicas: replicas, Shards: 1, Transport: ft, Recorder: log,
		HedgeAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.Check(context.Background(), pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedge did not rescue the straggler (took %v)", elapsed)
	}
	checkAgainstReference(t, "figure2", rep, want)
	if rep.Hedges == 0 {
		t.Error("no hedge counted")
	}
	if log.count(obs.ShardHedge) == 0 {
		t.Error("no ShardHedge event emitted")
	}
	if rep.Degraded || rep.Retries != 0 {
		t.Errorf("hedged run: degraded=%v retries=%d, want clean", rep.Degraded, rep.Retries)
	}
}

// ---- replica death and reissue -------------------------------------

// TestFleetReissuesAfterReplicaDeath: a replica that fails every
// exchange trips its breaker and its shards land on the survivor; the
// merged answer is complete and exact.
func TestFleetReissuesAfterReplicaDeath(t *testing.T) {
	replicas := startReplicas(t, 2)
	pair := readPair(t, "dekker.ccm")
	want := singleBox(t, pair, nil)

	// Every exchange to replica 0 drops, forever.
	dead := strings.TrimPrefix(replicas[0], "http://")
	var evs []FaultEvent
	for i := 0; i < 32; i++ {
		evs = append(evs, FaultEvent{Kind: FaultDrop, Replica: dead})
	}
	ft := NewFaultTransport(&FaultPlan{Events: evs}, nil)
	log := &eventLog{}
	co, err := New(Config{
		Replicas: replicas, Shards: 4, Transport: ft, Recorder: log,
		MaxAttempts: 6, BreakerThreshold: 2, BreakerCooldown: time.Minute,
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "dekker", rep, want)
	if rep.Degraded || rep.Lost > 0 {
		t.Errorf("survivor could not absorb the dead replica's shards: %+v", rep)
	}
	if rep.ShardsDone != rep.ShardsTotal {
		t.Errorf("coverage %d/%d after reissue, want full", rep.ShardsDone, rep.ShardsTotal)
	}
	if !log.has(obs.BreakerFlip, "open") {
		t.Error("dead replica's breaker never opened")
	}
}

// ---- graceful degradation ------------------------------------------

// TestFleetDegradesToTypedInconclusive: with every replica dead and
// retries exhausted, the merge degrades to INCONCLUSIVE(fleet) with
// exact shard coverage instead of erroring or fabricating a verdict.
func TestFleetDegradesToTypedInconclusive(t *testing.T) {
	// Two replicas that are immediately torn down: every dial fails.
	tsA := httptest.NewServer(serve.New(serve.Config{}).Handler())
	tsB := httptest.NewServer(serve.New(serve.Config{}).Handler())
	urls := []string{tsA.URL, tsB.URL}
	tsA.Close()
	tsB.Close()

	log := &eventLog{}
	co, err := New(Config{
		Replicas: urls, Shards: 2, Recorder: log,
		MaxAttempts: 2, BreakerThreshold: 100,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.Check(context.Background(), readPair(t, "dekker.ccm"), []string{"SC", "LC"})
	if err != nil {
		t.Fatalf("degradation must not surface as an error: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("all-dead fleet did not degrade")
	}
	if rep.ShardsDone != 0 {
		t.Errorf("ShardsDone = %d with every replica dead", rep.ShardsDone)
	}
	if rep.Lost != rep.ShardsTotal {
		t.Errorf("Lost = %d, want every one of the %d shards", rep.Lost, rep.ShardsTotal)
	}
	for _, o := range rep.Outcomes {
		if !o.Verdict.Inconclusive() || o.Verdict.Reason != search.StopFleet {
			t.Errorf("%s: verdict %s, want INCONCLUSIVE(fleet)", o.Model, o.Verdict)
		}
		if o.ShardsDone != 0 || o.ShardsTotal == 0 {
			t.Errorf("%s: coverage %d/%d, want 0/N", o.Model, o.ShardsDone, o.ShardsTotal)
		}
	}
	if log.count(obs.ShardDone) == 0 || !log.has(obs.ShardDone, "lost") {
		t.Error("lost shards emitted no ShardDone(lost) events")
	}
}

// TestFleetPartialLossKeepsDefinitiveIn: losing a shard above the
// witness root cannot flip a definitive In — a witness is a witness.
func TestFleetPartialLossKeepsDefinitiveIn(t *testing.T) {
	pair := readPair(t, "figure2.ccm") // SC member: every shard merge has a witness
	ref := singleBox(t, pair, []string{"SC"})
	if !ref["SC"].Verdict.In() {
		t.Skip("corpus changed: figure2 no longer SC-in")
	}
	// Simulate the loss in the merge directly: shard 0 holds the
	// witness, shard 1 was lost.
	u0 := &unit{key: "SC:0", shardIdx: 0, lo: 0, hi: 1,
		item:   serve.BatchItem{Model: "SC"},
		result: &serve.BatchResult{Verdict: search.VerdictIn(), Witness: ref["SC"].Witness, WitnessRoot: 0}}
	u1 := &unit{key: "SC:1", shardIdx: 1, lo: 1, hi: 2, item: serve.BatchItem{Model: "SC"}, lost: true}
	out := mergeSC([]*unit{u0, u1}, 2)
	if !out.Verdict.In() {
		t.Fatalf("merge verdict %s, want IN despite the lost shard", out.Verdict)
	}
	if !out.WitnessCanonical {
		t.Error("lost shard above the witness root must keep the witness canonical")
	}
	// The mirror case: the lost shard is below the winning root.
	u0.lo, u0.hi, u0.result.WitnessRoot = 1, 2, 1
	u1.lo, u1.hi = 0, 1
	out = mergeSC([]*unit{u0, u1}, 2)
	if !out.Verdict.In() || out.WitnessCanonical {
		t.Errorf("lost shard below the root: verdict %s canonical %v, want IN and non-canonical", out.Verdict, out.WitnessCanonical)
	}
	// A shard below the root that completed but stopped on a governed
	// limit did not exhaust its range either: same degradation.
	u1.lost = false
	u1.result = &serve.BatchResult{Verdict: search.VerdictInconclusive(search.StopBudget)}
	out = mergeSC([]*unit{u0, u1}, 2)
	if !out.Verdict.In() || out.WitnessCanonical {
		t.Errorf("inconclusive shard below the root: verdict %s canonical %v, want IN and non-canonical", out.Verdict, out.WitnessCanonical)
	}
	// But an inconclusive shard above the winning root is harmless.
	u0.lo, u0.hi, u0.result.WitnessRoot = 0, 1, 0
	u1.lo, u1.hi = 1, 2
	out = mergeSC([]*unit{u0, u1}, 2)
	if !out.Verdict.In() || !out.WitnessCanonical {
		t.Errorf("inconclusive shard above the root: verdict %s canonical %v, want IN and canonical", out.Verdict, out.WitnessCanonical)
	}
}

// ---- dispatch capacity ---------------------------------------------

// TestAssignOverflowReturned: units beyond the per-round batch capacity
// are handed back as overflow, never silently dropped.
func TestAssignOverflowReturned(t *testing.T) {
	co, err := New(Config{Replicas: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	units := make([]*unit, 150) // capacity is 64 * 2 = 128
	for i := range units {
		units[i] = &unit{key: string(rune('a' + i%26))}
	}
	batches, overflow := co.assign(units)
	placed := 0
	for _, b := range batches {
		if len(b.units) > 64 {
			t.Errorf("batch for replica %d holds %d units, cap 64", b.replica, len(b.units))
		}
		placed += len(b.units)
	}
	if placed != 128 || len(overflow) != 22 {
		t.Errorf("placed %d overflow %d, want 128/22", placed, len(overflow))
	}
	if placed+len(overflow) != len(units) {
		t.Errorf("assign lost units: %d in, %d out", len(units), placed+len(overflow))
	}
	// With every breaker open, everything overflows.
	for _, b := range co.breakers {
		b.failure()
		b.failure()
		b.failure()
	}
	batches, overflow = co.assign(units)
	if len(batches) != 0 || len(overflow) != len(units) {
		t.Errorf("open breakers: %d batches, %d overflow, want 0/%d", len(batches), len(overflow), len(units))
	}
}

// TestFleetOverflowUnitsAllDispatched: more ready units than one
// round's capacity (64 per replica) still all resolve — the overflow
// re-enters the queue instead of vanishing into INCONCLUSIVE(fleet).
func TestFleetOverflowUnitsAllDispatched(t *testing.T) {
	replicas := startReplicas(t, 1)
	pair := readPair(t, "figure3.ccm")
	co, err := New(Config{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	units := make([]*unit, 70)
	for i := range units {
		key := fmt.Sprintf("LC-%d", i)
		units[i] = &unit{key: key, item: serve.BatchItem{ID: key, Pair: pair, Model: "LC"}}
	}
	stats, err := co.run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if stats.lost != 0 {
		t.Errorf("fault-free overflow run lost %d units", stats.lost)
	}
	for _, u := range units {
		if u.result == nil {
			t.Fatalf("unit %s never resolved: overflow was dropped", u.key)
		}
	}
}

// TestFleetConcurrentChecks: one Coordinator may serve concurrent
// Checks (the round-robin cursor is the only unguarded-looking shared
// state; this test gives the race detector something to chew on).
func TestFleetConcurrentChecks(t *testing.T) {
	replicas := startReplicas(t, 2)
	pair := readPair(t, "figure2.ccm")
	want := singleBox(t, pair, nil)
	co, err := New(Config{Replicas: replicas, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := co.Check(context.Background(), pair, nil)
			if err != nil {
				t.Errorf("concurrent Check: %v", err)
				return
			}
			checkAgainstReference(t, "figure2", rep, want)
		}()
	}
	wg.Wait()
}

// ---- breaker unit tests --------------------------------------------

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	var flips []string
	b := newBreaker(2, time.Second, now, func(s string) { flips = append(flips, s) })

	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.failure()
	if !b.allow() {
		t.Fatal("one failure below threshold must still allow")
	}
	b.failure() // threshold reached
	if b.snapshot() != breakerOpen {
		t.Fatalf("state %v after threshold, want open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("open breaker within cooldown must reject")
	}
	clock = clock.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooled-down breaker must grant the half-open probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("half-open breaker must grant only one probe")
	}
	b.failure() // probe failed
	if b.snapshot() != breakerOpen {
		t.Fatal("failed probe must re-open")
	}
	clock = clock.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("second probe window")
	}
	b.success()
	if b.snapshot() != breakerClosed || !b.allow() {
		t.Fatal("successful probe must close the circuit")
	}
	want := []string{"open", "half-open", "open", "half-open", "closed"}
	if strings.Join(flips, ",") != strings.Join(want, ",") {
		t.Errorf("flips %v, want %v", flips, want)
	}
}

func TestBreakerShedSemantics(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newBreaker(2, time.Second, func() time.Time { return clock }, nil)
	// Sheds never open a closed breaker, no matter how many.
	for i := 0; i < 10; i++ {
		b.shed()
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("sheds opened a closed breaker")
	}
	// A half-open probe answering 503 proves liveness: circuit closes.
	b.failure()
	b.failure()
	clock = clock.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("probe not granted")
	}
	b.shed()
	if b.snapshot() != breakerClosed {
		t.Fatalf("state %v after probe shed, want closed", b.snapshot())
	}
}

// ---- small pieces --------------------------------------------------

func TestParseRetryAfter(t *testing.T) {
	now := func() time.Time { return time.Unix(1_700_000_000, 0).UTC() }
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", time.Second},
		{"2", 2 * time.Second},
		{"0", time.Second},               // floor
		{"9999", 30 * time.Second},       // ceiling
		{"garbage", time.Second},         // malformed
		{now().Add(5 * time.Second).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 5 * time.Second},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFleetInputErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no replicas must fail")
	}
	co, err := New(Config{Replicas: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Check(context.Background(), "nonsense", nil); err == nil {
		t.Error("malformed pair must be an input error")
	}
	if _, err := co.Check(context.Background(), readPair(t, "dekker.ccm"), []string{"XX"}); err == nil {
		t.Error("unknown model must be an input error")
	}
}

func TestFleetContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	co, err := New(Config{Replicas: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Check(ctx, readPair(t, "dekker.ccm"), []string{"LC"}); err == nil {
		t.Error("cancelled context must surface as an error")
	}
}

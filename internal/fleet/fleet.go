// Package fleet is the scale-out layer of the decision stack: a
// coordinator that partitions the SC search's admissible root frontier
// — the same split internal/search fans in-process workers over — into
// contiguous shards, dispatches them to a fleet of ccmd replicas over
// POST /v1/batch, and merges the shard verdicts back into the exact
// answer a single box would produce.
//
// The layer is built failure-first:
//
//   - Per-replica health is tracked by a circuit breaker (consecutive
//     hard failures open it; a cooled-down breaker admits one
//     half-open probe). 503 shed responses never open the breaker — a
//     shedding replica is busy, not dead.
//   - Failed shard batches retry with capped exponential backoff plus
//     seeded jitter, honoring 503 Retry-After hints.
//   - Straggling batches are hedged: after HedgeAfter with no answer,
//     the same batch goes to a second healthy replica and the first
//     decided answer wins (the loser is cancelled, and its
//     cancellation never counts against any breaker).
//   - Shards stranded on a dead replica are reissued to the survivors
//     on the next dispatch round.
//   - When a shard exhausts MaxAttempts it is lost, and the merged
//     verdict degrades gracefully to a typed INCONCLUSIVE(fleet) that
//     carries the exact shard coverage — unless some completed shard
//     already found a witness, which is definitive no matter what was
//     lost.
//
// Determinism: the merge is a pure function of the per-shard results
// keyed by shard index (lowest witness root wins — the same rule that
// makes the in-process parallel engine worker-count-independent), so
// arrival order, retries, hedges, and replica assignment cannot change
// the answer. A fleet run over a corpus is byte-identical to ccmc.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/memmodel"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/search"
	"repro/internal/serve"
)

// maxRespBytes bounds a replica response read.
const maxRespBytes = 8 << 20

// Config assembles a Coordinator.
type Config struct {
	// Replicas are the ccmd base URLs (e.g. "http://127.0.0.1:8080").
	Replicas []string
	// Shards is the target number of frontier shards per SC question
	// (0 = one per replica), clamped to the frontier size.
	Shards int
	// MaxAttempts bounds dispatch attempts per shard batch before the
	// shard is declared lost (0 = 4).
	MaxAttempts int
	// HedgeAfter is how long a dispatched batch may straggle before it
	// is hedged to a second healthy replica (0 disables hedging).
	HedgeAfter time.Duration
	// BaseBackoff and MaxBackoff bound the exponential retry backoff
	// (0 = 100ms / 2s). A 503 Retry-After hint overrides a shorter
	// computed backoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive hard failures open a replica's
	// circuit breaker (0 = 3); BreakerCooldown is the open interval
	// before a half-open probe (0 = 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RequestTimeout bounds one HTTP attempt (0 = 60s).
	RequestTimeout time.Duration
	// Options is the governance block forwarded with every batch.
	Options serve.Options
	// Recorder receives per-shard dispatch events (ShardSent/Retry/
	// Hedge/Done, BreakerFlip); nil disables them.
	Recorder obs.Recorder
	// Transport overrides the HTTP transport (fault-injection tests).
	Transport http.RoundTripper
	// Seed seeds the backoff jitter (any fixed seed gives replayable
	// timing; the merged answer never depends on it).
	Seed int64
}

// Coordinator dispatches shard batches and merges their verdicts.
type Coordinator struct {
	cfg      Config
	client   *http.Client
	breakers []*breaker
	rrmu     sync.Mutex
	rr       int // dispatch-round rotation cursor, guarded by rrmu
	jmu      sync.Mutex
	jitter   *rand.Rand
	now      func() time.Time
}

// New builds a Coordinator. At least one replica is required.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	co := &Coordinator{
		cfg:    cfg,
		client: &http.Client{Transport: transport, Timeout: cfg.RequestTimeout},
		jitter: rand.New(rand.NewSource(cfg.Seed)),
		now:    time.Now,
	}
	for i := range cfg.Replicas {
		i := i
		co.breakers = append(co.breakers, newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil, func(state string) {
			obs.Emit(cfg.Recorder, obs.Event{Kind: obs.BreakerFlip, Worker: i, Str: state})
		}))
	}
	return co, nil
}

// ModelOutcome is one model's merged answer within a Report.
type ModelOutcome struct {
	Model        string
	Verdict      search.Verdict
	Witness      string
	LocWitnesses []string
	Violation    string
	// Stats aggregates the engine work across this model's shards.
	Stats serve.SearchStats
	// ShardsTotal and ShardsDone are this question's shard coverage;
	// they differ only when shards were lost to exhausted retries.
	ShardsTotal, ShardsDone int
	// WitnessCanonical reports that every shard below the witness's
	// root exhausted its range, so the witness is exactly the
	// single-box one. An In verdict with a lost or inconclusive shard
	// below the winning root is still definitive, but its witness may
	// be a higher-root one.
	WitnessCanonical bool
}

// Report is the merged outcome of one fleet Check.
type Report struct {
	Outcomes []ModelOutcome
	// ShardsTotal / ShardsDone aggregate coverage over all models.
	ShardsTotal, ShardsDone int
	// Retries, Hedges, and Lost count dispatch-level events.
	Retries, Hedges, Lost int
	// Degraded reports that coverage is incomplete: some shard was
	// lost, so at least one outcome is INCONCLUSIVE(fleet) or carries a
	// non-canonical witness.
	Degraded bool
}

// unit is one dispatchable shard decision.
type unit struct {
	key      string // stable ID, also the batch item ID
	item     serve.BatchItem
	shardIdx int // SC shard ordinal (0 for polynomial models)
	lo, hi   int // frontier range (SC)
	attempts int
	retryAt  time.Time
	result   *serve.BatchResult
	lost     bool
}

// Check decides the pair (given in ccmc text format) against the
// models fleet-wide and merges the shard verdicts. The error return is
// for malformed input or a cancelled context — never for replica
// failures, which degrade into the Report instead.
func (co *Coordinator) Check(ctx context.Context, pair string, models []string) (*Report, error) {
	named, ofn, err := observer.ParsePairString(pair)
	if err != nil {
		return nil, err
	}
	if named.Comp.NumNodes() == 0 {
		return nil, errors.New("fleet: pair has no nodes")
	}
	known := memmodel.ModelNames()
	if len(models) == 0 {
		models = known
	}
	for _, m := range models {
		ok := false
		for _, k := range known {
			ok = ok || k == m
		}
		if !ok {
			return nil, fmt.Errorf("fleet: unknown model %q", m)
		}
	}

	// Build the shard plan: the SC question splits over its root
	// frontier, the polynomial models ship whole.
	var units []*unit
	scShards := 0
	for _, m := range models {
		if m != "SC" {
			units = append(units, &unit{
				key:  m,
				item: serve.BatchItem{ID: m, Pair: pair, Model: m},
			})
			continue
		}
		total, _ := memmodel.SCShardPlan(named.Comp, ofn)
		scShards = co.shardCount(total)
		for s := 0; s < scShards; s++ {
			lo := s * total / scShards
			hi := (s + 1) * total / scShards
			key := fmt.Sprintf("SC:%d:%d-%d", s, lo, hi)
			it := serve.BatchItem{ID: key, Pair: pair, Model: "SC", RootLo: lo, RootHi: hi}
			if scShards == 1 {
				// One shard = the full run; send the canonical full-range
				// form so it shares cache entries with unsharded checks.
				it.RootLo, it.RootHi = 0, 0
				lo, hi = 0, total
			}
			units = append(units, &unit{key: key, item: it, shardIdx: s, lo: lo, hi: hi})
		}
	}

	stats, err := co.run(ctx, units)
	if err != nil {
		return nil, err
	}
	return co.merge(models, units, scShards, stats), nil
}

// shardCount clamps the configured shard target onto a frontier of
// the given size (always at least one shard: a trivial or single-root
// question still dispatches, so the decision stays remote and uniform).
func (co *Coordinator) shardCount(frontier int) int {
	s := co.cfg.Shards
	if s <= 0 {
		s = len(co.cfg.Replicas)
	}
	if frontier < 1 {
		return 1
	}
	if s > frontier {
		s = frontier
	}
	if s < 1 {
		s = 1
	}
	return s
}

// runStats aggregates dispatch-level counters for the Report.
type runStats struct {
	retries, hedges, lost int
}

// run drives the dispatch rounds until every unit is resolved or lost.
func (co *Coordinator) run(ctx context.Context, units []*unit) (runStats, error) {
	var stats runStats
	pending := append([]*unit(nil), units...)
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		now := co.now()
		var ready, waiting []*unit
		for _, u := range pending {
			if u.retryAt.After(now) {
				waiting = append(waiting, u)
			} else {
				ready = append(ready, u)
			}
		}
		if len(ready) == 0 {
			// Sleep until the earliest backoff expires.
			wake := waiting[0].retryAt
			for _, u := range waiting[1:] {
				if u.retryAt.Before(wake) {
					wake = u.retryAt
				}
			}
			if err := co.sleep(ctx, wake.Sub(now)); err != nil {
				return stats, err
			}
			continue
		}

		batches, overflow := co.assign(ready)
		if len(batches) == 0 {
			// Every breaker is open: wait for the earliest cooldown to
			// expire (bounded below so a clock skew cannot spin).
			wake := co.earliestAllow()
			d := wake.Sub(co.now())
			if d < 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			if err := co.sleep(ctx, d); err != nil {
				return stats, err
			}
			continue
		}

		// Dispatch this round's batches in parallel; collect outcomes.
		type outcome struct {
			batch   batch
			resp    *serve.BatchResponse
			winner  int
			hedged  bool
			failers []attemptFailure
		}
		outcomes := make([]outcome, len(batches))
		var wg sync.WaitGroup
		for bi, b := range batches {
			bi, b := bi, b
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, winner, hedged, failers := co.dispatchBatch(ctx, b)
				outcomes[bi] = outcome{batch: b, resp: resp, winner: winner, hedged: hedged, failers: failers}
			}()
		}
		wg.Wait()

		// Units that did not fit this round's capacity go straight back
		// in the queue (retryAt stays zero, so they are ready again).
		pending = append(waiting, overflow...)
		for _, oc := range outcomes {
			if oc.hedged {
				stats.hedges++
			}
			// Breaker accounting: every resolved attempt counts; hedge
			// losers were cancelled and never appear here.
			var shedAfter time.Duration
			sawShed := false
			for _, f := range oc.failers {
				var shed *shedError
				switch {
				case errors.As(f.err, &shed):
					co.breakers[f.replica].shed()
					sawShed = true
					if shed.retryAfter > shedAfter {
						shedAfter = shed.retryAfter
					}
				case errors.Is(f.err, context.Canceled), errors.Is(f.err, context.DeadlineExceeded):
					// The run context ended; not the replica's fault.
				default:
					co.breakers[f.replica].failure()
				}
			}
			if oc.resp != nil {
				co.breakers[oc.winner].success()
				byID := make(map[string]*serve.BatchResult, len(oc.resp.Results))
				for i := range oc.resp.Results {
					byID[oc.resp.Results[i].ID] = &oc.resp.Results[i]
				}
				for _, u := range oc.batch.units {
					u.result = byID[u.key]
					obs.Emit(co.cfg.Recorder, obs.Event{Kind: obs.ShardDone, Worker: oc.winner, Root: u.shardIdx, Str: "ok"})
				}
				continue
			}
			// The whole batch failed this round: requeue or lose each unit.
			now := co.now()
			for _, u := range oc.batch.units {
				u.attempts++
				if u.attempts >= co.cfg.MaxAttempts {
					u.lost = true
					stats.lost++
					obs.Emit(co.cfg.Recorder, obs.Event{Kind: obs.ShardDone, Worker: -1, Root: u.shardIdx, Str: "lost"})
					continue
				}
				stats.retries++
				backoff := co.backoff(u.attempts)
				if sawShed && shedAfter > backoff {
					backoff = shedAfter
				}
				u.retryAt = now.Add(backoff)
				cause := "error"
				if len(oc.failers) > 0 {
					cause = oc.failers[len(oc.failers)-1].err.Error()
				}
				obs.Emit(co.cfg.Recorder, obs.Event{Kind: obs.ShardRetry, Worker: oc.batch.replica, Root: u.shardIdx, N: int64(u.attempts), Str: cause})
				pending = append(pending, u)
			}
		}
	}
	return stats, nil
}

// batch is one round's dispatch to one replica.
type batch struct {
	replica int
	units   []*unit
	hedged  bool
}

type attemptFailure struct {
	replica int
	err     error
}

// assign partitions ready units round-robin over the replicas whose
// breakers admit dispatch, respecting the server's batch-size cap.
// Units that do not fit this round's capacity are returned as overflow
// so the caller requeues them for the next round.
func (co *Coordinator) assign(ready []*unit) ([]batch, []*unit) {
	n := len(co.cfg.Replicas)
	want := len(ready)
	if want > n {
		want = n
	}
	co.rrmu.Lock()
	start := co.rr
	co.rr = (co.rr + 1) % n
	co.rrmu.Unlock()
	var allowed []int
	for i := 0; i < n && len(allowed) < want; i++ {
		r := (start + i) % n
		if co.breakers[r].allow() {
			allowed = append(allowed, r)
		}
	}
	if len(allowed) == 0 {
		return nil, ready
	}
	batches := make([]batch, len(allowed))
	for i, r := range allowed {
		batches[i] = batch{replica: r}
	}
	const maxPerBatch = 64 // serve's maxBatchItems
	capacity := maxPerBatch * len(allowed)
	var overflow []*unit
	for i, u := range ready {
		if i < capacity {
			batches[i%len(allowed)].units = append(batches[i%len(allowed)].units, u)
		} else {
			overflow = append(overflow, u)
		}
	}
	out := batches[:0]
	for _, b := range batches {
		if len(b.units) > 0 {
			out = append(out, b)
		}
	}
	return out, overflow
}

// earliestAllow returns the earliest instant some breaker re-admits
// dispatch.
func (co *Coordinator) earliestAllow() time.Time {
	var wake time.Time
	for _, b := range co.breakers {
		t := b.nextAllow()
		if wake.IsZero() || t.Before(wake) {
			wake = t
		}
	}
	return wake
}

// dispatchBatch posts one batch with hedging: after HedgeAfter with no
// answer, the same items go to a second healthy replica; the first
// valid response wins and the loser's context is cancelled (its
// abandoned attempt is never accounted anywhere). Returns the winning
// response and replica (or nil and the accumulated hard failures),
// plus whether a hedge was launched.
func (co *Coordinator) dispatchBatch(ctx context.Context, b batch) (*serve.BatchResponse, int, bool, []attemptFailure) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	items := make([]serve.BatchItem, len(b.units))
	for i, u := range b.units {
		items[i] = u.item
	}
	type answer struct {
		replica int
		resp    *serve.BatchResponse
		err     error
	}
	ch := make(chan answer, 2) // primary + at most one hedge; losers park here
	post := func(replica int, attempt int64) {
		obs.Emit(co.cfg.Recorder, obs.Event{Kind: obs.ShardSent, Worker: replica, Root: b.units[0].shardIdx, Total: len(items), N: attempt})
		resp, err := co.post(cctx, replica, items)
		ch <- answer{replica: replica, resp: resp, err: err}
	}
	go post(b.replica, int64(b.units[0].attempts+1))

	var hedgeCh <-chan time.Time
	if co.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(co.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeCh = timer.C
	}

	inFlight := 1
	hedged := false
	var failures []attemptFailure
	for inFlight > 0 {
		select {
		case a := <-ch:
			inFlight--
			if a.err == nil {
				cancel() // the hedge loser, if any, stops now
				return a.resp, a.replica, hedged, failures
			}
			failures = append(failures, attemptFailure{replica: a.replica, err: a.err})
		case <-hedgeCh:
			hedgeCh = nil
			if h, ok := co.pickHedge(b.replica); ok {
				hedged = true
				obs.Emit(co.cfg.Recorder, obs.Event{Kind: obs.ShardHedge, Worker: h, Root: b.units[0].shardIdx})
				inFlight++
				go post(h, int64(b.units[0].attempts+1))
			}
		case <-ctx.Done():
			return nil, -1, hedged, failures
		}
	}
	return nil, -1, hedged, failures
}

// pickHedge selects a healthy replica other than the primary.
func (co *Coordinator) pickHedge(primary int) (int, bool) {
	n := len(co.cfg.Replicas)
	for i := 0; i < n; i++ {
		r := (primary + 1 + i) % n
		if r == primary {
			continue
		}
		if co.breakers[r].allow() {
			return r, true
		}
	}
	return 0, false
}

// shedError is a 503 with its Retry-After hint.
type shedError struct {
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("replica shedding load (retry after %v)", e.retryAfter)
}

// post runs one HTTP attempt against a replica and validates the
// response shape: a 200 whose results do not match the request's item
// IDs one-for-one is a corrupt response and counts as a hard failure.
func (co *Coordinator) post(ctx context.Context, replica int, items []serve.BatchItem) (*serve.BatchResponse, error) {
	body, err := json.Marshal(serve.BatchRequest{Items: items, Options: co.cfg.Options})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, co.cfg.Replicas[replica]+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// One fresh correlation id per attempt: the replica's access log
	// and the coordinator's event stream share it, and a retry or hedge
	// of the same shard is distinguishable from its first attempt.
	req.Header.Set(mw.HeaderRequestID, mw.NewRequestID())
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, &shedError{retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), co.now)}
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("replica %d: status %d: %s", replica, resp.StatusCode, truncate(data, 200))
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		return nil, fmt.Errorf("replica %d: corrupt response: %w", replica, err)
	}
	if len(br.Results) != len(items) {
		return nil, fmt.Errorf("replica %d: %d results for %d items", replica, len(br.Results), len(items))
	}
	seen := make(map[string]bool, len(items))
	for _, r := range br.Results {
		seen[r.ID] = true
	}
	for _, it := range items {
		if !seen[it.ID] {
			return nil, fmt.Errorf("replica %d: response missing item %q", replica, it.ID)
		}
	}
	return &br, nil
}

// parseRetryAfter decodes a Retry-After header: integer seconds or an
// HTTP date, clamped to [1s, 30s]; malformed or absent values back off
// one second.
func parseRetryAfter(h string, now func() time.Time) time.Duration {
	d := time.Second
	if h != "" {
		if secs, err := strconv.Atoi(h); err == nil {
			d = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(h); err == nil {
			d = t.Sub(now())
		}
	}
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// backoff computes the capped exponential backoff for the given
// attempt count (1-based), with jitter in [0.5, 1.0] of the nominal
// value so synchronized retries spread out.
func (co *Coordinator) backoff(attempt int) time.Duration {
	d := co.cfg.BaseBackoff << (attempt - 1)
	if d > co.cfg.MaxBackoff || d <= 0 {
		d = co.cfg.MaxBackoff
	}
	co.jmu.Lock()
	f := 0.5 + 0.5*co.jitter.Float64()
	co.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleep waits d (minimum 0) or until ctx ends.
func (co *Coordinator) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// merge folds the resolved units into the Report. It is deterministic
// by construction: every rule keys on shard index or witness root,
// never on arrival order or replica identity.
func (co *Coordinator) merge(models []string, units []*unit, scShards int, stats runStats) *Report {
	byKey := make(map[string]*unit, len(units))
	var scUnits []*unit
	for _, u := range units {
		byKey[u.key] = u
		if u.item.Model == "SC" {
			scUnits = append(scUnits, u)
		}
	}
	sort.Slice(scUnits, func(i, j int) bool { return scUnits[i].shardIdx < scUnits[j].shardIdx })

	rep := &Report{Retries: stats.retries, Hedges: stats.hedges, Lost: stats.lost}
	for _, m := range models {
		var out ModelOutcome
		if m == "SC" {
			out = mergeSC(scUnits, scShards)
		} else {
			u := byKey[m]
			out = ModelOutcome{Model: m, ShardsTotal: 1, WitnessCanonical: true}
			if u.result != nil {
				out.ShardsDone = 1
				out.Verdict = u.result.Verdict
				out.Witness = u.result.Witness
				out.LocWitnesses = u.result.LocWitnesses
				out.Violation = u.result.Violation
			} else {
				out.Verdict = search.VerdictInconclusive(search.StopFleet)
			}
		}
		rep.ShardsTotal += out.ShardsTotal
		rep.ShardsDone += out.ShardsDone
		rep.Degraded = rep.Degraded || out.ShardsDone < out.ShardsTotal
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep
}

// mergeSC merges the SC shard results under the lowest-witness-root
// rule:
//
//   - Any shard with a witness is definitive In; among them the lowest
//     WitnessRoot wins, reproducing exactly the root the single-box
//     engine would commit to. The witness is canonical when every
//     shard below the winning root exhausted its range (neither lost
//     nor stopped inconclusive on a governed limit).
//   - All shards exhausted without a witness is definitive Out.
//   - Otherwise the run is inconclusive: lost shards degrade to the
//     typed fleet reason; with full coverage but some governed shard
//     undecided, the lowest-indexed undecided shard's reason is
//     reported (deterministic regardless of which replica timed out
//     first).
func mergeSC(scUnits []*unit, scShards int) ModelOutcome {
	out := ModelOutcome{Model: "SC", ShardsTotal: scShards, WitnessCanonical: true}
	var win *unit
	anyLost := false
	var firstUndecided *unit
	for _, u := range scUnits {
		if u.result == nil {
			anyLost = true
			continue
		}
		out.ShardsDone++
		if st := u.result.Stats; st != nil {
			out.Stats.States += st.States
			out.Stats.MemoHits += st.MemoHits
			out.Stats.Pruned += st.Pruned
			if st.Workers > out.Stats.Workers {
				out.Stats.Workers = st.Workers
			}
		}
		switch {
		case u.result.Verdict.In():
			if win == nil || u.result.WitnessRoot < win.result.WitnessRoot {
				win = u
			}
		case u.result.Verdict.Inconclusive():
			if firstUndecided == nil {
				firstUndecided = u
			}
		}
	}
	switch {
	case win != nil:
		out.Verdict = search.VerdictIn()
		out.Witness = win.result.Witness
		for _, u := range scUnits {
			// A lost shard below the winning root may hide a lower-root
			// witness; so may one that stopped on a governed limit
			// without exhausting its range.
			exhausted := u.result != nil && !u.result.Verdict.Inconclusive()
			if !exhausted && u.lo < win.result.WitnessRoot {
				out.WitnessCanonical = false
			}
		}
	case anyLost:
		out.Verdict = search.VerdictInconclusive(search.StopFleet)
	case firstUndecided != nil:
		out.Verdict = firstUndecided.result.Verdict
	default:
		out.Verdict = search.VerdictOut()
	}
	return out
}

// truncate clips a byte slice for error messages.
func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

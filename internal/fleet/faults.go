package fleet

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Transport-level fault injection in the internal/chaos idiom: an
// explicit plan of typed events, each fired at most once against the
// first matching exchange, with a fired-event log for assertions. The
// plan itself is never mutated, so one plan can drive many transports,
// and a recorded plan replays the same faults against the same request
// sequence. The fleet's own tests and cmd/fleetctl's use it to prove
// retry, hedge, breaker, and degrade behavior without real network
// failures.

// FaultKind enumerates the transport faults.
type FaultKind string

const (
	// FaultDrop fails the exchange with a transport error before it
	// reaches the replica — indistinguishable from a dead process.
	FaultDrop FaultKind = "drop"
	// FaultDelay holds the request for Delay before forwarding it —
	// a straggler, the hedge trigger.
	FaultDelay FaultKind = "delay"
	// FaultCorrupt forwards the exchange but truncates the response
	// body mid-JSON — a torn response the coordinator must reject.
	FaultCorrupt FaultKind = "corrupt"
	// Fault500 synthesizes a 500 without reaching the replica.
	Fault500 FaultKind = "500"
	// Fault503 synthesizes a shed (503 + Retry-After) without reaching
	// the replica.
	Fault503 FaultKind = "503"
)

// FaultEvent is one planned fault. An event matches an exchange when
// the request URL contains Replica (empty = any) and Skip earlier
// matching exchanges have already passed it by.
type FaultEvent struct {
	Kind FaultKind
	// Replica selects requests whose URL contains this substring
	// (typically a replica's base URL; empty matches every request).
	Replica string
	// Skip arms the event only after this many matching exchanges have
	// been seen (0 = fire on the first match).
	Skip int
	// Delay is the hold time for FaultDelay.
	Delay time.Duration
	// RetryAfter is the Retry-After hint in seconds for Fault503
	// (0 = header omitted).
	RetryAfter int
}

// FaultPlan is an ordered list of fault events. Earlier events get
// first claim on a matching exchange.
type FaultPlan struct {
	Events []FaultEvent
}

// FaultTransport wraps an http.RoundTripper with a fault plan. It is
// safe for the concurrent exchanges a dispatch round produces.
type FaultTransport struct {
	inner http.RoundTripper

	mu    sync.Mutex
	plan  *FaultPlan
	fired []bool
	seen  []int // matching exchanges observed per event, for Skip
}

// NewFaultTransport binds a plan to an inner transport (nil inner
// means http.DefaultTransport; nil plan means no faults).
func NewFaultTransport(plan *FaultPlan, inner http.RoundTripper) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if plan == nil {
		plan = &FaultPlan{}
	}
	return &FaultTransport{
		inner: inner,
		plan:  plan,
		fired: make([]bool, len(plan.Events)),
		seen:  make([]int, len(plan.Events)),
	}
}

// claim finds the first unfired event matching the URL, honoring each
// event's Skip count, and marks it fired.
func (t *FaultTransport) claim(url string) (FaultEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.plan.Events {
		if t.fired[i] {
			continue
		}
		if e.Replica != "" && !strings.Contains(url, e.Replica) {
			continue
		}
		if t.seen[i] < e.Skip {
			t.seen[i]++
			continue
		}
		t.fired[i] = true
		return e, true
	}
	return FaultEvent{}, false
}

// RoundTrip applies at most one planned fault to the exchange.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	e, ok := t.claim(req.URL.String())
	if !ok {
		return t.inner.RoundTrip(req)
	}
	switch e.Kind {
	case FaultDrop:
		return nil, &droppedError{url: req.URL.String()}
	case FaultDelay:
		select {
		case <-time.After(e.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case FaultCorrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(data) > 2 {
			data = data[:len(data)/2] // torn mid-body: no longer valid JSON
		}
		resp.Body = io.NopCloser(bytes.NewReader(data))
		resp.ContentLength = int64(len(data))
		return resp, nil
	case Fault500:
		return synthesize(req, http.StatusInternalServerError, nil, "injected 500"), nil
	case Fault503:
		h := http.Header{}
		if e.RetryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(e.RetryAfter))
		}
		return synthesize(req, http.StatusServiceUnavailable, h, "injected shed"), nil
	default:
		return t.inner.RoundTrip(req)
	}
}

// Fired reports, per plan event, whether it has fired.
func (t *FaultTransport) Fired() []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]bool(nil), t.fired...)
}

// AllFired reports whether every planned event fired. Unfired events
// are dead weight in a fault plan — the scenario did not exercise them.
func (t *FaultTransport) AllFired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range t.fired {
		if !f {
			return false
		}
	}
	return true
}

// droppedError is the transport error FaultDrop synthesizes.
type droppedError struct{ url string }

func (e *droppedError) Error() string { return "injected drop: " + e.url }

// synthesize builds an in-memory response for faults that never reach
// the replica.
func synthesize(req *http.Request, status int, h http.Header, body string) *http.Response {
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		StatusCode:    status,
		Status:        http.StatusText(status),
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
	}
}

var _ http.RoundTripper = (*FaultTransport)(nil)

package dag

import (
	"math/rand"
	"testing"
)

func TestChain(t *testing.T) {
	d := Chain(4)
	if d.NumNodes() != 4 || d.NumEdges() != 3 {
		t.Fatalf("chain: %v", d)
	}
	if Chain(1).NumEdges() != 0 || Chain(0).NumNodes() != 0 {
		t.Fatal("degenerate chains wrong")
	}
}

func TestForkJoinShapes(t *testing.T) {
	f := Fork(4)
	if len(f.Sources()) != 1 || len(f.Sinks()) != 3 {
		t.Fatalf("fork: sources=%v sinks=%v", f.Sources(), f.Sinks())
	}
	j := Join(4)
	if len(j.Sources()) != 3 || len(j.Sinks()) != 1 {
		t.Fatalf("join: sources=%v sinks=%v", j.Sources(), j.Sinks())
	}
}

func TestGrid(t *testing.T) {
	d := Grid(3, 4)
	if d.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", d.NumNodes())
	}
	// Edge count: r*(c-1) horizontal + (r-1)*c vertical = 9 + 8 = 17.
	if d.NumEdges() != 17 {
		t.Fatalf("grid edges = %d", d.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sources()) != 1 || len(d.Sinks()) != 1 {
		t.Fatal("grid must have a single source and sink")
	}
}

func TestRandomAcyclicAndDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Random(rng, 30, 1.0)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 30*29/2 {
		t.Fatalf("p=1 dag edges = %d", d.NumEdges())
	}
	e := Random(rng, 30, 0.0)
	if e.NumEdges() != 0 {
		t.Fatalf("p=0 dag edges = %d", e.NumEdges())
	}
}

func TestRandomLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := RandomLayered(rng, 4, 3, 0.5)
	if d.NumNodes() != 12 {
		t.Fatalf("nodes = %d", d.NumNodes())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-first-layer node has at least one predecessor.
	for u := 3; u < 12; u++ {
		if d.InDegree(Node(u)) == 0 {
			t.Fatalf("layered node %d has no predecessor", u)
		}
	}
}

func TestForkJoinSeriesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := ForkJoin(rng, 3, 2)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(d.Sources()) != 1 || len(d.Sinks()) != 1 {
			t.Fatalf("fork/join dag must be single-source single-sink: %v", d)
		}
		c := MustClosure(d)
		// Source precedes everything; everything precedes sink.
		for u := Node(2); int(u) < d.NumNodes(); u++ {
			if !c.Precedes(0, u) {
				t.Fatalf("source does not precede %d", u)
			}
			if !c.Precedes(u, 1) {
				t.Fatalf("%d does not precede sink", u)
			}
		}
	}
}

func TestBinaryTreeDown(t *testing.T) {
	d := BinaryTreeDown(3)
	if d.NumNodes() != 7 || d.NumEdges() != 6 {
		t.Fatalf("tree: n=%d e=%d", d.NumNodes(), d.NumEdges())
	}
	if len(d.Sources()) != 1 || len(d.Sinks()) != 4 {
		t.Fatal("tree shape wrong")
	}
}

func TestSpawnTree(t *testing.T) {
	d := SpawnTree(3)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// levels=3: root pre+post, two level-2 children (pre+post each),
	// four level-1 leaves (pre only) = 2 + 4 + 4 = 10 nodes.
	if d.NumNodes() != 10 {
		t.Fatalf("spawn tree nodes = %d, want 10", d.NumNodes())
	}
	if len(d.Sources()) != 1 || len(d.Sinks()) != 1 {
		t.Fatalf("spawn tree: sources=%v sinks=%v", d.Sources(), d.Sinks())
	}
}

func TestGeneratorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Fork(0) },
		func() { Join(0) },
		func() { Grid(0, 3) },
		func() { ForkJoin(rand.New(rand.NewSource(1)), 1, 1) },
		func() { BinaryTreeDown(0) },
		func() { RandomLayered(rand.New(rand.NewSource(1)), 0, 1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

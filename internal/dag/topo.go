package dag

// TopoSort returns one topological sort of the dag using Kahn's
// algorithm with a deterministic (lowest-id-first) tie break, or
// ErrCycle if the graph is cyclic.
func (d *Dag) TopoSort() ([]Node, error) {
	n := d.NumNodes()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = len(d.preds[u])
	}
	// A simple binary heap over node ids keeps the output deterministic.
	var heap nodeHeap
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			heap.push(Node(u))
		}
	}
	order := make([]Node, 0, n)
	for heap.len() > 0 {
		u := heap.pop()
		order = append(order, u)
		for _, v := range d.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				heap.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// nodeHeap is a minimal binary min-heap of Nodes.
type nodeHeap struct{ a []Node }

func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) push(x Node) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() Node {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// EachTopoSort enumerates every topological sort of the dag (the set
// TS(G) of Section 2), invoking fn with each one. The slice passed to fn
// is reused between calls; copy it if it must be retained. If fn returns
// false, enumeration stops. EachTopoSort returns the number of sorts
// visited; a cyclic graph has zero topological sorts.
func (d *Dag) EachTopoSort(fn func(order []Node) bool) int {
	n := d.NumNodes()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = len(d.preds[u])
	}
	order := make([]Node, 0, n)
	visited := 0
	stopped := false

	var rec func()
	rec = func() {
		if stopped {
			return
		}
		if len(order) == n {
			visited++
			if !fn(order) {
				stopped = true
			}
			return
		}
		for u := 0; u < n; u++ {
			if indeg[u] != 0 {
				continue
			}
			indeg[u] = -1 // mark placed
			order = append(order, Node(u))
			for _, v := range d.succs[u] {
				indeg[v]--
			}
			rec()
			for _, v := range d.succs[u] {
				indeg[v]++
			}
			order = order[:len(order)-1]
			indeg[u] = 0
			if stopped {
				return
			}
		}
	}
	rec()
	return visited
}

// CountTopoSorts returns |TS(G)|. The count saturates at limit when
// limit > 0 (enumeration stops early); pass limit <= 0 to count all.
func (d *Dag) CountTopoSorts(limit int) int {
	count := 0
	d.EachTopoSort(func([]Node) bool {
		count++
		return limit <= 0 || count < limit
	})
	return count
}

// IsTopoSort reports whether order is a topological sort of the dag:
// a permutation of the nodes in which every edge points forward.
func (d *Dag) IsTopoSort(order []Node) bool {
	if len(order) != d.NumNodes() {
		return false
	}
	pos := make([]int, d.NumNodes())
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range order {
		if u < 0 || int(u) >= d.NumNodes() || pos[u] != -1 {
			return false
		}
		pos[u] = i
	}
	for u := range d.succs {
		for _, v := range d.succs[u] {
			if pos[u] >= pos[v] {
				return false
			}
		}
	}
	return true
}

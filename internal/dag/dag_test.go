package dag

import (
	"testing"

	"repro/internal/bitset"
)

func TestNewAndAddNode(t *testing.T) {
	d := New(2)
	if d.NumNodes() != 2 || d.NumEdges() != 0 {
		t.Fatalf("New(2): nodes=%d edges=%d", d.NumNodes(), d.NumEdges())
	}
	u := d.AddNode()
	if u != 2 || d.NumNodes() != 3 {
		t.Fatalf("AddNode returned %d, nodes=%d", u, d.NumNodes())
	}
}

func TestAddEdge(t *testing.T) {
	d := New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if d.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	// Duplicate is a no-op.
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 1 {
		t.Fatalf("duplicate edge counted: %d", d.NumEdges())
	}
	// Self-loop rejected.
	if err := d.AddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestDegreesAndAdjacency(t *testing.T) {
	d := New(4)
	d.MustAddEdge(0, 1)
	d.MustAddEdge(0, 2)
	d.MustAddEdge(1, 3)
	d.MustAddEdge(2, 3)
	if d.OutDegree(0) != 2 || d.InDegree(0) != 0 {
		t.Fatalf("node 0 degrees: out=%d in=%d", d.OutDegree(0), d.InDegree(0))
	}
	if d.OutDegree(3) != 0 || d.InDegree(3) != 2 {
		t.Fatalf("node 3 degrees: out=%d in=%d", d.OutDegree(3), d.InDegree(3))
	}
	if got := d.Succs(0); len(got) != 2 {
		t.Fatalf("Succs(0) = %v", got)
	}
	if got := d.Preds(3); len(got) != 2 {
		t.Fatalf("Preds(3) = %v", got)
	}
}

func TestSourcesSinks(t *testing.T) {
	d := Diamond()
	if s := d.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Sources = %v", s)
	}
	if s := d.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v", s)
	}
	a := Antichain(3)
	if len(a.Sources()) != 3 || len(a.Sinks()) != 3 {
		t.Fatal("antichain sources/sinks wrong")
	}
}

func TestEdgesSorted(t *testing.T) {
	d := New(3)
	d.MustAddEdge(1, 2)
	d.MustAddEdge(0, 2)
	d.MustAddEdge(0, 1)
	e := d.Edges()
	want := [][2]Node{{0, 1}, {0, 2}, {1, 2}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestCloneEqual(t *testing.T) {
	d := Diamond()
	c := d.Clone()
	if !d.Equal(c) || !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	c.MustAddEdge(0, 3)
	if d.Equal(c) {
		t.Fatal("mutation of clone affected equality")
	}
	if d.HasEdge(0, 3) {
		t.Fatal("clone shares storage")
	}
}

func TestEqualDifferentEdgeSets(t *testing.T) {
	a := New(3)
	a.MustAddEdge(0, 1)
	b := New(3)
	b.MustAddEdge(1, 2)
	if a.Equal(b) {
		t.Fatal("different edge sets compare equal")
	}
}

func TestValidateAcyclic(t *testing.T) {
	if err := Diamond().Validate(); err != nil {
		t.Fatal(err)
	}
	cyc := New(3)
	cyc.MustAddEdge(0, 1)
	cyc.MustAddEdge(1, 2)
	cyc.MustAddEdge(2, 0)
	if err := cyc.Validate(); err != ErrCycle {
		t.Fatalf("Validate on cycle = %v, want ErrCycle", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	d := Diamond()
	keep := bitset.New(4)
	keep.Add(0)
	keep.Add(1)
	keep.Add(3)
	sub, newToOld := d.InducedSubgraph(keep)
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	// Edges inside keep: 0->1, 1->3. Edge 0->2, 2->3 are dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d: %v", sub.NumEdges(), sub.Edges())
	}
	if newToOld[0] != 0 || newToOld[1] != 1 || newToOld[2] != 3 {
		t.Fatalf("newToOld = %v", newToOld)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatalf("sub edges: %v", sub.Edges())
	}
}

func TestIsDownwardClosed(t *testing.T) {
	d := Diamond()
	set := bitset.New(4)
	if !d.IsDownwardClosed(set) {
		t.Fatal("empty set must be downward closed")
	}
	set.Add(0)
	set.Add(1)
	if !d.IsDownwardClosed(set) {
		t.Fatal("{0,1} is a prefix of the diamond")
	}
	set.Add(3)
	if d.IsDownwardClosed(set) {
		t.Fatal("{0,1,3} misses predecessor 2 of 3")
	}
	set.Add(2)
	if !d.IsDownwardClosed(set) {
		t.Fatal("full set must be downward closed")
	}
}

func TestDownwardClosure(t *testing.T) {
	d := Diamond()
	set := bitset.New(4)
	set.Add(3)
	got := d.DownwardClosure(set)
	if got.Len() != 4 {
		t.Fatalf("closure of {3} = %s", got)
	}
	set2 := bitset.New(4)
	set2.Add(1)
	got2 := d.DownwardClosure(set2)
	if got2.String() != "{0, 1}" {
		t.Fatalf("closure of {1} = %s", got2)
	}
}

func TestAddFinalNode(t *testing.T) {
	d := Diamond()
	f := d.AddFinalNode()
	if f != 4 {
		t.Fatalf("final node id = %d", f)
	}
	for u := Node(0); u < 4; u++ {
		if !d.HasEdge(u, f) {
			t.Fatalf("missing edge %d->final", u)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	d := New(3)
	d.MustAddEdge(0, 2)
	if got := d.String(); got != "dag(n=3; 0->2)" {
		t.Fatalf("String = %q", got)
	}
}

// Package dag implements the directed-acyclic-graph substrate underlying
// computations (Definition 1 of Frigo & Luchangco, "Computation-Centric
// Memory Models", SPAA 1998).
//
// A Dag is a mutable multigraph-free directed graph over nodes 0..n-1.
// Acyclicity is not enforced on every AddEdge (that would be quadratic);
// callers construct graphs and then rely on Validate, TopoSort, or the
// reachability Closure, all of which detect cycles.
//
// The package also provides the dag-theoretic notions used throughout the
// paper: prefixes (downward-closed subgraphs), relaxations (edge subsets),
// topological sorts and their exhaustive enumeration, and a library of
// generators for the dag shapes used in the experiments.
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Node identifies a vertex of a Dag. Nodes are dense indices 0..n-1.
type Node int32

// None is the sentinel "no node" value; the paper writes it as ⊥ (bottom).
const None Node = -1

// ErrCycle is reported by operations that require acyclicity.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Dag is a directed graph intended to be acyclic. The zero value is an
// empty graph ready to use.
type Dag struct {
	succs [][]Node
	preds [][]Node
	edges int
}

// New returns a Dag with n nodes and no edges.
func New(n int) *Dag {
	if n < 0 {
		panic(fmt.Sprintf("dag: negative node count %d", n))
	}
	return &Dag{succs: make([][]Node, n), preds: make([][]Node, n)}
}

// NumNodes returns the number of nodes.
func (d *Dag) NumNodes() int { return len(d.succs) }

// NumEdges returns the number of edges.
func (d *Dag) NumEdges() int { return d.edges }

// AddNode appends a fresh node with no edges and returns its id.
func (d *Dag) AddNode() Node {
	d.succs = append(d.succs, nil)
	d.preds = append(d.preds, nil)
	return Node(len(d.succs) - 1)
}

func (d *Dag) checkNode(u Node) {
	if u < 0 || int(u) >= len(d.succs) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", u, len(d.succs)))
	}
}

// AddEdge inserts the edge (u, v). Self-loops are rejected; duplicate
// edges are ignored. Cycle creation is not checked here (see Validate).
func (d *Dag) AddEdge(u, v Node) error {
	d.checkNode(u)
	d.checkNode(v)
	if u == v {
		return fmt.Errorf("dag: self-loop on node %d", u)
	}
	if d.HasEdge(u, v) {
		return nil
	}
	d.succs[u] = append(d.succs[u], v)
	d.preds[v] = append(d.preds[v], u)
	d.edges++
	return nil
}

// MustAddEdge is AddEdge but panics on error; convenient in generators
// and tests where the edge is known to be well formed.
func (d *Dag) MustAddEdge(u, v Node) {
	if err := d.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the edge (u, v) is present.
func (d *Dag) HasEdge(u, v Node) bool {
	d.checkNode(u)
	d.checkNode(v)
	for _, w := range d.succs[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Succs returns the direct successors of u. The slice is shared with the
// Dag and must not be modified.
func (d *Dag) Succs(u Node) []Node {
	d.checkNode(u)
	return d.succs[u]
}

// Preds returns the direct predecessors of u. The slice is shared with
// the Dag and must not be modified.
func (d *Dag) Preds(u Node) []Node {
	d.checkNode(u)
	return d.preds[u]
}

// OutDegree returns the number of direct successors of u.
func (d *Dag) OutDegree(u Node) int { return len(d.Succs(u)) }

// InDegree returns the number of direct predecessors of u.
func (d *Dag) InDegree(u Node) int { return len(d.Preds(u)) }

// Sources returns the nodes with no predecessors, in increasing order.
func (d *Dag) Sources() []Node {
	var out []Node
	for u := range d.preds {
		if len(d.preds[u]) == 0 {
			out = append(out, Node(u))
		}
	}
	return out
}

// Sinks returns the nodes with no successors, in increasing order.
func (d *Dag) Sinks() []Node {
	var out []Node
	for u := range d.succs {
		if len(d.succs[u]) == 0 {
			out = append(out, Node(u))
		}
	}
	return out
}

// Edges returns all edges sorted lexicographically.
func (d *Dag) Edges() [][2]Node {
	out := make([][2]Node, 0, d.edges)
	for u := range d.succs {
		for _, v := range d.succs[u] {
			out = append(out, [2]Node{Node(u), v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (d *Dag) Clone() *Dag {
	c := &Dag{
		succs: make([][]Node, len(d.succs)),
		preds: make([][]Node, len(d.preds)),
		edges: d.edges,
	}
	for u := range d.succs {
		c.succs[u] = append([]Node(nil), d.succs[u]...)
		c.preds[u] = append([]Node(nil), d.preds[u]...)
	}
	return c
}

// Equal reports whether d and o have the same node count and edge set.
func (d *Dag) Equal(o *Dag) bool {
	if d.NumNodes() != o.NumNodes() || d.NumEdges() != o.NumEdges() {
		return false
	}
	for u := range d.succs {
		for _, v := range d.succs[u] {
			if !o.HasEdge(Node(u), v) {
				return false
			}
		}
	}
	return true
}

// Validate returns ErrCycle if the graph has a cycle, nil otherwise.
func (d *Dag) Validate() error {
	if _, err := d.TopoSort(); err != nil {
		return err
	}
	return nil
}

// InducedSubgraph returns the subgraph induced by keep (nodes renumbered
// densely in increasing original order) together with the map from new
// node ids to original ids.
func (d *Dag) InducedSubgraph(keep *bitset.Set) (*Dag, []Node) {
	if keep.Cap() != d.NumNodes() {
		panic("dag: InducedSubgraph bitset capacity mismatch")
	}
	oldToNew := make([]Node, d.NumNodes())
	for i := range oldToNew {
		oldToNew[i] = None
	}
	var newToOld []Node
	keep.ForEach(func(i int) bool {
		oldToNew[i] = Node(len(newToOld))
		newToOld = append(newToOld, Node(i))
		return true
	})
	sub := New(len(newToOld))
	for _, u := range newToOld {
		for _, v := range d.succs[u] {
			if oldToNew[v] != None {
				sub.MustAddEdge(oldToNew[u], oldToNew[v])
			}
		}
	}
	return sub, newToOld
}

// IsDownwardClosed reports whether the node set contains every
// predecessor of each of its members, i.e. whether it induces a prefix
// of the dag in the sense of Section 2 of the paper.
func (d *Dag) IsDownwardClosed(set *bitset.Set) bool {
	if set.Cap() != d.NumNodes() {
		panic("dag: IsDownwardClosed bitset capacity mismatch")
	}
	ok := true
	set.ForEach(func(i int) bool {
		for _, p := range d.preds[i] {
			if !set.Contains(int(p)) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// DownwardClosure returns the smallest downward-closed superset of set.
func (d *Dag) DownwardClosure(set *bitset.Set) *bitset.Set {
	out := set.Clone()
	stack := set.Elements()
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.preds[u] {
			if !out.Contains(int(p)) {
				out.Add(int(p))
				stack = append(stack, int(p))
			}
		}
	}
	return out
}

// AddFinalNode appends a node that succeeds every existing node, as in
// the augmented computation of Definition 11, and returns its id.
func (d *Dag) AddFinalNode() Node {
	f := d.AddNode()
	for u := Node(0); u < f; u++ {
		d.MustAddEdge(u, f)
	}
	return f
}

// String renders the dag as "dag(n=3; 0->1 0->2)".
func (d *Dag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dag(n=%d;", d.NumNodes())
	for _, e := range d.Edges() {
		fmt.Fprintf(&b, " %d->%d", e[0], e[1])
	}
	b.WriteByte(')')
	return b.String()
}

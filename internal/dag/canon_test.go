package dag

import (
	"fmt"
	"math/rand"
	"testing"
)

// orderedMask recomputes the enumeration bitmask of an ordered-universe
// dag: slot (u,v), u < v, slots ordered u-ascending then v-ascending.
func orderedMask(d *Dag) uint64 {
	n := d.NumNodes()
	var mask uint64
	slot := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if d.HasEdge(Node(u), Node(v)) {
				mask |= 1 << uint(slot)
			}
			slot++
		}
	}
	return mask
}

// eachLabeling enumerates label vectors over a palette of k labels in
// lexicographic order (node 0 most significant), mirroring the
// computation enumeration's label recursion.
func eachLabeling(n, k int, fn func(labels []int32)) {
	labels := make([]int32, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(labels)
			return
		}
		for l := int32(0); l < int32(k); l++ {
			labels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
}

func classKey(d *Dag, labels []int32) string {
	return fmt.Sprint(orderedMask(d), labels)
}

// TestCanonicalizerPartitionsUniverse checks, by brute force over the
// whole ordered universe at small n, that the canonicalizer marks
// exactly one member per isomorphism class — the enumeration-order
// first — and that the reported orbit is exactly the class size.
func TestCanonicalizerPartitionsUniverse(t *testing.T) {
	const palette = 3 // mirrors 1 location: {N, R(0), W(0)}
	for n := 0; n <= 4; n++ {
		type classInfo struct {
			size      int64
			firstIdx  int
			canonIdx  int
			canonSeen int
			orbit     int64
		}
		classes := make(map[string]*classInfo)
		var memberIdx int
		cz := NewCanonicalizer()
		EachDagOnNodes(n, func(d *Dag) bool {
			dagCanon := cz.AnalyzeDag(d)
			eachLabeling(n, palette, func(labels []int32) {
				md, ml, _ := MinimalForm(d, labels)
				key := classKey(md, ml)
				info := classes[key]
				if info == nil {
					info = &classInfo{firstIdx: memberIdx, canonIdx: -1}
					classes[key] = info
				}
				info.size++
				if dagCanon {
					if orbit, ok := cz.LabelOrbit(labels); ok {
						info.canonSeen++
						info.canonIdx = memberIdx
						info.orbit = orbit
						// The canonical member must be MinimalForm's own
						// fixed point.
						if classKey(d, labels) != key {
							t.Fatalf("n=%d member %d: flagged canonical but MinimalForm maps it elsewhere", n, memberIdx)
						}
					}
				}
				memberIdx++
			})
			return true
		})
		total := int64(0)
		for key, info := range classes {
			if info.canonSeen != 1 {
				t.Fatalf("n=%d class %s: %d canonical members, want 1", n, key, info.canonSeen)
			}
			if info.canonIdx != info.firstIdx {
				t.Fatalf("n=%d class %s: canonical member at index %d, enumeration-first at %d", n, key, info.canonIdx, info.firstIdx)
			}
			if info.orbit != info.size {
				t.Fatalf("n=%d class %s: orbit %d, class size %d", n, key, info.orbit, info.size)
			}
			total += info.size
		}
		want := int64(1)
		for i := 0; i < n*(n-1)/2; i++ {
			want *= 2
		}
		for i := 0; i < n; i++ {
			want *= palette
		}
		if total != want {
			t.Fatalf("n=%d: orbits cover %d members, universe has %d", n, total, want)
		}
	}
}

func TestCanonicalizerLinext(t *testing.T) {
	cz := NewCanonicalizer()
	// Empty dag on 4 nodes: 4! linear extensions.
	if !cz.AnalyzeDag(New(4)) {
		t.Fatal("empty dag must be canonical")
	}
	if got := cz.Linext(); got != 24 {
		t.Fatalf("linext(empty 4) = %d, want 24", got)
	}
	// Chain 0->1->2->3: a single extension, trivially canonical.
	chain := New(4)
	chain.MustAddEdge(0, 1)
	chain.MustAddEdge(1, 2)
	chain.MustAddEdge(2, 3)
	if !cz.AnalyzeDag(chain) {
		t.Fatal("chain must be canonical")
	}
	if got := cz.Linext(); got != 1 {
		t.Fatalf("linext(chain 4) = %d, want 1", got)
	}
	if !cz.trivial {
		t.Fatal("chain has only the identity relabeling")
	}
	// Fork 0->1, 0->2: extensions 012 and 021 -> 2.
	fork := New(3)
	fork.MustAddEdge(0, 1)
	fork.MustAddEdge(0, 2)
	if !cz.AnalyzeDag(fork) {
		t.Fatal("fork must be canonical")
	}
	if got := cz.Linext(); got != 2 {
		t.Fatalf("linext(fork) = %d, want 2", got)
	}
	if got := cz.NumPerms(); got != 2 {
		t.Fatalf("fork has %d mask-preserving relabelings, want 2 (identity + swap 1,2)", got)
	}
	// Labels breaking the 1<->2 symmetry: the class has two members on
	// this mask and only the lexicographically smaller is canonical.
	if orbit, ok := cz.LabelOrbit([]int32{0, 1, 2}); !ok || orbit != 2 {
		t.Fatalf("fork labels [0 1 2]: orbit %d ok %v, want 2 true", orbit, ok)
	}
	if _, ok := cz.LabelOrbit([]int32{0, 2, 1}); ok {
		t.Fatal("fork labels [0 2 1] must be non-canonical")
	}
	// Symmetric labels: orbit 1 via a labeled automorphism.
	if orbit, ok := cz.LabelOrbit([]int32{0, 1, 1}); !ok || orbit != 1 {
		t.Fatalf("fork labels [0 1 1]: orbit %d ok %v, want 1 true", orbit, ok)
	}
	// Empty dag on 2 nodes with distinct labels: orbit 2.
	if !cz.AnalyzeDag(New(2)) {
		t.Fatal("empty dag must be canonical")
	}
	if orbit, ok := cz.LabelOrbit([]int32{0, 1}); !ok || orbit != 2 {
		t.Fatalf("empty-2 labels [0 1]: orbit %d ok %v, want 2 true", orbit, ok)
	}
	if _, ok := cz.LabelOrbit([]int32{1, 0}); ok {
		t.Fatal("empty-2 labels [1 0] must be non-canonical")
	}
}

// scramble applies a random topological-order-free relabeling to an
// ordered dag, producing an isomorphic but arbitrarily numbered dag.
func scramble(d *Dag, labels []int32, rng *rand.Rand) (*Dag, []int32) {
	n := d.NumNodes()
	perm := rng.Perm(n)
	out := New(n)
	outLabels := make([]int32, n)
	for u := 0; u < n; u++ {
		outLabels[perm[u]] = labels[u]
		for _, v := range d.Succs(Node(u)) {
			out.MustAddEdge(Node(perm[u]), Node(perm[v]))
		}
	}
	return out, outLabels
}

// TestMinimalFormInvariance: MinimalForm is constant on isomorphism
// classes and idempotent.
func TestMinimalFormInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6) + 1
		d := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 1 {
					d.MustAddEdge(Node(u), Node(v))
				}
			}
		}
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(rng.Intn(3))
		}
		md, ml, _ := MinimalForm(d, labels)
		if err := md.Validate(); err != nil {
			t.Fatalf("trial %d: minimal form not acyclic: %v", trial, err)
		}
		if orderedMask(md) > orderedMask(d) {
			t.Fatalf("trial %d: minimal form mask %d exceeds input mask %d", trial, orderedMask(md), orderedMask(d))
		}
		sd, sl := scramble(d, labels, rng)
		md2, ml2, _ := MinimalForm(sd, sl)
		if classKey(md, ml) != classKey(md2, ml2) {
			t.Fatalf("trial %d: MinimalForm not isomorphism-invariant:\n d=%v labels=%v -> %v %v\n scrambled -> %v %v",
				trial, d, labels, md, ml, md2, ml2)
		}
		md3, ml3, _ := MinimalForm(md, ml)
		if classKey(md, ml) != classKey(md3, ml3) {
			t.Fatalf("trial %d: MinimalForm not idempotent", trial)
		}
	}
}

// FuzzMinimalForm is the canonical-labeling fuzz target: the canonical
// form must be isomorphic to its input (checked via invariance under a
// derived scramble) and idempotent, and the Canonicalizer must agree
// with MinimalForm about which members are canonical.
func FuzzMinimalForm(f *testing.F) {
	f.Add(uint16(0), uint32(0), uint32(0))
	f.Add(uint16(3), uint32(0b101), uint32(9))
	f.Add(uint16(4), uint32(0b110101), uint32(1234))
	f.Add(uint16(5), uint32(0x3ff), uint32(98765))
	f.Fuzz(func(t *testing.T, rawN uint16, mask uint32, rawLabels uint32) {
		n := int(rawN % 6)
		d := New(n)
		slot := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if mask&(1<<uint(slot)) != 0 {
					d.MustAddEdge(Node(u), Node(v))
				}
				slot++
			}
		}
		labels := make([]int32, n)
		lv := rawLabels
		for i := range labels {
			labels[i] = int32(lv % 3)
			lv /= 3
		}
		md, ml, _ := MinimalForm(d, labels)
		if err := md.Validate(); err != nil {
			t.Fatalf("minimal form not acyclic: %v", err)
		}
		// Idempotent.
		md2, ml2, _ := MinimalForm(md, ml)
		if classKey(md, ml) != classKey(md2, ml2) {
			t.Fatalf("not idempotent: %v %v -> %v %v", md, ml, md2, ml2)
		}
		// Isomorphic to the input: scramble with a deterministic perm
		// derived from the inputs and re-canonicalize.
		rng := rand.New(rand.NewSource(int64(mask)*31 + int64(rawLabels)))
		sd, sl := scramble(d, labels, rng)
		md3, ml3, _ := MinimalForm(sd, sl)
		if classKey(md, ml) != classKey(md3, ml3) {
			t.Fatalf("not isomorphism-invariant: %v %v vs %v %v", md, ml, md3, ml3)
		}
		// Canonicalizer agreement on the ordered input.
		cz := NewCanonicalizer()
		isCanon := false
		if cz.AnalyzeDag(d) {
			_, isCanon = cz.LabelOrbit(labels)
		}
		wantCanon := classKey(d, labels) == classKey(md, ml)
		if isCanon != wantCanon {
			t.Fatalf("canonicalizer says canonical=%v, MinimalForm says %v for %v %v", isCanon, wantCanon, d, labels)
		}
	})
}

package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClosureDiamond(t *testing.T) {
	c := MustClosure(Diamond())
	cases := []struct {
		u, v Node
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 3, true}, {2, 3, true},
		{1, 2, false}, {2, 1, false},
		{3, 0, false}, {1, 0, false},
		{0, 0, false}, // strict precedence
	}
	for _, tc := range cases {
		if got := c.Precedes(tc.u, tc.v); got != tc.want {
			t.Errorf("Precedes(%d, %d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestClosureBottom(t *testing.T) {
	c := MustClosure(Diamond())
	for u := Node(0); u < 4; u++ {
		if !c.Precedes(None, u) {
			t.Fatalf("⊥ must precede node %d", u)
		}
		if c.Precedes(u, None) {
			t.Fatalf("node %d must not precede ⊥", u)
		}
		if !c.PrecedesEq(None, u) {
			t.Fatalf("⊥ ≼ %d must hold", u)
		}
	}
	if c.Precedes(None, None) {
		t.Fatal("⊥ ≺ ⊥ must not hold")
	}
	if !c.PrecedesEq(None, None) {
		t.Fatal("⊥ ≼ ⊥ must hold")
	}
}

func TestClosurePrecedesEqComparable(t *testing.T) {
	c := MustClosure(Diamond())
	if !c.PrecedesEq(1, 1) {
		t.Fatal("u ≼ u must hold")
	}
	if !c.Comparable(0, 3) || c.Comparable(1, 2) {
		t.Fatal("Comparable wrong on diamond")
	}
}

func TestClosureCycle(t *testing.T) {
	d := New(2)
	d.MustAddEdge(0, 1)
	d.MustAddEdge(1, 0)
	if _, err := NewClosure(d); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestDescendantsAncestors(t *testing.T) {
	c := MustClosure(Chain(4))
	if got := c.Descendants(0).String(); got != "{1, 2, 3}" {
		t.Fatalf("Descendants(0) = %s", got)
	}
	if got := c.Ancestors(3).String(); got != "{0, 1, 2}" {
		t.Fatalf("Ancestors(3) = %s", got)
	}
	if !c.Descendants(3).Empty() || !c.Ancestors(0).Empty() {
		t.Fatal("endpoints of chain have wrong closures")
	}
}

func TestTransitiveClosureDag(t *testing.T) {
	tc, err := TransitiveClosureDag(Chain(4))
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumEdges() != 6 { // C(4,2) pairs in a chain
		t.Fatalf("closure edges = %d, want 6", tc.NumEdges())
	}
	if !tc.HasEdge(0, 3) {
		t.Fatal("closure misses 0->3")
	}
}

func TestTransitiveReduction(t *testing.T) {
	// Chain plus redundant shortcut edges.
	d := Chain(4)
	d.MustAddEdge(0, 2)
	d.MustAddEdge(0, 3)
	d.MustAddEdge(1, 3)
	tr, err := TransitiveReduction(d)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(Chain(4)) {
		t.Fatalf("reduction = %v, want chain", tr)
	}
}

func TestTransitiveReductionKeepsNecessaryEdges(t *testing.T) {
	d := Diamond()
	tr, err := TransitiveReduction(d)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(d) {
		t.Fatalf("diamond is already reduced; got %v", tr)
	}
}

// Property: Precedes(u, v) iff some topological sort check agrees with a
// DFS reachability computation, and reduction/closure are idempotent
// fixed points with identical precedence relations.
func TestQuickClosureAgainstDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		d := Random(rng, n, 0.3)
		c := MustClosure(d)

		var reach func(u, v Node, seen map[Node]bool) bool
		reach = func(u, v Node, seen map[Node]bool) bool {
			for _, w := range d.Succs(u) {
				if w == v {
					return true
				}
				if !seen[w] {
					seen[w] = true
					if reach(w, v, seen) {
						return true
					}
				}
			}
			return false
		}
		for u := Node(0); int(u) < n; u++ {
			for v := Node(0); int(v) < n; v++ {
				if u == v {
					continue
				}
				if c.Precedes(u, v) != reach(u, v, map[Node]bool{}) {
					return false
				}
			}
		}

		tr, err := TransitiveReduction(d)
		if err != nil {
			return false
		}
		tc, err := TransitiveClosureDag(tr)
		if err != nil {
			return false
		}
		tc2, err := TransitiveClosureDag(d)
		if err != nil {
			return false
		}
		return tc.Equal(tc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

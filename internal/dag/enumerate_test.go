package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestEachPrefixSetDiamond(t *testing.T) {
	d := Diamond()
	count := d.EachPrefixSet(func(set *bitset.Set) bool {
		if !d.IsDownwardClosed(set) {
			t.Fatalf("enumerated non-prefix %s", set)
		}
		return true
	})
	// Prefixes of diamond: {}, {0}, {0,1}, {0,2}, {0,1,2}, {0,1,2,3}.
	if count != 6 {
		t.Fatalf("prefix count = %d, want 6", count)
	}
}

func TestEachPrefixSetChainAntichain(t *testing.T) {
	if got := Chain(5).CountPrefixes(); got != 6 {
		t.Fatalf("chain5 prefixes = %d, want 6", got)
	}
	if got := Antichain(4).CountPrefixes(); got != 16 {
		t.Fatalf("antichain4 prefixes = %d, want 16", got)
	}
	if got := New(0).CountPrefixes(); got != 1 {
		t.Fatalf("empty prefixes = %d, want 1", got)
	}
}

func TestEachPrefixSetDistinctAndEarlyStop(t *testing.T) {
	d := Grid(2, 2)
	seen := map[string]bool{}
	d.EachPrefixSet(func(set *bitset.Set) bool {
		s := set.String()
		if seen[s] {
			t.Fatalf("duplicate prefix %s", s)
		}
		seen[s] = true
		return true
	})
	n := 0
	d.EachPrefixSet(func(*bitset.Set) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestEachRelaxation(t *testing.T) {
	d := Diamond() // 4 edges -> 16 relaxations
	count := d.EachRelaxation(func(r *Dag) bool {
		if !r.IsRelaxationOf(d) {
			t.Fatalf("enumerated non-relaxation %v", r)
		}
		return true
	})
	if count != 16 {
		t.Fatalf("relaxation count = %d, want 16", count)
	}
}

func TestIsRelaxationOf(t *testing.T) {
	d := Diamond()
	r := New(4)
	r.MustAddEdge(0, 1)
	if !r.IsRelaxationOf(d) {
		t.Fatal("subset of edges rejected")
	}
	r.MustAddEdge(0, 3)
	if r.IsRelaxationOf(d) {
		t.Fatal("extra edge accepted")
	}
	if New(3).IsRelaxationOf(d) {
		t.Fatal("node count mismatch accepted")
	}
	if !d.IsRelaxationOf(d) {
		t.Fatal("dag must be a relaxation of itself")
	}
}

func TestEachDagOnNodesCounts(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 8, 4: 64} {
		got := EachDagOnNodes(n, func(d *Dag) bool {
			if d.NumNodes() != n {
				t.Fatalf("wrong node count %d", d.NumNodes())
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("enumerated cyclic dag: %v", err)
			}
			return true
		})
		if got != want {
			t.Errorf("EachDagOnNodes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEachDagOnNodesEarlyStop(t *testing.T) {
	n := 0
	got := EachDagOnNodes(4, func(*Dag) bool {
		n++
		return n < 5
	})
	if got != 5 {
		t.Fatalf("visited = %d, want 5", got)
	}
}

func TestEnumerationGuards(t *testing.T) {
	// Explosion guards must panic rather than hang.
	big := New(40)
	for i := 0; i < 32; i++ {
		big.MustAddEdge(Node(i), Node(i+8))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EachRelaxation must guard against 2^31 subsets")
			}
		}()
		big.EachRelaxation(func(*Dag) bool { return true })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EachDagOnNodes must guard against huge n")
			}
		}()
		EachDagOnNodes(10, func(*Dag) bool { return true })
	}()
}

// Property: the number of prefixes of a chain of length n is n+1, and
// every downward-closed subset found by brute force is enumerated.
func TestQuickPrefixesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		d := Random(rng, n, 0.4)
		enumerated := map[string]bool{}
		d.EachPrefixSet(func(set *bitset.Set) bool {
			enumerated[set.String()] = true
			return true
		})
		brute := 0
		for mask := 0; mask < 1<<uint(n); mask++ {
			set := bitset.New(n)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					set.Add(i)
				}
			}
			if d.IsDownwardClosed(set) {
				brute++
				if !enumerated[set.String()] {
					return false
				}
			}
		}
		return brute == len(enumerated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

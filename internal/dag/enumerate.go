package dag

import "repro/internal/bitset"

// EachPrefixSet enumerates every downward-closed node set of the dag
// (each induces a prefix in the sense of Section 2, including the empty
// set and the full node set). The bitset passed to fn is reused; clone
// it to retain. Returns the number of prefixes visited; enumeration
// stops early if fn returns false.
//
// The enumeration walks nodes in topological order and either excludes a
// node (forcing exclusion of all its descendants) or includes it (its
// predecessors are already decided, so inclusion is legal iff they are
// all included).
func (d *Dag) EachPrefixSet(fn func(set *bitset.Set) bool) int {
	order, err := d.TopoSort()
	if err != nil {
		return 0
	}
	n := d.NumNodes()
	set := bitset.New(n)
	visited := 0
	stopped := false

	var rec func(i int)
	rec = func(i int) {
		if stopped {
			return
		}
		if i == n {
			visited++
			if !fn(set) {
				stopped = true
			}
			return
		}
		u := order[i]
		// Case 1: exclude u.
		rec(i + 1)
		if stopped {
			return
		}
		// Case 2: include u, legal iff all predecessors are included.
		for _, p := range d.preds[u] {
			if !set.Contains(int(p)) {
				return
			}
		}
		set.Add(int(u))
		rec(i + 1)
		set.Remove(int(u))
	}
	rec(0)
	return visited
}

// CountPrefixes returns the number of distinct prefixes (antichain
// ideals) of the dag.
func (d *Dag) CountPrefixes() int {
	return d.EachPrefixSet(func(*bitset.Set) bool { return true })
}

// EachRelaxation enumerates every relaxation of the dag: every graph on
// the same nodes whose edge set is a subset of d's (Section 2). The Dag
// passed to fn is freshly allocated each call and may be retained.
// Returns the number of relaxations visited (2^|E|); stops early if fn
// returns false.
func (d *Dag) EachRelaxation(fn func(r *Dag) bool) int {
	edges := d.Edges()
	m := len(edges)
	if m > 30 {
		panic("dag: EachRelaxation would enumerate more than 2^30 graphs")
	}
	visited := 0
	for mask := 0; mask < 1<<uint(m); mask++ {
		r := New(d.NumNodes())
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				r.MustAddEdge(e[0], e[1])
			}
		}
		visited++
		if !fn(r) {
			break
		}
	}
	return visited
}

// IsRelaxationOf reports whether d is a relaxation of o: same node
// count, and every edge of d is an edge of o.
func (d *Dag) IsRelaxationOf(o *Dag) bool {
	if d.NumNodes() != o.NumNodes() {
		return false
	}
	for u := range d.succs {
		for _, v := range d.succs[u] {
			if !o.HasEdge(Node(u), v) {
				return false
			}
		}
	}
	return true
}

// EachDagOnNodes enumerates every dag on n nodes in which all edges go
// from a lower index to a higher index, invoking fn with each. Every dag
// on n nodes is isomorphic to at least one member of this family (fix a
// topological order and renumber), so it is a complete universe for
// isomorphism-invariant experiments. There are 2^(n(n-1)/2) members.
// The Dag passed to fn is freshly allocated; it may be retained. Returns
// the number visited; stops early if fn returns false.
func EachDagOnNodes(n int, fn func(d *Dag) bool) int {
	type pair struct{ u, v Node }
	var slots []pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			slots = append(slots, pair{Node(u), Node(v)})
		}
	}
	if len(slots) > 30 {
		panic("dag: EachDagOnNodes would enumerate more than 2^30 graphs")
	}
	visited := 0
	for mask := 0; mask < 1<<uint(len(slots)); mask++ {
		d := New(n)
		for i, s := range slots {
			if mask&(1<<uint(i)) != 0 {
				d.MustAddEdge(s.u, s.v)
			}
		}
		visited++
		if !fn(d) {
			break
		}
	}
	return visited
}

package dag

import (
	"fmt"
	"math/bits"
)

// This file implements canonical forms for the ordered-node universe
// (EachDagOnNodes × labelings): a canonical-labeling pass in the
// small-n McKay style, specialised to the enumeration order the repo
// already uses so that symmetry-reduced sweeps report the *same*
// deterministic witnesses as the full sweeps.
//
// The universe enumerates dags by edge bitmask (slot (u,v), u < v,
// slots ordered u-ascending then v-ascending, slot i = mask bit i) and,
// within a dag, label vectors lexicographically (node 0 outermost,
// labels in a fixed palette order). Two members are isomorphic iff one
// is the image of the other under a topological relabeling — a
// permutation π with π(u) < π(v) for every edge (u,v), i.e. a linear
// extension of the dag. We define the canonical representative of an
// isomorphism class as its enumeration-order-minimal member: smallest
// edge mask first, then lexicographically smallest label vector among
// the relabelings that realise the minimal mask.
//
// Minimality under this order is decided by a reverse-placement
// branch-and-bound. Assign positions n-1 down to 0; a node may take
// position k only once all its successors hold higher positions (so the
// assignment is a topological relabeling). Placing position k fixes
// exactly the mask slots (k, v) for v > k — a contiguous block of bits
// strictly more significant than every slot (u, v) with u < k — so the
// placement order examines the mask's bits in descending significance
// and the integer comparison against the dag's own mask proceeds
// block-by-block:
//
//	candInt(w) = Σ_{v > k, w→perm(v)} 1<<v   vs   selfInt(k) = adj[k]
//
// (for an ordered-universe dag adj[k] only holds bits above k, and in
// the identity labeling node v sits at position v, so the two encodings
// agree). candInt > selfInt prunes the candidate (its completions all
// exceed the dag's own mask); candInt < selfInt proves the whole dag
// non-canonical (the prefix equals self and every partial reverse
// placement extends to a full relabeling); equality recurses. The
// block comparison subsumes degree refinement: a candidate whose
// out-degree differs from position k's can never tie, but it can still
// prove non-canonicality, so it must reach the comparison rather than
// be pre-filtered. If the search completes, the dag's mask is minimal
// and the completions collected are exactly the mask-preserving
// relabelings P (the automorphism group of the unlabeled dag acting on
// the ordered universe).
//
// Per label vector, the member is canonical iff no σ ∈ P makes
// labels∘σ lexicographically smaller, and its orbit (isomorphism-class
// size within the universe) follows from orbit–stabilizer: the class
// members with this dag's mask are the images under P, each counted
// once per labeled automorphism, and every linear extension of the dag
// maps the member onto some class member, so
//
//	orbit = linext(dag) / |{σ ∈ P : labels∘σ = labels}|
//
// with linext computed by the standard downward-closed-subset DP.

// canonMaxNodes bounds the canonicalizer's bitmask machinery. The
// ordered-universe enumerator tops out near n=8 (30 edge slots), so 16
// leaves headroom while keeping the linear-extension DP (2^n words)
// small.
const canonMaxNodes = 16

// Canonicalizer decides canonicality and orbit sizes for members of
// the ordered-node universe. It is a reusable scratch structure: one
// AnalyzeDag call per dag, then any number of LabelOrbit calls for that
// dag's label vectors. Not safe for concurrent use; each goroutine
// should own one.
type Canonicalizer struct {
	n       int
	adj     []uint64 // adj[u]: successor bitmask (bits strictly above u)
	pred    []uint64 // pred[u]: predecessor bitmask
	pos     []int32  // pos[orig]: assigned position (placed nodes only)
	perm    []Node   // perm[position] = original node, during the DFS
	placed  uint64   // original nodes already placed
	perms   []Node   // flat n-strided slab of mask-preserving relabelings
	linext  int64
	trivial bool // P = {identity}: every labeling is canonical
	dp      []int64
}

// NewCanonicalizer returns an empty canonicalizer; AnalyzeDag must be
// called before LabelOrbit.
func NewCanonicalizer() *Canonicalizer { return &Canonicalizer{} }

// AnalyzeDag analyzes one ordered-universe dag (every edge from a lower
// to a higher node index) and reports whether its edge mask is minimal
// over all topological relabelings. When it returns false the dag — and
// therefore every labeling of it — is non-canonical and the caller can
// skip the whole block. When it returns true the canonicalizer holds
// the dag's mask-preserving relabelings and linear-extension count for
// subsequent LabelOrbit calls.
func (cz *Canonicalizer) AnalyzeDag(d *Dag) bool {
	n := d.NumNodes()
	if n > canonMaxNodes {
		panic(fmt.Sprintf("dag: canonicalizer supports at most %d nodes, got %d", canonMaxNodes, n))
	}
	cz.n = n
	if cap(cz.adj) < n {
		cz.adj = make([]uint64, n)
		cz.pred = make([]uint64, n)
		cz.pos = make([]int32, n)
		cz.perm = make([]Node, n)
	}
	cz.adj = cz.adj[:n]
	cz.pred = cz.pred[:n]
	cz.pos = cz.pos[:n]
	cz.perm = cz.perm[:n]
	for u := 0; u < n; u++ {
		var m, p uint64
		for _, v := range d.Succs(Node(u)) {
			if int(v) <= u {
				panic(fmt.Sprintf("dag: canonicalizer requires ordered-universe edges, got %d->%d", u, v))
			}
			m |= 1 << uint(v)
		}
		for _, v := range d.Preds(Node(u)) {
			p |= 1 << uint(v)
		}
		cz.adj[u] = m
		cz.pred[u] = p
	}
	cz.placed = 0
	cz.perms = cz.perms[:0]
	cz.linext = 0
	cz.trivial = false
	if n == 0 {
		cz.linext = 1
		cz.trivial = true
		return true
	}
	if !cz.analyze(n - 1) {
		return false
	}
	cz.linext = cz.countLinext()
	cz.trivial = len(cz.perms) == n // only the identity survived
	return true
}

// analyze runs the reverse-placement branch-and-bound from position k.
// It returns false as soon as some branch proves the mask non-minimal;
// on true, every mask-preserving completion has been appended to perms.
func (cz *Canonicalizer) analyze(k int) bool {
	if k < 0 {
		cz.perms = append(cz.perms, cz.perm...)
		return true
	}
	self := cz.adj[k]
	for w := 0; w < cz.n; w++ {
		wb := uint64(1) << uint(w)
		if cz.placed&wb != 0 || cz.adj[w]&^cz.placed != 0 {
			continue // already placed, or a successor still unplaced
		}
		ci := cz.candInt(w)
		if ci > self {
			continue
		}
		if ci < self {
			return false
		}
		cz.placed |= wb
		cz.pos[w] = int32(k)
		cz.perm[k] = Node(w)
		ok := cz.analyze(k - 1)
		cz.placed &^= wb
		if !ok {
			return false
		}
	}
	return true
}

// candInt is candidate w's mask block at the current position: bit v
// for each successor of w, read through the positions already assigned.
func (cz *Canonicalizer) candInt(w int) uint64 {
	m := cz.adj[w]
	var x uint64
	for m != 0 {
		v := bits.TrailingZeros64(m)
		m &= m - 1
		x |= 1 << uint(cz.pos[v])
	}
	return x
}

// countLinext counts the dag's linear extensions by the subset DP
// g(S) = Σ_{u ∈ S, preds(u) ⊆ S\{u}} g(S\{u}), g(∅) = 1; subsets that
// are not downward closed accumulate 0 on their own.
func (cz *Canonicalizer) countLinext() int64 {
	n := cz.n
	size := 1 << uint(n)
	if cap(cz.dp) < size {
		cz.dp = make([]int64, size)
	}
	dp := cz.dp[:size]
	dp[0] = 1
	for s := 1; s < size; s++ {
		var total int64
		m := uint64(s)
		for m != 0 {
			u := bits.TrailingZeros64(m)
			m &= m - 1
			rest := uint64(s) &^ (1 << uint(u))
			if cz.pred[u]&^rest == 0 {
				total += dp[rest]
			}
		}
		dp[s] = total
	}
	return dp[size-1]
}

// NumPerms returns |P|, the number of mask-preserving relabelings of
// the last analyzed (canonical) dag, identity included.
func (cz *Canonicalizer) NumPerms() int {
	if cz.n == 0 {
		return 1
	}
	return len(cz.perms) / cz.n
}

// Linext returns the linear-extension count of the last analyzed
// (canonical) dag.
func (cz *Canonicalizer) Linext() int64 { return cz.linext }

// LabelOrbit decides one label vector of the last analyzed canonical
// dag. labels[u] is node u's label as a comparable palette index (the
// enumeration's own ordering). It reports whether (dag, labels) is the
// canonical representative of its isomorphism class and, if so, the
// class's size within the ordered-node universe. Non-canonical members
// return (0, false).
func (cz *Canonicalizer) LabelOrbit(labels []int32) (orbit int64, canonical bool) {
	if len(labels) != cz.n {
		panic(fmt.Sprintf("dag: LabelOrbit got %d labels for %d nodes", len(labels), cz.n))
	}
	if cz.trivial {
		return cz.linext, true
	}
	n := cz.n
	var aut int64
	for off := 0; off < len(cz.perms); off += n {
		p := cz.perms[off : off+n]
		i := 0
		for ; i < n; i++ {
			a, b := labels[p[i]], labels[i]
			if a != b {
				if a < b {
					return 0, false // labels∘σ is lexicographically smaller
				}
				break
			}
		}
		if i == n {
			aut++ // σ is a labeled automorphism
		}
	}
	return cz.linext / aut, true
}

// minimalFormMaxNodes bounds MinimalForm: the full edge mask must fit
// one uint64 (n(n-1)/2 ≤ 64 slots), and the brute-force fold below is
// exponential in n anyway.
const minimalFormMaxNodes = 10

// MinimalForm returns the canonical representative of (d, labels)'s
// isomorphism class in the ordered-node universe: the relabeled dag
// (every edge low→high, minimal edge mask, then minimal label vector),
// the relabeled labels, and the witnessing relabeling perm with
// perm[position] = original node. d may be any acyclic dag — it need
// not come from the ordered universe.
//
// Implementation is a deliberate brute force: fold min(mask, labels)
// over every topological relabeling (up to linext(d) ≤ n! completions).
// It is the independent oracle the canonicalizer is tested and fuzzed
// against, so it favors obviousness over the block-by-block pruning of
// AnalyzeDag; enumeration hot paths must use AnalyzeDag/LabelOrbit.
func MinimalForm(d *Dag, labels []int32) (*Dag, []int32, []Node) {
	n := d.NumNodes()
	if n > minimalFormMaxNodes {
		panic(fmt.Sprintf("dag: MinimalForm supports at most %d nodes, got %d", minimalFormMaxNodes, n))
	}
	if len(labels) != n {
		panic(fmt.Sprintf("dag: MinimalForm got %d labels for %d nodes", len(labels), n))
	}
	if n == 0 {
		return New(0), []int32{}, []Node{}
	}
	pred := make([]uint64, n)
	for u := 0; u < n; u++ {
		for _, v := range d.Succs(Node(u)) {
			pred[v] |= 1 << uint(u)
		}
	}
	// slotBase[u]: index of slot (u, u+1); slot (u,v) = slotBase[u]+v-u-1.
	slotBase := make([]int, n)
	for u, acc := 0, 0; u < n; u++ {
		slotBase[u] = acc
		acc += n - 1 - u
	}
	pos := make([]int32, n)
	perm := make([]Node, n)
	var placed uint64
	bestSet := false
	var bestMask uint64
	bestLabels := make([]int32, n)
	bestPerm := make([]Node, n)

	// Forward placement: position k takes any node whose predecessors
	// are all placed; the edges into k from placed predecessors become
	// slots (pos[p], k) of the relabeled mask.
	var rec func(k int, mask uint64)
	rec = func(k int, mask uint64) {
		if k == n {
			better := !bestSet || mask < bestMask
			if !better && mask == bestMask {
				for i := 0; i < n; i++ {
					a, b := labels[perm[i]], bestLabels[i]
					if a != b {
						better = a < b
						break
					}
				}
			}
			if better {
				bestSet = true
				bestMask = mask
				for i := 0; i < n; i++ {
					bestLabels[i] = labels[perm[i]]
				}
				copy(bestPerm, perm)
			}
			return
		}
		progress := false
		for w := 0; w < n; w++ {
			wb := uint64(1) << uint(w)
			if placed&wb != 0 || pred[w]&^placed != 0 {
				continue
			}
			progress = true
			add := mask
			m := pred[w]
			for m != 0 {
				p := bits.TrailingZeros64(m)
				m &= m - 1
				u := int(pos[p])
				add |= 1 << uint(slotBase[u]+k-u-1)
			}
			placed |= wb
			pos[w] = int32(k)
			perm[k] = Node(w)
			rec(k+1, add)
			placed &^= wb
		}
		if !progress {
			panic("dag: MinimalForm requires an acyclic dag")
		}
	}
	rec(0, 0)

	bestPos := make([]int32, n)
	for k, w := range bestPerm {
		bestPos[w] = int32(k)
	}
	out := New(n)
	for u := 0; u < n; u++ {
		for _, v := range d.Succs(Node(u)) {
			out.MustAddEdge(Node(bestPos[u]), Node(bestPos[v]))
		}
	}
	return out, bestLabels, bestPerm
}

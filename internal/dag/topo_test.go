package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopoSortChain(t *testing.T) {
	d := Chain(5)
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range order {
		if u != Node(i) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	d := New(2)
	d.MustAddEdge(0, 1)
	d.MustAddEdge(1, 0)
	if _, err := d.TopoSort(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	d := Diamond()
	a, _ := d.TopoSort()
	b, _ := d.TopoSort()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopoSort not deterministic")
		}
	}
	// Lowest-id tie break: diamond gives 0,1,2,3.
	want := []Node{0, 1, 2, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("order = %v, want %v", a, want)
		}
	}
}

func TestIsTopoSort(t *testing.T) {
	d := Diamond()
	if !d.IsTopoSort([]Node{0, 1, 2, 3}) || !d.IsTopoSort([]Node{0, 2, 1, 3}) {
		t.Fatal("valid sorts rejected")
	}
	if d.IsTopoSort([]Node{1, 0, 2, 3}) {
		t.Fatal("edge-violating order accepted")
	}
	if d.IsTopoSort([]Node{0, 1, 2}) {
		t.Fatal("short order accepted")
	}
	if d.IsTopoSort([]Node{0, 1, 1, 3}) {
		t.Fatal("non-permutation accepted")
	}
}

func TestEachTopoSortCounts(t *testing.T) {
	cases := []struct {
		name string
		d    *Dag
		want int
	}{
		{"chain5", Chain(5), 1},
		{"antichain3", Antichain(3), 6},  // 3! orders
		{"antichain4", Antichain(4), 24}, // 4!
		{"diamond", Diamond(), 2},        // 0 {1,2} 3
		{"fork3", Fork(3), 2},            // root then 2 leaves in either order
		{"empty", New(0), 1},             // one empty sort
	}
	for _, c := range cases {
		got := c.d.EachTopoSort(func(order []Node) bool {
			if !c.d.IsTopoSort(order) {
				t.Fatalf("%s: enumerated invalid sort %v", c.name, order)
			}
			return true
		})
		if got != c.want {
			t.Errorf("%s: %d sorts, want %d", c.name, got, c.want)
		}
		if n := c.d.CountTopoSorts(0); n != c.want {
			t.Errorf("%s: CountTopoSorts = %d, want %d", c.name, n, c.want)
		}
	}
}

func TestEachTopoSortDistinct(t *testing.T) {
	d := Grid(2, 3)
	seen := make(map[string]bool)
	d.EachTopoSort(func(order []Node) bool {
		key := ""
		for _, u := range order {
			key += string(rune('a' + u))
		}
		if seen[key] {
			t.Fatalf("duplicate sort %v", order)
		}
		seen[key] = true
		return true
	})
}

func TestEachTopoSortEarlyStop(t *testing.T) {
	d := Antichain(5) // 120 sorts
	n := 0
	visited := d.EachTopoSort(func([]Node) bool {
		n++
		return n < 7
	})
	if visited != 7 || n != 7 {
		t.Fatalf("visited = %d, n = %d, want 7", visited, n)
	}
}

func TestCountTopoSortsLimit(t *testing.T) {
	d := Antichain(6) // 720 sorts
	if got := d.CountTopoSorts(10); got != 10 {
		t.Fatalf("limited count = %d, want 10", got)
	}
}

func TestEachTopoSortCyclic(t *testing.T) {
	d := New(2)
	d.MustAddEdge(0, 1)
	d.MustAddEdge(1, 0)
	if got := d.EachTopoSort(func([]Node) bool { return true }); got != 0 {
		t.Fatalf("cyclic graph yielded %d sorts", got)
	}
}

// Property: every enumerated sort of a random dag is valid, the first
// Kahn sort is among them, and the count matches a brute-force
// permutation filter for small n.
func TestQuickTopoSortEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		d := Random(rng, n, 0.4)
		valid := true
		count := d.EachTopoSort(func(order []Node) bool {
			if !d.IsTopoSort(order) {
				valid = false
				return false
			}
			return true
		})
		if !valid {
			return false
		}
		// Brute force over all permutations.
		perm := make([]Node, n)
		for i := range perm {
			perm[i] = Node(i)
		}
		brute := 0
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				if d.IsTopoSort(perm) {
					brute++
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		return count == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package dag

import "repro/internal/bitset"

// Closure is a precomputed transitive-closure view of a Dag supporting
// O(1) precedence queries (the relation u ≺ v of Section 2). A Closure
// is immutable and safe for concurrent use after construction.
type Closure struct {
	n    int
	desc []*bitset.Set // desc[u] = strict descendants of u
	anc  []*bitset.Set // anc[u]  = strict ancestors of u
}

// NewClosure computes the transitive closure of d. It returns ErrCycle
// if d is cyclic.
func NewClosure(d *Dag) (*Closure, error) {
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	n := d.NumNodes()
	c := &Closure{
		n:    n,
		desc: make([]*bitset.Set, n),
		anc:  make([]*bitset.Set, n),
	}
	for u := 0; u < n; u++ {
		c.desc[u] = bitset.New(n)
		c.anc[u] = bitset.New(n)
	}
	// Process in reverse topological order: a node's descendants are its
	// direct successors plus their descendants.
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range d.succs[u] {
			c.desc[u].Add(int(v))
			c.desc[u].UnionWith(c.desc[v])
		}
	}
	for u := 0; u < n; u++ {
		c.desc[u].ForEach(func(v int) bool {
			c.anc[v].Add(u)
			return true
		})
	}
	return c, nil
}

// MustClosure is NewClosure but panics on cyclic input.
func MustClosure(d *Dag) *Closure {
	c, err := NewClosure(d)
	if err != nil {
		panic(err)
	}
	return c
}

// NumNodes returns the number of nodes of the underlying dag.
func (c *Closure) NumNodes() int { return c.n }

// Precedes reports the paper's precedence relation u ≺ v, extended so
// that ⊥ ≺ v for every real node v (and ⊥ ⊀ ⊥).
func (c *Closure) Precedes(u, v Node) bool {
	if v == None {
		return false
	}
	if u == None {
		return true
	}
	return c.desc[u].Contains(int(v))
}

// PrecedesEq reports u ≼ v (precedes or equal), with ⊥ ≼ everything.
func (c *Closure) PrecedesEq(u, v Node) bool {
	if u == None {
		return true
	}
	if v == None {
		return false
	}
	return u == v || c.desc[u].Contains(int(v))
}

// Comparable reports whether u and v are ordered either way (or equal).
func (c *Closure) Comparable(u, v Node) bool {
	return c.PrecedesEq(u, v) || c.PrecedesEq(v, u)
}

// Descendants returns the set of strict descendants of u. The returned
// set is shared; callers must not modify it.
func (c *Closure) Descendants(u Node) *bitset.Set { return c.desc[u] }

// Ancestors returns the set of strict ancestors of u. The returned set
// is shared; callers must not modify it.
func (c *Closure) Ancestors(u Node) *bitset.Set { return c.anc[u] }

// TransitiveClosureDag returns a new Dag with an edge (u, v) whenever
// u ≺ v in d.
func TransitiveClosureDag(d *Dag) (*Dag, error) {
	c, err := NewClosure(d)
	if err != nil {
		return nil, err
	}
	out := New(d.NumNodes())
	for u := 0; u < c.n; u++ {
		c.desc[u].ForEach(func(v int) bool {
			out.MustAddEdge(Node(u), Node(v))
			return true
		})
	}
	return out, nil
}

// TransitiveReduction returns the unique minimal dag with the same
// precedence relation as d: edge (u, v) survives iff there is no
// intermediate node w with u ≺ w ≺ v.
func TransitiveReduction(d *Dag) (*Dag, error) {
	c, err := NewClosure(d)
	if err != nil {
		return nil, err
	}
	out := New(d.NumNodes())
	for u := 0; u < d.NumNodes(); u++ {
		for _, v := range d.succs[u] {
			redundant := false
			for _, w := range d.succs[u] {
				if w != v && c.desc[w].Contains(int(v)) {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustAddEdge(Node(u), v)
			}
		}
	}
	return out, nil
}

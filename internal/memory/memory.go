// Package memory implements online shared-memory algorithms: systems
// that are revealed a computation one node at a time — the adversary of
// Section 3 of the paper — and must fix each node's observer values
// immediately and irrevocably.
//
// An online memory implements a model Δ when every (revealed prefix,
// produced observer) pair lies in Δ. Constructibility (Definition 6) is
// exactly the property that makes the obvious greedy algorithm total:
// if Δ is constructible, any in-model choice leaves an in-model
// extension for every future reveal, so the greedy Universal memory
// never gets stuck; if Δ is not constructible the adversary can drive
// it into a member pair with no extension — operationally, the memory
// deadlocks. The tests stage exactly that: Universal(SC), Universal(LC)
// and Universal(WW) run forever, while Universal(NN) is driven stuck by
// the Figure 4 computation, and any online algorithm for NN must
// instead maintain the stronger model NN* = LC (Theorem 23).
package memory

import (
	"errors"
	"fmt"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// ErrStuck is returned when an online memory cannot assign observer
// values to the newly revealed node without leaving its model.
var ErrStuck = errors.New("memory: no valid observer extension (model not constructible here)")

// Memory is an online shared-memory algorithm. Implementations must
// return, for each revealed node, the write observed at every location
// (a full observer row), never revising earlier rows.
type Memory interface {
	// Name identifies the algorithm.
	Name() string
	// Reset prepares for a new computation over numLocs locations.
	Reset(numLocs int)
	// Step reveals the next node (ids are assigned densely in reveal
	// order) with its instruction and predecessors, and returns the
	// observer row: row[l] is the write observed at location l.
	Step(op computation.Op, preds []dag.Node) ([]dag.Node, error)
}

// Run reveals the computation to the memory in the given order (which
// must be a topological sort) and assembles the resulting observer
// function. Node ids are translated so that the returned observer is
// directly comparable against c. Returns ErrStuck (wrapped) if the
// memory deadlocks.
func Run(m Memory, c *computation.Computation, order []dag.Node) (*observer.Observer, error) {
	if !c.Dag().IsTopoSort(order) {
		return nil, fmt.Errorf("memory: reveal order %v is not a topological sort", order)
	}
	m.Reset(c.NumLocs())
	revealPos := make([]int, c.NumNodes()) // original id -> reveal index
	revealed := make([]dag.Node, 0, c.NumNodes())
	o := observer.New(c)
	for i, u := range order {
		revealPos[u] = i
		var preds []dag.Node
		for _, p := range c.Dag().Preds(u) {
			preds = append(preds, dag.Node(revealPos[p]))
		}
		row, err := m.Step(c.Op(u), preds)
		if err != nil {
			return nil, fmt.Errorf("memory %s: node %d (%s): %w", m.Name(), u, c.Op(u), err)
		}
		if len(row) != c.NumLocs() {
			return nil, fmt.Errorf("memory %s: row has %d entries for %d locations", m.Name(), len(row), c.NumLocs())
		}
		revealed = append(revealed, u) // a row may reference the node itself
		for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
			v := row[l]
			if v == observer.Bottom {
				o.Set(l, u, observer.Bottom)
				continue
			}
			if int(v) >= len(revealed) {
				return nil, fmt.Errorf("memory %s: row points at unrevealed node %d", m.Name(), v)
			}
			o.Set(l, u, revealed[v])
		}
	}
	return o, nil
}

// Serial is the textbook sequentially consistent memory: one global
// serialization — the reveal order itself — with every node observing
// the latest write so far at each location. It implements SC: its
// observer is the last-writer function of the reveal order.
type Serial struct {
	last []dag.Node
	next dag.Node
}

// NewSerial returns a Serial memory.
func NewSerial() *Serial { return &Serial{} }

// Name implements Memory.
func (s *Serial) Name() string { return "serial" }

// Reset implements Memory.
func (s *Serial) Reset(numLocs int) {
	s.last = make([]dag.Node, numLocs)
	for l := range s.last {
		s.last[l] = observer.Bottom
	}
	s.next = 0
}

// Step implements Memory.
func (s *Serial) Step(op computation.Op, _ []dag.Node) ([]dag.Node, error) {
	u := s.next
	s.next++
	if op.Kind == computation.Write {
		s.last[op.Loc] = u
	}
	row := make([]dag.Node, len(s.last))
	copy(row, s.last)
	return row, nil
}

// Universal is the generic greedy online algorithm for an arbitrary
// model: it maintains the revealed computation and the observer built
// so far, and assigns the newly revealed node the first observer row
// that keeps the pair inside the model. By the theory of Section 3 it
// never gets stuck iff every reachable pair can be extended — in
// particular it is total for constructible models and can deadlock for
// non-constructible ones.
//
// Universal re-decides model membership on every step, so it is an
// executable specification rather than an efficient memory.
type Universal struct {
	model memmodel.Model
	comp  *computation.Computation
	obs   *observer.Observer
}

// NewUniversal returns the greedy online algorithm for the model.
func NewUniversal(m memmodel.Model) *Universal { return &Universal{model: m} }

// Name implements Memory.
func (g *Universal) Name() string { return "universal(" + g.model.Name() + ")" }

// Reset implements Memory.
func (g *Universal) Reset(numLocs int) {
	g.comp = computation.New(numLocs)
	g.obs = observer.New(g.comp)
}

// Step implements Memory.
func (g *Universal) Step(op computation.Op, preds []dag.Node) ([]dag.Node, error) {
	ext, u := g.comp.Extend(op, preds)
	numLocs := ext.NumLocs()
	cands := observer.Candidates(ext)

	next := observer.New(ext)
	for l := computation.Loc(0); int(l) < numLocs; l++ {
		for v := dag.Node(0); v < u; v++ {
			next.Set(l, v, g.obs.Get(l, v))
		}
	}
	row := make([]dag.Node, numLocs)
	var try func(l int) bool
	try = func(l int) bool {
		if l == numLocs {
			return g.model.Contains(ext, next)
		}
		for _, v := range cands[l][u] {
			next.Set(computation.Loc(l), u, v)
			row[l] = v
			if try(l + 1) {
				return true
			}
		}
		return false
	}
	if numLocs > 0 && !try(0) {
		return nil, ErrStuck
	}
	if numLocs == 0 && !g.model.Contains(ext, next) {
		return nil, ErrStuck
	}
	g.comp = ext
	g.obs = next
	return row, nil
}

// Pair returns the revealed computation and observer built so far, for
// inspection in tests.
func (g *Universal) Pair() (*computation.Computation, *observer.Observer) {
	return g.comp, g.obs
}

package memory

import (
	"math/rand"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Backer is an online BACKER memory: the same backing-store/cache
// protocol as internal/backer, but driven node by node as the
// computation is revealed, with processor placement chosen online (a
// node runs where one of its predecessors ran, or on a random
// processor when it has none — a cheap stand-in for work stealing).
//
// Every node's observer row is produced by fetching each location
// through the executing processor's cache, so the memory commits a
// full observer function online. Its pairs are location consistent —
// the online half of the [Luc97] claim — which the tests verify by
// model membership on every prefix.
type Backer struct {
	procs int
	rng   *rand.Rand

	main     []dag.Node
	caches   []map[computation.Loc]backerLine
	nodeProc []int
	next     dag.Node

	// Stats counts protocol events since the last Reset.
	Stats struct {
		Fetches, Hits, Reconciles, Flushes, CrossEdges int
	}
}

type backerLine struct {
	writer dag.Node
	dirty  bool
}

// NewBacker returns an online BACKER memory with P processors.
func NewBacker(P int, rng *rand.Rand) *Backer {
	if P < 1 {
		panic("memory: Backer needs at least one processor")
	}
	return &Backer{procs: P, rng: rng}
}

// Name implements Memory.
func (b *Backer) Name() string { return "backer-online" }

// Reset implements Memory.
func (b *Backer) Reset(numLocs int) {
	b.main = make([]dag.Node, numLocs)
	for l := range b.main {
		b.main[l] = observer.Bottom
	}
	b.caches = make([]map[computation.Loc]backerLine, b.procs)
	for p := range b.caches {
		b.caches[p] = make(map[computation.Loc]backerLine)
	}
	b.nodeProc = b.nodeProc[:0]
	b.next = 0
	b.Stats.Fetches, b.Stats.Hits, b.Stats.Reconciles, b.Stats.Flushes, b.Stats.CrossEdges = 0, 0, 0, 0, 0
}

func (b *Backer) reconcile(p int) {
	b.Stats.Reconciles++
	for l, ln := range b.caches[p] {
		if ln.dirty {
			b.main[l] = ln.writer
			b.caches[p][l] = backerLine{writer: ln.writer}
		}
	}
}

func (b *Backer) flush(p int) {
	b.Stats.Flushes++
	for l, ln := range b.caches[p] {
		if ln.dirty {
			b.main[l] = ln.writer
		}
		delete(b.caches[p], l)
	}
}

// Step implements Memory.
func (b *Backer) Step(op computation.Op, preds []dag.Node) ([]dag.Node, error) {
	u := b.next
	b.next++

	// Placement: inherit a random predecessor's processor, else random.
	var p int
	if len(preds) > 0 {
		p = b.nodeProc[preds[b.rng.Intn(len(preds))]]
	} else {
		p = b.rng.Intn(b.procs)
	}
	b.nodeProc = append(b.nodeProc, p)

	// Crossing edges: reconcile each crossing predecessor's cache, then
	// flush ours.
	crossed := false
	for _, v := range preds {
		if b.nodeProc[v] != p {
			b.Stats.CrossEdges++
			b.reconcile(b.nodeProc[v])
			crossed = true
		}
	}
	if crossed {
		b.flush(p)
	}

	// The write lands in the cache first so the row reflects it.
	if op.Kind == computation.Write {
		b.caches[p][op.Loc] = backerLine{writer: u, dirty: true}
	}

	// Fetch every location through the cache to commit a full row.
	row := make([]dag.Node, len(b.main))
	for l := computation.Loc(0); int(l) < len(b.main); l++ {
		if ln, ok := b.caches[p][l]; ok {
			b.Stats.Hits++
			row[l] = ln.writer
			continue
		}
		b.Stats.Fetches++
		w := b.main[l]
		b.caches[p][l] = backerLine{writer: w}
		row[l] = w
	}
	return row, nil
}

// Proc returns the processor that executed node u (in reveal order).
func (b *Backer) Proc(u dag.Node) int { return b.nodeProc[u] }

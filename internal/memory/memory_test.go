package memory

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

func randomComputation(rng *rand.Rand, maxNodes, maxLocs int) *computation.Computation {
	n := rng.Intn(maxNodes + 1)
	locs := 1 + rng.Intn(maxLocs)
	g := dag.Random(rng, n, 0.35)
	all := computation.AllOps(locs)
	ops := make([]computation.Op, n)
	for i := range ops {
		ops[i] = all[rng.Intn(len(all))]
	}
	return computation.MustFrom(g, ops, locs)
}

func randomOrder(rng *rand.Rand, c *computation.Computation) []dag.Node {
	// Random topological sort via randomized Kahn.
	n := c.NumNodes()
	indeg := make([]int, n)
	var ready []dag.Node
	for u := 0; u < n; u++ {
		indeg[u] = c.Dag().InDegree(dag.Node(u))
		if indeg[u] == 0 {
			ready = append(ready, dag.Node(u))
		}
	}
	order := make([]dag.Node, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		u := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, u)
		for _, v := range c.Dag().Succs(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return order
}

func TestSerialImplementsSC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem := NewSerial()
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 8, 2)
		order := randomOrder(rng, c)
		o, err := Run(mem, c, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Validate(c); err != nil {
			t.Fatal(err)
		}
		if !memmodel.SC.Contains(c, o) {
			t.Fatalf("serial memory left SC on %v (order %v)", c, order)
		}
		// The produced observer is exactly the last-writer function of
		// the reveal order.
		if !o.Equal(observer.FromLastWriter(c, order)) {
			t.Fatalf("serial observer is not W_T of the reveal order")
		}
	}
}

func TestRunRejectsBadOrder(t *testing.T) {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	if _, err := Run(NewSerial(), c, []dag.Node{b, a}); err == nil {
		t.Fatal("non-topological reveal order accepted")
	}
}

// Universal(Δ) stays inside Δ and never gets stuck for the
// constructible models, on random computations and reveal orders.
func TestUniversalConstructibleNeverStuck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.WW, memmodel.Amnesiac}
	for _, m := range models {
		mem := NewUniversal(m)
		for trial := 0; trial < 25; trial++ {
			c := randomComputation(rng, 6, 2)
			order := randomOrder(rng, c)
			o, err := Run(mem, c, order)
			if err != nil {
				t.Fatalf("universal(%s) stuck on %v (order %v): %v", m.Name(), c, order, err)
			}
			if !m.Contains(c, o) {
				t.Fatalf("universal(%s) left its model on %v", m.Name(), c)
			}
		}
	}
}

// The operational face of Figure 4: Universal(NN) deadlocks when the
// adversary reveals the crossing prefix and then a non-writing node
// that succeeds both reads. The greedy algorithm picked NN-valid
// values all along — the model, not the algorithm, is at fault.
func TestUniversalNNGetsStuck(t *testing.T) {
	fx := paperfig.Figure4()
	full, _ := fx.Extend(computation.N)
	// Reveal in id order: A, B, C, D, F. The greedy algorithm must be
	// steered into the crossing observer; feed it the exact Figure 4
	// prefix pair by trying reveal orders until its greedy choices
	// reproduce crossing reads — instead, drive it directly: reveal the
	// prefix, then check that NO choice for F exists from the pair the
	// memory actually built, OR the memory already avoided the trap.
	mem := NewUniversal(memmodel.NN)
	order, err := full.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := Run(mem, full, order)
	// The greedy algorithm may or may not fall into the trap depending
	// on candidate order; the theory says SOME adversary strategy traps
	// every online NN algorithm. Check the stronger statement directly:
	// from the Figure 4 prefix pair (which is in NN), no extension for
	// F exists, so an online algorithm that happened to produce it —
	// e.g. because earlier reveals forced it — is stuck.
	if runErr == nil {
		ext, _ := fx.Extend(computation.N)
		if memmodel.CanExtend(memmodel.NN, fx.Prefix, fx.PrefixObs, ext) {
			t.Fatal("Figure 4 extension unexpectedly exists")
		}
		t.Log("greedy NN dodged the trap on this order; the trap itself is confirmed")
	} else if !errors.Is(runErr, ErrStuck) {
		t.Fatalf("unexpected error: %v", runErr)
	}
}

// Universal(NN) IS trapped when the adversary controls reveal order and
// the observer choices are forced: stage the crossing with reads whose
// only NN-valid value is the crossing one. Forcing works by revealing
// each read immediately after the opposite write, exploiting greedy
// candidate order (⊥ first, then writes in id order).
func TestUniversalNNTrapForced(t *testing.T) {
	// Build W0, W1 in parallel; read C after W1 only; read D after W0
	// only; then F after C and D. Universal(NN)'s greedy candidate
	// order tries ⊥ first: Φ(C) = ⊥ is NN-valid when revealed... the
	// trap needs Φ(C) = W1, Φ(D) = W0 — make C and D *reads that follow
	// a write*, so ⊥ is not NN-valid: C follows W1 ⇒ any ⊥ row at C
	// violates... nothing (⊥ after a write is NN-legal only if nothing
	// later re-observes the write; greedy cannot foresee F).
	//
	// Greedy with ⊥-first choices on this dag picks Φ(C) = ⊥, which is
	// NN-safe forever. So instead drive the memory into the published
	// trap pair directly via a model wrapper that pins C and D: the
	// point under test is Run's stuck propagation.
	pinned := memmodel.Func("NN-pinned", func(c *computation.Computation, o *observer.Observer) bool {
		if !memmodel.NN.Contains(c, o) {
			return false
		}
		// Pin node 2 (read after W1) to observe node 1, node 3 to node 0.
		if c.NumNodes() > 2 && o.Get(0, 2) != 1 {
			return false
		}
		if c.NumNodes() > 3 && o.Get(0, 3) != 0 {
			return false
		}
		return true
	})
	fx := paperfig.Figure4()
	full, _ := fx.Extend(computation.N)
	order, err := full.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewUniversal(pinned)
	_, runErr := Run(mem, full, order)
	if !errors.Is(runErr, ErrStuck) {
		t.Fatalf("pinned NN memory must get stuck, got %v", runErr)
	}
	// The same pin under LC is stuck immediately at the crossing (the
	// pinned pair is not in LC at all) — while plain Universal(LC)
	// handles the computation fine.
	if _, err := Run(NewUniversal(memmodel.LC), full, order); err != nil {
		t.Fatalf("universal(LC) must not get stuck: %v", err)
	}
}

func TestBackerOnlineImplementsLC(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 10, 2)
		order := randomOrder(rng, c)
		mem := NewBacker(1+rng.Intn(4), rng)
		o, err := Run(mem, c, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Validate(c); err != nil {
			t.Fatalf("backer row invalid on %v: %v", c, err)
		}
		if !memmodel.LC.Contains(c, o) {
			t.Fatalf("online BACKER left LC on %v (order %v)\n%v", c, order, o)
		}
	}
}

func TestBackerOnlineProducesNonSC(t *testing.T) {
	// Dekker with both branches forced onto different processors by
	// seeding: retry seeds until the placement splits and the outcome
	// is the non-SC one.
	fx := paperfig.Dekker()
	order := []dag.Node{0, 2, 1, 3} // w1, w2, r1, r2
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mem := NewBacker(2, rng)
		o, err := Run(mem, fx.Comp, order)
		if err != nil {
			t.Fatal(err)
		}
		if !memmodel.LC.Contains(fx.Comp, o) {
			t.Fatal("online BACKER left LC on Dekker")
		}
		if !memmodel.SC.Contains(fx.Comp, o) {
			return // found the relaxed outcome
		}
	}
	t.Fatal("online BACKER never produced a non-SC Dekker outcome")
}

func TestBackerStatsReset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomComputation(rng, 10, 2)
	order := randomOrder(rng, c)
	mem := NewBacker(3, rng)
	if _, err := Run(mem, c, order); err != nil {
		t.Fatal(err)
	}
	first := mem.Stats
	if _, err := Run(mem, c, order); err != nil {
		t.Fatal(err)
	}
	if mem.Stats.Fetches > first.Fetches*2+10 && first.Fetches > 0 {
		t.Fatal("stats apparently not reset")
	}
	if c.NumNodes() > 0 {
		_ = mem.Proc(0)
	}
}

// Property: for every constructible model in the Figure 1 family, the
// Universal memory on random inputs produces pairs of that model and
// the pair is also in every weaker model of the family.
func TestQuickUniversalRespectsLattice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 1)
		order := randomOrder(rng, c)
		mem := NewUniversal(memmodel.SC)
		o, err := Run(mem, c, order)
		if err != nil {
			return false
		}
		return memmodel.SC.Contains(c, o) && memmodel.LC.Contains(c, o) &&
			memmodel.NN.Contains(c, o) && memmodel.WW.Contains(c, o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package obs is the observability layer of the decision stack: a
// zero-dependency (stdlib-only) event model that the search engine,
// the enumeration sweeps, the BACKER simulator, and the chaos harness
// report into, plus built-in recorders — a periodic progress reporter,
// a machine-readable JSON run-report writer, and a span collector with
// a Chrome trace_event exporter.
//
// The design keeps the hot paths honest:
//
//   - The Recorder is nil by default and every producer checks that
//     before building an event, so the no-recorder configuration adds
//     no allocations and no calls to the per-state profile.
//   - Events are emitted at run/root/plan granularity, never per state.
//     Per-state work is visible only through Counters — live gauges the
//     workers publish into in batches (piggybacked on the cancellation
//     poll tick, one atomic add per few dozen states), and through the
//     per-worker Stats flushed once at worker exit.
//   - Recorders must tolerate concurrent Record calls: parallel root
//     splitting and sharded sweeps emit from every worker.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind enumerates the event taxonomy.
type Kind uint8

const (
	// RunStart opens a named unit of decision work (one engine search,
	// one sweep, one exploration). Fields: Run, Total (roots/plans/edges
	// ahead, 0 = unknown), N (state budget, 0 = unlimited), Live (the
	// run's live gauges, nil when the producer publishes none).
	RunStart Kind = iota
	// RunEnd closes a run. Fields: Run, Str (outcome: a verdict spelling
	// like "IN"/"OUT"/"INCONCLUSIVE(budget)" or a producer-specific
	// summary), Stats (final counters, nil when the producer keeps none).
	RunEnd
	// PhaseStart marks a phase transition inside a run (a lattice edge,
	// a shrink stage). Fields: Run, Str (phase name).
	PhaseStart
	// RootClaimed: a parallel-splitting worker claimed a root branch.
	// Fields: Run, Worker, Root.
	RootClaimed
	// RootSkipped: a root was abandoned unexplored because a strictly
	// lower root already holds a witness. Fields: Run, Worker, Root.
	RootSkipped
	// RootFinished: a claimed root's subtree was resolved. Fields: Run,
	// Worker, Root, Str ("found", "exhausted", or "aborted").
	RootFinished
	// GovernorFired: a resource governor halted the run. Emitted once
	// per run (the stop reason is sticky). Fields: Run, Str (reason
	// spelling: "budget", "deadline", "cancelled", "memory").
	GovernorFired
	// MemoFreeze: a worker's failed-state memo table hit its byte cap
	// and froze. Fields: Run, Worker, N (table bytes at freeze).
	MemoFreeze
	// FaultInjected: the BACKER protocol skipped/delayed/corrupted an
	// action at an injector decision point. Fields: Run, Str (the chaos
	// codec kind, e.g. "skip-reconcile"), Src, Dst (nodes, -1 when not
	// applicable), Worker (processor), N (tick).
	FaultInjected
	// ShrinkStep: one accepted shrink iteration. Fields: Run, Str
	// (stage: "drop-event" or "truncate"), N (oracle runs so far),
	// Total (current plan length).
	ShrinkStep
	// PlanDone: one chaos exploration plan ran and was verified.
	// Fields: Run, N (plan index), Str (verdict spelling), Total
	// (events in the plan).
	PlanDone
	// WorkerDone: a worker flushed its private counters at exit.
	// Fields: Run, Worker, Stats.
	WorkerDone
	// PanicRecovered: a serving-stack recovery middleware caught a
	// handler panic and completed the exchange with a 500. Fields: Run
	// (endpoint and request ID), Str (the panic value followed by the
	// goroutine stack).
	PanicRecovered
	// ShardSent: the fleet coordinator dispatched a shard batch to a
	// replica. Fields: Run, Worker (replica index), Root (first shard
	// index in the batch), Total (shards in the batch), N (attempt,
	// 1-based).
	ShardSent
	// ShardRetry: a shard batch attempt failed and was requeued for
	// backoff. Fields: Run, Worker (replica index), Root, N (the failed
	// attempt, 1-based), Str (cause).
	ShardRetry
	// ShardHedge: a straggling shard batch was re-dispatched to a second
	// replica while the first attempt was still in flight. Fields: Run,
	// Worker (hedge replica index), Root.
	ShardHedge
	// ShardDone: a shard batch resolved. Fields: Run, Worker (replica
	// that answered, -1 when none did), Root, Str ("ok" or "lost" —
	// lost shards degrade the merged verdict to INCONCLUSIVE(fleet)).
	ShardDone
	// BreakerFlip: a replica's circuit breaker changed state. Fields:
	// Run, Worker (replica index), Str ("open", "half-open", "closed").
	BreakerFlip
	// StreamViolation: the online trace checker proved a stable
	// violation mid-stream. Fields: Run, Str (models and rule, e.g.
	// "LC,SC taint"), N (1-based node-event index).
	StreamViolation
	// StreamOverrun: a streaming ingest outran its bounded buffer and
	// the overflow policy began shedding events. Emitted once per
	// stream. Fields: Run, N (events ingested before the overrun).
	StreamOverrun
	// StreamDone: a trace stream finished (end event, disconnect, or
	// governance cutoff). Fields: Run, N (node events ingested), Total
	// (events shed), Str (final verdict summary, "LC=… SC=…").
	StreamDone

	numKinds
)

var kindNames = [numKinds]string{
	RunStart:        "run-start",
	RunEnd:          "run-end",
	PhaseStart:      "phase",
	RootClaimed:     "root-claimed",
	RootSkipped:     "root-skipped",
	RootFinished:    "root-finished",
	GovernorFired:   "governor",
	MemoFreeze:      "memo-freeze",
	FaultInjected:   "fault",
	ShrinkStep:      "shrink-step",
	PlanDone:        "plan-done",
	WorkerDone:      "worker-done",
	PanicRecovered:  "panic-recovered",
	ShardSent:       "shard-sent",
	ShardRetry:      "shard-retry",
	ShardHedge:      "shard-hedge",
	ShardDone:       "shard-done",
	BreakerFlip:     "breaker-flip",
	StreamViolation: "stream-violation",
	StreamOverrun:   "stream-overrun",
	StreamDone:      "stream-done",
}

// String returns the stable spelling of the kind (used in trace
// exports and reports).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Counters is the set of live gauges a running search or sweep
// publishes. Workers add in batches; readers (the progress reporter)
// load concurrently. All fields are monotone within one run.
type Counters struct {
	// States counts search states expanded (for the engine) or pairs /
	// plans visited (for sweeps).
	States atomic.Int64
	// MemoBytes is the memo-table footprint summed over workers.
	MemoBytes atomic.Int64
	// Done counts completed work units: roots (engine), shards (sweeps),
	// plans (exploration).
	Done atomic.Int64
	// Slept counts engine children skipped by sleep-set pruning.
	Slept atomic.Int64
	// Skipped counts universe computations a reduced sweep covered by
	// orbit weighting instead of materializing them.
	Skipped atomic.Int64
}

// Stats is the final counter block attached to RunEnd and WorkerDone
// events. It mirrors the engine's stats; sweep producers fill only the
// fields that apply (States = pairs or plans).
type Stats struct {
	States      int64
	MemoHits    int64
	Pruned      int64
	Memoized    int64
	MemoBytes   int64
	MemoSpilled int64
	// SleepSetPruned counts engine children skipped by sleep-set
	// pruning; SymmetrySkipped counts computations a reduced sweep
	// skipped as non-canonical; Orbits is the total class weight a
	// reduced sweep credited to its representatives.
	SleepSetPruned  int64
	SymmetrySkipped int64
	Orbits          int64
	Roots           int
	Workers         int
}

// Event is one observation. Which fields are meaningful depends on
// Kind (see the Kind constants). Time is stamped by Emit when zero.
type Event struct {
	Kind   Kind
	Time   time.Time
	Run    string // run label (stamped by WithRun when empty)
	Worker int    // worker / processor id, 0 when not applicable
	Root   int    // root index, 0 when not applicable
	Total  int    // kind-specific cardinality (total roots, plan length…)
	N      int64  // kind-specific magnitude (budget, bytes, plan index…)
	Str    string // kind-specific detail (verdict, reason, fault kind…)
	// Src and Dst are fault-site node ids (-1 when not applicable).
	Src, Dst int
	Stats    *Stats    // RunEnd / WorkerDone
	Live     *Counters // RunStart
}

// Recorder receives events. Implementations must be safe for
// concurrent use: parallel workers record without coordination.
// Producers treat a nil Recorder as "record nothing" — use Emit, which
// performs the nil check and timestamps the event.
type Recorder interface {
	Record(Event)
}

// Emit sends ev to rec, stamping Time if unset. It is safe on a nil
// recorder; producers call it unconditionally on cold paths.
func Emit(rec Recorder, ev Event) {
	if rec == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	rec.Record(ev)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Event)

// Record calls f.
func (f RecorderFunc) Record(ev Event) { f(ev) }

// withRun stamps a run label on unlabeled events.
type withRun struct {
	rec Recorder
	run string
}

func (w withRun) Record(ev Event) {
	if ev.Run == "" {
		ev.Run = w.run
	}
	w.rec.Record(ev)
}

// WithRun returns a recorder that labels unlabeled events with run
// before forwarding to rec. A nil rec stays nil, so producers keep
// their fast path.
func WithRun(rec Recorder, run string) Recorder {
	if rec == nil {
		return nil
	}
	return withRun{rec: rec, run: run}
}

// withRunPrefix prepends a prefix to every event's run label, labeled
// or not. The serving stack uses it to thread request IDs into the
// decision events its handlers produce.
type withRunPrefix struct {
	rec    Recorder
	prefix string
}

func (w withRunPrefix) Record(ev Event) {
	ev.Run = w.prefix + ev.Run
	w.rec.Record(ev)
}

// WithRunPrefix returns a recorder that prefixes every event's run
// label (empty or not) with prefix before forwarding to rec. A nil
// rec stays nil, and an empty prefix returns rec unchanged.
func WithRunPrefix(rec Recorder, prefix string) Recorder {
	if rec == nil || prefix == "" {
		return rec
	}
	return withRunPrefix{rec: rec, prefix: prefix}
}

// multi fans events out to several recorders.
type multi []Recorder

func (m multi) Record(ev Event) {
	for _, r := range m {
		r.Record(ev)
	}
}

// Multi combines recorders. Nil entries are dropped; zero live
// recorders yield nil (the no-op), one yields it unwrapped.
func Multi(recs ...Recorder) Recorder {
	var live multi
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

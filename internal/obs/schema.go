package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file makes the -report JSON shape a tested contract: a small,
// checked-in schema (testdata/report.schema.json) names every required
// field with its type, and ValidateReport checks a report against it.
// CI runs the check through scripts/report-check.sh on real CLI output,
// so a field rename or type change fails a build instead of silently
// breaking downstream trajectory diffing.

// Schema is the minimal report schema: required maps dotted field
// paths of the top-level object to expected JSON types ("string",
// "number", "boolean", "array", "object"), and runs_item does the same
// for every element of the "runs" array.
type Schema struct {
	Required map[string]string `json:"required"`
	RunsItem map[string]string `json:"runs_item"`
}

// ValidateReport checks reportJSON against schemaJSON and returns an
// error naming every violation (missing field, wrong type), or nil.
func ValidateReport(reportJSON, schemaJSON []byte) error {
	var schema Schema
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return fmt.Errorf("obs: bad schema: %w", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(reportJSON, &doc); err != nil {
		return fmt.Errorf("obs: bad report JSON: %w", err)
	}
	var violations []string
	checkFields(doc, schema.Required, "", &violations)
	if len(schema.RunsItem) > 0 {
		if runs, ok := doc["runs"].([]any); ok {
			for i, item := range runs {
				obj, ok := item.(map[string]any)
				if !ok {
					violations = append(violations, fmt.Sprintf("runs[%d]: not an object", i))
					continue
				}
				checkFields(obj, schema.RunsItem, fmt.Sprintf("runs[%d].", i), &violations)
			}
		}
	}
	if len(violations) == 0 {
		return nil
	}
	sort.Strings(violations)
	return fmt.Errorf("obs: report violates schema:\n  %s", strings.Join(violations, "\n  "))
}

// checkFields verifies each dotted path of want against obj.
func checkFields(obj map[string]any, want map[string]string, prefix string, violations *[]string) {
	for path, typ := range want {
		v, ok := lookup(obj, path)
		if !ok {
			*violations = append(*violations, prefix+path+": missing")
			continue
		}
		if got := jsonType(v); got != typ {
			*violations = append(*violations, fmt.Sprintf("%s%s: %s, want %s", prefix, path, got, typ))
		}
	}
}

// lookup resolves a dotted path inside nested JSON objects.
func lookup(obj map[string]any, path string) (any, bool) {
	parts := strings.Split(path, ".")
	var cur any = obj
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func jsonType(v any) string {
	switch v.(type) {
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	case nil:
		return "null"
	default:
		return "unknown"
	}
}

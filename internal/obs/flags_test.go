package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAddFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Progress != 0 || f.Report != "" || f.Trace != "" || f.PProf != "" {
		t.Fatalf("defaults: %+v", f)
	}
	var stderr bytes.Buffer
	s, err := f.Start("t", nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rec != nil {
		t.Fatal("no flags set but Rec is non-nil — hot paths would pay for it")
	}
	if err := s.Close(0); err != nil {
		t.Fatal(err)
	}
	// A nil session (CLI error before Start) must be closeable too.
	var nilSession *Session
	if err := nilSession.Close(1); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWritesReportAndTrace(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.json")

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-progress", "1h", "-report", reportPath, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	s, err := f.Start("ccmc", []string{"-demo"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rec == nil {
		t.Fatal("flags set but Rec is nil")
	}
	Emit(s.Rec, Event{Kind: RunStart, Run: "SC"})
	Emit(s.Rec, Event{Kind: RunEnd, Run: "SC", Str: "IN", Stats: &Stats{States: 3}})
	if err := s.Close(2); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "ccmc" || rep.ExitCode != 2 || len(rep.Runs) != 1 || rep.Runs[0].Outcome != "IN" {
		t.Fatalf("report: %+v", rep)
	}

	traw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traw, &events); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(events) != 1 || events[0]["name"] != "SC" {
		t.Fatalf("trace events: %v", events)
	}
}

func TestSessionPProf(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	s, err := f.Start("t", nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(0)
	addr := s.pprofLn.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
}

func TestSessionPProfBadAddress(t *testing.T) {
	f := &Flags{PProf: "256.256.256.256:http"}
	var stderr bytes.Buffer
	if _, err := f.Start("t", nil, &stderr); err == nil {
		t.Fatal("bad -pprof address did not error")
	}
}

package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime/metrics"
	"sync"
	"time"
)

// Report is the machine-readable summary a CLI writes with -report: a
// stable JSON shape (validated in CI by scripts/report-check.sh against
// testdata/report.schema.json) that captures what the process decided
// and what it cost, suitable for trajectory diffing under benchmarks/.
type Report struct {
	// Tool is the CLI name (ccmc, verify, backersim, lattice, enumerate).
	Tool string `json:"tool"`
	// Args are the raw command-line arguments the tool ran with.
	Args []string `json:"args"`
	// Start is the wall-clock start of the session.
	Start time.Time `json:"start"`
	// WallMS and CPUMS are the session's wall-clock and user-CPU time in
	// milliseconds. CPU time comes from runtime/metrics and is the
	// process-wide Go user time, an approximation good enough for
	// spotting serial-vs-parallel regressions.
	WallMS float64 `json:"wall_ms"`
	CPUMS  float64 `json:"cpu_ms"`
	// ExitCode is the code the process exited with (0/1/2/3 convention).
	ExitCode int `json:"exit_code"`
	// Runs summarizes every recorded decision run, in completion order.
	Runs []RunReport `json:"runs"`
	// Events aggregates the discrete event stream.
	Events EventCounts `json:"events"`
}

// RunReport is the summary of one RunStart/RunEnd pair.
type RunReport struct {
	Name    string  `json:"name"`
	Outcome string  `json:"outcome"`
	WallMS  float64 `json:"wall_ms"`
	// Engine counters, zero for producers that keep none.
	States      int64 `json:"states"`
	MemoHits    int64 `json:"memo_hits"`
	Pruned      int64 `json:"pruned"`
	Memoized    int64 `json:"memoized"`
	MemoBytes   int64 `json:"memo_bytes"`
	MemoSpilled int64 `json:"memo_spilled"`
	// Symmetry/sleep gauges: children skipped by sleep-set pruning,
	// computations covered by orbit weighting instead of being
	// materialized, and the total class weight credited to
	// representatives (zero for producers without reduction).
	SleepSetPruned  int64 `json:"sleep_set_pruned"`
	SymmetrySkipped int64 `json:"symmetry_skipped"`
	Orbits          int64 `json:"orbits"`
	Roots           int   `json:"roots"`
	Workers         int   `json:"workers"`
}

// EventCounts aggregates the discrete events of a session.
type EventCounts struct {
	GovernorsFired int64 `json:"governors_fired"`
	MemoFreezes    int64 `json:"memo_freezes"`
	RootsSkipped   int64 `json:"roots_skipped"`
	FaultsInjected int64 `json:"faults_injected"`
	ShrinkSteps    int64 `json:"shrink_steps"`
	PlansDone      int64 `json:"plans_done"`
	PlanViolations int64 `json:"plan_violations"`
	// PanicsRecovered counts handler panics the serving stack's
	// recovery middleware turned into completed 500 exchanges.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Fleet-dispatch counters: shard batch attempts that failed and
	// were requeued, hedged re-dispatches, shards abandoned after
	// retries exhausted (each one degrades the merged verdict), and
	// replica circuit-breaker state changes.
	ShardRetries int64 `json:"shard_retries"`
	ShardHedges  int64 `json:"shard_hedges"`
	ShardsLost   int64 `json:"shards_lost"`
	BreakerFlips int64 `json:"breaker_flips"`
	// Streaming-verification counters: trace streams completed, node
	// events they ingested, stable violations proved mid-stream, and
	// streams degraded by the buffer-overflow policy.
	StreamsDone         int64 `json:"streams_done"`
	TraceEventsIngested int64 `json:"trace_events_ingested"`
	StreamViolations    int64 `json:"stream_violations"`
	StreamOverruns      int64 `json:"stream_overruns"`
	// Decisions counts completed runs by run name. For the decision
	// CLIs run names are model names (SC … TSO, RA, CAUSAL), making
	// this the report-side twin of the ccmd /statsz per-model counters;
	// experiment producers land under their run labels ("star WN").
	Decisions map[string]int64 `json:"decisions"`
}

// ReportCollector is the recorder behind -report: it folds the event
// stream into a Report, finalized by Finish.
type ReportCollector struct {
	mu     sync.Mutex
	rep    Report
	open   map[string]time.Time
	cpu0   float64
	closed bool
}

// NewReportCollector starts a collector for the given tool invocation.
func NewReportCollector(tool string, args []string) *ReportCollector {
	c := &ReportCollector{
		rep:  Report{Tool: tool, Args: args, Start: time.Now(), Runs: []RunReport{}},
		open: make(map[string]time.Time),
		cpu0: cpuSeconds(),
	}
	c.rep.Events.Decisions = make(map[string]int64)
	return c
}

// Record folds one event into the report.
func (c *ReportCollector) Record(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case RunStart:
		c.open[ev.Run] = ev.Time
	case RunEnd:
		rr := RunReport{Name: ev.Run, Outcome: ev.Str}
		if start, ok := c.open[ev.Run]; ok {
			rr.WallMS = float64(ev.Time.Sub(start)) / float64(time.Millisecond)
			delete(c.open, ev.Run)
		}
		if ev.Stats != nil {
			rr.States = ev.Stats.States
			rr.MemoHits = ev.Stats.MemoHits
			rr.Pruned = ev.Stats.Pruned
			rr.Memoized = ev.Stats.Memoized
			rr.MemoBytes = ev.Stats.MemoBytes
			rr.MemoSpilled = ev.Stats.MemoSpilled
			rr.SleepSetPruned = ev.Stats.SleepSetPruned
			rr.SymmetrySkipped = ev.Stats.SymmetrySkipped
			rr.Orbits = ev.Stats.Orbits
			rr.Roots = ev.Stats.Roots
			rr.Workers = ev.Stats.Workers
		}
		c.rep.Runs = append(c.rep.Runs, rr)
		c.rep.Events.Decisions[ev.Run]++
	case GovernorFired:
		c.rep.Events.GovernorsFired++
	case MemoFreeze:
		c.rep.Events.MemoFreezes++
	case RootSkipped:
		c.rep.Events.RootsSkipped++
	case FaultInjected:
		c.rep.Events.FaultsInjected++
	case ShrinkStep:
		c.rep.Events.ShrinkSteps++
	case PlanDone:
		c.rep.Events.PlansDone++
		if ev.Str == "VIOLATED" || ev.Str == "OUT" {
			c.rep.Events.PlanViolations++
		}
	case PanicRecovered:
		c.rep.Events.PanicsRecovered++
	case ShardRetry:
		c.rep.Events.ShardRetries++
	case ShardHedge:
		c.rep.Events.ShardHedges++
	case ShardDone:
		if ev.Str == "lost" {
			c.rep.Events.ShardsLost++
		}
	case BreakerFlip:
		c.rep.Events.BreakerFlips++
	case StreamViolation:
		c.rep.Events.StreamViolations++
	case StreamOverrun:
		c.rep.Events.StreamOverruns++
	case StreamDone:
		c.rep.Events.StreamsDone++
		c.rep.Events.TraceEventsIngested += ev.N
	}
}

// Finish stamps the session totals and returns the finished report.
// Further events are still folded in if they arrive (harmless), but
// the returned snapshot is complete.
func (c *ReportCollector) Finish(exitCode int) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.rep.WallMS = float64(time.Since(c.rep.Start)) / float64(time.Millisecond)
		c.rep.CPUMS = (cpuSeconds() - c.cpu0) * 1000
		c.closed = true
	}
	c.rep.ExitCode = exitCode
	snap := c.rep
	snap.Runs = append([]RunReport(nil), c.rep.Runs...)
	return &snap
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (0644, truncating).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cpuSeconds reads the Go runtime's user-CPU clock (seconds since
// process start); 0 when the metric is unavailable.
func cpuSeconds() float64 {
	samples := []metrics.Sample{{Name: "/cpu/classes/user:cpu-seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return samples[0].Value.Float64()
}

package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// collector is a trivial thread-safe recorder for tests.
type collector struct {
	mu  sync.Mutex
	evs []Event
}

func (c *collector) Record(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collector) events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind: %q", Kind(200).String())
	}
}

func TestEmit(t *testing.T) {
	// nil recorder: must not panic.
	Emit(nil, Event{Kind: RunStart})

	c := &collector{}
	Emit(c, Event{Kind: RunStart})
	stamped := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	Emit(c, Event{Kind: RunEnd, Time: stamped})
	evs := c.events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Time.IsZero() {
		t.Error("Emit did not stamp a zero time")
	}
	if !evs[1].Time.Equal(stamped) {
		t.Error("Emit overwrote a pre-stamped time")
	}
}

func TestWithRun(t *testing.T) {
	if WithRun(nil, "x") != nil {
		t.Fatal("WithRun(nil) must stay nil to keep producer fast paths")
	}
	c := &collector{}
	rec := WithRun(c, "SC")
	rec.Record(Event{Kind: RunStart})
	rec.Record(Event{Kind: RunEnd, Run: "already"})
	evs := c.events()
	if evs[0].Run != "SC" {
		t.Errorf("unlabeled event got run %q", evs[0].Run)
	}
	if evs[1].Run != "already" {
		t.Errorf("labeled event was relabeled to %q", evs[1].Run)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must be nil")
	}
	c := &collector{}
	if got := Multi(nil, c, nil); got != Recorder(c) {
		t.Fatal("single-recorder Multi must unwrap")
	}
	c2 := &collector{}
	m := Multi(c, c2)
	m.Record(Event{Kind: GovernorFired})
	if len(c.events()) != 1 || len(c2.events()) != 1 {
		t.Fatal("Multi did not fan out")
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgress(w, 5*time.Millisecond)
	live := &Counters{}
	live.States.Store(12_345_000)
	live.MemoBytes.Store(3 << 20)
	live.Done.Store(2)
	live.Slept.Store(42_000)
	live.Skipped.Store(1_234_567)
	p.Record(Event{Kind: RunStart, Run: "SC", Live: live, Total: 8, N: 50_000_000, Time: time.Now()})

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "SC:") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress line within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	p.Record(Event{Kind: RunEnd, Run: "SC", Time: time.Now()})
	p.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"SC:", "states", "memo 3.0 MiB", "slept 42k", "sym-skip 1235k", "done 2/8", "budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q in %q", want, out)
		}
	}
	// Runs without live counters must not report.
	if strings.Contains(out, "quiet") {
		t.Error("run without counters produced a line")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestReportCollector(t *testing.T) {
	c := NewReportCollector("ccmc", []string{"-demo", "-report", "r.json"})
	base := time.Now()
	c.Record(Event{Kind: RunStart, Run: "SC", Time: base})
	c.Record(Event{Kind: GovernorFired, Str: "budget", Time: base})
	c.Record(Event{Kind: RootSkipped, Time: base})
	c.Record(Event{Kind: MemoFreeze, Time: base})
	c.Record(Event{Kind: FaultInjected, Str: "skip-flush", Time: base})
	c.Record(Event{Kind: ShrinkStep, Time: base})
	c.Record(Event{Kind: PlanDone, Str: "VIOLATED", Time: base})
	c.Record(Event{Kind: PlanDone, Str: "OK", Time: base})
	c.Record(Event{
		Kind: RunEnd, Run: "SC", Str: "INCONCLUSIVE(budget)", Time: base.Add(250 * time.Millisecond),
		Stats: &Stats{States: 1000, MemoHits: 10, Pruned: 5, Memoized: 900, MemoBytes: 4096,
			SleepSetPruned: 77, SymmetrySkipped: 88, Orbits: 99, Roots: 3, Workers: 2},
	})

	rep := c.Finish(3)
	if rep.Tool != "ccmc" || rep.ExitCode != 3 {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs: %+v", rep.Runs)
	}
	rr := rep.Runs[0]
	if rr.Name != "SC" || rr.Outcome != "INCONCLUSIVE(budget)" || rr.States != 1000 || rr.Workers != 2 {
		t.Fatalf("run report: %+v", rr)
	}
	if rr.SleepSetPruned != 77 || rr.SymmetrySkipped != 88 || rr.Orbits != 99 {
		t.Fatalf("symmetry gauges lost: %+v", rr)
	}
	if rr.WallMS < 249 || rr.WallMS > 260 {
		t.Errorf("run wall time %v", rr.WallMS)
	}
	ec := rep.Events
	if ec.GovernorsFired != 1 || ec.RootsSkipped != 1 || ec.MemoFreezes != 1 ||
		ec.FaultsInjected != 1 || ec.ShrinkSteps != 1 || ec.PlansDone != 2 || ec.PlanViolations != 1 {
		t.Fatalf("event counts: %+v", ec)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

const testSchema = `{
  "required": {
    "tool": "string",
    "args": "array",
    "start": "string",
    "wall_ms": "number",
    "cpu_ms": "number",
    "exit_code": "number",
    "runs": "array",
    "events": "object",
    "events.governors_fired": "number",
    "events.plans_done": "number"
  },
  "runs_item": {
    "name": "string",
    "outcome": "string",
    "states": "number",
    "workers": "number"
  }
}`

func TestValidateReportRoundTrip(t *testing.T) {
	c := NewReportCollector("verify", []string{"-trace", "x"})
	c.Record(Event{Kind: RunStart, Run: "r", Time: time.Now()})
	c.Record(Event{Kind: RunEnd, Run: "r", Str: "IN", Stats: &Stats{States: 7}, Time: time.Now()})
	var buf bytes.Buffer
	if err := c.Finish(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(buf.Bytes(), []byte(testSchema)); err != nil {
		t.Fatalf("real report fails schema: %v", err)
	}
}

// The checked-in schema CI validates real CLI reports against must
// itself accept a freshly collected report, or scripts/report-check.sh
// would reject every build.
func TestCheckedInSchemaAcceptsRealReport(t *testing.T) {
	schema, err := os.ReadFile(filepath.Join("..", "..", "testdata", "report.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewReportCollector("ccmc", []string{"testdata/figure2.ccm"})
	c.Record(Event{Kind: RunStart, Run: "SC", Time: time.Now()})
	c.Record(Event{Kind: RunEnd, Run: "SC", Str: "OUT", Stats: &Stats{States: 4, Workers: 1}, Time: time.Now()})
	var buf bytes.Buffer
	if err := c.Finish(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(buf.Bytes(), schema); err != nil {
		t.Fatalf("checked-in schema rejects a real report: %v", err)
	}
}

func TestValidateReportViolations(t *testing.T) {
	bad := `{"tool": 7, "runs": [{"name": "x"}, "oops"]}`
	err := ValidateReport([]byte(bad), []byte(testSchema))
	if err == nil {
		t.Fatal("bad report passed validation")
	}
	msg := err.Error()
	for _, want := range []string{
		"tool: number, want string",
		"wall_ms: missing",
		"runs[0].outcome: missing",
		"runs[1]: not an object",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("violations missing %q:\n%s", want, msg)
		}
	}
	if err := ValidateReport([]byte("{"), []byte(testSchema)); err == nil {
		t.Error("malformed report JSON passed")
	}
	if err := ValidateReport([]byte("{}"), []byte("{")); err == nil {
		t.Error("malformed schema JSON passed")
	}
}

func TestSpanCollector(t *testing.T) {
	s := NewSpanCollector()
	base := time.Now()
	s.Record(Event{Kind: RunStart, Run: "SC", Time: base})
	s.Record(Event{Kind: RootClaimed, Run: "SC", Worker: 1, Root: 4, Time: base.Add(time.Millisecond)})
	s.Record(Event{Kind: GovernorFired, Run: "SC", Str: "budget", Time: base.Add(2 * time.Millisecond)})
	s.Record(Event{Kind: RootFinished, Run: "SC", Worker: 1, Root: 4, Str: "found", Time: base.Add(3 * time.Millisecond)})
	s.Record(Event{Kind: RunEnd, Run: "SC", Str: "IN", Time: base.Add(4 * time.Millisecond)})
	if s.Len() != 3 {
		t.Fatalf("want 3 closed spans/instants, got %d", s.Len())
	}

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var phX, phI int
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		switch ev["ph"] {
		case "X":
			phX++
			if ev["dur"].(float64) <= 0 {
				t.Errorf("X event with no duration: %v", ev)
			}
		case "i":
			phI++
		}
	}
	if phX != 2 || phI != 1 {
		t.Fatalf("want 2 X + 1 i events, got %d X %d i", phX, phI)
	}
	if !names["SC"] || !names["root 4"] || !names["governor"] {
		t.Fatalf("trace names: %v", names)
	}
}

func TestSpanCollectorClosesOpenSpans(t *testing.T) {
	s := NewSpanCollector()
	s.Record(Event{Kind: RunStart, Run: "stuck", Time: time.Now().Add(-time.Second)})
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0]["name"] != "stuck" {
		t.Fatalf("open span not exported: %v", events)
	}
	if args, ok := events[0]["args"].(map[string]any); !ok || args["detail"] != "unfinished" {
		t.Fatalf("open span not marked unfinished: %v", events[0])
	}
}

package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Flags is the shared observability flag block every CLI grows:
//
//	-progress <dur>   periodic progress lines on stderr
//	-report <file>    machine-readable JSON run report on exit
//	-trace <file>     Chrome trace_event timeline on exit
//	-pprof <addr>     live net/http/pprof server
//
// Register with AddFlags, then Start a Session after flag parsing and
// Close it with the exit code before returning. One helper wires all
// five tools identically, so a stuck run is diagnosable the same way
// everywhere.
type Flags struct {
	Progress time.Duration
	Report   string
	Trace    string
	PProf    string
}

// AddFlags registers the observability flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.Progress, "progress", 0, "print a progress line to stderr at this interval (0 = off)")
	fs.StringVar(&f.Report, "report", "", "write a JSON run report to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event timeline to this file on exit")
	fs.StringVar(&f.PProf, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Session is the assembled recorder stack for one CLI invocation.
// Rec is nil when no flag asked for observation — producers then skip
// all event work.
type Session struct {
	Rec Recorder

	flags    *Flags
	progress *Progress
	report   *ReportCollector
	spans    *SpanCollector
	pprofLn  net.Listener
}

// Start builds the recorders the flags ask for and, with -pprof,
// starts the profiling server. A bad -pprof address is an immediate
// error (a silently dead profiler would defeat the point).
func (f *Flags) Start(tool string, args []string, stderr io.Writer) (*Session, error) {
	s := &Session{flags: f}
	var recs []Recorder
	if f.Progress > 0 {
		s.progress = NewProgress(stderr, f.Progress)
		recs = append(recs, s.progress)
	}
	if f.Report != "" {
		s.report = NewReportCollector(tool, args)
		recs = append(recs, s.report)
	}
	if f.Trace != "" {
		s.spans = NewSpanCollector()
		recs = append(recs, s.spans)
	}
	if f.PProf != "" {
		ln, err := net.Listen("tcp", f.PProf)
		if err != nil {
			return nil, fmt.Errorf("obs: -pprof %s: %w", f.PProf, err)
		}
		s.pprofLn = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // exits with the process
		fmt.Fprintf(stderr, "%s: pprof serving on http://%s/debug/pprof/\n", tool, ln.Addr())
	}
	s.Rec = Multi(recs...)
	return s, nil
}

// Close flushes the session: stops the progress loop, writes the
// report and trace files (stamped with exitCode), and shuts the pprof
// listener. It returns the first write error; callers should surface
// it and exit nonzero.
func (s *Session) Close(exitCode int) error {
	if s == nil {
		return nil
	}
	var firstErr error
	if s.progress != nil {
		s.progress.Close()
	}
	if s.report != nil {
		if err := s.report.Finish(exitCode).WriteFile(s.flags.Report); err != nil {
			firstErr = err
		}
	}
	if s.spans != nil {
		if err := s.spans.WriteFile(s.flags.Trace); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.pprofLn != nil {
		s.pprofLn.Close()
	}
	return firstErr
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SpanCollector is an in-memory recorder that pairs start/finish
// events into timed spans and keeps the rest as instants, exporting
// the Chrome trace_event JSON format (load the file in
// chrome://tracing or Perfetto) for flamegraph-style timelines of
// parallel root splitting and chaos exploration: one track per worker,
// one span per claimed root, instants for governor firings, faults,
// plans, and shrink steps.
type SpanCollector struct {
	mu    sync.Mutex
	base  time.Time
	spans []span
	open  map[spanKey]time.Time
}

type spanKey struct {
	run    string
	worker int
	root   int
	kind   Kind
}

type span struct {
	name     string
	start    time.Time
	dur      time.Duration // 0 with instant=true
	worker   int
	instant  bool
	detail   string
	category string
}

// NewSpanCollector returns an empty collector; the first event sets
// the timeline origin.
func NewSpanCollector() *SpanCollector {
	return &SpanCollector{open: make(map[spanKey]time.Time)}
}

// Record folds one event into the timeline.
func (s *SpanCollector) Record(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.base.IsZero() {
		s.base = ev.Time
	}
	switch ev.Kind {
	case RunStart:
		s.open[spanKey{run: ev.Run, kind: RunStart}] = ev.Time
	case RunEnd:
		key := spanKey{run: ev.Run, kind: RunStart}
		if start, ok := s.open[key]; ok {
			delete(s.open, key)
			s.spans = append(s.spans, span{
				name: ev.Run, start: start, dur: ev.Time.Sub(start),
				category: "run", detail: ev.Str,
			})
		}
	case RootClaimed:
		s.open[spanKey{run: ev.Run, worker: ev.Worker, root: ev.Root, kind: RootClaimed}] = ev.Time
	case RootFinished:
		key := spanKey{run: ev.Run, worker: ev.Worker, root: ev.Root, kind: RootClaimed}
		if start, ok := s.open[key]; ok {
			delete(s.open, key)
			s.spans = append(s.spans, span{
				name: fmt.Sprintf("root %d", ev.Root), start: start, dur: ev.Time.Sub(start),
				worker: ev.Worker + 1, category: "root", detail: ev.Str,
			})
		}
	case PhaseStart, RootSkipped, GovernorFired, MemoFreeze, FaultInjected, ShrinkStep, PlanDone:
		s.spans = append(s.spans, span{
			name: ev.Kind.String(), start: ev.Time, instant: true,
			worker: ev.Worker + 1, category: ev.Kind.String(), detail: ev.Str,
		})
	}
}

// traceEvent is one Chrome trace_event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds since origin
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace exports the collected timeline as a Chrome trace_event
// JSON array. Open spans (a run still in flight at export time) are
// closed at the current instant so partial sessions stay loadable.
func (s *SpanCollector) WriteTrace(w io.Writer) error {
	s.mu.Lock()
	spans := append([]span(nil), s.spans...)
	now := time.Now()
	for key, start := range s.open {
		spans = append(spans, span{
			name: key.run, start: start, dur: now.Sub(start),
			worker: key.worker, category: "run", detail: "unfinished",
		})
	}
	base := s.base
	s.mu.Unlock()

	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		ev := traceEvent{
			Name: sp.name,
			Cat:  sp.category,
			Ts:   float64(sp.start.Sub(base)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  sp.worker,
		}
		if sp.detail != "" {
			ev.Args = map[string]any{"detail": sp.detail}
		}
		if sp.instant {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(sp.dur) / float64(time.Microsecond)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteFile writes the trace to path (0644, truncating).
func (s *SpanCollector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Len reports how many closed spans and instants were collected.
func (s *SpanCollector) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

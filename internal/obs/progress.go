package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is the periodic progress reporter: while a run that
// publishes live Counters is active, it prints one status line to w
// every interval — states and states/s, memo footprint, work units
// done out of total, and (under a state budget) the fraction used plus
// an ETA to exhaustion at the current rate. A stuck exploration is
// thereby diagnosable live: the line keeps printing with a flat state
// count instead of the CLI sitting silent until its deadline.
//
// Runs are tracked by RunStart/RunEnd events; overlapping runs print
// one line each. Close stops the ticker goroutine and must be called
// before process exit to avoid a straggling line.
type Progress struct {
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	runs []*progressRun
	done chan struct{}
	wg   sync.WaitGroup
}

type progressRun struct {
	name    string
	live    *Counters
	total   int
	budget  int64
	started time.Time

	lastStates int64
	lastAt     time.Time
}

// NewProgress starts a reporter printing to w every interval.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{w: w, interval: interval, done: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

// Record tracks run lifecycles; only runs that publish live counters
// produce periodic lines.
func (p *Progress) Record(ev Event) {
	switch ev.Kind {
	case RunStart:
		if ev.Live == nil {
			return
		}
		p.mu.Lock()
		p.runs = append(p.runs, &progressRun{
			name:    ev.Run,
			live:    ev.Live,
			total:   ev.Total,
			budget:  ev.N,
			started: ev.Time,
			lastAt:  ev.Time,
		})
		p.mu.Unlock()
	case RunEnd:
		p.mu.Lock()
		for i, r := range p.runs {
			if r.name == ev.Run {
				p.runs = append(p.runs[:i], p.runs[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
	}
}

// Close stops the reporting goroutine. Idempotent via sync.Once would
// cost a field; callers (the flag session) close exactly once.
func (p *Progress) Close() {
	close(p.done)
	p.wg.Wait()
}

func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case now := <-tick.C:
			p.report(now)
		}
	}
}

func (p *Progress) report(now time.Time) {
	p.mu.Lock()
	lines := make([]string, 0, len(p.runs))
	for _, r := range p.runs {
		lines = append(lines, r.line(now))
	}
	p.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(p.w, l)
	}
}

func (r *progressRun) line(now time.Time) string {
	states := r.live.States.Load()
	dt := now.Sub(r.lastAt).Seconds()
	var rate float64
	if dt > 0 {
		rate = float64(states-r.lastStates) / dt
	}
	r.lastStates, r.lastAt = states, now

	s := fmt.Sprintf("%s: %s states (%s/s)", r.name, count(states), count(int64(rate)))
	if mb := r.live.MemoBytes.Load(); mb > 0 {
		s += fmt.Sprintf(", memo %.1f MiB", float64(mb)/(1<<20))
	}
	if slept := r.live.Slept.Load(); slept > 0 {
		s += fmt.Sprintf(", slept %s", count(slept))
	}
	if skipped := r.live.Skipped.Load(); skipped > 0 {
		s += fmt.Sprintf(", sym-skip %s", count(skipped))
	}
	if r.total > 0 {
		s += fmt.Sprintf(", done %d/%d", r.live.Done.Load(), r.total)
	}
	if r.budget > 0 {
		s += fmt.Sprintf(", budget %.0f%%", 100*float64(states)/float64(r.budget))
		if rate > 0 && states < r.budget {
			eta := time.Duration(float64(r.budget-states) / rate * float64(time.Second))
			s += fmt.Sprintf(" (eta %s)", eta.Round(100*time.Millisecond))
		}
	}
	return s
}

// count renders large counts compactly (12.3M, 456k, 789).
func count(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

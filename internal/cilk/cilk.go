// Package cilk is a miniature fork/join front-end in the style of the
// multithreaded language that motivated the paper (Section 1): programs
// spawn child strands, sync on them, and access shared memory, and the
// way a program unfolds in an execution is a computation — exactly the
// object the paper takes as given.
//
// The package closes the loop the paper's introduction draws: a
// divide-and-conquer program is built with Spawn/Sync, unfolds into a
// computation, executes on the simulated BACKER multiprocessor of
// internal/backer, and — because BACKER maintains location consistency
// and the program writes each cell once before syncing on it — computes
// the right answer. Breaking the coherence protocol (fault injection)
// breaks the program, observably.
package cilk

import (
	"fmt"
	"math/rand"

	"repro/internal/backer"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Compute produces the value a write stores, given access to the
// values returned by reads that precede it in its strand.
type Compute func(env *Env) trace.Value

// Const returns a Compute that stores a fixed value.
func Const(v trace.Value) Compute {
	return func(*Env) trace.Value { return v }
}

// Env exposes read results to a write's Compute function during
// evaluation.
type Env struct {
	readVal map[dag.Node]trace.Value
}

// Value returns the value read by node r, which must be a read that
// executed before the current write.
func (e *Env) Value(r dag.Node) trace.Value {
	v, ok := e.readVal[r]
	if !ok {
		panic(fmt.Sprintf("cilk: node %d has not read yet (reads must precede the write in its strand)", r))
	}
	return v
}

// Program is a fork/join program unfolded into a computation.
type Program struct {
	comp    *computation.Computation
	compute map[dag.Node]Compute
}

// New builds a program by running the body on the root thread. The
// body allocates locations with Thread.AllocLoc (or callers pass
// numLocs > 0 for a fixed set).
func New(numLocs int, body func(t *Thread)) *Program {
	p := &Program{
		comp:    computation.New(numLocs),
		compute: make(map[dag.Node]Compute),
	}
	root := &Thread{p: p, cur: dag.None}
	body(root)
	return p
}

// Computation returns the unfolded computation.
func (p *Program) Computation() *computation.Computation { return p.comp }

// Thread is one serial strand of the program. Its operations append
// nodes chained in program order; Spawn starts a child strand and Sync
// joins all outstanding children.
type Thread struct {
	p        *Program
	cur      dag.Node   // last node of this strand (None before the first)
	children []dag.Node // last nodes of unsynced child strands
}

// append adds a node chained after the strand's current node.
func (t *Thread) append(op computation.Op) dag.Node {
	u := t.p.comp.AddNode(op)
	if t.cur != dag.None {
		t.p.comp.MustAddEdge(t.cur, u)
	}
	t.cur = u
	return u
}

// AllocLoc allocates a fresh shared-memory location.
func (t *Thread) AllocLoc() computation.Loc { return t.p.comp.AddLoc() }

// Noop appends a node that does not access memory.
func (t *Thread) Noop() dag.Node { return t.append(computation.N) }

// Read appends a read of location l and returns its node, usable as a
// handle in later writes' Compute functions.
func (t *Thread) Read(l computation.Loc) dag.Node {
	return t.append(computation.R(l))
}

// Write appends a write of location l whose stored value is produced
// by fn at execution time.
func (t *Thread) Write(l computation.Loc, fn Compute) dag.Node {
	u := t.append(computation.W(l))
	t.p.compute[u] = fn
	return u
}

// Spawn starts a child strand running body. The child's first node
// depends on the spawn point; the parent continues independently until
// Sync.
func (t *Thread) Spawn(body func(child *Thread)) {
	child := &Thread{p: t.p, cur: dag.None}
	// The child's first node must depend on the spawn point. Insert an
	// explicit no-op anchor when the child would otherwise be empty or
	// when the parent has no node yet.
	if t.cur == dag.None {
		t.Noop()
	}
	anchor := t.cur
	child.cur = dag.None
	body(child)
	if child.cur == dag.None {
		// Empty child: nothing to join.
		return
	}
	// Wire the spawn edge to the child's first node: the child recorded
	// only its last node, so walk is unnecessary — instead re-thread:
	// the child's first node is found by following preds... simpler: we
	// added no edge yet, so the child's strand is a chain whose head has
	// no predecessors among the strand; connect anchor -> head.
	head := child.firstOf()
	t.p.comp.MustAddEdge(anchor, head)
	t.children = append(t.children, child.cur)
	// Any unsynced grandchildren become our responsibility (fully
	// strict joining would attach them to the child's sync; a child
	// that never synced passes them up, as Cilk's implicit sync does).
	t.children = append(t.children, child.children...)
}

// firstOf returns the head of the strand ending at t.cur by walking
// predecessors that belong to the same chain. Strand nodes are chained
// in creation order, so the head is the chain node with no
// within-strand predecessor; we track it directly instead.
func (t *Thread) firstOf() dag.Node {
	// Walk back along the unique chain of strand edges. A strand node's
	// first edge is always from its strand predecessor (appended before
	// any spawn/join edges), so follow the minimum-id predecessor chain
	// while it stays within a straight line.
	u := t.cur
	for {
		preds := t.p.comp.Dag().Preds(u)
		if len(preds) == 0 {
			return u
		}
		// The strand predecessor was wired at append time, before any
		// spawn/sync edges, so it is always preds[0].
		u = preds[0]
	}
}

// Sync appends a join node depending on the strand's current node and
// on every outstanding child's last node, and returns it.
func (t *Thread) Sync() dag.Node {
	if t.cur == dag.None {
		t.Noop()
	}
	join := t.p.comp.AddNode(computation.N)
	t.p.comp.MustAddEdge(t.cur, join)
	for _, c := range t.children {
		t.p.comp.MustAddEdge(c, join)
	}
	t.children = nil
	t.cur = join
	return join
}

// Result is one execution of a program on the simulated machine.
type Result struct {
	Schedule *sched.Schedule
	Backer   *backer.Result
	// ReadVal and WriteVal are the evaluated values (program semantics,
	// not the unique-write identities of the raw trace).
	ReadVal  map[dag.Node]trace.Value
	WriteVal map[dag.Node]trace.Value
}

// Execute runs the program on P processors under randomized work
// stealing and the BACKER protocol (with optional fault injection —
// probabilistic *backer.Faults or any deterministic backer.Injector),
// then evaluates the program's value semantics over the observed
// observer function: a read returns the evaluated value of the write
// it observed (Undefined for ⊥), and each write's Compute runs with
// its strand's read results.
//
// Invalid machine parameters (P < 1, nil rng) surface as errors from
// the scheduler rather than panics.
func Execute(p *Program, P int, rng *rand.Rand, faults backer.Injector) (*Result, error) {
	s, err := sched.WorkStealing(p.comp, P, nil, rng)
	if err != nil {
		return nil, err
	}
	bres, err := backer.Run(s, faults)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schedule: s,
		Backer:   bres,
		ReadVal:  make(map[dag.Node]trace.Value),
		WriteVal: make(map[dag.Node]trace.Value),
	}
	env := &Env{readVal: res.ReadVal}
	for _, u := range s.Order {
		op := p.comp.Op(u)
		switch op.Kind {
		case computation.Read:
			w := bres.ReadObserved[u]
			if w == observer.Bottom {
				res.ReadVal[u] = trace.Undefined
			} else {
				res.ReadVal[u] = res.WriteVal[w]
			}
		case computation.Write:
			fn := p.compute[u]
			if fn == nil {
				fn = Const(0)
			}
			res.WriteVal[u] = fn(env)
		}
	}
	return res, nil
}

package cilk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/trace"
)

func TestStraightLineProgram(t *testing.T) {
	p := New(1, func(th *Thread) {
		th.Write(0, Const(7))
		th.Read(0)
	})
	c := p.Computation()
	if c.NumNodes() != 2 || !c.Dag().HasEdge(0, 1) {
		t.Fatalf("program shape: %v", c)
	}
	res, err := Execute(p, 1, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadVal[1] != 7 {
		t.Fatalf("read %v, want 7", res.ReadVal[1])
	}
}

func TestSpawnSyncShape(t *testing.T) {
	var w1, w2, j dag.Node
	p := New(2, func(th *Thread) {
		th.Noop()
		th.Spawn(func(c *Thread) { w1 = c.Write(0, Const(1)) })
		th.Spawn(func(c *Thread) { w2 = c.Write(1, Const(2)) })
		j = th.Sync()
	})
	c := p.Computation()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cl := c.Closure()
	// Both writes are between the anchor and the join, parallel to each
	// other.
	if !cl.Precedes(w1, j) || !cl.Precedes(w2, j) {
		t.Fatal("children must precede the sync")
	}
	if cl.Comparable(w1, w2) {
		t.Fatal("siblings must be parallel")
	}
	if len(c.Dag().Sources()) != 1 {
		t.Fatalf("sources = %v", c.Dag().Sources())
	}
}

func TestNestedSpawnPassesChildrenUp(t *testing.T) {
	var deep dag.Node
	p := New(1, func(th *Thread) {
		th.Noop()
		th.Spawn(func(c *Thread) {
			c.Noop()
			c.Spawn(func(g *Thread) { deep = g.Write(0, Const(3)) })
			// no sync in the child: the grandchild joins at the parent's sync
		})
		th.Sync()
	})
	c := p.Computation()
	cl := c.Closure()
	join := dag.Node(c.NumNodes() - 1)
	if !cl.Precedes(deep, join) {
		t.Fatal("unsynced grandchild must join at the ancestor's sync")
	}
}

func TestEnvUnreadPanics(t *testing.T) {
	p := New(1, func(th *Thread) {
		th.Write(0, func(env *Env) trace.Value {
			return env.Value(99) // never read
		})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Execute(p, 1, rand.New(rand.NewSource(1)), nil)
}

// Fib builds the canonical divide-and-conquer program: every task
// writes its result to a fresh cell exactly once; parents sync and sum
// their children's cells.
func Fib(n int) (*Program, computation.Loc) {
	var out computation.Loc
	var build func(t *Thread, res computation.Loc, k int)
	build = func(t *Thread, res computation.Loc, k int) {
		if k < 2 {
			t.Write(res, Const(trace.Value(k)))
			return
		}
		l1 := t.AllocLoc()
		l2 := t.AllocLoc()
		t.Spawn(func(c *Thread) { build(c, l1, k-1) })
		t.Spawn(func(c *Thread) { build(c, l2, k-2) })
		t.Sync()
		r1 := t.Read(l1)
		r2 := t.Read(l2)
		t.Write(res, func(env *Env) trace.Value {
			return env.Value(r1) + env.Value(r2)
		})
	}
	p := New(0, func(t *Thread) {
		out = t.AllocLoc()
		build(t, out, n)
	})
	return p, out
}

func fibValue(n int) trace.Value {
	a, b := trace.Value(0), trace.Value(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// The paper's end-to-end story: a Cilk-style program on the BACKER
// machine computes correctly on any processor count, because BACKER
// maintains LC and the program is single-assignment with syncs — and
// the produced trace verifies as location consistent.
func TestFibCorrectOnBacker(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 5, 10} {
		p, out := Fib(n)
		for _, P := range []int{1, 2, 4, 8} {
			res, err := Execute(p, P, rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			// The program's final write to `out` is the root task's.
			var got trace.Value
			found := false
			c := p.Computation()
			for u := 0; u < c.NumNodes(); u++ {
				if c.Op(dag.Node(u)).IsWriteTo(out) {
					got = res.WriteVal[dag.Node(u)]
					found = true
				}
			}
			if !found {
				t.Fatalf("fib(%d): no write to the result cell", n)
			}
			if got != fibValue(n) {
				t.Fatalf("fib(%d) on P=%d = %v, want %v", n, P, got, fibValue(n))
			}
			if !checker.VerifyLC(res.Backer.Trace).OK {
				t.Fatalf("fib(%d) trace not LC", n)
			}
		}
	}
}

// Under heavy protocol faults the program computes garbage on some run,
// and the post-mortem checker flags those runs.
func TestFibBreaksWithoutCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, out := Fib(9)
	want := fibValue(9)
	wrong, flagged := 0, 0
	const trials = 60
	for i := 0; i < trials; i++ {
		faults := &backer.Faults{SkipReconcile: 0.9, SkipFlush: 0.9, Rng: rng}
		res, err := Execute(p, 4, rng, faults)
		if err != nil {
			t.Fatal(err)
		}
		c := p.Computation()
		for u := 0; u < c.NumNodes(); u++ {
			if c.Op(dag.Node(u)).IsWriteTo(out) {
				if res.WriteVal[dag.Node(u)] != want {
					wrong++
				}
			}
		}
		if !checker.VerifyLC(res.Backer.Trace).OK {
			flagged++
		}
	}
	if wrong == 0 {
		t.Fatal("faulty protocol never broke the program; the fault injection looks inert")
	}
	if flagged == 0 {
		t.Fatal("checker never flagged a faulty run")
	}
	t.Logf("faults: %d/%d wrong results, %d/%d runs flagged as LC violations", wrong, trials, flagged, trials)
}

// Property: random fork/join programs unfold into valid computations
// with a single source, and execution at P=1 is deterministic (same
// seed, same values).
func TestQuickRandomProgramsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var build func(t *Thread, depth int)
		build = func(th *Thread, depth int) {
			ops := 1 + rng.Intn(3)
			for i := 0; i < ops; i++ {
				l := computation.Loc(rng.Intn(2))
				switch rng.Intn(3) {
				case 0:
					th.Write(l, Const(trace.Value(rng.Intn(10))))
				case 1:
					th.Read(l)
				default:
					th.Noop()
				}
			}
			if depth > 0 {
				kids := 1 + rng.Intn(2)
				for i := 0; i < kids; i++ {
					build2 := func(c *Thread) { build(c, depth-1) }
					th.Spawn(build2)
				}
				th.Sync()
				if rng.Intn(2) == 0 {
					th.Read(computation.Loc(rng.Intn(2)))
				}
			}
		}
		p := New(2, func(th *Thread) {
			th.Noop()
			build(th, 2)
		})
		c := p.Computation()
		if c.Validate() != nil {
			return false
		}
		if len(c.Dag().Sources()) != 1 {
			return false
		}
		// Deterministic at P=1 with a fixed execution seed.
		r1, err1 := Execute(p, 1, rand.New(rand.NewSource(1)), nil)
		r2, err2 := Execute(p, 1, rand.New(rand.NewSource(1)), nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for u, v := range r1.WriteVal {
			if r2.WriteVal[u] != v {
				return false
			}
		}
		// And LC-consistent on every processor count.
		res, err := Execute(p, 1+rng.Intn(4), rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			return false
		}
		return checker.VerifyLC(res.Backer.Trace).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The unfolded fib computation is in the universe of valid
// computations: it validates, has one source, and its observer from
// the BACKER run is a valid observer function in LC.
func TestFibObserverInLC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := Fib(6)
	res, err := Execute(p, 4, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Computation()
	// Reconstruct the full observer from the backer result rows is not
	// exposed; instead verify via the trace-level checker and via
	// memmodel on the read-pinned completion.
	v := checker.VerifyLC(res.Backer.Trace)
	if !v.OK {
		t.Fatal("fib trace not LC")
	}
	if err := v.Observer.Validate(c); err != nil {
		t.Fatal(err)
	}
	if !memmodel.LC.Contains(c, v.Observer) {
		t.Fatal("witness observer not in LC")
	}
	_ = observer.Bottom
}

package backer

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// RunRec must mirror exactly the faults it injects: one FaultInjected
// event per counted fault, with the chaos codec spelling, and nothing
// on a healthy run.
func TestRunRecMirrorsFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomMemComputation(rng, 12, 2)
	s, err := sched.WorkStealing(c, 3, nil, rng)
	if err != nil {
		t.Fatal(err)
	}

	var evs []obs.Event
	rec := obs.RecorderFunc(func(ev obs.Event) { evs = append(evs, ev) })

	// Healthy run: no events.
	if _, err := RunRec(s, nil, rec); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("healthy run emitted %d events", len(evs))
	}

	// Every crossing edge skips its reconcile and every crossed node its
	// flush: the event stream must match the fault counters one-to-one.
	inj := &Faults{SkipReconcile: 1, SkipFlush: 1, Rng: rand.New(rand.NewSource(1))}
	res, err := RunRec(s, inj, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FaultCount() == 0 {
		t.Fatal("schedule has no crossing edges; pick a seed that spreads work")
	}
	byKind := map[string]int{}
	for _, ev := range evs {
		if ev.Kind != obs.FaultInjected {
			t.Fatalf("unexpected event %v", ev.Kind)
		}
		byKind[ev.Str]++
		if ev.Str == faultSkipReconcile && (ev.Src < 0 || ev.Dst < 0) {
			t.Fatalf("skip-reconcile without fault site: %+v", ev)
		}
	}
	if byKind[faultSkipReconcile] != res.Stats.SkippedReconciles {
		t.Errorf("skip-reconcile events %d != counter %d", byKind[faultSkipReconcile], res.Stats.SkippedReconciles)
	}
	if byKind[faultSkipFlush] != res.Stats.SkippedFlushes {
		t.Errorf("skip-flush events %d != counter %d", byKind[faultSkipFlush], res.Stats.SkippedFlushes)
	}
	if len(evs) != res.Stats.FaultCount() {
		t.Errorf("%d events for %d faults", len(evs), res.Stats.FaultCount())
	}
}

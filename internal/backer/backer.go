// Package backer simulates the BACKER coherence algorithm of Blumofe et
// al. [BFJ+96a/b] — the algorithm used by Cilk's distributed shared
// memory — on the simulated multiprocessor of internal/sched.
//
// BACKER keeps one backing store ("main memory") plus a cache per
// processor. Caches hold possibly incoherent copies of locations; three
// primitive operations maintain dag consistency:
//
//   - fetch: copy a location from main memory into the cache;
//   - reconcile: write a dirty cached value back to main memory;
//   - flush: reconcile, then drop every cached line.
//
// Whenever a dependency edge crosses processors (in Cilk: at steals and
// syncs), the source processor's cache is reconciled before the edge
// and the target processor's cache is flushed after it. Luchangco
// [Luc97] proves the resulting memory is location consistent, which
// makes the analysis and experiments of [BFJ+96a/b] carry over to LC
// (Section 7 of the paper). The tests and benches machine-check the LC
// claim with the post-mortem checker, and the fault-injection mode
// shows the checker catching real coherence bugs.
//
// Fault injection is pluggable: an Injector is consulted at every
// protocol decision point (reconcile before a crossing edge, flush
// after one, node start, read completion), so faults can be driven
// probabilistically (Faults) or from a deterministic, replayable plan
// (internal/chaos). The injector callbacks double as observation hooks:
// a recording injector that always answers "no fault" sees exactly the
// protocol actions a healthy run performs.
package backer

import (
	"fmt"
	"math/rand"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Fault-kind spellings for FaultInjected events. These deliberately
// match the internal/chaos plan codec (chaos imports backer, so the
// strings cannot be shared as constants without a cycle); the chaos
// tests pin the correspondence.
const (
	faultSkipReconcile  = "skip-reconcile"
	faultDelayReconcile = "delay-reconcile"
	faultSkipFlush      = "skip-flush"
	faultCrashCache     = "crash-cache"
	faultCorruptRead    = "corrupt-read"
)

// Injector decides, at each fault site of a run, whether to violate the
// protocol there. Implementations must be deterministic functions of
// their own state (e.g. a fault plan, or a seeded Rng) so runs are
// replayable. The zero decision everywhere is a healthy run.
type Injector interface {
	// Validate is called once per run, after the schedule is validated
	// and before any protocol action, so misconfigured injectors fail
	// loudly instead of silently injecting nothing.
	Validate(s *sched.Schedule) error
	// SkipReconcileAt reports whether to skip the reconcile of src's
	// processor demanded by the crossing edge src -> dst.
	SkipReconcileAt(src, dst dag.Node) bool
	// DelayReconcileAt reports whether the reconcile for the crossing
	// edge src -> dst should be performed late: the dirty lines are
	// marked clean immediately, but the write-backs reach main memory
	// only after dst has executed, so dst fetches from a stale backing
	// store. Consulted only when the reconcile was not skipped.
	DelayReconcileAt(src, dst dag.Node) bool
	// SkipFlushAt reports whether to skip the flush of dst's processor
	// after its crossing edges.
	SkipFlushAt(dst dag.Node) bool
	// CrashCacheAt reports whether processor p's cache is lost (dropped
	// without write-back) immediately before node u, which starts at
	// the given tick, executes.
	CrashCacheAt(u dag.Node, p int, start sched.Tick) bool
	// CorruptReadAt may replace the value returned by read node u; the
	// second result reports whether the value was corrupted.
	CorruptReadAt(u dag.Node, v trace.Value) (trace.Value, bool)
}

// Faults configures probabilistic protocol violations for the classic
// fault-injection experiments. Probabilities are per opportunity. It
// implements Injector; the deterministic fault kinds (delayed
// reconcile, cache crash, read corruption) are plan-only and never
// fire probabilistically.
type Faults struct {
	SkipReconcile float64 // chance to skip a reconcile before a crossing edge
	SkipFlush     float64 // chance to skip the flush after a crossing edge
	Rng           *rand.Rand
}

// Validate rejects the silent-no-op configuration: nonzero
// probabilities with a nil Rng used to disable all faults without
// telling anyone. It also rejects probabilities outside [0, 1].
func (f *Faults) Validate(*sched.Schedule) error {
	if f == nil {
		return nil
	}
	for _, p := range []float64{f.SkipReconcile, f.SkipFlush} {
		if p < 0 || p > 1 {
			return fmt.Errorf("backer: fault probability %v outside [0, 1]", p)
		}
	}
	if f.Rng == nil && (f.SkipReconcile > 0 || f.SkipFlush > 0) {
		return fmt.Errorf("backer: Faults has nonzero probabilities but nil Rng; " +
			"no fault would ever fire — seed an Rng or zero the probabilities")
	}
	return nil
}

func (f *Faults) skip(p float64) bool {
	return f != nil && f.Rng != nil && p > 0 && f.Rng.Float64() < p
}

// Injector implementation. skip is nil-receiver safe, so a typed-nil
// *Faults behaves like "no faults".

func (f *Faults) SkipReconcileAt(src, dst dag.Node) bool {
	if f == nil {
		return false
	}
	return f.skip(f.SkipReconcile)
}

func (f *Faults) DelayReconcileAt(src, dst dag.Node) bool { return false }

func (f *Faults) SkipFlushAt(dst dag.Node) bool {
	if f == nil {
		return false
	}
	return f.skip(f.SkipFlush)
}

func (f *Faults) CrashCacheAt(dag.Node, int, sched.Tick) bool { return false }

func (f *Faults) CorruptReadAt(_ dag.Node, v trace.Value) (trace.Value, bool) { return v, false }

// Stats counts protocol events and injected faults.
type Stats struct {
	Fetches    int
	Hits       int
	Reconciles int // whole-cache reconciles triggered by crossing edges
	Flushes    int
	Writes     int
	CrossEdges int
	// Injected faults, by kind.
	SkippedReconciles int
	DelayedReconciles int
	SkippedFlushes    int
	Crashes           int
	CorruptedReads    int
}

// FaultCount is the total number of faults the run injected.
func (s Stats) FaultCount() int {
	return s.SkippedReconciles + s.DelayedReconciles + s.SkippedFlushes + s.Crashes + s.CorruptedReads
}

// Result is one simulated BACKER execution: the trace it produced (with
// unique write values), the partial observer recording which write each
// read saw, and protocol statistics.
type Result struct {
	Schedule *sched.Schedule
	Trace    *trace.Trace
	// ReadObserved[u] is the write node each read u observed (Bottom if
	// it read uninitialized memory); dag.None... Bottom doubles as the
	// "no write" value, matching the observer convention. A corrupted
	// read keeps the writer it physically observed here; only the trace
	// value is corrupted.
	ReadObserved map[dag.Node]dag.Node
	Stats        Stats
}

type line struct {
	writer dag.Node // the write whose value this copy holds; Bottom = initial
	dirty  bool
}

type pendingWrite struct {
	loc    computation.Loc
	writer dag.Node
}

type memory struct {
	main   []dag.Node // per location: writer whose value main holds
	caches []map[computation.Loc]line
	// pending holds write-backs of delayed reconciles, applied to main
	// only after the node whose crossing edge demanded them executes.
	pending []pendingWrite
	stats   *Stats
}

func newMemory(numLocs, P int, stats *Stats) *memory {
	m := &memory{
		main:   make([]dag.Node, numLocs),
		caches: make([]map[computation.Loc]line, P),
		stats:  stats,
	}
	for l := range m.main {
		m.main[l] = observer.Bottom
	}
	for p := range m.caches {
		m.caches[p] = make(map[computation.Loc]line)
	}
	return m
}

// reconcile writes every dirty line of processor p back to main memory
// and marks the lines clean. When delayed, the lines are marked clean
// but the write-backs are buffered until drainPending.
func (m *memory) reconcile(p int, delayed bool) {
	m.stats.Reconciles++
	for l, ln := range m.caches[p] {
		if ln.dirty {
			if delayed {
				m.pending = append(m.pending, pendingWrite{loc: l, writer: ln.writer})
			} else {
				m.main[l] = ln.writer
			}
			m.caches[p][l] = line{writer: ln.writer}
		}
	}
}

// drainPending applies buffered delayed write-backs to main memory.
func (m *memory) drainPending() {
	for _, pw := range m.pending {
		m.main[pw.loc] = pw.writer
	}
	m.pending = m.pending[:0]
}

// flush reconciles and then empties processor p's cache.
func (m *memory) flush(p int) {
	m.stats.Flushes++
	for l, ln := range m.caches[p] {
		if ln.dirty {
			m.main[l] = ln.writer
		}
		delete(m.caches[p], l)
	}
}

// crash drops processor p's cache without writing anything back: dirty
// data is lost.
func (m *memory) crash(p int) {
	m.stats.Crashes++
	m.caches[p] = make(map[computation.Loc]line)
}

// read returns the write observed by a read of location l on processor
// p, fetching from main memory on a miss.
func (m *memory) read(p int, l computation.Loc) dag.Node {
	if ln, ok := m.caches[p][l]; ok {
		m.stats.Hits++
		return ln.writer
	}
	m.stats.Fetches++
	w := m.main[l]
	m.caches[p][l] = line{writer: w}
	return w
}

// write installs node u's write to location l in processor p's cache.
func (m *memory) write(p int, l computation.Loc, u dag.Node) {
	m.stats.Writes++
	m.caches[p][l] = line{writer: u, dirty: true}
}

// Run executes the computation according to the schedule under the
// BACKER protocol and returns the produced trace. inj may be nil (or a
// typed-nil *Faults) for a healthy run.
//
// Schedules come from outside the package (simulators, files, tests),
// so an invalid one is an input error, not an invariant violation: Run
// validates up front and returns the problem as an error — including a
// misconfigured injector (Injector.Validate), so silently-inert fault
// configurations fail loudly. A panic escaping the protocol body (an
// internal bug) is converted to an error at this boundary too, so
// callers feeding hostile inputs get a diagnosis instead of a crash.
func Run(s *sched.Schedule, inj Injector) (*Result, error) {
	return RunRec(s, inj, nil)
}

// RunRec is Run with observability: every injected fault is mirrored
// to rec as a FaultInjected event carrying the chaos codec spelling of
// the fault kind (Str), the fault-site nodes (Src/Dst, -1 when not
// applicable), the processor (Worker), and the start tick of the node
// being executed (N). The protocol body consults rec only where a
// fault actually fired, so a healthy run emits nothing and a nil rec
// is exactly Run.
func RunRec(s *sched.Schedule, inj Injector, rec obs.Recorder) (res *Result, err error) {
	if s == nil {
		return nil, fmt.Errorf("backer: nil schedule")
	}
	if verr := s.Validate(); verr != nil {
		return nil, fmt.Errorf("backer: invalid schedule: %w", verr)
	}
	if inj != nil {
		if verr := inj.Validate(s); verr != nil {
			return nil, fmt.Errorf("backer: invalid injector: %w", verr)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("backer: internal error: %v", r)
		}
	}()
	c := s.Comp
	res = &Result{
		Schedule:     s,
		ReadObserved: make(map[dag.Node]dag.Node),
	}
	mem := newMemory(c.NumLocs(), s.P, &res.Stats)
	tr := trace.New(c).UniqueWrites()

	executed := make(map[dag.Node]bool)
	for _, u := range s.Order {
		p := s.Proc[u]
		if inj != nil && inj.CrashCacheAt(u, p, s.Start[u]) {
			mem.crash(p)
			obs.Emit(rec, obs.Event{Kind: obs.FaultInjected, Str: faultCrashCache,
				Src: int(u), Dst: -1, Worker: p, N: int64(s.Start[u])})
		}
		// Crossing edges: every predecessor on another processor forces
		// a reconcile of that processor's cache and a flush of ours.
		crossed := false
		for _, v := range c.Dag().Preds(u) {
			if !executed[v] {
				panic("backer: schedule order violates dependencies")
			}
			if s.Proc[v] != p {
				res.Stats.CrossEdges++
				switch {
				case inj != nil && inj.SkipReconcileAt(v, u):
					res.Stats.SkippedReconciles++
					obs.Emit(rec, obs.Event{Kind: obs.FaultInjected, Str: faultSkipReconcile,
						Src: int(v), Dst: int(u), Worker: s.Proc[v], N: int64(s.Start[u])})
				case inj != nil && inj.DelayReconcileAt(v, u):
					res.Stats.DelayedReconciles++
					obs.Emit(rec, obs.Event{Kind: obs.FaultInjected, Str: faultDelayReconcile,
						Src: int(v), Dst: int(u), Worker: s.Proc[v], N: int64(s.Start[u])})
					mem.reconcile(s.Proc[v], true)
				default:
					mem.reconcile(s.Proc[v], false)
				}
				crossed = true
			}
		}
		if crossed {
			if inj != nil && inj.SkipFlushAt(u) {
				res.Stats.SkippedFlushes++
				obs.Emit(rec, obs.Event{Kind: obs.FaultInjected, Str: faultSkipFlush,
					Src: -1, Dst: int(u), Worker: p, N: int64(s.Start[u])})
			} else {
				mem.flush(p)
			}
		}

		op := c.Op(u)
		switch op.Kind {
		case computation.Read:
			w := mem.read(p, op.Loc)
			res.ReadObserved[u] = w
			var v trace.Value
			if w == observer.Bottom {
				v = trace.Undefined
			} else {
				v = tr.WriteVal[w]
			}
			if inj != nil {
				if cv, corrupted := inj.CorruptReadAt(u, v); corrupted {
					res.Stats.CorruptedReads++
					obs.Emit(rec, obs.Event{Kind: obs.FaultInjected, Str: faultCorruptRead,
						Src: int(u), Dst: -1, Worker: p, N: int64(s.Start[u])})
					v = cv
				}
			}
			tr.ReadVal[u] = v
		case computation.Write:
			mem.write(p, op.Loc, u)
		}
		executed[u] = true
		mem.drainPending()
	}
	res.Trace = tr
	return res, nil
}

// RunWorkStealing is a convenience wrapper: schedule the computation
// with randomized work stealing on P processors and run BACKER over it.
// Invalid simulation parameters (P < 1, nil rng) surface as errors.
func RunWorkStealing(c *computation.Computation, P int, rng *rand.Rand, inj Injector) (*Result, error) {
	s, err := sched.WorkStealing(c, P, nil, rng)
	if err != nil {
		return nil, err
	}
	return Run(s, inj)
}

// Package backer simulates the BACKER coherence algorithm of Blumofe et
// al. [BFJ+96a/b] — the algorithm used by Cilk's distributed shared
// memory — on the simulated multiprocessor of internal/sched.
//
// BACKER keeps one backing store ("main memory") plus a cache per
// processor. Caches hold possibly incoherent copies of locations; three
// primitive operations maintain dag consistency:
//
//   - fetch: copy a location from main memory into the cache;
//   - reconcile: write a dirty cached value back to main memory;
//   - flush: reconcile, then drop every cached line.
//
// Whenever a dependency edge crosses processors (in Cilk: at steals and
// syncs), the source processor's cache is reconciled before the edge
// and the target processor's cache is flushed after it. Luchangco
// [Luc97] proves the resulting memory is location consistent, which
// makes the analysis and experiments of [BFJ+96a/b] carry over to LC
// (Section 7 of the paper). The tests and benches machine-check the LC
// claim with the post-mortem checker, and the fault-injection mode
// shows the checker catching real coherence bugs.
package backer

import (
	"fmt"
	"math/rand"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Faults configures deliberate protocol violations for the
// fault-injection experiments. Probabilities are per opportunity.
type Faults struct {
	SkipReconcile float64 // chance to skip a reconcile before a crossing edge
	SkipFlush     float64 // chance to skip the flush after a crossing edge
	Rng           *rand.Rand
}

func (f *Faults) skip(p float64) bool {
	return f != nil && f.Rng != nil && p > 0 && f.Rng.Float64() < p
}

// Stats counts protocol events.
type Stats struct {
	Fetches    int
	Hits       int
	Reconciles int // whole-cache reconciles triggered by crossing edges
	Flushes    int
	Writes     int
	CrossEdges int
}

// Result is one simulated BACKER execution: the trace it produced (with
// unique write values), the partial observer recording which write each
// read saw, and protocol statistics.
type Result struct {
	Schedule *sched.Schedule
	Trace    *trace.Trace
	// ReadObserved[u] is the write node each read u observed (Bottom if
	// it read uninitialized memory); dag.None... Bottom doubles as the
	// "no write" value, matching the observer convention.
	ReadObserved map[dag.Node]dag.Node
	Stats        Stats
}

type line struct {
	writer dag.Node // the write whose value this copy holds; Bottom = initial
	dirty  bool
}

type memory struct {
	main   []dag.Node // per location: writer whose value main holds
	caches []map[computation.Loc]line
	stats  *Stats
}

func newMemory(numLocs, P int, stats *Stats) *memory {
	m := &memory{
		main:   make([]dag.Node, numLocs),
		caches: make([]map[computation.Loc]line, P),
		stats:  stats,
	}
	for l := range m.main {
		m.main[l] = observer.Bottom
	}
	for p := range m.caches {
		m.caches[p] = make(map[computation.Loc]line)
	}
	return m
}

// reconcile writes every dirty line of processor p back to main memory
// and marks the lines clean.
func (m *memory) reconcile(p int) {
	m.stats.Reconciles++
	for l, ln := range m.caches[p] {
		if ln.dirty {
			m.main[l] = ln.writer
			m.caches[p][l] = line{writer: ln.writer}
		}
	}
}

// flush reconciles and then empties processor p's cache.
func (m *memory) flush(p int) {
	m.stats.Flushes++
	for l, ln := range m.caches[p] {
		if ln.dirty {
			m.main[l] = ln.writer
		}
		delete(m.caches[p], l)
	}
}

// read returns the write observed by a read of location l on processor
// p, fetching from main memory on a miss.
func (m *memory) read(p int, l computation.Loc) dag.Node {
	if ln, ok := m.caches[p][l]; ok {
		m.stats.Hits++
		return ln.writer
	}
	m.stats.Fetches++
	w := m.main[l]
	m.caches[p][l] = line{writer: w}
	return w
}

// write installs node u's write to location l in processor p's cache.
func (m *memory) write(p int, l computation.Loc, u dag.Node) {
	m.stats.Writes++
	m.caches[p][l] = line{writer: u, dirty: true}
}

// Run executes the computation according to the schedule under the
// BACKER protocol and returns the produced trace. faults may be nil.
//
// Schedules come from outside the package (simulators, files, tests),
// so an invalid one is an input error, not an invariant violation: Run
// validates up front and returns the problem as an error. A panic
// escaping the protocol body (an internal bug) is converted to an
// error at this boundary too, so callers feeding hostile inputs get a
// diagnosis instead of a crash.
func Run(s *sched.Schedule, faults *Faults) (res *Result, err error) {
	if s == nil {
		return nil, fmt.Errorf("backer: nil schedule")
	}
	if verr := s.Validate(); verr != nil {
		return nil, fmt.Errorf("backer: invalid schedule: %w", verr)
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("backer: internal error: %v", r)
		}
	}()
	c := s.Comp
	res = &Result{
		Schedule:     s,
		ReadObserved: make(map[dag.Node]dag.Node),
	}
	mem := newMemory(c.NumLocs(), s.P, &res.Stats)
	tr := trace.New(c).UniqueWrites()

	executed := make(map[dag.Node]bool)
	for _, u := range s.Order {
		p := s.Proc[u]
		// Crossing edges: every predecessor on another processor forces
		// a reconcile of that processor's cache and a flush of ours.
		crossed := false
		for _, v := range c.Dag().Preds(u) {
			if !executed[v] {
				panic("backer: schedule order violates dependencies")
			}
			if s.Proc[v] != p {
				res.Stats.CrossEdges++
				if !faults.skip(faultProb(faults, true)) {
					mem.reconcile(s.Proc[v])
				}
				crossed = true
			}
		}
		if crossed && !faults.skip(faultProb(faults, false)) {
			mem.flush(p)
		}

		op := c.Op(u)
		switch op.Kind {
		case computation.Read:
			w := mem.read(p, op.Loc)
			res.ReadObserved[u] = w
			if w == observer.Bottom {
				tr.ReadVal[u] = trace.Undefined
			} else {
				tr.ReadVal[u] = tr.WriteVal[w]
			}
		case computation.Write:
			mem.write(p, op.Loc, u)
		}
		executed[u] = true
	}
	res.Trace = tr
	return res, nil
}

func faultProb(f *Faults, reconcile bool) float64 {
	if f == nil {
		return 0
	}
	if reconcile {
		return f.SkipReconcile
	}
	return f.SkipFlush
}

// RunWorkStealing is a convenience wrapper: schedule the computation
// with randomized work stealing on P processors and run BACKER over it.
// Invalid simulation parameters (P < 1, nil rng) surface as errors.
func RunWorkStealing(c *computation.Computation, P int, rng *rand.Rand, faults *Faults) (*Result, error) {
	s, err := sched.WorkStealing(c, P, nil, rng)
	if err != nil {
		return nil, err
	}
	return Run(s, faults)
}

package backer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// randomMemComputation builds a random computation with a healthy mix
// of reads and writes for coherence testing.
func randomMemComputation(rng *rand.Rand, n, locs int) *computation.Computation {
	g := dag.Random(rng, n, 0.25)
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		switch rng.Intn(4) {
		case 0:
			ops[i] = computation.W(l)
		case 1:
			ops[i] = computation.N
		default:
			ops[i] = computation.R(l)
		}
	}
	return computation.MustFrom(g, ops, locs)
}

func TestSingleProcessorIsSequential(t *testing.T) {
	// On one processor BACKER behaves like an ordinary memory: every
	// read sees the latest preceding write in execution order.
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	r1 := c.AddNode(computation.R(0))
	w2 := c.AddNode(computation.W(0))
	r2 := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r1)
	c.MustAddEdge(r1, w2)
	c.MustAddEdge(w2, r2)
	s, err := sched.ListSchedule(c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadObserved[r1] != w1 || res.ReadObserved[r2] != w2 {
		t.Fatalf("observed %v", res.ReadObserved)
	}
	if res.Stats.CrossEdges != 0 || res.Stats.Flushes != 0 {
		t.Fatalf("sequential run should not cross or flush: %+v", res.Stats)
	}
	if !checker.VerifySC(res.Trace).OK {
		t.Fatal("sequential BACKER trace must even be SC")
	}
}

func TestUninitializedReadObservesBottom(t *testing.T) {
	c := computation.New(1)
	r := c.AddNode(computation.R(0))
	s, err := sched.ListSchedule(c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadObserved[r] != observer.Bottom {
		t.Fatal("read of fresh memory must observe ⊥")
	}
	if res.Trace.ReadVal[r] != trace.Undefined {
		t.Fatal("trace value must be Undefined")
	}
}

func TestCrossingEdgeMakesWriteVisible(t *testing.T) {
	// Writer on one branch, reader after a crossing edge: the reconcile
	// + flush must deliver the write.
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w, r)
	// Force the two nodes onto different processors via a hand-built
	// schedule.
	s := &sched.Schedule{
		Comp:     c,
		P:        2,
		Proc:     []int{0, 1},
		Start:    []sched.Tick{0, 1},
		Finish:   []sched.Tick{1, 2},
		Order:    []dag.Node{w, r},
		Makespan: 2,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadObserved[r] != w {
		t.Fatalf("read observed %v, want the write", res.ReadObserved[r])
	}
	if res.Stats.CrossEdges != 1 || res.Stats.Reconciles != 1 || res.Stats.Flushes != 1 {
		t.Fatalf("protocol stats: %+v", res.Stats)
	}
}

func TestFaultInjectionLosesWrite(t *testing.T) {
	// Same crossing pattern, but the protocol skips everything: the
	// reader misses in its (unflushed but empty) cache... make it
	// non-trivial: reader has a stale cached copy from before.
	c := computation.New(1)
	r0 := c.AddNode(computation.R(0)) // reader proc caches ⊥
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(r0, r)
	c.MustAddEdge(w, r)
	s := &sched.Schedule{
		Comp:     c,
		P:        2,
		Proc:     []int{1, 0, 1},
		Start:    []sched.Tick{0, 0, 2},
		Finish:   []sched.Tick{1, 1, 3},
		Order:    []dag.Node{r0, w, r},
		Makespan: 3,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Healthy protocol: r sees w.
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadObserved[r] != w {
		t.Fatalf("healthy run observed %v", res.ReadObserved[r])
	}
	if !checker.VerifyLC(res.Trace).OK {
		t.Fatal("healthy trace must be LC")
	}
	// Broken protocol (flush skipped): r reads its stale ⊥ copy, which
	// violates LC because the write precedes the read.
	faults := &Faults{SkipFlush: 1.0, Rng: rand.New(rand.NewSource(1))}
	bad, err := Run(s, faults)
	if err != nil {
		t.Fatal(err)
	}
	if bad.ReadObserved[r] != observer.Bottom {
		t.Fatalf("faulty run observed %v, want stale ⊥", bad.ReadObserved[r])
	}
	if checker.VerifyLC(bad.Trace).OK {
		t.Fatal("checker must catch the lost write")
	}
}

// E8: BACKER maintains location consistency ([Luc97]) — every trace
// from random computations under random work-stealing schedules
// verifies under LC.
func TestBackerMaintainsLC(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		c := randomMemComputation(rng, 2+rng.Intn(18), 1+rng.Intn(2))
		P := 1 + rng.Intn(4)
		res, err := RunWorkStealing(c, P, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatal(err)
		}
		if v := checker.VerifyLC(res.Trace); !v.OK {
			t.Fatalf("BACKER violated LC on %v (P=%d, schedule %v)", c, P, res.Schedule.Order)
		}
	}
}

// BACKER is weaker than SC: running the Dekker computation with one
// branch per processor produces the classic both-reads-⊥ outcome, which
// is location consistent but not sequentially consistent.
func TestBackerNotSC(t *testing.T) {
	c := computation.New(2)
	w1 := c.AddNode(computation.W(0))
	r1 := c.AddNode(computation.R(1))
	w2 := c.AddNode(computation.W(1))
	r2 := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r1)
	c.MustAddEdge(w2, r2)
	s := &sched.Schedule{
		Comp:     c,
		P:        2,
		Proc:     []int{0, 0, 1, 1},
		Start:    []sched.Tick{0, 1, 0, 1},
		Finish:   []sched.Tick{1, 2, 1, 2},
		Order:    []dag.Node{w1, w2, r1, r2},
		Makespan: 2,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Neither write was reconciled (no crossing edges), so both reads
	// miss and observe ⊥.
	if res.ReadObserved[r1] != observer.Bottom || res.ReadObserved[r2] != observer.Bottom {
		t.Fatalf("observed %v, want both ⊥", res.ReadObserved)
	}
	if checker.VerifySC(res.Trace).OK {
		t.Fatal("Dekker BACKER trace must not be SC")
	}
	if !checker.VerifyLC(res.Trace).OK {
		t.Fatal("Dekker BACKER trace must be LC")
	}
}

// Property: with aggressive fault injection the checker flags at least
// some executions, and healthy runs always pass — i.e. the checker's
// verdict tracks protocol health.
func TestQuickFaultsAreDetectable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomMemComputation(rng, 14, 1)
		s, err := sched.WorkStealing(c, 3, nil, rng)
		if err != nil {
			return false
		}
		res, err := Run(s, nil)
		if err != nil {
			return false
		}
		if !checker.VerifyLC(res.Trace).OK {
			return false // healthy run must always verify
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}

	// Aggregate detection rate under faults: must be nonzero.
	rng := rand.New(rand.NewSource(123))
	detected := 0
	for trial := 0; trial < 150; trial++ {
		c := randomMemComputation(rng, 14, 1)
		s, err := sched.WorkStealing(c, 3, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		faults := &Faults{SkipFlush: 0.8, SkipReconcile: 0.8, Rng: rng}
		res, err := Run(s, faults)
		if err != nil {
			t.Fatal(err)
		}
		if !checker.VerifyLC(res.Trace).OK {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("fault injection never produced a detectable violation")
	}
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	c := computation.New(1)
	c.AddNode(computation.W(0))
	bad := &sched.Schedule{Comp: c, P: 1}
	if res, err := Run(bad, nil); err == nil || res != nil {
		t.Fatalf("invalid schedule accepted (res %v, err %v)", res, err)
	}
	if res, err := Run(nil, nil); err == nil || res != nil {
		t.Fatalf("nil schedule accepted (res %v, err %v)", res, err)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randomMemComputation(rng, 20, 2)
	res, err := RunWorkStealing(c, 4, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for u := 0; u < c.NumNodes(); u++ {
		switch c.Op(dag.Node(u)).Kind {
		case computation.Read:
			reads++
		case computation.Write:
			writes++
		}
	}
	if res.Stats.Hits+res.Stats.Fetches != reads {
		t.Fatalf("hits %d + fetches %d != reads %d", res.Stats.Hits, res.Stats.Fetches, reads)
	}
	if res.Stats.Writes != writes {
		t.Fatalf("writes %d != %d", res.Stats.Writes, writes)
	}
	if len(res.ReadObserved) != reads {
		t.Fatalf("observed %d of %d reads", len(res.ReadObserved), reads)
	}
}

package backer

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/trace"
)

// recordingInjector answers "no fault" at every decision point and
// records the protocol actions it was consulted about — the observation
// half of the Injector contract.
type recordingInjector struct {
	reconciles [][2]dag.Node // crossing edges offered a reconcile
	flushes    []dag.Node    // crossed nodes offered a flush
}

func (r *recordingInjector) Validate(*sched.Schedule) error { return nil }

func (r *recordingInjector) SkipReconcileAt(src, dst dag.Node) bool {
	r.reconciles = append(r.reconciles, [2]dag.Node{src, dst})
	return false
}

func (r *recordingInjector) DelayReconcileAt(src, dst dag.Node) bool { return false }

func (r *recordingInjector) SkipFlushAt(dst dag.Node) bool {
	r.flushes = append(r.flushes, dst)
	return false
}

func (r *recordingInjector) CrashCacheAt(dag.Node, int, sched.Tick) bool { return false }

func (r *recordingInjector) CorruptReadAt(_ dag.Node, v trace.Value) (trace.Value, bool) {
	return v, false
}

// TestHealthyRunCoversEveryCrossingEdge is the protocol-coverage
// property: in a fault-free work-stealing run, every crossing edge gets
// a reconcile before it and every crossed node a flush after, exactly
// once each, and the resulting trace is location consistent. Swept over
// P ∈ {1, 2, 4, 8} with seeded randomness.
func TestHealthyRunCoversEveryCrossingEdge(t *testing.T) {
	for _, P := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(100 + P)))
		for trial := 0; trial < 25; trial++ {
			c := randomMemComputation(rng, 24, 2)
			rec := &recordingInjector{}
			res, err := RunWorkStealing(c, P, rng, rec)
			if err != nil {
				t.Fatalf("P=%d trial %d: %v", P, trial, err)
			}
			s := res.Schedule

			// The crossing edges of the schedule BACKER actually ran.
			wantEdges := make(map[[2]dag.Node]int)
			wantFlushes := make(map[dag.Node]int)
			for _, u := range s.Order {
				crossed := false
				for _, v := range c.Dag().Preds(u) {
					if s.Proc[v] != s.Proc[u] {
						wantEdges[[2]dag.Node{v, u}]++
						crossed = true
					}
				}
				if crossed {
					wantFlushes[u]++
				}
			}

			gotEdges := make(map[[2]dag.Node]int)
			for _, e := range rec.reconciles {
				gotEdges[e]++
			}
			gotFlushes := make(map[dag.Node]int)
			for _, u := range rec.flushes {
				gotFlushes[u]++
			}
			if len(gotEdges) != len(wantEdges) {
				t.Fatalf("P=%d trial %d: reconciled %d distinct crossing edges, schedule has %d",
					P, trial, len(gotEdges), len(wantEdges))
			}
			for e, n := range wantEdges {
				if gotEdges[e] != n {
					t.Fatalf("P=%d trial %d: edge %v->%v reconciled %d times, want %d",
						P, trial, e[0], e[1], gotEdges[e], n)
				}
			}
			for u, n := range wantFlushes {
				if gotFlushes[u] != n {
					t.Fatalf("P=%d trial %d: node %v flushed %d times, want %d",
						P, trial, u, gotFlushes[u], n)
				}
			}
			if len(gotFlushes) != len(wantFlushes) {
				t.Fatalf("P=%d trial %d: flushed %d distinct nodes, want %d",
					P, trial, len(gotFlushes), len(wantFlushes))
			}
			if res.Stats.CrossEdges != len(rec.reconciles) {
				t.Fatalf("P=%d trial %d: Stats.CrossEdges=%d but %d reconcile decisions",
					P, trial, res.Stats.CrossEdges, len(rec.reconciles))
			}

			if v := checker.VerifyLC(res.Trace); !v.OK {
				t.Fatalf("P=%d trial %d: healthy BACKER run violates LC", P, trial)
			}
		}
	}
}

// TestFaultsValidateRejectsSilentNoOp pins the fix for the old footgun:
// nonzero probabilities with a nil Rng used to silently disable all
// faults; now the run refuses to start.
func TestFaultsValidateRejectsSilentNoOp(t *testing.T) {
	c := randomMemComputation(rand.New(rand.NewSource(1)), 12, 2)
	s, err := sched.ListSchedule(c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, &Faults{SkipReconcile: 0.5}); err == nil {
		t.Fatal("Run accepted Faults with nonzero probability and nil Rng")
	}
	if _, err := Run(s, &Faults{SkipFlush: 1.5, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("Run accepted fault probability outside [0, 1]")
	}
	// The valid configurations still run.
	if _, err := Run(s, &Faults{}); err != nil {
		t.Fatalf("zero-probability Faults rejected: %v", err)
	}
	var typedNil *Faults
	if _, err := Run(s, typedNil); err != nil {
		t.Fatalf("typed-nil *Faults rejected: %v", err)
	}
}

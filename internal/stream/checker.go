package stream

import (
	"context"
	"fmt"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/search"
	"repro/internal/trace"
)

// This file implements the incremental checker: the online analogue of
// internal/checker. It ingests one event at a time, maintains per-
// location constraint state, and raises a violation at the first event
// where one becomes *observable* — provable for every possible
// completion of the stream, not merely for the prefix seen so far.
//
// # Why prefix verdicts need care
//
// Running the post-mortem checker on a prefix and reporting its
// "VIOLATED" would be wrong: a read that matches no write yet may be
// explained by a concurrent write that simply has not arrived. We
// model that with *joker writes*: when deciding mid-stream, every
// defined-value read may alternatively be explained by a fresh,
// unordered write of its value (the completion can always contain
// one). A prefix that is infeasible even with jokers stays infeasible
// in every completion — the delivery protocol guarantees the ingested
// prefix is a downward-closed induced subgraph of the final
// computation, so completions only add nodes and edges *to* new
// nodes, never between existing ones.
//
// # The two stable-violation rules
//
// Fix a location l. Call a node an l-anchor if it is a write to l or a
// defined-value read of l (either forces some write to l before it in
// any explaining serialization, joker or real). A ⊥-read of l must
// precede *every* write to l, hence every l-anchor.
//
// Taint rule (LC and SC, checked per event in O(locations/64) words):
// if an l-anchor precedes a ⊥-read of l in the dag itself, even the
// per-location serializations of location consistency are impossible,
// jokers included. Conversely a prefix with no tainted ⊥-read is
// always LC-explainable in some completion (serialize each location
// ⊥-reads-first, give each defined read a joker), so taint is the
// complete characterization of stable LC violations.
//
// Cycle rule (SC, checked on a cadence): SC needs one global
// serialization, so the per-location "⊥-reads before anchors"
// obligations can interlock across locations even when no single
// location is tainted. Encode each obligation with a virtual node B_l
// (⊥-read of l → B_l → every l-anchor) on top of the real dag; a
// serialization satisfying every obligation exists iff the augmented
// graph is acyclic, which Kahn's algorithm decides in linear time. A
// cycle is a stable SC violation (and only SC: the witness trace in
// the tests is LC-explainable).
//
// # End of stream
//
// The final verdict is computed by the same post-mortem code path
// (checker.VerifyLCCtx / VerifySCCtx) over the assembled trace, so it
// is byte-identical to offline verification of the completed trace.
// Models already online-violated short-circuit to a definitive
// VIOLATED without re-searching — sound by the rules above. If the
// ingest overran its buffer the checker saw only part of the trace:
// undecided models degrade to the typed INCONCLUSIVE(overrun), while
// violations found before the overrun remain definitive.

// Options tunes the incremental checker. The zero value is usable.
type Options struct {
	// CheckEvery is the cadence, in node events, of the cross-location
	// cycle check (the taint rule runs on every event regardless).
	// 0 means the default of 64; negative disables cadence checks
	// (CheckNow still works).
	CheckEvery int
	// MaxEvents caps ingested node events; past it the stream is
	// treated as overrun and further events are shed. 0 = unlimited.
	MaxEvents int64
}

// DefaultCheckEvery is the cycle-check cadence when Options leaves it 0.
const DefaultCheckEvery = 64

// Violation describes a stable mid-stream violation: the models it
// excludes hold in no completion of the stream seen so far.
type Violation struct {
	// Models lists the excluded models ("LC", "SC"); a taint violation
	// excludes both, a cycle violation only SC.
	Models []string `json:"models"`
	// Kind is "taint" or "cycle".
	Kind string `json:"kind"`
	// Event is the 1-based node-event index at which the violation
	// became observable.
	Event int64 `json:"event"`
	// Node names the offending ⊥-read (taint) or a representative node
	// on the cycle (cycle).
	Node string `json:"node"`
	// Loc names the location of a taint violation ("" for cycles,
	// which span locations).
	Loc string `json:"loc,omitempty"`
	// Msg is a human-readable account.
	Msg string `json:"msg"`
}

// Stats is a snapshot of the checker's gauges, exported to /statsz and
// the -report JSON.
type Stats struct {
	// Events is the number of node events ingested (locs/end excluded).
	Events int64 `json:"events"`
	// Shed counts node events dropped after an overrun.
	Shed int64 `json:"shed"`
	// Nodes and Locs size the assembled computation.
	Nodes int `json:"nodes"`
	Locs  int `json:"locs"`
	// Frontier is the number of live ordering obligations: for each
	// location that has both ⊥-reads and anchors, their sum. It is the
	// size of the constraint structure the cycle check walks.
	Frontier int `json:"frontier"`
	// CheckpointAge is the number of node events since the last cycle
	// check (or since the start if none has run).
	CheckpointAge int64 `json:"checkpoint_age"`
	// Violations counts stable violations found so far.
	Violations int `json:"violations"`
	// Ended and Overrun report terminal stream state.
	Ended   bool `json:"ended"`
	Overrun bool `json:"overrun"`
}

// Final is the end-of-stream outcome for both serialization models.
type Final struct {
	LC, SC           search.Verdict
	LCStats, SCStats search.Stats
	// LCResult/SCResult carry witness observers for explainable
	// verdicts (from the post-mortem pass; short-circuited violations
	// have none).
	LCResult, SCResult checker.Result
}

// Checker is the incremental verifier. Not safe for concurrent use;
// the streaming endpoint drives it from a single consumer goroutine.
type Checker struct {
	opts  Options
	named *computation.Named

	writeVal []trace.Value
	readVal  []trace.Value

	// full[u] is a bitset over locations: bit l set iff some l-anchor
	// is u or an ancestor of u. The taint check for a new ⊥-read of l
	// is one bit test on the OR of its predecessors' masks.
	full  [][]uint64
	words int

	// anchors[l] / bottoms[l] list the l-anchors and ⊥-reads of l, in
	// arrival order: the edge lists of the virtual node B_l.
	anchors [][]dag.Node
	bottoms [][]dag.Node

	events     int64
	shed       int64
	sinceCheck int64
	ended      bool
	overrun    bool

	violations []Violation
	lcViolated bool
	scViolated bool

	scratch []uint64
}

// New returns an empty incremental checker.
func New(opts Options) *Checker {
	if opts.CheckEvery == 0 {
		opts.CheckEvery = DefaultCheckEvery
	}
	return &Checker{opts: opts}
}

// Ingest consumes one event. It returns the violation the event made
// observable, if any (also retained in Violations), or a protocol
// error, which is fatal to the stream: the checker's state is no
// longer extended and the caller should fail the connection.
func (c *Checker) Ingest(ev Event) (*Violation, error) {
	if c.ended {
		return nil, fmt.Errorf("stream: event after end")
	}
	switch ev.Ev {
	case EvLocs:
		if c.named != nil {
			return nil, fmt.Errorf("stream: locs event must be first and unique")
		}
		for i, a := range ev.Locs {
			for _, b := range ev.Locs[i+1:] {
				if a == b {
					return nil, fmt.Errorf("stream: duplicate location %q", a)
				}
			}
		}
		c.init(ev.Locs)
		return nil, nil
	case EvEnd:
		// Flush the cadence: a cycle that became observable since the
		// last cadenced check is still an online violation — report it
		// on the end event rather than leaving it to the end-of-stream
		// search to rediscover.
		v := c.CheckNow()
		c.ended = true
		return v, nil
	case EvNode:
		if c.named == nil {
			c.init(nil)
		}
		return c.ingestNode(ev)
	default:
		return nil, fmt.Errorf("stream: unknown event kind %q", ev.Ev)
	}
}

func (c *Checker) init(locs []string) {
	c.named = computation.NewNamed(locs...)
	n := len(locs)
	c.words = (n + 63) / 64
	c.anchors = make([][]dag.Node, n)
	c.bottoms = make([][]dag.Node, n)
	c.scratch = make([]uint64, c.words)
}

func (c *Checker) ingestNode(ev Event) (*Violation, error) {
	if c.overrun {
		c.shed++
		return nil, nil
	}
	if c.opts.MaxEvents > 0 && c.events >= c.opts.MaxEvents {
		c.overrun = true
		c.shed++
		return nil, nil
	}
	if _, dup := c.named.NodeID[ev.Name]; dup {
		return nil, fmt.Errorf("stream: duplicate node %q", ev.Name)
	}
	op, err := parseOp(ev.Op, c.named.LocID)
	if err != nil {
		return nil, err
	}
	switch op.Kind {
	case computation.Write:
		if ev.Val == nil {
			return nil, fmt.Errorf("stream: write node %q without a value", ev.Name)
		}
		if ev.Bottom {
			return nil, fmt.Errorf("stream: write node %q cannot be bottom", ev.Name)
		}
	case computation.Read:
		if ev.Val == nil && !ev.Bottom {
			return nil, fmt.Errorf("stream: read node %q needs val or bottom", ev.Name)
		}
	default:
		if ev.Val != nil || ev.Bottom {
			return nil, fmt.Errorf("stream: no-op node %q cannot carry a value", ev.Name)
		}
	}
	preds := make([]dag.Node, 0, len(ev.Pred))
	for _, p := range ev.Pred {
		pu, ok := c.named.NodeID[p]
		if !ok {
			return nil, fmt.Errorf("stream: node %q depends on undelivered node %q", ev.Name, p)
		}
		preds = append(preds, pu)
	}

	u := c.named.AddNode(ev.Name, op)
	for _, p := range preds {
		c.named.Comp.MustAddEdge(p, u)
	}
	var wv, rv trace.Value
	switch op.Kind {
	case computation.Write:
		wv = trace.Value(*ev.Val)
	case computation.Read:
		if ev.Bottom {
			rv = trace.Undefined
		} else {
			rv = trace.Value(*ev.Val)
		}
	}
	c.writeVal = append(c.writeVal, wv)
	c.readVal = append(c.readVal, rv)
	c.events++
	c.sinceCheck++

	// Anchored-ancestry mask: OR of the predecessors' masks, then the
	// node's own anchor contribution. Computed before the taint test so
	// scratch holds exactly the *proper*-ancestor anchors.
	mask := c.scratch
	for i := range mask {
		mask[i] = 0
	}
	for _, p := range preds {
		pm := c.full[p]
		for i := range mask {
			mask[i] |= pm[i]
		}
	}

	var v *Violation
	l := op.Loc
	isBottomRead := op.Kind == computation.Read && rv == trace.Undefined
	if isBottomRead && mask[l>>6]&(1<<(uint(l)&63)) != 0 {
		v = &Violation{
			Models: []string{"LC", "SC"},
			Kind:   "taint",
			Event:  c.events,
			Node:   ev.Name,
			Loc:    c.named.LocName[l],
			Msg: fmt.Sprintf("read %s of %s observed no write, but a write or defined read of %s precedes it: no serialization of %s can explain any completion",
				ev.Name, c.named.LocName[l], c.named.LocName[l], c.named.LocName[l]),
		}
		c.record(v)
	}

	own := append([]uint64(nil), mask...)
	if op.Kind == computation.Write || (op.Kind == computation.Read && !isBottomRead) {
		own[l>>6] |= 1 << (uint(l) & 63)
		c.anchors[l] = append(c.anchors[l], u)
	}
	if isBottomRead {
		c.bottoms[l] = append(c.bottoms[l], u)
	}
	c.full = append(c.full, own)

	if v == nil && c.opts.CheckEvery > 0 && c.sinceCheck >= int64(c.opts.CheckEvery) {
		v = c.CheckNow()
	}
	return v, nil
}

func (c *Checker) record(v *Violation) {
	c.violations = append(c.violations, *v)
	c.applyFlags(*v)
}

func (c *Checker) applyFlags(v Violation) {
	for _, m := range v.Models {
		switch m {
		case "LC":
			c.lcViolated = true
		case "SC":
			c.scViolated = true
		}
	}
}

// CheckNow runs the cross-location cycle check immediately and returns
// the violation it finds, if any. Idempotent once SC is violated.
func (c *Checker) CheckNow() *Violation {
	c.sinceCheck = 0
	if c.scViolated || c.named == nil {
		return nil
	}
	n := c.named.Comp.NumNodes()
	numLocs := len(c.named.LocName)
	// B_l participates only when both edge sides are non-empty;
	// otherwise it cannot lie on a cycle.
	active := make([]bool, numLocs)
	extra := 0
	for l := 0; l < numLocs; l++ {
		if len(c.bottoms[l]) > 0 && len(c.anchors[l]) > 0 {
			active[l] = true
			extra++
		}
	}
	if extra == 0 {
		return nil
	}
	// Kahn over real nodes plus one virtual node per active location.
	total := n + numLocs
	indeg := make([]int32, total)
	d := c.named.Comp.Dag()
	for u := 0; u < n; u++ {
		indeg[u] = int32(d.InDegree(dag.Node(u)))
	}
	for l := 0; l < numLocs; l++ {
		if !active[l] {
			continue
		}
		indeg[n+l] = int32(len(c.bottoms[l]))
		for _, a := range c.anchors[l] {
			indeg[a]++
		}
	}
	queue := make([]int, 0, total)
	for u := 0; u < total; u++ {
		if u >= n && !active[u-n] {
			continue
		}
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	processed := 0
	relax := func(v int) {
		indeg[v]--
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		if u < n {
			for _, s := range d.Succs(dag.Node(u)) {
				relax(int(s))
			}
			op := c.named.Comp.Op(dag.Node(u))
			if op.Kind == computation.Read && c.readVal[u] == trace.Undefined && active[op.Loc] {
				relax(n + int(op.Loc))
			}
		} else {
			for _, a := range c.anchors[u-n] {
				relax(int(a))
			}
		}
	}
	if processed == n+extra {
		return nil
	}
	// Cycle: every unprocessed real node reaches one; name the first.
	rep := ""
	for u := 0; u < n; u++ {
		if indeg[u] > 0 {
			rep = c.named.NodeName[u]
			break
		}
	}
	v := &Violation{
		Models: []string{"SC"},
		Kind:   "cycle",
		Event:  c.events,
		Node:   rep,
		Msg: fmt.Sprintf("the \"no-write-yet reads precede writes\" obligations interlock across locations (cycle through %s): no single serialization can explain any completion",
			rep),
	}
	c.record(v)
	return v
}

// MarkOverrun applies the overflow policy: the ingest outran its
// buffer, so subsequent events are shed and undecided models will
// finish INCONCLUSIVE(overrun).
func (c *Checker) MarkOverrun() { c.overrun = true }

// AddShed folds ring-level shed counts into the checker's gauge.
func (c *Checker) AddShed(n int64) { c.shed += n }

// Ended reports whether the end event has been ingested.
func (c *Checker) Ended() bool { return c.ended }

// Overrun reports whether the overflow policy has triggered.
func (c *Checker) Overrun() bool { return c.overrun }

// Violations returns the stable violations found so far, in order.
func (c *Checker) Violations() []Violation { return c.violations }

// Stats snapshots the checker's gauges.
func (c *Checker) Stats() Stats {
	s := Stats{
		Events:        c.events,
		Shed:          c.shed,
		CheckpointAge: c.sinceCheck,
		Violations:    len(c.violations),
		Ended:         c.ended,
		Overrun:       c.overrun,
	}
	if c.named != nil {
		s.Nodes = c.named.Comp.NumNodes()
		s.Locs = len(c.named.LocName)
		for l := range c.anchors {
			if len(c.bottoms[l]) > 0 && len(c.anchors[l]) > 0 {
				s.Frontier += len(c.bottoms[l]) + len(c.anchors[l])
			}
		}
	}
	return s
}

// Trace assembles the ingested prefix as a named trace. The returned
// structures share state with the checker; callers must not mutate
// them while ingestion continues.
func (c *Checker) Trace() *trace.NamedTrace {
	if c.named == nil {
		c.init(nil)
	}
	return &trace.NamedTrace{
		Named: c.named,
		Trace: &trace.Trace{Comp: c.named.Comp, WriteVal: c.writeVal, ReadVal: c.readVal},
	}
}

// Finish computes the end-of-stream verdicts. For models not already
// online-violated it runs the post-mortem checker over the assembled
// trace — the same code path as offline verification, so the verdict
// (and witness) is byte-identical to checker.VerifyLC/SC on the
// completed trace. Online-violated models short-circuit to a
// definitive VIOLATED; an overrun degrades undecided models to
// INCONCLUSIVE(overrun).
func (c *Checker) Finish(ctx context.Context, opts checker.SearchOptions) Final {
	var f Final
	nt := c.Trace()
	decideLC := func() {
		switch {
		case c.lcViolated:
			f.LC = search.VerdictOut()
		case c.overrun:
			f.LC = search.VerdictInconclusive(search.StopOverrun)
		default:
			f.LCResult, f.LC, f.LCStats = checker.VerifyLCCtx(ctx, nt.Trace, opts)
		}
	}
	decideSC := func() {
		switch {
		case c.scViolated:
			f.SC = search.VerdictOut()
		case c.overrun:
			f.SC = search.VerdictInconclusive(search.StopOverrun)
		default:
			f.SCResult, f.SC, f.SCStats = checker.VerifySCCtx(ctx, nt.Trace, opts)
		}
	}
	decideLC()
	decideSC()
	return f
}

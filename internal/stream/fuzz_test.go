package stream

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checker"
	"repro/internal/trace"
)

// FuzzStreamDifferential feeds random delivery orderings of
// fuzzer-mutated traces through the incremental checker and the
// post-mortem checker and requires: identical final verdict text for
// both models, and soundness of every mid-stream violation (the
// post-mortem verdict for a flagged model is VIOLATED — a violation is
// never reported later than end-of-trace by construction, and never
// wrongly before it by this check). Seeds are the whole trace corpus;
// CI runs this as a fuzz smoke (see ci.yml).
func FuzzStreamDifferential(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.trace"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b, int64(1))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		nt, err := trace.ParseTraceString(string(data))
		if err != nil {
			t.Skip()
		}
		if nt.Named.Comp.NumNodes() > 24 {
			t.Skip() // keep the post-mortem oracle cheap
		}
		ctx := context.Background()
		_, lcWant, _ := checker.VerifyLCCtx(ctx, nt.Trace, checker.SearchOptions{})
		_, scWant, _ := checker.VerifySCCtx(ctx, nt.Trace, checker.SearchOptions{})

		rng := rand.New(rand.NewSource(seed))
		order := randTopo(nt.Named.Comp.Dag(), rng)
		events, err := EventsFromTraceOrder(nt, order)
		if err != nil {
			t.Fatalf("corpus trace did not convert: %v", err)
		}
		c := New(Options{CheckEvery: 1})
		var online []Violation
		for _, ev := range events {
			v, err := c.Ingest(ev)
			if err != nil {
				t.Fatalf("ingest of converted event failed: %v", err)
			}
			if v != nil {
				online = append(online, *v)
			}
		}
		fin := c.Finish(ctx, checker.SearchOptions{})
		if got, want := checker.VerdictText(fin.LC), checker.VerdictText(lcWant); got != want {
			t.Fatalf("LC: stream %q, post-mortem %q", got, want)
		}
		if got, want := checker.VerdictText(fin.SC), checker.VerdictText(scWant); got != want {
			t.Fatalf("SC: stream %q, post-mortem %q", got, want)
		}
		for _, v := range online {
			for _, m := range v.Models {
				if m == "LC" && !lcWant.Out() {
					t.Fatalf("unsound online LC violation %+v (post-mortem %s)", v, lcWant)
				}
				if m == "SC" && !scWant.Out() {
					t.Fatalf("unsound online SC violation %+v (post-mortem %s)", v, scWant)
				}
			}
		}
	})
}

package stream

import (
	"runtime"
	"sync"
	"testing"
)

func namedEvent(i int) Event {
	return Event{Ev: EvNode, Name: string(rune('A' + i%26)), Op: "N"}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingFIFOAndOverflow(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		if !r.TryPush(namedEvent(i)) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
	}
	if r.TryPush(namedEvent(4)) {
		t.Fatal("push accepted on full ring")
	}
	if r.Shed() != 0 {
		t.Fatalf("shed = %d before any ShedOne", r.Shed())
	}
	r.ShedOne()
	if r.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", r.Shed())
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.TryPop()
		if !ok || ev.Name != namedEvent(i).Name {
			t.Fatalf("pop %d = %+v ok=%v", i, ev, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestRingCloseDrained(t *testing.T) {
	r := NewRing(2)
	r.TryPush(namedEvent(0))
	if r.Drained() {
		t.Fatal("drained before close")
	}
	r.Close()
	if !r.Closed() {
		t.Fatal("not closed after Close")
	}
	if r.Drained() {
		t.Fatal("drained while an event is buffered")
	}
	r.TryPop()
	if !r.Drained() {
		t.Fatal("not drained after close + empty")
	}
}

// TestRingConcurrentSPSC drives the ring from one producer and one
// consumer goroutine; under -race this exercises the publication
// ordering of the head/tail counters.
func TestRingConcurrentSPSC(t *testing.T) {
	const total = 10000
	r := NewRing(8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			v := int64(i)
			if r.TryPush(Event{Ev: EvNode, Val: &v}) {
				i++
			} else {
				runtime.Gosched()
			}
		}
		r.Close()
	}()
	got := 0
	for !r.Drained() {
		ev, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if *ev.Val != int64(got) {
			t.Fatalf("event %d carries value %d (reordered?)", got, *ev.Val)
		}
		got++
	}
	wg.Wait()
	if got != total {
		t.Fatalf("consumed %d of %d events", got, total)
	}
	if r.Shed() != 0 {
		t.Fatalf("shed %d events despite nobody calling ShedOne", r.Shed())
	}
}

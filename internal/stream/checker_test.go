package stream

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/dag"
	"repro/internal/trace"
)

func loadCorpus(t testing.TB) map[string]*trace.NamedTrace {
	t.Helper()
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.trace"))
	if len(paths) == 0 {
		t.Fatal("no trace corpus found")
	}
	out := make(map[string]*trace.NamedTrace, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := trace.ParseTraceString(string(b))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out[filepath.Base(p)] = nt
	}
	return out
}

// randTopo returns a random topological sort of d (Kahn with random
// tie-breaks), so the differential tests cover many delivery orders.
func randTopo(d *dag.Dag, rng *rand.Rand) []dag.Node {
	n := d.NumNodes()
	indeg := make([]int, n)
	var ready []dag.Node
	for u := 0; u < n; u++ {
		indeg[u] = d.InDegree(dag.Node(u))
		if indeg[u] == 0 {
			ready = append(ready, dag.Node(u))
		}
	}
	order := make([]dag.Node, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		u := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, u)
		for _, s := range d.Succs(u) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// stream feeds events into a fresh checker and returns it along with
// the violations surfaced during ingest (in order).
func streamEvents(t testing.TB, opts Options, events []Event) (*Checker, []Violation) {
	t.Helper()
	c := New(opts)
	var found []Violation
	for i, ev := range events {
		v, err := c.Ingest(ev)
		if err != nil {
			t.Fatalf("event %d (%+v): %v", i, ev, err)
		}
		if v != nil {
			found = append(found, *v)
		}
	}
	return c, found
}

// TestStreamDifferentialCorpus is the tentpole contract: for every
// corpus trace and several delivery orders, the streaming checker's
// final verdict text is byte-identical to the post-mortem checker on
// the completed trace, and any mid-stream violation is sound (the
// post-mortem verdict for that model is VIOLATED).
func TestStreamDifferentialCorpus(t *testing.T) {
	ctx := context.Background()
	for name, nt := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			_, lcWant, _ := checker.VerifyLCCtx(ctx, nt.Trace, checker.SearchOptions{})
			_, scWant, _ := checker.VerifySCCtx(ctx, nt.Trace, checker.SearchOptions{})

			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 8; trial++ {
				var order []dag.Node
				var err error
				if trial == 0 {
					order, err = nt.Named.Comp.Dag().TopoSort()
					if err != nil {
						t.Fatal(err)
					}
				} else {
					order = randTopo(nt.Named.Comp.Dag(), rng)
				}
				events, err := EventsFromTraceOrder(nt, order)
				if err != nil {
					t.Fatal(err)
				}
				// Cadence 1 makes the cycle check run after every event:
				// maximum opportunity for an unsound early verdict.
				c, online := streamEvents(t, Options{CheckEvery: 1}, events)
				if !c.Ended() {
					t.Fatal("stream did not end")
				}
				f := c.Finish(ctx, checker.SearchOptions{})
				if got, want := checker.VerdictText(f.LC), checker.VerdictText(lcWant); got != want {
					t.Fatalf("trial %d: LC %q, post-mortem %q", trial, got, want)
				}
				if got, want := checker.VerdictText(f.SC), checker.VerdictText(scWant); got != want {
					t.Fatalf("trial %d: SC %q, post-mortem %q", trial, got, want)
				}
				for _, v := range online {
					for _, m := range v.Models {
						if m == "LC" && !lcWant.Out() {
							t.Fatalf("trial %d: online LC violation %+v but post-mortem says %s", trial, v, lcWant)
						}
						if m == "SC" && !scWant.Out() {
							t.Fatalf("trial %d: online SC violation %+v but post-mortem says %s", trial, v, scWant)
						}
					}
				}
			}
		})
	}
}

// TestTaintInstant: the read-read coherence violation is observable
// the moment the second read arrives — two events before end-of-stream.
func TestTaintInstant(t *testing.T) {
	nt := loadCorpus(t)["corr_violation.trace"]
	events, err := EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{})
	var got *Violation
	var at int
	for i, ev := range events {
		v, err := c.Ingest(ev)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil && got == nil {
			got, at = v, i
		}
	}
	if got == nil {
		t.Fatal("no mid-stream violation on corr_violation")
	}
	if got.Kind != "taint" {
		t.Fatalf("kind = %q, want taint", got.Kind)
	}
	if len(got.Models) != 2 {
		t.Fatalf("models = %v, want LC and SC", got.Models)
	}
	if got.Node != "R2" || got.Loc != "x" {
		t.Fatalf("violation anchors %s/%s, want R2/x", got.Node, got.Loc)
	}
	// The violating read is the last node event, index len-2; the point
	// is that the verdict lands before the end event (index len-1).
	if at >= len(events)-1 {
		t.Fatalf("violation at event %d, not before end (%d events)", at, len(events))
	}
}

// TestMpStaleOnlyAtEnd: mid-stream, the message-passing trace is not
// violated — a completion with a concurrent flag write would explain
// it under SC — so the SC violation must appear only in the final
// post-mortem verdict. Guards against over-eager prefix verdicts.
func TestMpStaleOnlyAtEnd(t *testing.T) {
	nt := loadCorpus(t)["mp_stale.trace"]
	events, err := EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	c, online := streamEvents(t, Options{CheckEvery: 1}, events)
	if len(online) != 0 {
		t.Fatalf("mid-stream violations %+v on a joker-explainable prefix", online)
	}
	f := c.Finish(context.Background(), checker.SearchOptions{})
	if got := checker.VerdictText(f.LC); got != "explainable" {
		t.Fatalf("LC = %q", got)
	}
	if got := checker.VerdictText(f.SC); got != "VIOLATED" {
		t.Fatalf("SC = %q", got)
	}
}

// TestDekkerBottomCycle: no single location is tainted, so only the
// cross-location cycle check can flag the interlocked ⊥-read
// obligations — and it must, before end-of-stream.
func TestDekkerBottomCycle(t *testing.T) {
	nt := loadCorpus(t)["dekker_bottom.trace"]
	events, err := EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	c, online := streamEvents(t, Options{CheckEvery: 1}, events)
	if len(online) != 1 {
		t.Fatalf("violations = %+v, want exactly one", online)
	}
	v := online[0]
	if v.Kind != "cycle" {
		t.Fatalf("kind = %q, want cycle", v.Kind)
	}
	if len(v.Models) != 1 || v.Models[0] != "SC" {
		t.Fatalf("models = %v, want [SC] (the trace is LC-explainable)", v.Models)
	}
	f := c.Finish(context.Background(), checker.SearchOptions{})
	if got := checker.VerdictText(f.LC); got != "explainable" {
		t.Fatalf("LC = %q", got)
	}
	if got := checker.VerdictText(f.SC); got != "VIOLATED" {
		t.Fatalf("SC = %q", got)
	}
}

// TestOverrunPolicy: an overrun sheds events and degrades undecided
// models to the typed INCONCLUSIVE(overrun); violations found before
// the overrun stay definitive.
func TestOverrunPolicy(t *testing.T) {
	t.Run("undecided", func(t *testing.T) {
		nt := loadCorpus(t)["mp_stale.trace"]
		events, err := EventsFromTrace(nt)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := streamEvents(t, Options{MaxEvents: 2}, events)
		if !c.Overrun() {
			t.Fatal("overrun not marked")
		}
		st := c.Stats()
		if st.Events != 2 || st.Shed != 2 {
			t.Fatalf("events=%d shed=%d, want 2/2", st.Events, st.Shed)
		}
		f := c.Finish(context.Background(), checker.SearchOptions{})
		for _, got := range []string{checker.VerdictText(f.LC), checker.VerdictText(f.SC)} {
			if got != "INCONCLUSIVE(overrun)" {
				t.Fatalf("verdict = %q, want INCONCLUSIVE(overrun)", got)
			}
		}
	})
	t.Run("violated-before-overrun", func(t *testing.T) {
		nt := loadCorpus(t)["corr_violation.trace"]
		events, err := EventsFromTrace(nt)
		if err != nil {
			t.Fatal(err)
		}
		// All three nodes fit; a fourth event trips the cap.
		extra := Event{Ev: EvNode, Name: "X", Op: "N"}
		events = append(events[:len(events)-1], extra, Event{Ev: EvEnd})
		c, online := streamEvents(t, Options{MaxEvents: 3}, events)
		if !c.Overrun() || len(online) != 1 {
			t.Fatalf("overrun=%v online=%+v", c.Overrun(), online)
		}
		f := c.Finish(context.Background(), checker.SearchOptions{})
		for _, got := range []string{checker.VerdictText(f.LC), checker.VerdictText(f.SC)} {
			if got != "VIOLATED" {
				t.Fatalf("verdict = %q, want VIOLATED (found before overrun)", got)
			}
		}
	})
}

// TestCheckpointRestore: snapshotting mid-stream and resuming in a
// fresh checker yields the same violations and final verdicts as an
// uninterrupted stream.
func TestCheckpointRestore(t *testing.T) {
	ctx := context.Background()
	for name, nt := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			events, err := EventsFromTrace(nt)
			if err != nil {
				t.Fatal(err)
			}
			ref, _ := streamEvents(t, Options{CheckEvery: 1}, events)
			refF := ref.Finish(ctx, checker.SearchOptions{})

			cut := len(events) / 2
			c := New(Options{CheckEvery: 1})
			for _, ev := range events[:cut] {
				if _, err := c.Ingest(ev); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := c.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := r.Stats(), c.Stats(); got != want {
				t.Fatalf("restored stats %+v != original %+v", got, want)
			}
			for _, ev := range events[cut:] {
				if _, err := r.Ingest(ev); err != nil {
					t.Fatal(err)
				}
			}
			gotF := r.Finish(ctx, checker.SearchOptions{})
			if a, b := checker.VerdictText(gotF.LC), checker.VerdictText(refF.LC); a != b {
				t.Fatalf("LC after restore %q, uninterrupted %q", a, b)
			}
			if a, b := checker.VerdictText(gotF.SC), checker.VerdictText(refF.SC); a != b {
				t.Fatalf("SC after restore %q, uninterrupted %q", a, b)
			}
			if got, want := len(r.Violations()), len(ref.Violations()); got != want {
				t.Fatalf("violations after restore %d, uninterrupted %d", got, want)
			}
		})
	}
}

func TestCheckpointEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Options{}).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Events != 0 || st.Nodes != 0 {
		t.Fatalf("restored empty checker stats %+v", st)
	}
}

// TestProtocolErrors: malformed streams fail with a clear error at the
// offending event, never a panic or silent misparse.
func TestProtocolErrors(t *testing.T) {
	v1 := int64(1)
	locs := Event{Ev: EvLocs, Locs: []string{"x"}}
	w := Event{Ev: EvNode, Name: "W", Op: "W(x)", Val: &v1}
	for _, tc := range []struct {
		name string
		evs  []Event
		want string
	}{
		{"duplicate node", []Event{locs, w, w}, "duplicate node"},
		{"unknown pred", []Event{locs, {Ev: EvNode, Name: "R", Op: "R(x)", Val: &v1, Pred: []string{"nope"}}}, "undelivered node"},
		{"unknown loc", []Event{locs, {Ev: EvNode, Name: "A", Op: "W(y)", Val: &v1}}, "unknown location"},
		{"write without value", []Event{locs, {Ev: EvNode, Name: "A", Op: "W(x)"}}, "without a value"},
		{"read without value", []Event{locs, {Ev: EvNode, Name: "A", Op: "R(x)"}}, "needs val or bottom"},
		{"noop with value", []Event{locs, {Ev: EvNode, Name: "A", Op: "N", Val: &v1}}, "cannot carry a value"},
		{"write bottom", []Event{locs, {Ev: EvNode, Name: "A", Op: "W(x)", Bottom: true}}, "without a value"},
		{"second locs", []Event{locs, locs}, "must be first"},
		{"late locs", []Event{{Ev: EvNode, Name: "A", Op: "N"}, locs}, "must be first"},
		{"duplicate locations", []Event{{Ev: EvLocs, Locs: []string{"x", "x"}}}, "duplicate location"},
		{"event after end", []Event{locs, {Ev: EvEnd}, w}, "after end"},
		{"malformed op", []Event{locs, {Ev: EvNode, Name: "A", Op: "Q(x)"}}, "unknown op kind"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Options{})
			var err error
			for _, ev := range tc.evs {
				if _, err = c.Ingest(ev); err != nil {
					break
				}
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestParseEventRejections: wire-level validation, including the
// in-band Undefined sentinel (satellite regression: ⊥ must be spelled
// {"bottom":true}, never the sentinel's numeric value).
func TestParseEventRejections(t *testing.T) {
	for _, tc := range []struct{ name, line, want string }{
		{"sentinel value", `{"ev":"node","name":"R","op":"R(x)","val":-9223372036854775808}`, "reserved for the Undefined sentinel"},
		{"val and bottom", `{"ev":"node","name":"R","op":"R(x)","val":1,"bottom":true}`, "both val and bottom"},
		{"unknown field", `{"ev":"node","name":"R","op":"R(x)","vall":1}`, "bad event"},
		{"no kind", `{"name":"R"}`, "without an \"ev\" kind"},
		{"unknown kind", `{"ev":"nodez"}`, "unknown event kind"},
		{"locs with node fields", `{"ev":"locs","locs":["x"],"name":"A"}`, "carries node fields"},
		{"end with fields", `{"ev":"end","name":"A"}`, "carries fields"},
		{"nameless node", `{"ev":"node","op":"N"}`, "without a name"},
		{"opless node", `{"ev":"node","name":"A"}`, "without an op"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseEvent([]byte(tc.line))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	// The neighbouring value still parses.
	ev, err := ParseEvent([]byte(`{"ev":"node","name":"R","op":"R(x)","val":-9223372036854775807}`))
	if err != nil || ev.Val == nil {
		t.Fatalf("near-sentinel value rejected: %v", err)
	}
}

// TestNDJSONRoundTrip: WriteNDJSON and ReadNDJSON invert each other.
func TestNDJSONRoundTrip(t *testing.T) {
	nt := loadCorpus(t)["mp_stale.trace"]
	events, err := EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip %d events, want %d", len(got), len(events))
	}
	for i := range got {
		a, b := got[i], events[i]
		av, bv := a.Val, b.Val
		a.Val, b.Val = nil, nil
		if a.Ev != b.Ev || a.Name != b.Name || a.Op != b.Op || a.Bottom != b.Bottom ||
			(av == nil) != (bv == nil) || (av != nil && *av != *bv) {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// TestStatsGauges spot-checks the exported gauges on a known stream.
func TestStatsGauges(t *testing.T) {
	nt := loadCorpus(t)["mp_stale.trace"]
	events, err := EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := streamEvents(t, Options{CheckEvery: 1000}, events[:len(events)-1])
	st := c.Stats()
	if st.Events != 4 || st.Nodes != 4 || st.Locs != 2 {
		t.Fatalf("events/nodes/locs = %d/%d/%d, want 4/4/2", st.Events, st.Nodes, st.Locs)
	}
	// data has one ⊥-read (Rd) and one anchor (Wd): frontier 2. flag
	// has anchors but no ⊥-reads: contributes nothing.
	if st.Frontier != 2 {
		t.Fatalf("frontier = %d, want 2", st.Frontier)
	}
	if st.CheckpointAge != 4 {
		t.Fatalf("checkpoint age = %d, want 4 (cadence 1000, no check yet)", st.CheckpointAge)
	}
	if st.Ended || st.Overrun {
		t.Fatalf("ended/overrun = %v/%v", st.Ended, st.Overrun)
	}
	// The end event flushes the cadence, so a late cycle would be
	// reported online rather than left to the end-of-stream search.
	v, err := c.Ingest(events[len(events)-1])
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatal("end-flush cycle check violated an SC-joker-feasible prefix")
	}
	st = c.Stats()
	if !st.Ended {
		t.Fatal("not ended after the end event")
	}
	if st.CheckpointAge != 0 {
		t.Fatalf("checkpoint age after end = %d, want 0 (end flushes the cadence)", st.CheckpointAge)
	}
}

// Package stream implements online trace verification: an incremental
// checker that consumes an executed trace as a stream of events — one
// per completed memory operation, delivered in an order consistent
// with the computation dag — and reports a violation at the first
// point where one is observable, instead of only after the complete
// trace has been assembled (the post-mortem mode of internal/checker).
//
// # Event model
//
// A trace stream is newline-delimited JSON. The first event declares
// the locations; each subsequent event reports one completed node with
// its instruction, its value, and its already-delivered predecessors;
// a final event closes the trace:
//
//	{"ev":"locs","locs":["data","flag"]}
//	{"ev":"node","name":"Wd","op":"W(data)","val":1}
//	{"ev":"node","name":"Rf","op":"R(flag)","val":1}
//	{"ev":"node","name":"Rd","op":"R(data)","bottom":true,"pred":["Rf"]}
//	{"ev":"end"}
//
// Reads carry either "val" or "bottom":true (the ⊥ of the paper:
// observed no write). Every pred must name an earlier event, so the
// delivery order is forced to be a topological sort of the execution —
// exactly what a live system reports, since an operation's
// dependencies complete before it does. Edges between two
// already-delivered nodes cannot arrive later; that prefix-ideal
// property is what makes mid-stream violations stable (see checker.go).
//
// # Verdict discipline
//
// Mid-stream, the checker reports only *stable* violations: outcomes
// that hold in every completion of the stream, however many concurrent
// writes, reads, and dependencies arrive later. At end-of-stream it
// runs the exact post-mortem decision over the assembled trace, so the
// final verdict is byte-identical to checker.VerifySC/LC on the same
// completed trace.
package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/trace"
)

// Event kinds on the wire.
const (
	EvLocs = "locs"
	EvNode = "node"
	EvEnd  = "end"
)

// Event is one line of a trace stream.
type Event struct {
	// Ev is the kind: "locs", "node", or "end".
	Ev string `json:"ev"`
	// Locs names the locations (locs events; fixes the location set).
	Locs []string `json:"locs,omitempty"`
	// Name is the node's identifier (node events; must be fresh).
	Name string `json:"name,omitempty"`
	// Op is the instruction: "N", "R(loc)", or "W(loc)".
	Op string `json:"op,omitempty"`
	// Val is the stored (write) or returned (read) value.
	Val *int64 `json:"val,omitempty"`
	// Bottom marks a read that observed no write (⊥).
	Bottom bool `json:"bottom,omitempty"`
	// Pred names the node's immediate predecessors, all of which must
	// have been delivered already.
	Pred []string `json:"pred,omitempty"`
}

// ParseEvent decodes one NDJSON line. Unknown fields are rejected so a
// misspelled key fails loudly instead of silently changing the trace.
// Shape validation beyond the protocol state (fresh names, known
// predecessors, location arity) happens at ingest.
func ParseEvent(line []byte) (Event, error) {
	var ev Event
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return Event{}, fmt.Errorf("stream: bad event: %w", err)
	}
	switch ev.Ev {
	case EvLocs:
		if ev.Name != "" || ev.Op != "" || ev.Val != nil || ev.Bottom || len(ev.Pred) != 0 {
			return Event{}, fmt.Errorf("stream: locs event carries node fields")
		}
	case EvNode:
		if ev.Name == "" {
			return Event{}, fmt.Errorf("stream: node event without a name")
		}
		if ev.Op == "" {
			return Event{}, fmt.Errorf("stream: node %q without an op", ev.Name)
		}
		// The Undefined sentinel is in-band (math.MinInt64); accepting it
		// as a literal value would silently flip the read's semantics to
		// "observed no write". ⊥ is spelled {"bottom":true}.
		if ev.Val != nil && trace.Value(*ev.Val) == trace.Undefined {
			return Event{}, fmt.Errorf("stream: node %q: value %d is reserved for the Undefined sentinel (use \"bottom\":true)", ev.Name, *ev.Val)
		}
		if ev.Val != nil && ev.Bottom {
			return Event{}, fmt.Errorf("stream: node %q carries both val and bottom", ev.Name)
		}
	case EvEnd:
		if ev.Name != "" || ev.Op != "" || ev.Val != nil || ev.Bottom || len(ev.Pred) != 0 || len(ev.Locs) != 0 {
			return Event{}, fmt.Errorf("stream: end event carries fields")
		}
	case "":
		return Event{}, fmt.Errorf("stream: event without an \"ev\" kind")
	default:
		return Event{}, fmt.Errorf("stream: unknown event kind %q", ev.Ev)
	}
	return ev, nil
}

// parseOp parses "N", "R(name)", or "W(name)" against a location table.
func parseOp(s string, locID map[string]computation.Loc) (computation.Op, error) {
	if s == "N" {
		return computation.N, nil
	}
	if len(s) < 4 || s[1] != '(' || s[len(s)-1] != ')' {
		return computation.Op{}, fmt.Errorf("stream: malformed op %q", s)
	}
	l, ok := locID[s[2:len(s)-1]]
	if !ok {
		return computation.Op{}, fmt.Errorf("stream: unknown location %q", s[2:len(s)-1])
	}
	switch s[0] {
	case 'R':
		return computation.R(l), nil
	case 'W':
		return computation.W(l), nil
	}
	return computation.Op{}, fmt.Errorf("stream: unknown op kind in %q", s)
}

// renderOp is parseOp's inverse.
func renderOp(op computation.Op, locName []string) string {
	if op.Kind == computation.Noop {
		return "N"
	}
	return fmt.Sprintf("%s(%s)", op.Kind, locName[op.Loc])
}

// EventsFromTrace converts a parsed trace into an event stream
// delivered in a canonical topological order (the lexicographically
// least one), ending with an end event. It is the bridge from the
// post-mortem corpus to the streaming checker: cmd/verify -stream uses
// it to feed .trace files, and the differential tests replay corpus
// traces through it.
func EventsFromTrace(nt *trace.NamedTrace) ([]Event, error) {
	order, err := nt.Named.Comp.Dag().TopoSort()
	if err != nil {
		return nil, err
	}
	return EventsFromTraceOrder(nt, order)
}

// EventsFromTraceOrder is EventsFromTrace with an explicit delivery
// order, which must be a topological sort of the trace's computation.
func EventsFromTraceOrder(nt *trace.NamedTrace, order []dag.Node) ([]Event, error) {
	named, tr := nt.Named, nt.Trace
	c := named.Comp
	if !c.Dag().IsTopoSort(order) {
		return nil, fmt.Errorf("stream: delivery order is not a topological sort")
	}
	events := make([]Event, 0, c.NumNodes()+2)
	events = append(events, Event{Ev: EvLocs, Locs: append([]string(nil), named.LocName...)})
	for _, u := range order {
		op := c.Op(u)
		ev := Event{Ev: EvNode, Name: named.NodeName[u], Op: renderOp(op, named.LocName)}
		for _, p := range c.Dag().Preds(u) {
			ev.Pred = append(ev.Pred, named.NodeName[p])
		}
		switch op.Kind {
		case computation.Write:
			v := int64(tr.WriteVal[u])
			ev.Val = &v
		case computation.Read:
			if tr.ReadVal[u] == trace.Undefined {
				ev.Bottom = true
			} else {
				v := int64(tr.ReadVal[u])
				ev.Val = &v
			}
		}
		events = append(events, ev)
	}
	events = append(events, Event{Ev: EvEnd})
	return events, nil
}

// WriteNDJSON renders events one JSON object per line.
func WriteNDJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses a whole NDJSON stream (blank lines and #-comment
// lines are skipped). The scanner accepts lines up to maxEventBytes.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxEventBytes)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// maxEventBytes bounds one event line; single operations are tiny, and
// an unbounded line is a trivial memory DoS on a long-lived endpoint.
const maxEventBytes = 1 << 20

// Compile-time pin of the sentinel this package rejects on the wire:
// if trace.Undefined ever moves away from math.MinInt64 this index
// goes out of range and the build breaks here, next to the check.
var _ = [1]struct{}{}[int64(trace.Undefined)-math.MinInt64]

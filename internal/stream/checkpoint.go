package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// Checkpointing makes the incremental checker's state durable: a
// long-lived stream can be snapshotted and resumed (by the same or
// another process) without replaying the connection. The format keeps
// the assembled prefix in the canonical trace text (the same format
// cmd/verify reads), so a checkpoint is also directly inspectable and
// post-mortem-verifiable with the existing tools; the derived
// constraint state (ancestry masks, anchor lists) is rebuilt by
// replaying the trace through ingest, which is linear and
// deterministic.

// checkpointVersion gates the wire format.
const checkpointVersion = 1

// checkpointJSON is the serialized checker state.
type checkpointJSON struct {
	Version    int         `json:"version"`
	Events     int64       `json:"events"`
	Shed       int64       `json:"shed"`
	SinceCheck int64       `json:"since_check"`
	Ended      bool        `json:"ended"`
	Overrun    bool        `json:"overrun"`
	CheckEvery int         `json:"check_every"`
	MaxEvents  int64       `json:"max_events,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
	Trace      string      `json:"trace"`
}

// Checkpoint serializes the checker's state to w as JSON.
func (c *Checker) Checkpoint(w io.Writer) error {
	var tb strings.Builder
	if err := c.Trace().Format(&tb); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	cp := checkpointJSON{
		Version:    checkpointVersion,
		Events:     c.events,
		Shed:       c.shed,
		SinceCheck: c.sinceCheck,
		Ended:      c.ended,
		Overrun:    c.overrun,
		CheckEvery: c.opts.CheckEvery,
		MaxEvents:  c.opts.MaxEvents,
		Violations: c.violations,
		Trace:      tb.String(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// Restore rebuilds a checker from a Checkpoint. The derived state is
// reconstructed by replaying the recorded trace through ingest; the
// recorded violation history is authoritative (replay may additionally
// surface an SC cycle the original cadence had not reached yet — that
// is kept too, since stable violations only accumulate).
func Restore(r io.Reader) (*Checker, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cp checkpointJSON
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("stream: bad checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d not supported", cp.Version)
	}
	c, err := replay(cp)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func replay(cp checkpointJSON) (*Checker, error) {
	c := New(Options{CheckEvery: cp.CheckEvery, MaxEvents: cp.MaxEvents})
	nt, err := trace.ParseTraceString(cp.Trace)
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint trace: %w", err)
	}
	events, err := EventsFromTrace(nt)
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint trace: %w", err)
	}
	// Replay with the overrun gate lifted: the recorded node count may
	// equal MaxEvents exactly, and shedding recorded nodes would lose
	// state the original had. Replay detects the same taint set the
	// original did (taint depends only on the dag, not arrival order).
	replayOpts := c.opts
	c.opts.MaxEvents = 0
	for _, ev := range events {
		if ev.Ev == EvEnd {
			break // terminal flags come from the checkpoint record
		}
		if _, err := c.Ingest(ev); err != nil {
			return nil, fmt.Errorf("stream: checkpoint replay: %w", err)
		}
	}
	c.opts = replayOpts

	// The recorded history is canonical (its event indices reflect the
	// original arrival order); replay-only discoveries are kept after
	// it, but only when they exclude a model the record did not.
	replayed := c.violations
	c.violations = append([]Violation(nil), cp.Violations...)
	c.lcViolated, c.scViolated = false, false
	for _, v := range c.violations {
		c.applyFlags(v)
	}
	for i := range replayed {
		v := replayed[i]
		novel := false
		for _, m := range v.Models {
			if (m == "LC" && !c.lcViolated) || (m == "SC" && !c.scViolated) {
				novel = true
			}
		}
		if novel {
			c.violations = append(c.violations, v)
			c.applyFlags(v)
		}
	}

	c.events = cp.Events
	c.shed = cp.Shed
	c.sinceCheck = cp.SinceCheck
	c.ended = cp.Ended
	c.overrun = cp.Overrun
	return c, nil
}

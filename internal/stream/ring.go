package stream

import (
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer lock-free ring
// buffer of trace events: the ingest side of the streaming checker.
// The connection reader pushes decoded events, the checker goroutine
// pops them, and neither ever blocks the other — a full ring rejects
// the push instead (the caller then applies the overflow policy: shed
// the event, mark the stream overrun, and degrade the final verdict to
// a typed INCONCLUSIVE(overrun) rather than silently dropping data).
//
// The implementation is the classic power-of-two ring with monotone
// head/tail sequence counters (head is consumer-owned, tail is
// producer-owned; each side only loads the other's counter), so the
// hot path is one atomic load + one atomic store per operation.
type Ring struct {
	mask uint64
	buf  []Event

	// head is the next slot to pop (consumer-owned); tail is the next
	// slot to push (producer-owned). tail-head is the fill level.
	// Padded apart so the two sides do not false-share a cache line.
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte

	// closed is set by the producer after its last push; a consumer
	// seeing closed and an empty ring knows the stream has ended.
	closed atomic.Bool
	// shed counts events the producer dropped (ShedOne); a rejected
	// TryPush alone is not a shed — the producer may retry instead.
	shed atomic.Int64
}

// NewRing returns a ring with capacity rounded up to a power of two
// (minimum 2).
func NewRing(capacity int) *Ring {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Ring{mask: n - 1, buf: make([]Event, n)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the current fill level (racy by nature; exact only from
// within one side).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush appends ev; it reports false when the ring is full, leaving
// the caller to retry or shed (ShedOne). Producer-side only.
func (r *Ring) TryPush(ev Event) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = ev
	r.tail.Store(t + 1) // publishes the slot write (release)
	return true
}

// TryPop removes the oldest event; ok is false when the ring is
// currently empty. Consumer-side only.
func (r *Ring) TryPop() (ev Event, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Event{}, false
	}
	ev = r.buf[h&r.mask]
	r.buf[h&r.mask] = Event{} // drop references for the GC
	r.head.Store(h + 1)
	return ev, true
}

// Close marks the producer side finished. Idempotent.
func (r *Ring) Close() { r.closed.Store(true) }

// Closed reports whether the producer has finished.
func (r *Ring) Closed() bool { return r.closed.Load() }

// Drained reports end-of-stream: the producer closed and every pushed
// event has been popped.
func (r *Ring) Drained() bool {
	// Order matters: observe closed before the emptiness check, so a
	// concurrent close-after-push can not present as drained while the
	// last event is still in the buffer.
	return r.closed.Load() && r.head.Load() == r.tail.Load()
}

// ShedOne records one event dropped under the overflow policy.
func (r *Ring) ShedOne() { r.shed.Add(1) }

// Shed returns the number of events dropped under the overflow policy.
func (r *Ring) Shed() int64 { return r.shed.Load() }

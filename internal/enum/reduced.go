package enum

// This file implements the symmetry-reduced sweeps: enumerate one
// canonical representative per isomorphism class and multiply
// per-computation counts by the class's orbit size instead of
// re-deciding every member.
//
// Every model and property swept by this repository is
// isomorphism-invariant (see the package comment), so membership of a
// representative decides membership for its whole class, and exact
// universe totals are recovered as Σ orbit. The canonical
// representative is defined as the enumeration-order-minimal class
// member (dag.Canonicalizer), which pins down witnesses too: the first
// witness-bearing computation of the full enumeration is necessarily
// canonical — its representative precedes it in enumeration order and
// carries an isomorphic witness, so being first forces the two to
// coincide — and observer enumeration within a computation is shared
// by both paths. Reduced sweeps therefore report byte-identical
// witnesses to the unreduced sweeps, not merely isomorphic ones.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
)

// EachComputationReduced enumerates one canonical representative per
// isomorphism class of computations with exactly n nodes over numLocs
// locations, passing each with its orbit size (the number of
// ordered-universe members it stands for). Σ orbit over a full sweep
// equals EachComputation's visit count. The computation is freshly
// allocated and may be retained; enumeration stops early if fn returns
// false. Returns the number of representatives visited.
func EachComputationReduced(n, numLocs int, fn func(c *computation.Computation, orbit int64) bool) int {
	visited := 0
	eachComputationReducedShard(n, numLocs, 0, 1, func(c *computation.Computation, orbit int64, _, _ uint64) bool {
		visited++
		return fn(c, orbit)
	})
	return visited
}

// EachComputationReducedUpTo enumerates canonical representatives with
// 0..maxNodes nodes, smallest first.
func EachComputationReducedUpTo(maxNodes, numLocs int, fn func(c *computation.Computation, orbit int64) bool) int {
	total := 0
	for n := 0; n <= maxNodes; n++ {
		stopped := false
		total += EachComputationReduced(n, numLocs, func(c *computation.Computation, orbit int64) bool {
			if !fn(c, orbit) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			break
		}
	}
	return total
}

// eachComputationReducedShard enumerates the canonical representatives
// whose dag mask index is ≡ shard (mod shards), passing the orbit size
// and the (dag, labeling) enumeration indices for global witness
// ranking. Ownership is decided on the raw mask index, before the
// symmetry analysis, so each worker analyzes only its own dags.
func eachComputationReducedShard(n, numLocs, shard, shards int, fn func(c *computation.Computation, orbit int64, dagIdx, labelIdx uint64) bool) {
	ops := computation.AllOps(numLocs)
	cz := dag.NewCanonicalizer()
	var dagIdx uint64
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		idx := dagIdx
		dagIdx++
		if idx%uint64(shards) != uint64(shard) {
			return true
		}
		if !cz.AnalyzeDag(g) {
			return true // every labeling of a non-minimal mask is non-canonical
		}
		labels := make([]computation.Op, n)
		lidx := make([]int32, n)
		stopped := false
		var rec func(i int, labelIdx uint64) bool
		rec = func(i int, labelIdx uint64) bool {
			if i == n {
				orbit, canonical := cz.LabelOrbit(lidx)
				if !canonical {
					return true
				}
				c := computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs)
				if !fn(c, orbit, idx, labelIdx) {
					stopped = true
					return false
				}
				return true
			}
			for oi, op := range ops {
				labels[i] = op
				lidx[i] = int32(oi)
				if !rec(i+1, labelIdx*uint64(len(ops))+uint64(oi)) {
					return false
				}
			}
			return true
		}
		rec(0, 0)
		return !stopped
	})
}

// CompareReduced computes the Relation between two isomorphism-
// invariant models over the universe up to maxNodes nodes by deciding
// only canonical representatives and scaling by orbit. Counts equal
// Compare's exactly; the witnesses are byte-identical to Compare's
// (see the file comment for the argument).
func CompareReduced(a, b memmodel.Model, maxNodes, numLocs int) Relation {
	var r Relation
	for n := 0; n <= maxNodes; n++ {
		eachComputationReducedShard(n, numLocs, 0, 1, func(c *computation.Computation, orbit int64, dagIdx, labelIdx uint64) bool {
			rank := pairRank{set: true, n: int32(n), dag: dagIdx, label: labelIdx}
			observer.Enumerate(c, func(o *observer.Observer) bool {
				compareInto(&r, a, b, c, o, int(orbit), rank)
				return true
			})
			return true
		})
	}
	return r
}

// CompareReducedParallel is CompareReduced sharded over workers
// goroutines (<= 0 means GOMAXPROCS). Counts and witnesses are
// identical to CompareReduced for every worker count: the merge keeps
// the witness with the smallest global enumeration rank.
func CompareReducedParallel(a, b memmodel.Model, maxNodes, numLocs, workers int) Relation {
	r, _ := compareReducedParallel(context.Background(), a, b, maxNodes, numLocs, workers, nil)
	return r
}

// CompareReducedParallelObs is CompareReducedParallel under a context
// with observability: the recorder sees a RunStart with live gauges
// (representatives decided as States, members covered as Done is not
// tracked here — shards finished ride Done), one WorkerDone per shard,
// and a RunEnd summarizing the relation. A nil rec disables all event
// work.
func CompareReducedParallelObs(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int, rec obs.Recorder) (Relation, error) {
	return compareReducedParallel(ctx, a, b, maxNodes, numLocs, workers, rec)
}

// compareReducedParallel mirrors compareParallel over the reduced
// enumeration.
func compareReducedParallel(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int, rec obs.Recorder) (Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var live *obs.Counters
	if rec != nil {
		live = &obs.Counters{}
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: workers, Live: live})
	}
	var cancelled atomic.Bool
	var totComps, totRepComps atomic.Int64
	results := make([]Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			r := &results[shard]
			tick, published := 0, 0
			var comps, repComps, pubSkip int64
			for n := 0; n <= maxNodes; n++ {
				eachComputationReducedShard(n, numLocs, shard, workers, func(c *computation.Computation, orbit int64, dagIdx, labelIdx uint64) bool {
					repComps++
					comps += orbit
					rank := pairRank{set: true, n: int32(n), dag: dagIdx, label: labelIdx}
					observer.Enumerate(c, func(o *observer.Observer) bool {
						tick++
						if tick&ctxPollMask == 0 {
							if ctx.Err() != nil {
								cancelled.Store(true)
							}
							if live != nil {
								live.States.Add(int64(tick - published))
								published = tick
								if skip := comps - repComps; skip != pubSkip {
									live.Skipped.Add(skip - pubSkip)
									pubSkip = skip
								}
							}
						}
						if cancelled.Load() {
							return false
						}
						compareInto(r, a, b, c, o, int(orbit), rank)
						return true
					})
					return !cancelled.Load()
				})
				if cancelled.Load() {
					break
				}
			}
			totComps.Add(comps)
			totRepComps.Add(repComps)
			if rec != nil {
				live.States.Add(int64(tick - published))
				live.Skipped.Add(comps - repComps - pubSkip)
				live.Done.Add(1)
				obs.Emit(rec, obs.Event{Kind: obs.WorkerDone, Worker: shard,
					Stats: &obs.Stats{States: int64(tick), Orbits: comps,
						SymmetrySkipped: comps - repComps, Workers: workers}})
			}
		}(w)
	}
	wg.Wait()
	merged := mergeShards(results)
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Str: relationOutcome(merged, ctx.Err()),
			Stats: &obs.Stats{States: live.States.Load(), Orbits: totComps.Load(),
				SymmetrySkipped: totComps.Load() - totRepComps.Load(), Workers: workers}})
	}
	return merged, ctx.Err()
}

// CensusReducedParallel counts, for each isomorphism-invariant model,
// the universe pairs it contains, plus the universe pair total,
// deciding only canonical representatives. Results equal
// CensusParallel's exactly.
func CensusReducedParallel(models []memmodel.Model, maxNodes, numLocs, workers int) ([]int, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type shardCount struct {
		counts []int
		total  int
	}
	results := make([]shardCount, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			counts := make([]int, len(models))
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationReducedShard(n, numLocs, shard, workers, func(c *computation.Computation, orbit int64, _, _ uint64) bool {
					observer.Enumerate(c, func(o *observer.Observer) bool {
						total += int(orbit)
						for i, m := range models {
							if m.Contains(c, o) {
								counts[i] += int(orbit)
							}
						}
						return true
					})
					return true
				})
			}
			results[shard] = shardCount{counts: counts, total: total}
		}(w)
	}
	wg.Wait()
	out := make([]int, len(models))
	total := 0
	for _, r := range results {
		total += r.total
		for i, c := range r.counts {
			out[i] += c
		}
	}
	return out, total
}

// CountPairsReducedParallel counts all (computation, observer) pairs
// of the universe from canonical representatives only.
func CountPairsReducedParallel(maxNodes, numLocs, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var total int64
			for n := 0; n <= maxNodes; n++ {
				eachComputationReducedShard(n, numLocs, shard, workers, func(c *computation.Computation, orbit int64, _, _ uint64) bool {
					total += orbit * int64(observer.Count(c, 0))
					return true
				})
			}
			results[shard] = total
		}(w)
	}
	wg.Wait()
	var total int64
	for _, t := range results {
		total += t
	}
	return int(total)
}

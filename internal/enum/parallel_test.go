package enum

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// The parallel sweep must produce exactly the sequential counts.
func TestCompareParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		seq := Compare(memmodel.LC, memmodel.NN, 3, 1)
		par := CompareParallel(memmodel.LC, memmodel.NN, 3, 1, workers)
		if par.AOnly != seq.AOnly || par.BOnly != seq.BOnly || par.Both != seq.Both {
			t.Fatalf("workers=%d: parallel %+v != sequential %+v", workers, par, seq)
		}
	}
}

func TestCompareParallelWitnesses(t *testing.T) {
	par := CompareParallel(memmodel.SC, memmodel.LC, 2, 2, 3)
	if !par.StrictlyStronger() {
		t.Fatalf("SC vs LC: %+v", par)
	}
	if par.WitnessBOnly == nil {
		t.Fatal("strictness without witness")
	}
	// The witness really is in LC \ SC.
	if memmodel.SC.Contains(par.WitnessBOnly.C, par.WitnessBOnly.O) ||
		!memmodel.LC.Contains(par.WitnessBOnly.C, par.WitnessBOnly.O) {
		t.Fatal("witness misclassified")
	}
}

// witnessKey fingerprints a witness pair for cross-run comparison.
func witnessKey(p *memmodel.Pair) string {
	if p == nil {
		return "<none>"
	}
	return p.C.String() + " / " + p.O.String()
}

// The reported witness must be a pure function of (universe, worker
// count): repeated runs at the same worker count may not flap. This
// regression-tests the completion-order merge bug — the old channel
// merge produced whichever shard's witness arrived first, so WN-vs-NN
// (witnesses on both sides, spread across shards) flapped under
// scheduler noise. 10 repetitions under -race gives the scheduler
// ample room to expose any order dependence.
func TestCompareParallelWitnessDeterminism(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		var wantA, wantB string
		for rep := 0; rep < 10; rep++ {
			// NW vs WN on the n=4, L=1 universe is incomparable (112 vs
			// 6786 one-sided pairs), so both witnesses exist and the
			// one-sided pairs are spread across many shards.
			r := CompareParallel(memmodel.NW, memmodel.WN, 4, 1, workers)
			if r.WitnessAOnly == nil || r.WitnessBOnly == nil {
				t.Fatalf("workers=%d: NW vs WN should be incomparable with witnesses: %+v", workers, r)
			}
			gotA, gotB := witnessKey(r.WitnessAOnly), witnessKey(r.WitnessBOnly)
			if rep == 0 {
				wantA, wantB = gotA, gotB
				continue
			}
			if gotA != wantA || gotB != wantB {
				t.Fatalf("workers=%d rep=%d: witness flapped:\n  A: %s -> %s\n  B: %s -> %s",
					workers, rep, wantA, gotA, wantB, gotB)
			}
		}
	}
}

func TestCountPairsParallel(t *testing.T) {
	seq := EachPair(3, 1, func(*computation.Computation, *observer.Observer) bool { return true })
	for _, workers := range []int{0, 1, 4} {
		if got := CountPairsParallel(3, 1, workers); got != seq {
			t.Fatalf("workers=%d: %d != %d", workers, got, seq)
		}
	}
}

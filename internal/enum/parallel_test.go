package enum

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// The parallel sweep must produce exactly the sequential counts.
func TestCompareParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		seq := Compare(memmodel.LC, memmodel.NN, 3, 1)
		par := CompareParallel(memmodel.LC, memmodel.NN, 3, 1, workers)
		if par.AOnly != seq.AOnly || par.BOnly != seq.BOnly || par.Both != seq.Both {
			t.Fatalf("workers=%d: parallel %+v != sequential %+v", workers, par, seq)
		}
	}
}

func TestCompareParallelWitnesses(t *testing.T) {
	par := CompareParallel(memmodel.SC, memmodel.LC, 2, 2, 3)
	if !par.StrictlyStronger() {
		t.Fatalf("SC vs LC: %+v", par)
	}
	if par.WitnessBOnly == nil {
		t.Fatal("strictness without witness")
	}
	// The witness really is in LC \ SC.
	if memmodel.SC.Contains(par.WitnessBOnly.C, par.WitnessBOnly.O) ||
		!memmodel.LC.Contains(par.WitnessBOnly.C, par.WitnessBOnly.O) {
		t.Fatal("witness misclassified")
	}
}

func TestCountPairsParallel(t *testing.T) {
	seq := EachPair(3, 1, func(*computation.Computation, *observer.Observer) bool { return true })
	for _, workers := range []int{0, 1, 4} {
		if got := CountPairsParallel(3, 1, workers); got != seq {
			t.Fatalf("workers=%d: %d != %d", workers, got, seq)
		}
	}
}

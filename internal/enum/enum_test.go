package enum

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

func TestEachComputationCounts(t *testing.T) {
	// n nodes, L locations: 2^(n(n-1)/2) dags × (1+2L)^n labelings.
	cases := []struct{ n, locs, want int }{
		{0, 1, 1},
		{1, 1, 3},
		{2, 1, 2 * 9},
		{3, 1, 8 * 27},
		{2, 2, 2 * 25},
	}
	for _, tc := range cases {
		got := EachComputation(tc.n, tc.locs, func(c *computation.Computation) bool {
			if c.NumNodes() != tc.n || c.NumLocs() != tc.locs {
				t.Fatalf("bad member: %v", c)
			}
			return true
		})
		if got != tc.want {
			t.Errorf("EachComputation(%d, %d) = %d, want %d", tc.n, tc.locs, got, tc.want)
		}
	}
}

func TestEachComputationDistinct(t *testing.T) {
	seen := map[string]bool{}
	EachComputation(3, 1, func(c *computation.Computation) bool {
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate %s", k)
		}
		seen[k] = true
		return true
	})
}

func TestEachComputationUpTo(t *testing.T) {
	want := 1 + 3 + 18 + 216
	if got := EachComputationUpTo(3, 1, func(*computation.Computation) bool { return true }); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	all := AllComputations(2, 1)
	if len(all) != 1+3+18 {
		t.Fatalf("AllComputations = %d", len(all))
	}
	// Smallest first.
	if all[0].NumNodes() != 0 || all[len(all)-1].NumNodes() != 2 {
		t.Fatal("ordering wrong")
	}
}

func TestEarlyStops(t *testing.T) {
	n := 0
	EachComputationUpTo(3, 1, func(*computation.Computation) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
	n = 0
	EachPair(2, 1, func(*computation.Computation, *observer.Observer) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("pairs visited %d", n)
	}
}

func TestEachPairValidAndCounted(t *testing.T) {
	count := EachPair(2, 1, func(c *computation.Computation, o *observer.Observer) bool {
		if err := o.Validate(c); err != nil {
			t.Fatalf("invalid pair enumerated: %v", err)
		}
		return true
	})
	// Hand count: n=0: 1 pair. n=1: N and R have the ⊥ observer (1 each),
	// W observes itself (1): 3 pairs. n=2 with 18 computations: verified
	// against observer.Count below.
	wantN2 := 0
	EachComputation(2, 1, func(c *computation.Computation) bool {
		wantN2 += observer.Count(c, 0)
		return true
	})
	if count != 1+3+wantN2 {
		t.Fatalf("pairs = %d, want %d", count, 1+3+wantN2)
	}
}

func TestModelPairsAndStronger(t *testing.T) {
	scPairs := ModelPairs(memmodel.SC, 2, 1)
	lcPairs := ModelPairs(memmodel.LC, 2, 1)
	if len(scPairs) == 0 || len(lcPairs) < len(scPairs) {
		t.Fatalf("|SC| = %d, |LC| = %d", len(scPairs), len(lcPairs))
	}
	if !memmodel.Stronger(memmodel.SC, memmodel.LC, lcPairs) {
		t.Fatal("SC must be stronger than LC")
	}
}

func TestCompareRelations(t *testing.T) {
	// At ≤2 nodes with one location, SC = LC (a single location's sort
	// is the sort), and NN ⊆ WW strictly requires ≥3 nodes... verify the
	// basic classifications instead.
	r := Compare(memmodel.SC, memmodel.LC, 2, 1)
	if !r.Equal() {
		t.Fatalf("SC vs LC at ≤2 nodes, 1 loc: %+v", r)
	}
	r = Compare(memmodel.SC, memmodel.LC, 2, 2)
	if !r.StrictlyStronger() {
		t.Fatalf("SC vs LC at 2 locs must be strict: %+v", r)
	}
	if r.WitnessBOnly == nil {
		t.Fatal("strictness must come with a witness")
	}
	if r.Incomparable() {
		t.Fatal("SC vs LC cannot be incomparable")
	}
	// At ≤3 nodes NW happens to be stronger than WN; the separation in
	// the NW direction (Figure 2) needs 4 nodes.
	r = Compare(memmodel.NW, memmodel.WN, 3, 1)
	if !r.StrictlyStronger() {
		t.Fatalf("NW vs WN at ≤3 nodes: %+v", r)
	}
	if testing.Short() {
		t.Skip("4-node incomparability sweep skipped in -short mode")
	}
	r = Compare(memmodel.NW, memmodel.WN, 4, 1)
	if !r.Incomparable() {
		t.Fatalf("NW vs WN must be incomparable at ≤4 nodes: %+v", r)
	}
}

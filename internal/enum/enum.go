// Package enum enumerates exhaustive universes of small computations
// and (computation, observer) pairs. The paper's theorems are
// universally quantified over all computations; the experiments
// machine-check them over every computation up to a size bound.
//
// The universe for n nodes and L locations consists of every dag on n
// ordered nodes whose edges go from lower to higher index — every dag is
// isomorphic to one of these — combined with every labelling of the
// nodes by instructions from O = {N} ∪ {R(l), W(l) : l < L}. All
// memory models in this repository are isomorphism-invariant, so the
// ordered-node universe loses no generality.
//
// Universe sizes grow as 2^(n(n-1)/2) · (1+2L)^n:
//
//	n=3, L=1:      8 ·  27 =       216 computations
//	n=4, L=1:     64 ·  81 =     5,184
//	n=4, L=2:     64 · 625 =    40,000
//	n=5, L=1:  1,024 · 243 =   248,832
//
// Pair universes multiply by the observer count of each computation.
package enum

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// EachComputation enumerates every computation with exactly n nodes
// over numLocs locations (ordered-node universe). The computation
// passed to fn is freshly allocated and may be retained. Enumeration
// stops early if fn returns false. Returns the count visited.
func EachComputation(n, numLocs int, fn func(c *computation.Computation) bool) int {
	ops := computation.AllOps(numLocs)
	visited := 0
	stopped := false
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		labels := make([]computation.Op, n)
		var rec func(i int) bool
		rec = func(i int) bool {
			if stopped {
				return false
			}
			if i == n {
				c := computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs)
				visited++
				if !fn(c) {
					stopped = true
					return false
				}
				return true
			}
			for _, op := range ops {
				labels[i] = op
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
		return !stopped
	})
	return visited
}

// EachComputationUpTo enumerates every computation with 0..maxNodes
// nodes (smallest first). Same conventions as EachComputation.
func EachComputationUpTo(maxNodes, numLocs int, fn func(c *computation.Computation) bool) int {
	total := 0
	for n := 0; n <= maxNodes; n++ {
		stopped := false
		total += EachComputation(n, numLocs, func(c *computation.Computation) bool {
			if !fn(c) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			break
		}
	}
	return total
}

// AllComputations materializes the universe up to maxNodes nodes.
func AllComputations(maxNodes, numLocs int) []*computation.Computation {
	var out []*computation.Computation
	EachComputationUpTo(maxNodes, numLocs, func(c *computation.Computation) bool {
		out = append(out, c)
		return true
	})
	return out
}

// EachPair enumerates every (computation, observer) pair over the
// universe up to maxNodes nodes. The observer passed to fn is reused;
// clone to retain. Returns the count visited.
func EachPair(maxNodes, numLocs int, fn func(c *computation.Computation, o *observer.Observer) bool) int {
	total := 0
	EachComputationUpTo(maxNodes, numLocs, func(c *computation.Computation) bool {
		stopped := false
		total += observer.Enumerate(c, func(o *observer.Observer) bool {
			if !fn(c, o) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	})
	return total
}

// ModelPairs materializes every pair of the universe belonging to the
// model. Useful for strictness witnesses and lattice comparisons.
func ModelPairs(m memmodel.Model, maxNodes, numLocs int) []memmodel.Pair {
	var out []memmodel.Pair
	EachPair(maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		if m.Contains(c, o) {
			out = append(out, memmodel.Pair{C: c, O: o.Clone()})
		}
		return true
	})
	return out
}

// Relation classifies the relationship between two models over the
// universe: for each model, whether it contains a pair the other lacks.
type Relation struct {
	AOnly, BOnly int            // pair counts in exactly one model
	Both         int            // pairs in both
	WitnessAOnly *memmodel.Pair // example in A \ B, if any
	WitnessBOnly *memmodel.Pair // example in B \ A, if any
	// Witness enumeration ranks, used by the parallel merges to keep
	// the globally-first witness independent of the worker count.
	rankAOnly, rankBOnly pairRank
}

// Equal reports A = B over the universe.
func (r Relation) Equal() bool { return r.AOnly == 0 && r.BOnly == 0 }

// StrictlyStronger reports A ⊊ B over the universe.
func (r Relation) StrictlyStronger() bool { return r.AOnly == 0 && r.BOnly > 0 }

// Incomparable reports that neither contains the other.
func (r Relation) Incomparable() bool { return r.AOnly > 0 && r.BOnly > 0 }

// Compare computes the Relation between models a and b over the
// universe of all pairs up to maxNodes nodes and numLocs locations.
func Compare(a, b memmodel.Model, maxNodes, numLocs int) Relation {
	var r Relation
	EachPair(maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		compareInto(&r, a, b, c, o, 1, pairRank{})
		return true
	})
	return r
}

package enum

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// This file parallelizes the universe sweeps. The universe of dags on n
// nodes is indexed by an edge bitmask, so it shards trivially:
// worker w handles the masks congruent to w modulo the worker count.
// Each worker owns private accumulators; workers write their result
// into a shard-indexed slice and the merge walks that slice in shard
// order. (An earlier version merged from a channel in completion
// order, which made the reported witness depend on goroutine timing:
// the counts were stable but WitnessAOnly/WitnessBOnly flapped between
// runs. Shard-order merging makes the whole Relation — witnesses
// included — a pure function of (universe, worker count).)

// eachComputationShard enumerates the computations of exactly n nodes
// whose dag mask is ≡ shard (mod shards).
func eachComputationShard(n, numLocs, shard, shards int, fn func(c *computation.Computation) bool) {
	ops := computation.AllOps(numLocs)
	idx := 0
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		mine := idx%shards == shard
		idx++
		if !mine {
			return true
		}
		labels := make([]computation.Op, n)
		stopped := false
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				c := computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs)
				if !fn(c) {
					stopped = true
					return false
				}
				return true
			}
			for _, op := range ops {
				labels[i] = op
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
		return !stopped
	})
}

// mergeShards folds per-shard relations in shard-index order. The
// counts commute, but the witnesses don't: keeping the first non-nil
// witness while walking shards in index order is what pins the report
// to the lowest shard.
func mergeShards(results []Relation) Relation {
	var merged Relation
	for _, r := range results {
		merged.AOnly += r.AOnly
		merged.BOnly += r.BOnly
		merged.Both += r.Both
		if merged.WitnessAOnly == nil {
			merged.WitnessAOnly = r.WitnessAOnly
		}
		if merged.WitnessBOnly == nil {
			merged.WitnessBOnly = r.WitnessBOnly
		}
	}
	return merged
}

// CompareParallel is Compare distributed over `workers` goroutines
// (defaults to GOMAXPROCS when workers <= 0). The result is identical
// to Compare up to which witness pair is reported (the lowest-shard
// witness wins, deterministically for a fixed worker count).
func CompareParallel(a, b memmodel.Model, maxNodes, numLocs, workers int) Relation {
	r, _ := compareParallel(context.Background(), a, b, maxNodes, numLocs, workers, nil)
	return r
}

// CensusParallel counts, for each model, the universe pairs it
// contains, plus the universe total, sharded over workers (<= 0 means
// GOMAXPROCS). Pure counts commute, so the shard merge is trivially
// deterministic.
func CensusParallel(models []memmodel.Model, maxNodes, numLocs, workers int) ([]int, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type shardCount struct {
		counts []int
		total  int
	}
	results := make([]shardCount, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			counts := make([]int, len(models))
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					observer.Enumerate(c, func(o *observer.Observer) bool {
						total++
						for i, m := range models {
							if m.Contains(c, o) {
								counts[i]++
							}
						}
						return true
					})
					return true
				})
			}
			results[shard] = shardCount{counts: counts, total: total}
		}(w)
	}
	wg.Wait()
	out := make([]int, len(models))
	total := 0
	for _, r := range results {
		total += r.total
		for i, c := range r.counts {
			out[i] += c
		}
	}
	return out, total
}

// CountPairsParallel counts all (computation, observer) pairs of the
// universe using `workers` goroutines.
func CountPairsParallel(maxNodes, numLocs, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					total += observer.Count(c, 0)
					return true
				})
			}
			results[shard] = total
		}(w)
	}
	wg.Wait()
	total := 0
	for _, t := range results {
		total += t
	}
	return total
}

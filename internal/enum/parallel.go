package enum

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// This file parallelizes the universe sweeps. The universe of dags on n
// nodes is indexed by an edge bitmask, so it shards trivially:
// worker w handles the masks congruent to w modulo the worker count.
// Each worker owns private accumulators; workers write their result
// into a shard-indexed slice and the merge folds that slice by global
// enumeration rank. (An earlier version merged from a channel in
// completion order, which made the reported witness depend on
// goroutine timing; a later one kept the lowest-shard witness, which
// was deterministic but still worker-count-dependent. Rank merging
// makes the whole Relation — witnesses included — a pure function of
// the universe, equal to the serial sweep's for any worker count.)

// pairRank is a pair's position in the global enumeration order:
// computation size, then dag mask index, then labeling index. Within
// one computation every shard scans observers in the same order, so
// computation granularity suffices to order shard-first witnesses.
type pairRank struct {
	set   bool
	n     int32
	dag   uint64
	label uint64
}

// less orders set ranks by enumeration position; an unset rank never
// wins.
func (a pairRank) less(b pairRank) bool {
	if a.set != b.set {
		return a.set
	}
	if a.n != b.n {
		return a.n < b.n
	}
	if a.dag != b.dag {
		return a.dag < b.dag
	}
	return a.label < b.label
}

// eachComputationShard enumerates the computations of exactly n nodes
// whose dag mask is ≡ shard (mod shards).
func eachComputationShard(n, numLocs, shard, shards int, fn func(c *computation.Computation) bool) {
	eachComputationShardIdx(n, numLocs, shard, shards, func(c *computation.Computation, _, _ uint64) bool {
		return fn(c)
	})
}

// eachComputationShardIdx is eachComputationShard passing each
// computation's (dag mask, labeling) enumeration indices for witness
// ranking.
func eachComputationShardIdx(n, numLocs, shard, shards int, fn func(c *computation.Computation, dagIdx, labelIdx uint64) bool) {
	ops := computation.AllOps(numLocs)
	var dagIdx uint64
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		idx := dagIdx
		dagIdx++
		if idx%uint64(shards) != uint64(shard) {
			return true
		}
		labels := make([]computation.Op, n)
		stopped := false
		var rec func(i int, labelIdx uint64) bool
		rec = func(i int, labelIdx uint64) bool {
			if i == n {
				c := computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs)
				if !fn(c, idx, labelIdx) {
					stopped = true
					return false
				}
				return true
			}
			for oi, op := range ops {
				labels[i] = op
				if !rec(i+1, labelIdx*uint64(len(ops))+uint64(oi)) {
					return false
				}
			}
			return true
		}
		rec(0, 0)
		return !stopped
	})
}

// mergeShards folds per-shard relations. The counts commute; each
// witness is the rank-minimal one across shards, which — since every
// shard keeps its own enumeration-first witness — is exactly the
// witness the serial sweep reports.
func mergeShards(results []Relation) Relation {
	var merged Relation
	for i := range results {
		r := &results[i]
		merged.AOnly += r.AOnly
		merged.BOnly += r.BOnly
		merged.Both += r.Both
		if r.WitnessAOnly != nil && (merged.WitnessAOnly == nil || r.rankAOnly.less(merged.rankAOnly)) {
			merged.WitnessAOnly = r.WitnessAOnly
			merged.rankAOnly = r.rankAOnly
		}
		if r.WitnessBOnly != nil && (merged.WitnessBOnly == nil || r.rankBOnly.less(merged.rankBOnly)) {
			merged.WitnessBOnly = r.WitnessBOnly
			merged.rankBOnly = r.rankBOnly
		}
	}
	return merged
}

// CompareParallel is Compare distributed over `workers` goroutines
// (defaults to GOMAXPROCS when workers <= 0). The result — witnesses
// included — is identical to Compare for every worker count.
func CompareParallel(a, b memmodel.Model, maxNodes, numLocs, workers int) Relation {
	r, _ := compareParallel(context.Background(), a, b, maxNodes, numLocs, workers, nil)
	return r
}

// CensusParallel counts, for each model, the universe pairs it
// contains, plus the universe total, sharded over workers (<= 0 means
// GOMAXPROCS). Pure counts commute, so the shard merge is trivially
// deterministic.
func CensusParallel(models []memmodel.Model, maxNodes, numLocs, workers int) ([]int, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type shardCount struct {
		counts []int
		total  int
	}
	results := make([]shardCount, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			counts := make([]int, len(models))
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					observer.Enumerate(c, func(o *observer.Observer) bool {
						total++
						for i, m := range models {
							if m.Contains(c, o) {
								counts[i]++
							}
						}
						return true
					})
					return true
				})
			}
			results[shard] = shardCount{counts: counts, total: total}
		}(w)
	}
	wg.Wait()
	out := make([]int, len(models))
	total := 0
	for _, r := range results {
		total += r.total
		for i, c := range r.counts {
			out[i] += c
		}
	}
	return out, total
}

// CountPairsParallel counts all (computation, observer) pairs of the
// universe using `workers` goroutines.
func CountPairsParallel(maxNodes, numLocs, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					total += observer.Count(c, 0)
					return true
				})
			}
			results[shard] = total
		}(w)
	}
	wg.Wait()
	total := 0
	for _, t := range results {
		total += t
	}
	return total
}

package enum

import (
	"runtime"
	"sync"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// This file parallelizes the universe sweeps. The universe of dags on n
// nodes is indexed by an edge bitmask, so it shards trivially:
// worker w handles the masks congruent to w modulo the worker count.
// Each worker owns private accumulators; results merge over a channel
// when the worker finishes (share memory by communicating).

// eachComputationShard enumerates the computations of exactly n nodes
// whose dag mask is ≡ shard (mod shards).
func eachComputationShard(n, numLocs, shard, shards int, fn func(c *computation.Computation) bool) {
	ops := computation.AllOps(numLocs)
	idx := 0
	dag.EachDagOnNodes(n, func(g *dag.Dag) bool {
		mine := idx%shards == shard
		idx++
		if !mine {
			return true
		}
		labels := make([]computation.Op, n)
		stopped := false
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				c := computation.MustFrom(g.Clone(), append([]computation.Op(nil), labels...), numLocs)
				if !fn(c) {
					stopped = true
					return false
				}
				return true
			}
			for _, op := range ops {
				labels[i] = op
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
		return !stopped
	})
}

// CompareParallel is Compare distributed over `workers` goroutines
// (defaults to GOMAXPROCS when workers <= 0). The result is identical
// to Compare up to which witness pair is reported (the lowest-shard
// witness wins, deterministically for a fixed worker count).
func CompareParallel(a, b memmodel.Model, maxNodes, numLocs, workers int) Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make(chan Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var r Relation
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					observer.Enumerate(c, func(o *observer.Observer) bool {
						inA := a.Contains(c, o)
						inB := b.Contains(c, o)
						switch {
						case inA && inB:
							r.Both++
						case inA:
							r.AOnly++
							if r.WitnessAOnly == nil {
								r.WitnessAOnly = &memmodel.Pair{C: c, O: o.Clone()}
							}
						case inB:
							r.BOnly++
							if r.WitnessBOnly == nil {
								r.WitnessBOnly = &memmodel.Pair{C: c, O: o.Clone()}
							}
						}
						return true
					})
					return true
				})
			}
			results <- r
		}(w)
	}
	wg.Wait()
	close(results)
	var merged Relation
	for r := range results {
		merged.AOnly += r.AOnly
		merged.BOnly += r.BOnly
		merged.Both += r.Both
		if merged.WitnessAOnly == nil {
			merged.WitnessAOnly = r.WitnessAOnly
		}
		if merged.WitnessBOnly == nil {
			merged.WitnessBOnly = r.WitnessBOnly
		}
	}
	return merged
}

// CountPairsParallel counts all (computation, observer) pairs of the
// universe using `workers` goroutines.
func CountPairsParallel(maxNodes, numLocs, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			total := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					total += observer.Count(c, 0)
					return true
				})
			}
			results <- total
		}(w)
	}
	wg.Wait()
	close(results)
	total := 0
	for t := range results {
		total += t
	}
	return total
}

package enum

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/search"
)

// This file adds governed variants of the universe sweeps: the same
// enumeration under a context.Context, stopping promptly on
// cancellation or deadline expiry and reporting ctx.Err() instead of a
// silently truncated count. The sweeps are exponential in the node
// bound, so a caller that exposes them (experiments, CLIs) needs a way
// to abandon a size that turned out too big.

// ctxPollMask throttles ctx polling to every 256 pairs: an Err() call
// is cheap but not free, and pair visits are nanoseconds each.
const ctxPollMask = 255

// EachPairCtx is EachPair under a context: enumeration stops early
// when ctx is cancelled (polled every few hundred pairs) and the error
// reports why. The count visited before the stop is returned either way.
func EachPairCtx(ctx context.Context, maxNodes, numLocs int, fn func(c *computation.Computation, o *observer.Observer) bool) (int, error) {
	var err error
	tick := 0
	total := EachPair(maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		tick++
		if tick&ctxPollMask == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		return fn(c, o)
	})
	return total, err
}

// CompareCtx is Compare under a context. On cancellation the partial
// Relation accumulated so far is returned along with ctx.Err(); it
// covers only a prefix of the universe and proves nothing.
func CompareCtx(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs int) (Relation, error) {
	var r Relation
	_, err := EachPairCtx(ctx, maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		compareInto(&r, a, b, c, o, 1, pairRank{})
		return true
	})
	return r, err
}

// CompareParallelCtx is CompareParallel under a context: every worker
// polls ctx and the sweep returns promptly (no leaked goroutines) with
// ctx.Err() when cancelled. The merged partial Relation is returned
// either way.
func CompareParallelCtx(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int) (Relation, error) {
	return compareParallel(ctx, a, b, maxNodes, numLocs, workers, nil)
}

// CompareParallelObs is CompareParallelCtx with observability: rec
// receives a RunStart carrying live gauges (pairs visited as States,
// shards finished as Done), one WorkerDone per shard, and a RunEnd
// whose Str summarizes the relation. A nil rec is exactly
// CompareParallelCtx.
func CompareParallelObs(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int, rec obs.Recorder) (Relation, error) {
	return compareParallel(ctx, a, b, maxNodes, numLocs, workers, rec)
}

// compareParallel is the shared body of every parallel compare: a
// sharded sweep with per-worker accumulators merged in shard order
// (see mergeShards for why order matters). Gauge publication rides the
// existing ctx-poll tick, so an attached recorder costs one atomic add
// per ctxPollMask+1 pairs and nothing per pair.
func compareParallel(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int, rec obs.Recorder) (Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var live *obs.Counters
	if rec != nil {
		live = &obs.Counters{}
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: workers, Live: live})
	}
	var cancelled atomic.Bool
	results := make([]Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			r := &results[shard]
			tick, published := 0, 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShardIdx(n, numLocs, shard, workers, func(c *computation.Computation, dagIdx, labelIdx uint64) bool {
					rank := pairRank{set: true, n: int32(n), dag: dagIdx, label: labelIdx}
					observer.Enumerate(c, func(o *observer.Observer) bool {
						tick++
						if tick&ctxPollMask == 0 {
							if ctx.Err() != nil {
								cancelled.Store(true)
							}
							if live != nil {
								live.States.Add(int64(tick - published))
								published = tick
							}
						}
						if cancelled.Load() {
							return false
						}
						compareInto(r, a, b, c, o, 1, rank)
						return true
					})
					return !cancelled.Load()
				})
				if cancelled.Load() {
					break
				}
			}
			if rec != nil {
				live.States.Add(int64(tick - published))
				live.Done.Add(1)
				obs.Emit(rec, obs.Event{Kind: obs.WorkerDone, Worker: shard,
					Stats: &obs.Stats{States: int64(tick), Workers: workers}})
			}
		}(w)
	}
	wg.Wait()
	merged := mergeShards(results)
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Str: relationOutcome(merged, ctx.Err()),
			Stats: &obs.Stats{States: live.States.Load(), Workers: workers}})
	}
	return merged, ctx.Err()
}

// relationOutcome spells a relation for RunEnd events, mirroring the
// wording the enumerate CLI prints.
func relationOutcome(r Relation, err error) string {
	switch {
	case err != nil:
		return "INCONCLUSIVE(" + search.ContextStopReason(err).String() + ")"
	case r.Equal():
		return "equal"
	case r.StrictlyStronger():
		return "A strictly stronger"
	case r.Incomparable():
		return "incomparable"
	default:
		return "B strictly stronger"
	}
}

// compareInto classifies one pair against both models, accumulating
// into r with the pair's class weight (1 for unreduced sweeps, the
// orbit size for reduced ones) — the shared body of Compare,
// CompareCtx, and the parallel and reduced variants. rank tags a
// newly-recorded witness with its global enumeration position for the
// shard merge; serial sweeps may pass the zero rank.
func compareInto(r *Relation, a, b memmodel.Model, c *computation.Computation, o *observer.Observer, weight int, rank pairRank) {
	inA := a.Contains(c, o)
	inB := b.Contains(c, o)
	switch {
	case inA && inB:
		r.Both += weight
	case inA:
		r.AOnly += weight
		if r.WitnessAOnly == nil {
			r.WitnessAOnly = &memmodel.Pair{C: c, O: o.Clone()}
			r.rankAOnly = rank
		}
	case inB:
		r.BOnly += weight
		if r.WitnessBOnly == nil {
			r.WitnessBOnly = &memmodel.Pair{C: c, O: o.Clone()}
			r.rankBOnly = rank
		}
	}
}

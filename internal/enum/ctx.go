package enum

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// This file adds governed variants of the universe sweeps: the same
// enumeration under a context.Context, stopping promptly on
// cancellation or deadline expiry and reporting ctx.Err() instead of a
// silently truncated count. The sweeps are exponential in the node
// bound, so a caller that exposes them (experiments, CLIs) needs a way
// to abandon a size that turned out too big.

// ctxPollMask throttles ctx polling to every 256 pairs: an Err() call
// is cheap but not free, and pair visits are nanoseconds each.
const ctxPollMask = 255

// EachPairCtx is EachPair under a context: enumeration stops early
// when ctx is cancelled (polled every few hundred pairs) and the error
// reports why. The count visited before the stop is returned either way.
func EachPairCtx(ctx context.Context, maxNodes, numLocs int, fn func(c *computation.Computation, o *observer.Observer) bool) (int, error) {
	var err error
	tick := 0
	total := EachPair(maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		tick++
		if tick&ctxPollMask == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		return fn(c, o)
	})
	return total, err
}

// CompareCtx is Compare under a context. On cancellation the partial
// Relation accumulated so far is returned along with ctx.Err(); it
// covers only a prefix of the universe and proves nothing.
func CompareCtx(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs int) (Relation, error) {
	var r Relation
	_, err := EachPairCtx(ctx, maxNodes, numLocs, func(c *computation.Computation, o *observer.Observer) bool {
		compareInto(&r, a, b, c, o)
		return true
	})
	return r, err
}

// CompareParallelCtx is CompareParallel under a context: every worker
// polls ctx and the sweep returns promptly (no leaked goroutines) with
// ctx.Err() when cancelled. The merged partial Relation is returned
// either way.
func CompareParallelCtx(ctx context.Context, a, b memmodel.Model, maxNodes, numLocs, workers int) (Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cancelled atomic.Bool
	results := make(chan Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var r Relation
			tick := 0
			for n := 0; n <= maxNodes; n++ {
				eachComputationShard(n, numLocs, shard, workers, func(c *computation.Computation) bool {
					observer.Enumerate(c, func(o *observer.Observer) bool {
						tick++
						if tick&ctxPollMask == 0 {
							if ctx.Err() != nil {
								cancelled.Store(true)
							}
						}
						if cancelled.Load() {
							return false
						}
						compareInto(&r, a, b, c, o)
						return true
					})
					return !cancelled.Load()
				})
				if cancelled.Load() {
					break
				}
			}
			results <- r
		}(w)
	}
	wg.Wait()
	close(results)
	var merged Relation
	for r := range results {
		merged.AOnly += r.AOnly
		merged.BOnly += r.BOnly
		merged.Both += r.Both
		if merged.WitnessAOnly == nil {
			merged.WitnessAOnly = r.WitnessAOnly
		}
		if merged.WitnessBOnly == nil {
			merged.WitnessBOnly = r.WitnessBOnly
		}
	}
	return merged, ctx.Err()
}

// compareInto classifies one pair against both models, accumulating
// into r — the shared body of Compare, CompareCtx, and the parallel
// variants.
func compareInto(r *Relation, a, b memmodel.Model, c *computation.Computation, o *observer.Observer) {
	inA := a.Contains(c, o)
	inB := b.Contains(c, o)
	switch {
	case inA && inB:
		r.Both++
	case inA:
		r.AOnly++
		if r.WitnessAOnly == nil {
			r.WitnessAOnly = &memmodel.Pair{C: c, O: o.Clone()}
		}
	case inB:
		r.BOnly++
		if r.WitnessBOnly == nil {
			r.WitnessBOnly = &memmodel.Pair{C: c, O: o.Clone()}
		}
	}
}

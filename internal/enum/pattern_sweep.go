package enum

// This file implements the single-pass reduced lattice sweep: instead
// of one universe sweep per Figure-1 edge (each deciding two models per
// pair), one sweep over canonical representatives classifies every pair
// into its 6-bit membership pattern with a pooled memmodel
// PatternDecider, and every edge's Relation falls out of the
// orbit-weighted pattern census. Witnesses stay byte-identical to the
// per-edge unreduced sweeps: within a shard the first pair on each side
// of an edge is kept, and the merge takes the globally rank-minimal one
// (same argument as reduced.go — the enumeration-first witness-bearing
// computation is necessarily canonical).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
)

// PatternEdge selects two membership-pattern bits to relate, as
// indices into memmodel.PatternModels() (= ModelNames order).
type PatternEdge struct{ A, B int }

// PatternSweep is the result of one reduced pattern sweep.
type PatternSweep struct {
	// Edges holds one Relation per requested PatternEdge, with counts
	// over the whole universe and witnesses equal to the ones the
	// unreduced per-edge Compare would report.
	Edges []Relation
	// Counts is the orbit-weighted census: Counts[p] is the number of
	// universe pairs whose membership pattern is exactly p (indexed by
	// the full 9-bit pattern; Figure-1-only censuses land in the low 64
	// entries).
	Counts [512]int64
	// Pairs and Computations are universe totals (orbit-weighted);
	// RepPairs and RepComputations count what was actually decided.
	Pairs, Computations       int64
	RepPairs, RepComputations int64
}

// Skipped returns the number of universe computations the sweep never
// materialized — the symmetry reduction's saving.
func (s PatternSweep) Skipped() int64 { return s.Computations - s.RepComputations }

type edgeWitness struct {
	aPair, bPair *memmodel.Pair
	aRank, bRank pairRank
}

// PatternSweepParallel classifies every pair of the universe up to
// maxNodes nodes into its Figure-1 membership pattern, deciding only
// canonical representatives (orbit-weighted), sharded over workers
// (<= 0 means GOMAXPROCS). Counts and witnesses are identical to
// running the unreduced CompareParallel once per edge, for every
// worker count. The recorder (nil = off) sees a RunStart with live
// gauges (decided pairs as States), one WorkerDone per shard, and a
// RunEnd; WorkerDone and RunEnd stats carry the symmetry gauges
// (Orbits = universe computations covered, SymmetrySkipped =
// computations never materialized).
func PatternSweepParallel(ctx context.Context, edges []PatternEdge, maxNodes, numLocs, workers int, rec obs.Recorder) (PatternSweep, error) {
	numModels := len(memmodel.ModelNames())
	for _, e := range edges {
		if e.A < 0 || e.A >= numModels || e.B < 0 || e.B >= numModels {
			panic(fmt.Sprintf("enum: pattern edge %+v out of range", e))
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var live *obs.Counters
	if rec != nil {
		live = &obs.Counters{}
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: workers, Live: live})
	}
	type shardRes struct {
		counts                  [512]int64
		pairs, members, decided int64
		comps, repComps         int64
		wits                    []edgeWitness
	}
	results := make([]shardRes, workers)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sr := &results[shard]
			sr.wits = make([]edgeWitness, len(edges))
			pd := memmodel.NewPatternDecider()
			tick, published := 0, 0
			var pubSkip int64
			for n := 0; n <= maxNodes; n++ {
				eachComputationReducedShard(n, numLocs, shard, workers, func(c *computation.Computation, orbit int64, dagIdx, labelIdx uint64) bool {
					pd.Reset(c)
					sr.repComps++
					sr.comps += orbit
					rank := pairRank{set: true, n: int32(n), dag: dagIdx, label: labelIdx}
					observer.Enumerate(c, func(o *observer.Observer) bool {
						tick++
						if tick&ctxPollMask == 0 {
							if ctx.Err() != nil {
								cancelled.Store(true)
							}
							if live != nil {
								live.States.Add(int64(tick - published))
								published = tick
								if skip := sr.comps - sr.repComps; skip != pubSkip {
									live.Skipped.Add(skip - pubSkip)
									pubSkip = skip
								}
							}
						}
						if cancelled.Load() {
							return false
						}
						p := pd.Pattern(o)
						sr.counts[p] += orbit
						sr.pairs += orbit
						for ei := range edges {
							ew := &sr.wits[ei]
							inA := p&(1<<uint(edges[ei].A)) != 0
							inB := p&(1<<uint(edges[ei].B)) != 0
							switch {
							case inA && !inB && ew.aPair == nil:
								ew.aPair = &memmodel.Pair{C: c, O: o.Clone()}
								ew.aRank = rank
							case inB && !inA && ew.bPair == nil:
								ew.bPair = &memmodel.Pair{C: c, O: o.Clone()}
								ew.bRank = rank
							}
						}
						return true
					})
					return !cancelled.Load()
				})
				if cancelled.Load() {
					break
				}
			}
			sr.decided = int64(tick)
			if rec != nil {
				live.States.Add(int64(tick - published))
				live.Skipped.Add(sr.comps - sr.repComps - pubSkip)
				live.Done.Add(1)
				obs.Emit(rec, obs.Event{Kind: obs.WorkerDone, Worker: shard,
					Stats: &obs.Stats{States: int64(tick), Orbits: sr.comps,
						SymmetrySkipped: sr.comps - sr.repComps, Workers: workers}})
			}
		}(w)
	}
	wg.Wait()

	var out PatternSweep
	out.Edges = make([]Relation, len(edges))
	wits := make([]edgeWitness, len(edges))
	for i := range results {
		sr := &results[i]
		for p, n := range sr.counts {
			out.Counts[p] += n
		}
		out.Pairs += sr.pairs
		out.Computations += sr.comps
		out.RepPairs += sr.decided
		out.RepComputations += sr.repComps
		for ei := range edges {
			ew, m := &sr.wits[ei], &wits[ei]
			if ew.aPair != nil && (m.aPair == nil || ew.aRank.less(m.aRank)) {
				m.aPair, m.aRank = ew.aPair, ew.aRank
			}
			if ew.bPair != nil && (m.bPair == nil || ew.bRank.less(m.bRank)) {
				m.bPair, m.bRank = ew.bPair, ew.bRank
			}
		}
	}
	for ei, e := range edges {
		r := &out.Edges[ei]
		for p, n := range out.Counts {
			inA := p&(1<<uint(e.A)) != 0
			inB := p&(1<<uint(e.B)) != 0
			switch {
			case inA && inB:
				r.Both += int(n)
			case inA:
				r.AOnly += int(n)
			case inB:
				r.BOnly += int(n)
			}
		}
		r.WitnessAOnly, r.rankAOnly = wits[ei].aPair, wits[ei].aRank
		r.WitnessBOnly, r.rankBOnly = wits[ei].bPair, wits[ei].bRank
	}
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd,
			Str: fmt.Sprintf("%d pairs via %d representatives", out.Pairs, out.RepPairs),
			Stats: &obs.Stats{States: live.States.Load(), Orbits: out.Computations,
				SymmetrySkipped: out.Skipped(), Workers: workers}})
	}
	return out, ctx.Err()
}

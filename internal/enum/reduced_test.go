package enum

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// TestReducedOrbitsCoverUniverse: Σ orbit over the canonical
// representatives equals the full enumeration count, per size, and the
// representative stream is a subsequence of the full stream.
func TestReducedOrbitsCoverUniverse(t *testing.T) {
	cases := []struct{ n, locs int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {2, 2}, {3, 2},
	}
	for _, tc := range cases {
		var full []string
		EachComputation(tc.n, tc.locs, func(c *computation.Computation) bool {
			full = append(full, c.String())
			return true
		})
		var members int64
		reps := 0
		cursor := 0
		EachComputationReduced(tc.n, tc.locs, func(c *computation.Computation, orbit int64) bool {
			if orbit < 1 {
				t.Fatalf("n=%d locs=%d: orbit %d < 1 for %v", tc.n, tc.locs, orbit, c)
			}
			members += orbit
			reps++
			key := c.String()
			for cursor < len(full) && full[cursor] != key {
				cursor++
			}
			if cursor == len(full) {
				t.Fatalf("n=%d locs=%d: representative %s not in enumeration order", tc.n, tc.locs, key)
			}
			cursor++
			return true
		})
		if members != int64(len(full)) {
			t.Errorf("n=%d locs=%d: orbits cover %d members, universe has %d (%d reps)",
				tc.n, tc.locs, members, len(full), reps)
		}
		if reps >= len(full) && tc.n > 1 {
			t.Errorf("n=%d locs=%d: no reduction (%d reps of %d members)", tc.n, tc.locs, reps, len(full))
		}
	}
}

// TestOrbitSoundness samples isomorphism-class members and checks each
// decides identically to its canonical representative under every
// Figure-1 model — the invariance assumption the reduction rests on.
func TestOrbitSoundness(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.NN, memmodel.NW, memmodel.WN, memmodel.WW}
	decide := func(c *computation.Computation) []int {
		var sig []int
		observer.Enumerate(c, func(o *observer.Observer) bool {
			bits := 0
			for i, m := range models {
				if m.Contains(c, o) {
					bits |= 1 << i
				}
			}
			sig = append(sig, bits)
			return true
		})
		return sig
	}
	// For every canonical representative at n=3, decide every member of
	// its class (images under all topological relabelings) and compare
	// the multiset of per-observer membership signatures.
	EachComputationReduced(3, 1, func(c *computation.Computation, orbit int64) bool {
		repSig := decide(c)
		repCount := make(map[int]int)
		for _, s := range repSig {
			repCount[s]++
		}
		n := c.NumNodes()
		lidx := make([]int32, n)
		for u := 0; u < n; u++ {
			lidx[u] = int32(opIndex(c.Op(dag.Node(u)), c.NumLocs()))
		}
		seen := map[string]bool{}
		eachTopoPerm(c.Dag(), func(perm []dag.Node) {
			g := dag.New(n)
			labels := make([]computation.Op, n)
			for pos, orig := range perm {
				labels[pos] = c.Op(orig)
			}
			for u := 0; u < n; u++ {
				for _, v := range c.Dag().Succs(dag.Node(u)) {
					g.MustAddEdge(posOf(perm, dag.Node(u)), posOf(perm, v))
				}
			}
			m := computation.MustFrom(g, labels, c.NumLocs())
			if seen[m.String()] {
				return
			}
			seen[m.String()] = true
			memCount := make(map[int]int)
			for _, s := range decide(m) {
				memCount[s]++
			}
			if len(memCount) != len(repCount) {
				t.Fatalf("member %v of class %v: signature multiset differs", m, c)
			}
			for k, v := range repCount {
				if memCount[k] != v {
					t.Fatalf("member %v of class %v: signature %b count %d != %d", m, c, k, memCount[k], v)
				}
			}
		})
		if int64(len(seen)) != orbit {
			t.Fatalf("class %v: %d distinct members, orbit says %d", c, len(seen), orbit)
		}
		return true
	})
}

func opIndex(op computation.Op, numLocs int) int {
	for i, o := range computation.AllOps(numLocs) {
		if o == op {
			return i
		}
	}
	panic("op not in palette")
}

func posOf(perm []dag.Node, orig dag.Node) dag.Node {
	for pos, o := range perm {
		if o == orig {
			return dag.Node(pos)
		}
	}
	panic("node not in perm")
}

// eachTopoPerm enumerates every topological relabeling perm
// (perm[position] = original node) of d.
func eachTopoPerm(d *dag.Dag, fn func(perm []dag.Node)) {
	n := d.NumNodes()
	perm := make([]dag.Node, n)
	placed := make([]bool, n)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			fn(perm)
			return
		}
		for u := 0; u < n; u++ {
			if placed[u] {
				continue
			}
			ok := true
			for _, p := range d.Preds(dag.Node(u)) {
				if !placed[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			perm[pos] = dag.Node(u)
			rec(pos + 1)
			placed[u] = false
		}
	}
	rec(0)
}

// TestCompareReducedMatchesCompare: the reduced sweep must reproduce
// the unreduced counts exactly and the witnesses byte-for-byte, serial
// and parallel, at every size both paths run.
func TestCompareReducedMatchesCompare(t *testing.T) {
	pairs := []struct{ a, b memmodel.Model }{
		{memmodel.SC, memmodel.LC},
		{memmodel.NW, memmodel.WN},
		{memmodel.LC, memmodel.NN},
	}
	maxNodes := 4
	if testing.Short() {
		maxNodes = 3
	}
	for _, mp := range pairs {
		for n := 2; n <= maxNodes; n++ {
			seq := Compare(mp.a, mp.b, n, 1)
			red := CompareReduced(mp.a, mp.b, n, 1)
			if red.AOnly != seq.AOnly || red.BOnly != seq.BOnly || red.Both != seq.Both {
				t.Fatalf("n=%d %T vs %T: reduced counts (%d,%d,%d) != unreduced (%d,%d,%d)",
					n, mp.a, mp.b, red.AOnly, red.BOnly, red.Both, seq.AOnly, seq.BOnly, seq.Both)
			}
			if witnessKey(red.WitnessAOnly) != witnessKey(seq.WitnessAOnly) ||
				witnessKey(red.WitnessBOnly) != witnessKey(seq.WitnessBOnly) {
				t.Fatalf("n=%d: reduced witnesses differ:\n  A: %s\n  vs %s\n  B: %s\n  vs %s", n,
					witnessKey(red.WitnessAOnly), witnessKey(seq.WitnessAOnly),
					witnessKey(red.WitnessBOnly), witnessKey(seq.WitnessBOnly))
			}
			for _, workers := range []int{2, 5} {
				par := CompareReducedParallel(mp.a, mp.b, n, 1, workers)
				if par.AOnly != seq.AOnly || par.BOnly != seq.BOnly || par.Both != seq.Both ||
					witnessKey(par.WitnessAOnly) != witnessKey(seq.WitnessAOnly) ||
					witnessKey(par.WitnessBOnly) != witnessKey(seq.WitnessBOnly) {
					t.Fatalf("n=%d workers=%d: reduced parallel relation differs from serial unreduced", n, workers)
				}
			}
		}
	}
}

// TestCompareParallelMatchesSerialWitnesses: with rank merging the
// unreduced parallel witnesses equal the serial ones for every worker
// count (not merely stable per count).
func TestCompareParallelMatchesSerialWitnesses(t *testing.T) {
	seq := Compare(memmodel.NW, memmodel.WN, 4, 1)
	for _, workers := range []int{1, 2, 3, 8} {
		par := CompareParallel(memmodel.NW, memmodel.WN, 4, 1, workers)
		if witnessKey(par.WitnessAOnly) != witnessKey(seq.WitnessAOnly) ||
			witnessKey(par.WitnessBOnly) != witnessKey(seq.WitnessBOnly) {
			t.Fatalf("workers=%d: parallel witnesses differ from serial:\n  A: %s vs %s\n  B: %s vs %s",
				workers, witnessKey(par.WitnessAOnly), witnessKey(seq.WitnessAOnly),
				witnessKey(par.WitnessBOnly), witnessKey(seq.WitnessBOnly))
		}
	}
}

// TestReducedCensusAndPairCounts: reduced census and pair totals equal
// the unreduced ones.
func TestReducedCensusAndPairCounts(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.NN, memmodel.WW}
	wantCounts, wantTotal := CensusParallel(models, 3, 1, 2)
	for _, workers := range []int{1, 3} {
		gotCounts, gotTotal := CensusReducedParallel(models, 3, 1, workers)
		if gotTotal != wantTotal {
			t.Fatalf("workers=%d: reduced census total %d != %d", workers, gotTotal, wantTotal)
		}
		for i := range models {
			if gotCounts[i] != wantCounts[i] {
				t.Fatalf("workers=%d model %d: reduced count %d != %d", workers, i, gotCounts[i], wantCounts[i])
			}
		}
		if got := CountPairsReducedParallel(3, 1, workers); got != wantTotal {
			t.Fatalf("workers=%d: CountPairsReducedParallel %d != %d", workers, got, wantTotal)
		}
	}
}

package search_test

import (
	"math/rand"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
	"repro/internal/search"
)

// Shard differential tests: running the frontier in contiguous
// RootLo/RootHi slices and merging by the lowest-witness-root rule
// must reproduce the unsharded run exactly — same verdict, same
// witness bytes. This is the property the fleet coordinator's
// byte-identity guarantee rests on.

// lwSpec mirrors memmodel's last-writer spec over all locations: node
// u may be placed only if each location's current last writer equals
// o's answer for u.
func lwSpec(c *computation.Computation, o *observer.Observer) search.Spec {
	n := c.NumNodes()
	numLocs := c.NumLocs()
	vals := make([]dag.Node, numLocs*n)
	return search.Spec{
		Dag:      c.Dag(),
		Closure:  c.Closure(),
		NumSlots: numLocs,
		WriteSlot: func(u dag.Node) int {
			if op := c.Op(u); op.Kind == computation.Write {
				return int(op.Loc)
			}
			return -1
		},
		Allowed: func(s int, u dag.Node) ([]dag.Node, bool) {
			i := s*n + int(u)
			vals[i] = o.Get(computation.Loc(s), u)
			return vals[i : i+1 : i+1], true
		},
	}
}

// mergeShards applies the fleet merge rule to per-shard results: the
// lowest witness root wins; otherwise all-exhausted means Out.
func mergeShards(results []search.Result) search.Result {
	best := -1
	for i, r := range results {
		if !r.Found {
			continue
		}
		if best == -1 || r.WitnessRoot < results[best].WitnessRoot {
			best = i
		}
	}
	if best >= 0 {
		return results[best]
	}
	merged := search.Result{Exhausted: true, WitnessRoot: -1}
	for _, r := range results {
		if !r.Exhausted {
			merged.Exhausted = false
			merged.Stop = r.Stop
			break
		}
	}
	return merged
}

// shardRuns runs spec once per contiguous shard of the given cut
// points (cuts = sorted interior boundaries over [0, total)).
func shardRuns(spec search.Spec, total int, cuts []int) []search.Result {
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, total)
	var out []search.Result
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, search.Run(spec, search.Options{
			Workers: 1, RootLo: bounds[i], RootHi: bounds[i+1],
		}))
	}
	return out
}

func sameOrder(a, b []dag.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickShardUnionMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	found, excluded, multiRoot := 0, 0, 0
	for trial := 0; trial < 50; trial++ {
		c := randomComputation(rng, 7, 2)
		for _, o := range sampleObservers(c, 8) {
			spec := lwSpec(c, o)
			full := search.Run(spec, search.Options{Workers: 1})
			total, triv := search.Frontier(spec)
			if triv != nil {
				// Statically resolved: the trivial result must match the
				// full run's verdict and witness.
				if triv.Found != full.Found || triv.Exhausted != full.Exhausted || !sameOrder(triv.Order, full.Order) {
					t.Fatalf("Frontier trivial %+v, full run %+v", triv, full)
				}
				continue
			}
			if total < 1 {
				t.Fatalf("Frontier returned %d with nil result", total)
			}
			if full.Stats.Roots != total {
				t.Fatalf("full run Roots = %d, Frontier says %d", full.Stats.Roots, total)
			}
			if total > 1 {
				multiRoot++
			}
			// Sweep split shapes: one shard per root, a random 2-way cut,
			// and (when possible) a random 3-way cut.
			var shapes [][]int
			perRoot := make([]int, 0, total-1)
			for i := 1; i < total; i++ {
				perRoot = append(perRoot, i)
			}
			shapes = append(shapes, perRoot)
			if total > 1 {
				shapes = append(shapes, []int{1 + rng.Intn(total-1)})
			}
			if total > 2 {
				a := 1 + rng.Intn(total-2)
				b := a + 1 + rng.Intn(total-a-1)
				shapes = append(shapes, []int{a, b})
			}
			for _, cuts := range shapes {
				results := shardRuns(spec, total, cuts)
				merged := mergeShards(results)
				if merged.Found != full.Found || merged.Exhausted != full.Exhausted {
					t.Fatalf("cuts %v: merged verdict %+v, full %+v", cuts, merged, full)
				}
				if full.Found {
					if !sameOrder(merged.Order, full.Order) {
						t.Fatalf("cuts %v: merged witness %v, full %v", cuts, merged.Order, full.Order)
					}
					if merged.WitnessRoot != full.WitnessRoot {
						t.Fatalf("cuts %v: merged WitnessRoot %d, full %d", cuts, merged.WitnessRoot, full.WitnessRoot)
					}
				}
				// Every shard reports the whole frontier in Roots.
				for i, r := range results {
					if r.Stats.Roots != total {
						t.Fatalf("cuts %v shard %d: Roots = %d, want %d", cuts, i, r.Stats.Roots, total)
					}
				}
			}
			if full.Found {
				found++
			} else {
				excluded++
			}
		}
	}
	if found == 0 || excluded == 0 || multiRoot == 0 {
		t.Fatalf("weak test: %d found, %d excluded, %d multi-root", found, excluded, multiRoot)
	}
}

func TestWitnessRootIndexesFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		c := randomComputation(rng, 7, 2)
		for _, o := range sampleObservers(c, 6) {
			spec := lwSpec(c, o)
			full := search.Run(spec, search.Options{Workers: 1})
			if !full.Found || len(full.Order) == 0 {
				continue
			}
			total, triv := search.Frontier(spec)
			if triv != nil {
				continue
			}
			if full.WitnessRoot < 0 || full.WitnessRoot >= total {
				t.Fatalf("WitnessRoot %d outside frontier [0, %d)", full.WitnessRoot, total)
			}
			// The single-root shard at WitnessRoot must reproduce the
			// witness; every shard strictly below it must be exhausted
			// without one (lowest-root rule).
			win := search.Run(spec, search.Options{
				Workers: 1, RootLo: full.WitnessRoot, RootHi: full.WitnessRoot + 1,
			})
			if !win.Found || !sameOrder(win.Order, full.Order) {
				t.Fatalf("winning shard %d: %+v, full witness %v", full.WitnessRoot, win, full.Order)
			}
			if win.WitnessRoot != full.WitnessRoot {
				t.Fatalf("winning shard reports WitnessRoot %d, want %d", win.WitnessRoot, full.WitnessRoot)
			}
			if full.WitnessRoot > 0 {
				below := search.Run(spec, search.Options{
					Workers: 1, RootLo: 0, RootHi: full.WitnessRoot,
				})
				if below.Found {
					t.Fatalf("shard below winning root %d found witness %v", full.WitnessRoot, below.Order)
				}
				if !below.Exhausted {
					t.Fatalf("shard below winning root not exhausted: %+v", below)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

func TestShardWorkerSweep(t *testing.T) {
	// A sharded run must give the same answer at every worker count.
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 20; trial++ {
		c := randomComputation(rng, 8, 2)
		for _, o := range sampleObservers(c, 4) {
			spec := lwSpec(c, o)
			total, triv := search.Frontier(spec)
			if triv != nil || total < 2 {
				continue
			}
			lo, hi := 1, total
			base := search.Run(spec, search.Options{Workers: 1, RootLo: lo, RootHi: hi})
			for _, w := range []int{2, 4} {
				got := search.Run(spec, search.Options{Workers: w, RootLo: lo, RootHi: hi})
				if got.Found != base.Found || !sameOrder(got.Order, base.Order) {
					t.Fatalf("workers=%d shard [%d,%d): %+v vs %+v", w, lo, hi, got, base)
				}
			}
		}
	}
}

func TestEmptyShardVacuouslyExhausted(t *testing.T) {
	g := dag.Grid(3, 3)
	spec := search.Spec{
		Dag:       g,
		NumSlots:  0,
		WriteSlot: func(dag.Node) int { return -1 },
		Allowed:   func(int, dag.Node) ([]dag.Node, bool) { return nil, false },
	}
	total, triv := search.Frontier(spec)
	if triv != nil || total != 1 {
		t.Fatalf("Frontier = %d, %+v", total, triv)
	}
	for _, opts := range []search.Options{
		{RootLo: 5, RootHi: 9}, // beyond the frontier
		{RootLo: 1, RootHi: 1}, // empty range
		{RootLo: 3, RootHi: 2}, // inverted
	} {
		res := search.Run(spec, opts)
		if res.Found || !res.Exhausted || res.WitnessRoot != -1 {
			t.Fatalf("empty shard %+v: %+v", opts, res)
		}
		if res.Stats.Roots != total {
			t.Fatalf("empty shard Roots = %d, want %d", res.Stats.Roots, total)
		}
	}
	// The defaults (0, 0) still run the whole frontier.
	res := search.Run(spec, search.Options{})
	if !res.Found || !res.Exhausted {
		t.Fatalf("default shard bounds: %+v", res)
	}
}

func TestFrontierTrivialCases(t *testing.T) {
	// Empty dag: trivially In with the empty order.
	empty := search.Spec{
		Dag:       dag.New(0),
		NumSlots:  0,
		WriteSlot: func(dag.Node) int { return -1 },
		Allowed:   func(int, dag.Node) ([]dag.Node, bool) { return nil, false },
	}
	if total, triv := search.Frontier(empty); total != 0 || triv == nil || !triv.Found {
		t.Fatalf("empty dag Frontier: %d, %+v", total, triv)
	}
	// Statically infeasible: read demands ⊥ but a writer precedes it.
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	infeasible := search.Spec{
		Dag:      g,
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if u == 0 {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			if u == 1 {
				return []dag.Node{dag.None}, true
			}
			return nil, false
		},
	}
	if total, triv := search.Frontier(infeasible); total != 0 || triv == nil || triv.Found || !triv.Exhausted {
		t.Fatalf("infeasible Frontier: %d, %+v", total, triv)
	}
}

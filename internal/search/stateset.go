package search

import "repro/internal/dag"

// This file implements the failed-state memo table: an open-addressing
// (linear probing) hash set over fixed-width keys of raw uint64 words.
// Keys never leave the table's flat backing array, so memoizing a
// state costs zero allocations in steady state — the legacy searchers
// built a fresh string per visited state.
//
// Key codec. A search state is the pair (placed set, last-writer
// vector). The key packs the placed set's bitset words first, then the
// last-writer vector with each entry widened to 32 bits (two entries
// per word, ⊥ = dag.None = -1 encoding as 0xFFFFFFFF). Both sections
// have fixed width, every entry is recoverable, and node ids are
// stored whole, so the codec is injective for any node count — unlike
// the legacy checker key, which truncated node ids to their low 16
// bits and could alias distinct states at ≥ 65536 nodes (and relied on
// byte-wise packing that shifted with parity at ≥ 256).

// encodeKey packs (placed, last) into buf, which must have keyWords
// space: placedWords words of placed-set bits, then ⌈numSlots/2⌉ words
// of 32-bit last-writer entries.
func encodeKey(buf []uint64, placedWords []uint64, last []dag.Node) []uint64 {
	n := copy(buf, placedWords)
	j := n
	for i := 0; i < len(last); i += 2 {
		w := uint64(uint32(last[i]))
		if i+1 < len(last) {
			w |= uint64(uint32(last[i+1])) << 32
		}
		buf[j] = w
		j++
	}
	return buf[:j]
}

// decodeKey is the codec inverse, used by the injectivity tests: it
// splits a key back into placed-set words and the last-writer vector.
func decodeKey(key []uint64, placedWords, numSlots int) ([]uint64, []dag.Node) {
	placed := append([]uint64(nil), key[:placedWords]...)
	last := make([]dag.Node, numSlots)
	for i := range last {
		w := key[placedWords+i/2]
		if i%2 == 1 {
			w >>= 32
		}
		last[i] = dag.Node(int32(uint32(w)))
	}
	return placed, last
}

// hashKey mixes the key words with a splitmix64-style finalizer per
// word. The table masks the result, so low-bit quality matters.
func hashKey(key []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range key {
		h ^= w
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		h *= 0xC4CEB9FE1A85EC53
	}
	return h ^ h>>29
}

// stateSet is the open-addressing set. Slot i occupies
// keys[i*kw : (i+1)*kw]; occ marks live slots (a key may legitimately
// be all zeros — the root state — so no in-band sentinel exists).
//
// A byte cap (maxBytes, 0 = unlimited) bounds the backing arrays. When
// growing past the cap the table freezes instead: lookups keep working
// on everything already stored, new inserts are dropped and counted as
// spills. Memoization only skips work the search would redo, so a
// frozen table degrades exactly — the answer never changes, only the
// state count.
type stateSet struct {
	kw       int
	keys     []uint64
	occ      []bool
	size     int
	grow     int // resize threshold (¾ load)
	maxBytes int64
	frozen   bool
	spilled  int64 // inserts dropped after freezing
}

const stateSetInitSlots = 1 << 6

func newStateSet(kw int) *stateSet { return newStateSetCapped(kw, 0) }

// newStateSetCapped builds a set whose backing arrays never exceed
// maxBytes bytes (0 = unlimited). The initial allocation shrinks to fit
// under tight caps.
func newStateSetCapped(kw int, maxBytes int64) *stateSet {
	if kw <= 0 {
		kw = 1
	}
	s := &stateSet{kw: kw, maxBytes: maxBytes}
	slots := stateSetInitSlots
	if maxBytes > 0 {
		for slots > 1 && s.bytesFor(slots) > maxBytes {
			slots /= 2
		}
	}
	s.alloc(slots)
	return s
}

func (s *stateSet) alloc(slots int) {
	s.keys = make([]uint64, slots*s.kw)
	s.occ = make([]bool, slots)
	s.grow = slots / 4 * 3
}

// bytesFor is the backing-array footprint of a table with `slots` slots.
func (s *stateSet) bytesFor(slots int) int64 {
	return int64(slots) * (int64(s.kw)*8 + 1)
}

// bytes is the current backing-array footprint.
func (s *stateSet) bytes() int64 { return s.bytesFor(len(s.occ)) }

func (s *stateSet) len() int { return s.size }

func equalKey(a, b []uint64) bool {
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// contains reports whether key is in the set.
func (s *stateSet) contains(key []uint64) bool {
	mask := len(s.occ) - 1
	i := int(hashKey(key)) & mask
	for s.occ[i] {
		if equalKey(key, s.keys[i*s.kw:(i+1)*s.kw]) {
			return true
		}
		i = (i + 1) & mask
	}
	return false
}

// insert adds key (copying it into the backing array) and reports
// whether it was newly added. Once the byte cap forbids growth the
// table freezes and further inserts are dropped (counted in spilled).
func (s *stateSet) insert(key []uint64) bool {
	if s.frozen {
		s.spilled++
		return false
	}
	if s.size >= s.grow {
		if s.maxBytes > 0 && s.bytesFor(len(s.occ)*2) > s.maxBytes {
			s.frozen = true
			s.spilled++
			return false
		}
		s.rehash()
	}
	mask := len(s.occ) - 1
	i := int(hashKey(key)) & mask
	for s.occ[i] {
		if equalKey(key, s.keys[i*s.kw:(i+1)*s.kw]) {
			return false
		}
		i = (i + 1) & mask
	}
	s.occ[i] = true
	copy(s.keys[i*s.kw:(i+1)*s.kw], key)
	s.size++
	return true
}

func (s *stateSet) rehash() {
	oldKeys, oldOcc := s.keys, s.occ
	s.alloc(len(oldOcc) * 2)
	mask := len(s.occ) - 1
	for i, live := range oldOcc {
		if !live {
			continue
		}
		key := oldKeys[i*s.kw : (i+1)*s.kw]
		j := int(hashKey(key)) & mask
		for s.occ[j] {
			j = (j + 1) & mask
		}
		s.occ[j] = true
		copy(s.keys[j*s.kw:(j+1)*s.kw], key)
	}
	// size is unchanged: every live key is reinserted exactly once.
}

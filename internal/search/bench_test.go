package search_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/trace"
)

// Benchmarks comparing the unified engine against the seed searcher it
// replaced. legacySearchLastWriter below is the pre-engine decision
// procedure, kept verbatim as a baseline: string-keyed memoization (one
// string allocation per search state), no transitive-closure pruning,
// serial only. Run with:
//
//	go test -bench=BenchmarkSearch -benchmem ./internal/search/
//
// The headline numbers live in benchmarks/latest.txt; see
// benchmarks/README.md for the regression workflow.

func legacySearchLastWriter(c *computation.Computation, o *observer.Observer, locs []computation.Loc) ([]dag.Node, bool) {
	n := c.NumNodes()
	if n == 0 {
		return []dag.Node{}, true
	}
	if !legacyPrecheck(c, o, locs) {
		return nil, false
	}

	g := c.Dag()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(dag.Node(u))
	}
	last := make([]dag.Node, len(locs))
	for i := range last {
		last[i] = observer.Bottom
	}
	placed := make([]bool, n)
	failed := make(map[string]struct{})

	keyBuf := make([]byte, 0, n+2*len(locs))
	stateKey := func() string {
		keyBuf = keyBuf[:0]
		var acc byte
		for u := 0; u < n; u++ {
			acc = acc << 1
			if placed[u] {
				acc |= 1
			}
			if u%8 == 7 {
				keyBuf = append(keyBuf, acc)
				acc = 0
			}
		}
		keyBuf = append(keyBuf, acc)
		for _, w := range last {
			keyBuf = append(keyBuf, byte(w), byte(int32(w)>>8))
		}
		return string(keyBuf)
	}

	order := make([]dag.Node, 0, n)

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		key := stateKey()
		if _, bad := failed[key]; bad {
			return false
		}
		for u := 0; u < n; u++ {
			if placed[u] || indeg[u] != 0 {
				continue
			}
			node := dag.Node(u)
			ok := true
			for i, l := range locs {
				want := last[i]
				if c.Op(node).IsWriteTo(l) {
					want = node
				}
				if o.Get(l, node) != want {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			order = append(order, node)
			saved := make([]dag.Node, 0, 2)
			for i, l := range locs {
				if c.Op(node).IsWriteTo(l) {
					saved = append(saved, dag.Node(i), last[i])
					last[i] = node
				}
			}
			for _, v := range g.Succs(node) {
				indeg[v]--
			}
			if rec(remaining - 1) {
				return true
			}
			for _, v := range g.Succs(node) {
				indeg[v]++
			}
			for i := 0; i < len(saved); i += 2 {
				last[saved[i]] = saved[i+1]
			}
			order = order[:len(order)-1]
			placed[u] = false
		}
		failed[key] = struct{}{}
		return false
	}
	if rec(n) {
		return order, true
	}
	return nil, false
}

func legacyPrecheck(c *computation.Computation, o *observer.Observer, locs []computation.Loc) bool {
	cl := c.Closure()
	for _, l := range locs {
		writers := c.Writers(l)
		for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
			w := o.Get(l, u)
			if cl.Precedes(u, w) {
				return false
			}
			for _, x := range writers {
				if x == w {
					continue
				}
				if cl.Precedes(w, x) && cl.PrecedesEq(x, u) {
					return false
				}
			}
		}
	}
	return true
}

func everyLoc(c *computation.Computation) []computation.Loc {
	locs := make([]computation.Loc, c.NumLocs())
	for l := range locs {
		locs[l] = computation.Loc(l)
	}
	return locs
}

// nonSCRing builds the adversarial negative instance: k two-node
// threads, thread i writing x_i then reading x_{(i+1) mod k} as ⊥.
// Each location serializes independently (the pair is in LC), but a
// single sort would need R_i before W_{i+1} for every i — a cycle with
// program order — so the pair is not in SC and any complete searcher
// must exhaust the state space to reject it.
func nonSCRing(k int) (*computation.Computation, *observer.Observer) {
	g := dag.New(2 * k)
	ops := make([]computation.Op, 2*k)
	for i := 0; i < k; i++ {
		g.MustAddEdge(dag.Node(2*i), dag.Node(2*i+1))
		ops[2*i] = computation.W(computation.Loc(i))
		ops[2*i+1] = computation.R(computation.Loc((i + 1) % k))
	}
	c := computation.MustFrom(g, ops, k)
	// Per-location witness sorts: identity order leaves every read of
	// x_j before W_j except the wrap-around reader of x_0, which gets a
	// rotated sort placing thread k-1 first.
	identity := make([]dag.Node, 2*k)
	for i := range identity {
		identity[i] = dag.Node(i)
	}
	rotated := make([]dag.Node, 0, 2*k)
	rotated = append(rotated, dag.Node(2*k-2), dag.Node(2*k-1))
	for i := 0; i < 2*k-2; i++ {
		rotated = append(rotated, dag.Node(i))
	}
	sorts := make([][]dag.Node, k)
	sorts[0] = rotated
	for l := 1; l < k; l++ {
		sorts[l] = identity
	}
	return c, observer.FromPerLocationSorts(c, sorts)
}

// reverseTopo returns the topological sort that greedily prefers the
// highest-numbered ready node — the worst case for a searcher that
// tries candidates in increasing order.
func reverseTopo(g *dag.Dag) []dag.Node {
	n := g.NumNodes()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(dag.Node(u))
	}
	order := make([]dag.Node, 0, n)
	for len(order) < n {
		for u := n - 1; u >= 0; u-- {
			if indeg[u] == 0 {
				indeg[u] = -1
				order = append(order, dag.Node(u))
				for _, v := range g.Succs(dag.Node(u)) {
					indeg[v]--
				}
				break
			}
		}
	}
	return order
}

// layeredSC builds a positive instance: a layered random dag whose
// observer is realized by the reverse-greedy sort, so an
// increasing-order searcher backtracks heavily before finding it.
func layeredSC(seed int64, layers, width int) (*computation.Computation, *observer.Observer) {
	rng := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(rng, layers, width, 0.3)
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		l := computation.Loc(rng.Intn(2))
		if rng.Intn(2) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, 2)
	return c, observer.FromLastWriter(c, reverseTopo(g))
}

func BenchmarkSearchSCRingNegative(b *testing.B) {
	for _, k := range []int{8, 12} {
		c, o := nonSCRing(k)
		locs := everyLoc(c)
		b.Run(fmt.Sprintf("legacy/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := legacySearchLastWriter(c, o, locs); ok {
					b.Fatal("ring instance must not be SC")
				}
			}
		})
		b.Run(fmt.Sprintf("engine/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, ok, stats := memmodel.SCWitnessOpts(c, o, memmodel.SearchOptions{Workers: 1})
				if ok {
					b.Fatal("ring instance must not be SC")
				}
				if i == 0 {
					b.ReportMetric(float64(stats.States), "states")
				}
			}
		})
	}
}

func BenchmarkSearchSCLayeredPositive(b *testing.B) {
	for _, shape := range []struct{ layers, width int }{{5, 4}, {6, 4}} {
		c, o := layeredSC(99, shape.layers, shape.width)
		locs := everyLoc(c)
		name := fmt.Sprintf("n=%d", c.NumNodes())
		b.Run("legacy/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := legacySearchLastWriter(c, o, locs); !ok {
					b.Fatal("last-writer observer must be SC")
				}
			}
		})
		b.Run("engine/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, ok, stats := memmodel.SCWitnessOpts(c, o, memmodel.SearchOptions{Workers: 1})
				if !ok {
					b.Fatal("last-writer observer must be SC")
				}
				if i == 0 {
					b.ReportMetric(float64(stats.States), "states")
				}
			}
		})
	}
}

// Ring sizes the seed searcher cannot decide in reasonable time; the
// engine's closure pruning collapses them. Engine only.
func BenchmarkSearchSCEngineLargeRing(b *testing.B) {
	for _, k := range []int{16, 24} {
		c, o := nonSCRing(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok, _ := memmodel.SCWitnessOpts(c, o, memmodel.SearchOptions{Workers: 1}); ok {
					b.Fatal("ring instance must not be SC")
				}
			}
		})
	}
}

// legacyVerifySC is the seed checker's constrained search, kept
// verbatim (minus the budget plumbing) as a baseline: string-keyed
// memoization, per-placement slice allocation, no closure pruning.
func legacyVerifySC(t *trace.Trace) bool {
	c := t.Comp
	n := c.NumNodes()
	cons := make([][][]dag.Node, c.NumLocs())
	for l := range cons {
		cons[l] = make([][]dag.Node, n)
	}
	for u := 0; u < n; u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		cands := t.Candidates(dag.Node(u))
		if len(cands) == 0 {
			return false
		}
		cons[op.Loc][u] = cands
	}
	allowed := func(l computation.Loc, u, w dag.Node) bool {
		set := cons[l][u]
		if set == nil {
			return true
		}
		for _, x := range set {
			if x == w {
				return true
			}
		}
		return false
	}
	locs := everyLoc(c)

	g := c.Dag()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(dag.Node(u))
	}
	last := make([]dag.Node, len(locs))
	for i := range last {
		last[i] = observer.Bottom
	}
	placed := make([]bool, n)
	failed := make(map[string]struct{})
	order := make([]dag.Node, 0, n)

	keyBuf := make([]byte, 0, n/8+1+2*len(locs))
	stateKey := func() string {
		keyBuf = keyBuf[:0]
		var acc byte
		for u := 0; u < n; u++ {
			acc = acc << 1
			if placed[u] {
				acc |= 1
			}
			if u%8 == 7 {
				keyBuf = append(keyBuf, acc)
				acc = 0
			}
		}
		keyBuf = append(keyBuf, acc)
		for _, w := range last {
			keyBuf = append(keyBuf, byte(w), byte(int32(w)>>8))
		}
		return string(keyBuf)
	}

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		key := stateKey()
		if _, bad := failed[key]; bad {
			return false
		}
		for u := 0; u < n; u++ {
			if placed[u] || indeg[u] != 0 {
				continue
			}
			node := dag.Node(u)
			ok := true
			for i, l := range locs {
				have := last[i]
				if c.Op(node).IsWriteTo(l) {
					have = node
				}
				if !allowed(l, node, have) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			order = append(order, node)
			var saved []dag.Node
			for i, l := range locs {
				if c.Op(node).IsWriteTo(l) {
					saved = append(saved, dag.Node(i), last[i])
					last[i] = node
				}
			}
			for _, v := range g.Succs(node) {
				indeg[v]--
			}
			if rec(remaining - 1) {
				return true
			}
			for _, v := range g.Succs(node) {
				indeg[v]++
			}
			for i := 0; i < len(saved); i += 2 {
				last[saved[i]] = saved[i+1]
			}
			order = order[:len(order)-1]
			placed[u] = false
		}
		failed[key] = struct{}{}
		return false
	}
	return rec(n)
}

// collisionTrace builds the memoization-heavy checker workload: a
// random computation whose writes carry only two distinct values, so
// every read has many candidate writers and the constrained search
// branches heavily before committing. The trace stays explainable (its
// values come from a real serialization), making this the positive,
// memo-dominated path.
func collisionTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	g := dag.Random(rng, n, 0.15)
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(2))
		if rng.Intn(3) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, 2)
	o := observer.FromLastWriter(c, reverseTopo(g))
	t := trace.FromObserver(c, o)
	for u := 0; u < n; u++ {
		if c.Op(dag.Node(u)).Kind == computation.Write {
			t.WriteVal[u] = trace.Value(1 + u%2)
		}
	}
	for u := 0; u < n; u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		w := o.Get(op.Loc, dag.Node(u))
		if w == observer.Bottom {
			t.ReadVal[u] = trace.Undefined
		} else {
			t.ReadVal[u] = t.WriteVal[w]
		}
	}
	return t
}

// Post-mortem checking on the collision workload: many candidate
// writers per read force deep, memoized backtracking in both the seed
// checker and the engine, so per-state costs (one string allocation per
// state in the seed, none in the engine) dominate.
func BenchmarkSearchCheckerSCCollision(b *testing.B) {
	for _, n := range []int{24, 36} {
		tr := collisionTrace(1234, n)
		b.Run(fmt.Sprintf("legacy/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !legacyVerifySC(tr) {
					b.Fatal("collision trace must verify")
				}
			}
		})
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, _, stats := checker.VerifySCOpts(tr, checker.SearchOptions{Workers: 1})
				if !res.OK {
					b.Fatal("collision trace must verify")
				}
				if i == 0 {
					b.ReportMetric(float64(stats.States), "states")
				}
			}
		})
	}
}

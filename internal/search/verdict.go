package search

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// This file defines the typed three-valued verdict shared by every
// decision procedure built on the engine. A decision is In (a witness
// exists), Out (exhaustive search excluded one), or Inconclusive with a
// machine-readable reason: the search was stopped by a resource
// governor before it could decide. The cmd tools map Inconclusive to a
// distinct exit code so scripts can retry with a larger budget instead
// of mistaking "ran out of time" for "not in the model".

// StopReason says why a search stopped before exhausting its space.
type StopReason uint8

const (
	// StopNone: the search was not stopped (it found a witness or
	// exhausted the space).
	StopNone StopReason = iota
	// StopBudget: the state budget (Options.Budget) ran out.
	StopBudget
	// StopDeadline: the context's deadline expired.
	StopDeadline
	// StopCancel: the context was cancelled explicitly.
	StopCancel
	// StopMemory: a memory governor aborted the search. The memo cap
	// (Options.MaxMemoBytes) never produces this — it degrades exactly
	// by dropping inserts — but external governors that watch process
	// memory report it.
	StopMemory
	// StopFleet: a fleet-verification run lost shards to replica
	// failures after retries were exhausted, so the merged verdict
	// covers only part of the root frontier. The engine never produces
	// this reason; only the internal/fleet merge layer does, and the
	// fleet report carries the exact shard-coverage counts behind it.
	StopFleet
	// StopOverrun: a streaming ingest outran its bounded ring buffer
	// and events were shed, so the checker saw only part of the trace.
	// The engine never produces this reason; only the internal/stream
	// overflow policy does. Stable violations detected before the
	// overrun remain definitive — only undecided models degrade.
	StopOverrun
)

// String returns the reason in the spelling used by the CLI verdicts.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopBudget:
		return "budget"
	case StopDeadline:
		return "deadline"
	case StopCancel:
		return "cancelled"
	case StopMemory:
		return "memory"
	case StopFleet:
		return "fleet"
	case StopOverrun:
		return "overrun"
	default:
		return "unknown"
	}
}

// ContextStopReason classifies a context error: DeadlineExceeded maps
// to StopDeadline, everything else to StopCancel. Callers that stop on
// ctx.Err() outside the engine (the polynomial LC decider, the Q-dag
// scan, the enumerators) use it to report the same reasons the engine
// does.
func ContextStopReason(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancel
}

// ctxStopReason is the engine-internal spelling.
func ctxStopReason(err error) StopReason { return ContextStopReason(err) }

// Verdict is a three-valued decision outcome.
type Verdict struct {
	// Decided reports a definitive answer; Member is then meaningful.
	Decided bool
	// Member reports membership (the "In" of In/Out) when Decided.
	Member bool
	// Reason says which governor stopped the search when !Decided.
	Reason StopReason
}

// The three verdict constructors.
func VerdictIn() Verdict                       { return Verdict{Decided: true, Member: true} }
func VerdictOut() Verdict                      { return Verdict{Decided: true} }
func VerdictInconclusive(r StopReason) Verdict { return Verdict{Reason: r} }

// In reports a definitive positive answer.
func (v Verdict) In() bool { return v.Decided && v.Member }

// Out reports a definitive negative answer.
func (v Verdict) Out() bool { return v.Decided && !v.Member }

// Inconclusive reports that no definitive answer was reached.
func (v Verdict) Inconclusive() bool { return !v.Decided }

// String renders "IN", "OUT", or "INCONCLUSIVE(reason)".
func (v Verdict) String() string {
	switch {
	case v.In():
		return "IN"
	case v.Out():
		return "OUT"
	default:
		return "INCONCLUSIVE(" + v.Reason.String() + ")"
	}
}

// ParseStopReason inverts StopReason.String. Unknown spellings are an
// error so wire decoding cannot silently invent a reason.
func ParseStopReason(s string) (StopReason, error) {
	for r := StopNone; r <= StopOverrun; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return StopNone, fmt.Errorf("search: unknown stop reason %q", s)
}

// verdictJSON is the stable wire form of a Verdict: the CLI spelling
// in "text" for humans and byte-exact comparisons, plus the structured
// fields so clients never have to parse the spelling back apart.
// Member is omitted unless decided; reason is omitted unless the
// verdict is inconclusive.
type verdictJSON struct {
	Text    string `json:"text"`
	Decided bool   `json:"decided"`
	Member  *bool  `json:"member,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// MarshalJSON renders the verdict in its wire form.
func (v Verdict) MarshalJSON() ([]byte, error) {
	j := verdictJSON{Text: v.String(), Decided: v.Decided}
	if v.Decided {
		m := v.Member
		j.Member = &m
	} else {
		j.Reason = v.Reason.String()
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var j verdictJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*v = Verdict{Decided: j.Decided}
	if j.Decided {
		if j.Member != nil {
			v.Member = *j.Member
		}
		return nil
	}
	r, err := ParseStopReason(j.Reason)
	if err != nil {
		return err
	}
	v.Reason = r
	return nil
}

// Verdict folds a Result into the three-valued form: Found is
// definitive membership, an exhausted search without a witness is
// definitive non-membership, and anything else is inconclusive with
// the recorded stop reason.
func (r Result) Verdict() Verdict {
	switch {
	case r.Found:
		return VerdictIn()
	case r.Exhausted:
		return VerdictOut()
	default:
		reason := r.Stop
		if reason == StopNone {
			reason = StopBudget // a non-exhausted search always has a stop; default conservatively
		}
		return VerdictInconclusive(reason)
	}
}

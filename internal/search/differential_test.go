package search_test

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/trace"
)

// Differential tests: on computations small enough to enumerate every
// topological sort, the engine-backed deciders (memmodel.SC/LC, the
// checker's VerifySC/VerifyLC) must agree exactly with brute-force
// enumeration, and the parallel engine (Workers > 1) must return the
// same answers — and the same witness order — as the serial one.

func randomComputation(rng *rand.Rand, maxNodes, maxLocs int) *computation.Computation {
	n := 1 + rng.Intn(maxNodes)
	locs := 1 + rng.Intn(maxLocs)
	g := dag.Random(rng, n, 0.35)
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		if rng.Intn(2) == 0 {
			ops[i] = computation.R(l)
		} else {
			ops[i] = computation.W(l)
		}
	}
	return computation.MustFrom(g, ops, locs)
}

// allSorts materializes every topological sort, giving up past cap so
// a dense instance cannot stall the suite.
func allSorts(g *dag.Dag, cap int) ([][]dag.Node, bool) {
	var sorts [][]dag.Node
	complete := true
	g.EachTopoSort(func(order []dag.Node) bool {
		sorts = append(sorts, append([]dag.Node(nil), order...))
		if len(sorts) >= cap {
			complete = false
			return false
		}
		return true
	})
	return sorts, complete
}

// sampleObservers collects up to k valid observer functions of c.
func sampleObservers(c *computation.Computation, k int) []*observer.Observer {
	var os []*observer.Observer
	observer.Enumerate(c, func(o *observer.Observer) bool {
		os = append(os, o.Clone())
		return len(os) < k
	})
	return os
}

func bruteSC(c *computation.Computation, o *observer.Observer, sorts [][]dag.Node) bool {
	for _, order := range sorts {
		if observer.FromLastWriter(c, order).Equal(o) {
			return true
		}
	}
	return false
}

func bruteLC(c *computation.Computation, o *observer.Observer, sorts [][]dag.Node) bool {
	for l := 0; l < c.NumLocs(); l++ {
		ok := false
		for _, order := range sorts {
			row := observer.LastWriterForLoc(c, order, computation.Loc(l))
			match := true
			for u := range row {
				if row[u] != o.Get(computation.Loc(l), dag.Node(u)) {
					match = false
					break
				}
			}
			if match {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func orderExplainsLoc(t *trace.Trace, order []dag.Node, l computation.Loc) bool {
	c := t.Comp
	row := observer.LastWriterForLoc(c, order, l)
	for u := 0; u < c.NumNodes(); u++ {
		if !c.Op(dag.Node(u)).IsReadOf(l) {
			continue
		}
		v := trace.Undefined
		if row[u] != observer.Bottom {
			v = t.WriteVal[row[u]]
		}
		if v != t.ReadVal[u] {
			return false
		}
	}
	return true
}

func bruteTraceSC(t *trace.Trace, sorts [][]dag.Node) bool {
	for _, order := range sorts {
		if checker.OrderExplains(t, order) {
			return true
		}
	}
	return false
}

func bruteTraceLC(t *trace.Trace, sorts [][]dag.Node) bool {
	for l := 0; l < t.Comp.NumLocs(); l++ {
		ok := false
		for _, order := range sorts {
			if orderExplainsLoc(t, order, computation.Loc(l)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestQuickEngineSCAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	positives, negatives := 0, 0
	for trial := 0; trial < 60; trial++ {
		c := randomComputation(rng, 6, 2)
		sorts, complete := allSorts(c.Dag(), 4000)
		if !complete {
			continue
		}
		for _, o := range sampleObservers(c, 20) {
			want := bruteSC(c, o, sorts)
			order, got := memmodel.SCWitness(c, o)
			if got != want {
				t.Fatalf("SC(%v, %v) = %v, brute force says %v", c, o, got, want)
			}
			if got {
				positives++
				if !observer.FromLastWriter(c, order).Equal(o) {
					t.Fatalf("SC witness %v does not realize the observer", order)
				}
			} else {
				negatives++
			}
		}
	}
	if positives == 0 || negatives == 0 {
		t.Fatalf("weak test: %d positives, %d negatives", positives, negatives)
	}
}

func TestQuickEngineLCAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	positives, negatives := 0, 0
	for trial := 0; trial < 40; trial++ {
		c := randomComputation(rng, 6, 2)
		sorts, complete := allSorts(c.Dag(), 4000)
		if !complete {
			continue
		}
		for _, o := range sampleObservers(c, 15) {
			want := bruteLC(c, o, sorts)
			if got := memmodel.LC.Contains(c, o); got != want {
				t.Fatalf("LC(%v, %v) = %v, brute force says %v", c, o, got, want)
			}
			if want {
				positives++
			} else {
				negatives++
			}
		}
	}
	if positives == 0 || negatives == 0 {
		t.Fatalf("weak test: %d positives, %d negatives", positives, negatives)
	}
}

func TestQuickCheckerAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	scPos, scNeg := 0, 0
	for trial := 0; trial < 50; trial++ {
		c := randomComputation(rng, 6, 2)
		sorts, complete := allSorts(c.Dag(), 4000)
		if !complete {
			continue
		}
		for _, o := range sampleObservers(c, 12) {
			tr := trace.FromObserver(c, o)
			if tr.Validate() != nil {
				continue
			}
			wantSC := bruteTraceSC(tr, sorts)
			resSC := checker.VerifySC(tr)
			if resSC.OK != wantSC {
				t.Fatalf("VerifySC(%v) = %v, brute force says %v", tr, resSC.OK, wantSC)
			}
			if resSC.OK {
				scPos++
				if !memmodel.SC.Contains(c, resSC.Observer) {
					t.Fatalf("VerifySC witness observer not in SC")
				}
			} else {
				scNeg++
			}
			wantLC := bruteTraceLC(tr, sorts)
			resLC := checker.VerifyLC(tr)
			if resLC.OK != wantLC {
				t.Fatalf("VerifyLC(%v) = %v, brute force says %v", tr, resLC.OK, wantLC)
			}
			if resLC.OK && !memmodel.LC.Contains(c, resLC.Observer) {
				t.Fatalf("VerifyLC witness observer not in LC")
			}
		}
	}
	if scPos == 0 || scNeg == 0 {
		t.Fatalf("weak test: %d SC positives, %d SC negatives", scPos, scNeg)
	}
}

// Parallel search must agree with serial search bit-for-bit: the same
// decision and, on success, the same witness order (the engine commits
// to the lexicographically lowest admissible root).
func TestQuickParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		c := randomComputation(rng, 7, 2)
		for _, o := range sampleObservers(c, 10) {
			serialOrder, serialOK, _ := memmodel.SCWitnessOpts(c, o, memmodel.SearchOptions{Workers: 1})
			for _, w := range []int{2, 4} {
				parOrder, parOK, _ := memmodel.SCWitnessOpts(c, o, memmodel.SearchOptions{Workers: w})
				if parOK != serialOK {
					t.Fatalf("workers=%d decision %v, serial %v on (%v, %v)", w, parOK, serialOK, c, o)
				}
				if !parOK {
					continue
				}
				if len(parOrder) != len(serialOrder) {
					t.Fatalf("workers=%d witness length %d, serial %d", w, len(parOrder), len(serialOrder))
				}
				for i := range parOrder {
					if parOrder[i] != serialOrder[i] {
						t.Fatalf("workers=%d witness %v, serial %v", w, parOrder, serialOrder)
					}
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

// The checker's decisions must also be worker-independent.
func TestQuickCheckerParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 30; trial++ {
		c := randomComputation(rng, 7, 2)
		for _, o := range sampleObservers(c, 6) {
			tr := trace.FromObserver(c, o)
			if tr.Validate() != nil {
				continue
			}
			serial, _, _ := checker.VerifySCOpts(tr, checker.SearchOptions{Workers: 1})
			par, _, _ := checker.VerifySCOpts(tr, checker.SearchOptions{Workers: 4})
			if serial.OK != par.OK {
				t.Fatalf("VerifySC workers=4 %v, workers=1 %v on %v", par.OK, serial.OK, tr)
			}
			serialLC, _, _ := checker.VerifyLCOpts(tr, checker.SearchOptions{Workers: 1})
			parLC, _, _ := checker.VerifyLCOpts(tr, checker.SearchOptions{Workers: 4})
			if serialLC.OK != parLC.OK {
				t.Fatalf("VerifyLC workers=4 %v, workers=1 %v on %v", parLC.OK, serialLC.OK, tr)
			}
		}
	}
}

package search

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// The engine's correctness hinges on the state-key codec being
// injective: two distinct (placed set, last-writer vector) states must
// never share a key, or a live state could be rejected by another
// state's memoized failure. The legacy checker key truncated node ids
// to their low 16 bits, so states with last writers 1 and 65537
// aliased; these tests pin the fix, including node ids ≥ 256 (byte
// boundary of the old packing) and ≥ 65536 (the truncation bug).

func keyWordsFor(n, slots int) (placedWords, keyWords int) {
	placedWords = (n + 63) / 64
	return placedWords, placedWords + (slots+1)/2
}

func encodeState(t *testing.T, n int, placed []int, last []dag.Node) []uint64 {
	t.Helper()
	pw, kw := keyWordsFor(n, len(last))
	words := make([]uint64, pw)
	for _, u := range placed {
		if u < 0 || u >= n {
			t.Fatalf("bad test state: node %d of %d", u, n)
		}
		words[u/64] |= 1 << uint(u%64)
	}
	buf := make([]uint64, kw)
	return append([]uint64(nil), encodeKey(buf, words, last)...)
}

func TestKeyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, slots int }{
		{1, 0}, {5, 1}, {64, 2}, {65, 3}, {300, 1}, {300, 4}, {70000, 3},
	} {
		pw, _ := keyWordsFor(tc.n, tc.slots)
		for trial := 0; trial < 20; trial++ {
			var placed []int
			for u := 0; u < tc.n; u++ {
				if rng.Intn(4) == 0 {
					placed = append(placed, u)
				}
			}
			last := make([]dag.Node, tc.slots)
			for i := range last {
				last[i] = dag.Node(rng.Intn(tc.n+1) - 1) // includes ⊥ = -1
			}
			key := encodeState(t, tc.n, placed, last)
			gotWords, gotLast := decodeKey(key, pw, tc.slots)
			wantWords := make([]uint64, pw)
			for _, u := range placed {
				wantWords[u/64] |= 1 << uint(u%64)
			}
			for i := range wantWords {
				if gotWords[i] != wantWords[i] {
					t.Fatalf("n=%d slots=%d: placed word %d = %#x, want %#x", tc.n, tc.slots, i, gotWords[i], wantWords[i])
				}
			}
			for i := range last {
				if gotLast[i] != last[i] {
					t.Fatalf("n=%d slots=%d: last[%d] = %d, want %d", tc.n, tc.slots, i, gotLast[i], last[i])
				}
			}
		}
	}
}

// Distinct states must get distinct keys. The table drives exactly the
// aliasing classes of the legacy codecs: low-byte-equal node ids
// (≥ 256) and low-16-bit-equal node ids (≥ 65536), in both the placed
// set and the last-writer vector, plus ⊥-versus-node confusion.
func TestKeyCodecInjectivity(t *testing.T) {
	type state struct {
		placed []int
		last   []dag.Node
	}
	cases := []struct {
		name string
		n    int
		a, b state
	}{
		{"placed-vs-empty", 10, state{[]int{3}, []dag.Node{-1}}, state{nil, []dag.Node{-1}}},
		{"last-bottom-vs-zero", 10, state{[]int{0}, []dag.Node{-1}}, state{[]int{0}, []dag.Node{0}}},
		{"last-differs-one-slot", 10, state{[]int{0, 1}, []dag.Node{0, 1}}, state{[]int{0, 1}, []dag.Node{0, 2}}},
		{"byte-boundary-256", 300, state{[]int{299}, []dag.Node{1}}, state{[]int{299}, []dag.Node{257}}},
		{"placed-256-vs-0", 300, state{[]int{0}, []dag.Node{-1}}, state{[]int{256}, []dag.Node{-1}}},
		{"truncation-65536", 70000, state{[]int{9}, []dag.Node{1}}, state{[]int{9}, []dag.Node{65537}}},
		{"truncation-65536-bottom", 70000, state{[]int{9}, []dag.Node{65535}}, state{[]int{9}, []dag.Node{-1}}},
		{"placed-65536-vs-0", 70000, state{[]int{0}, []dag.Node{0}}, state{[]int{65536}, []dag.Node{0}}},
		{"odd-even-slot-packing", 50, state{nil, []dag.Node{1, 2, 3}}, state{nil, []dag.Node{1, 3, 2}}},
	}
	for _, tc := range cases {
		ka := encodeState(t, tc.n, tc.a.placed, tc.a.last)
		kb := encodeState(t, tc.n, tc.b.placed, tc.b.last)
		if equalKey(ka, kb) {
			t.Errorf("%s: distinct states share key %#x", tc.name, ka)
		}
	}
}

// Exhaustive small-space injectivity: every (placed ⊆ {0..n-1}, last ∈
// ({⊥} ∪ nodes)^slots) state maps to a unique key.
func TestKeyCodecInjectivityExhaustive(t *testing.T) {
	const n, slots = 6, 2
	seen := map[[2]uint64][]int{}
	id := 0
	for mask := 0; mask < 1<<n; mask++ {
		var placed []int
		for u := 0; u < n; u++ {
			if mask&(1<<u) != 0 {
				placed = append(placed, u)
			}
		}
		for l0 := -1; l0 < n; l0++ {
			for l1 := -1; l1 < n; l1++ {
				key := encodeState(t, n, placed, []dag.Node{dag.Node(l0), dag.Node(l1)})
				if len(key) != 2 {
					t.Fatalf("key length %d, want 2", len(key))
				}
				k := [2]uint64{key[0], key[1]}
				if prev, dup := seen[k]; dup {
					t.Fatalf("states %v and %d share key %#x", prev, id, k)
				}
				seen[k] = []int{id}
				id++
			}
		}
	}
	if want := (1 << n) * (n + 1) * (n + 1); len(seen) != want {
		t.Fatalf("saw %d keys, want %d", len(seen), want)
	}
}

func TestStateSetBasics(t *testing.T) {
	s := newStateSet(3)
	if s.contains([]uint64{0, 0, 0}) {
		t.Fatal("empty set claims the zero key")
	}
	if !s.insert([]uint64{0, 0, 0}) {
		t.Fatal("first insert of zero key not new")
	}
	if !s.contains([]uint64{0, 0, 0}) {
		t.Fatal("zero key lost")
	}
	if s.insert([]uint64{0, 0, 0}) {
		t.Fatal("duplicate insert claimed new")
	}
	if s.len() != 1 {
		t.Fatalf("len = %d, want 1", s.len())
	}
}

// Rehash stress: force many growths and verify the set against a map.
func TestStateSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const kw = 2
	s := newStateSet(kw)
	ref := map[[kw]uint64]bool{}
	for i := 0; i < 20000; i++ {
		// Small value range forces frequent duplicates.
		k := [kw]uint64{uint64(rng.Intn(4000)), uint64(rng.Intn(3))}
		key := k[:]
		wantNew := !ref[k]
		if got := s.insert(key); got != wantNew {
			t.Fatalf("insert %v: new=%v, want %v", key, got, wantNew)
		}
		ref[k] = true
	}
	if s.len() != len(ref) {
		t.Fatalf("len = %d, want %d", s.len(), len(ref))
	}
	for k := range ref {
		if !s.contains(k[:]) {
			t.Fatalf("key %v lost", k)
		}
	}
	for i := 0; i < 2000; i++ {
		k := [kw]uint64{uint64(rng.Intn(10000)), uint64(rng.Intn(3))}
		if s.contains(k[:]) != ref[k] {
			t.Fatalf("contains %v disagrees with reference", k)
		}
	}
}

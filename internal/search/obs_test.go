package search_test

import (
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/search"
)

// The engine's event stream contract: one RunStart/RunEnd pair per
// decision, a WorkerDone per worker whose summed counters equal the
// result's stats, root lifecycle events on the parallel path, and a
// GovernorFired exactly once when a budget stops the run.

type eventLog struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (l *eventLog) Record(ev obs.Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) byKind(k obs.Kind) []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obs.Event
	for _, ev := range l.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestRunEmitsRunEvents(t *testing.T) {
	for _, w := range workersSweep() {
		log := &eventLog{}
		g := dag.Grid(3, 3)
		res := search.Run(unconstrainedSpec(g), search.Options{Workers: w, Recorder: log})
		if !res.Found {
			t.Fatalf("workers=%d: %+v", w, res)
		}
		starts := log.byKind(obs.RunStart)
		ends := log.byKind(obs.RunEnd)
		if len(starts) != 1 || len(ends) != 1 {
			t.Fatalf("workers=%d: %d starts, %d ends", w, len(starts), len(ends))
		}
		if starts[0].Total != res.Stats.Roots || starts[0].Live == nil {
			t.Errorf("workers=%d: RunStart %+v", w, starts[0])
		}
		if ends[0].Str != "IN" || ends[0].Stats == nil {
			t.Fatalf("workers=%d: RunEnd %+v", w, ends[0])
		}
		if ends[0].Stats.States != res.Stats.States || ends[0].Stats.Workers != res.Stats.Workers {
			t.Errorf("workers=%d: RunEnd stats %+v vs result %+v", w, *ends[0].Stats, res.Stats)
		}

		// Per-worker flushes must sum to the run totals.
		dones := log.byKind(obs.WorkerDone)
		if len(dones) != res.Stats.Workers {
			t.Fatalf("workers=%d: %d WorkerDone events for %d workers", w, len(dones), res.Stats.Workers)
		}
		var states, memoized int64
		for _, ev := range dones {
			states += ev.Stats.States
			memoized += ev.Stats.Memoized
		}
		if states != res.Stats.States || memoized != res.Stats.Memoized {
			t.Errorf("workers=%d: WorkerDone sums states=%d memoized=%d, want %d/%d",
				w, states, memoized, res.Stats.States, res.Stats.Memoized)
		}
	}
}

func TestRunParallelEmitsRootEvents(t *testing.T) {
	log := &eventLog{}
	// 30 isolated nodes: every node is a root, so the parallel splitter
	// engages with plenty of roots to claim and (after the lowest root
	// wins instantly) to skip.
	g := dag.New(30)
	res := search.Run(unconstrainedSpec(g), search.Options{Workers: 4, Recorder: log})
	if !res.Found {
		t.Fatalf("%+v", res)
	}
	claimed := log.byKind(obs.RootClaimed)
	finished := log.byKind(obs.RootFinished)
	skipped := log.byKind(obs.RootSkipped)
	if len(claimed) == 0 || len(claimed) != len(finished) {
		t.Fatalf("%d claimed, %d finished", len(claimed), len(finished))
	}
	if len(claimed)+len(skipped) > res.Stats.Roots {
		t.Fatalf("claimed %d + skipped %d exceeds %d roots", len(claimed), len(skipped), res.Stats.Roots)
	}
	var found int
	for _, ev := range finished {
		switch ev.Str {
		case "found":
			found++
		case "exhausted", "aborted":
		default:
			t.Fatalf("RootFinished outcome %q", ev.Str)
		}
	}
	if found == 0 {
		t.Fatal("witness found but no RootFinished(found) event")
	}
}

func TestBudgetEmitsGovernorOnce(t *testing.T) {
	for _, w := range []int{1, 4} {
		log := &eventLog{}
		// The unsat instance needs ~33k states to exhaust; a budget of
		// 100 (plus bounded parallel overdraw) stops it first.
		res := search.Run(unsatTwoReaderSpec(12), search.Options{Workers: w, Budget: 100, Recorder: log})
		if res.Found || res.Exhausted {
			t.Fatalf("workers=%d: budget 100 did not stop the run: %+v", w, res)
		}
		governors := log.byKind(obs.GovernorFired)
		if len(governors) != 1 {
			t.Fatalf("workers=%d: %d GovernorFired events", w, len(governors))
		}
		if governors[0].Str != "budget" {
			t.Fatalf("workers=%d: governor %q", w, governors[0].Str)
		}
		ends := log.byKind(obs.RunEnd)
		if len(ends) != 1 || ends[0].Str != "INCONCLUSIVE(budget)" {
			t.Fatalf("workers=%d: RunEnd %+v", w, ends)
		}
	}
}

func TestTrivialRunsStillEmit(t *testing.T) {
	// Statically unsat: the engine never starts, but a recorded session
	// still gets its RunStart/RunEnd pair.
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	spec := search.Spec{
		Dag:      g,
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if u == 0 {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			if u == 1 {
				return []dag.Node{dag.None}, true
			}
			return nil, false
		},
	}
	log := &eventLog{}
	res := search.Run(spec, search.Options{Recorder: log})
	if res.Found || !res.Exhausted {
		t.Fatalf("%+v", res)
	}
	starts, ends := log.byKind(obs.RunStart), log.byKind(obs.RunEnd)
	if len(starts) != 1 || len(ends) != 1 {
		t.Fatalf("%d starts, %d ends", len(starts), len(ends))
	}
	if ends[0].Str != "OUT" {
		t.Fatalf("RunEnd %+v", ends[0])
	}
}

func TestMemoFreezeEvent(t *testing.T) {
	log := &eventLog{}
	// Exhausting the unsat instance wants ~270 KiB of memo; a 4 KiB cap
	// must freeze the table and report it exactly once per worker.
	res := search.Run(unsatTwoReaderSpec(12), search.Options{Workers: 1, MaxMemoBytes: 4096, Recorder: log})
	if res.Stats.MemoSpilled == 0 {
		t.Fatalf("memo never spilled under a 4 KiB cap: %+v", res.Stats)
	}
	if got := len(log.byKind(obs.MemoFreeze)); got != 1 {
		t.Fatalf("%d MemoFreeze events for one worker", got)
	}
}

// unsatTwoReaderSpec builds k parallel writers to one slot feeding two
// chained readers that demand different last writers with no write in
// between: unsatisfiable, but only an exhaustive sweep over the writer
// interleavings proves it (~33k states at k=12), so small budgets and
// memo caps trip governors deterministically.
func unsatTwoReaderSpec(k int) search.Spec {
	g := dag.New(k + 2)
	r1, r2 := dag.Node(k), dag.Node(k+1)
	for w := 0; w < k; w++ {
		g.MustAddEdge(dag.Node(w), r1)
	}
	g.MustAddEdge(r1, r2)
	return search.Spec{
		Dag:      g,
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if int(u) < k {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			switch u {
			case r1:
				return []dag.Node{0}, true
			case r2:
				return []dag.Node{1}, true
			}
			return nil, false
		},
	}
}

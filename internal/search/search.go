// Package search implements the pruned, memoized backtracking search
// over topological sorts that every decision procedure in this repo
// bottoms out in: the SC and LC model deciders (Definitions 17–18 via
// last-writer functions, Definition 13) and the post-mortem trace
// checker (the computation-centric analogue of Gibbons & Korach's SC
// verification, NP-complete in general).
//
// A search problem (Spec) asks: is there a topological sort T of a dag
// such that, for every tracked location slot and every constrained
// node u, the last writer W_T(slot, u) lies in u's allowed candidate
// set? The engine answers it with three optimizations over the naive
// search the model deciders and the checker used to duplicate:
//
//   - Memoization of failed states keyed by the packed bitset pair
//     (placed set, last-writer vector), stored in a custom
//     open-addressing hash set of raw uint64 words. No per-state
//     string allocation, and the key codec is injective for any node
//     count (the legacy checker key truncated node ids to 16 bits).
//
//   - Transitive-closure feasibility pruning: a partial sort is
//     rejected as soon as some unplaced constrained node's candidates
//     are all dead — a candidate writer is dead once it has been
//     placed and overwritten, or once it is placed and some other
//     writer that must precede the constrained node (by the closure)
//     is still unplaced and would overwrite it. Candidate sets are
//     also filtered statically against the closure before the search
//     starts (a candidate the node precedes, or with another writer
//     forced strictly between it and the node, can never be observed).
//
//   - Sleep-set pruning (the partial-order reduction of Godefroid's
//     sleep sets, adapted to constrained topological sorts): two
//     placements commute when the closure orders neither before the
//     other, they write different slots, and neither writes a slot the
//     other's placement constraints read. After a child u's subtree is
//     exhausted without a witness, u is put to sleep for the later
//     siblings: a sibling v that commutes with u need not re-explore
//     placing u first thing, because state·v·u = state·u·v and the
//     latter lies inside u's already-failed subtree. Sleep sets thus
//     skip only subtrees proven witness-free, which keeps Found and
//     the witness Order bit-identical to the unpruned search — and
//     keeps failed-state memoization sound: an stFail concluded under
//     a non-empty sleep set still means "no witness from this state",
//     because every claim it rests on (explored siblings, memo
//     entries, inherited sleeps) was established earlier and is a
//     property of the state alone. (This is where the classic
//     "sleep sets break state caching" trap does not apply: the memo
//     stores refuted states, not visited ones.)
//
//   - Parallel root splitting: the admissible first-choice frontier
//     fans out over Workers goroutines with per-worker memo tables, an
//     atomic lowest-successful-root register for early cancellation,
//     and a shared atomic state budget — the sharding idiom of
//     internal/enum/parallel.go. Failed-state memoization is a pure
//     function of the state, so per-worker tables preserve exactness,
//     and the lowest-root rule makes the witness deterministic: with
//     an unlimited budget, Workers > 1 returns the same Found/Order as
//     Workers = 1.
package search

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/obs"
)

// Options tunes a Run without changing its answer (budget aside).
type Options struct {
	// Workers is the number of goroutines for root splitting.
	// 0 picks GOMAXPROCS with a small-problem serial cutoff;
	// 1 forces the serial engine; >1 forces parallel splitting
	// (capped at the number of admissible roots).
	Workers int
	// Budget caps the number of search states explored (0 = unlimited).
	// On exhaustion Result.Exhausted is false and the answer is
	// inconclusive unless a witness was already found. Under parallel
	// splitting the cap is approximate (workers draw states in small
	// batches) and which states get explored is scheduling-dependent.
	Budget int64
	// MaxMemoBytes caps the failed-state memo tables' backing memory in
	// bytes (0 = unlimited; under parallel splitting each worker gets an
	// equal share). The cap degrades exactly: when growth would exceed
	// it the tables freeze — lookups keep working on everything already
	// stored, new inserts are dropped — so the answer never changes,
	// only the state count. Stats.MemoSpilled reports the drops.
	MaxMemoBytes int64
	// DisableSleep turns off sleep-set pruning (see the package comment).
	// The answer is identical either way; the flag exists for
	// differential tests and for measuring the pruning's effect.
	DisableSleep bool
	// RootLo and RootHi restrict the run to the contiguous slice
	// [RootLo, RootHi) of the admissible root frontier (see Frontier) —
	// the distributed analogue of parallel root splitting: a fleet
	// coordinator partitions the frontier into shards, ships each range
	// to a replica, and merges shard results by the lowest-witness-root
	// rule, which reproduces exactly the verdict and witness of an
	// unsharded run. RootHi == 0 means "through the end"; both zero
	// (the default) runs the whole frontier. A shard that excludes every
	// root is vacuously exhausted (Out). Sharded runs always take the
	// per-root exploration path, so a shard's witness for root r is
	// byte-identical to what an unsharded run would find under r.
	RootLo, RootHi int
	// Recorder receives run-level observability events: run start/end,
	// root claimed/skipped/finished, governor fired, memo freeze, and a
	// per-worker counter flush at exit. nil (the default) disables all
	// event work — the engine emits nothing per state either way, and
	// live counters are published only in cancellation-poll batches, so
	// the recorder stays off the hot path's allocation profile.
	// Since checker.SearchOptions and memmodel.SearchOptions alias this
	// type, a recorder set here flows through every decision procedure.
	Recorder obs.Recorder
}

// Stats reports how much work a Run did.
type Stats struct {
	States      int64 // search states expanded
	MemoHits    int64 // states rejected by the failed-state table
	Pruned      int64 // states rejected by closure feasibility pruning
	Memoized    int64 // distinct failed states recorded
	MemoBytes   int64 // memo-table backing memory (summed over workers)
	MemoSpilled int64 // memo inserts dropped by the MaxMemoBytes cap
	// SleepSetPruned counts children skipped because they were asleep:
	// their subtrees were proven witness-free by an earlier sibling
	// exploration of a commuting placement.
	SleepSetPruned int64
	Roots          int // admissible first-choice branches (whole frontier, even under a shard)
	Workers        int // workers actually used
}

// Add accumulates t into s.
func (s *Stats) Add(t Stats) {
	s.States += t.States
	s.MemoHits += t.MemoHits
	s.Pruned += t.Pruned
	s.Memoized += t.Memoized
	s.MemoBytes += t.MemoBytes
	s.MemoSpilled += t.MemoSpilled
	s.SleepSetPruned += t.SleepSetPruned
}

// Result is the outcome of a Run.
type Result struct {
	// Order is a witnessing topological sort when Found.
	Order []dag.Node
	// Found reports whether a satisfying sort exists (definitive).
	Found bool
	// Exhausted reports whether the search ran to completion. When
	// Found is false and Exhausted is false, a governor stopped the
	// search and the instance is undecided; Stop says which one.
	Exhausted bool
	// Stop records the first governor that halted a non-exhaustive run
	// (StopNone on definitive results). Fold with Verdict() for the
	// three-valued In/Out/Inconclusive view.
	Stop StopReason
	// WitnessRoot is the frontier index (see Frontier; global even under
	// a RootLo/RootHi shard) of the root below which Order was found, or
	// -1 when there is no witness or the witness is the empty order. The
	// fleet merge uses it to pick the canonical witness across shards:
	// the lowest witness root wins, exactly as in-process root splitting
	// picks it.
	WitnessRoot int
	Stats       Stats
}

// Spec describes a constrained topological-sort search. Locations are
// abstracted into dense "slots" so callers can track any subset of
// their locations (the checker only tracks locations that actually
// constrain a read; SC tracks all of them).
type Spec struct {
	// Dag is the precedence graph to sort.
	Dag *dag.Dag
	// Closure is the transitive closure of Dag; computed when nil.
	Closure *dag.Closure
	// NumSlots is the number of tracked location slots.
	NumSlots int
	// WriteSlot returns the slot node u writes, or -1. A node writes
	// at most one slot (instructions touch one location).
	WriteSlot func(u dag.Node) int
	// Allowed returns the candidate last-writer set for node u at a
	// slot (dag.None means "no write observed") and whether u is
	// constrained there at all. Constrained empty sets make the
	// instance trivially unsatisfiable. The engine may retain the
	// returned slice; the caller must not mutate it afterwards.
	Allowed func(slot int, u dag.Node) ([]dag.Node, bool)
	// Gate, when non-nil, is an extra placement-time admission check:
	// node u may be appended to the partial sort only if Gate returns
	// true for the current last-writer vector (indexed by slot, dag.None
	// = no writer placed) and placed set. The TSO decider uses it for
	// store-forwarding constraints that singleton candidate sets cannot
	// express.
	//
	// Soundness contract: Gate must be a pure function of (u, last,
	// placed) — exactly the failed-state memo key plus the candidate
	// node — so memoized refutations stay valid across search paths.
	// Gate must not retain or mutate its arguments. Because the gate
	// can read slots the conflict matrix knows nothing about, sleep-set
	// pruning is disabled for gated specs (the commutation argument no
	// longer holds); everything else — memoization, closure-feasibility
	// pruning, parallel root splitting, RootLo/RootHi sharding — works
	// unchanged, and the frontier consults the gate on the empty state
	// so shard coordinates stay consistent across processes.
	Gate func(u dag.Node, last []dag.Node, placed *bitset.Set) bool
}

// nodeCon is one placement-time constraint: when the node is placed,
// the current last writer of slot must be a member of set.
type nodeCon struct {
	slot int32
	set  []dag.Node
}

// problem is a compiled Spec: closure-filtered candidate sets plus the
// static tables the hot loop indexes.
type problem struct {
	n        int
	numSlots int
	succs    [][]dag.Node
	indeg0   []int32
	// writeSlot[u] is the slot u writes, or -1.
	writeSlot []int32
	// cands[slot*n+u] is the filtered candidate set (nil when
	// unconstrained). For a write constrained at its own slot the
	// constraint is static (u ∈ set) and is resolved at compile time.
	cands [][]dag.Node
	// nodeCons[u] lists the constraints checked when placing u.
	nodeCons [][]nodeCon
	// consNodes[slot] lists nodes carrying a dynamic constraint at the
	// slot, scanned by the feasibility prune.
	consNodes [][]dag.Node
	// predW is a slab of placed-set-width bitmasks, one per dynamic
	// constraint: the slot-writers that strictly precede the node in
	// the closure. predWOff[slot*n+u] is the word offset into the slab,
	// or -1 when u is unconstrained at the slot.
	predW    []uint64
	predWOff []int32
	// conflict is the placement dependence relation as an n×n bit
	// matrix (rows of placedWords words): conflict[u*placedWords..][v]
	// is set when placing u and v does not commute — they are ordered
	// by the closure, write the same slot, or one writes a slot the
	// other's placement-time constraints read. Sleep-set pruning skips
	// a child only while every placement since the child's subtree was
	// proven empty is independent of it.
	conflict []uint64

	// gate is Spec.Gate, carried through compilation (nil = ungated).
	gate func(u dag.Node, last []dag.Node, placed *bitset.Set) bool

	placedWords int
	keyWords    int
	unsat       bool
}

func compile(spec Spec) *problem {
	n := spec.Dag.NumNodes()
	p := &problem{
		n:           n,
		numSlots:    spec.NumSlots,
		succs:       make([][]dag.Node, n),
		indeg0:      make([]int32, n),
		writeSlot:   make([]int32, n),
		cands:       make([][]dag.Node, spec.NumSlots*n),
		nodeCons:    make([][]nodeCon, n),
		consNodes:   make([][]dag.Node, spec.NumSlots),
		predWOff:    make([]int32, spec.NumSlots*n),
		gate:        spec.Gate,
		placedWords: (n + 63) / 64,
	}
	p.keyWords = p.placedWords + (spec.NumSlots+1)/2
	cl := spec.Closure
	if cl == nil {
		cl = dag.MustClosure(spec.Dag)
	}
	// selfCands backs the compiled own-slot write constraints: one
	// shared array instead of a singleton allocation per write.
	var selfCands []dag.Node
	for u := 0; u < n; u++ {
		p.succs[u] = spec.Dag.Succs(dag.Node(u))
		p.indeg0[u] = int32(spec.Dag.InDegree(dag.Node(u)))
		p.writeSlot[u] = -1
		if s := spec.WriteSlot(dag.Node(u)); s >= 0 {
			if s >= spec.NumSlots {
				panic(fmt.Sprintf("search: WriteSlot(%d) = %d out of range [0,%d)", u, s, spec.NumSlots))
			}
			p.writeSlot[u] = int32(s)
		}
	}
	writersMask := make([]*bitset.Set, spec.NumSlots)
	for s := range writersMask {
		writersMask[s] = bitset.New(n)
	}
	for u := 0; u < n; u++ {
		if s := p.writeSlot[u]; s >= 0 {
			writersMask[s].Add(u)
		}
	}
	// Pass 1: collect and filter candidate sets, counting the dynamic
	// constraints per node and per slot for exact-size backing arrays.
	perNode := make([]int32, n)
	perSlot := make([]int32, spec.NumSlots)
	total := 0
	for s := 0; s < spec.NumSlots; s++ {
		for u := 0; u < n; u++ {
			idx := s*n + u
			p.predWOff[idx] = -1
			raw, constrained := spec.Allowed(s, dag.Node(u))
			if !constrained {
				continue
			}
			if p.writeSlot[u] == int32(s) {
				// A write observes itself at its own slot (axiom 2.3 /
				// Definition 13.1): the constraint holds always or never.
				if !containsNode(raw, dag.Node(u)) {
					p.unsat = true
					return p
				}
				if selfCands == nil {
					selfCands = make([]dag.Node, n)
					for v := range selfCands {
						selfCands[v] = dag.Node(v)
					}
				}
				p.cands[idx] = selfCands[u : u+1 : u+1]
				continue
			}
			kept := filterCandidates(raw, dag.Node(u), cl, writersMask[s], p.writeSlot, int32(s))
			if len(kept) == 0 {
				p.unsat = true
				return p
			}
			p.cands[idx] = kept
			perNode[u]++
			perSlot[s]++
			total++
		}
	}
	// Pass 2: distribute the dynamic constraints into shared backings
	// and build the predW slab.
	conBacking := make([]nodeCon, 0, total)
	nodeBacking := make([]dag.Node, 0, total)
	p.predW = make([]uint64, 0, total*p.placedWords)
	for u := 0; u < n; u++ {
		if perNode[u] == 0 {
			continue
		}
		start := len(conBacking)
		for s := 0; s < spec.NumSlots; s++ {
			idx := s*n + u
			if p.cands[idx] == nil || p.writeSlot[u] == int32(s) {
				continue
			}
			conBacking = append(conBacking, nodeCon{slot: int32(s), set: p.cands[idx]})
			p.predWOff[idx] = int32(len(p.predW))
			ww := writersMask[s].Words()
			aw := cl.Ancestors(dag.Node(u)).Words()
			for i := 0; i < p.placedWords; i++ {
				p.predW = append(p.predW, ww[i]&aw[i])
			}
		}
		p.nodeCons[u] = conBacking[start:len(conBacking):len(conBacking)]
	}
	for s := 0; s < spec.NumSlots; s++ {
		if perSlot[s] == 0 {
			continue
		}
		start := len(nodeBacking)
		for u := 0; u < n; u++ {
			if p.cands[s*n+u] != nil && p.writeSlot[u] != int32(s) {
				nodeBacking = append(nodeBacking, dag.Node(u))
			}
		}
		p.consNodes[s] = nodeBacking[start:len(nodeBacking):len(nodeBacking)]
	}
	if p.gate != nil {
		// Gated specs never sleep (see Spec.Gate), so the conflict
		// matrix would be dead weight.
		return p
	}
	// Pass 3: the placement dependence relation for sleep-set pruning,
	// built word-parallel (a per-cell Comparable loop costs more than
	// small unsat searches save). A node x touches slot s when placing
	// it reads or writes s: it writes s, or it carries a dynamic
	// constraint on s (own-slot write constraints were compiled away
	// and depend on no state). conflict(u,v) holds when u==v, the
	// closure orders them, or one writes a slot the other touches.
	pw := p.placedWords
	slab := make([]uint64, (n+2*spec.NumSlots)*pw)
	p.conflict = slab[:n*pw]
	slotMasks := slab[n*pw:]
	touch := slotMasks[:spec.NumSlots*pw]   // touch[s*pw..]: nodes touching slot s
	writers := slotMasks[spec.NumSlots*pw:] // writers[s*pw..]: nodes writing slot s
	for x := 0; x < n; x++ {
		bit := uint64(1) << (uint(x) & 63)
		for s := 0; s < spec.NumSlots; s++ {
			if p.writeSlot[x] == int32(s) || p.predWOff[s*n+x] >= 0 {
				touch[s*pw+x>>6] |= bit
			}
		}
		if ws := int(p.writeSlot[x]); ws >= 0 {
			writers[ws*pw+x>>6] |= bit
		}
	}
	for u := 0; u < n; u++ {
		row := p.conflict[u*pw : (u+1)*pw]
		aw := cl.Ancestors(dag.Node(u)).Words()
		dw := cl.Descendants(dag.Node(u)).Words()
		for i := range row {
			row[i] = aw[i] | dw[i]
		}
		row[u>>6] |= 1 << (uint(u) & 63)
		if ws := int(p.writeSlot[u]); ws >= 0 {
			for i := range row {
				row[i] |= touch[ws*pw+i]
			}
		}
		for s := 0; s < spec.NumSlots; s++ {
			if p.writeSlot[u] == int32(s) || p.predWOff[s*n+u] >= 0 {
				for i := range row {
					row[i] |= writers[s*pw+i]
				}
			}
		}
	}
	return p
}

// filterCandidates drops candidates that no topological sort can
// realize as u's last writer at the slot, using the closure:
//
//   - a non-writer of the slot (the last-writer function never yields it);
//   - a candidate u strictly precedes (it would be placed after u);
//   - ⊥ when some slot-writer precedes u (that writer lands first in
//     every sort);
//   - a candidate w with another slot-writer x forced strictly between
//     them (w ≺ x ≺ u): x overwrites w before u in every sort.
//
// When nothing is dropped the raw slice is returned as-is — the common
// case (singleton observer constraints, trace candidate sets) costs no
// allocation.
func filterCandidates(raw []dag.Node, u dag.Node, cl *dag.Closure, writers *bitset.Set, writeSlot []int32, slot int32) []dag.Node {
	keep := func(w dag.Node) bool {
		if w == dag.None {
			return !writers.Intersects(cl.Ancestors(u))
		}
		if int(w) < 0 || int(w) >= len(writeSlot) || writeSlot[w] != slot {
			return false
		}
		if cl.Precedes(u, w) {
			return false
		}
		between := cl.Descendants(w).Clone()
		between.IntersectWith(cl.Ancestors(u))
		return !between.Intersects(writers)
	}
	for i, w := range raw {
		if keep(w) {
			continue
		}
		kept := make([]dag.Node, 0, len(raw)-1)
		kept = append(kept, raw[:i]...)
		for _, w := range raw[i+1:] {
			if keep(w) {
				kept = append(kept, w)
			}
		}
		return kept
	}
	return raw
}

func containsNode(set []dag.Node, u dag.Node) bool {
	for _, w := range set {
		if w == u {
			return true
		}
	}
	return false
}

package search

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/obs"
)

// Below the serial engine and the parallel root splitter. One engine
// owns one mutable search state (placed set, last-writer vector,
// in-degrees, partial order) and one failed-state memo table; the
// parallel path gives each worker its own engine and shares only the
// compiled problem, the state budget, and the lowest-successful-root
// register.

// rec outcomes.
const (
	stFail  int8 = iota // subtree exhausted, no witness
	stFound             // witness completed in e.order
	stAbort             // budget ran out or a lower root won
)

// budget batching: workers draw states in chunks to keep the shared
// atomic cold. Serial runs draw one at a time so the cap is exact.
const budgetChunk = 64

// With auto worker selection (Options.Workers == 0), problems smaller
// than this run serially: goroutine fan-out costs more than the search.
const parallelMinNodes = 24

// cancellation poll interval (states) — a power of two minus checks.
const cancelMask = 63

type shared struct {
	limited  bool
	budget   atomic.Int64
	bestRoot atomic.Int64
	chunk    int64
	// done is the run context's cancellation channel (nil when the
	// context can never be cancelled); ctx recovers the reason.
	done <-chan struct{}
	ctx  context.Context
	// stop records the first governor that halted the run (a StopReason;
	// 0 = still running). Sticky: later governors never overwrite it.
	stop atomic.Uint32
	// rec receives run/root/governor events; nil disables all event
	// work. live holds the run's gauges (allocated only with a recorder)
	// that workers publish into in cancellation-poll batches.
	rec  obs.Recorder
	live *obs.Counters
}

func newShared(ctx context.Context, budget int64, chunk int64, rec obs.Recorder) *shared {
	sh := &shared{limited: budget > 0, chunk: chunk, ctx: ctx, done: ctx.Done(), rec: rec}
	if rec != nil {
		sh.live = &obs.Counters{}
	}
	sh.budget.Store(budget)
	sh.bestRoot.Store(math.MaxInt64)
	return sh
}

// setStop records reason as the run's stop cause if none is set yet.
// The first setter (and only it) reports the governor firing.
func (sh *shared) setStop(reason StopReason) {
	if sh.stop.CompareAndSwap(0, uint32(reason)) && sh.rec != nil {
		obs.Emit(sh.rec, obs.Event{Kind: obs.GovernorFired, Str: reason.String()})
	}
}

// stopReason returns the recorded stop cause (StopNone while running).
func (sh *shared) stopReason() StopReason { return StopReason(sh.stop.Load()) }

// halted polls the governors: a recorded stop, then context
// cancellation (recording its reason on first observation).
func (sh *shared) halted() bool {
	if sh.stop.Load() != 0 {
		return true
	}
	if sh.done != nil {
		select {
		case <-sh.done:
			sh.setStop(ctxStopReason(sh.ctx.Err()))
			return true
		default:
		}
	}
	return false
}

// casMinRoot lowers bestRoot to r if r is smaller.
func (sh *shared) casMinRoot(r int64) {
	for {
		cur := sh.bestRoot.Load()
		if cur <= r || sh.bestRoot.CompareAndSwap(cur, r) {
			return
		}
	}
}

type engine struct {
	p      *problem
	sh     *shared
	placed *bitset.Set
	last   []dag.Node
	indeg  []int32
	order  []dag.Node
	memo   *stateSet
	keyBuf []uint64
	myRoot int64
	grant  int64
	tick   uint32
	stats  Stats
	// sleep is a depth-indexed slab of placed-set-width rows: row d is
	// the sleep set in force at depth d (bit u set = placing u from here
	// is known redundant). A parent writes row d+1 before descending.
	sleep   []uint64
	noSleep bool
	// Observability bookkeeping, all dead weight unless sh.rec is set:
	// worker id for events, the already-published slices of the private
	// counters, and whether this worker's memo freeze was reported.
	worker    int
	pubStates int64
	pubMemo   int64
	pubSlept  int64
	frozeSeen bool
}

func newEngine(p *problem, sh *shared, memoCap int64) *engine {
	e := &engine{
		p:      p,
		sh:     sh,
		placed: bitset.New(p.n),
		last:   make([]dag.Node, p.numSlots),
		indeg:  make([]int32, p.n),
		order:  make([]dag.Node, 0, p.n),
		memo:   newStateSetCapped(p.keyWords, memoCap),
		keyBuf: make([]uint64, p.keyWords),
		myRoot: math.MaxInt64,
		sleep:  make([]uint64, (p.n+1)*p.placedWords),
	}
	e.reset()
	return e
}

// reset restores the empty search state; the memo table survives
// (failed states are state-functions, valid across roots).
func (e *engine) reset() {
	e.placed.Clear()
	for i := range e.last {
		e.last[i] = dag.None
	}
	copy(e.indeg, e.p.indeg0)
	e.order = e.order[:0]
	for i := range e.sleep {
		e.sleep[i] = 0
	}
}

// takeState charges one state against the shared budget, batching
// grants by sh.chunk. Reports false on exhaustion.
func (e *engine) takeState() bool {
	if !e.sh.limited {
		return true
	}
	if e.grant > 0 {
		e.grant--
		return true
	}
	chunk := e.sh.chunk
	rem := e.sh.budget.Add(-chunk)
	if rem <= -chunk {
		e.sh.budget.Add(chunk)
		e.sh.setStop(StopBudget)
		return false
	}
	e.grant = chunk - 1
	return true
}

// cancelled polls, every cancelMask+1 states, whether a governor
// (budget elsewhere, context deadline/cancel) halted the run or a
// lower root already produced a witness. The same tick publishes the
// live gauge deltas when a recorder is attached — one batch per
// cancelMask+1 states, keeping per-state work recorder-free.
func (e *engine) cancelled() bool {
	e.tick++
	if e.tick&cancelMask != 0 {
		return false
	}
	if e.sh.live != nil {
		e.publishLive()
	}
	if e.sh.halted() {
		return true
	}
	return e.sh.bestRoot.Load() < e.myRoot
}

// publishLive pushes the not-yet-published slice of this worker's
// private counters into the shared gauges and reports a memo freeze
// the first time it is observed. Only called with a recorder attached.
func (e *engine) publishLive() {
	live := e.sh.live
	live.States.Add(e.stats.States - e.pubStates)
	e.pubStates = e.stats.States
	if slept := e.stats.SleepSetPruned; slept != e.pubSlept {
		live.Slept.Add(slept - e.pubSlept)
		e.pubSlept = slept
	}
	if mb := e.memo.bytes(); mb != e.pubMemo {
		live.MemoBytes.Add(mb - e.pubMemo)
		e.pubMemo = mb
	}
	if e.memo.frozen && !e.frozeSeen {
		e.frozeSeen = true
		obs.Emit(e.sh.rec, obs.Event{Kind: obs.MemoFreeze, Worker: e.worker, N: e.memo.bytes()})
	}
}

// flushObs publishes the final gauge deltas and emits this worker's
// WorkerDone with its complete private counters. No-op without a
// recorder.
func (e *engine) flushObs() {
	if e.sh.rec == nil {
		return
	}
	e.publishLive()
	st := e.stats
	st.MemoBytes = e.memo.bytes()
	st.MemoSpilled = e.memo.spilled
	obs.Emit(e.sh.rec, obs.Event{Kind: obs.WorkerDone, Worker: e.worker, Stats: obsStats(st)})
}

// obsStats converts the engine's counter block to the event form.
func obsStats(s Stats) *obs.Stats {
	return &obs.Stats{
		States:         s.States,
		MemoHits:       s.MemoHits,
		Pruned:         s.Pruned,
		Memoized:       s.Memoized,
		MemoBytes:      s.MemoBytes,
		MemoSpilled:    s.MemoSpilled,
		SleepSetPruned: s.SleepSetPruned,
		Roots:          s.Roots,
		Workers:        s.Workers,
	}
}

func (e *engine) encodeKey() []uint64 {
	return encodeKey(e.keyBuf, e.placed.Words(), e.last)
}

// admissible reports whether placing u next satisfies every constraint
// u carries (its own-slot write constraint was compiled away), plus the
// spec's dynamic gate when one is present.
func (e *engine) admissible(u dag.Node) bool {
	for _, con := range e.p.nodeCons[u] {
		have := e.last[con.slot]
		if con.set[0] != have && !containsNode(con.set, have) {
			return false
		}
	}
	if e.p.gate != nil && !e.p.gate(u, e.last, e.placed) {
		return false
	}
	return true
}

// place appends u to the partial order and returns the last-writer
// value it displaced (meaningful only when u writes a slot).
func (e *engine) place(u dag.Node) dag.Node {
	e.placed.Add(int(u))
	e.order = append(e.order, u)
	for _, v := range e.p.succs[u] {
		e.indeg[v]--
	}
	var prev dag.Node
	if s := e.p.writeSlot[u]; s >= 0 {
		prev = e.last[s]
		e.last[s] = u
	}
	return prev
}

func (e *engine) unplace(u dag.Node, prev dag.Node) {
	if s := e.p.writeSlot[u]; s >= 0 {
		e.last[s] = prev
	}
	for _, v := range e.p.succs[u] {
		e.indeg[v]++
	}
	e.order = e.order[:len(e.order)-1]
	e.placed.Remove(int(u))
}

// infeasible is the closure prune: some unplaced constrained node has
// no live candidate left. A candidate w is dead when it is already
// placed and either was overwritten (w ≠ current last writer) or will
// be before the node arrives (a closure-forced predecessor writer of
// the node is still unplaced and must land after w, overwriting it).
// ⊥ is dead once any writer is placed. Unplaced candidates stay alive:
// static filtering already removed the ones a sort can never realize.
func (e *engine) infeasible() bool {
	n := e.p.n
	for s := 0; s < e.p.numSlots; s++ {
		lastS := e.last[s]
		for _, u := range e.p.consNodes[s] {
			if e.placed.Contains(int(u)) {
				continue
			}
			alive := false
			for _, w := range e.p.cands[s*n+int(u)] {
				if w == dag.None {
					if lastS == dag.None {
						alive = true
						break
					}
					continue
				}
				if !e.placed.Contains(int(w)) {
					alive = true
					break
				}
				if w == lastS && e.predWPlaced(s*n+int(u)) {
					alive = true
					break
				}
			}
			if !alive {
				return true
			}
		}
	}
	return false
}

// predWPlaced reports whether every closure-forced predecessor writer
// of the constraint at idx has been placed.
func (e *engine) predWPlaced(idx int) bool {
	off := int(e.p.predWOff[idx])
	pw := e.p.predW[off : off+e.p.placedWords]
	placed := e.placed.Words()
	for i, w := range pw {
		if w&^placed[i] != 0 {
			return false
		}
	}
	return true
}

// rec explores the subtree below the current state.
func (e *engine) rec(remaining int) int8 {
	if remaining == 0 {
		return stFound
	}
	if !e.takeState() {
		return stAbort
	}
	if e.cancelled() {
		return stAbort
	}
	e.stats.States++
	if e.memo.contains(e.encodeKey()) {
		e.stats.MemoHits++
		return stFail
	}
	if e.infeasible() {
		e.stats.Pruned++
		if e.memo.insert(e.encodeKey()) {
			e.stats.Memoized++
		}
		return stFail
	}
	pw := e.p.placedWords
	depth := e.p.n - remaining
	cur := e.sleep[depth*pw : (depth+1)*pw]
	child := e.sleep[(depth+1)*pw : (depth+2)*pw]
	for u := 0; u < e.p.n; u++ {
		if e.indeg[u] != 0 || e.placed.Contains(u) {
			continue
		}
		if !e.noSleep && cur[u>>6]&(1<<(uint(u)&63)) != 0 {
			// Asleep: this subtree is witness-free (see the package
			// comment's soundness argument).
			e.stats.SleepSetPruned++
			continue
		}
		node := dag.Node(u)
		if !e.admissible(node) {
			continue
		}
		if !e.noSleep {
			// The child wakes every placement that conflicts with u.
			crow := e.p.conflict[u*pw : (u+1)*pw]
			for i, w := range cur {
				child[i] = w &^ crow[i]
			}
		}
		prev := e.place(node)
		st := e.rec(remaining - 1)
		if st == stFound {
			return stFound
		}
		e.unplace(node, prev)
		if st == stAbort {
			return stAbort
		}
		// u's subtree is exhausted and empty: later siblings may skip
		// placing u while their placements commute with it.
		if !e.noSleep {
			cur[u>>6] |= 1 << (uint(u) & 63)
		}
	}
	// keyBuf was overwritten by the children; re-encode before storing.
	if e.memo.insert(e.encodeKey()) {
		e.stats.Memoized++
	}
	return stFail
}

// Run solves the Spec. The answer (Found, and Order when Found) is
// deterministic for any Workers setting under an unlimited budget; see
// the package comment for why parallel splitting preserves it.
func Run(spec Spec, opts Options) Result {
	return RunContext(context.Background(), spec, opts)
}

// frontier returns the admissible first-choice roots of a compiled
// problem, in node order. At the root every slot's last writer is ⊥,
// so a node is admissible iff all of its constraint sets contain ⊥ and
// the gate (when present) admits it from the empty state. The order is
// deterministic, which is what makes frontier indices a meaningful
// shard coordinate across processes: every replica that compiles the
// same Spec sees the same frontier.
func frontier(p *problem) []dag.Node {
	var emptyLast []dag.Node
	var emptyPlaced *bitset.Set
	if p.gate != nil {
		emptyLast = make([]dag.Node, p.numSlots)
		for i := range emptyLast {
			emptyLast[i] = dag.None
		}
		emptyPlaced = bitset.New(p.n)
	}
	var roots []dag.Node
	for u := 0; u < p.n; u++ {
		if p.indeg0[u] != 0 {
			continue
		}
		ok := true
		for _, con := range p.nodeCons[u] {
			if !containsNode(con.set, dag.None) {
				ok = false
				break
			}
		}
		if ok && p.gate != nil && !p.gate(dag.Node(u), emptyLast, emptyPlaced) {
			ok = false
		}
		if ok {
			roots = append(roots, dag.Node(u))
		}
	}
	return roots
}

// Frontier is the exported shard plan: it compiles spec and returns
// the size of its admissible root frontier — the same split the
// parallel engine fans workers over, and the unit a fleet coordinator
// partitions into RootLo/RootHi shards. When the question resolves
// statically without any search (static unsat filtering, the empty
// problem, an empty frontier), Frontier returns 0 and the non-nil
// Result a full Run would return, so planners can short-circuit
// instead of dispatching shards of nothing.
func Frontier(spec Spec) (int, *Result) {
	p := compile(spec)
	if p.unsat {
		return 0, &Result{Exhausted: true, WitnessRoot: -1}
	}
	if p.n == 0 {
		return 0, &Result{Order: []dag.Node{}, Found: true, Exhausted: true, WitnessRoot: -1}
	}
	roots := frontier(p)
	if len(roots) == 0 {
		return 0, &Result{Exhausted: true, WitnessRoot: -1, Stats: Stats{States: 1}}
	}
	return len(roots), nil
}

// RunContext is Run under a context: cancellation and deadline expiry
// stop the search promptly (workers poll on the cancelMask tick) and
// surface as an inconclusive result — Exhausted false, Stop recording
// which governor fired. A witness found before the stop is kept: Found
// results are definitive even under a cancelled context. RunContext
// never leaks goroutines; it returns only after every worker has
// stopped.
func RunContext(ctx context.Context, spec Spec, opts Options) Result {
	if err := ctx.Err(); err != nil {
		// Already cancelled: don't even compile.
		return Result{Stop: ctxStopReason(err), WitnessRoot: -1}
	}
	rec := opts.Recorder
	p := compile(spec)
	if p.unsat {
		// Static filtering emptied some candidate set: no sort exists.
		return trivialResult(rec, Result{Exhausted: true, WitnessRoot: -1})
	}
	if p.n == 0 {
		return trivialResult(rec, Result{Order: []dag.Node{}, Found: true, Exhausted: true, WitnessRoot: -1})
	}

	roots := frontier(p)
	if len(roots) == 0 {
		return trivialResult(rec, Result{Exhausted: true, WitnessRoot: -1, Stats: Stats{States: 1}})
	}
	total := len(roots)

	// Shard restriction: clamp [RootLo, RootHi) onto the frontier. An
	// empty slice is a vacuously exhausted shard — no roots explored, no
	// witness, definitively Out *within the shard*.
	lo, hi := opts.RootLo, opts.RootHi
	if lo < 0 {
		lo = 0
	}
	if hi <= 0 || hi > total {
		hi = total
	}
	sharded := lo > 0 || hi < total
	if lo >= hi {
		return trivialResult(rec, Result{Exhausted: true, WitnessRoot: -1, Stats: Stats{Roots: total}})
	}
	roots = roots[lo:hi]

	workers := opts.Workers
	auto := workers == 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
		if p.n < parallelMinNodes {
			workers = 1
		}
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := int64(budgetChunk)
	if workers <= 1 {
		chunk = 1
	}
	sh := newShared(ctx, opts.Budget, chunk, rec)
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: len(roots), N: opts.Budget, Live: sh.live})
	}
	var res Result
	if workers <= 1 && !sharded {
		res = runSerial(p, sh, opts, len(roots))
	} else {
		// A sharded run always takes the per-root path, even with one
		// worker: the serial whole-tree engine cannot skip frontier
		// branches, and per-root exploration is exactly what the
		// parallel determinism argument covers — so a shard's witness
		// for root r matches the unsharded run's witness for root r.
		res = runParallel(p, sh, opts, roots, workers, lo)
	}
	res.Stats.Roots = total
	res.WitnessRoot = -1
	if res.Found && len(res.Order) > 0 {
		// Order[0] is the chosen root; report its global frontier index.
		for i, r := range roots {
			if r == res.Order[0] {
				res.WitnessRoot = lo + i
				break
			}
		}
	}
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Str: res.Verdict().String(), Stats: obsStats(res.Stats)})
	}
	return res
}

// trivialResult reports a search that resolved before the engine
// started (statically unsat, empty problem, empty first-choice
// frontier) so recorded sessions still see one run per decision.
func trivialResult(rec obs.Recorder, res Result) Result {
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunStart})
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Str: res.Verdict().String(), Stats: obsStats(res.Stats)})
	}
	return res
}

func runSerial(p *problem, sh *shared, opts Options, numRoots int) Result {
	e := newEngine(p, sh, opts.MaxMemoBytes)
	e.noSleep = opts.DisableSleep || p.gate != nil
	st := e.rec(p.n)
	e.flushObs()
	e.stats.Roots = numRoots
	e.stats.Workers = 1
	e.stats.MemoBytes = e.memo.bytes()
	e.stats.MemoSpilled = e.memo.spilled
	res := Result{Stats: e.stats, Exhausted: st != stAbort}
	if st == stFound {
		res.Found = true
		res.Exhausted = true
		res.Order = append([]dag.Node(nil), e.order...)
	}
	if !res.Exhausted {
		res.Stop = sh.stopReason()
	}
	return res
}

type rootOutcome struct {
	order []dag.Node
	found bool
	// done marks a root whose subtree was exhausted without a witness.
	// A root neither found nor done was aborted or never claimed; the
	// run is then exhaustive only if some other root holds a witness.
	done bool
}

// runParallel explores roots with per-root engines. rootOff is the
// global frontier index of roots[0], so shard runs report root events
// in frontier coordinates.
func runParallel(p *problem, sh *shared, opts Options, roots []dag.Node, workers int, rootOff int) Result {
	// The memo cap is per run; each worker's private table gets an
	// equal share so the sum respects Options.MaxMemoBytes.
	memoCap := opts.MaxMemoBytes
	if memoCap > 0 {
		memoCap /= int64(workers)
		if memoCap < 1 {
			memoCap = 1
		}
	}
	outcomes := make([]rootOutcome, len(roots))
	engines := make([]*engine, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := newEngine(p, sh, memoCap)
			e.noSleep = opts.DisableSleep || p.gate != nil
			e.worker = w
			engines[w] = e
			defer e.flushObs()
			for {
				r := next.Add(1) - 1
				if r >= int64(len(roots)) || sh.halted() {
					return
				}
				// A strictly lower root already holds a witness: this
				// root's outcome cannot win, skip it.
				if sh.bestRoot.Load() < r {
					if sh.rec != nil {
						obs.Emit(sh.rec, obs.Event{Kind: obs.RootSkipped, Worker: w, Root: rootOff + int(r)})
						sh.live.Done.Add(1)
					}
					continue
				}
				if sh.rec != nil {
					obs.Emit(sh.rec, obs.Event{Kind: obs.RootClaimed, Worker: w, Root: rootOff + int(r)})
				}
				e.reset()
				e.myRoot = r
				e.stats.States++ // the root state itself
				e.place(roots[r])
				st := e.rec(p.n - 1)
				switch st {
				case stFound:
					sh.casMinRoot(r)
					outcomes[r] = rootOutcome{
						order: append([]dag.Node(nil), e.order...),
						found: true,
					}
				case stFail:
					outcomes[r] = rootOutcome{done: true}
				}
				if sh.rec != nil {
					outcome := "aborted"
					switch st {
					case stFound:
						outcome = "found"
					case stFail:
						outcome = "exhausted"
					}
					obs.Emit(sh.rec, obs.Event{Kind: obs.RootFinished, Worker: w, Root: rootOff + int(r), Str: outcome})
					sh.live.Done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	var res Result
	for _, e := range engines {
		if e != nil {
			e.stats.MemoBytes = e.memo.bytes()
			e.stats.MemoSpilled = e.memo.spilled
			res.Stats.Add(e.stats)
		}
	}
	res.Stats.Roots = len(roots)
	res.Stats.Workers = workers
	// The lowest found root wins: its witness is the deterministic
	// answer regardless of which governors fired elsewhere.
	for r := range outcomes {
		if outcomes[r].found {
			res.Found = true
			res.Order = outcomes[r].order
			res.Exhausted = true
			return res
		}
	}
	// No witness: the answer is definitive only if every root subtree
	// was exhausted. Roots aborted (budget, deadline, cancel) or never
	// claimed after a governor fired leave the instance undecided.
	res.Exhausted = true
	for r := range outcomes {
		if !outcomes[r].done {
			res.Exhausted = false
			res.Stop = sh.stopReason()
			break
		}
	}
	return res
}

package search

import "repro/internal/dag"

// Assignments enumerates the Cartesian product of the domains in
// lexicographic order (the last domain varies fastest), calling fn
// with a shared assignment slice that must not be retained. It stops
// early when fn returns false and reports whether the enumeration ran
// to completion. Any empty domain makes the product empty. Zero
// domains yield the single empty assignment.
//
// This is the backtracking skeleton behind checker.VerifyModel's
// observer-function sweep, hoisted here so the checker contains no
// private search loop of its own.
func Assignments(domains [][]dag.Node, fn func(assign []dag.Node) bool) bool {
	for _, d := range domains {
		if len(d) == 0 {
			return true
		}
	}
	assign := make([]dag.Node, len(domains))
	idx := make([]int, len(domains))
	for i, d := range domains {
		assign[i] = d[0]
	}
	for {
		if !fn(assign) {
			return false
		}
		// Odometer step: advance the fastest-varying position that has
		// room, resetting everything after it.
		i := len(domains) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(domains[i]) {
				assign[i] = domains[i][idx[i]]
				break
			}
			idx[i] = 0
			assign[i] = domains[i][0]
		}
		if i < 0 {
			return true
		}
	}
}

package search_test

import (
	"encoding/json"
	"testing"

	"repro/internal/search"
)

// TestVerdictJSONRoundTrip pins the wire form of the three-valued
// verdict: every constructor round-trips, decided verdicts carry
// "member" and no "reason", inconclusive verdicts carry the reason
// spelling and no "member", and "text" always matches String().
func TestVerdictJSONRoundTrip(t *testing.T) {
	verdicts := []search.Verdict{
		search.VerdictIn(),
		search.VerdictOut(),
		search.VerdictInconclusive(search.StopBudget),
		search.VerdictInconclusive(search.StopDeadline),
		search.VerdictInconclusive(search.StopCancel),
		search.VerdictInconclusive(search.StopMemory),
	}
	for _, v := range verdicts {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("unmarshal into map: %v", err)
		}
		if m["text"] != v.String() {
			t.Errorf("%v: text = %v, want %q", v, m["text"], v.String())
		}
		if _, hasMember := m["member"]; hasMember != v.Decided {
			t.Errorf("%v: member present = %v, want %v", v, hasMember, v.Decided)
		}
		if _, hasReason := m["reason"]; hasReason != v.Inconclusive() {
			t.Errorf("%v: reason present = %v, want %v", v, hasReason, v.Inconclusive())
		}
		var back search.Verdict
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != v {
			t.Errorf("round trip changed verdict: %v -> %v", v, back)
		}
	}
}

func TestVerdictJSONRejectsUnknownReason(t *testing.T) {
	var v search.Verdict
	if err := json.Unmarshal([]byte(`{"decided":false,"reason":"cosmic-rays"}`), &v); err == nil {
		t.Fatal("unknown stop reason decoded without error")
	}
}

func TestParseStopReason(t *testing.T) {
	for r := search.StopNone; r <= search.StopMemory; r++ {
		got, err := search.ParseStopReason(r.String())
		if err != nil || got != r {
			t.Errorf("ParseStopReason(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
	if _, err := search.ParseStopReason("unknown"); err == nil {
		t.Error("ParseStopReason accepted an unknown spelling")
	}
}

package search_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/search"
	"repro/internal/trace"
)

// Governance tests: the engine must honour deadlines, cancellation,
// state budgets, and memo caps without ever changing a definitive
// answer — a governed run either returns the same In/Out verdict as an
// ungoverned one, or a typed Inconclusive.
//
// The workloads are randomized checker instances (reads with several
// candidate writers force deep memoized backtracking; the singleton
// candidate sets of SC membership instances are statically pruned and
// never get hard). The seeds below are pinned empirically:
//
//	govTrace(11, 30, 8, 0.08, 2, 3, 3)  — undecided after 1e7 states (minutes of work)
//	govTrace(17, 14, 6, 0.10, 2, 2, 3)  — UNSAT, exhausts in ~5e4 states
//	govTrace(16, 14, 6, 0.10, 2, 2, 3)  — UNSAT, ~3e3 states, ~50KB of memo
//	govTrace(27, 14, 6, 0.10, 2, 2, 3)  — SAT, ~4e3 states, ~100KB of memo
//	govTrace(31, 14, 6, 0.10, 2, 2, 3)  — SAT, witness after ~2e5 states (tens of ms)
//
// Capping the memo is exact but not free: dropped entries mean
// re-exploration, and a tight cap on a memo-hungry instance blows the
// state count up by orders of magnitude. The differential instances
// are small ones whose capped blowup stays in the 1e5-state range.
func govTrace(seed int64, layers, width int, p float64, locs, vals, wprob int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(rng, layers, width, p)
	n := g.NumNodes()
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		if rng.Intn(wprob) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, locs)
	tr := trace.New(c)
	for u := 0; u < n; u++ {
		switch c.Op(dag.Node(u)).Kind {
		case computation.Write:
			tr.WriteVal[u] = trace.Value(rng.Intn(vals) + 1)
		case computation.Read:
			tr.ReadVal[u] = trace.Value(rng.Intn(vals) + 1)
		}
	}
	return tr
}

// traceSpec compiles the trace's SC constraint system into an engine
// Spec directly (mirroring the checker's internal construction), so
// the tests can assert on raw engine Results: Order, Stop, memo stats.
func traceSpec(tr *trace.Trace) search.Spec {
	c := tr.Comp
	n := c.NumNodes()
	cands := make([][]dag.Node, c.NumLocs()*n)
	constrained := make([]bool, c.NumLocs()*n)
	for u := 0; u < n; u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		idx := int(op.Loc)*n + u
		cands[idx] = tr.Candidates(dag.Node(u))
		constrained[idx] = true
	}
	return search.Spec{
		Dag:      c.Dag(),
		Closure:  c.Closure(),
		NumSlots: c.NumLocs(),
		WriteSlot: func(u dag.Node) int {
			if op := c.Op(u); op.Kind == computation.Write {
				return int(op.Loc)
			}
			return -1
		},
		Allowed: func(s int, u dag.Node) ([]dag.Node, bool) {
			idx := s*n + int(u)
			return cands[idx], constrained[idx]
		},
	}
}

// checkWitness replays the order against the trace: every read's last
// writer at its location must be one of the read's candidates.
func checkWitness(t *testing.T, tr *trace.Trace, order []dag.Node) {
	t.Helper()
	c := tr.Comp
	if len(order) != c.NumNodes() {
		t.Fatalf("witness has %d nodes, want %d", len(order), c.NumNodes())
	}
	last := make([]dag.Node, c.NumLocs())
	for i := range last {
		last[i] = dag.None
	}
	for _, u := range order {
		op := c.Op(u)
		if op.Kind == computation.Read {
			ok := false
			for _, w := range tr.Candidates(u) {
				if w == last[op.Loc] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("witness invalid: read %d sees writer %d, not a candidate", u, last[op.Loc])
			}
		}
		if op.Kind == computation.Write {
			last[op.Loc] = u
		}
	}
}

// waitGoroutines polls until the goroutine count settles back to at
// most base+slack, failing the test if it never does — the leak check
// of the acceptance criterion.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineInconclusive interrupts a multi-minute search after
// 200ms: the engine must return promptly (well under 2x the deadline
// plus setup), report a typed deadline verdict, and leak no goroutines.
func TestDeadlineInconclusive(t *testing.T) {
	tr := govTrace(11, 30, 8, 0.08, 2, 3, 3)
	spec := traceSpec(tr)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := search.RunContext(ctx, spec, search.Options{Workers: 4})
	elapsed := time.Since(start)

	if res.Found || res.Exhausted {
		t.Fatalf("deadline run must be non-exhaustive without a witness: %+v", res)
	}
	if res.Stop != search.StopDeadline {
		t.Fatalf("Stop = %v, want %v", res.Stop, search.StopDeadline)
	}
	v := res.Verdict()
	if !v.Inconclusive() || v.Reason != search.StopDeadline {
		t.Fatalf("verdict = %v, want inconclusive(deadline)", v)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline overshoot: ran %v against a 200ms deadline", elapsed)
	}
	waitGoroutines(t, base)
}

// TestCheckerDeadline is the same property one layer up, through
// checker.VerifySCCtx — where the hard instances actually come from.
func TestCheckerDeadline(t *testing.T) {
	tr := govTrace(11, 30, 8, 0.08, 2, 3, 3)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, verdict, _ := checker.VerifySCCtx(ctx, tr, checker.SearchOptions{Workers: 4})
	elapsed := time.Since(start)

	if !verdict.Inconclusive() || verdict.Reason != search.StopDeadline {
		t.Fatalf("verdict = %v, want inconclusive(deadline)", verdict)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline overshoot: ran %v against a 100ms deadline", elapsed)
	}
	waitGoroutines(t, base)
}

// TestAlreadyCancelled: a context cancelled before the call must not
// start the search at all.
func TestAlreadyCancelled(t *testing.T) {
	tr := govTrace(17, 14, 6, 0.10, 2, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res := search.RunContext(ctx, traceSpec(tr), search.Options{Workers: workers})
		if res.Found || res.Exhausted || res.Stop != search.StopCancel {
			t.Fatalf("workers=%d: pre-cancelled run = %+v, want cancel stop", workers, res)
		}
		if res.Stats.States != 0 {
			t.Fatalf("workers=%d: pre-cancelled run expanded %d states", workers, res.Stats.States)
		}
		if v := res.Verdict(); !v.Inconclusive() || v.Reason != search.StopCancel {
			t.Fatalf("workers=%d: verdict = %v, want inconclusive(cancelled)", workers, v)
		}
	}
}

// TestBudgetSerialParallelAgree: on an UNSAT instance a budget far
// below the exhaustion cost must yield inconclusive from both the
// serial and the parallel engine — neither may claim Out.
func TestBudgetSerialParallelAgree(t *testing.T) {
	tr := govTrace(17, 14, 6, 0.10, 2, 2, 3)
	spec := traceSpec(tr)
	for _, workers := range []int{1, 4} {
		res := search.Run(spec, search.Options{Workers: workers, Budget: 1000})
		if res.Found {
			t.Fatalf("workers=%d: UNSAT instance reported a witness", workers)
		}
		if res.Exhausted {
			t.Fatalf("workers=%d: budget 1000 cannot be exhaustive (needs ~5e4 states)", workers)
		}
		if res.Stop != search.StopBudget {
			t.Fatalf("workers=%d: Stop = %v, want %v", workers, res.Stop, search.StopBudget)
		}
		if v := res.Verdict(); !v.Inconclusive() || v.Reason != search.StopBudget {
			t.Fatalf("workers=%d: verdict = %v, want inconclusive(budget)", workers, v)
		}
	}
}

// TestWitnessSurvivesConcurrentCancel races a cancellation against a
// satisfiable search: whatever the interleaving, the verdict is either
// In (with a valid witness) or Inconclusive — never Out.
func TestWitnessSurvivesConcurrentCancel(t *testing.T) {
	tr := govTrace(31, 14, 6, 0.10, 2, 2, 3)
	spec := traceSpec(tr)
	var sawFound, sawCancelled bool
	for i := 0; i < 24; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		// Sweep cancellation through the search's lifetime; the last
		// iterations never cancel, guaranteeing witnesses.
		if i < 20 {
			delay := time.Duration(i) * 2 * time.Millisecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		res := search.RunContext(ctx, spec, search.Options{Workers: 4})
		cancel()
		v := res.Verdict()
		switch {
		case v.Out():
			t.Fatalf("iteration %d: cancel turned a satisfiable instance into Out: %+v", i, res)
		case v.In():
			sawFound = true
			checkWitness(t, tr, res.Order)
		default:
			sawCancelled = true
			if v.Reason != search.StopCancel {
				t.Fatalf("iteration %d: inconclusive reason = %v, want cancelled", i, v.Reason)
			}
		}
	}
	// The delay sweep spans well past the uncancelled runtime, so both
	// outcomes must occur; if not, the sweep isn't exercising the race.
	if !sawFound {
		t.Error("cancel sweep never completed with a witness; widen the delay range")
	}
	if !sawCancelled {
		t.Log("cancel sweep never observed a cancellation (machine too fast?); race still exercised")
	}
}

// TestMemoCapDifferential: capping memo memory must not change the
// answer — same Found, same Order (the serial engine is deterministic
// and the parallel lowest-root rule restores determinism), same
// Exhausted — only the work and the spill stats.
func TestMemoCapDifferential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    int64
		sat     bool
		memoCap int64
	}{
		{"unsat", 16, false, 25 << 10},
		{"sat", 27, true, 32 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := govTrace(tc.seed, 14, 6, 0.10, 2, 2, 3)
			spec := traceSpec(tr)
			full := search.Run(spec, search.Options{Workers: 1})
			if full.Found != tc.sat || !full.Exhausted {
				t.Fatalf("uncapped baseline drifted: %+v", full)
			}
			if full.Stats.MemoSpilled != 0 {
				t.Fatalf("uncapped run spilled %d memo inserts", full.Stats.MemoSpilled)
			}
			if full.Stats.MemoBytes <= tc.memoCap {
				t.Fatalf("baseline memo table (%d bytes) does not exceed the %d-byte cap; instance too small", full.Stats.MemoBytes, tc.memoCap)
			}
			for _, workers := range []int{1, 4} {
				capped := search.Run(spec, search.Options{Workers: workers, MaxMemoBytes: tc.memoCap})
				if capped.Found != full.Found || !capped.Exhausted {
					t.Fatalf("workers=%d: memo cap changed the answer: capped %+v, full Found=%v", workers, capped, full.Found)
				}
				if capped.Found {
					if len(capped.Order) != len(full.Order) {
						t.Fatalf("workers=%d: witness length changed under cap", workers)
					}
					for j := range full.Order {
						if capped.Order[j] != full.Order[j] {
							t.Fatalf("workers=%d: memo cap changed the witness at position %d: %d vs %d", workers, j, capped.Order[j], full.Order[j])
						}
					}
					checkWitness(t, tr, capped.Order)
				}
				if capped.Stats.MemoBytes > tc.memoCap {
					t.Fatalf("workers=%d: memo tables use %d bytes, cap is %d", workers, capped.Stats.MemoBytes, tc.memoCap)
				}
				if capped.Stats.MemoSpilled == 0 {
					t.Fatalf("workers=%d: cap did not bind (no spills); baseline used %d bytes", workers, full.Stats.MemoBytes)
				}
				// Frozen tables reject fewer states, never more — a
				// like-for-like claim only for the serial engine
				// (parallel splitting reshuffles the explored set).
				if workers == 1 && capped.Stats.States < full.Stats.States {
					t.Fatalf("capped serial run expanded fewer states (%d) than uncapped (%d)", capped.Stats.States, full.Stats.States)
				}
			}
		})
	}
}

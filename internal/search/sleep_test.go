package search_test

import (
	"testing"

	"repro/internal/search"
)

// TestSleepSetDifferential: sleep-set pruning must not change any part
// of the answer — Found, Exhausted, and the witness Order byte for
// byte — on a corpus of random trace instances, serial and parallel,
// while actually pruning work somewhere in the corpus.
func TestSleepSetDifferential(t *testing.T) {
	var pruned, saved int64
	sat, unsat := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		tr := govTrace(seed, 10, 5, 0.12, 2, 2, 3)
		spec := traceSpec(tr)
		base := search.Run(spec, search.Options{Workers: 1, DisableSleep: true})
		if base.Stats.SleepSetPruned != 0 {
			t.Fatalf("seed %d: DisableSleep run reported %d sleep prunes", seed, base.Stats.SleepSetPruned)
		}
		if base.Found {
			sat++
		} else {
			unsat++
		}
		for _, workers := range []int{1, 4} {
			slept := search.Run(spec, search.Options{Workers: workers})
			if slept.Found != base.Found || slept.Exhausted != base.Exhausted {
				t.Fatalf("seed %d workers=%d: sleep sets changed the verdict: %+v vs %+v",
					seed, workers, slept, base)
			}
			if slept.Found {
				if len(slept.Order) != len(base.Order) {
					t.Fatalf("seed %d workers=%d: witness length %d vs %d",
						seed, workers, len(slept.Order), len(base.Order))
				}
				for i := range base.Order {
					if slept.Order[i] != base.Order[i] {
						t.Fatalf("seed %d workers=%d: sleep sets changed the witness at %d: %v vs %v",
							seed, workers, i, slept.Order, base.Order)
					}
				}
				checkWitness(t, tr, slept.Order)
			}
			if workers == 1 {
				if slept.Stats.States > base.Stats.States {
					t.Fatalf("seed %d: sleep sets expanded more states (%d) than without (%d)",
						seed, slept.Stats.States, base.Stats.States)
				}
				pruned += slept.Stats.SleepSetPruned
				saved += base.Stats.States - slept.Stats.States
			}
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("corpus not mixed: %d sat, %d unsat — adjust the generator", sat, unsat)
	}
	if pruned == 0 {
		t.Fatal("sleep sets never pruned anything across the corpus")
	}
	t.Logf("corpus: %d sat / %d unsat, %d children slept, %d serial states saved", sat, unsat, pruned, saved)
}

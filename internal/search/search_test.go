package search_test

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/search"
)

// Unit tests of the engine on hand-built specs, exercised at every
// worker setting so `go test -race` sweeps the parallel path.

func workersSweep() []int { return []int{0, 1, 2, 4} }

// unconstrainedSpec: any topological sort works.
func unconstrainedSpec(g *dag.Dag) search.Spec {
	return search.Spec{
		Dag:       g,
		NumSlots:  0,
		WriteSlot: func(dag.Node) int { return -1 },
		Allowed:   func(int, dag.Node) ([]dag.Node, bool) { return nil, false },
	}
}

func TestRunEmptyDag(t *testing.T) {
	res := search.Run(unconstrainedSpec(dag.New(0)), search.Options{})
	if !res.Found || !res.Exhausted || len(res.Order) != 0 {
		t.Fatalf("empty dag: %+v", res)
	}
}

func TestRunUnconstrained(t *testing.T) {
	for _, w := range workersSweep() {
		g := dag.Grid(3, 3)
		res := search.Run(unconstrainedSpec(g), search.Options{Workers: w})
		if !res.Found || !res.Exhausted {
			t.Fatalf("workers=%d: %+v", w, res)
		}
		if !g.IsTopoSort(res.Order) {
			t.Fatalf("workers=%d: witness %v is not a topological sort", w, res.Order)
		}
	}
}

// twoWriterSpec: nodes 0 and 1 are parallel writers to one slot, node
// 2 reads and must observe `want`.
func twoWriterSpec(want dag.Node) (*dag.Dag, search.Spec) {
	g := dag.New(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	spec := search.Spec{
		Dag:      g,
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if u == 0 || u == 1 {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			if u == 2 {
				return []dag.Node{want}, true
			}
			return nil, false
		},
	}
	return g, spec
}

func TestRunPicksRequiredWriter(t *testing.T) {
	for _, want := range []dag.Node{0, 1} {
		g, spec := twoWriterSpec(want)
		res := search.Run(spec, search.Options{})
		if !res.Found {
			t.Fatalf("want writer %d: not found", want)
		}
		if !g.IsTopoSort(res.Order) {
			t.Fatalf("bad witness %v", res.Order)
		}
		// The wanted writer must be the later of the two.
		pos := map[dag.Node]int{}
		for i, u := range res.Order {
			pos[u] = i
		}
		if pos[want] < pos[1-want] {
			t.Fatalf("witness %v places %d before %d", res.Order, 1-want, want)
		}
	}
}

func TestRunInfeasibleConstraint(t *testing.T) {
	// The read demands ⊥ but a writer precedes it in the dag: static
	// filtering must reject without exploring any state.
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	spec := search.Spec{
		Dag:      g,
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if u == 0 {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			if u == 1 {
				return []dag.Node{dag.None}, true
			}
			return nil, false
		},
	}
	res := search.Run(spec, search.Options{})
	if res.Found || !res.Exhausted {
		t.Fatalf("infeasible spec: %+v", res)
	}
	if res.Stats.States != 0 {
		t.Fatalf("static rejection explored %d states", res.Stats.States)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// A 4x4 grid with no constraints succeeds on the first dive, but a
	// budget of 1 cannot reach the leaf (16 states needed).
	g := dag.Grid(4, 4)
	res := search.Run(unconstrainedSpec(g), search.Options{Budget: 1})
	if res.Found {
		t.Fatal("found a 16-node witness within 1 state")
	}
	if res.Exhausted {
		t.Fatal("budget=1 claimed an exhaustive search")
	}
	// An ample budget decides it.
	res = search.Run(unconstrainedSpec(g), search.Options{Budget: 1 << 20})
	if !res.Found || !res.Exhausted {
		t.Fatalf("budgeted success: %+v", res)
	}
}

func TestRunStatsPopulated(t *testing.T) {
	g := dag.Grid(3, 3)
	res := search.Run(unconstrainedSpec(g), search.Options{Workers: 1})
	if res.Stats.States < 9 {
		t.Fatalf("stats.States = %d, want >= 9", res.Stats.States)
	}
	if res.Stats.Workers != 1 || res.Stats.Roots != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestAssignments(t *testing.T) {
	var got [][]dag.Node
	complete := search.Assignments([][]dag.Node{{0, 1}, {5}, {7, 8}}, func(a []dag.Node) bool {
		got = append(got, append([]dag.Node(nil), a...))
		return true
	})
	if !complete {
		t.Fatal("full enumeration reported early stop")
	}
	want := [][]dag.Node{{0, 5, 7}, {0, 5, 8}, {1, 5, 7}, {1, 5, 8}}
	if len(got) != len(want) {
		t.Fatalf("got %d assignments, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("assignment %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestAssignmentsEdgeCases(t *testing.T) {
	calls := 0
	if !search.Assignments(nil, func(a []dag.Node) bool { calls++; return len(a) == 0 }) {
		t.Fatal("zero domains must enumerate the empty assignment and complete")
	}
	if calls != 1 {
		t.Fatalf("zero domains called fn %d times, want 1", calls)
	}
	calls = 0
	if !search.Assignments([][]dag.Node{{1, 2}, {}}, func([]dag.Node) bool { calls++; return true }) {
		t.Fatal("empty domain must complete")
	}
	if calls != 0 {
		t.Fatalf("empty domain called fn %d times, want 0", calls)
	}
	calls = 0
	if search.Assignments([][]dag.Node{{1, 2, 3}}, func([]dag.Node) bool { calls++; return calls < 2 }) {
		t.Fatal("early stop reported complete")
	}
	if calls != 2 {
		t.Fatalf("early stop called fn %d times, want 2", calls)
	}
}

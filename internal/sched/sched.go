// Package sched simulates the execution of computations on a
// P-processor machine: greedy list scheduling and randomized work
// stealing, in discrete time. The paper's computations come from
// multithreaded programs scheduled this way (Cilk, Section 1); the
// BACKER experiments ([BFJ+96a/b], Sections 6–7) measure T_P against
// the work/span bound T_1/P + O(T_∞), which the benchmark harness
// regenerates on this simulator.
package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/computation"
	"repro/internal/dag"
)

// Tick is a unit of simulated time.
type Tick int64

// CostFunc gives each node a positive duration. Nil means unit cost.
type CostFunc func(u dag.Node) Tick

// UnitCost assigns every node one tick.
func UnitCost(dag.Node) Tick { return 1 }

// Schedule is the result of simulating a computation on P processors:
// a processor assignment, start/finish times, and the global completion
// order (a topological sort of the computation).
type Schedule struct {
	Comp     *computation.Computation
	P        int
	Proc     []int  // node -> processor
	Start    []Tick // node -> start time
	Finish   []Tick // node -> finish time
	Order    []dag.Node
	Makespan Tick
	Steals   int // work-stealing only
}

// Validate checks that the schedule respects dependencies, processor
// exclusivity and the declared completion order.
func (s *Schedule) Validate() error {
	n := s.Comp.NumNodes()
	if len(s.Proc) != n || len(s.Start) != n || len(s.Finish) != n || len(s.Order) != n {
		return fmt.Errorf("sched: shape mismatch")
	}
	if !s.Comp.Dag().IsTopoSort(s.Order) && n > 0 {
		return fmt.Errorf("sched: completion order is not a topological sort")
	}
	for u := 0; u < n; u++ {
		if s.Proc[u] < 0 || s.Proc[u] >= s.P {
			return fmt.Errorf("sched: node %d on processor %d of %d", u, s.Proc[u], s.P)
		}
		if s.Start[u] >= s.Finish[u] {
			return fmt.Errorf("sched: node %d has empty duration", u)
		}
		for _, p := range s.Comp.Dag().Preds(dag.Node(u)) {
			if s.Finish[p] > s.Start[u] {
				return fmt.Errorf("sched: node %d starts before predecessor %d finishes", u, p)
			}
		}
		if s.Finish[u] > s.Makespan {
			return fmt.Errorf("sched: node %d finishes after makespan", u)
		}
	}
	// Processor exclusivity: nodes on one processor must not overlap.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if s.Proc[u] != s.Proc[v] {
				continue
			}
			if s.Start[u] < s.Finish[v] && s.Start[v] < s.Finish[u] {
				return fmt.Errorf("sched: nodes %d and %d overlap on processor %d", u, v, s.Proc[u])
			}
		}
	}
	return nil
}

// Work returns T_1: the total cost of all nodes.
func Work(c *computation.Computation, cost CostFunc) Tick {
	if cost == nil {
		cost = UnitCost
	}
	var total Tick
	for u := 0; u < c.NumNodes(); u++ {
		total += cost(dag.Node(u))
	}
	return total
}

// Span returns T_∞: the weight of the heaviest path (critical path).
func Span(c *computation.Computation, cost CostFunc) Tick {
	if cost == nil {
		cost = UnitCost
	}
	order, err := c.Dag().TopoSort()
	if err != nil {
		panic(err)
	}
	depth := make([]Tick, c.NumNodes())
	var best Tick
	for _, u := range order {
		d := Tick(0)
		for _, p := range c.Dag().Preds(u) {
			if depth[p] > d {
				d = depth[p]
			}
		}
		depth[u] = d + cost(u)
		if depth[u] > best {
			best = depth[u]
		}
	}
	return best
}

// ListSchedule runs greedy (Graham) list scheduling on P processors:
// at every instant each idle processor takes the ready node with the
// smallest id. Deterministic. Achieves T_P ≤ T_1/P + T_∞.
//
// Errors on invalid input (P < 1, or a cost function yielding a
// non-positive duration) rather than panicking: simulator parameters
// come from CLI flags and config files, not internal invariants.
func ListSchedule(c *computation.Computation, P int, cost CostFunc) (*Schedule, error) {
	if P < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", P)
	}
	if cost == nil {
		cost = UnitCost
	}
	if err := validateCost(c, cost); err != nil {
		return nil, err
	}
	n := c.NumNodes()
	s := &Schedule{
		Comp:   c,
		P:      P,
		Proc:   make([]int, n),
		Start:  make([]Tick, n),
		Finish: make([]Tick, n),
		Order:  make([]dag.Node, 0, n),
	}
	indeg := make([]int, n)
	var ready nodeQueue
	for u := 0; u < n; u++ {
		indeg[u] = c.Dag().InDegree(dag.Node(u))
		if indeg[u] == 0 {
			ready.push(dag.Node(u))
		}
	}
	type running struct {
		node dag.Node
		done Tick
	}
	var active []running
	procFree := make([]Tick, P)
	now := Tick(0)
	completed := 0

	for completed < n {
		// Dispatch ready nodes onto processors idle at `now`.
		for p := 0; p < P && ready.len() > 0; p++ {
			if procFree[p] > now {
				continue
			}
			u := ready.pop()
			s.Proc[u] = p
			s.Start[u] = now
			s.Finish[u] = now + cost(u)
			procFree[p] = s.Finish[u]
			active = append(active, running{u, s.Finish[u]})
		}
		if len(active) == 0 {
			panic("sched: deadlock (cyclic computation?)")
		}
		// Advance to the earliest completion.
		next := active[0].done
		for _, r := range active[1:] {
			if r.done < next {
				next = r.done
			}
		}
		now = next
		// Retire completions in deterministic (node id) order.
		var still []running
		var retired []dag.Node
		for _, r := range active {
			if r.done == now {
				retired = append(retired, r.node)
			} else {
				still = append(still, r)
			}
		}
		active = still
		sortNodes(retired)
		for _, u := range retired {
			s.Order = append(s.Order, u)
			completed++
			for _, v := range c.Dag().Succs(u) {
				indeg[v]--
				if indeg[v] == 0 {
					ready.push(v)
				}
			}
		}
	}
	s.Makespan = now
	return s, nil
}

// WorkStealing simulates randomized work stealing with unit-time steps:
// each worker owns a deque of ready nodes, pushes newly enabled work to
// the bottom, and when idle steals from the top of a uniformly random
// victim. Nodes take cost(u) consecutive ticks on their worker.
// The returned schedule counts successful steals.
//
// Errors on invalid input (P < 1, nil rng, or a cost function yielding
// a non-positive duration — which would spin the tick loop forever)
// rather than panicking.
func WorkStealing(c *computation.Computation, P int, cost CostFunc, rng *rand.Rand) (*Schedule, error) {
	if P < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", P)
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: work stealing needs a random source, got nil")
	}
	if cost == nil {
		cost = UnitCost
	}
	if err := validateCost(c, cost); err != nil {
		return nil, err
	}
	n := c.NumNodes()
	s := &Schedule{
		Comp:   c,
		P:      P,
		Proc:   make([]int, n),
		Start:  make([]Tick, n),
		Finish: make([]Tick, n),
		Order:  make([]dag.Node, 0, n),
	}
	indeg := make([]int, n)
	deques := make([][]dag.Node, P)
	for u := 0; u < n; u++ {
		indeg[u] = c.Dag().InDegree(dag.Node(u))
		if indeg[u] == 0 {
			// Seed initial work round-robin across workers.
			w := u % P
			deques[w] = append(deques[w], dag.Node(u))
		}
	}
	type slot struct {
		node dag.Node
		left Tick
	}
	current := make([]slot, P)
	for p := range current {
		current[p] = slot{node: dag.None}
	}
	completed := 0
	now := Tick(0)

	for completed < n {
		// Phase 1: workers with an empty hand take local work, then
		// steal. Steal targets are decided against the deque state at
		// the start of the tick, processed in worker order.
		for p := 0; p < P; p++ {
			if current[p].node != dag.None {
				continue
			}
			if len(deques[p]) > 0 {
				// Pop own bottom.
				u := deques[p][len(deques[p])-1]
				deques[p] = deques[p][:len(deques[p])-1]
				current[p] = slot{u, cost(u)}
				s.Proc[u] = p
				s.Start[u] = now
				continue
			}
			// Steal attempt from one random victim.
			victim := rng.Intn(P)
			if victim == p || len(deques[victim]) == 0 {
				continue
			}
			u := deques[victim][0]
			deques[victim] = deques[victim][1:]
			current[p] = slot{u, cost(u)}
			s.Proc[u] = p
			s.Start[u] = now
			s.Steals++
		}
		// Phase 2: one tick of progress.
		now++
		var retired []dag.Node
		for p := 0; p < P; p++ {
			if current[p].node == dag.None {
				continue
			}
			current[p].left--
			if current[p].left == 0 {
				retired = append(retired, current[p].node)
				current[p] = slot{node: dag.None}
			}
		}
		sortNodes(retired)
		for _, u := range retired {
			s.Finish[u] = now
			s.Order = append(s.Order, u)
			completed++
			for _, v := range c.Dag().Succs(u) {
				indeg[v]--
				if indeg[v] == 0 {
					deques[s.Proc[u]] = append(deques[s.Proc[u]], v)
				}
			}
		}
	}
	s.Makespan = now
	return s, nil
}

// validateCost rejects cost functions that assign a node a non-positive
// duration: such a node never finishes under the tick semantics.
func validateCost(c *computation.Computation, cost CostFunc) error {
	for u := 0; u < c.NumNodes(); u++ {
		if d := cost(dag.Node(u)); d < 1 {
			return fmt.Errorf("sched: node %d has non-positive cost %d", u, d)
		}
	}
	return nil
}

// nodeQueue is a FIFO of nodes.
type nodeQueue struct{ a []dag.Node }

func (q *nodeQueue) len() int        { return len(q.a) }
func (q *nodeQueue) push(u dag.Node) { q.a = append(q.a, u) }
func (q *nodeQueue) pop() dag.Node {
	u := q.a[0]
	q.a = q.a[1:]
	return u
}

func sortNodes(a []dag.Node) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
)

// fromDag labels every node of g as a no-op over one location.
func fromDag(g *dag.Dag) *computation.Computation {
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		ops[i] = computation.N
	}
	return computation.MustFrom(g, ops, 1)
}

func TestWorkAndSpan(t *testing.T) {
	c := fromDag(dag.Diamond())
	if Work(c, nil) != 4 {
		t.Fatalf("T1 = %d", Work(c, nil))
	}
	if Span(c, nil) != 3 {
		t.Fatalf("Tinf = %d", Span(c, nil))
	}
	cost := func(u dag.Node) Tick { return Tick(u) + 1 }
	if Work(c, cost) != 1+2+3+4 {
		t.Fatalf("weighted T1 = %d", Work(c, cost))
	}
	// Heaviest path 0 -> 2 -> 3 = 1 + 3 + 4 = 8.
	if Span(c, cost) != 8 {
		t.Fatalf("weighted Tinf = %d", Span(c, cost))
	}
	if Span(fromDag(dag.Antichain(5)), nil) != 1 {
		t.Fatal("antichain span wrong")
	}
}

func TestListScheduleSingleProcessor(t *testing.T) {
	c := fromDag(dag.Diamond())
	s := mustSchedule(t)(ListSchedule(c, 1, nil))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != Work(c, nil) {
		t.Fatalf("P=1 makespan = %d, want T1 = %d", s.Makespan, Work(c, nil))
	}
}

func TestListScheduleParallelism(t *testing.T) {
	// A wide antichain finishes in ceil(n/P) on P processors.
	c := fromDag(dag.Antichain(10))
	s := mustSchedule(t)(ListSchedule(c, 4, nil))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", s.Makespan)
	}
}

func TestListScheduleGrahamBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		c := fromDag(dag.Random(rng, 3+rng.Intn(25), 0.2))
		for _, P := range []int{1, 2, 4, 8} {
			s := mustSchedule(t)(ListSchedule(c, P, nil))
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			t1, tinf := Work(c, nil), Span(c, nil)
			bound := Tick(int64(t1)/int64(P)) + tinf
			if int64(t1)%int64(P) != 0 {
				bound++
			}
			if s.Makespan > bound {
				t.Fatalf("P=%d: makespan %d exceeds Graham bound %d (T1=%d Tinf=%d)",
					P, s.Makespan, bound, t1, tinf)
			}
			if s.Makespan < tinf || int64(s.Makespan)*int64(P) < int64(t1) {
				t.Fatalf("P=%d: makespan %d below lower bounds (T1=%d Tinf=%d)",
					P, s.Makespan, t1, tinf)
			}
		}
	}
}

func TestWorkStealingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		c := fromDag(dag.Random(rng, 2+rng.Intn(20), 0.25))
		for _, P := range []int{1, 2, 5} {
			s := mustSchedule(t)(WorkStealing(c, P, nil, rng))
			if err := s.Validate(); err != nil {
				t.Fatalf("P=%d: %v\n%v", P, err, c)
			}
			if s.Makespan < Span(c, nil) {
				t.Fatalf("makespan below span")
			}
		}
	}
}

func TestWorkStealingSingleProcNoSteals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := fromDag(dag.Chain(10))
	s := mustSchedule(t)(WorkStealing(c, 1, nil, rng))
	if s.Steals != 0 {
		t.Fatalf("steals = %d on one processor", s.Steals)
	}
	if s.Makespan != 10 {
		t.Fatalf("makespan = %d", s.Makespan)
	}
}

func TestWorkStealingSpeedsUp(t *testing.T) {
	// A spawn tree has parallelism; 4 workers must beat 1 worker.
	rng := rand.New(rand.NewSource(5))
	c := fromDag(dag.SpawnTree(7))
	s1 := mustSchedule(t)(WorkStealing(c, 1, nil, rng))
	s4 := mustSchedule(t)(WorkStealing(c, 4, nil, rng))
	if s4.Makespan >= s1.Makespan {
		t.Fatalf("no speedup: P=1 %d vs P=4 %d", s1.Makespan, s4.Makespan)
	}
	if s4.Steals == 0 {
		t.Fatal("parallel execution of a tree must steal")
	}
}

func TestScheduleValidateCatches(t *testing.T) {
	c := fromDag(dag.Chain(2))
	s := mustSchedule(t)(ListSchedule(c, 1, nil))
	bad := *s
	bad.Proc = []int{0, 5}
	if bad.Validate() == nil {
		t.Fatal("bad processor accepted")
	}
	bad2 := *s
	bad2.Start = []Tick{1, 0}
	bad2.Finish = []Tick{2, 1}
	if bad2.Validate() == nil {
		t.Fatal("dependency violation accepted")
	}
	bad3 := *s
	bad3.Order = []dag.Node{1, 0}
	if bad3.Validate() == nil {
		t.Fatal("non-topological order accepted")
	}
}

func TestInvalidInputErrors(t *testing.T) {
	c := fromDag(dag.Chain(2))
	rng := rand.New(rand.NewSource(1))
	badCost := func(dag.Node) Tick { return 0 }
	for i, fn := range []func() (*Schedule, error){
		func() (*Schedule, error) { return ListSchedule(c, 0, nil) },
		func() (*Schedule, error) { return WorkStealing(c, 0, nil, rng) },
		func() (*Schedule, error) { return WorkStealing(c, 2, nil, nil) },
		func() (*Schedule, error) { return ListSchedule(c, 2, badCost) },
		func() (*Schedule, error) { return WorkStealing(c, 2, badCost, rng) },
	} {
		s, err := fn()
		if err == nil || s != nil {
			t.Errorf("case %d: invalid input accepted (schedule %v, err %v)", i, s, err)
		}
	}
}

// Property: both schedulers produce valid schedules with makespan
// between max(Tinf, ceil(T1/P)) and T1 for random weighted dags.
func TestQuickSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		c := fromDag(dag.Random(rng, n, 0.3))
		cost := func(u dag.Node) Tick { return Tick(1 + (int(u)*7)%3) }
		P := 1 + rng.Intn(4)
		ls, err := ListSchedule(c, P, cost)
		if err != nil {
			return false
		}
		ws, err := WorkStealing(c, P, cost, rng)
		if err != nil {
			return false
		}
		for _, s := range []*Schedule{ls, ws} {
			if s.Validate() != nil {
				return false
			}
			if s.Makespan < Span(c, cost) || s.Makespan > Work(c, cost)+Tick(n) {
				// Work stealing may idle briefly; allow +n slack ticks.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// mustSchedule unwraps a scheduler result whose inputs the test knows
// to be valid.
func mustSchedule(t *testing.T) func(*Schedule, error) *Schedule {
	return func(s *Schedule, err error) *Schedule {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

package sched

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
)

const litmusSchedText = `schedule 2
steals 1
locs x
node A R(x)
node B W(x)
node C R(x)
edge A C
edge B C
assign A 0 0 1
assign B 1 0 1
assign C 0 1 2
order A B C
`

func TestParseScheduleLitmus(t *testing.T) {
	named, s, err := ParseScheduleString(litmusSchedText)
	if err != nil {
		t.Fatal(err)
	}
	if s.P != 2 || s.Steals != 1 || s.Makespan != 2 {
		t.Fatalf("P=%d steals=%d makespan=%d", s.P, s.Steals, s.Makespan)
	}
	b := named.NodeID["B"]
	c := named.NodeID["C"]
	if s.Proc[b] == s.Proc[c] {
		t.Fatal("parsed schedule lost the crossing edge")
	}
}

// TestScheduleCodecRoundTrip: format∘parse is the identity on
// schedules produced by the simulators.
func TestScheduleCodecRoundTrip(t *testing.T) {
	named, s, err := ParseScheduleString(litmusSchedText)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatSchedule(&b, named, s); err != nil {
		t.Fatal(err)
	}
	_, again, err := ParseScheduleString(b.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\nformatted:\n%s", err, b.String())
	}
	if again.P != s.P || again.Makespan != s.Makespan || again.Steals != s.Steals {
		t.Fatal("roundtrip changed schedule header")
	}
	for u := 0; u < s.Comp.NumNodes(); u++ {
		if again.Proc[u] != s.Proc[u] || again.Start[u] != s.Start[u] || again.Finish[u] != s.Finish[u] {
			t.Fatalf("roundtrip changed node %d's assignment", u)
		}
	}
	for i := range s.Order {
		if again.Order[i] != s.Order[i] {
			t.Fatal("roundtrip changed execution order")
		}
	}

	// And a second roundtrip is byte-stable.
	var b2 strings.Builder
	named2, _, _ := ParseScheduleString(b.String())
	if err := FormatSchedule(&b2, named2, again); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatalf("format is not byte-stable:\n%s\nvs\n%s", b.String(), b2.String())
	}
}

// TestScheduleCodecWorkStealing round-trips a machine-generated
// schedule end to end.
func TestScheduleCodecWorkStealing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := dag.Random(rng, 20, 0.3)
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		switch i % 3 {
		case 0:
			ops[i] = computation.W(0)
		case 1:
			ops[i] = computation.R(0)
		default:
			ops[i] = computation.N
		}
	}
	c := computation.MustFrom(g, ops, 1)
	s, err := WorkStealing(c, 4, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	named := autoNamedForTest(c)
	var b strings.Builder
	if err := FormatSchedule(&b, named, s); err != nil {
		t.Fatal(err)
	}
	_, again, err := ParseScheduleString(b.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if err := again.Validate(); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
}

func autoNamedForTest(c *computation.Computation) *computation.Named {
	locs := make([]string, c.NumLocs())
	for l := range locs {
		locs[l] = "l" + string(rune('a'+l))
	}
	named := computation.NewNamed(locs...)
	for u := 0; u < c.NumNodes(); u++ {
		named.AddNode("n"+itoa(u), c.Op(dag.Node(u)))
	}
	for _, e := range c.Dag().Edges() {
		named.Comp.MustAddEdge(e[0], e[1])
	}
	return named
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for ; n > 0; n /= 10 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
	}
	return string(digits)
}

func TestParseScheduleErrors(t *testing.T) {
	cases := map[string]string{
		"missing schedule":  "locs x\nnode A N\nassign A 0 0 1\norder A\n",
		"bad proc count":    "schedule 0\nlocs x\nnode A N\nassign A 0 0 1\norder A\n",
		"missing assign":    "schedule 1\nlocs x\nnode A N\norder A\n",
		"duplicate assign":  "schedule 1\nlocs x\nnode A N\nassign A 0 0 1\nassign A 0 0 1\norder A\n",
		"unknown node":      "schedule 1\nlocs x\nnode A N\nassign B 0 0 1\norder A\n",
		"short order":       "schedule 1\nlocs x\nnode A N\nnode B N\nassign A 0 0 1\nassign B 0 1 2\norder A\n",
		"proc out of range": "schedule 1\nlocs x\nnode A N\nassign A 5 0 1\norder A\n",
		"order violates deps": "schedule 1\nlocs x\nnode A N\nnode B N\nedge A B\n" +
			"assign A 0 1 2\nassign B 0 0 1\norder B A\n",
	}
	for name, text := range cases {
		if _, _, err := ParseScheduleString(text); err == nil {
			t.Errorf("%s: parser accepted malformed input", name)
		}
	}
}

package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
)

// This file implements a self-contained text format for schedules, so
// executions are replayable from files: the computation (in its own
// text format) is embedded alongside the processor assignment and the
// completion order. A schedule file fully determines a BACKER run —
// together with a fault plan (internal/chaos) it is a byte-replayable
// repro.
//
//	schedule 2              # processor count
//	steals 1                # optional bookkeeping
//	locs x
//	node A R(x)
//	node B W(x)
//	node C R(x)
//	edge A C
//	edge B C
//	assign A 0 0 1          # node proc start finish
//	assign B 1 0 1
//	assign C 0 1 2
//	order A B C
//
// Blank lines and '#' comments are ignored. ParseSchedule validates the
// result, so a file that parses is a runnable schedule.

// FormatSchedule writes the schedule in the text format accepted by
// ParseSchedule. named supplies the node/location names; its
// computation must be the schedule's.
func FormatSchedule(w io.Writer, named *computation.Named, s *Schedule) error {
	if named.Comp.NumNodes() != s.Comp.NumNodes() {
		return fmt.Errorf("sched: symbol table for %d nodes, schedule has %d",
			named.Comp.NumNodes(), s.Comp.NumNodes())
	}
	if _, err := fmt.Fprintf(w, "schedule %d\n", s.P); err != nil {
		return err
	}
	if s.Steals > 0 {
		if _, err := fmt.Fprintf(w, "steals %d\n", s.Steals); err != nil {
			return err
		}
	}
	if err := named.Format(w); err != nil {
		return err
	}
	for u, name := range named.NodeName {
		if _, err := fmt.Fprintf(w, "assign %s %d %d %d\n", name, s.Proc[u], s.Start[u], s.Finish[u]); err != nil {
			return err
		}
	}
	names := make([]string, len(s.Order))
	for i, u := range s.Order {
		names[i] = named.NodeName[u]
	}
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "order %s\n", strings.Join(names, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ParseSchedule reads the schedule text format. Like the other codecs
// it is an input boundary: malformed files return errors (a recover
// fence converts hostile-input panics), and the returned schedule has
// passed Validate.
func ParseSchedule(r io.Reader) (named *computation.Named, s *Schedule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			named, s, err = nil, nil, fmt.Errorf("sched: invalid input: %v", rec)
		}
	}()
	type assign struct {
		node          string
		proc          int
		start, finish Tick
		line          int
	}
	var (
		compLines  []string
		assigns    []assign
		orderNames []string
		p          = -1
		steals     = 0
		haveOrder  bool
	)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "schedule":
			if len(fields) != 2 || p >= 0 {
				return nil, nil, fmt.Errorf("line %d: want one `schedule P`", lineNo)
			}
			v, perr := strconv.Atoi(fields[1])
			if perr != nil || v < 1 {
				return nil, nil, fmt.Errorf("line %d: bad processor count %q", lineNo, fields[1])
			}
			p = v
		case "steals":
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("line %d: want `steals N`", lineNo)
			}
			v, serr := strconv.Atoi(fields[1])
			if serr != nil || v < 0 {
				return nil, nil, fmt.Errorf("line %d: bad steal count %q", lineNo, fields[1])
			}
			steals = v
		case "assign":
			if len(fields) != 5 {
				return nil, nil, fmt.Errorf("line %d: want `assign NODE PROC START FINISH`", lineNo)
			}
			proc, e1 := strconv.Atoi(fields[2])
			start, e2 := strconv.ParseInt(fields[3], 10, 64)
			finish, e3 := strconv.ParseInt(fields[4], 10, 64)
			if e1 != nil || e2 != nil || e3 != nil {
				return nil, nil, fmt.Errorf("line %d: bad assign numbers", lineNo)
			}
			assigns = append(assigns, assign{
				node: fields[1], proc: proc,
				start: Tick(start), finish: Tick(finish), line: lineNo,
			})
		case "order":
			if haveOrder {
				return nil, nil, fmt.Errorf("line %d: duplicate order directive", lineNo)
			}
			haveOrder = true
			orderNames = fields[1:]
		default:
			compLines = append(compLines, line)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, serr
	}
	if p < 0 {
		return nil, nil, fmt.Errorf("sched: missing `schedule P` directive")
	}

	named, cerr := computation.Parse(strings.NewReader(strings.Join(compLines, "\n")))
	if cerr != nil {
		return nil, nil, cerr
	}
	c := named.Comp
	n := c.NumNodes()
	s = &Schedule{
		Comp:   c,
		P:      p,
		Proc:   make([]int, n),
		Start:  make([]Tick, n),
		Finish: make([]Tick, n),
		Order:  make([]dag.Node, 0, n),
		Steals: steals,
	}
	if len(assigns) != n {
		return nil, nil, fmt.Errorf("sched: %d assign lines for %d nodes", len(assigns), n)
	}
	seen := make([]bool, n)
	for _, a := range assigns {
		u, ok := named.NodeID[a.node]
		if !ok {
			return nil, nil, fmt.Errorf("line %d: unknown node %q", a.line, a.node)
		}
		if seen[u] {
			return nil, nil, fmt.Errorf("line %d: duplicate assign for %q", a.line, a.node)
		}
		seen[u] = true
		s.Proc[u], s.Start[u], s.Finish[u] = a.proc, a.start, a.finish
		if a.finish > s.Makespan {
			s.Makespan = a.finish
		}
	}
	if len(orderNames) != n {
		return nil, nil, fmt.Errorf("sched: order lists %d nodes, computation has %d", len(orderNames), n)
	}
	for _, name := range orderNames {
		u, ok := named.NodeID[name]
		if !ok {
			return nil, nil, fmt.Errorf("sched: unknown node %q in order", name)
		}
		s.Order = append(s.Order, u)
	}
	if verr := s.Validate(); verr != nil {
		return nil, nil, verr
	}
	return named, s, nil
}

// ParseScheduleString is ParseSchedule over a string.
func ParseScheduleString(str string) (*computation.Named, *Schedule, error) {
	return ParseSchedule(strings.NewReader(str))
}

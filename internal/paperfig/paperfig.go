// Package paperfig reproduces the example computation/observer pairs of
// Figures 2, 3 and 4 of Frigo & Luchangco (SPAA 1998) as executable
// fixtures, plus the Dekker-style computation that separates SC from LC
// (Section 4).
//
// The figures in the available text of the paper are partially garbled,
// so the fixtures are reconstructed as the minimal four/five-node
// witnesses with exactly the memberships the paper states:
//
//	Figure 2: a pair in WW and NW but not in WN or NN;
//	Figure 3: a pair in WW and WN but not in NW or NN;
//	Figure 4: a pair in NN on a prefix C that cannot be extended to the
//	          full computation C′, witnessing that NN is not
//	          constructible (unless the new node writes).
//
// Every claimed membership is machine-checked by the tests in this
// package and by the lattice experiments.
package paperfig

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Fixture is a named computation/observer pair with the memberships the
// paper claims for it.
type Fixture struct {
	Name      string
	Comp      *computation.Computation
	Obs       *observer.Observer
	InModels  []string // names of models the pair belongs to
	OutModels []string // names of models the pair is outside of
}

// Figure2 returns the Figure 2 witness: a pair in WW and NW but not in
// WN or NN.
//
// One location. Node A writes in parallel with the chain B → C → D,
// where B writes and C, D read:
//
//	A: W(x)                    Φ(A) = A
//	B: W(x) → C: R(x) → D: R(x)
//	           Φ(B)=B  Φ(C)=A  Φ(D)=B
//
// The only violating triple of Condition 20.1 is (B, C, D): B and D
// observe B while C, between them, observes A. Its first node is a
// write and its middle node is a read, so the triple is excused by NW
// (middle must write) and WW, but caught by WN (first writes) and NN.
// Operationally: D re-observes B's write after C saw the concurrent
// write A — the "reordered reads" anomaly that motivated strengthening
// WW-dag consistency.
func Figure2() Fixture {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.W(0))
	cc := c.AddNode(computation.R(0))
	d := c.AddNode(computation.R(0))
	c.MustAddEdge(b, cc)
	c.MustAddEdge(cc, d)

	o := observer.New(c)
	o.Set(0, cc, a)
	o.Set(0, d, b)
	return Fixture{
		Name:      "Figure2",
		Comp:      c,
		Obs:       o,
		InModels:  []string{"WW", "NW"},
		OutModels: []string{"WN", "NN", "LC", "SC"},
	}
}

// Figure3 returns the Figure 3 witness: a pair in WW and WN but not in
// NW or NN — the mirror image of Figure 2.
//
// One location. Node X writes in parallel with the chain A → B → C,
// where A and C read and B writes:
//
//	X: W(x)                    Φ(X) = X
//	A: R(x) → B: W(x) → C: R(x)
//	Φ(A)=X    Φ(B)=B    Φ(C)=X
//
// The only violating triple is (A, B, C): A and C observe X while B,
// between them, observes itself. Its first node is a read, so WN and WW
// excuse it; its middle node is a write, so NW and NN catch it.
// Operationally: C loses B's write after it was observed — the "lost
// write" anomaly.
func Figure3() Fixture {
	c := computation.New(1)
	x := c.AddNode(computation.W(0))
	a := c.AddNode(computation.R(0))
	b := c.AddNode(computation.W(0))
	cc := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	c.MustAddEdge(b, cc)

	o := observer.New(c)
	o.Set(0, a, x)
	o.Set(0, cc, x)
	return Fixture{
		Name:      "Figure3",
		Comp:      c,
		Obs:       o,
		InModels:  []string{"WW", "WN"},
		OutModels: []string{"NW", "NN", "LC", "SC"},
	}
}

// Figure4 models the non-constructibility witness for NN. The prefix C
// (left of the paper's dashed line) has two concurrent writes A and B,
// each observed by a read on the *other* branch:
//
//	A: W(x) → C: R(x)   Φ(C) = B
//	B: W(x) → D: R(x)   Φ(D) = A
//
// The pair (C, Φ) is in NN (there are no length-3 paths, so Condition
// 20.1 is vacuous) but not in LC (any serialization of A and B makes
// one of the two reads stale). The full computation C′ appends a node F
// succeeding C and D. Unless F writes, Φ cannot be extended: Φ(F) = A
// clashes on the path A ≺ C ≺ F (C observes B), Φ(F) = B clashes on
// B ≺ D ≺ F, and Φ(F) = ⊥ clashes on ⊥ ≺ C ≺ F. Hence NN is not
// constructible.
type Figure4Fixture struct {
	Prefix    *computation.Computation
	PrefixObs *observer.Observer
	// Extend returns the full computation C′ obtained by appending a
	// node F labelled op with edges from C and D.
	Extend func(op computation.Op) (*computation.Computation, dag.Node)
}

// Figure4 returns the Figure 4 fixture.
func Figure4() Figure4Fixture {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.W(0))
	cc := c.AddNode(computation.R(0))
	d := c.AddNode(computation.R(0))
	c.MustAddEdge(a, cc)
	c.MustAddEdge(b, d)

	o := observer.New(c)
	o.Set(0, cc, b)
	o.Set(0, d, a)
	return Figure4Fixture{
		Prefix:    c,
		PrefixObs: o,
		Extend: func(op computation.Op) (*computation.Computation, dag.Node) {
			return c.Extend(op, []dag.Node{cc, d})
		},
	}
}

// Dekker returns the two-location computation that separates SC from LC
// (Section 4): two parallel branches, each writing one location and
// then reading the other, with both reads observing ⊥.
//
//	P1: W(x) → R(y)    P2: W(y) → R(x)
//
// Under LC each location serializes independently, so both reads may
// miss the concurrent writes. Under SC a single serialization must put
// one of the writes first, so at least one read must observe a write:
// the pair is in LC but not SC.
//
// Because an observer function is total, each branch's second node also
// carries a value for the location its branch wrote; the last-writer
// semantics force it to observe that preceding write.
func Dekker() Fixture {
	c := computation.New(2)
	w1 := c.AddNode(computation.W(0))
	r1 := c.AddNode(computation.R(1))
	w2 := c.AddNode(computation.W(1))
	r2 := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r1)
	c.MustAddEdge(w2, r2)

	o := observer.New(c) // both reads observe ⊥ at their own location
	o.Set(0, r1, w1)     // r1 follows w1, so it observes w1 at x
	o.Set(1, r2, w2)     // r2 follows w2, so it observes w2 at y
	return Fixture{
		Name:      "Dekker",
		Comp:      c,
		Obs:       o,
		InModels:  []string{"LC", "NN", "NW", "WN", "WW"},
		OutModels: []string{"SC"},
	}
}

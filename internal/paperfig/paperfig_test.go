package paperfig

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/observer"
)

// Structural sanity checks live here; the membership claims are
// machine-checked in internal/memmodel (figure tests) and in the
// lattice experiments. Keeping membership checks out of this package
// avoids an import cycle.

func TestFixturesValidate(t *testing.T) {
	for _, fx := range []Fixture{Figure2(), Figure3(), Dekker()} {
		if err := fx.Comp.Validate(); err != nil {
			t.Errorf("%s: computation invalid: %v", fx.Name, err)
		}
		if err := fx.Obs.Validate(fx.Comp); err != nil {
			t.Errorf("%s: observer invalid: %v", fx.Name, err)
		}
		if len(fx.InModels) == 0 || len(fx.OutModels) == 0 {
			t.Errorf("%s: membership claims missing", fx.Name)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	fx := Figure2()
	if fx.Comp.NumNodes() != 4 || fx.Comp.NumLocs() != 1 {
		t.Fatalf("shape: %v", fx.Comp)
	}
	// A (node 0) is parallel to the chain B -> C -> D.
	cl := fx.Comp.Closure()
	for u := dag.Node(1); u < 4; u++ {
		if cl.Comparable(0, u) {
			t.Fatalf("A must be incomparable to node %d", u)
		}
	}
	if fx.Obs.Get(0, 2) != 0 || fx.Obs.Get(0, 3) != 1 {
		t.Fatal("observer values wrong")
	}
}

func TestFigure3Shape(t *testing.T) {
	fx := Figure3()
	if fx.Comp.NumNodes() != 4 {
		t.Fatalf("shape: %v", fx.Comp)
	}
	if fx.Obs.Get(0, 1) != 0 || fx.Obs.Get(0, 3) != 0 || fx.Obs.Get(0, 2) != 2 {
		t.Fatal("observer values wrong")
	}
}

func TestFigure4ExtendShapes(t *testing.T) {
	fx := Figure4()
	if fx.Prefix.NumNodes() != 4 {
		t.Fatalf("prefix: %v", fx.Prefix)
	}
	ext, f := fx.Extend(computation.N)
	if ext.NumNodes() != 5 || f != 4 {
		t.Fatalf("extension: %v", ext)
	}
	if !fx.Prefix.IsPrefixOfExtension(ext) {
		t.Fatal("prefix relation broken")
	}
	if !ext.Dag().HasEdge(2, 4) || !ext.Dag().HasEdge(3, 4) {
		t.Fatal("F must succeed both reads")
	}
	if ext.Dag().HasEdge(0, 4) {
		t.Fatal("F must not be directly attached to the writes")
	}
	// Crossing observers: each read observes the other branch's write.
	if fx.PrefixObs.Get(0, 2) != 1 || fx.PrefixObs.Get(0, 3) != 0 {
		t.Fatal("crossing observers wrong")
	}
}

func TestDekkerShape(t *testing.T) {
	fx := Dekker()
	if fx.Comp.NumLocs() != 2 || fx.Comp.NumNodes() != 4 {
		t.Fatalf("shape: %v", fx.Comp)
	}
	// Each read observes ⊥ at the location the *other* branch wrote.
	if fx.Obs.Get(1, 1) != observer.Bottom || fx.Obs.Get(0, 3) != observer.Bottom {
		t.Fatal("Dekker reads must observe ⊥")
	}
	// And each branch's second node observes its own branch's write.
	if fx.Obs.Get(0, 1) != 0 || fx.Obs.Get(1, 3) != 2 {
		t.Fatal("own-branch observations wrong")
	}
}

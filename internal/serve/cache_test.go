package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func fillWith(body string) func() ([]byte, bool, error) {
	return func() ([]byte, bool, error) { return []byte(body), true, nil }
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(1 << 20)
	body, src, err := c.do(context.Background(), "k", fillWith("v"))
	if err != nil || src != sourceMiss || string(body) != "v" {
		t.Fatalf("first do = %q, %v, %v; want v, miss, nil", body, src, err)
	}
	calls := 0
	body, src, err = c.do(context.Background(), "k", func() ([]byte, bool, error) { calls++; return nil, false, nil })
	if err != nil || src != sourceHit || string(body) != "v" || calls != 0 {
		t.Fatalf("second do = %q, %v, %v (fill calls %d); want cached v, hit, nil, 0", body, src, err, calls)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheUncacheableNotStored(t *testing.T) {
	c := newCache(1 << 20)
	if _, _, err := c.do(context.Background(), "k", func() ([]byte, bool, error) { return []byte("v"), false, nil }); err != nil {
		t.Fatal(err)
	}
	if _, src, _ := c.do(context.Background(), "k", fillWith("w")); src != sourceMiss {
		t.Fatalf("uncacheable result was served from cache (%v)", src)
	}
}

func TestCacheErrorNotStoredAndPropagated(t *testing.T) {
	c := newCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), "k", func() ([]byte, bool, error) { return nil, true, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("error result was stored: %+v", st)
	}
}

// TestCacheLRUEviction: a byte budget that fits two entries must evict
// the least recently used third when a new one lands, and a hit must
// refresh recency.
func TestCacheLRUEviction(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 256)
	perEntry := int64(1+len(body)) + entryOverhead
	c := newCache(2 * perEntry)
	fill := func() ([]byte, bool, error) { return body, true, nil }
	c.do(context.Background(), "a", fill)
	c.do(context.Background(), "b", fill)
	c.do(context.Background(), "a", fill) // hit: refresh a, so b is now LRU
	c.do(context.Background(), "c", fill) // evicts b
	if _, src, _ := c.do(context.Background(), "a", fill); src != sourceHit {
		t.Errorf("a evicted; want kept (refreshed)")
	}
	if _, src, _ := c.do(context.Background(), "c", fill); src != sourceHit {
		t.Errorf("c evicted; want kept (most recent)")
	}
	if _, src, _ := c.do(context.Background(), "b", fill); src != sourceMiss {
		t.Errorf("b kept; want evicted as LRU")
	}
	st := c.stats()
	if st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	if st.Bytes > 2*perEntry {
		t.Errorf("cache bytes %d exceed budget %d", st.Bytes, 2*perEntry)
	}
}

func TestCacheZeroCapacityDisablesStorage(t *testing.T) {
	c := newCache(0)
	c.do(context.Background(), "k", fillWith("v"))
	if _, src, _ := c.do(context.Background(), "k", fillWith("v")); src != sourceMiss {
		t.Fatalf("zero-capacity cache served a %v", src)
	}
}

// TestCacheSingleflight: concurrent requests for one key run the fill
// once; everyone gets the same bytes and the extras count as shared.
func TestCacheSingleflight(t *testing.T) {
	c := newCache(1 << 20)
	const waiters = 8
	var fills int
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.do(context.Background(), "k", func() ([]byte, bool, error) {
				fills++ // safe: only one fill may run
				once.Do(func() { close(started) })
				<-gate
				return []byte("shared"), true, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = string(body)
		}(i)
	}
	<-started
	// Hold the gate until every other goroutine has attached to the
	// in-flight fill — otherwise latecomers would hit the stored entry.
	waitFor(t, func() bool { return c.stats().Shared == waiters-1 })
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Shared != waiters-1 {
		t.Fatalf("stats = %+v; want 1 miss, %d shared", st, waiters-1)
	}
}

func TestKeyIsInjectiveOverFieldBoundaries(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("key collides across field boundaries")
	}
	if Key("a") == Key("a", "") {
		t.Fatal("key ignores empty trailing fields")
	}
	for i := 0; i < 4; i++ {
		if got := Key("x", fmt.Sprint(i)); len(got) != 64 {
			t.Fatalf("key length %d, want 64 hex chars", len(got))
		}
	}
}

// TestCachePanicFailsFlight: a panicking fill must not strand
// collapsed waiters or leak the flight entry — waiters complete with
// errFillPanicked, the panic propagates on the owner's goroutine, and
// a later request for the same key gets a fresh fill.
func TestCachePanicFailsFlight(t *testing.T) {
	c := newCache(1 << 20)
	waiterErr := make(chan error, 1)
	go func() {
		// Attach to the flight once it exists.
		waitFor(t, func() bool { return c.stats().Misses == 1 })
		_, _, err := c.do(context.Background(), "k", fillWith("never runs"))
		waiterErr <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the flight owner")
			}
		}()
		c.do(context.Background(), "k", func() ([]byte, bool, error) {
			// Panic only once the waiter is attached to the flight, so
			// the cleanup path is what unblocks it.
			waitFor(t, func() bool { return c.stats().Shared == 1 })
			panic("decision exploded")
		})
	}()
	if err := <-waiterErr; !errors.Is(err, errFillPanicked) {
		t.Fatalf("waiter err = %v, want errFillPanicked", err)
	}
	// The key is free again: a fresh fill runs and caches normally.
	body, src, err := c.do(context.Background(), "k", fillWith("recovered"))
	if err != nil || src != sourceMiss || string(body) != "recovered" {
		t.Fatalf("post-panic do = %q, %v, %v; want fresh miss", body, src, err)
	}
}

// TestCacheWaiterHonorsContext: a collapsed waiter whose context
// expires walks away with the context error instead of blocking on a
// slow fill forever — the exchange-timeout middleware depends on this.
func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newCache(1 << 20)
	gate := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		c.do(context.Background(), "k", func() ([]byte, bool, error) {
			<-gate
			return []byte("slow"), true, nil
		})
	}()
	waitFor(t, func() bool { return c.stats().Misses == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, src, err := c.do(ctx, "k", fillWith("never runs"))
	if !errors.Is(err, context.DeadlineExceeded) || src != sourceShared {
		t.Fatalf("expired waiter = %v, %v; want shared + DeadlineExceeded", src, err)
	}
	close(gate)
	<-ownerDone
	// The abandoned fill still completed and cached for everyone else.
	body, src, err := c.do(context.Background(), "k", fillWith("never runs"))
	if err != nil || src != sourceHit || string(body) != "slow" {
		t.Fatalf("post-abandon do = %q, %v, %v; want cached slow", body, src, err)
	}
}

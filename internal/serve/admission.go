package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission control: a fixed pool of decision slots fronted by a
// bounded wait queue. A request either
//
//   - acquires a slot immediately and runs,
//   - waits in the queue until a slot frees (still counted in-flight
//     for draining), or
//   - is shed with ErrOverloaded when the queue is full — the handler
//     maps that to 503 + Retry-After so well-behaved clients back off
//     instead of piling onto a saturated backtracker.
//
// Draining (SIGTERM) flips one bit under the mutex: subsequent admits
// fail with ErrDraining while everything already admitted — running or
// queued — completes. drain() returns when the last of them releases,
// which is the leak-free exit the daemon's shutdown path relies on.

var (
	// ErrOverloaded: the wait queue is full; shed the request.
	ErrOverloaded = errors.New("serve: overloaded: request queue full")
	// ErrDraining: the server is shutting down; no new work.
	ErrDraining = errors.New("serve: draining: not accepting new work")
)

// AdmissionStats is the queue snapshot /statsz reports.
type AdmissionStats struct {
	Running  int   `json:"running"`
	Waiting  int   `json:"waiting"`
	Slots    int   `json:"slots"`
	Queue    int   `json:"queue_depth"`
	Shed     int64 `json:"shed_total"`
	Admitted int64 `json:"admitted_total"`
	Draining bool  `json:"draining"`
}

type admission struct {
	mu       sync.Mutex
	sem      chan struct{} // buffered; len = running
	maxQueue int
	waiting  int
	draining bool
	shed     int64
	admitted int64
	wg       sync.WaitGroup
}

func newAdmission(slots, queue int) *admission {
	return &admission{sem: make(chan struct{}, slots), maxQueue: queue}
}

// admit asks for a decision slot. On success it returns a release
// function the caller must invoke exactly once when the work is done.
// ctx aborts the wait in the queue (a disconnected client should not
// hold a queue position).
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	switch {
	case a.draining:
		a.mu.Unlock()
		return nil, ErrDraining
	case a.waiting >= a.maxQueue:
		a.shed++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	a.waiting++
	a.admitted++
	a.wg.Add(1) // under mu, so drain() cannot begin waiting between checks
	a.mu.Unlock()

	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		var once sync.Once
		return func() {
			once.Do(func() {
				<-a.sem
				a.wg.Done()
			})
		}, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		a.wg.Done()
		return nil, ctx.Err()
	}
}

// drain stops admission and blocks until every admitted request has
// released. Idempotent.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
	a.wg.Wait()
}

// stats snapshots the queue.
func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Running:  len(a.sem),
		Waiting:  a.waiting,
		Slots:    cap(a.sem),
		Queue:    a.maxQueue,
		Shed:     a.shed,
		Admitted: a.admitted,
		Draining: a.draining,
	}
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/stream"
	"repro/internal/trace"
)

// ---- helpers -------------------------------------------------------

// streamConn is one open /v1/trace exchange: write NDJSON events into
// Events, read NDJSON records off Records.
type streamConn struct {
	Events  *io.PipeWriter
	Records *bufio.Scanner
	resp    *http.Response
}

func (c *streamConn) close() {
	c.Events.Close()
	c.resp.Body.Close()
}

// openStream dials /v1/trace with a pipe-fed body so the test can
// trickle events while reading response records.
func openStream(t *testing.T, base string) *streamConn {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/trace", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /v1/trace = %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	conn := &streamConn{Events: pw, Records: sc, resp: resp}
	t.Cleanup(conn.close)
	return conn
}

func (c *streamConn) send(t *testing.T, evs ...stream.Event) {
	t.Helper()
	if err := stream.WriteNDJSON(c.Events, evs); err != nil {
		t.Fatalf("send: %v", err)
	}
}

// next reads one response record, failing the test on EOF.
func (c *streamConn) next(t *testing.T) StreamRecord {
	t.Helper()
	for c.Records.Scan() {
		line := strings.TrimSpace(c.Records.Text())
		if line == "" {
			continue
		}
		var rec StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		return rec
	}
	t.Fatalf("response stream ended early: %v", c.Records.Err())
	return StreamRecord{}
}

// collectUntilFinal reads records until the final one, returning all.
func (c *streamConn) collectUntilFinal(t *testing.T) []StreamRecord {
	t.Helper()
	var recs []StreamRecord
	for {
		rec := c.next(t)
		recs = append(recs, rec)
		if rec.Type == "final" {
			return recs
		}
	}
}

func corpusEvents(t *testing.T, name string) []stream.Event {
	t.Helper()
	nt, err := trace.ParseTraceString(readTestdata(t, name))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := stream.EventsFromTrace(nt)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// ---- tests ---------------------------------------------------------

// TestTraceStreamViolationBeforeEnd pins the tentpole property: a
// violating trace's verdict reaches the client before the end event is
// even sent.
func TestTraceStreamViolationBeforeEnd(t *testing.T) {
	_, ts := testServer(t, Config{Stream: StreamConfig{CheckEvery: 1}})
	conn := openStream(t, ts.URL)

	evs := corpusEvents(t, "corr_violation.trace")
	conn.send(t, evs[:len(evs)-1]...) // everything but the end event
	rec := conn.next(t)
	if rec.Type != "violation" || rec.Violation == nil {
		t.Fatalf("first record = %+v, want a violation", rec)
	}
	if got := rec.Violation.Kind; got != "taint" {
		t.Fatalf("violation kind = %q, want taint", got)
	}
	if len(rec.Violation.Models) != 2 {
		t.Fatalf("taint should exclude both models, got %v", rec.Violation.Models)
	}

	conn.send(t, evs[len(evs)-1]) // now the end event
	recs := conn.collectUntilFinal(t)
	final := recs[len(recs)-1]
	if final.LC == nil || final.SC == nil {
		t.Fatalf("final record missing verdicts: %+v", final)
	}
	if final.LC.Text != "VIOLATED" || final.SC.Text != "VIOLATED" {
		t.Fatalf("final = LC:%s SC:%s, want VIOLATED/VIOLATED", final.LC.Text, final.SC.Text)
	}
	if final.Stats == nil || !final.Stats.Ended {
		t.Fatalf("final stats should mark the stream ended: %+v", final.Stats)
	}
}

// TestTraceStreamSlowWriter is the transport-timeout bugfix test: the
// daemon's http.Server read/write/idle timeouts are set far below the
// stream's life, the exchange Timeout middleware is armed, and a slow
// writer still completes — the per-route deadline overrides and the
// TimeoutExcept exemption keep the connection governed by streaming
// limits only. Run under -race in CI, which also exercises the
// reader/checker goroutine split.
func TestTraceStreamSlowWriter(t *testing.T) {
	s := New(Config{
		RequestTimeout: 200 * time.Millisecond, // would kill the stream if applied
		Stream: StreamConfig{
			CheckEvery:  1,
			IdleTimeout: 5 * time.Second,
			Heartbeat:   50 * time.Millisecond,
		},
	})
	ts := httptest.NewUnstartedServer(s.Handler())
	// The transport constants ccmd sets (scaled down): each alone is
	// shorter than the stream's total life.
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Config.IdleTimeout = 150 * time.Millisecond
	ts.Start()
	t.Cleanup(ts.Close)

	conn := openStream(t, ts.URL)
	evs := corpusEvents(t, "dekker_bottom.trace")

	// Trickle every event slower than the transport timeouts; total
	// stream life ~> 4x ReadTimeout.
	violations := 0
	heartbeats := 0
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		for {
			var rec StreamRecord
			line, err := readLine(conn.Records)
			if err != nil {
				return
			}
			if json.Unmarshal([]byte(line), &rec) != nil {
				return
			}
			switch rec.Type {
			case "violation":
				violations++
			case "heartbeat":
				heartbeats++
			case "final":
				if rec.SC == nil || rec.SC.Text != "VIOLATED" {
					t.Errorf("final SC = %+v, want VIOLATED", rec.SC)
				}
				if rec.LC == nil || rec.LC.Text != "explainable" {
					t.Errorf("final LC = %+v, want explainable", rec.LC)
				}
				return
			}
		}
	}()
	for _, ev := range evs {
		conn.send(t, ev)
		time.Sleep(100 * time.Millisecond)
	}
	select {
	case <-recDone:
	case <-time.After(10 * time.Second):
		t.Fatal("no final record after the end event")
	}
	if violations == 0 {
		t.Error("no mid-stream violation record (dekker_bottom is SC-violated by cycle)")
	}
	if heartbeats == 0 {
		t.Error("no heartbeat records during a ~700ms stream at 50ms cadence")
	}
}

// readLine is a scanner step that reports EOF as an error instead of
// calling t.Fatal from a non-test goroutine.
func readLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			return line, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// TestTraceStreamConformance compares the streamed final verdicts
// against the post-mortem checker for every corpus trace — the service
// edition of the differential guarantee pinned in internal/stream.
func TestTraceStreamConformance(t *testing.T) {
	_, ts := testServer(t, Config{Stream: StreamConfig{CheckEvery: 1}})
	paths, err := filepath.Glob("../../testdata/*.trace")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus traces: %v", err)
	}
	for _, p := range paths {
		name := filepath.Base(p)
		t.Run(name, func(t *testing.T) {
			nt, err := trace.ParseTraceString(readTestdata(t, name))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			_, lcWant, _ := checker.VerifyLCCtx(ctx, nt.Trace, checker.SearchOptions{})
			_, scWant, _ := checker.VerifySCCtx(ctx, nt.Trace, checker.SearchOptions{})

			conn := openStream(t, ts.URL)
			conn.send(t, corpusEvents(t, name)...)
			recs := conn.collectUntilFinal(t)
			final := recs[len(recs)-1]
			if got, want := final.LC.Text, checker.VerdictText(lcWant); got != want {
				t.Errorf("LC: stream %q, post-mortem %q", got, want)
			}
			if got, want := final.SC.Text, checker.VerdictText(scWant); got != want {
				t.Errorf("SC: stream %q, post-mortem %q", got, want)
			}
			for _, rec := range recs[:len(recs)-1] {
				if rec.Type != "violation" {
					continue
				}
				for _, m := range rec.Violation.Models {
					if m == "LC" && !lcWant.Out() {
						t.Errorf("unsound online LC violation %+v", rec.Violation)
					}
					if m == "SC" && !scWant.Out() {
						t.Errorf("unsound online SC violation %+v", rec.Violation)
					}
				}
			}
		})
	}
}

// TestTraceStreamIdleCut: a client that stalls mid-stream is cut by
// the rolling idle deadline and still gets a well-formed early final.
func TestTraceStreamIdleCut(t *testing.T) {
	_, ts := testServer(t, Config{Stream: StreamConfig{
		IdleTimeout: 100 * time.Millisecond,
		Heartbeat:   time.Hour, // keep the response quiet
	}})
	conn := openStream(t, ts.URL)
	evs := corpusEvents(t, "mp_stale.trace")
	conn.send(t, evs[0], evs[1]) // locs + first node, then stall

	recs := conn.collectUntilFinal(t)
	final := recs[len(recs)-1]
	if final.LC.Text != "INCONCLUSIVE(deadline)" || final.SC.Text != "INCONCLUSIVE(deadline)" {
		t.Fatalf("idle-cut final = LC:%s SC:%s, want INCONCLUSIVE(deadline)", final.LC.Text, final.SC.Text)
	}
	var sawError bool
	for _, rec := range recs {
		sawError = sawError || rec.Type == "error"
	}
	if !sawError {
		t.Fatal("idle cut should surface an error record before the final")
	}
}

// TestTraceStreamOverrun: past MaxEvents the overflow policy sheds and
// both models degrade to the typed INCONCLUSIVE(overrun).
func TestTraceStreamOverrun(t *testing.T) {
	_, ts := testServer(t, Config{Stream: StreamConfig{MaxEvents: 2, CheckEvery: 1}})
	conn := openStream(t, ts.URL)
	conn.send(t, corpusEvents(t, "mp_stale.trace")...)

	recs := conn.collectUntilFinal(t)
	final := recs[len(recs)-1]
	if final.LC.Text != "INCONCLUSIVE(overrun)" || final.SC.Text != "INCONCLUSIVE(overrun)" {
		t.Fatalf("overrun final = LC:%s SC:%s, want INCONCLUSIVE(overrun)", final.LC.Text, final.SC.Text)
	}
	if final.Stats == nil || !final.Stats.Overrun || final.Stats.Shed == 0 {
		t.Fatalf("overrun stats = %+v, want Overrun with shed > 0", final.Stats)
	}
}

// TestTraceStreamProtocolError: a malformed event fails the stream
// in-band with an error record and an inconclusive final.
func TestTraceStreamProtocolError(t *testing.T) {
	_, ts := testServer(t, Config{})
	conn := openStream(t, ts.URL)
	evs := corpusEvents(t, "mp_stale.trace")
	conn.send(t, evs[0], evs[1], evs[1]) // duplicate node: protocol violation

	recs := conn.collectUntilFinal(t)
	if recs[0].Type != "error" || !strings.Contains(recs[0].Error, "duplicate") {
		t.Fatalf("first record = %+v, want a duplicate-node error", recs[0])
	}
	final := recs[len(recs)-1]
	if final.LC.Text != "INCONCLUSIVE(cancelled)" || final.SC.Text != "INCONCLUSIVE(cancelled)" {
		t.Fatalf("error final = LC:%s SC:%s, want INCONCLUSIVE(cancelled)", final.LC.Text, final.SC.Text)
	}
}

// TestTraceStreamStatsz: the stream gauges land in /statsz and the
// per-endpoint metrics row exists.
func TestTraceStreamStatsz(t *testing.T) {
	_, ts := testServer(t, Config{Stream: StreamConfig{CheckEvery: 1}})
	conn := openStream(t, ts.URL)
	conn.send(t, corpusEvents(t, "corr_violation.trace")...)
	conn.collectUntilFinal(t)

	doc := statsz(t, ts.URL)
	if doc.Stream.Done != 1 {
		t.Fatalf("stream.done = %d, want 1", doc.Stream.Done)
	}
	if doc.Stream.EventsIngested == 0 || doc.Stream.Violations == 0 {
		t.Fatalf("stream gauges empty: %+v", doc.Stream)
	}
	if _, ok := doc.Endpoints["trace"]; !ok {
		t.Fatal("no trace endpoint metrics row")
	}
}

// TestTraceStreamDrainRejects: a draining server sheds new streams
// with 503 like any other decision.
func TestTraceStreamDrainRejects(t *testing.T) {
	s, ts := testServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/trace", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /v1/trace = %d, want 503", resp.StatusCode)
	}
}

package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestAdmissionRunsUpToSlots(t *testing.T) {
	a := newAdmission(2, 4)
	r1, err1 := a.admit(context.Background())
	r2, err2 := a.admit(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("admits failed: %v, %v", err1, err2)
	}
	if st := a.stats(); st.Running != 2 || st.Waiting != 0 {
		t.Fatalf("stats = %+v; want 2 running", st)
	}
	r1()
	r2()
	if st := a.stats(); st.Running != 0 {
		t.Fatalf("after release: %+v; want 0 running", st)
	}
}

// TestAdmissionShedsBeyondQueue: with both slots busy and the queue
// full, the next admit must fail fast with ErrOverloaded — never block.
func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue with one waiter.
	waiterDone := make(chan error, 1)
	go func() {
		r, err := a.admit(context.Background())
		if err == nil {
			defer r()
		}
		waiterDone <- err
	}()
	waitFor(t, func() bool { return a.stats().Waiting == 1 })

	if _, err := a.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow admit = %v, want ErrOverloaded", err)
	}
	if st := a.stats(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}

	release() // slot frees; the waiter gets it
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

// TestAdmissionQueueAbort: a client that gives up while queued must
// free its queue position.
func TestAdmissionQueueAbort(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return a.stats().Waiting == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted admit = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return a.stats().Waiting == 0 })
}

// TestAdmissionDrain: drain rejects new work immediately, waits for
// running AND queued work, and is idempotent. No goroutines remain.
func TestAdmissionDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	a := newAdmission(1, 2)
	release, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := a.admit(context.Background())
		if err == nil {
			time.Sleep(20 * time.Millisecond) // simulate queued work running during drain
			r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return a.stats().Waiting == 1 })

	drained := make(chan struct{})
	go func() {
		a.drain()
		a.drain() // idempotent
		close(drained)
	}()
	waitFor(t, func() bool { return a.stats().Draining })

	if _, err := a.admit(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit during drain = %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("drain returned while work was still admitted")
	default:
	}

	release() // running work finishes; queued waiter runs and finishes
	if err := <-queued; err != nil {
		t.Fatalf("queued work failed during drain: %v", err)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	waitGoroutines(t, base)
}

// waitFor polls cond with a deadline — the tests' only clock.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitGoroutines polls until the goroutine count settles back to at
// most base+2 — the leak check reused from the engine's governance
// tests.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/observer"
)

// ---- /v1/batch ------------------------------------------------------

var batchCorpus = []string{
	"dekker.ccm", "figure2.ccm", "figure3.ccm", "figure4_prefix.ccm", "stale_read.ccm",
}

func batchResults(t *testing.T, data []byte) []BatchResult {
	t.Helper()
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad batch response %s: %v", data, err)
	}
	return resp.Results
}

// TestBatchFullRangeMatchesCheck pins the conformance the fleet rests
// on: a full-range batch item answers exactly like /v1/check for the
// same pair and model — same verdict text, same rendered witness.
func TestBatchFullRangeMatchesCheck(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, name := range batchCorpus {
		pair := readTestdata(t, name)
		resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: pair})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: check status %d: %s", name, resp.StatusCode, data)
		}
		want := checkVerdicts(t, data)

		var items []BatchItem
		for _, m := range memmodel.ModelNames() {
			items = append(items, BatchItem{ID: name + "/" + m, Pair: pair, Model: m})
		}
		resp, data = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Items: items})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: batch status %d: %s", name, resp.StatusCode, data)
		}
		results := batchResults(t, data)
		if len(results) != len(items) {
			t.Fatalf("%s: %d results for %d items", name, len(results), len(items))
		}
		for i, r := range results {
			if r.ID != items[i].ID {
				t.Fatalf("%s: result %d ID %q, want %q", name, i, r.ID, items[i].ID)
			}
			w := want[r.Model]
			if r.Verdict.String() != w.Verdict.String() {
				t.Fatalf("%s/%s: batch verdict %s, check %s", name, r.Model, r.Verdict, w.Verdict)
			}
			if r.Witness != w.Witness {
				t.Fatalf("%s/%s: batch witness %q, check %q", name, r.Model, r.Witness, w.Witness)
			}
			if fmt.Sprint(r.LocWitnesses) != fmt.Sprint(w.LocWitnesses) {
				t.Fatalf("%s/%s: batch loc witnesses %v, check %v", name, r.Model, r.LocWitnesses, w.LocWitnesses)
			}
			if r.Violation != w.Violation {
				t.Fatalf("%s/%s: batch violation %q, check %q", name, r.Model, r.Violation, w.Violation)
			}
		}
	}
}

// TestBatchShardMergeMatchesFull splits every corpus pair's SC
// question into one batch item per frontier root and checks that the
// lowest-witness-root merge reproduces the full run's verdict and
// witness bytes — the determinism argument the fleet coordinator
// implements, exercised over the real wire format.
func TestBatchShardMergeMatchesFull(t *testing.T) {
	_, ts := testServer(t, Config{})
	sharded := 0
	for _, name := range batchCorpus {
		pair := readTestdata(t, name)
		named, ofn, err := observer.ParsePairString(pair)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total, triv := memmodel.SCShardPlan(named.Comp, ofn)
		if triv != nil {
			continue
		}

		// The full-range item is the reference.
		resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
			Items: []BatchItem{{Pair: pair, Model: "SC"}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: full batch status %d: %s", name, resp.StatusCode, data)
		}
		full := batchResults(t, data)[0]
		if full.RootsTotal != total {
			t.Fatalf("%s: server frontier %d, local plan %d", name, full.RootsTotal, total)
		}

		var items []BatchItem
		for i := 0; i < total; i++ {
			items = append(items, BatchItem{
				ID: fmt.Sprintf("%s/%d", name, i), Pair: pair, Model: "SC", RootLo: i, RootHi: i + 1,
			})
		}
		resp, data = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Items: items})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: shard batch status %d: %s", name, resp.StatusCode, data)
		}
		results := batchResults(t, data)

		// Merge: lowest witness root wins; all-Out means Out.
		merged := BatchResult{WitnessRoot: -1}
		decided := true
		for _, r := range results {
			if r.RootsTotal != total {
				t.Fatalf("%s: shard reports frontier %d, want %d", name, r.RootsTotal, total)
			}
			decided = decided && r.Verdict.Decided
			if r.Verdict.In() && (merged.WitnessRoot == -1 || r.WitnessRoot < merged.WitnessRoot) {
				merged = r
			}
		}
		if !decided {
			t.Fatalf("%s: inconclusive shard in an ungoverned run", name)
		}
		if merged.WitnessRoot >= 0 {
			if !full.Verdict.In() {
				t.Fatalf("%s: shards found witness, full run says %s", name, full.Verdict)
			}
			if merged.Witness != full.Witness {
				t.Fatalf("%s: merged witness %q, full %q", name, merged.Witness, full.Witness)
			}
			if merged.WitnessRoot != full.WitnessRoot {
				t.Fatalf("%s: merged witness root %d, full %d", name, merged.WitnessRoot, full.WitnessRoot)
			}
		} else if !full.Verdict.Out() {
			t.Fatalf("%s: all shards Out, full run says %s", name, full.Verdict)
		}
		if total > 1 {
			sharded++
		}
	}
	if sharded == 0 {
		t.Fatal("weak test: no corpus pair had a multi-root frontier")
	}
}

// TestBatchShardRangesDistinctCacheKeys pins the no-aliasing property:
// the same pair under different shard ranges, and the same shard under
// different governance clamps, must occupy distinct cache entries —
// a hit may only ever serve the exact (pair, model, shard, governance)
// coordinate that filled it.
func TestBatchShardRangesDistinctCacheKeys(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	pair := readTestdata(t, "dekker.ccm")
	post := func(item BatchItem, opts Options) BatchResult {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Items: []BatchItem{item}, Options: opts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, data)
		}
		return batchResults(t, data)[0]
	}
	named, ofn, err := observer.ParsePairString(pair)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := memmodel.SCShardPlan(named.Comp, ofn)
	if total < 2 {
		t.Fatalf("dekker frontier %d, need >= 2", total)
	}

	// Distinct shard ranges of one pair, then repeats of each: the
	// misses must equal the number of distinct coordinates, and repeats
	// must all hit.
	coords := []BatchItem{
		{Pair: pair, Model: "SC"},                           // full range
		{Pair: pair, Model: "SC", RootLo: 0, RootHi: 1},     // first root
		{Pair: pair, Model: "SC", RootLo: 1, RootHi: total}, // the rest
	}
	// Two governance clamps that survive clamping as distinct
	// fingerprints (different state budgets).
	optsVariants := []Options{{}, {MaxStates: 100000}, {MaxStates: 200000}}

	verdicts := make(map[string]string)
	before := statsz(t, ts.URL).Cache
	n := 0
	for _, item := range coords {
		for _, opts := range optsVariants {
			r := post(item, opts)
			verdicts[fmt.Sprintf("%d-%d-%d", item.RootLo, item.RootHi, opts.MaxStates)] = r.Verdict.String() + "|" + r.Witness
			n++
		}
	}
	mid := statsz(t, ts.URL).Cache
	if got := mid.Misses - before.Misses; got != int64(n) {
		t.Fatalf("first pass: %d misses for %d distinct coordinates", got, n)
	}
	for _, item := range coords {
		for _, opts := range optsVariants {
			r := post(item, opts)
			if got := r.Verdict.String() + "|" + r.Witness; got != verdicts[fmt.Sprintf("%d-%d-%d", item.RootLo, item.RootHi, opts.MaxStates)] {
				t.Fatalf("replay of %+v/%+v changed answer to %q", item, opts, got)
			}
		}
	}
	after := statsz(t, ts.URL).Cache
	if got := after.Hits - mid.Hits; got != int64(n) {
		t.Fatalf("second pass: %d hits for %d repeats", got, n)
	}
	if after.Misses != mid.Misses {
		t.Fatalf("second pass added %d misses", after.Misses-mid.Misses)
	}
}

// TestBatchCacheSharedAcrossRequests: a second identical batch is
// served from cache and says so in the header.
func TestBatchCacheHeader(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	req := BatchRequest{Items: []BatchItem{{Pair: readTestdata(t, "figure2.ccm"), Model: "SC"}}}
	resp, _ := postJSON(t, ts.URL+"/v1/batch", req)
	if got := resp.Header.Get("X-Ccmd-Cache"); got != "miss" {
		t.Fatalf("first batch cache header %q, want miss", got)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/batch", req)
	if got := resp.Header.Get("X-Ccmd-Cache"); got != "hit" {
		t.Fatalf("second batch cache header %q, want hit", got)
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	pair := readTestdata(t, "figure2.ccm")
	tooMany := make([]BatchItem, maxBatchItems+1)
	for i := range tooMany {
		tooMany[i] = BatchItem{Pair: pair, Model: "SC"}
	}
	cases := []struct {
		name string
		req  BatchRequest
	}{
		{"empty batch", BatchRequest{}},
		{"too many items", BatchRequest{Items: tooMany}},
		{"unknown model", BatchRequest{Items: []BatchItem{{Pair: pair, Model: "PSO"}}}},
		{"bad pair", BatchRequest{Items: []BatchItem{{Pair: "not a pair", Model: "SC"}}}},
		{"negative bound", BatchRequest{Items: []BatchItem{{Pair: pair, Model: "SC", RootLo: -1}}}},
		{"empty range", BatchRequest{Items: []BatchItem{{Pair: pair, Model: "SC", RootLo: 2, RootHi: 2}}}},
		{"inverted range", BatchRequest{Items: []BatchItem{{Pair: pair, Model: "SC", RootLo: 3, RootHi: 1}}}},
		{"sharded polynomial model", BatchRequest{Items: []BatchItem{{Pair: pair, Model: "LC", RootHi: 1}}}},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/batch", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
}

// TestBatchMetricsWired: the batch endpoint has its own /statsz gauge
// row.
func TestBatchMetricsWired(t *testing.T) {
	_, ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/v1/batch", BatchRequest{Items: []BatchItem{{Pair: readTestdata(t, "figure3.ccm"), Model: "NN"}}})
	doc := statsz(t, ts.URL)
	ep, ok := doc.Endpoints["batch"]
	if !ok {
		t.Fatal("no batch endpoint stats")
	}
	if ep.Requests != 1 {
		t.Fatalf("batch requests = %d, want 1", ep.Requests)
	}
}

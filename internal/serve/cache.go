package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
)

// The verdict cache: a content-addressed map from canonical request
// keys to marshaled response bodies, with two serving-stack behaviors
// layered on top:
//
//   - Singleflight collapsing: concurrent requests for the same key
//     share one in-flight computation. Only the flight owner passes
//     through admission control and runs the backtracker; waiters block
//     on the flight and reuse its bytes.
//   - LRU eviction under a byte budget: entries are charged for their
//     key and body, and the least-recently-used entries are dropped
//     when an insert would exceed the budget. A zero budget disables
//     storage but keeps the singleflight collapsing.
//
// Only definitive responses are stored (the caller signals
// cacheability): an INCONCLUSIVE verdict depends on the request's
// budgets and wall clock, so replaying it from cache could mask a
// answer a larger budget would find.

// Key hashes canonical request material into a content address.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous field separator
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheSource says how a response was obtained.
type cacheSource int

const (
	sourceMiss   cacheSource = iota // computed by this request
	sourceHit                       // served from the stored bytes
	sourceShared                    // reused a concurrent in-flight computation
)

func (s cacheSource) String() string {
	switch s {
	case sourceHit:
		return "hit"
	case sourceShared:
		return "shared"
	default:
		return "miss"
	}
}

// errFillPanicked is what collapsed waiters get when the flight
// owner's fill panicked: their exchanges complete with a 500 while the
// panic itself propagates to the recovery middleware on the owner's
// goroutine.
var errFillPanicked = errors.New("serve: decision panicked")

// flight is one in-progress fill shared by duplicate requests.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// entry is one stored response.
type entry struct {
	key  string
	body []byte
}

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map bucket share, entry struct) charged against the budget.
const entryOverhead = 128

// CacheStats is the counter snapshot /statsz reports.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity_bytes"`
}

// cache is the verdict cache. The zero value is unusable; use newCache.
type cache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	flights  map[string]*flight

	hits, misses, shared, evictions int64
}

func newCache(capacity int64) *cache {
	return &cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// do returns the cached body for key, or runs fill to compute it,
// collapsing concurrent fills for the same key into one. fill reports
// whether its result may be stored; errors are never stored and are
// returned to every collapsed waiter.
//
// ctx bounds only the *wait* on a concurrent fill (a collapsed waiter
// whose exchange deadline expires walks away; the flight keeps
// computing for everyone else). The fill itself runs under the
// server's decision context, deliberately not ctx — see
// Server.decisionContext.
//
// do is panic-safe: if fill panics, the flight is failed and removed
// so collapsed waiters complete with errFillPanicked instead of
// hanging, and the panic continues up the owner's goroutine to the
// recovery middleware.
func (c *cache) do(ctx context.Context, key string, fill func() (body []byte, cacheable bool, err error)) ([]byte, cacheSource, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body := el.Value.(*entry).body
		c.mu.Unlock()
		return body, sourceHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.body, sourceShared, f.err
		case <-ctx.Done():
			return nil, sourceShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	completed := false
	defer func() {
		if completed {
			return
		}
		f.err = errFillPanicked
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
	}()
	body, cacheable, err := fill()
	completed = true
	f.body, f.err = body, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && cacheable {
		c.store(key, body)
	}
	c.mu.Unlock()
	close(f.done)
	return body, sourceMiss, err
}

// store inserts under the byte budget, evicting LRU entries as needed.
// Bodies larger than the whole budget are not stored. Callers hold mu.
func (c *cache) store(key string, body []byte) {
	cost := int64(len(key)+len(body)) + entryOverhead
	if cost > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok { // lost a race with an identical fill
		c.ll.MoveToFront(el)
		return
	}
	for c.bytes+cost > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		ev := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.bytes -= int64(len(ev.key)+len(ev.body)) + entryOverhead
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, body: body})
	c.bytes += cost
}

// stats snapshots the counters.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
	}
}

package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/search"
)

// The wire contract of the ccmd daemon. Verdicts reuse the JSON form
// of search.Verdict ("text" carries the CLI spelling, so a service
// verdict compares byte-identically against ccmc/verify output), and
// witnesses are rendered through the same helpers the CLIs use.

// Options is the per-request governance block. Every field is clamped
// against the server's Limits before it reaches the engine; zero means
// "server default".
type Options struct {
	// TimeoutMS is the wall-clock budget in milliseconds. Expiry yields
	// INCONCLUSIVE(deadline) verdicts, not an HTTP error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxStates caps search states explored per decision.
	MaxStates int64 `json:"max_states,omitempty"`
	// MaxMemoMB caps the search memo tables, in MiB (exact: answers
	// never change, the search just explores more states).
	MaxMemoMB int64 `json:"max_memo_mb,omitempty"`
	// Workers is the engine's parallel root-splitting width.
	Workers int `json:"workers,omitempty"`
}

// CheckRequest asks which memory models contain a (computation,
// observer) pair, given in the text format of the ccmc CLI.
type CheckRequest struct {
	Pair    string   `json:"pair"`
	Models  []string `json:"models,omitempty"` // default: all of memmodel.ModelNames
	Options Options  `json:"options"`
}

// SearchStats is the engine work summary attached to engine-backed
// results.
type SearchStats struct {
	States   int64 `json:"states"`
	MemoHits int64 `json:"memo_hits"`
	Pruned   int64 `json:"pruned"`
	Workers  int   `json:"workers"`
}

// ModelResult is one model's answer within a CheckResponse.
type ModelResult struct {
	Model   string         `json:"model"`
	Verdict search.Verdict `json:"verdict"`
	// Witness is the witnessing topological sort (SC, In verdicts) or
	// memory order (TSO, In verdicts), rendered with the pair's node
	// names.
	Witness string `json:"witness,omitempty"`
	// LocWitnesses holds one witnessing sort per location (LC, In).
	LocWitnesses []string `json:"loc_witnesses,omitempty"`
	// Violation renders the witnessing triple "loc: u ≺ v ≺ w"
	// (quantified-dag models, Out verdicts).
	Violation string `json:"violation,omitempty"`
	// Stats reports the engine's work (SC and TSO).
	Stats *SearchStats `json:"stats,omitempty"`
}

// CheckResponse answers a CheckRequest, one result per model in
// request order.
type CheckResponse struct {
	Results []ModelResult `json:"results"`
}

// VerifyRequest asks whether an executed trace (text format of the
// verify CLI) is explainable under LC and SC.
type VerifyRequest struct {
	Trace   string  `json:"trace"`
	Options Options `json:"options"`
}

// VerifyResult is one serialization check within a VerifyResponse.
type VerifyResult struct {
	Verdict search.Verdict `json:"verdict"`
	// Text is the verify-CLI spelling: "explainable", "VIOLATED", or
	// INCONCLUSIVE(reason).
	Text string `json:"text"`
	// Witness is the explaining observer function, rendered exactly as
	// the CLI's -witness output, for In verdicts.
	Witness string `json:"witness,omitempty"`
	States  int64  `json:"states"`
}

// VerifyResponse answers a VerifyRequest. When Explainable is false
// (some read returns a value no eligible write stored) the checks are
// skipped, mirroring the CLI.
type VerifyResponse struct {
	Explainable bool          `json:"explainable"`
	LC          *VerifyResult `json:"lc,omitempty"`
	SC          *VerifyResult `json:"sc,omitempty"`
	// Relaxed flags the coherent-but-not-SC diagnosis (LC explainable,
	// SC violated).
	Relaxed bool `json:"relaxed"`
}

// EnumerateRequest asks for the membership census over the exhaustive
// (computation, observer) universe up to MaxNodes nodes.
type EnumerateRequest struct {
	MaxNodes int `json:"max_nodes"`
	Locs     int `json:"locs,omitempty"`    // default 1
	Workers  int `json:"workers,omitempty"` // sweep shards, clamped
}

// EnumerateResponse carries the census table, byte-identical to the
// enumerate CLI's output for the same bounds.
type EnumerateResponse struct {
	MaxNodes int    `json:"max_nodes"` // after clamping
	Locs     int    `json:"locs"`
	Census   string `json:"census"`
}

// ErrorResponse is the JSON body of every non-2xx response. RequestID
// repeats the X-Request-Id header so a logged body alone is enough to
// correlate with the daemon's access log.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Limits is the server-side governance ceiling. Requests may ask for
// less than these, never more; zero fields mean "no ceiling".
type Limits struct {
	// DefaultTimeout applies when a request asks for no timeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request deadline.
	MaxTimeout time.Duration
	// MaxStates caps (and defaults) the per-decision state budget.
	MaxStates int64
	// MaxMemoMB caps (and defaults) the per-search memo tables, in MiB.
	MaxMemoMB int64
	// MaxWorkers caps the engine width a request may ask for.
	MaxWorkers int
	// MaxEnumNodes caps /v1/enumerate's universe bound (the sweep is
	// doubly exponential in it and has no mid-flight governor).
	MaxEnumNodes int
}

// clampInt64 applies a ceiling: req 0 means "server default" (the
// ceiling itself), and positive requests are capped at the ceiling.
func clampInt64(req, max int64) int64 {
	switch {
	case max <= 0:
		return req
	case req <= 0 || req > max:
		return max
	default:
		return req
	}
}

// searchOptions maps request options onto engine options under the
// limits, and returns the effective wall-clock budget (0 = none).
func (l Limits) searchOptions(o Options) (search.Options, time.Duration) {
	opts := search.Options{
		Budget:       clampInt64(o.MaxStates, l.MaxStates),
		MaxMemoBytes: clampInt64(o.MaxMemoMB, l.MaxMemoMB) << 20,
		Workers:      int(clampInt64(int64(o.Workers), int64(l.MaxWorkers))),
	}
	timeout := time.Duration(o.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = l.DefaultTimeout
	}
	if l.MaxTimeout > 0 && (timeout <= 0 || timeout > l.MaxTimeout) {
		timeout = l.MaxTimeout
	}
	return opts, timeout
}

// ExchangeTimeout is the deadline the Timeout middleware puts on a
// whole HTTP exchange, derived from the governance ceilings: twice the
// largest decision deadline the limits allow (a request can spend one
// ceiling waiting in the admission queue and one deciding) plus fixed
// scheduling grace. An ungoverned server (no timeout ceilings) gets no
// exchange bound — there is nothing to clamp onto.
func (l Limits) ExchangeTimeout() time.Duration {
	d := l.MaxTimeout
	if d <= 0 {
		d = l.DefaultTimeout
	}
	if d <= 0 {
		return 0
	}
	return 2*d + 10*time.Second
}

// optionsFingerprint is the options part of the verdict-cache key:
// the fields that can change which answer a governed decision reaches
// (budgets and engine width under a budget). The timeout is excluded —
// it only affects INCONCLUSIVE outcomes, which are never cached.
func (l Limits) optionsFingerprint(o Options) string {
	opts, _ := l.searchOptions(o)
	return fmt.Sprintf("budget=%d,memo=%d,workers=%d", opts.Budget, opts.MaxMemoBytes, opts.Workers)
}

// validModels screens a requested model list (nil = all) against the
// known names, preserving request order.
func validModels(req []string, known []string) ([]string, error) {
	if len(req) == 0 {
		return known, nil
	}
	set := make(map[string]bool, len(known))
	for _, m := range known {
		set[m] = true
	}
	for _, m := range req {
		if !set[m] {
			return nil, fmt.Errorf("unknown model %q (valid: %s)", m, strings.Join(known, ", "))
		}
	}
	return req, nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzDecodeRequests throws arbitrary bytes at the three /v1/*
// request decoders through the full middleware stack (MaxBytesReader,
// DisallowUnknownFields, the pair/trace parsers behind them). The
// properties under test: no panic escapes the handler, garbage decodes
// as a 400 (never a 500), every response carries a request ID, and
// every non-2xx body is a well-formed ErrorResponse.
//
// Limits are pinned tiny so the fuzzer spends its budget in the decode
// path, not in decisions that happen to parse.
func FuzzDecodeRequests(f *testing.F) {
	seeds := []struct {
		which byte
		body  string
	}{
		{0, `{"pair":"locs x\nnode A R(x)0"}`},
		{0, `{"pair":"locs x\nnode A W(x)1","models":["SC","LC"]}`},
		{0, `{"pair":"","options":{"timeout_ms":-1,"max_states":9999999999}}`},
		{0, `{"pair":"locs x\nnode A R(x)0","unknown_field":1}`},
		{1, `{"trace":"W(x)1 A\nR(x)1 B"}`},
		{1, `{"trace":"","options":{"workers":-3}}`},
		{2, `{"max_nodes":2}`},
		{2, `{"max_nodes":-1,"locs":0}`},
		{2, `{"max_nodes":1e100}`},
		{0, `{"pair":`},
		{1, `null`},
		{2, `[]`},
		{0, "{\"pair\":\"\x00\xff\"}"},
		{1, `{"trace":"` + string(bytes.Repeat([]byte("W(x)1 A\\n"), 64)) + `"}`},
	}
	for _, s := range seeds {
		f.Add(s.which, []byte(s.body))
	}

	srv := New(Config{
		Limits: Limits{
			DefaultTimeout: 50 * time.Millisecond,
			MaxTimeout:     50 * time.Millisecond,
			MaxStates:      2000,
			MaxMemoMB:      1,
			MaxWorkers:     1,
			MaxEnumNodes:   2,
		},
	})
	h := srv.Handler()
	paths := []string{"/v1/check", "/v1/verify", "/v1/enumerate"}

	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		path := paths[int(which)%len(paths)]
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r) // a panic here fails the fuzz run via Recovery's 500 below

		resp := w.Result()
		if resp.StatusCode == http.StatusInternalServerError {
			t.Fatalf("%s decoding %q returned 500: %s", path, body, w.Body.Bytes())
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s decoding %q returned %d, want 200 or 400", path, body, resp.StatusCode)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Fatalf("%s response (%d) carries no request id", path, resp.StatusCode)
		}
		if resp.StatusCode != http.StatusOK {
			var e ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%s error body %q is not an ErrorResponse", path, w.Body.Bytes())
			}
		}
	})
}
